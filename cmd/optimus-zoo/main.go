// Command optimus-zoo inspects the model zoos and transformation plans.
//
//	optimus-zoo list [-family resnet]         list models
//	optimus-zoo show <model>                  print a model's structure summary
//	optimus-zoo json <model>                  dump a model's JSON graph
//	optimus-zoo plan <src> <dst>              print the transformation plan
//	optimus-zoo dot <model>                   emit the model as Graphviz dot
//	optimus-zoo nasbench <index>              show a NAS-Bench-201 architecture
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/cost"
	"repro/internal/gateway"
	"repro/internal/metaop"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/zoo"
)

func lookup(name string) (*model.Graph, error) {
	for _, r := range []*zoo.Registry{zoo.Imgclsmob(), zoo.BERTZoo(), zoo.RNNZoo()} {
		if g, err := r.Get(name); err == nil {
			return g, nil
		}
	}
	return nil, fmt.Errorf("model %q not found in any zoo", name)
}

func main() {
	family := flag.String("family", "", "filter list by family")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	switch args[0] {
	case "list":
		img := zoo.Imgclsmob()
		for _, n := range img.SortedByParams() {
			g := img.MustGet(n)
			if *family != "" && g.Family != *family {
				continue
			}
			fmt.Println(g)
		}
		for _, n := range zoo.BERTNames() {
			g := zoo.BERTZoo().MustGet(n)
			if *family != "" && g.Family != *family {
				continue
			}
			fmt.Println(g)
		}
		for _, n := range zoo.RNNNames() {
			g := zoo.RNNZoo().MustGet(n)
			if *family != "" && g.Family != *family {
				continue
			}
			fmt.Println(g)
		}
	case "show":
		need(args, 2)
		g, err := lookup(args[1])
		fatalIf(err)
		fmt.Println(g)
		st := g.Stats()
		for _, t := range model.AllOpTypes() {
			if st.ByType[t] > 0 {
				fmt.Printf("  %-12s × %d\n", t, st.ByType[t])
			}
		}
		prof := cost.CPU()
		b := prof.ModelLoad(g)
		fmt.Printf("  load: %v (deserialize %v, structure %v, weights %v); cold start %v; compute %v\n",
			b.Total(), b.Deserialize, b.Structure, b.Weights, prof.ColdStart(g), prof.Compute(g))
	case "json":
		need(args, 2)
		g, err := lookup(args[1])
		fatalIf(err)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(g))
	case "plan":
		need(args, 3)
		src, err := lookup(args[1])
		fatalIf(err)
		dst, err := lookup(args[2])
		fatalIf(err)
		pl := planner.New(cost.Exact(cost.CPU()), planner.AlgoGroup)
		plan := pl.Plan(src, dst)
		fmt.Println(gateway.PlanSummary(plan))
		for _, k := range metaop.Kinds() {
			if d := plan.CostByKind()[k]; d > 0 {
				fmt.Printf("  %-8s %6d steps  %v\n", k, plan.CountByKind()[k], d)
			}
		}
	case "dot":
		need(args, 2)
		g, err := lookup(args[1])
		fatalIf(err)
		fmt.Print(g.DOT())
	case "nasbench":
		need(args, 2)
		idx, err := strconv.Atoi(args[1])
		fatalIf(err)
		arch, err := zoo.NASBenchArch(idx)
		fatalIf(err)
		g, err := zoo.NASBenchModel(idx, 5, 10)
		fatalIf(err)
		fmt.Printf("index %d: %s\n%s\n", idx, zoo.NASBenchString(arch), g)
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: optimus-zoo list [-family f] | show <m> | json <m> | dot <m> | plan <src> <dst> | nasbench <idx>")
	os.Exit(2)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
