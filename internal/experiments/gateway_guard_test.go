package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// checkGatewayGates asserts the acceptance gates on a result, from a live
// run (smoke) or the checked-in artifact (guard): (a) ≥2× aggregate
// simulated throughput at 4 gateways versus 1, (b) the shared plan cache's
// hit ratio at or above the isolated baseline's with no more pairs planned,
// and (c) the double-run byte-identity proof.
func checkGatewayGates(t *testing.T, res GatewayResult, label string) {
	t.Helper()
	if !res.Deterministic {
		t.Errorf("%s: same-seed reruns diverged", label)
	}
	if res.ScaleX4 < 2 {
		t.Errorf("%s: 4-gateway scale %.2fx below the ≥2x gate", label, res.ScaleX4)
	}
	if len(res.Scale) != len(GatewayScaleGateways) {
		t.Fatalf("%s: %d scale points, want %d", label, len(res.Scale), len(GatewayScaleGateways))
	}
	for i, pt := range res.Scale {
		if pt.Gateways != GatewayScaleGateways[i] {
			t.Errorf("%s: scale point %d is %d gateways, want %d", label, i, pt.Gateways, GatewayScaleGateways[i])
		}
		if pt.Served != res.Requests {
			t.Errorf("%s: %d gateways served %d of %d requests", label, pt.Gateways, pt.Served, res.Requests)
		}
		if pt.Gateways > 1 && pt.Forwards == 0 {
			t.Errorf("%s: %d gateways forwarded nothing — routing never exercised", label, pt.Gateways)
		}
		if pt.Gateways == 1 && pt.Forwards != 0 {
			t.Errorf("%s: single gateway forwarded %d requests", label, pt.Forwards)
		}
		if pt.SimReqPerSec <= 0 {
			t.Errorf("%s: %d gateways report %.2f req/s", label, pt.Gateways, pt.SimReqPerSec)
		}
	}
	if res.Shared.HitRatio < res.Isolated.HitRatio {
		t.Errorf("%s: shared hit ratio %.4f below isolated %.4f",
			label, res.Shared.HitRatio, res.Isolated.HitRatio)
	}
	if res.Shared.Planned > res.Isolated.Planned {
		t.Errorf("%s: shared planned %d pairs, isolated only %d — sharing increased planning",
			label, res.Shared.Planned, res.Isolated.Planned)
	}
	if res.Shared.Planned == 0 {
		t.Errorf("%s: shared run planned nothing — the demand-driven trace never hit the transform path", label)
	}
	if res.Shared.Remote == 0 {
		t.Errorf("%s: shared run pulled nothing — the cross-gateway loader never fired", label)
	}
	if res.Isolated.Remote != 0 {
		t.Errorf("%s: isolated run recorded %d pulls", label, res.Isolated.Remote)
	}
}

// TestGatewaySmoke runs the experiment once at quick scale and checks the
// gates hold on a live run.
func TestGatewaySmoke(t *testing.T) {
	res := Gateway(Options{Seed: 1, Quick: true})
	checkGatewayGates(t, res, "smoke")
}

// TestGatewayArtifactGuard validates the checked-in BENCH_gateway.json
// against the acceptance gates — the `make gatewayguard` bar.
func TestGatewayArtifactGuard(t *testing.T) {
	path := filepath.Join("..", "..", BenchGatewayFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing artifact %s (run `make bench-gateway`): %v", BenchGatewayFile, err)
	}
	var keys map[string]any
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	for _, k := range []string{"seed", "vnodes", "models", "requests", "scale", "scale_x4", "shared", "isolated", "deterministic"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("artifact missing key %q", k)
		}
	}
	var res GatewayResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	checkGatewayGates(t, res, "artifact")
}
