package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/model"
	"repro/internal/planner"
)

// ---------------------------------------------------------------- Figure 2

// Fig2Row is one model's cold-request decomposition.
type Fig2Row struct {
	Model    string
	Params   int64
	Bytes    int64
	Init     time.Duration
	Load     time.Duration
	Compute  time.Duration
	Total    time.Duration
	LoadFrac float64
}

// Fig2Result reproduces Figure 2: request processing time and step breakdown
// for the VGG and ResNet families, plus the Fig 2c parameter/size table.
type Fig2Result struct{ Rows []Fig2Row }

// Fig2 runs the experiment.
func Fig2(o Options) Fig2Result {
	o = o.withDefaults()
	models := []string{
		"vgg11-imagenet", "vgg16-imagenet", "vgg19-imagenet",
		"resnet50-imagenet", "resnet101-imagenet", "resnet152-imagenet",
	}
	var res Fig2Result
	for _, name := range models {
		g := imgZoo.MustGet(name)
		st := g.Stats()
		load := o.Profile.ModelLoad(g).Total()
		comp := o.Profile.Compute(g)
		total := o.Profile.SandboxInit + load + comp
		res.Rows = append(res.Rows, Fig2Row{
			Model: name, Params: st.Params, Bytes: st.Bytes,
			Init: o.Profile.SandboxInit, Load: load, Compute: comp, Total: total,
			LoadFrac: float64(load) / float64(total),
		})
	}
	return res
}

// Render prints the Fig 2 table.
func (r Fig2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, x := range r.Rows {
		rows = append(rows, []string{
			x.Model,
			fmt.Sprintf("%.1fM", float64(x.Params)/1e6),
			fmt.Sprintf("%dMB", x.Bytes/(1<<20)),
			ms(x.Init), ms(x.Load), ms(x.Compute), ms(x.Total), pct(x.LoadFrac),
		})
	}
	return "Figure 2: request processing time for varying models\n" +
		table([]string{"model", "params", "size", "init(ms)", "load(ms)", "compute(ms)", "total(ms)", "load%"}, rows)
}

// ---------------------------------------------------------------- Figure 3

// Fig3Result reproduces Figure 3: model-loading step latencies over a sample
// of Imgclsmob models.
type Fig3Result struct {
	Models []string
	// Fractions of total loading time, averaged over the sample.
	DeserializeFrac, StructureFrac, WeightsFrac float64
	// PerModel holds the per-model breakdowns in Models order.
	PerModel []cost.LoadBreakdown
}

// Fig3 samples n models (paper: 100) and decomposes their loading latency.
func Fig3(o Options, n int) Fig3Result {
	o = o.withDefaults()
	if o.Quick && n > 20 {
		n = 20
	}
	names := imgZoo.Names()
	rng := rand.New(rand.NewSource(o.Seed))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	if n > len(names) {
		n = len(names)
	}
	names = names[:n]
	sort.Strings(names)

	var res Fig3Result
	var dSum, sSum, wSum float64
	for _, name := range names {
		b := o.Profile.ModelLoad(imgZoo.MustGet(name))
		t := float64(b.Total())
		dSum += float64(b.Deserialize) / t
		sSum += float64(b.Structure) / t
		wSum += float64(b.Weights) / t
		res.Models = append(res.Models, name)
		res.PerModel = append(res.PerModel, b)
	}
	k := float64(len(names))
	res.DeserializeFrac, res.StructureFrac, res.WeightsFrac = dSum/k, sSum/k, wSum/k
	return res
}

// Render prints the Fig 3 summary.
func (r Fig3Result) Render() string {
	return fmt.Sprintf(`Figure 3: model loading step latency over %d Imgclsmob models
  deserialize: %s of model loading (paper: negligible)
  structure:   %s (paper: 89.66%% avg)
  weights:     %s (paper: 10.28%% avg)
`, len(r.Models), pct(r.DeserializeFrac), pct(r.StructureFrac), pct(r.WeightsFrac))
}

// ---------------------------------------------------------------- Figure 4

// Fig4Row is the load latency of one operation kind in ResNet50.
type Fig4Row struct {
	Type  model.OpType
	Count int
	Mean  time.Duration
	Max   time.Duration
}

// Fig4Result reproduces Figure 4: loading latency per operation in ResNet50.
type Fig4Result struct{ Rows []Fig4Row }

// Fig4 runs the experiment.
func Fig4(o Options) Fig4Result {
	o = o.withDefaults()
	g := imgZoo.MustGet("resnet50-imagenet")
	byType := map[model.OpType][]time.Duration{}
	for _, op := range g.Ops() {
		byType[op.Type] = append(byType[op.Type], o.Profile.OpLoad(op))
	}
	var res Fig4Result
	for _, t := range model.AllOpTypes() {
		ds := byType[t]
		if len(ds) == 0 {
			continue
		}
		var sum, max time.Duration
		for _, d := range ds {
			sum += d
			if d > max {
				max = d
			}
		}
		res.Rows = append(res.Rows, Fig4Row{Type: t, Count: len(ds), Mean: sum / time.Duration(len(ds)), Max: max})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Mean > res.Rows[j].Mean })
	return res
}

// Render prints the Fig 4 table.
func (r Fig4Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, x := range r.Rows {
		rows = append(rows, []string{x.Type.String(), fmt.Sprint(x.Count), ms(x.Mean), ms(x.Max)})
	}
	return "Figure 4: loading latency for varying operations in ResNet50\n" +
		table([]string{"op", "count", "mean(ms)", "max(ms)"}, rows)
}

// ---------------------------------------------------------------- Figure 5a

// Fig5aRow compares a same-structure weight replacement against a full cold
// request for one model.
type Fig5aRow struct {
	Model     string
	ColdTotal time.Duration
	Transform time.Duration
	Reduction float64
}

// Fig5aResult reproduces Figure 5a: the strawman's Case-1 transformation.
type Fig5aResult struct {
	Rows          []Fig5aRow
	MeanReduction float64
}

// Fig5a runs the experiment over the VGG and ResNet families.
func Fig5a(o Options) Fig5aResult {
	o = o.withDefaults()
	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)
	models := []string{
		"vgg11-imagenet", "vgg16-imagenet", "vgg19-imagenet",
		"resnet50-imagenet", "resnet101-imagenet", "resnet152-imagenet",
	}
	var res Fig5aResult
	var sum float64
	for _, name := range models {
		g := imgZoo.MustGet(name)
		other := reweight(g, "retrained")
		plan := pl.Plan(other, g)
		transform := plan.TrueCost(o.Profile, other) + o.Profile.Compute(g)
		coldTotal := o.Profile.ColdStart(g) + o.Profile.Compute(g)
		red := 1 - float64(transform)/float64(coldTotal)
		res.Rows = append(res.Rows, Fig5aRow{Model: name, ColdTotal: coldTotal, Transform: transform, Reduction: red})
		sum += red
	}
	res.MeanReduction = sum / float64(len(models))
	return res
}

// Render prints the Fig 5a table.
func (r Fig5aResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, x := range r.Rows {
		rows = append(rows, []string{x.Model, ms(x.ColdTotal), ms(x.Transform), pct(x.Reduction)})
	}
	return "Figure 5a: same-structure transformation vs cold request (strawman Case 1)\n" +
		table([]string{"model", "cold(ms)", "transform(ms)", "reduction"}, rows) +
		fmt.Sprintf("mean reduction: %s (paper: 79.83%%)\n", pct(r.MeanReduction))
}

// ---------------------------------------------------------------- Figure 5c

// Fig5cResult reproduces Figure 5c: the CONV kernel scaling matrix. Cell
// (i,i) is the load latency of kernel i; cell (i,j) the reshape latency from
// kernel i to kernel j.
type Fig5cResult struct {
	Kernels  []int
	Channels int
	// Matrix[i][j] in the paper's orientation.
	Matrix [][]time.Duration
}

// Fig5c runs the experiment.
func Fig5c(o Options, kernels []int, channels int) Fig5cResult {
	o = o.withDefaults()
	if len(kernels) == 0 {
		kernels = []int{1, 2, 3, 4, 5, 6, 7}
	}
	if channels <= 0 {
		channels = 64
	}
	mk := func(k int, wid uint64) *model.Operation {
		return &model.Operation{Name: "conv", Type: model.OpConv2D,
			Shape:     model.Shape{KernelH: k, KernelW: k, InChannels: channels, OutChannels: channels, Stride: 1},
			WeightsID: wid}
	}
	res := Fig5cResult{Kernels: kernels, Channels: channels}
	for _, ki := range kernels {
		row := make([]time.Duration, 0, len(kernels))
		for _, kj := range kernels {
			if ki == kj {
				row = append(row, o.Profile.OpLoad(mk(kj, 2)))
				continue
			}
			c, _ := o.Profile.SubstituteCost(mk(ki, 1), mk(kj, 2))
			row = append(row, c)
		}
		res.Matrix = append(res.Matrix, row)
	}
	return res
}

// Render prints the Fig 5c matrix.
func (r Fig5cResult) Render() string {
	header := []string{fmt.Sprintf("from\\to (%dch)", r.Channels)}
	for _, k := range r.Kernels {
		header = append(header, fmt.Sprintf("%dx%d", k, k))
	}
	rows := make([][]string, 0, len(r.Kernels))
	for i, k := range r.Kernels {
		row := []string{fmt.Sprintf("%dx%d", k, k)}
		for j := range r.Kernels {
			row = append(row, ms(r.Matrix[i][j]))
		}
		rows = append(rows, row)
	}
	return "Figure 5c: CONV scaling matrix, ms (diagonal = load from scratch, off-diagonal = in-container reshape)\n" +
		table(header, rows)
}

// ---------------------------------------------------------------- Figure 8

// Fig8Row is the execution time of one profiled meta-operator instance.
type Fig8Row struct {
	Kind   metaop.Kind
	Target string
	Cost   time.Duration
}

// Fig8Result reproduces Figure 8: execution time of varying meta-operators
// profiled over ResNet50's operations (Module 1's offline profiling).
type Fig8Result struct{ Rows []Fig8Row }

// Fig8 runs the experiment.
func Fig8(o Options) Fig8Result {
	o = o.withDefaults()
	g := imgZoo.MustGet("resnet50-imagenet")
	// Pick representative ops: smallest and largest conv, a batch norm, a
	// relu, and the classifier dense.
	var convs []*model.Operation
	var bn, relu, dense *model.Operation
	for _, op := range g.Ops() {
		switch op.Type {
		case model.OpConv2D:
			convs = append(convs, op)
		case model.OpBatchNorm:
			if bn == nil {
				bn = op
			}
		case model.OpReLU:
			if relu == nil {
				relu = op
			}
		case model.OpDense:
			dense = op
		}
	}
	sort.Slice(convs, func(i, j int) bool { return convs[i].WeightCount() < convs[j].WeightCount() })
	small, large := convs[0], convs[len(convs)-1]

	var res Fig8Result
	add := func(k metaop.Kind, target string, c time.Duration) {
		res.Rows = append(res.Rows, Fig8Row{k, target, c})
	}
	add(metaop.KindReplace, "conv "+small.Shape.String(), o.Profile.ReplaceCost(small))
	add(metaop.KindReplace, "conv "+large.Shape.String(), o.Profile.ReplaceCost(large))
	add(metaop.KindReplace, "dense "+dense.Shape.String(), o.Profile.ReplaceCost(dense))
	add(metaop.KindReshape, "conv small→large", o.Profile.ReshapeCost(small, large))
	add(metaop.KindReshape, "conv large→small", o.Profile.ReshapeCost(large, small))
	add(metaop.KindReshape, "relu (weight-free)", o.Profile.ReshapeCost(relu, relu))
	add(metaop.KindAdd, "conv "+small.Shape.String(), o.Profile.AddCost(small))
	add(metaop.KindAdd, "conv "+large.Shape.String(), o.Profile.AddCost(large))
	add(metaop.KindAdd, "dense "+dense.Shape.String(), o.Profile.AddCost(dense))
	add(metaop.KindAdd, "batchnorm", o.Profile.AddCost(bn))
	add(metaop.KindAdd, "relu", o.Profile.AddCost(relu))
	add(metaop.KindReduce, "any op", o.Profile.ReduceCost(large))
	add(metaop.KindEdge, "per edge", o.Profile.EdgeCost(1))
	return res
}

// Render prints the Fig 8 table.
func (r Fig8Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, x := range r.Rows {
		rows = append(rows, []string{x.Kind.String(), x.Target, ms(x.Cost)})
	}
	return "Figure 8: execution time of varying meta-operators (ResNet50 profile)\n" +
		table([]string{"meta-op", "target", "cost(ms)"}, rows)
}
