package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checkers"
)

// TestSelfLintSmoke runs the full registry over real module packages and
// requires them clean. The original pair — internal/metrics (pure
// virtual-time data plumbing) and internal/analysis itself (the linter
// lints its own framework) — keeps a fast regression signal that the loader
// resolves module-local and stdlib imports offline; the concurrency-heavy
// packages (fanout, controlplane, supervisor, planner) pin the
// interprocedural checkers (lockorder, goroutinejoin, unlockpath, timeprop)
// at zero findings over the code they were written to guard. The CI lint
// job covers ./... end to end.
func TestSelfLintSmoke(t *testing.T) {
	root, mod, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(root, mod, checkers.All(), []string{
		"./internal/metrics",
		"./internal/analysis/...",
		"./internal/fanout",
		"./internal/controlplane",
		"./internal/supervisor",
		"./internal/planner",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestSelfLintUnusedConcurrencyAllow pins the suppression audit for the new
// checkers: an //optimus:allow lockorder directive on code with no lockorder
// finding must itself surface as an unused-directive finding. Without this,
// a fixed deadlock could leave behind a suppression that silently swallows
// the next one.
func TestSelfLintUnusedConcurrencyAllow(t *testing.T) {
	findings, err := analysis.CheckFixture(checkers.NewLockorder(),
		fixture("allowunused_lockorder"), "repro/internal/fanout")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the unused directive): %v", len(findings), findings)
	}
	f := findings[0]
	if f.Checker != analysis.DirectiveChecker || !strings.Contains(f.Message, "unused directive") {
		t.Errorf("finding = %s, want an unused //optimus:allow lockorder report", f)
	}
}
