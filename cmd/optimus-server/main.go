// Command optimus-server runs the Optimus REST gateway (§7): register models
// and invoke inference functions over HTTP against a live Optimus-scheduled
// cluster.
//
//	optimus-server -addr :8080 -preload 8
//
//	curl localhost:8080/api/models
//	curl -X POST localhost:8080/api/invoke -d '{"model":"resnet50-imagenet"}'
//	curl 'localhost:8080/api/plan?src=resnet50-imagenet&dst=resnet101-imagenet'
//	curl localhost:8080/api/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/cost"
	"repro/internal/gateway"
	"repro/internal/policy"
	"repro/internal/repository"
	"repro/internal/simulate"
	"repro/internal/zoo"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		nodes      = flag.Int("nodes", 2, "worker nodes")
		slots      = flag.Int("containers", 4, "containers per node")
		gpu        = flag.Bool("gpu", false, "GPU hardware profile")
		policyName = flag.String("policy", "optimus", "container policy: optimus|openwhisk|pagurus|tetris")
		preload    = flag.Int("preload", 6, "preregister this many representative models (0 = none)")
		modelsDir  = flag.String("models-dir", "", "persist registered models to this directory (reloaded on restart)")
	)
	flag.Parse()

	prof := cost.CPU()
	if *gpu {
		prof = cost.GPU()
	}
	var pol simulate.Policy
	switch *policyName {
	case "optimus":
		pol = policy.Optimus{}
	case "openwhisk":
		pol = policy.OpenWhisk{}
	case "pagurus":
		pol = policy.Pagurus{}
	case "tetris":
		pol = policy.Tetris{}
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}

	var store *repository.Store
	if *modelsDir != "" {
		var err error
		store, err = repository.Open(*modelsDir, nil)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("model repository at %s (%d models)", *modelsDir, store.Len())
	}
	gw := gateway.New(gateway.Config{
		Cluster: simulate.Config{
			Nodes:             *nodes,
			ContainersPerNode: *slots,
			Profile:           prof,
			Policy:            pol,
		},
		Repository: store,
	})

	if *preload > 0 {
		img := zoo.Imgclsmob()
		cnn, bert := zoo.Representative21()
		names := append(append([]string(nil), cnn...), bert...)
		if *preload > len(names) {
			*preload = len(names)
		}
		bz := zoo.BERTZoo()
		for _, n := range names[:*preload] {
			g, err := img.Get(n)
			if err != nil {
				g = bz.MustGet(n)
			}
			if store != nil {
				if _, ok := store.Get(n); ok {
					continue // already persisted from a previous run
				}
			}
			if err := gw.RegisterModel(g); err != nil {
				log.Fatalf("preload %s: %v", n, err)
			}
			log.Printf("preloaded %s", g)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("optimus-server listening on %s (policy=%s, %d nodes × %d containers, %s profile)\n",
		*addr, *policyName, *nodes, *slots, prof.Name)
	log.Fatal(srv.ListenAndServe())
}
