package health

import (
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Enabled:            true,
		SuspectStrikes:     2,
		QuarantineStrikes:  2,
		ClearStreak:        3,
		QuarantineDuration: 10 * time.Second,
		DrainTimeout:       5 * time.Second,
		FailureThreshold:   0.5,
	}
}

// failUntil drives failures into the node until it reaches the wanted state.
func failUntil(t *testing.T, tr *Tracker, node int, want State, now time.Duration) time.Duration {
	t.Helper()
	for i := 0; i < 100; i++ {
		if tr.State(node, now) == want {
			return now
		}
		tr.ObserveFailure(node, now)
		now += time.Second
	}
	t.Fatalf("node %d never reached %v (state %v)", node, want, tr.State(node, now))
	return now
}

func TestNilTrackerIsInert(t *testing.T) {
	var tr *Tracker
	tr.ObserveFailure(0, 0)
	tr.ObserveServed(0, 0, time.Second)
	tr.NoteDrained(0, 0)
	if tr.Avoid(0, 0) || tr.State(0, 0) != Healthy || tr.MTTR() != 0 {
		t.Fatal("nil tracker is not inert")
	}
	if New(Config{}, 4) != nil {
		t.Fatal("disabled config should return nil tracker")
	}
}

func TestFailureSignalLifecycle(t *testing.T) {
	tr := New(testConfig(), 2)
	now := time.Duration(0)

	// Sustained failures: healthy → suspect → quarantined.
	now = failUntil(t, tr, 0, Quarantined, now)
	if !tr.Avoid(0, now) {
		t.Fatal("quarantined node should be avoided")
	}
	if tr.Avoid(1, now) {
		t.Fatal("healthy node should not be avoided")
	}

	// Quarantine window elapses → draining (still avoided).
	now += 10 * time.Second
	if got := tr.State(0, now); got != Draining {
		t.Fatalf("after quarantine window: state %v, want draining", got)
	}
	if !tr.Avoid(0, now) {
		t.Fatal("draining node should be avoided")
	}

	// Drained → recovered (routable again, on probation).
	tr.NoteDrained(0, now)
	if got := tr.State(0, now); got != Recovered {
		t.Fatalf("after drain: state %v, want recovered", got)
	}
	if tr.Avoid(0, now) {
		t.Fatal("recovered node should route")
	}

	// Clean streak → healthy, closing the episode.
	for i := 0; i < 3; i++ {
		now += time.Second
		tr.ObserveServed(0, now, 10*time.Millisecond)
	}
	if got := tr.State(0, now); got != Healthy {
		t.Fatalf("after clean streak: state %v, want healthy", got)
	}
	eps := tr.Episodes()
	if len(eps) != 1 || eps[0].Node != 0 || eps[0].End <= eps[0].Start {
		t.Fatalf("episodes = %+v, want one well-formed episode for node 0", eps)
	}
	if tr.MTTR() != eps[0].End-eps[0].Start {
		t.Fatalf("MTTR %v != episode duration %v", tr.MTTR(), eps[0].End-eps[0].Start)
	}
	ws := tr.Windows(now)
	if len(ws) != 1 || ws[0].End <= ws[0].Start {
		t.Fatalf("windows = %+v, want one closed window", ws)
	}
	st := tr.Stats()
	if st.Suspects != 1 || st.Quarantines != 1 || st.Drains != 1 || st.Recoveries != 1 || st.Clears != 1 {
		t.Fatalf("stats = %+v, want one of each transition", st)
	}
}

func TestDrainTimeoutRecoversUndrainedNode(t *testing.T) {
	tr := New(testConfig(), 1)
	now := failUntil(t, tr, 0, Quarantined, 0)
	now += 10*time.Second + 5*time.Second // quarantine + drain timeout
	if got := tr.State(0, now); got != Recovered {
		t.Fatalf("after drain timeout: state %v, want recovered", got)
	}
}

func TestRecoveredRelapsesToSuspect(t *testing.T) {
	tr := New(testConfig(), 1)
	now := failUntil(t, tr, 0, Quarantined, 0)
	now += 10 * time.Second
	tr.NoteDrained(0, now)
	now = failUntil(t, tr, 0, Suspect, now)
	if len(tr.Episodes()) != 0 {
		t.Fatal("relapse must keep the episode open")
	}
	if tr.State(0, now) != Suspect {
		t.Fatal("relapsed node should be suspect")
	}
}

func TestLatencyOutlierFlagsNode(t *testing.T) {
	cfg := testConfig()
	cfg.MinObservations = 4
	cfg.LatencyFactor = 3
	tr := New(cfg, 5)
	now := time.Duration(0)
	// Nodes 1-4 set a fast cluster baseline; node 0 is a slow outlier.
	for i := 0; i < 20; i++ {
		now += time.Second
		for n := 1; n < 5; n++ {
			tr.ObserveServed(n, now, 10*time.Millisecond)
		}
		tr.ObserveServed(0, now, 500*time.Millisecond)
	}
	if got := tr.State(0, now); got == Healthy {
		t.Fatalf("slow outlier stayed healthy (node lat EWMA should exceed 3x cluster)")
	}
	for n := 1; n < 5; n++ {
		if got := tr.State(n, now); got != Healthy {
			t.Fatalf("baseline node %d state %v, want healthy", n, got)
		}
	}
}

func TestObserveOnlyNeverAvoids(t *testing.T) {
	cfg := testConfig()
	cfg.ObserveOnly = true
	tr := New(cfg, 1)
	now := failUntil(t, tr, 0, Quarantined, 0)
	if tr.Avoid(0, now) {
		t.Fatal("observe-only tracker must not steer routing")
	}
	if tr.State(0, now) != Quarantined {
		t.Fatal("observe-only tracker should still track state")
	}
}

func TestExportImportReconcilesState(t *testing.T) {
	tr := New(testConfig(), 3)
	now := failUntil(t, tr, 0, Quarantined, 0)
	now += 10 * time.Second // node 0 → draining
	if tr.State(0, now) != Draining {
		t.Fatal("setup: node 0 should be draining")
	}
	snaps := tr.Export()
	if len(snaps) != 3 || snaps[0].State != "draining" {
		t.Fatalf("export = %+v, want 3 snapshots with node 0 draining", snaps)
	}

	// Restore into a fresh tracker: the draining node must not come back
	// healthy, and must finish its drain-timeout from the restored instant.
	fresh := New(testConfig(), 3)
	fresh.Import(snaps, now)
	if got := fresh.State(0, now); got != Draining {
		t.Fatalf("restored state %v, want draining", got)
	}
	if !fresh.Avoid(0, now) {
		t.Fatal("restored draining node must stay avoided")
	}
	if got := fresh.State(0, now+5*time.Second); got != Recovered {
		t.Fatalf("restored node after drain timeout: %v, want recovered", got)
	}

	// Out-of-range snapshots are ignored.
	small := New(testConfig(), 1)
	small.Import(snaps, now)
	if small.State(0, now) != Draining {
		t.Fatal("in-range snapshot should restore")
	}

	// Unknown state names restore conservatively as suspect.
	odd := New(testConfig(), 1)
	odd.Import([]NodeSnapshot{{Node: 0, State: "exploded"}}, now)
	if got := odd.State(0, now); got != Suspect {
		t.Fatalf("unknown state restored as %v, want suspect", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Summary {
		tr := New(testConfig(), 4)
		now := time.Duration(0)
		for i := 0; i < 500; i++ {
			now += 100 * time.Millisecond
			node := i % 4
			if node == 2 && i%3 != 0 {
				tr.ObserveFailure(node, now)
			} else {
				tr.ObserveServed(node, now, time.Duration(10+i%7)*time.Millisecond)
			}
			if i%17 == 0 {
				tr.NoteDrained(2, now)
			}
		}
		return tr.Summarize()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same observation stream diverged: %+v vs %+v", a, b)
	}
}

func TestTransitionsTableCoversLifecycle(t *testing.T) {
	seen := map[State]bool{}
	for _, tr := range Transitions() {
		seen[tr.From] = true
		seen[tr.To] = true
		if tr.Trigger == "" {
			t.Fatalf("transition %v→%v has no trigger", tr.From, tr.To)
		}
	}
	for st := Healthy; st < stateCount; st++ {
		if !seen[st] {
			t.Fatalf("state %v missing from the transition table", st)
		}
	}
}

func TestStateStringsRoundTrip(t *testing.T) {
	for st := Healthy; st < stateCount; st++ {
		if parseState(st.String()) != st {
			t.Fatalf("state %v does not round-trip through its name", st)
		}
	}
}
