package zoo

import (
	"fmt"

	"repro/internal/model"
)

func scaleWidth(w int, mult float64) int {
	s := int(float64(w) * mult)
	if s < 8 {
		s = 8
	}
	return s
}

// MobileNetV1 builds the depthwise-separable MobileNet (Howard et al.) with
// the given width multiplier.
func MobileNetV1(width float64, classes int, scope string) *model.Graph {
	b := model.NewBuilder("mobilenet", "mobilenet", scope)
	b.Input(3)
	c := scaleWidth(32, width)
	b.Conv("stem.conv", 3, 3, c, 2)
	b.BN("stem.bn", c)
	b.ReLU("stem.relu", c)

	// (output width, stride) per separable block.
	plan := []struct{ out, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	in := c
	for i, p := range plan {
		out := scaleWidth(p.out, width)
		tag := fmt.Sprintf("b%d", i+1)
		b.Add(model.Operation{Name: tag + ".dwconv", Type: model.OpDepthwiseConv2D,
			Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: in, OutChannels: in, Stride: p.stride}})
		b.BN(tag+".bn1", in)
		b.ReLU(tag+".relu1", in)
		b.Conv(tag+".pwconv", 1, in, out, 1)
		b.BN(tag+".bn2", out)
		b.ReLU(tag+".relu2", out)
		in = out
	}
	b.GlobalAvgPool("gap", in)
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// MobileNetV2 builds the inverted-residual MobileNetV2 (Sandler et al.) with
// the given width multiplier.
func MobileNetV2(width float64, classes int, scope string) *model.Graph {
	b := model.NewBuilder("mobilenetv2", "mobilenetv2", scope)
	b.Input(3)
	c := scaleWidth(32, width)
	b.Conv("stem.conv", 3, 3, c, 2)
	b.BN("stem.bn", c)
	b.Add(model.Operation{Name: "stem.relu6", Type: model.OpReLU, Shape: model.Shape{OutChannels: c}})

	// (expansion t, output width, repeats n, stride s) per stage.
	plan := []struct{ t, out, n, s int }{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	in := c
	for si, st := range plan {
		out := scaleWidth(st.out, width)
		for r := 0; r < st.n; r++ {
			stride := 1
			if r == 0 {
				stride = st.s
			}
			tag := fmt.Sprintf("s%d.b%d", si+1, r+1)
			entry := b.Tail()[0]
			hidden := in * st.t
			if st.t != 1 {
				b.Conv(tag+".expand", 1, in, hidden, 1)
				b.BN(tag+".bn1", hidden)
				b.Add(model.Operation{Name: tag + ".relu6a", Type: model.OpReLU, Shape: model.Shape{OutChannels: hidden}})
			}
			b.Add(model.Operation{Name: tag + ".dwconv", Type: model.OpDepthwiseConv2D,
				Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: hidden, OutChannels: hidden, Stride: stride}})
			b.BN(tag+".bn2", hidden)
			b.Add(model.Operation{Name: tag + ".relu6b", Type: model.OpReLU, Shape: model.Shape{OutChannels: hidden}})
			b.Conv(tag+".project", 1, hidden, out, 1)
			b.BN(tag+".bn3", out)
			if stride == 1 && in == out {
				b.AddMerge(tag+".add", out, b.Tail()[0], entry)
			}
			in = out
		}
	}
	last := scaleWidth(1280, width)
	if last < 1280 {
		last = 1280 // v2 keeps the final width at 1280 for multipliers < 1
	}
	b.Conv("head.conv", 1, in, last, 1)
	b.BN("head.bn", last)
	b.Add(model.Operation{Name: "head.relu6", Type: model.OpReLU, Shape: model.Shape{OutChannels: last}})
	b.GlobalAvgPool("gap", last)
	b.Dense("fc", last, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}
