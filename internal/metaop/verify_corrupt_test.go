package metaop_test

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/zoo"
)

func conv(name string, k, w int, wid uint64) model.Operation {
	return model.Operation{Name: name, Type: model.OpConv2D,
		Shape:     model.Shape{KernelH: k, KernelW: k, InChannels: w, OutChannels: w, Stride: 1},
		WeightsID: wid}
}

func chain(name string, ops ...model.Operation) *model.Graph {
	b := model.NewBuilder(name, "test", name)
	for _, op := range ops {
		b.Add(op)
	}
	return b.Graph()
}

// realPlan builds a genuine planner plan between two zoo models, as the
// production path does, so the corruption tests mutate realistic step lists
// rather than synthetic ones.
func realPlan(t *testing.T, srcName, dstName string) (*metaop.Plan, *model.Graph, *model.Graph) {
	t.Helper()
	img := zoo.Imgclsmob()
	src, dst := img.MustGet(srcName), img.MustGet(dstName)
	prof := cost.CPU()
	p := planner.New(cost.Exact(prof), planner.AlgoGroup).Plan(src, dst)
	if p.LoadFromScratch {
		t.Fatalf("pair %s→%s takes the safeguard path; pick a transformable pair", srcName, dstName)
	}
	if len(p.Steps) == 0 {
		t.Fatalf("pair %s→%s has an empty plan", srcName, dstName)
	}
	if err := metaop.Verify(prof, p, src, dst); err != nil {
		t.Fatalf("pristine plan does not verify: %v", err)
	}
	return p, src, dst
}

func clonePlan(p *metaop.Plan) *metaop.Plan {
	cp := *p
	cp.Steps = append([]metaop.Step(nil), p.Steps...)
	return &cp
}

// TestVerifyRejectsCorruptedPlans adversarially mutates a real planner plan
// — truncating the step list, swapping step targets, duplicating Edge steps,
// retargeting substitutions — and asserts Verify rejects every mutation. A
// corrupted plan silently "verifying" would mean the executor could declare a
// wrong model graph correct.
func TestVerifyRejectsCorruptedPlans(t *testing.T) {
	prof := cost.CPU()
	p, src, dst := realPlan(t, "resnet18-imagenet", "resnet34-imagenet")

	substIdx := -1 // first Replace/Reshape step, the richest mutation target
	for i, s := range p.Steps {
		if s.Kind == metaop.KindReplace || s.Kind == metaop.KindReshape {
			substIdx = i
			break
		}
	}
	if substIdx < 0 {
		t.Fatal("plan has no substitution step to corrupt")
	}

	mutations := []struct {
		name   string
		mutate func(cp *metaop.Plan) bool // false = mutation not applicable
	}{
		{"drop last step", func(cp *metaop.Plan) bool {
			cp.Steps = cp.Steps[:len(cp.Steps)-1]
			return true
		}},
		{"drop first step", func(cp *metaop.Plan) bool {
			cp.Steps = cp.Steps[1:]
			return true
		}},
		{"truncate to first half", func(cp *metaop.Plan) bool {
			cp.Steps = cp.Steps[:len(cp.Steps)/2]
			return len(cp.Steps) < len(p.Steps)
		}},
		{"drop one substitution step", func(cp *metaop.Plan) bool {
			cp.Steps = append(cp.Steps[:substIdx:substIdx], cp.Steps[substIdx+1:]...)
			return true
		}},
		{"swap substitution target to wrong dst op", func(cp *metaop.Plan) bool {
			s := cp.Steps[substIdx]
			// Point the step at a different destination op's content: the
			// realized graph holds the wrong operation in the right slot.
			other := (s.DstID + 1) % dst.NumOps()
			if *dst.Op(other) == s.Dst {
				return false
			}
			s.Dst = *dst.Op(other)
			cp.Steps[substIdx] = s
			return true
		}},
		{"swap two steps' destination slots", func(cp *metaop.Plan) bool {
			var idx []int
			for i, s := range cp.Steps {
				if s.Kind == metaop.KindReplace || s.Kind == metaop.KindReshape || s.Kind == metaop.KindAdd {
					idx = append(idx, i)
				}
			}
			for a := 0; a < len(idx); a++ {
				for b := a + 1; b < len(idx); b++ {
					i, j := idx[a], idx[b]
					if cp.Steps[i].Dst == cp.Steps[j].Dst {
						continue
					}
					cp.Steps[i].DstID, cp.Steps[j].DstID = cp.Steps[j].DstID, cp.Steps[i].DstID
					return true
				}
			}
			return false
		}},
		{"duplicate an edge step", func(cp *metaop.Plan) bool {
			for _, s := range cp.Steps {
				if s.Kind == metaop.KindEdge {
					cp.Steps = append(cp.Steps, s)
					return true
				}
			}
			return false
		}},
		{"inject duplicate edge pair", func(cp *metaop.Plan) bool {
			e := metaop.Step{Kind: metaop.KindEdge, EdgeFrom: 0, EdgeTo: 1, EdgeAdd: true}
			cp.Steps = append(cp.Steps, e, e)
			return true
		}},
		{"retarget substitution to missing source op", func(cp *metaop.Plan) bool {
			s := cp.Steps[substIdx]
			s.SrcID = src.NumOps() + 100
			cp.Steps[substIdx] = s
			return true
		}},
	}

	applied := 0
	for _, m := range mutations {
		cp := clonePlan(p)
		if !m.mutate(cp) {
			t.Logf("mutation %q not applicable to this plan", m.name)
			continue
		}
		applied++
		if err := metaop.Verify(prof, cp, src, dst); err == nil {
			t.Errorf("mutation %q: corrupted plan verified as correct", m.name)
		}
	}
	if applied < 6 {
		t.Fatalf("only %d mutations applied; the plan is too small to be a meaningful target", applied)
	}
}

// TestApplyRejectsTruncatedCarryOver pins the carry-over rule directly: a
// destination slot with no step and no identical unconsumed source op is a
// truncated plan, not a silent fill-from-dst.
func TestApplyRejectsTruncatedCarryOver(t *testing.T) {
	prof := cost.CPU()
	src := chain("src", conv("a", 3, 8, 1), conv("b", 3, 8, 2))
	dst := chain("dst", conv("a", 3, 8, 1), conv("b", 3, 8, 9))

	full := &metaop.Plan{Steps: []metaop.Step{
		{Kind: metaop.KindReplace, SrcID: 1, DstID: 1, Dst: *dst.Op(1)},
	}}
	if err := metaop.Verify(prof, full, src, dst); err != nil {
		t.Fatalf("valid single-replace plan rejected: %v", err)
	}

	// Op 0 matches perfectly and carries over; op 1 differs (WeightsID 2 vs
	// 9) and NEEDS its Replace step. An empty plan must therefore fail.
	truncated := &metaop.Plan{}
	if _, _, err := metaop.Apply(prof, truncated, src, dst); err == nil {
		t.Fatal("empty plan filled differing slot from dst")
	} else if !strings.Contains(err.Error(), "no identical source op") {
		t.Fatalf("unexpected rejection: %v", err)
	}

	// A source op consumed by a step can no longer double as carry-over for
	// an identical destination slot: only the unrelated op 1 remains
	// unconsumed, and it doesn't match dst slot 1.
	src2 := chain("src2", conv("a", 3, 8, 1), conv("b", 3, 8, 5))
	dst2 := chain("dst2", conv("a", 3, 8, 1), conv("a", 3, 8, 1))
	consuming := &metaop.Plan{Steps: []metaop.Step{
		{Kind: metaop.KindReplace, SrcID: 0, DstID: 0, Dst: *dst2.Op(0)},
	}}
	if _, _, err := metaop.Apply(prof, consuming, src2, dst2); err == nil {
		t.Fatal("consumed source op was reused as carry-over")
	} else if !strings.Contains(err.Error(), "no identical source op") {
		t.Fatalf("unexpected rejection: %v", err)
	}

	// Identical-op carry-over still works when genuinely available: two
	// identical source ops, one consumed, one carrying over.
	src3 := chain("src3", conv("a", 3, 8, 1), conv("b", 3, 8, 1))
	dst3 := chain("dst3", conv("a", 3, 8, 1), conv("b", 3, 8, 1))
	partial := &metaop.Plan{Steps: []metaop.Step{
		{Kind: metaop.KindReplace, SrcID: 0, DstID: 0, Dst: *dst3.Op(0)},
	}}
	if err := metaop.Verify(prof, partial, src3, dst3); err != nil {
		t.Fatalf("legitimate carry-over rejected: %v", err)
	}
}
