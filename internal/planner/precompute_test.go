package planner

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/zoo"
)

// propZoo builds n seeded random graphs for the parallel-vs-serial property
// tests.
func propZoo(n, maxOps int) []*model.Graph {
	out := make([]*model.Graph, n)
	for i := range out {
		out[i] = randomGraph(fmt.Sprintf("m%d", i), int64(100+i), maxOps)
	}
	return out
}

// tinyZoo builds graphs small enough for the brute-force oracle: every
// ordered pair's cost matrix (src ops + dst ops) stays within
// bruteForceLimit.
func tinyZoo() []*model.Graph {
	return []*model.Graph{
		chain("t0", convOp("c1", 3, 8, 8), reluOp("r1", 8)),
		chain("t1", convOp("c1", 5, 8, 8), reluOp("r1", 8), convOp("c2", 3, 8, 8)),
		chain("t2", convOp("c1", 1, 8, 16), reluOp("r1", 16)),
		chain("t3", reluOp("r1", 8), convOp("c1", 3, 8, 8), reluOp("r2", 8)),
	}
}

// TestParallelPrecomputeMatchesSerial is the determinism property test: the
// parallel pipeline must produce byte-identical plans (JSON covers step
// order, costs and the safeguard decision) to direct serial planning, for
// every ordered pair and every planning algorithm.
func TestParallelPrecomputeMatchesSerial(t *testing.T) {
	cases := []struct {
		algo   Algorithm
		models []*model.Graph
	}{
		{AlgoGroup, propZoo(8, 10)},
		{AlgoHungarian, propZoo(8, 10)},
		{AlgoBrute, tinyZoo()}, // brute needs tiny matrices
	}
	for _, tc := range cases {
		t.Run(tc.algo.String(), func(t *testing.T) {
			pl := New(exact(), tc.algo)
			parallel := NewCache()
			NewPrecomputer(pl, parallel, 8).PrecomputeAll(tc.models)

			for i, src := range tc.models {
				for j, dst := range tc.models {
					if i == j {
						continue
					}
					got, ok := parallel.Get(src, dst)
					if !ok {
						t.Fatalf("%s→%s missing from parallel cache", src.Name, dst.Name)
					}
					want := pl.Plan(src, dst)
					jw, errW := json.Marshal(want)
					jg, errG := json.Marshal(got)
					if errW != nil || errG != nil {
						t.Fatalf("marshal: %v / %v", errW, errG)
					}
					if string(jw) != string(jg) {
						t.Errorf("%s→%s: parallel plan differs from serial\nserial:   %s\nparallel: %s",
							src.Name, dst.Name, jw, jg)
					}
				}
			}
		})
	}
}

// TestGetOrPlanSingleflight: a burst of concurrent GetOrPlan calls for one
// pair computes the plan exactly once; everyone gets the same plan object and
// every call is accounted as planned, deduped or a cache hit.
func TestGetOrPlanSingleflight(t *testing.T) {
	img := zoo.Imgclsmob()
	src := img.MustGet("resnet50-imagenet")
	dst := img.MustGet("resnet101-imagenet")
	c := NewCache()
	pl := New(exact(), AlgoGroup)

	const callers = 16
	plans := make([]any, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			plans[i] = c.GetOrPlan(pl, src, dst)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 1; i < callers; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("caller %d got a different plan object", i)
		}
	}
	ct := c.Counters()
	if ct.Planned != 1 {
		t.Errorf("planned %d times, want exactly 1 (singleflight)", ct.Planned)
	}
	if ct.Planned+ct.Deduped+ct.Hits != callers {
		t.Errorf("planned %d + deduped %d + hits %d != %d callers",
			ct.Planned, ct.Deduped, ct.Hits, callers)
	}
	if c.Len() != 1 {
		t.Errorf("cache Len = %d, want 1", c.Len())
	}
}

// TestCacheLRUEviction: a bounded cache evicts the least recently used plan,
// counts the eviction, and keeps freshly used entries.
func TestCacheLRUEviction(t *testing.T) {
	base := chain("base", convOp("c1", 3, 8, 8))
	dsts := []*model.Graph{
		chain("d0", reluOp("r", 8)),
		chain("d1", reluOp("r", 16)),
		chain("d2", reluOp("r", 32)),
	}
	c := NewCacheBounded(2)
	pl := New(exact(), AlgoGroup)

	p0 := c.GetOrPlan(pl, base, dsts[0])
	_ = c.GetOrPlan(pl, base, dsts[1])
	// Freshen (base, d0) so (base, d1) becomes the LRU entry.
	if p, ok := c.Get(base, dsts[0]); !ok || p != p0 {
		t.Fatal("freshening lookup missed")
	}
	_ = c.GetOrPlan(pl, base, dsts[2]) // exceeds the bound → evicts (base, d1)

	if c.Len() != 2 {
		t.Fatalf("cache Len = %d, want 2 (bounded)", c.Len())
	}
	ct := c.Counters()
	if ct.Evictions != 1 || ct.Size != 2 || ct.Limit != 2 {
		t.Errorf("counters = %+v, want 1 eviction at size 2/2", ct)
	}
	if _, ok := c.Get(base, dsts[0]); !ok {
		t.Error("recently used pair was evicted")
	}
	if _, ok := c.Get(base, dsts[1]); ok {
		t.Error("LRU pair survived past the bound")
	}
	if _, ok := c.Get(base, dsts[2]); !ok {
		t.Error("newest pair missing")
	}
}

// TestPrecomputerCounters: EnqueueAll skips the self pair, Quiesce drains the
// backlog, the pipeline plans each unique pair exactly once (no duplicate
// work), and re-enqueueing already-planned pairs does not replan them.
func TestPrecomputerCounters(t *testing.T) {
	models := propZoo(5, 8)
	pl := New(exact(), AlgoGroup)
	c := NewCache()
	p := NewPrecomputer(pl, c, 4)

	p.EnqueueAll(models[0], models) // includes models[0] itself → skipped
	p.Quiesce()
	if !p.Ready() {
		t.Fatal("pipeline not ready after Quiesce")
	}

	want := 2 * (len(models) - 1)
	st := p.Stats()
	if st.Enqueued != want || st.Completed != want || st.Pending != 0 {
		t.Errorf("enqueued/completed/pending = %d/%d/%d, want %d/%d/0",
			st.Enqueued, st.Completed, st.Pending, want, want)
	}
	if got := c.Counters().Planned; got != want || got != c.Len() {
		t.Errorf("planned %d plans into a cache of %d, want %d each (no duplicates)",
			got, c.Len(), want)
	}

	// Re-enqueueing the same pairs is a cheap cache probe, not a replan.
	p.EnqueueAll(models[0], models)
	p.Quiesce()
	if got := c.Counters().Planned; got != want {
		t.Errorf("re-enqueue replanned: planned = %d, want still %d", got, want)
	}
}
