package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSoakSmoke runs the chaos soak at the quick horizon and checks the
// invariants that must hold at any scale: the resilient mode's warm-hit
// ratio does not regress below the bounded-retry baseline's, the resilience
// machinery actually fires, and the double-run determinism proof passes.
func TestSoakSmoke(t *testing.T) {
	res := Soak(Options{Quick: true, Seed: 1}, 0)
	if res.Baseline.Served == 0 || res.Resilient.Served == 0 {
		t.Fatal("soak served nothing")
	}
	if !res.Deterministic {
		t.Error("second same-seed resilient run diverged")
	}
	if res.Resilient.HitRatio < res.Baseline.HitRatio {
		t.Errorf("resilient hit ratio %.4f below baseline %.4f",
			res.Resilient.HitRatio, res.Baseline.HitRatio)
	}
	if res.Resilient.Faults.HedgedTransforms == 0 {
		t.Error("resilient soak never hedged a hung transform")
	}
	if res.Resilient.Faults.BackoffRetries == 0 {
		t.Error("resilient soak never delayed a retry")
	}
	if res.Baseline.Faults.HedgedTransforms != 0 || res.Baseline.Faults.BackoffRetries != 0 {
		t.Errorf("baseline soak used resilience machinery: %+v", res.Baseline.Faults)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

// TestSoakRunsAreByteIdentical replays the whole soak experiment twice with
// the same seed and requires the marshaled results to match byte for byte —
// the `optimus-bench soak` determinism contract.
func TestSoakRunsAreByteIdentical(t *testing.T) {
	a, err := json.Marshal(Soak(Options{Quick: true, Seed: 7}, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Soak(Options{Quick: true, Seed: 7}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("two same-seed soak runs marshaled differently")
	}
}

// TestSoakArtifactGuard validates the checked-in BENCH_soak.json: required
// keys present, the determinism proof passed at generation time, and the
// resilient mode recovered at least the baseline's hit ratio without losing
// availability.
func TestSoakArtifactGuard(t *testing.T) {
	path := filepath.Join("..", "..", BenchSoakFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing artifact %s (run `make bench-soak`): %v", BenchSoakFile, err)
	}
	var keys map[string]any
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	for _, k := range []string{"seed", "horizon_ms", "rates", "baseline", "resilient", "deterministic"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("artifact missing key %q", k)
		}
	}
	var res SoakResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Error("artifact records a nondeterministic soak")
	}
	for _, run := range []SoakRun{res.Baseline, res.Resilient} {
		if run.Arrivals == 0 || run.Served == 0 {
			t.Errorf("%s run served nothing", run.Mode)
		}
		if run.Availability <= 0 || run.Availability > 1 {
			t.Errorf("%s availability out of range: %v", run.Mode, run.Availability)
		}
		if run.GoodputDuringFault <= 0 || run.GoodputDuringFault > 1 {
			t.Errorf("%s goodput-during-fault out of range: %v", run.Mode, run.GoodputDuringFault)
		}
	}
	if res.Resilient.HitRatio < res.Baseline.HitRatio {
		t.Errorf("artifact resilient hit ratio %.4f below baseline %.4f",
			res.Resilient.HitRatio, res.Baseline.HitRatio)
	}
	if res.Resilient.Availability < res.Baseline.Availability {
		t.Errorf("artifact resilient availability %.4f below baseline %.4f",
			res.Resilient.Availability, res.Baseline.Availability)
	}
	if res.Resilient.MTTRMS <= 0 || res.Resilient.Episodes == 0 {
		t.Error("artifact resilient run measured no recovery episodes")
	}
	if res.Resilient.Faults.HedgedTransforms == 0 || res.Resilient.Faults.BackoffRetries == 0 {
		t.Error("artifact resilient run never exercised hedging/backoff")
	}
}

// TestRecoveryArtifactGuard validates the checked-in BENCH_recovery.json:
// base and supervised rows per rate, post-restore hit ratio and MTTR
// recorded, and at the top fault rate the supervised configuration must beat
// the base one on both mean latency and MTTR.
func TestRecoveryArtifactGuard(t *testing.T) {
	path := filepath.Join("..", "..", BenchRecoveryFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing artifact %s (run `make bench-recovery`): %v", BenchRecoveryFile, err)
	}
	var res RecoveryResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Points) < 4 || len(res.Points)%2 != 0 {
		t.Fatalf("artifact has %d points, want base+supervised pairs", len(res.Points))
	}
	for i, p := range res.Points {
		if want := i%2 == 1; p.Supervised != want {
			t.Fatalf("point %d supervised = %v, want %v", i, p.Supervised, want)
		}
		if p.Served == 0 {
			t.Errorf("point %d served nothing", i)
		}
		if p.PostRestoreHit <= 0 || p.PostRestoreHit > 1 {
			t.Errorf("point %d post-restore hit out of range: %v", i, p.PostRestoreHit)
		}
	}
	base, sup := res.Points[len(res.Points)-2], res.Points[len(res.Points)-1]
	if base.Rate != sup.Rate {
		t.Fatalf("last pair rates differ: %v vs %v", base.Rate, sup.Rate)
	}
	if base.Rate == 0 {
		t.Fatal("artifact never injected faults")
	}
	if sup.Mean >= base.Mean {
		t.Errorf("supervised mean %v not below base %v at rate %v", sup.Mean, base.Mean, sup.Rate)
	}
	if sup.MTTRMS >= base.MTTRMS {
		t.Errorf("supervised MTTR %.0fms not below base %.0fms at rate %v",
			sup.MTTRMS, base.MTTRMS, sup.Rate)
	}
	if sup.Faults.WatchdogCancels == 0 {
		t.Error("supervised top-rate run cancelled no hangs")
	}
}
