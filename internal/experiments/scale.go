package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// BenchScaleFile is the artifact `optimus-bench scale` emits; `make check`
// and CI validate its contents.
const BenchScaleFile = "BENCH_sim_scale.json"

// ScaleBench is the simulator hot-path scaling benchmark: one synthetic
// million-request trace on a sharded cluster replayed three ways —
//
//   - serial/scan: the legacy O(nodes×containers) scanning router
//     (Config.RouteScan), the pre-index engine baseline;
//   - indexed: the incrementally-maintained routing index, serial replay;
//   - sharded: the indexed engine with the trace split across the
//     placement's disjoint node groups and replayed in parallel
//     (simulate.RunSharded).
//
// Wall times and speedups are machine-dependent; request counts, the
// equality checks and allocation counts are reproducible.
type ScaleBench struct {
	Seed      int64 `json:"seed"`
	Requests  int   `json:"requests"`
	Functions int   `json:"functions"`
	Nodes     int   `json:"nodes"`
	Groups    int   `json:"groups"`
	Workers   int   `json:"workers"`
	// Shards is the shard count RunSharded planned; ShardSerialReason is
	// non-empty if it fell back to serial replay.
	Shards            int    `json:"shards"`
	ShardSerialReason string `json:"shard_serial_reason,omitempty"`

	SerialMS  float64 `json:"serial_ms"`
	IndexedMS float64 `json:"indexed_ms"`
	ShardedMS float64 `json:"sharded_ms"`
	// SpeedupIndexed = serial/indexed, SpeedupSharded = indexed/sharded,
	// SpeedupTotal = serial/sharded (the ≥3× acceptance target).
	SpeedupIndexed float64 `json:"speedup_indexed"`
	SpeedupSharded float64 `json:"speedup_sharded"`
	SpeedupTotal   float64 `json:"speedup_total"`

	SerialAllocsPerReq  float64 `json:"serial_allocs_per_req"`
	IndexedAllocsPerReq float64 `json:"indexed_allocs_per_req"`
	ShardedAllocsPerReq float64 `json:"sharded_allocs_per_req"`

	// IndexedMatchesScan: the indexed replay's records are byte-identical to
	// the scanning replay's. ShardedMatchesSerial: the shard-merged
	// aggregates (count, mean, P50/P95/P99, kind counts, faults) equal the
	// serial replay's.
	IndexedMatchesScan   bool `json:"indexed_matches_scan"`
	ShardedMatchesSerial bool `json:"sharded_matches_serial"`

	// Stream, when present, is the constant-memory streaming replay section
	// (`optimus-bench scale -stream`); see StreamScale.
	Stream *StreamScaleBench `json:"stream,omitempty"`
}

// scaleFixture is the synthetic cluster: `groups` disjoint node groups of
// `nodesPerGroup` nodes each, with functions bound round-robin to groups.
type scaleFixture struct {
	cfg   simulate.Config
	fns   []*simulate.Function
	trace *workload.Trace
}

// scaleSpec is scaleFixture without the materialized trace: the rate table
// and horizon let streaming benchmarks feed the simulator straight from lazy
// generators, so trace size never touches memory.
type scaleSpec struct {
	cfg     simulate.Config
	fns     []*simulate.Function
	rates   map[string]float64
	horizon time.Duration
}

// scaleCluster builds the fixture: functions cycle the quick model catalog
// (so planning stays cheap and start kinds mix), and Poisson rates are tuned
// to land near the requested trace size.
func scaleCluster(o Options, requests, groups int) scaleFixture {
	spec := scaleClusterSpec(o, requests, groups)
	return scaleFixture{
		cfg:   spec.cfg,
		fns:   spec.fns,
		trace: workload.PoissonRates(spec.rates, spec.horizon, o.Seed),
	}
}

// scaleClusterSpec builds the cluster and rate table without materializing
// the trace.
func scaleClusterSpec(o Options, requests, groups int) scaleSpec {
	// Scan cost grows with the group's live container population, index cost
	// does not. The population here comes from keep-alive bloat — the
	// many-functions-few-invocations shape serverless ML deployments actually
	// have (§2): each group packs ~a hundred functions that each hold one or
	// two warm containers, so every scanning route walks hundreds of
	// containers while the index answers from counters.
	const nodesPerGroup = 8
	const containersPerNode = 32
	const fnsPerGroup = 128
	horizon := 30 * time.Minute

	base := DefaultFunctionSet(true)
	nfns := groups * fnsPerGroup
	fns := make([]*simulate.Function, nfns)
	names := make([]string, nfns)
	placement := make(map[string][]int, nfns)
	rates := make(map[string]float64, nfns)
	perFnRate := float64(requests) / horizon.Seconds() / float64(nfns)
	for i := range fns {
		name := fmt.Sprintf("fn-%03d", i)
		fns[i] = &simulate.Function{Name: name, Model: base[i%len(base)].Model}
		names[i] = name
		g := i % groups
		nodes := make([]int, nodesPerGroup)
		for j := range nodes {
			nodes[j] = g*nodesPerGroup + j
		}
		placement[name] = nodes
		// Skew rates across functions (heavy head, long tail) so warm reuse,
		// repurposing and cold starts all occur.
		rates[name] = perFnRate * (0.25 + 1.5*float64(i%8)/7)
	}
	return scaleSpec{
		cfg: simulate.Config{
			Nodes:             groups * nodesPerGroup,
			ContainersPerNode: containersPerNode,
			Profile:           o.Profile,
			Policy:            policy.Optimus{},
			Placement:         placement,
			Seed:              o.Seed,
		},
		fns:     fns,
		rates:   rates,
		horizon: horizon,
	}
}

// timedRun measures one replay's wall clock and per-request allocations.
func timedRun(requests int, run func() *metrics.Collector) (*metrics.Collector, float64, float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	col := run()
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(requests)
	return col, msF(wall), allocs
}

// sameRecords reports byte-identity of two replays' record streams.
func sameRecords(a, b *metrics.Collector) bool {
	ra, rb := a.Records(), b.Records()
	if len(ra) != len(rb) || a.Faults != b.Faults {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// aggSnapshot captures the summary views a shard-merged collector must
// reproduce exactly: counts, fault tallies, mean, latency percentiles and the
// start-kind mix. Snapshotting lets the benchmark release a replay's
// multi-hundred-MB record slice before timing the next one — keeping those
// heaps alive inflates every subsequent run's GC cost.
type aggSnapshot struct {
	n      int
	faults metrics.FaultStats
	mean   time.Duration
	pcts   [4]time.Duration
	kinds  map[metrics.StartKind]int
}

var aggPcts = [4]float64{50, 95, 99, 100}

func snapshotAggregates(c *metrics.Collector) aggSnapshot {
	s := aggSnapshot{n: c.Len(), faults: c.Faults, mean: c.MeanLatency(), kinds: c.KindCounts()}
	for i, p := range aggPcts {
		s.pcts[i] = c.Percentile(p)
	}
	return s
}

// sameAggregates reports whether the collector reproduces the snapshot.
func sameAggregates(want aggSnapshot, b *metrics.Collector) bool {
	if want.n != b.Len() || want.faults != b.Faults || want.mean != b.MeanLatency() {
		return false
	}
	for i, p := range aggPcts {
		if want.pcts[i] != b.Percentile(p) {
			return false
		}
	}
	kb := b.KindCounts()
	if len(want.kinds) != len(kb) {
		return false
	}
	for k, v := range want.kinds {
		if kb[k] != v {
			return false
		}
	}
	return true
}

// Scale runs the hot-path scaling benchmark. requests <= 0 defaults to one
// million (50k in quick mode); groups <= 0 defaults to 8; workers <= 0
// defaults to the shard count, so the parallel path is exercised even on a
// single-core machine (where its wall-clock win is neutral by design).
func Scale(o Options, requests, groups, workers int) ScaleBench {
	o = o.withDefaults()
	if requests <= 0 {
		requests = 1_000_000
		if o.Quick {
			requests = 50_000
		}
	}
	if groups <= 0 {
		groups = 8
	}
	fx := scaleCluster(o, requests, groups)
	if workers <= 0 {
		workers = groups
	}
	res := ScaleBench{
		Seed:      o.Seed,
		Requests:  fx.trace.Len(),
		Functions: len(fx.fns),
		Nodes:     fx.cfg.Nodes,
		Groups:    groups,
		Workers:   workers,
	}

	// The three replays together allocate ~4 record slices of ~100 MB each at
	// the million-request scale; with the default GOGC the collector heaps
	// trigger repeated full marks that tax whichever replay runs last. Relax
	// GC during the benchmark and drop each replay's records as soon as the
	// correctness checks are done with them.
	defer debug.SetGCPercent(debug.SetGCPercent(1000))

	scanCfg := fx.cfg
	scanCfg.RouteScan = true
	serial, serialMS, serialAllocs := timedRun(res.Requests, func() *metrics.Collector {
		col, err := simulate.New(scanCfg, fx.fns).Run(fx.trace)
		if err != nil {
			panic(err)
		}
		return col
	})
	indexed, indexedMS, indexedAllocs := timedRun(res.Requests, func() *metrics.Collector {
		col, err := simulate.New(fx.cfg, fx.fns).Run(fx.trace)
		if err != nil {
			panic(err)
		}
		return col
	})
	res.IndexedMatchesScan = sameRecords(serial, indexed)
	serialAgg := snapshotAggregates(serial)
	serial, indexed = nil, nil

	var report simulate.ShardReport
	sharded, shardedMS, shardedAllocs := timedRun(res.Requests, func() *metrics.Collector {
		col, rep, err := simulate.RunSharded(fx.cfg, fx.fns, fx.trace, workers)
		if err != nil {
			panic(err)
		}
		report = rep
		return col
	})

	res.SerialMS, res.SerialAllocsPerReq = serialMS, serialAllocs
	res.IndexedMS, res.IndexedAllocsPerReq = indexedMS, indexedAllocs
	res.ShardedMS, res.ShardedAllocsPerReq = shardedMS, shardedAllocs
	res.Shards = report.Shards
	res.ShardSerialReason = report.SerialReason
	if indexedMS > 0 {
		res.SpeedupIndexed = serialMS / indexedMS
	}
	if shardedMS > 0 {
		res.SpeedupSharded = indexedMS / shardedMS
		res.SpeedupTotal = serialMS / shardedMS
	}
	res.ShardedMatchesSerial = sameAggregates(serialAgg, sharded)
	return res
}

// WriteFile persists the artifact into dir, creating it if needed.
func (r ScaleBench) WriteFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("scale: creating %s: %w", dir, err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, BenchScaleFile)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("scale: writing %s: %w", path, err)
	}
	return nil
}

// Render prints the benchmark digest.
func (r ScaleBench) Render() string {
	shard := fmt.Sprintf("%d shards", r.Shards)
	if r.ShardSerialReason != "" {
		shard = "serial: " + r.ShardSerialReason
	}
	okStr := func(b bool) string {
		if b {
			return "ok"
		}
		return "MISMATCH"
	}
	out := fmt.Sprintf(`Simulator scale benchmark (seed %d)
%d requests, %d functions, %d nodes in %d groups (%s, %d workers)
  serial/scan  %8.1f ms   %6.1f allocs/req
  indexed      %8.1f ms   %6.1f allocs/req   (%.2fx vs scan, records %s)
  sharded      %8.1f ms   %6.1f allocs/req   (%.2fx vs indexed, aggregates %s)
  total speedup %.2fx`,
		r.Seed, r.Requests, r.Functions, r.Nodes, r.Groups, shard, r.Workers,
		r.SerialMS, r.SerialAllocsPerReq,
		r.IndexedMS, r.IndexedAllocsPerReq, r.SpeedupIndexed, okStr(r.IndexedMatchesScan),
		r.ShardedMS, r.ShardedAllocsPerReq, r.SpeedupSharded, okStr(r.ShardedMatchesSerial),
		r.SpeedupTotal)
	if r.Stream != nil {
		out += "\n" + r.Stream.Render()
	}
	return out
}
