package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// Extension experiments beyond the paper's figures: scalability and load
// sweeps showing where inter-function model transformation helps most.

// SweepPoint is one (x, per-policy-mean) measurement of a sweep.
type SweepPoint struct {
	X     int
	Means map[string]time.Duration
	// OptimusTransform is Optimus' transformation share at this point.
	OptimusTransform float64
}

// ScalabilityResult sweeps the node count at fixed workload: with more
// nodes per tenant population the cold-start pressure falls and all systems
// converge; with fewer nodes Optimus' advantage widens.
type ScalabilityResult struct {
	Points []SweepPoint
}

// Scalability runs the sweep for the given node counts (default 1,2,4,8).
func Scalability(o Options, nodes []int, horizon time.Duration) ScalabilityResult {
	o = o.withDefaults()
	if len(nodes) == 0 {
		nodes = []int{1, 2, 4, 8}
	}
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	if o.Quick && horizon > 6*time.Hour {
		horizon = 6 * time.Hour
	}
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, horizon, o.Seed)

	var res ScalabilityResult
	for _, n := range nodes {
		pt := SweepPoint{X: n, Means: map[string]time.Duration{}}
		for _, pol := range []simulate.Policy{policy.OpenWhisk{}, policy.Optimus{}} {
			sim := simulate.New(simulate.Config{
				Policy:            pol,
				Nodes:             n,
				ContainersPerNode: 4,
				Profile:           o.Profile,
			}, fns)
			col, err := sim.Run(tr)
			if err != nil {
				panic(err)
			}
			pt.Means[pol.Name()] = col.MeanLatency()
			if pol.Name() == "optimus" {
				pt.OptimusTransform = col.KindFractions()[metrics.StartTransform]
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Render prints the scalability sweep.
func (r ScalabilityResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		red := 1 - float64(p.Means["optimus"])/float64(p.Means["openwhisk"])
		rows = append(rows, []string{
			fmt.Sprint(p.X),
			ms(p.Means["openwhisk"]), ms(p.Means["optimus"]),
			pct(red), pct(p.OptimusTransform),
		})
	}
	return "Extension: node-count sweep (fixed tenant population; Optimus helps most under pressure)\n" +
		table([]string{"nodes", "openwhisk(ms)", "optimus(ms)", "reduction", "transform share"}, rows)
}

// LoadSweepResult sweeps the request-rate multiplier on the Poisson
// workload: higher load keeps containers warmer (less to win) until
// queueing dominates everything.
type LoadSweepResult struct {
	Points []SweepPoint // X is the rate multiplier ×10 (5 = 0.5×)
}

// LoadSweep runs the sweep for the given multipliers ×10 (default 5,10,20,40).
func LoadSweep(o Options, multipliersX10 []int, horizon time.Duration) LoadSweepResult {
	o = o.withDefaults()
	if len(multipliersX10) == 0 {
		multipliersX10 = []int{5, 10, 20, 40}
	}
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	if o.Quick && horizon > 6*time.Hour {
		horizon = 6 * time.Hour
	}
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}

	var res LoadSweepResult
	levels := []float64{workload.RateFrequent, workload.RateMiddle, workload.RateInfrequent}
	for _, m := range multipliersX10 {
		rates := make(map[string]float64, len(names))
		for i, f := range names {
			rates[f] = levels[i%3] * float64(m) / 10
		}
		tr := workload.PoissonRates(rates, horizon, o.Seed)
		pt := SweepPoint{X: m, Means: map[string]time.Duration{}}
		for _, pol := range []simulate.Policy{policy.OpenWhisk{}, policy.Optimus{}} {
			sim := simulate.New(simulate.Config{
				Policy:            pol,
				Nodes:             4,
				ContainersPerNode: 4,
				Profile:           o.Profile,
			}, fns)
			col, err := sim.Run(tr)
			if err != nil {
				panic(err)
			}
			pt.Means[pol.Name()] = col.MeanLatency()
			if pol.Name() == "optimus" {
				pt.OptimusTransform = col.KindFractions()[metrics.StartTransform]
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Render prints the load sweep.
func (r LoadSweepResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		red := 1 - float64(p.Means["optimus"])/float64(p.Means["openwhisk"])
		rows = append(rows, []string{
			fmt.Sprintf("%.1fx", float64(p.X)/10),
			ms(p.Means["openwhisk"]), ms(p.Means["optimus"]),
			pct(red), pct(p.OptimusTransform),
		})
	}
	return "Extension: request-rate sweep (Poisson multiplier)\n" +
		table([]string{"rate", "openwhisk(ms)", "optimus(ms)", "reduction", "transform share"}, rows)
}
