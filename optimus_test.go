package optimus

import (
	"strings"
	"testing"
	"time"
)

func TestTransformerRoundTrip(t *testing.T) {
	tf := NewTransformer(CPU, AlgoGroup)
	img := Imgclsmob()
	src := img.MustGet("resnet50-imagenet")
	dst := img.MustGet("resnet101-imagenet")

	plan := tf.Plan(src, dst)
	if plan.LoadFromScratch {
		t.Fatal("resnet50→resnet101 should not hit the safeguard")
	}
	got, took, err := tf.Transform(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(dst) {
		t.Fatal("transform result mismatch")
	}
	if took >= tf.LoadCost(dst) {
		t.Errorf("transform (%v) not cheaper than load (%v)", took, tf.LoadCost(dst))
	}
	// Plans are cached: second Plan returns the same pointer.
	if tf.Plan(src, dst) != plan {
		t.Error("plan cache miss on repeat")
	}
}

func TestTransformerCosts(t *testing.T) {
	tf := NewTransformer(CPU, AlgoGroup)
	m := Imgclsmob().MustGet("vgg16-imagenet")
	if tf.ColdStartCost(m) <= tf.LoadCost(m) {
		t.Error("cold start must include sandbox init on top of loading")
	}
	if tf.ComputeCost(m) <= 0 {
		t.Error("compute cost must be positive")
	}
	gpu := NewTransformer(GPU, AlgoGroup)
	if gpu.ColdStartCost(m) <= tf.ColdStartCost(m) {
		t.Error("GPU cold start should exceed CPU (§8.5)")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	img := Imgclsmob()
	sys := NewSystem(SystemConfig{
		Nodes:             2,
		ContainersPerNode: 2,
		Policy:            PolicyOptimus,
		VerifyTransforms:  true,
	})
	for _, n := range []string{"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "vgg16-imagenet"} {
		sys.MustRegister(n, img.MustGet(n))
	}
	tr := MixedPoissonTrace(sys.Functions(), 8*time.Hour, 7)
	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != tr.Len() {
		t.Fatalf("served %d of %d", rep.Len(), tr.Len())
	}
	if rep.Verified == 0 {
		t.Error("no transformations verified")
	}
	if !strings.Contains(rep.Summary(), "requests") {
		t.Error("summary malformed")
	}
}

func TestSystemPolicies(t *testing.T) {
	img := Imgclsmob()
	names := []string{"resnet18-imagenet", "resnet50-imagenet", "vgg16-imagenet", "densenet121-imagenet"}
	tr := MixedPoissonTrace(names, 8*time.Hour, 3)
	means := map[PolicyName]time.Duration{}
	for _, p := range []PolicyName{PolicyOpenWhisk, PolicyPagurus, PolicyTetris, PolicyOptimus} {
		sys := NewSystem(SystemConfig{Nodes: 1, ContainersPerNode: 2, Policy: p})
		for _, n := range names {
			sys.MustRegister(n, img.MustGet(n))
		}
		rep, err := sys.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		means[p] = rep.MeanLatency()
	}
	if means[PolicyOptimus] >= means[PolicyOpenWhisk] {
		t.Errorf("optimus (%v) should beat openwhisk (%v)", means[PolicyOptimus], means[PolicyOpenWhisk])
	}
}

func TestSystemRegistrationErrors(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	if err := sys.Register("x", nil); err == nil {
		t.Error("nil model accepted")
	}
	m := Imgclsmob().MustGet("resnet18-imagenet")
	if err := sys.Register("x", m); err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("x", m); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := NewSystem(SystemConfig{Policy: "bogus"})
	bad.MustRegister("x", m)
	if _, err := bad.Run(MixedPoissonTrace([]string{"x"}, time.Hour, 1)); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestSystemWithBalancer(t *testing.T) {
	img := Imgclsmob()
	sys := NewSystem(SystemConfig{Nodes: 2, ContainersPerNode: 2, UseBalancer: true})
	for _, n := range []string{"resnet18-imagenet", "resnet34-imagenet", "vgg16-imagenet", "vgg19-imagenet"} {
		sys.MustRegister(n, img.MustGet(n))
	}
	tr := MixedPoissonTrace(sys.Functions(), 6*time.Hour, 5)
	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != tr.Len() {
		t.Fatal("balancer run dropped requests")
	}
}

func TestNASBenchModelFacade(t *testing.T) {
	m, err := NASBenchModel(1234)
	if err != nil {
		t.Fatal(err)
	}
	if m.Family != "nasbench" {
		t.Errorf("family = %q", m.Family)
	}
	if _, err := NASBenchModel(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestBERTSafeguardViaFacade(t *testing.T) {
	tf := NewTransformer(CPU, AlgoGroup)
	cnn := Imgclsmob().MustGet("resnet50-imagenet")
	bert := BERTZoo().MustGet("bert-base-uncased")
	plan := tf.Plan(cnn, bert)
	if !plan.LoadFromScratch {
		t.Error("CNN→transformer should hit the safeguard")
	}
	// Safeguarded transforms still work (by loading fresh).
	got, took, err := tf.Transform(cnn, bert)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bert) || took != tf.LoadCost(bert) {
		t.Error("safeguard path wrong")
	}
}

func TestRNNZooFacade(t *testing.T) {
	tf := NewTransformer(CPU, AlgoGroup)
	rnn := RNNZoo()
	src := rnn.MustGet("lstm-2x512")
	dst := rnn.MustGet("lstm-2x256")
	got, took, err := tf.Transform(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(dst) {
		t.Fatal("RNN transform mismatch")
	}
	if took >= tf.LoadCost(dst) {
		t.Errorf("RNN size-ladder transform (%v) should beat load (%v)", took, tf.LoadCost(dst))
	}
}
