// Package metrics collects and summarizes per-request measurements from the
// cluster simulator: latency breakdowns, start-type ratios, percentiles and
// the correlation statistics the load balancer consumes.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// StartKind classifies how a request's container was obtained, matching the
// three categories of the paper's Fig 14.
type StartKind uint8

const (
	// StartWarm reused a warm container already holding the right model.
	StartWarm StartKind = iota
	// StartTransform repurposed a warm-but-idle container of another
	// function (model transformation in Optimus, package-level container
	// sharing in Pagurus, op sharing in Tetris).
	StartTransform
	// StartCold created a container from scratch.
	StartCold
	// StartFallback repurposed a container but the transformation failed
	// mid-flight, so the model was loaded from scratch instead — the
	// safeguard's recovery path, charging the wasted partial transform.
	StartFallback
	// StartTimeout repurposed a container but the transformation hung and
	// the supervision watchdog cancelled it at its deadline (k× the planned
	// cost), charging the wasted window plus a from-scratch load.
	StartTimeout
	// StartBreaker repurposed a container whose (src→dst) transformation
	// pair had its circuit breaker open: the doomed transform attempt was
	// skipped entirely and the model loaded from scratch directly (still
	// saving sandbox/runtime init).
	StartBreaker
	// StartHedge repurposed a container whose transformation hung past the
	// hedge deadline: a backup transform was started from the next-best
	// donor and won, the hung primary was cancelled as the loser, and the
	// request paid the deadline window plus the backup transform.
	StartHedge
	// StartFanout reused a replica warmed ahead of demand by a fan-out
	// transform tree (a burst triggered multicast-style donor replication and
	// this request was the replica's first service).
	StartFanout
	startKindCount
)

// String names the start kind.
func (k StartKind) String() string {
	switch k {
	case StartWarm:
		return "warm"
	case StartTransform:
		return "transform"
	case StartCold:
		return "cold"
	case StartFallback:
		return "fallback"
	case StartTimeout:
		return "timeout"
	case StartBreaker:
		return "breaker"
	case StartHedge:
		return "hedge"
	case StartFanout:
		return "fanout"
	default:
		return fmt.Sprintf("startkind(%d)", uint8(k))
	}
}

// Record is one served request.
type Record struct {
	Function string
	Kind     StartKind
	// Arrival is the request's arrival offset in simulation time; Start is
	// when a container began serving it; End is completion.
	Arrival, Start, End time.Duration
	// Breakdown of the service latency.
	Wait, Init, Load, Compute time.Duration
	// Retries counts how many times the request was re-dispatched after a
	// container crash or node outage before this (successful) service.
	Retries int
}

// Latency is the user-visible service time: waiting plus initialization plus
// model acquisition plus inference (§8.3: "the sum of initialization time,
// computation time, and wait time").
func (r Record) Latency() time.Duration { return r.End - r.Arrival }

// FaultStats tallies injected failures and their recoveries over a run
// (package faults describes the failure model).
type FaultStats struct {
	// TransformFallbacks counts transformations that aborted mid-flight and
	// recovered through the safeguard path (StartFallback records).
	TransformFallbacks int
	// LoadRetries counts from-scratch model loads that failed partway and
	// restarted inside the same container.
	LoadRetries int
	// Crashes counts containers that died while serving a request.
	Crashes int
	// Outages counts node failures.
	Outages int
	// Retries counts request re-dispatches after a crash or outage.
	Retries int
	// Dropped counts requests abandoned after exhausting their retry
	// budget; dropped requests contribute no latency record.
	Dropped int
	// Hangs counts transformations that stalled instead of running to plan
	// (whether or not a watchdog was present to cancel them).
	Hangs int
	// WatchdogCancels counts hung transformations the watchdog cancelled at
	// their deadline and recovered through the safeguard path (StartTimeout
	// records).
	WatchdogCancels int
	// BreakerShortCircuits counts transform attempts skipped because the
	// (src→dst) pair's circuit breaker was open, routing the request straight
	// to a from-scratch load (StartBreaker records).
	BreakerShortCircuits int
	// SlowWindows counts gray slow-node degradation windows entered (the
	// node serves every request a latency multiplier slower).
	SlowWindows int
	// FlakyWindows counts flaky-donor windows entered.
	FlakyWindows int
	// FlakyFallbacks counts transformations aborted because their donor node
	// was inside a flaky window.
	FlakyFallbacks int
	// BandwidthWindows counts degraded transform-bandwidth windows entered.
	BandwidthWindows int
	// HedgedTransforms counts hung transformations for which a backup
	// transform was started from the next-best donor at the hedge deadline.
	HedgedTransforms int
	// HedgeWins counts hedged backups that beat the primary's own recovery
	// path (StartHedge records).
	HedgeWins int
	// BackoffRetries counts re-dispatches delayed by the deterministic
	// retry backoff instead of retrying immediately.
	BackoffRetries int
}

// Any reports whether any fault was recorded.
func (f FaultStats) Any() bool {
	return f != FaultStats{}
}

// FanoutStats tallies fan-out transform-tree activity over a run: how many
// trees ran, how fast they warmed their target replica count, and every
// resilience event along the way (package fanout describes the tree model).
type FanoutStats struct {
	// Trees counts fan-out trees started; TreesCompleted counts those that
	// reached their target warm-replica count within the run.
	Trees, TreesCompleted int
	// Recipients counts child transforms completed, including replacements
	// rebuilt after a quarantine or cancellation.
	Recipients int
	// Waves is the deepest tree wave reached across all trees (seeds are
	// wave 0).
	Waves int
	// DonorCrashes counts donors that died midway through streaming weights
	// to a child; Reparents counts orphaned in-flight children re-parented
	// onto the nearest healthy ancestor afterwards.
	DonorCrashes, Reparents int
	// CorruptOutputs counts children that completed with a corrupt model;
	// Quarantined counts members cut out of the tree by the wave-boundary
	// edge-balance verification (each poisoned member plus its descendants).
	CorruptOutputs, Quarantined int
	// WaveCancels counts children cancelled by the per-wave watchdog
	// deadline and diverted to the from-scratch fallback.
	WaveCancels int
	// LoadFallbacks counts children built by a from-scratch load instead of
	// a donation (open circuit breaker, no healthy donor, or wave cancel).
	LoadFallbacks int
	// TimeToWarm is the slowest completed tree's trigger-to-target-warm
	// duration (virtual time).
	TimeToWarm time.Duration
}

// Any reports whether any fan-out activity was recorded.
func (f FanoutStats) Any() bool {
	return f != FanoutStats{}
}

// Merge folds another run's (or tree's) tallies into f: counters add, while
// Waves and TimeToWarm keep the maximum — the deepest tree and the slowest
// warm-up are the figures of merit.
func (f *FanoutStats) Merge(o FanoutStats) {
	f.Trees += o.Trees
	f.TreesCompleted += o.TreesCompleted
	f.Recipients += o.Recipients
	f.DonorCrashes += o.DonorCrashes
	f.Reparents += o.Reparents
	f.CorruptOutputs += o.CorruptOutputs
	f.Quarantined += o.Quarantined
	f.WaveCancels += o.WaveCancels
	f.LoadFallbacks += o.LoadFallbacks
	if o.Waves > f.Waves {
		f.Waves = o.Waves
	}
	if o.TimeToWarm > f.TimeToWarm {
		f.TimeToWarm = o.TimeToWarm
	}
}

// Collector accumulates request records. It maintains running aggregates
// (latency sum, per-kind counts) and a cached sorted-latency view so that
// summary reads over million-record replays cost O(1) — or one sort, reused
// until the next Add — instead of re-scanning and re-sorting per call.
// Collector is not safe for concurrent use; callers that share one across
// goroutines (the gateway) must serialize access themselves.
type Collector struct {
	records []Record
	// Faults tallies injected failures observed during the run.
	Faults FaultStats
	// Fanout tallies fan-out transform-tree activity observed during the run.
	Fanout FanoutStats

	// latSum and kinds are running aggregates maintained by Add/RestoreFrom.
	latSum time.Duration
	kinds  [startKindCount]int
	// sorted caches the ascending latency view used by Percentile; it is
	// valid only while sortedOK holds (invalidated by Add and RestoreFrom).
	sorted   []time.Duration
	sortedOK bool
	// stream, when set by StreamInto, diverts Adds into a constant-memory
	// Summary instead of the record slice.
	stream *Summary
}

// Add appends a record (or, in streaming mode, folds it into the summary).
func (c *Collector) Add(r Record) {
	if c.stream != nil {
		c.stream.Observe(r)
		return
	}
	c.records = append(c.records, r)
	c.latSum += r.Latency()
	if int(r.Kind) < int(startKindCount) {
		c.kinds[r.Kind]++
	}
	c.sortedOK = false
}

// Reserve grows the record store to hold n total records without further
// reallocation; replay engines call it with the trace length so million-
// request runs don't pay append-doubling copies. A no-op in streaming mode,
// which retains no records at all.
func (c *Collector) Reserve(n int) {
	if c.stream != nil || n <= cap(c.records) {
		return
	}
	grown := make([]Record, len(c.records), n)
	copy(grown, c.records)
	c.records = grown
}

// Len returns the number of records.
func (c *Collector) Len() int { return len(c.records) }

// Records returns the accumulated records (backing store; do not mutate).
func (c *Collector) Records() []Record { return c.records }

// RestoreFrom replaces the collector's contents with a checkpointed snapshot:
// the records are copied (the caller's slice is not retained), the fault
// tallies overwritten, and every cached aggregate rebuilt from the restored
// records.
func (c *Collector) RestoreFrom(records []Record, faults FaultStats) {
	c.records = append([]Record(nil), records...)
	c.Faults = faults
	c.latSum = 0
	c.kinds = [startKindCount]int{}
	for _, r := range c.records {
		c.latSum += r.Latency()
		if int(r.Kind) < int(startKindCount) {
			c.kinds[r.Kind]++
		}
	}
	c.sorted = nil
	c.sortedOK = false
}

// MeanLatency returns the average end-to-end service time.
func (c *Collector) MeanLatency() time.Duration {
	if len(c.records) == 0 {
		return 0
	}
	return c.latSum / time.Duration(len(c.records))
}

// sortedLatencies returns the cached ascending latency view, rebuilding it
// only when records changed since the last call.
func (c *Collector) sortedLatencies() []time.Duration {
	if c.sortedOK && len(c.sorted) == len(c.records) {
		return c.sorted
	}
	if cap(c.sorted) < len(c.records) {
		c.sorted = make([]time.Duration, len(c.records))
	}
	c.sorted = c.sorted[:len(c.records)]
	for i, r := range c.records {
		c.sorted[i] = r.Latency()
	}
	sort.Slice(c.sorted, func(i, j int) bool { return c.sorted[i] < c.sorted[j] })
	c.sortedOK = true
	return c.sorted
}

// Percentile returns the p-th latency percentile (p in [0,100]). Repeated
// calls between Adds reuse one cached sort of the record set.
func (c *Collector) Percentile(p float64) time.Duration {
	if len(c.records) == 0 {
		return 0
	}
	return percentileSorted(c.sortedLatencies(), p)
}

// Percentiles returns the latency percentiles for each p in ps, sharing a
// single sorted view across all of them.
func (c *Collector) Percentiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(c.records) == 0 {
		return out
	}
	sorted := c.sortedLatencies()
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// KindCounts tallies records per start kind.
func (c *Collector) KindCounts() map[StartKind]int {
	out := make(map[StartKind]int, int(startKindCount))
	for k, n := range c.kinds {
		if n > 0 {
			out[StartKind(k)] = n
		}
	}
	return out
}

// KindFractions returns each start kind's share of requests (Fig 14).
func (c *Collector) KindFractions() map[StartKind]float64 {
	out := make(map[StartKind]float64, int(startKindCount))
	if len(c.records) == 0 {
		return out
	}
	for k, n := range c.KindCounts() {
		out[k] = float64(n) / float64(len(c.records))
	}
	return out
}

// QuickStats is the value-typed summary behind the gateway's /api/stats hot
// path: request count, mean, the two headline percentiles, and every start
// kind's share in a fixed array indexed by StartKind. Building one performs
// no heap allocation once the collector's sorted-latency cache is warm —
// unlike the map-returning KindFractions plus per-percentile calls it
// replaces, which allocated on every stats read.
type QuickStats struct {
	Requests  int
	Mean      time.Duration
	P50, P99  time.Duration
	Fractions [startKindCount]float64
}

// Fraction returns kind's share of requests (0 for out-of-range kinds).
func (q QuickStats) Fraction(kind StartKind) float64 {
	if int(kind) >= len(q.Fractions) {
		return 0
	}
	return q.Fractions[kind]
}

// Quick returns the stats-endpoint summary in one pass over the cached
// aggregates: allocation-free while the sorted view is valid, one latency
// sort (amortized across readers) after new Adds.
func (c *Collector) Quick() QuickStats {
	q := QuickStats{Requests: len(c.records), Mean: c.MeanLatency()}
	if len(c.records) == 0 {
		return q
	}
	sorted := c.sortedLatencies()
	q.P50 = percentileSorted(sorted, 50)
	q.P99 = percentileSorted(sorted, 99)
	total := float64(len(c.records))
	for k, n := range c.kinds {
		// Divide per kind (not multiply by a shared reciprocal) so the values
		// match KindFractions bit-for-bit.
		q.Fractions[k] = float64(n) / total
	}
	return q
}

// Breakdown is an averaged latency decomposition.
type Breakdown struct {
	Wait, Init, Load, Compute time.Duration
}

// Total sums the breakdown.
func (b Breakdown) Total() time.Duration { return b.Wait + b.Init + b.Load + b.Compute }

// MeanBreakdown averages the per-request latency decomposition.
func (c *Collector) MeanBreakdown() Breakdown {
	var b Breakdown
	if len(c.records) == 0 {
		return b
	}
	for _, r := range c.records {
		b.Wait += r.Wait
		b.Init += r.Init
		b.Load += r.Load
		b.Compute += r.Compute
	}
	n := time.Duration(len(c.records))
	return Breakdown{b.Wait / n, b.Init / n, b.Load / n, b.Compute / n}
}

// PerFunction splits the collector by function name.
func (c *Collector) PerFunction() map[string]*Collector {
	out := make(map[string]*Collector)
	for _, r := range c.records {
		f := out[r.Function]
		if f == nil {
			f = &Collector{}
			out[r.Function] = f
		}
		f.Add(r)
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Corr returns the Pearson correlation coefficient of two equal-length
// series, the demand-dynamics complementarity measure K(A,B) of §5.1.
// It returns 0 when either series has zero variance or lengths mismatch.
func Corr(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var num, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / (math.Sqrt(va) * math.Sqrt(vb))
}

// DurationStats summarizes a duration sample.
type DurationStats struct {
	Count          int
	Min, Max, Mean time.Duration
}

// SummarizeDurations computes min/max/mean over a sample.
func SummarizeDurations(ds []time.Duration) DurationStats {
	st := DurationStats{Count: len(ds)}
	if len(ds) == 0 {
		return st
	}
	st.Min, st.Max = ds[0], ds[0]
	var sum time.Duration
	for _, d := range ds {
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		sum += d
	}
	st.Mean = sum / time.Duration(len(ds))
	return st
}

// DurationPercentile returns the p-th percentile (p in [0,100], nearest-rank)
// of the sample; the input slice is not modified. Zero for an empty sample.
// Collector.Percentile and the planning-time telemetry share this definition
// so /api/stats and BENCH_*.json percentiles are directly comparable.
func DurationPercentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// percentileSorted is the nearest-rank percentile over an already
// ascending-sorted, non-empty sample. Callers holding a reusable sorted view
// (Collector's cache) use this to avoid DurationPercentile's copy+sort.
func percentileSorted(sorted []time.Duration, p float64) time.Duration {
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Histogram buckets duration samples on a fixed linear grid, for latency
// distribution reporting (the CDF-style views behind Figs 12-13).
type Histogram struct {
	// Width is the bucket width; Buckets[i] counts samples in
	// [i·Width, (i+1)·Width); Overflow counts samples beyond the last bucket.
	Width    time.Duration
	Buckets  []int
	Overflow int
	count    int
}

// NewHistogram returns a histogram of n buckets of the given width.
func NewHistogram(width time.Duration, n int) *Histogram {
	if width <= 0 {
		width = time.Millisecond
	}
	if n <= 0 {
		n = 1
	}
	return &Histogram{Width: width, Buckets: make([]int, n)}
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.count++
	if d < 0 {
		d = 0
	}
	i := int(d / h.Width)
	if i >= len(h.Buckets) {
		h.Overflow++
		return
	}
	h.Buckets[i] += 1
}

// Count returns the total number of observed samples.
func (h *Histogram) Count() int { return h.count }

// Quantile returns an upper bound for the q-th quantile (q in [0,1]),
// resolved to bucket granularity.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	seen := 0
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			return time.Duration(i+1) * h.Width
		}
	}
	return time.Duration(len(h.Buckets)) * h.Width
}

// LatencyHistogram buckets the collector's request latencies.
func (c *Collector) LatencyHistogram(width time.Duration, n int) *Histogram {
	h := NewHistogram(width, n)
	for _, r := range c.records {
		h.Observe(r.Latency())
	}
	return h
}
