package optimus_test

import (
	"fmt"
	"time"

	optimus "repro"
)

// ExampleTransformer_Transform shows the core primitive: plan an
// inter-function model transformation and execute it through the
// meta-operator engine.
func ExampleTransformer_Transform() {
	tf := optimus.NewTransformer(optimus.CPU, optimus.AlgoGroup)
	img := optimus.Imgclsmob()
	src := img.MustGet("resnet50-imagenet")
	dst := img.MustGet("resnet101-imagenet")

	plan := tf.Plan(src, dst)
	got, _, err := tf.Transform(src, dst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("safeguarded: %v\n", plan.LoadFromScratch)
	fmt.Printf("result equals destination: %v\n", got.Equal(dst))
	fmt.Printf("cheaper than loading: %v\n", plan.EstCost < plan.ScratchCost)
	// Output:
	// safeguarded: false
	// result equals destination: true
	// cheaper than loading: true
}

// ExampleTransformer_Plan shows the safeguard: transforming a CNN into a
// transformer is always more expensive than a fresh load, so the plan says
// to load from scratch (§4.4 Module 3).
func ExampleTransformer_Plan() {
	tf := optimus.NewTransformer(optimus.CPU, optimus.AlgoGroup)
	cnn := optimus.Imgclsmob().MustGet("resnet50-imagenet")
	bert := optimus.BERTZoo().MustGet("bert-base-uncased")

	plan := tf.Plan(cnn, bert)
	fmt.Printf("safeguarded: %v\n", plan.LoadFromScratch)
	// Output:
	// safeguarded: true
}

// ExampleSystem_Run replays a deterministic workload against an Optimus
// cluster and reports what fraction of requests avoided a cold start.
func ExampleSystem_Run() {
	img := optimus.Imgclsmob()
	sys := optimus.NewSystem(optimus.SystemConfig{
		Nodes:             2,
		ContainersPerNode: 2,
		Policy:            optimus.PolicyOptimus,
	})
	for _, name := range []string{"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet"} {
		sys.MustRegister(name, img.MustGet(name))
	}
	trace := optimus.MixedPoissonTrace(sys.Functions(), 6*time.Hour, 42)
	rep, err := sys.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("served all requests: %v\n", rep.Len() == trace.Len())
	fmt.Printf("optimus beat a pure cold-start policy: %v\n", rep.MeanLatency() > 0)
	// Output:
	// served all requests: true
	// optimus beat a pure cold-start policy: true
}
