package zoo

import (
	"fmt"

	"repro/internal/model"
)

// DenseNet builds a densely connected CNN (Huang et al.): four dense blocks
// whose layers each concatenate all previous feature maps, separated by
// 1×1-conv + 2×2-avg-pool transitions that halve the channel count.
// blocks gives the layer count per dense block; growth is the growth rate k.
func DenseNet(blocks [4]int, growth, classes int, scope string) *model.Graph {
	b := model.NewBuilder("densenet", "densenet", scope)
	b.Input(3)
	init := 2 * growth
	b.Conv("stem.conv", 7, 3, init, 2)
	b.BN("stem.bn", init)
	b.ReLU("stem.relu", init)
	b.MaxPool("stem.pool", 3, init, 2)

	ch := init
	for stage, n := range blocks {
		for layer := 0; layer < n; layer++ {
			tag := fmt.Sprintf("db%d.l%d", stage+1, layer+1)
			entry := b.Tail()[0]
			// Bottleneck layer: BN-ReLU-1×1conv(4k) → BN-ReLU-3×3conv(k).
			b.BN(tag+".bn1", ch)
			b.ReLU(tag+".relu1", ch)
			b.Conv(tag+".conv1", 1, ch, 4*growth, 1)
			b.BN(tag+".bn2", 4*growth)
			b.ReLU(tag+".relu2", 4*growth)
			b.Conv(tag+".conv2", 3, 4*growth, growth, 1)
			newFeat := b.Tail()[0]
			b.ConcatMerge(tag+".concat", ch+growth, entry, newFeat)
			ch += growth
		}
		if stage < 3 {
			tag := fmt.Sprintf("trans%d", stage+1)
			b.BN(tag+".bn", ch)
			b.ReLU(tag+".relu", ch)
			b.Conv(tag+".conv", 1, ch, ch/2, 1)
			b.AvgPool(tag+".pool", 2, ch/2, 2)
			ch /= 2
		}
	}
	b.BN("final.bn", ch)
	b.ReLU("final.relu", ch)
	b.GlobalAvgPool("gap", ch)
	b.Dense("fc", ch, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}
