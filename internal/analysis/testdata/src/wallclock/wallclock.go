// Package wallclock is the fixture for the wallclock checker: it is loaded
// under a virtual-time import path, so every wall-clock read must be
// reported and Duration arithmetic must stay silent.
package wallclock

import "time"

// step advances an explicitly plumbed virtual clock: the approved pattern.
func step(now time.Duration) time.Duration { return now + time.Millisecond }

func bad() time.Duration {
	t0 := time.Now()             // want `time\.Now in virtual-time package`
	time.Sleep(time.Millisecond) // want `time\.Sleep in virtual-time package`
	return time.Since(t0)        // want `time\.Since in virtual-time package`
}

func badWait(done chan struct{}) bool {
	timer := time.NewTimer(time.Second) // want `time\.NewTimer in virtual-time package`
	defer timer.Stop()
	select {
	case <-done:
		return true
	case <-time.After(time.Millisecond): // want `time\.After in virtual-time package`
		return false
	}
}

// badRef leaks the wall clock as a value, not a call.
func badRef() func() time.Time {
	return time.Now // want `time\.Now in virtual-time package`
}

func good(now time.Duration) time.Duration {
	deadline := now + 5*time.Millisecond
	return step(deadline)
}
