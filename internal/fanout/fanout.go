// Package fanout grows warm model replicas through multicast-style transform
// trees: every newly transformed container immediately becomes a donor for
// the next wave (λScale's fast model scaling), with the recipient-local
// structure-load phase pipelined ahead of the donor-occupying weights-assign
// phase (Cicada's decoupled load). Donor scheduling is a first-class
// resource: each node carries a bounded number of concurrent outbound
// donation streams, and the tree hands donors out against that budget.
//
// The package owns the tree bookkeeping — membership, lineage, per-node
// donation slots, wave accounting and the poison/quarantine logic — while
// the simulation engine owns containers, costs, event scheduling and fault
// injection. All tree state lives in virtual time (time.Duration offsets)
// and every scheduling decision is deterministic: candidates are considered
// in member-ID order, so a fixed seed reproduces the exact same tree.
//
// Fault model. A donor can die midway through streaming weights to a child
// (faults.FanoutCrash): its orphaned in-flight children are re-parented onto
// the nearest healthy ancestor, walking the lineage upward before falling
// back to any healthy member and finally to a from-scratch load. A child can
// complete with a silently corrupt model (faults.Corrupt): the member looks
// warm, may donate onward, and poisons every descendant built from it. Each
// member carries the cumulative edge-rewiring ledger of its lineage;
// corruption unbalances the ledger, and the wave-boundary sweep (plus a
// final audit) runs metaop.CheckEdgeBalance over it to quarantine the
// poisoned member together with its descendant subtree — lineage confines
// the blast radius instead of letting the corruption spread epidemically.
package fanout

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metaop"
	"repro/internal/metrics"
)

// Config parameterizes fan-out transform trees.
type Config struct {
	// Enabled turns fan-out trees on.
	Enabled bool
	// Bandwidth bounds concurrent outbound donation streams per node — the
	// donor-side transform bandwidth (default 2).
	Bandwidth int
	// Threshold is the per-node queue depth that triggers a tree for the
	// queued function (default 4).
	Threshold int
	// MaxRecipients caps how many new replicas one tree builds (default 16).
	MaxRecipients int
	// Independent is the baseline schedule: completed recipients never
	// donate, so every child streams from the original seed donors.
	Independent bool
}

// WithDefaults fills unset fields with their defaults.
func (c Config) WithDefaults() Config {
	if c.Bandwidth <= 0 {
		c.Bandwidth = 2
	}
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.MaxRecipients <= 0 {
		c.MaxRecipients = 16
	}
	return c
}

// State is a tree member's lifecycle state.
type State uint8

const (
	// StateBuilding is a recipient under construction: loading structure,
	// waiting for a donor, streaming weights, or falling back to a load.
	StateBuilding State = iota
	// StateWarm is a completed replica with a balanced rewiring ledger,
	// serving traffic and (in tree mode) donating to the next wave.
	StateWarm
	// StatePoisoned is a completed replica whose model is silently corrupt —
	// indistinguishable from warm until a wave sweep or the final audit runs
	// the edge-balance check over its ledger. It serves and donates, which
	// is exactly how poison spreads to descendants.
	StatePoisoned
	// StateQuarantined is a member cut out of the tree by the edge-balance
	// verification: the detected poisoned member and its whole descendant
	// subtree. Its container is torn down and a replacement is rebuilt from
	// a clean donor.
	StateQuarantined
	// StateDead is a member lost to a donor crash, a recipient loss or the
	// container lifecycle (eviction, repurpose, node outage).
	StateDead
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateWarm:
		return "warm"
	case StatePoisoned:
		return "poisoned"
	case StateQuarantined:
		return "quarantined"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Transition is one edge of the member lifecycle, with its trigger. The
// DESIGN.md lineage-quarantine table is kept in lockstep with Transitions by
// a guard test.
type Transition struct {
	From, To State
	Trigger  string
}

// Transitions returns the authoritative member lifecycle table.
func Transitions() []Transition {
	return []Transition{
		{StateBuilding, StateWarm, "weights assignment or fallback load completed with a balanced rewiring ledger"},
		{StateBuilding, StatePoisoned, "completed with a corrupt-output draw or a poisoned donor's inherited ledger"},
		{StateBuilding, StateBuilding, "donor lost mid-stream; re-parented onto the nearest healthy ancestor or parked for the next free donor"},
		{StateBuilding, StateQuarantined, "ancestor's corruption detected by a wave sweep while this child was still in flight"},
		{StateBuilding, StateDead, "recipient container or node lost before completion; a replacement is rebuilt"},
		{StateWarm, StateDead, "donor crashed mid-donation or was lost to the container lifecycle"},
		{StatePoisoned, StateDead, "donor crashed mid-donation or was lost to the container lifecycle"},
		{StatePoisoned, StateQuarantined, "edge-balance verification caught the unbalanced ledger at a wave boundary or the final audit"},
	}
}

// phase refines StateBuilding.
type phase uint8

const (
	phaseNone    phase = iota
	phaseStruct        // loading graph structure locally (no donor needed)
	phasePending       // structure ready, parked until a donor slot frees
	phaseWeights       // streaming weights from the assigned donor
	phaseLoad          // falling back to a from-scratch load
)

// Member is one node of the tree: a seed donor or a recipient replica.
type Member struct {
	// ID indexes the member within its tree (creation order).
	ID int
	// Node is the cluster node hosting the member's container.
	Node int
	// Parent is the donor member the replica received its weights from; -1
	// for seeds and for children built by a from-scratch fallback load.
	Parent int
	// Wave is the tree depth: seeds are wave 0, a child is its donor's wave
	// plus one; -1 while a recipient has not been assigned a donor yet.
	Wave int
	// State is the lifecycle state.
	State State
	// Seed marks a pre-existing warm donor adopted at tree start.
	Seed bool

	phase    phase
	kids     []int
	inflight int // children currently streaming from this member
	// The cumulative edge-rewiring ledger inherited down the lineage;
	// corruption unbalances it (see metaop.CheckEdgeBalance).
	ledgerAdds, ledgerRemoves, ledgerDiff int
}

// poisonedLedger reports whether the member's ledger fails the edge-balance
// verification — the observable symptom of a corrupt model.
func (m *Member) poisonedLedger() bool {
	return metaop.CheckEdgeBalance(m.ledgerAdds, m.ledgerRemoves, m.ledgerDiff) != nil
}

// Assignment is a donor granted to a parked child.
type Assignment struct {
	Child, Donor, DonorNode int
}

// Reparent is the outcome for one orphaned in-flight child of a lost donor.
// NewDonor is the adopting ancestor's member ID, or -1 when no healthy donor
// had a free slot and the child was parked.
type Reparent struct {
	Child, NewDonor, NewDonorNode int
}

// Quarantine lists the members cut out by an edge-balance sweep. Removed
// members had completed (their containers must be torn down); Cancelled
// members were still in flight (containers and scheduled events dropped).
type Quarantine struct {
	Removed   []int
	Cancelled []int
}

// Empty reports whether the sweep cut nothing.
func (q Quarantine) Empty() bool { return len(q.Removed) == 0 && len(q.Cancelled) == 0 }

// CompleteResult reports what a child completion triggered.
type CompleteResult struct {
	// Completed reports the member actually transitioned out of StateBuilding
	// here. False means the call was a stale no-op — the child was re-parented,
	// cancelled, quarantined or diverted since the completion was scheduled —
	// and the caller must not treat the member as warm.
	Completed bool
	// Swept holds the members quarantined by the wave-boundary sweep (or the
	// final audit) that this completion closed.
	Swept Quarantine
	// TreeDone reports the tree reached its target with every ledger clean.
	TreeDone bool
	// ViaDonation reports the child finished a weights stream (as opposed to
	// a from-scratch fallback load) — the engine records breaker successes
	// only for actual donations.
	ViaDonation bool
}

// Tree is one fan-out transform tree warming Want replicas of one function.
// Safe for concurrent use; the simulator calls it under its own lock but the
// race stress tests drive it from many goroutines.
type Tree struct {
	mu       sync.Mutex
	cfg      Config
	fn       string
	want     int
	start    time.Duration
	members  []*Member
	streams  map[int]int // node → active outbound donation streams
	pending  []int       // FIFO of children parked waiting for a donor
	waveOpen map[int]int // wave → children assigned and not yet resolved
	maxWave  int
	stats    metrics.FanoutStats
	done     bool
}

// New starts a tree warming want replicas of fn, triggered at virtual time
// now. Seeds are added separately with AddSeed.
func New(cfg Config, fn string, want int, now time.Duration) *Tree {
	cfg = cfg.WithDefaults()
	if want > cfg.MaxRecipients {
		want = cfg.MaxRecipients
	}
	t := &Tree{
		cfg:      cfg,
		fn:       fn,
		want:     want,
		start:    now,
		streams:  make(map[int]int),
		waveOpen: make(map[int]int),
	}
	t.stats.Trees = 1
	return t
}

// Fn returns the target function name.
func (t *Tree) Fn() string { return t.fn }

// Want returns the target replica count.
func (t *Tree) Want() int { return t.want }

// Done reports whether the tree reached its target with clean ledgers.
func (t *Tree) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Stats returns a snapshot of the tree's tallies.
func (t *Tree) Stats() metrics.FanoutStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Members returns a copy of the membership for inspection.
func (t *Tree) Members() []Member {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Member, len(t.members))
	for i, m := range t.members {
		out[i] = *m
		out[i].kids = append([]int(nil), m.kids...)
	}
	return out
}

// AddSeed adopts a pre-existing warm replica on the node as a wave-0 donor
// and returns its member ID. Seeds do not count toward Want.
func (t *Tree) AddSeed(node int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := &Member{ID: len(t.members), Node: node, Parent: -1, Wave: 0, State: StateWarm, Seed: true}
	t.members = append(t.members, m)
	return m.ID
}

// NeedRecipients returns how many recipients still have to be started:
// the target minus every live recipient (building or completed).
func (t *Tree) NeedRecipients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.needLocked()
}

func (t *Tree) needLocked() int {
	live := 0
	for _, m := range t.members {
		if !m.Seed && (m.State == StateBuilding || m.State == StateWarm || m.State == StatePoisoned) {
			live++
		}
	}
	if n := t.want - live; n > 0 {
		return n
	}
	return 0
}

// StartRecipient places a new recipient on one of the candidate nodes
// (pre-filtered by the engine for capacity and health, in deterministic
// order) and returns its member ID. The recipient begins in the structure-
// load phase, which needs no donor — the engine schedules its completion and
// then calls StructDone. Placement spreads replicas: the candidate hosting
// the fewest live tree members wins, first-listed on ties.
func (t *Tree) StartRecipient(nodes []int) (child, node int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || t.needLocked() == 0 || len(nodes) == 0 {
		return 0, 0, false
	}
	hosted := make(map[int]int)
	for _, m := range t.members {
		if m.State == StateBuilding || m.State == StateWarm || m.State == StatePoisoned {
			hosted[m.Node]++
		}
	}
	best, bestN := -1, 0
	for _, n := range nodes {
		if best == -1 || hosted[n] < bestN {
			best, bestN = n, hosted[n]
		}
	}
	m := &Member{ID: len(t.members), Node: best, Parent: -1, Wave: -1, State: StateBuilding, phase: phaseStruct}
	t.members = append(t.members, m)
	return m.ID, best, true
}

// StructDone moves the child from the structure-load phase to the donor
// queue and immediately tries to assign a donor (see AssignDonor). When no
// donor has a free stream the child parks until PumpPending hands one out.
func (t *Tree) StructDone(child int, eligible func(member, node int) bool) (Assignment, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[child]
	if m.State != StateBuilding || m.phase != phaseStruct {
		return Assignment{}, false
	}
	m.phase = phasePending
	if a, ok := t.assignLocked(m, eligible); ok {
		return a, true
	}
	t.pending = append(t.pending, child)
	return Assignment{}, false
}

// assignLocked grants the lowest-ID eligible donor with a free outbound
// stream to the pending child.
func (t *Tree) assignLocked(m *Member, eligible func(member, node int) bool) (Assignment, bool) {
	for _, d := range t.members {
		if !t.canDonateLocked(d) {
			continue
		}
		if eligible != nil && !eligible(d.ID, d.Node) {
			continue
		}
		t.attachLocked(m, d)
		return Assignment{Child: m.ID, Donor: d.ID, DonorNode: d.Node}, true
	}
	return Assignment{}, false
}

func (t *Tree) canDonateLocked(d *Member) bool {
	if d.State != StateWarm && d.State != StatePoisoned {
		return false
	}
	if t.cfg.Independent && !d.Seed {
		return false
	}
	return t.streams[d.Node] < t.cfg.Bandwidth
}

func (t *Tree) attachLocked(m, d *Member) {
	m.Parent = d.ID
	m.phase = phaseWeights
	if m.Wave < 0 {
		m.Wave = d.Wave + 1
		if m.Wave > t.maxWave {
			t.maxWave = m.Wave
			t.stats.Waves = t.maxWave
		}
		t.waveOpen[m.Wave]++
	}
	d.kids = append(d.kids, m.ID)
	d.inflight++
	t.streams[d.Node]++
}

// PumpPending hands freed donor streams to parked children in FIFO order and
// returns the assignments for the engine to schedule.
func (t *Tree) PumpPending(eligible func(member, node int) bool) []Assignment {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pumpLocked(eligible)
}

func (t *Tree) pumpLocked(eligible func(member, node int) bool) []Assignment {
	var out []Assignment
	rest := t.pending[:0]
	for _, id := range t.pending {
		m := t.members[id]
		if m.State != StateBuilding || m.phase != phasePending {
			continue // cancelled or quarantined while parked
		}
		if a, ok := t.assignLocked(m, eligible); ok {
			out = append(out, a)
		} else {
			rest = append(rest, id)
		}
	}
	t.pending = rest
	return out
}

// ToFallback diverts a building child to a from-scratch load: a wave-cancel
// (the assigned donation would have blown the wave deadline) or a no-donor
// fallback (open circuit breaker, donors exhausted). Any held donation
// stream is released and the lineage link is cut — a from-scratch load
// cannot inherit poison. waveCancel distinguishes the watchdog path in the
// tallies.
func (t *Tree) ToFallback(child int, waveCancel bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[child]
	if m.State != StateBuilding {
		return
	}
	t.detachLocked(m)
	m.phase = phaseLoad
	m.ledgerAdds, m.ledgerRemoves, m.ledgerDiff = 0, 0, 0
	t.stats.LoadFallbacks++
	if waveCancel {
		t.stats.WaveCancels++
	}
}

// detachLocked severs a building child from its donor, releasing the donor's
// outbound stream.
func (t *Tree) detachLocked(m *Member) {
	if m.phase != phaseWeights || m.Parent < 0 {
		m.Parent = -1
		return
	}
	d := t.members[m.Parent]
	d.inflight--
	t.streams[d.Node]--
	for i, k := range d.kids {
		if k == m.ID {
			d.kids = append(d.kids[:i], d.kids[i+1:]...)
			break
		}
	}
	m.Parent = -1
}

// Complete finishes a child's weights stream or fallback load. corrupt is
// the engine's faults.Corrupt draw for this completion; a corrupt output —
// or a poisoned donor's inherited ledger — leaves the member looking warm
// while its ledger is unbalanced. Completion closes the child's wave when it
// was the last one outstanding, which triggers the wave-boundary sweep; when
// the tree reaches its target the final audit runs the same verification
// over every member.
func (t *Tree) Complete(child int, now time.Duration, corrupt bool) CompleteResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	var res CompleteResult
	m := t.members[child]
	if m.State != StateBuilding || (m.phase != phaseWeights && m.phase != phaseLoad) {
		return res
	}
	wasWeights := m.phase == phaseWeights
	res.ViaDonation = wasWeights
	if wasWeights {
		d := t.members[m.Parent]
		// The replica inherits its donor's cumulative rewiring ledger; its
		// own replication step rewires nothing.
		m.ledgerAdds, m.ledgerRemoves, m.ledgerDiff = d.ledgerAdds, d.ledgerRemoves, d.ledgerDiff
		d.inflight--
		t.streams[d.Node]--
	}
	if corrupt && wasWeights {
		// The corrupt stream claims an edge removal that never happened,
		// unbalancing the ledger without changing the graph diff.
		m.ledgerRemoves++
		t.stats.CorruptOutputs++
	}
	m.phase = phaseNone
	if m.poisonedLedger() {
		m.State = StatePoisoned
	} else {
		m.State = StateWarm
	}
	res.Completed = true
	t.stats.Recipients++
	if m.Wave >= 0 {
		t.waveOpen[m.Wave]--
		if t.waveOpen[m.Wave] == 0 {
			t.sweepLocked(m.Wave, &res.Swept)
		}
	}
	t.checkDoneLocked(now, &res)
	return res
}

// sweepLocked runs the edge-balance verification over every completed member
// of the wave (wave < 0 audits all members) and quarantines each poisoned
// member together with its descendant subtree.
func (t *Tree) sweepLocked(wave int, q *Quarantine) {
	for _, m := range t.members {
		if wave >= 0 && m.Wave != wave {
			continue
		}
		if m.State != StateWarm && m.State != StatePoisoned {
			continue
		}
		if m.poisonedLedger() {
			t.quarantineLocked(m, q)
		}
	}
}

// quarantineLocked cuts the member and its descendants out of the tree.
func (t *Tree) quarantineLocked(root *Member, q *Quarantine) {
	stack := []*Member{root}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range m.kids {
			stack = append(stack, t.members[k])
		}
		switch m.State {
		case StateWarm, StatePoisoned:
			// Any active donation streams are released one by one as the
			// DFS cancels the in-flight children holding them.
			m.State = StateQuarantined
			t.stats.Quarantined++
			q.Removed = append(q.Removed, m.ID)
		case StateBuilding:
			// In-flight descendant: its stream would deliver poisoned
			// weights, so it is cancelled outright and rebuilt. The parent
			// pointer survives as the lineage record of why it was cut.
			parent := m.Parent
			t.releaseLocked(m)
			m.Parent = parent
			m.State = StateQuarantined
			t.stats.Quarantined++
			q.Cancelled = append(q.Cancelled, m.ID)
		}
	}
}

// releaseLocked frees everything a building child holds: its donor's stream
// and its wave slot.
func (t *Tree) releaseLocked(m *Member) {
	t.detachLocked(m)
	m.phase = phaseNone
	if m.Wave >= 0 {
		t.waveOpen[m.Wave]--
		// Closing the wave here must not recurse into a sweep: the caller is
		// already mid-sweep or tearing the member down; the final audit
		// covers anything a skipped boundary would have caught.
	}
}

// checkDoneLocked runs the final audit once the target is reached with
// nothing in flight, and marks the tree done when every ledger is clean.
func (t *Tree) checkDoneLocked(now time.Duration, res *CompleteResult) {
	if t.done {
		res.TreeDone = true
		return
	}
	completed, building := 0, 0
	for _, m := range t.members {
		if m.Seed {
			continue
		}
		switch m.State {
		case StateWarm, StatePoisoned:
			completed++
		case StateBuilding:
			building++
		}
	}
	if completed < t.want || building > 0 {
		return
	}
	t.sweepLocked(-1, &res.Swept)
	if t.needLocked() > 0 {
		return // the audit cut poisoned members; replacements are needed
	}
	t.done = true
	t.stats.TreesCompleted++
	t.stats.TimeToWarm = now - t.start
	res.TreeDone = true
}

// DonorLost handles a donor dying mid-donation (injected=true for the
// FanoutCrash fault, false for losses to the container lifecycle). Each
// orphaned in-flight child is re-parented onto the nearest healthy ancestor:
// the lineage is walked upward from the lost donor, falling back to any
// healthy member with a free stream, and parked when none qualifies. The
// engine reschedules assigned orphans (the stream restarts from the new
// donor) and drops the old completion events.
func (t *Tree) DonorLost(donor int, eligible func(member, node int) bool, injected bool) []Reparent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.donorLostLocked(donor, eligible, injected)
}

func (t *Tree) donorLostLocked(donor int, eligible func(member, node int) bool, injected bool) []Reparent {
	d := t.members[donor]
	if d.State != StateWarm && d.State != StatePoisoned {
		return nil
	}
	d.State = StateDead
	t.streams[d.Node] -= d.inflight
	d.inflight = 0
	if injected {
		t.stats.DonorCrashes++
	}
	var orphans []*Member
	for _, k := range d.kids {
		m := t.members[k]
		if m.State == StateBuilding && m.phase == phaseWeights && m.Parent == donor {
			orphans = append(orphans, m)
		}
	}
	var out []Reparent
	for _, m := range orphans {
		m.Parent = -1
		// Remove the orphan from the dead donor's kids: its weights now come
		// from elsewhere, so the lineage (and any future quarantine of the
		// dead donor's subtree) must not claim it.
		for i, k := range d.kids {
			if k == m.ID {
				d.kids = append(d.kids[:i], d.kids[i+1:]...)
				break
			}
		}
		t.stats.Reparents++
		if a, ok := t.adoptLocked(m, d, eligible); ok {
			out = append(out, Reparent{Child: m.ID, NewDonor: a.Donor, NewDonorNode: a.DonorNode})
		} else {
			// Deferred adoption: parked until PumpPending finds a donor.
			m.phase = phasePending
			t.pending = append(t.pending, m.ID)
			out = append(out, Reparent{Child: m.ID, NewDonor: -1})
		}
	}
	return out
}

// adoptLocked re-parents an orphan: nearest healthy ancestor first (walking
// the lost donor's lineage upward), then any healthy member in ID order.
func (t *Tree) adoptLocked(m, lost *Member, eligible func(member, node int) bool) (Assignment, bool) {
	ok := func(c *Member) bool {
		return t.canDonateLocked(c) && (eligible == nil || eligible(c.ID, c.Node))
	}
	for p := lost.Parent; p >= 0; {
		anc := t.members[p]
		if ok(anc) {
			m.phase = phasePending
			t.attachLocked(m, anc)
			return Assignment{Child: m.ID, Donor: anc.ID, DonorNode: anc.Node}, true
		}
		p = anc.Parent
	}
	for _, c := range t.members {
		if ok(c) {
			m.phase = phasePending
			t.attachLocked(m, c)
			return Assignment{Child: m.ID, Donor: c.ID, DonorNode: c.Node}, true
		}
	}
	return Assignment{}, false
}

// Stranded returns the children parked for a donor when the tree can no
// longer produce one: nothing is in flight that could complete into a donor,
// and no completed member passes the aliveness check (its container may be
// dead, evicted or repurposed). Such children can only finish through a
// from-scratch fallback load; the engine diverts them so the tree keeps
// making progress instead of stalling on a donor that will never exist.
func (t *Tree) Stranded(alive func(member, node int) bool) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.members {
		switch {
		case m.State == StateBuilding && (m.phase == phaseWeights || m.phase == phaseLoad):
			// An in-flight stream can still complete into a donor — except in
			// independent mode, where recipients never donate.
			if !t.cfg.Independent {
				return nil
			}
		case (m.State == StateWarm || m.State == StatePoisoned) &&
			(alive == nil || alive(m.ID, m.Node)):
			// A live completed member is only a future donor if the mode lets
			// it donate at all; independent mode restricts donation to seeds.
			if !t.cfg.Independent || m.Seed {
				return nil
			}
		}
	}
	var out []int
	for _, id := range t.pending {
		if m := t.members[id]; m.State == StateBuilding && m.phase == phasePending {
			out = append(out, id)
		}
	}
	return out
}

// RecipientLost handles a building child losing its container or node before
// completion. Whatever it held is released; NeedRecipients grows so the
// engine rebuilds a replacement.
func (t *Tree) RecipientLost(child int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[child]
	if m.State != StateBuilding {
		return
	}
	t.releaseLocked(m)
	m.State = StateDead
}

// MemberLost handles a completed member (donor or idle replica) lost to the
// container lifecycle without an active donation: eviction, repurposing or a
// node outage. With active donations DonorLost applies instead; MemberLost
// forwards in that case.
func (t *Tree) MemberLost(member int, eligible func(member, node int) bool) []Reparent {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[member]
	// The inflight check and the state transition share one critical section:
	// a concurrent attach between a dropped-and-retaken lock could leave an
	// in-flight child streaming from a member already marked dead.
	if m.inflight > 0 {
		return t.donorLostLocked(member, eligible, false)
	}
	if m.State == StateWarm || m.State == StatePoisoned {
		m.State = StateDead
	}
	return nil
}

// Streams returns the node's active outbound donation streams (for tests).
func (t *Tree) Streams(node int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.streams[node]
}
