package repository

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/zoo"
)

func testPlanner() *planner.Planner {
	return planner.New(cost.Exact(cost.CPU()), planner.AlgoGroup)
}

func TestPutGetDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := zoo.Imgclsmob().MustGet("resnet18-imagenet")
	if err := s.Put(g); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(g); err == nil {
		t.Fatal("duplicate Put accepted")
	}
	got, ok := s.Get("resnet18-imagenet")
	if !ok || !got.Equal(g) {
		t.Fatal("Get mismatch")
	}
	if s.Len() != 1 || len(s.Names()) != 1 {
		t.Fatalf("Len/Names wrong")
	}
	// The file exists on disk.
	if _, err := os.Stat(filepath.Join(dir, "resnet18-imagenet.json")); err != nil {
		t.Fatalf("model file missing: %v", err)
	}
	if err := s.Delete("resnet18-imagenet"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("resnet18-imagenet"); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, ok := s.Get("resnet18-imagenet"); ok {
		t.Fatal("deleted model still present")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	img := zoo.Imgclsmob()
	a := img.MustGet("resnet18-imagenet")
	b := img.MustGet("resnet34-imagenet")
	if err := s1.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(b); err != nil {
		t.Fatal(err)
	}

	// Reopen with a planner: both models reload and plans precompute.
	s2, err := Open(dir, testPlanner())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d models", s2.Len())
	}
	got, ok := s2.Get("resnet34-imagenet")
	if !ok || !got.Equal(b) {
		t.Fatal("reloaded model differs")
	}
	ra, _ := s2.Get("resnet18-imagenet")
	rb, _ := s2.Get("resnet34-imagenet")
	if _, ok := s2.Plans().Get(ra, rb); !ok {
		t.Error("plans not precomputed on reopen")
	}
	if _, ok := s2.Plans().Get(rb, ra); !ok {
		t.Error("reverse plan not precomputed")
	}
}

func TestPutPrecomputesPlans(t *testing.T) {
	s, err := Open(t.TempDir(), testPlanner())
	if err != nil {
		t.Fatal(err)
	}
	img := zoo.Imgclsmob()
	a := img.MustGet("vgg16-imagenet")
	b := img.MustGet("vgg19-imagenet")
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	s.Quiesce() // planning is asynchronous; wait for the worker pool
	if _, ok := s.Plans().Get(a, b); !ok {
		t.Error("a→b plan missing after Put")
	}
}

func TestRejectsInvalidAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := zoo.Imgclsmob().MustGet("resnet18-imagenet").Clone()
	bad.Op(1).Shape = struct {
		KernelH, KernelW, InChannels, OutChannels, Stride int
	}{} // zero shape on a weighted op
	if err := s.Put(bad); err == nil {
		t.Fatal("invalid model accepted")
	}
	// A corrupt file on disk fails the reopen loudly.
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("corrupt repository opened silently")
	}
}

func TestFilenameSanitization(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := zoo.Imgclsmob().MustGet("resnet18-imagenet").Clone()
	g.Name = "weird/../name with spaces"
	if err := s.Put(g); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d files on disk", len(entries))
	}
	name := entries[0].Name()
	if filepath.Dir(filepath.Join(dir, name)) != dir {
		t.Fatalf("path escape: %q", name)
	}
	for _, r := range name {
		if r == '/' || r == ' ' {
			t.Fatalf("unsanitized filename %q", name)
		}
	}
}
