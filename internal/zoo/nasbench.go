package zoo

import (
	"fmt"

	"repro/internal/model"
)

// NAS-Bench-201 (Dong & Yang, ICLR 2020) defines a fixed cell-based search
// space: each cell is a DAG over 4 nodes whose 6 edges each carry one of 5
// candidate operations, giving 5⁶ = 15 625 architectures. The macro skeleton
// is a conv stem, three stages of stacked cells at widths 16/32/64 separated
// by residual reduction blocks, and a linear classifier.

// NASBenchSize is the number of architectures in the search space.
const NASBenchSize = 15625

// nasOp is a candidate operation on a cell edge.
type nasOp uint8

const (
	nasNone  nasOp = iota // "none": the zeroize operation
	nasSkip               // "skip_connect"
	nasConv1              // "nor_conv_1x1" (ReLU-Conv-BN)
	nasConv3              // "nor_conv_3x3" (ReLU-Conv-BN)
	nasPool               // "avg_pool_3x3"
	nasOpCount
)

var nasOpNames = [...]string{"none", "skip_connect", "nor_conv_1x1", "nor_conv_3x3", "avg_pool_3x3"}

// nasCellEdges lists the 6 cell edges in NAS-Bench-201's canonical order.
var nasCellEdges = [6][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 3}}

// NASBenchArch decodes an architecture index into its 6 edge operations
// (base-5 digits, least significant digit = first edge).
func NASBenchArch(index int) ([6]nasOp, error) {
	var arch [6]nasOp
	if index < 0 || index >= NASBenchSize {
		return arch, fmt.Errorf("zoo: NAS-Bench index %d out of [0, %d)", index, NASBenchSize)
	}
	for i := 0; i < 6; i++ {
		arch[i] = nasOp(index % 5)
		index /= 5
	}
	return arch, nil
}

// NASBenchString renders an architecture in the benchmark's arch-string
// notation, e.g. "|nor_conv_3x3~0|+|skip_connect~0|none~1|+|...".
func NASBenchString(arch [6]nasOp) string {
	s := ""
	e := 0
	for node := 1; node <= 3; node++ {
		s += "|"
		for prev := 0; prev < node; prev++ {
			s += fmt.Sprintf("%s~%d|", nasOpNames[arch[e]], prev)
			e++
		}
		if node < 3 {
			s += "+"
		}
	}
	return s
}

// NASBenchModel builds the model graph for the architecture with the given
// index, with cellsPerStage cells in each of the three stages (the benchmark
// uses 5) and the given classifier width (CIFAR-10 → 10 classes).
func NASBenchModel(index, cellsPerStage, classes int) (*model.Graph, error) {
	arch, err := NASBenchArch(index)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("nasbench-%05d", index)
	b := model.NewBuilder(name, "nasbench", name)
	b.Input(3)
	b.Conv("stem.conv", 3, 3, 16, 1)
	b.BN("stem.bn", 16)

	width := 16
	for stage := 0; stage < 3; stage++ {
		for cell := 0; cell < cellsPerStage; cell++ {
			buildNASCell(b, fmt.Sprintf("s%d.c%d", stage+1, cell+1), arch, width)
		}
		if stage < 2 {
			// Residual reduction block: basic block with stride 2 doubling width.
			out := width * 2
			tag := fmt.Sprintf("s%d.reduce", stage+1)
			entry := b.Tail()[0]
			b.Conv(tag+".conv1", 3, width, out, 2)
			b.BN(tag+".bn1", out)
			b.ReLU(tag+".relu1", out)
			b.Conv(tag+".conv2", 3, out, out, 1)
			b.BN(tag+".bn2", out)
			body := b.Tail()[0]
			b.SetTail(entry)
			b.AvgPool(tag+".scpool", 2, width, 2)
			b.Conv(tag+".scconv", 1, width, out, 1)
			b.AddMerge(tag+".add", out, body, b.Tail()[0])
			width = out
		}
	}
	b.BN("final.bn", width)
	b.ReLU("final.relu", width)
	b.GlobalAvgPool("gap", width)
	b.Dense("fc", width, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	g := b.Graph()
	return g, nil
}

// buildNASCell appends one cell. Node 0 is the cell input (current tail);
// node j receives the elementwise sum of its incoming edge operations.
func buildNASCell(b *model.Builder, tag string, arch [6]nasOp, width int) {
	nodes := [4]int{b.Tail()[0], -1, -1, -1}
	incoming := [4][]int{}
	for e, edge := range nasCellEdges {
		from, to := edge[0], edge[1]
		etag := fmt.Sprintf("%s.e%d_%d", tag, from, to)
		var outID int
		switch arch[e] {
		case nasNone:
			outID = b.AddFrom(model.Operation{Name: etag + ".zero", Type: model.OpZero,
				Shape: model.Shape{OutChannels: width}}, nodes[from])
		case nasSkip:
			outID = b.AddFrom(model.Operation{Name: etag + ".skip", Type: model.OpIdentity,
				Shape: model.Shape{OutChannels: width}}, nodes[from])
		case nasConv1, nasConv3:
			k := 1
			if arch[e] == nasConv3 {
				k = 3
			}
			b.SetTail(nodes[from])
			b.ReLU(etag+".relu", width)
			b.Conv(etag+".conv", k, width, width, 1)
			outID = b.BN(etag+".bn", width)
		case nasPool:
			outID = b.AddFrom(model.Operation{Name: etag + ".pool", Type: model.OpAvgPool,
				Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: width, OutChannels: width, Stride: 1}}, nodes[from])
		}
		incoming[to] = append(incoming[to], outID)
		// Node `to` is complete once all its inbound edges are built; edges
		// arrive in canonical order so node j closes at its last edge.
		if (to == 1 && e == 0) || (to == 2 && e == 2) || (to == 3 && e == 5) {
			nodes[to] = b.AddMerge(fmt.Sprintf("%s.n%d", tag, to), width, incoming[to]...)
		}
	}
	b.SetTail(nodes[3])
}
