package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestScaleSmoke runs the scale benchmark at a tiny request count and checks
// the invariants that must hold at any scale: both equality proofs pass, the
// replay is sharded (the placement is built to partition), and the indexed
// engine allocates less per request than the scanning baseline.
func TestScaleSmoke(t *testing.T) {
	res := Scale(Options{Quick: true, Seed: 5}, 4000, 4, 2)
	if res.Requests == 0 {
		t.Fatal("empty trace")
	}
	if !res.IndexedMatchesScan {
		t.Error("indexed replay diverged from the scanning baseline")
	}
	if !res.ShardedMatchesSerial {
		t.Error("shard-merged aggregates diverged from serial")
	}
	if res.ShardSerialReason != "" {
		t.Errorf("expected sharded replay, fell back serially: %s", res.ShardSerialReason)
	}
	if res.Shards != 4 {
		t.Errorf("expected 4 shards, got %d", res.Shards)
	}
	if res.IndexedAllocsPerReq >= res.SerialAllocsPerReq {
		t.Errorf("indexed allocs/req %.1f not below scan baseline %.1f",
			res.IndexedAllocsPerReq, res.SerialAllocsPerReq)
	}
}

// TestScaleArtifactGuard validates the checked-in BENCH_sim_scale.json: the
// required keys are present, both equality proofs passed when it was
// generated, and the indexed engine was not slower than the scan baseline.
// (The ≥3× total-speedup acceptance bar is asserted at generation time; a
// CI runner's wall clock is too noisy to re-enforce it here.)
func TestScaleArtifactGuard(t *testing.T) {
	path := filepath.Join("..", "..", BenchScaleFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing artifact %s (run `make bench-scale`): %v", BenchScaleFile, err)
	}
	var keys map[string]any
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	for _, k := range []string{
		"requests", "serial_ms", "indexed_ms", "sharded_ms",
		"speedup_indexed", "speedup_sharded", "speedup_total",
		"serial_allocs_per_req", "indexed_allocs_per_req", "sharded_allocs_per_req",
		"indexed_matches_scan", "sharded_matches_serial", "shards",
	} {
		if _, ok := keys[k]; !ok {
			t.Errorf("artifact missing key %q", k)
		}
	}
	var res ScaleBench
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.IndexedMatchesScan {
		t.Error("artifact records an indexed/scan divergence")
	}
	if !res.ShardedMatchesSerial {
		t.Error("artifact records a sharded/serial aggregate divergence")
	}
	if res.SpeedupIndexed < 1.0 {
		t.Errorf("indexed replay slower than the scan baseline: %.2fx", res.SpeedupIndexed)
	}
	if res.Requests < 500_000 {
		t.Errorf("artifact generated from only %d requests; want >= 500000", res.Requests)
	}
	if res.ShardSerialReason != "" {
		t.Errorf("artifact benchmark fell back to serial: %s", res.ShardSerialReason)
	}
}
