// Package gateway implements the Optimus control plane of §7: an HTTP
// gateway that accepts model registrations and inference invocations,
// dispatches them to (simulated) containers under the Optimus scheduler,
// and reports per-request latency breakdowns and aggregate statistics.
//
// The API mirrors the paper's prototype:
//
//	POST /api/models         register a model (JSON graph; see model package)
//	GET  /api/models         list registered models
//	GET  /api/models/{name}  fetch one model's structure
//	DELETE /api/models/{name} unregister a model
//	POST /api/invoke         invoke a function: {"model": "<name>"}
//	GET  /api/plan           inspect a transformation plan: ?src=a&dst=b
//	GET  /api/stats          aggregate service statistics
//	GET  /api/cluster        node and container state
//	GET  /healthz            liveness
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/policy"
	"repro/internal/repository"
	"repro/internal/simulate"
)

// Sentinel errors callers (and the HTTP layer) can test with errors.Is to
// pick the right status code.
var (
	// ErrDuplicateModel rejects registering a name twice (409).
	ErrDuplicateModel = errors.New("model already registered")
	// ErrUnknownModel rejects operations on unregistered names (404).
	ErrUnknownModel = errors.New("unknown model")
)

// Config parameterizes the gateway.
type Config struct {
	// Cluster configures the backing cluster (policy, nodes, profile...).
	Cluster simulate.Config
	// Now supplies the current offset from server start; defaults to wall
	// clock. Tests inject a fake.
	Now func() time.Duration
	// Repository, when non-nil, persists registered models to disk and
	// preloads the models already stored there (§7: the paper deploys
	// models to a Docker volume; this is the equivalent store).
	Repository *repository.Store
	// RequestTimeout bounds each request's handling time; responses past
	// it are 503s. Zero disables the timeout.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently handled requests: beyond it the
	// gateway sheds load with 503 + Retry-After instead of queueing
	// unboundedly. Zero means no bound.
	MaxInflight int
	// CheckpointPath, when non-empty, enables durable checkpoint/restore:
	// SaveCheckpoint writes atomic snapshots there and New auto-restores an
	// existing (valid) checkpoint, quarantining containers whose functions
	// are no longer registered. A corrupt file logs a warning and the
	// gateway starts clean.
	CheckpointPath string
	// PlanWorkers bounds the offline-planning worker pool that precomputes
	// pairwise transformation plans in the background when models register
	// (§4.4 Module 3). Zero or negative defaults to GOMAXPROCS.
	PlanWorkers int
	// PlanPairFilter, when non-nil, restricts which ordered (src, dst) pairs
	// this gateway precomputes on registration. The multi-gateway control
	// plane installs a ring-ownership filter so each member plans only the
	// pairs it owns; pairs rejected here are still planned on demand (or
	// pulled from their owner) if a request needs them first.
	PlanPairFilter func(src, dst *model.Graph) bool
}

// Gateway is the HTTP control plane.
type Gateway struct {
	mu     sync.Mutex
	online *simulate.Online
	now    func() time.Duration
	models map[string]*model.Graph
	store  *repository.Store
	// pre is the parallel offline-planning pipeline: registrations enqueue
	// their pairwise plans here and return without planning inline.
	pre *planner.Precomputer

	pairFilter func(src, dst *model.Graph) bool

	timeout time.Duration
	// inflight, when non-nil, is the admission semaphore bounding
	// concurrent requests; shed and panics count load-shed responses and
	// recovered handler panics for /api/stats.
	inflight chan struct{}
	shed     atomic.Int64
	panics   atomic.Int64

	// ckptPath/ckptInj drive durable checkpointing; the injector (possibly
	// nil) deterministically fails writes for chaos testing. The counters
	// and restore summary feed /api/stats.
	ckptPath     string
	ckptInj      *faults.Injector
	ckptSaves    atomic.Int64
	ckptFailures atomic.Int64

	restoredModels  int
	restoredRecords int
	quarantined     []string
}

// New builds a gateway with no registered models.
func New(cfg Config) *Gateway {
	now := cfg.Now
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	if cfg.Cluster.Policy == nil {
		cfg.Cluster.Policy = policy.Optimus{}
	}
	g := &Gateway{
		online:   simulate.NewOnline(cfg.Cluster, nil),
		now:      now,
		models:   make(map[string]*model.Graph),
		store:    cfg.Repository,
		timeout:  cfg.RequestTimeout,
		ckptPath: cfg.CheckpointPath,
		ckptInj:  faults.New(cfg.Cluster.Seed^0x9e3779b9, faults.Rates{CheckpointWrite: cfg.Cluster.Faults.CheckpointWrite}),

		pairFilter: cfg.PlanPairFilter,
	}
	env := g.online.Env()
	g.pre = planner.NewPrecomputer(env.Planner, env.Plans, cfg.PlanWorkers)
	if cfg.MaxInflight > 0 {
		g.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if g.store != nil {
		preloaded := make([]*model.Graph, 0, g.store.Len())
		for _, name := range g.store.Names() {
			if m, ok := g.store.Get(name); ok {
				g.models[m.Name] = m
				g.online.AddFunction(&simulate.Function{Name: m.Name, Model: m})
				preloaded = append(preloaded, m)
			}
		}
		// Repository reopen: warm the plan cache for the whole preloaded
		// catalog in the background — New returns immediately and the
		// N·(N−1) ordered pairs fan across the worker pool.
		for i, m := range preloaded {
			g.enqueuePairs(m, preloaded[:i])
		}
	}
	if g.ckptPath != "" {
		g.restoreFromDisk()
	}
	return g
}

// Handler returns the gateway's HTTP handler, wrapped in the hardening
// middleware stack: per-request timeout around panic recovery around
// bounded-admission load shedding.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/api/models", g.handleModels)
	mux.HandleFunc("/api/models/", g.handleModelByName)
	mux.HandleFunc("/api/invoke", g.handleInvoke)
	mux.HandleFunc("/api/plan", g.handlePlan)
	mux.HandleFunc("/api/stats", g.handleStats)
	mux.HandleFunc("/api/cluster", g.handleCluster)

	var h http.Handler = mux
	h = g.shedLoad(h)
	h = g.recoverPanics(h)
	if g.timeout > 0 {
		h = http.TimeoutHandler(h, g.timeout, `{"error":"request timed out"}`)
	}
	return h
}

// recoverPanics converts handler panics into 500s instead of killing the
// connection (and, with http.Server, leaking a broken keep-alive).
func (g *Gateway) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				g.panics.Add(1)
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// shedLoad admits at most MaxInflight concurrent requests; the rest are
// answered immediately with 503 + Retry-After so clients back off instead
// of piling onto a saturated gateway.
func (g *Gateway) shedLoad(next http.Handler) http.Handler {
	if g.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case g.inflight <- struct{}{}:
			defer func() { <-g.inflight }()
			next.ServeHTTP(w, r)
		default:
			g.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errors.New("gateway saturated, retry later"))
		}
	})
}

// RegisterModel adds a model programmatically (same path as POST
// /api/models). When a new model registers, transformation plans against the
// already-registered models are precomputed into the plan cache — the
// "planning strategy caching" of §4.4 Module 3. Planning runs asynchronously
// on the gateway's bounded worker pool, so registration returns in O(1)
// regardless of catalog size; a request arriving before its pair's plan is
// ready falls back to planning inline through the same singleflighted cache,
// so behaviour is unchanged. PlanningQuiesce waits for the backlog.
func (g *Gateway) RegisterModel(m *model.Graph) error {
	if err := m.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	if _, dup := g.models[m.Name]; dup {
		g.mu.Unlock()
		return fmt.Errorf("gateway: model %q: %w", m.Name, ErrDuplicateModel)
	}
	g.models[m.Name] = m
	existing := make([]*model.Graph, 0, len(g.models))
	for _, other := range g.models {
		if other.Name != m.Name {
			existing = append(existing, other)
		}
	}
	g.mu.Unlock()
	// Sorted so the planning pipeline sees pairs in a fixed order: under an
	// LRU-bounded plan cache, enqueue order decides eviction order, and map
	// order here would make cache contents differ run to run.
	sort.Slice(existing, func(i, j int) bool { return existing[i].Name < existing[j].Name })

	if g.store != nil {
		// Persist before going live: if the store rejects the model the
		// registration is rolled back, keeping gateway and store agreed.
		if err := g.store.Put(m); err != nil {
			g.mu.Lock()
			delete(g.models, m.Name)
			g.mu.Unlock()
			return fmt.Errorf("gateway: persisting %s: %w", m.Name, err)
		}
	}
	g.online.AddFunction(&simulate.Function{Name: m.Name, Model: m})
	g.enqueuePairs(m, existing)
	return nil
}

// enqueuePairs schedules both plan directions between m and every model in
// others, honoring the PlanPairFilter when one is installed (the control
// plane's ring-ownership restriction).
func (g *Gateway) enqueuePairs(m *model.Graph, others []*model.Graph) {
	if g.pairFilter == nil {
		g.pre.EnqueueAll(m, others)
		return
	}
	for _, o := range others {
		if o == m {
			continue
		}
		if g.pairFilter(o, m) {
			g.pre.Enqueue(o, m)
		}
		if g.pairFilter(m, o) {
			g.pre.Enqueue(m, o)
		}
	}
}

// Invoke serves one request for the named model at `now` through the same
// path as POST /api/invoke, minus HTTP. The control plane calls it after ring
// routing; tests call it to drive load without a listener.
func (g *Gateway) Invoke(name string, now time.Duration) (metrics.Record, error) {
	g.mu.Lock()
	_, ok := g.models[name]
	g.mu.Unlock()
	if !ok {
		return metrics.Record{}, fmt.Errorf("gateway: model %q: %w", name, ErrUnknownModel)
	}
	return g.online.Invoke(name, now)
}

// Model returns a registered model by name.
func (g *Gateway) Model(name string) (*model.Graph, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.models[name]
	return m, ok
}

// Env exposes the gateway's policy environment (planner, plan cache): the
// control plane installs the cross-gateway cache loader through it.
func (g *Gateway) Env() *simulate.Env { return g.online.Env() }

// Online exposes the backing online simulator (stats readers).
func (g *Gateway) Online() *simulate.Online { return g.online }

// PlanningQuiesce blocks until the offline-planning pipeline has no
// outstanding pairs — every registration enqueued so far is fully planned.
func (g *Gateway) PlanningQuiesce() { g.pre.Quiesce() }

// PlanningReady reports whether the offline-planning backlog is empty.
func (g *Gateway) PlanningReady() bool { return g.pre.Ready() }

// Precomputer exposes the offline-planning pipeline (for tests and stats).
func (g *Gateway) Precomputer() *planner.Precomputer { return g.pre }

func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		g.mu.Lock()
		names := make([]string, 0, len(g.models))
		for n := range g.models {
			names = append(names, n)
		}
		g.mu.Unlock()
		// Sorted so the same registered set always serializes identically.
		sort.Strings(names)
		writeJSON(w, http.StatusOK, map[string]any{"models": names})
	case http.MethodPost:
		var m model.Graph
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := g.RegisterModel(&m); err != nil {
			// Only a duplicate registration is a conflict; a model that
			// fails validation is the client's bad request.
			status := http.StatusBadRequest
			if errors.Is(err, ErrDuplicateModel) {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		st := m.Stats()
		writeJSON(w, http.StatusCreated, map[string]any{
			"name": m.Name, "ops": st.Ops, "params": st.Params,
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

func (g *Gateway) handleModelByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/models/")
	switch r.Method {
	case http.MethodGet:
		g.mu.Lock()
		m, ok := g.models[name]
		g.mu.Unlock()
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", name))
			return
		}
		writeJSON(w, http.StatusOK, m)
	case http.MethodDelete:
		if err := g.UnregisterModel(name); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrUnknownModel) {
				status = http.StatusNotFound
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or DELETE"))
	}
}

// UnregisterModel removes a model from the gateway. In-flight containers
// holding it keep running until the keep-alive recycles them; new requests
// for the name are rejected. The store is updated first: if the delete
// fails the model stays registered, so store and gateway never disagree.
func (g *Gateway) UnregisterModel(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.models[name]; !ok {
		return fmt.Errorf("gateway: model %q: %w", name, ErrUnknownModel)
	}
	if g.store != nil {
		if err := g.store.Delete(name); err != nil {
			return fmt.Errorf("gateway: removing %s from store: %w", name, err)
		}
	}
	delete(g.models, name)
	g.online.RemoveFunction(name)
	return nil
}

// clusterNode is the /api/cluster view of one node.
type clusterNode struct {
	ID         int                `json:"id"`
	Containers []clusterContainer `json:"containers"`
	UsedMB     int                `json:"used_mb,omitempty"`
	Down       bool               `json:"down,omitempty"`
}

type clusterContainer struct {
	Function string  `json:"function"`
	Busy     bool    `json:"busy"`
	IdleSec  float64 `json:"idle_sec"`
	MemMB    int     `json:"mem_mb,omitempty"`
}

func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	now := g.now()
	nodes := g.online.Snapshot(now)
	out := make([]clusterNode, 0, len(nodes))
	for _, n := range nodes {
		cn := clusterNode{ID: n.ID, UsedMB: n.UsedMB(), Down: n.Down(now)}
		for _, c := range n.Containers {
			cn.Containers = append(cn.Containers, clusterContainer{
				Function: c.Fn.Name,
				Busy:     c.Busy(now),
				IdleSec:  c.IdleFor(now).Seconds(),
				MemMB:    c.MemMB,
			})
		}
		out = append(out, cn)
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": out})
}

// invokeRequest is the body of POST /api/invoke, mirroring the paper's
// query API (input data is carried but not interpreted by the simulator).
type invokeRequest struct {
	Model string          `json:"model"`
	Input json.RawMessage `json:"input,omitempty"`
}

type invokeResponse struct {
	Model     string  `json:"model"`
	Kind      string  `json:"start_kind"`
	WaitMS    float64 `json:"wait_ms"`
	InitMS    float64 `json:"init_ms"`
	LoadMS    float64 `json:"load_ms"`
	ComputeMS float64 `json:"compute_ms"`
	LatencyMS float64 `json:"latency_ms"`
	Retries   int     `json:"retries,omitempty"`
}

func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing model"))
		return
	}
	rec, err := g.online.Invoke(req.Model, g.now())
	if err != nil {
		if errors.Is(err, simulate.ErrRequestDropped) {
			// Injected crashes exhausted the retry budget: a retryable
			// service failure, not a missing model.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, invokeResponse{
		Model:     req.Model,
		Kind:      rec.Kind.String(),
		WaitMS:    msF(rec.Wait),
		InitMS:    msF(rec.Init),
		LoadMS:    msF(rec.Load),
		ComputeMS: msF(rec.Compute),
		LatencyMS: msF(rec.Latency()),
		Retries:   rec.Retries,
	})
}

func (g *Gateway) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	srcName, dstName := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	g.mu.Lock()
	src, okS := g.models[srcName]
	dst, okD := g.models[dstName]
	g.mu.Unlock()
	if !okS || !okD {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown model in pair (%q, %q)", srcName, dstName))
		return
	}
	env := g.online.Env()
	plan := env.Plans.GetOrPlan(env.Planner, src, dst)
	counts := map[string]int{}
	for k, n := range plan.CountByKind() {
		counts[k.String()] = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"src":               srcName,
		"dst":               dstName,
		"steps":             len(plan.Steps),
		"counts":            counts,
		"est_ms":            msF(plan.EstCost),
		"scratch_ms":        msF(plan.ScratchCost),
		"load_from_scratch": plan.LoadFromScratch,
	})
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	var out map[string]any
	// Aggregates are computed under the server lock so they are consistent
	// with concurrent invocations.
	g.online.ReadCollector(func(col *metrics.Collector) {
		// Quick reuses the collector's cached aggregates (running kind counts,
		// the PR-4 sorted-latency view) instead of re-deriving maps and
		// re-walking records per stats call.
		q := col.Quick()
		out = map[string]any{
			"requests":           q.Requests,
			"mean_latency_ms":    msF(q.Mean),
			"p50_ms":             msF(q.P50),
			"p99_ms":             msF(q.P99),
			"warm_fraction":      q.Fraction(metrics.StartWarm),
			"transform_fraction": q.Fraction(metrics.StartTransform),
			"cold_fraction":      q.Fraction(metrics.StartCold),
			"fallback_fraction":  q.Fraction(metrics.StartFallback),
			"timeout_fraction":   q.Fraction(metrics.StartTimeout),
			"breaker_fraction":   q.Fraction(metrics.StartBreaker),
			"hedge_fraction":     q.Fraction(metrics.StartHedge),
			"faults": map[string]int{
				"transform_fallbacks":    col.Faults.TransformFallbacks,
				"load_retries":           col.Faults.LoadRetries,
				"crashes":                col.Faults.Crashes,
				"outages":                col.Faults.Outages,
				"retries":                col.Faults.Retries,
				"dropped":                col.Faults.Dropped,
				"hangs":                  col.Faults.Hangs,
				"watchdog_cancels":       col.Faults.WatchdogCancels,
				"breaker_short_circuits": col.Faults.BreakerShortCircuits,
				"slow_windows":           col.Faults.SlowWindows,
				"flaky_windows":          col.Faults.FlakyWindows,
				"flaky_fallbacks":        col.Faults.FlakyFallbacks,
				"bandwidth_windows":      col.Faults.BandwidthWindows,
				"hedged_transforms":      col.Faults.HedgedTransforms,
				"hedge_wins":             col.Faults.HedgeWins,
				"backoff_retries":        col.Faults.BackoffRetries,
			},
		}
	})
	out["shed"] = g.shed.Load()
	out["panics_recovered"] = g.panics.Load()
	out["supervisor"] = g.supervisorStats()
	out["planning"] = g.planningStats()
	writeJSON(w, http.StatusOK, out)
}

// planningStats summarizes the offline-planning pipeline for /api/stats:
// pipeline progress (readiness), singleflight dedup counters, plan-cache
// occupancy and per-pair planning-time percentiles.
func (g *Gateway) planningStats() map[string]any {
	st := g.pre.Stats()
	ct := g.online.Env().Plans.Counters()
	pt := g.online.Env().Plans.PlanTimes()
	hitRatio := 0.0
	if ct.Hits+ct.Misses > 0 {
		hitRatio = float64(ct.Hits) / float64(ct.Hits+ct.Misses)
	}
	return map[string]any{
		"workers":    st.Workers,
		"enqueued":   st.Enqueued,
		"completed":  st.Completed,
		"pending":    st.Pending,
		"peak_queue": st.PeakQueue,
		"ready":      st.Pending == 0,
		"cache": map[string]any{
			"size":      ct.Size,
			"limit":     ct.Limit,
			"hits":      ct.Hits,
			"misses":    ct.Misses,
			"hit_ratio": hitRatio,
			"planned":   ct.Planned,
			"deduped":   ct.Deduped,
			"evictions": ct.Evictions,
		},
		"plan_time": map[string]any{
			"count":    ct.Planned,
			"total_ms": msF(pt.Total),
			"max_ms":   msF(pt.Max),
			"p50_ms":   msF(pt.P50),
			"p95_ms":   msF(pt.P95),
			"p99_ms":   msF(pt.P99),
		},
	}
}

// supervisorStats summarizes the recovery layer for /api/stats: breaker
// transitions and open pairs, watchdog activity, and checkpoint/restore
// counters.
func (g *Gateway) supervisorStats() map[string]any {
	out := map[string]any{}
	if b := g.online.Breaker(); b != nil {
		st := b.Stats()
		out["breaker"] = map[string]any{
			"opens":          st.Opens,
			"reopens":        st.Reopens,
			"closes":         st.Closes,
			"short_circuits": st.ShortCircuits,
			"probes":         st.Probes,
			"open_pairs":     b.OpenPairs(),
		}
	}
	if wd := g.online.Watchdog(); wd != nil {
		st := wd.Stats()
		out["watchdog"] = map[string]any{
			"cancelled":        st.Cancelled,
			"leases_issued":    st.LeasesIssued,
			"leases_completed": st.LeasesCompleted,
			"leases_expired":   st.LeasesExpired,
			"leases_active":    wd.Active(),
		}
	}
	g.online.ReadHealth(func(tr *health.Tracker) {
		if tr == nil {
			return
		}
		now := g.now()
		sum := tr.Summarize()
		nodes := map[string]string{}
		for _, ns := range tr.Export() {
			nodes[strconv.Itoa(ns.Node)] = tr.State(ns.Node, now).String()
		}
		out["health"] = map[string]any{
			"episodes":    sum.Episodes,
			"mttr_ms":     sum.MTTRMS,
			"suspects":    sum.Suspects,
			"quarantines": sum.Quarantines,
			"drains":      sum.Drains,
			"recoveries":  sum.Recoveries,
			"clears":      sum.Clears,
			"nodes":       nodes,
		}
	})
	if g.ckptPath != "" {
		g.mu.Lock()
		restoredModels, restoredRecords := g.restoredModels, g.restoredRecords
		quarantined := append([]string(nil), g.quarantined...)
		g.mu.Unlock()
		out["checkpoint"] = map[string]any{
			"saves":            g.ckptSaves.Load(),
			"save_failures":    g.ckptFailures.Load(),
			"restored_models":  restoredModels,
			"restored_records": restoredRecords,
			"quarantined":      quarantined,
		}
	}
	return out
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// PlanSummary is exported for reuse by command-line tools.
func PlanSummary(p *metaop.Plan) string {
	counts := p.CountByKind()
	parts := make([]string, 0, len(counts))
	for _, k := range metaop.Kinds() {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", k, counts[k]))
		}
	}
	mode := "transform"
	if p.LoadFromScratch {
		mode = "safeguard: load from scratch"
	}
	return fmt.Sprintf("%s→%s [%s] est %v (scratch %v): %s",
		p.SrcName, p.DstName, mode, p.EstCost, p.ScratchCost, strings.Join(parts, " "))
}
