// Quickstart: plan and execute an inter-function model transformation, then
// serve a small workload through an Optimus cluster.
package main

import (
	"fmt"
	"time"

	optimus "repro"
)

func main() {
	// --- The transformation core ------------------------------------------
	img := optimus.Imgclsmob()
	src := img.MustGet("resnet50-imagenet")
	dst := img.MustGet("resnet101-imagenet")

	tf := optimus.NewTransformer(optimus.CPU, optimus.AlgoGroup)
	plan := tf.Plan(src, dst)
	fmt.Printf("plan %s → %s: %d steps, est %v (loading from scratch would take %v)\n",
		src.Name, dst.Name, len(plan.Steps), plan.EstCost, plan.ScratchCost)

	got, took, err := tf.Transform(src, dst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("transformed in %v; result verified identical to %s (%d ops)\n\n",
		took, dst.Name, got.NumOps())

	// --- A small serverless cluster ---------------------------------------
	sys := optimus.NewSystem(optimus.SystemConfig{
		Nodes:             2,
		ContainersPerNode: 2,
		Policy:            optimus.PolicyOptimus,
		VerifyTransforms:  true,
	})
	for _, n := range []string{"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "vgg16-imagenet"} {
		sys.MustRegister(n, img.MustGet(n))
	}
	trace := optimus.MixedPoissonTrace(sys.Functions(), 12*time.Hour, 42)
	rep, err := sys.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Println("optimus :", rep.Summary())

	// The OpenWhisk baseline on the same trace, for contrast.
	base := optimus.NewSystem(optimus.SystemConfig{
		Nodes: 2, ContainersPerNode: 2, Policy: optimus.PolicyOpenWhisk,
	})
	for _, n := range sys.Functions() {
		base.MustRegister(n, img.MustGet(n))
	}
	brep, err := base.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Println("baseline:", brep.Summary())
	red := 1 - float64(rep.MeanLatency())/float64(brep.MeanLatency())
	fmt.Printf("optimus reduces mean service time by %.1f%% (%d transformations verified)\n",
		100*red, rep.Verified)
}
