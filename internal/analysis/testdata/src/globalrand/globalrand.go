// Package globalrand is the fixture for the globalrand checker: package-
// level math/rand functions draw from the shared runtime-seeded source and
// must be reported; threading a seeded *rand.Rand must stay silent.
package globalrand

import "math/rand"

func bad(xs []int) int {
	x := rand.Intn(10)                     // want `package-level rand\.Intn`
	rand.Shuffle(len(xs), func(i, j int) { // want `package-level rand\.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
	return x + int(rand.Int63()) // want `package-level rand\.Int63`
}

func badFloat() float64 {
	return rand.Float64() // want `package-level rand\.Float64`
}

func good(seed int64, xs []int) int {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return r.Intn(10)
}
