package analysis

import (
	"path/filepath"
	"testing"
)

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, rel string
		want     bool
	}{
		{"./...", "", true},
		{"./...", "internal/simulate", true},
		{".", "", true},
		{".", "internal/simulate", false},
		{"./internal/...", "internal", true},
		{"./internal/...", "internal/simulate", true},
		{"./internal/...", "cmd/optimus-sim", false},
		{"./internal/simulate", "internal/simulate", true},
		{"./internal/simulate", "internal/simulate/sub", false},
		{"internal/simulate", "internal/simulate", true},
	}
	for _, c := range cases {
		if got := matchPattern(c.pat, c.rel); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.rel, got, c.want)
		}
	}
}

func TestTrailsCode(t *testing.T) {
	src := []byte("x := 1 // trailing\n\t// standalone\n")
	if !trailsCode(src, 7) {
		t.Error("comment after code not detected as trailing")
	}
	standalone := 20 // offset of the second comment's slash
	if trailsCode(src, standalone) {
		t.Error("indented standalone comment misdetected as trailing")
	}
}

func TestSplitWantPatterns(t *testing.T) {
	got, err := splitWantPatterns("\"first\" `second`")
	if err != nil || len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("splitWantPatterns = %v, %v", got, err)
	}
	if _, err := splitWantPatterns("unquoted"); err == nil {
		t.Error("unquoted want payload accepted")
	}
	if _, err := splitWantPatterns("\"open"); err == nil {
		t.Error("unterminated quote accepted")
	}
}

func TestFindModule(t *testing.T) {
	root, mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if mod != "repro" {
		t.Errorf("module path = %q, want repro", mod)
	}
	if filepath.Base(filepath.Dir(filepath.Dir(root))) == "" {
		t.Errorf("implausible module root %q", root)
	}
}
