package experiments

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// Recovery experiment: sweep the transform-failure intensity and compare an
// unsupervised cluster against one running the full supervision layer
// (watchdog + per-pair circuit breaker). At intensity r, transforms abort
// with probability r and hang with probability r/2; the supervised run
// cancels hangs at 2× the planned cost and opens a pair's breaker after 3
// consecutive failures. Deterministic given the seed.

// RecoveryPoint is one fault-intensity measurement for one configuration.
type RecoveryPoint struct {
	// Rate is the injected transform-abort probability (hangs at Rate/2).
	Rate float64
	// Supervised marks the watchdog+breaker configuration.
	Supervised bool
	Served     int
	Mean, P99  time.Duration
	// Transform, Fallback, Timeout and Breaker are start-kind shares.
	Transform, Fallback, Timeout, Breaker float64
	// Faults tallies the injected failures and recoveries.
	Faults metrics.FaultStats
	// BreakerStats summarizes breaker transitions (supervised runs only).
	BreakerStats supervisor.BreakerStats
}

// RecoveryResult pairs the base and supervised degradation curves.
type RecoveryResult struct {
	Points []RecoveryPoint
}

// Recovery runs the supervision sweep under the Optimus policy (default
// rates 0, 0.1, 0.2, 0.4) over a shared Poisson workload.
func Recovery(o Options, rates []float64, horizon time.Duration) RecoveryResult {
	o = o.withDefaults()
	if len(rates) == 0 {
		rates = []float64{0, 0.1, 0.2, 0.4}
	}
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	if o.Quick && horizon > 6*time.Hour {
		horizon = 6 * time.Hour
	}
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, horizon, o.Seed)

	var res RecoveryResult
	for _, r := range rates {
		for _, supervised := range []bool{false, true} {
			cfg := simulate.Config{
				Policy:            policy.Optimus{},
				Nodes:             4,
				ContainersPerNode: 4,
				Profile:           o.Profile,
				Seed:              o.Seed,
				Faults: faults.Rates{
					Transform: r,
					Hang:      r / 2,
				},
			}
			if supervised {
				cfg.WatchdogFactor = 2
				cfg.Breaker = supervisor.BreakerConfig{Threshold: 3, Cooldown: 10 * time.Minute}
			}
			sim := simulate.New(cfg, fns)
			col, err := sim.Run(tr)
			if err != nil {
				panic(err)
			}
			fr := col.KindFractions()
			res.Points = append(res.Points, RecoveryPoint{
				Rate:         r,
				Supervised:   supervised,
				Served:       col.Len(),
				Mean:         col.MeanLatency(),
				P99:          col.Percentile(99),
				Transform:    fr[metrics.StartTransform],
				Fallback:     fr[metrics.StartFallback],
				Timeout:      fr[metrics.StartTimeout],
				Breaker:      fr[metrics.StartBreaker],
				Faults:       col.Faults,
				BreakerStats: sim.Breaker().Stats(),
			})
		}
	}
	return res
}

// Render prints the paired degradation curves.
func (r RecoveryResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		mode := "base"
		if p.Supervised {
			mode = "supervised"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Rate),
			mode,
			fmt.Sprint(p.Served),
			ms(p.Mean), ms(p.P99),
			pct(p.Transform), pct(p.Fallback), pct(p.Timeout), pct(p.Breaker),
			fmt.Sprint(p.Faults.Hangs),
			fmt.Sprint(p.Faults.WatchdogCancels),
			fmt.Sprint(p.BreakerStats.Opens),
		})
	}
	return "Extension: supervised recovery sweep (transform aborts at rate, hangs at rate/2; supervised = watchdog 2x + breaker N=3)\n" +
		table([]string{"rate", "mode", "served", "mean(ms)", "p99(ms)", "transform", "fallback", "timeout", "breaker", "hangs", "wd-cancel", "opens"}, rows)
}
