package simulate

// Whitebox oracle-divergence tests: corrupt one partition worker's window
// results (or the shared cluster state it just produced) through the
// windowCorruptHook seam and assert the CrossCheckWindows serial oracle
// catches the divergence loudly instead of letting it merge silently.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/internal/zoo"
)

// winTestPolicy is a minimal warm-or-cold policy so the corruption tests run
// without importing the policy package (which imports simulate).
type winTestPolicy struct{}

func (winTestPolicy) Name() string { return "win-test" }

func (winTestPolicy) Serve(env *Env, n *Node, fn *Function, now time.Duration) (Decision, bool) {
	if c := n.WarmIdle(fn, now); c != nil {
		return Decision{Kind: metrics.StartWarm, Reuse: c}, true
	}
	if !n.CanPlace(now) {
		return Decision{}, false
	}
	return Decision{
		Kind: metrics.StartCold,
		Init: env.Profile.SandboxInit,
		Load: env.Profile.ModelLoad(fn.Model).Total(),
	}, true
}

// windowTestFixture builds four functions split across two node pairs with
// steady traffic, a placement the windowed engine parallelizes.
func windowTestFixture(t *testing.T) (Config, []*Function, map[string]float64) {
	t.Helper()
	g, err := zoo.Imgclsmob().Get("resnet18-imagenet")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"win-a", "win-b", "win-c", "win-d"}
	fns := make([]*Function, len(names))
	rates := map[string]float64{}
	placement := map[string][]int{}
	for i, n := range names {
		fns[i] = &Function{Name: n, Model: g}
		rates[n] = 0.05
		if i < 2 {
			placement[n] = []int{0, 1}
		} else {
			placement[n] = []int{2, 3}
		}
	}
	cfg := Config{
		Policy: winTestPolicy{}, Nodes: 4, ContainersPerNode: 3,
		Placement: placement, Seed: 3,
		CrossCheckWindows: true,
	}
	return cfg, fns, rates
}

// expectDivergencePanic runs a windowed replay and requires the oracle panic.
func expectDivergencePanic(t *testing.T, cfg Config, fns []*Function, rates map[string]float64) {
	t.Helper()
	dur := 2 * time.Hour
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted window state merged silently: the cross-check oracle never fired")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "windowed replay divergence") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_, _, _ = RunWindowed(cfg, fns, workload.StreamPoissonRates(rates, dur, 11), dur, 16, 4)
}

// TestWindowCorruptRecordCaught flips one bit of one partition's record
// output; the very next multiset comparison must panic.
func TestWindowCorruptRecordCaught(t *testing.T) {
	cfg, fns, rates := windowTestFixture(t)
	corrupted := false
	windowCorruptHook = func(window, group int, w *Simulator) {
		if corrupted {
			return
		}
		if recs := w.collector.Records(); len(recs) > 0 {
			recs[0].Wait += time.Nanosecond
			corrupted = true
		}
	}
	defer func() { windowCorruptHook = nil }()
	expectDivergencePanic(t, cfg, fns, rates)
	if !corrupted {
		t.Fatal("hook never found a record to corrupt")
	}
}

// TestWindowCorruptStateCaught corrupts shared cluster state instead of
// records — every container on the corrupting worker's view is pinned busy
// for an extra virtual hour, so later windows route differently than the
// oracle. The divergence surfaces windows later; it must still panic.
func TestWindowCorruptStateCaught(t *testing.T) {
	cfg, fns, rates := windowTestFixture(t)
	corrupted := false
	windowCorruptHook = func(window, group int, w *Simulator) {
		if corrupted || group != 0 {
			return
		}
		for _, n := range w.nodes {
			for _, c := range n.Containers {
				c.BusyUntil += time.Hour
				corrupted = true
			}
		}
	}
	defer func() { windowCorruptHook = nil }()
	expectDivergencePanic(t, cfg, fns, rates)
	if !corrupted {
		t.Fatal("hook never found a container to corrupt")
	}
}
