package checkers

import (
	"strings"

	"repro/internal/analysis"
)

// Timeprop closes the helper-laundering hole in the wallclock checker.
// Wallclock bans direct time.Now/Since/Sleep references inside
// virtual-time packages, but a helper in a real-time package that reads
// the wall clock smuggles the same nondeterminism in through a single
// clean-looking call. Timeprop computes the transitive wall-clock taint
// over the whole call graph — a function is tainted when any call it can
// make reaches a banned time function — and reports every call from a
// virtual-time package into a tainted module function outside the virtual
// set. Direct time.* references stay wallclock's domain (and calls between
// virtual packages stay internal to wallclock's per-site auditing), so the
// two checkers never double-report one site.
type Timeprop struct {
	// Virtual lists the import paths whose subtrees run on virtual time.
	Virtual []string

	memo map[*analysis.CallGraph]map[*analysis.CallNode]*analysis.CallNode
}

// DefaultTimeprop returns the checker bound to the project's virtual-time
// package list (shared with the wallclock checker).
func DefaultTimeprop() *Timeprop { return NewTimeprop(defaultVirtualPackages) }

// NewTimeprop returns the checker bound to an explicit package list (used
// by fixture tests).
func NewTimeprop(virtual []string) *Timeprop {
	return &Timeprop{
		Virtual: virtual,
		memo:    make(map[*analysis.CallGraph]map[*analysis.CallNode]*analysis.CallNode),
	}
}

// Name implements analysis.Checker.
func (c *Timeprop) Name() string { return "timeprop" }

// Doc implements analysis.Checker.
func (c *Timeprop) Doc() string {
	return "bans calls from virtual-time packages into functions that transitively reach the wall clock"
}

// Run implements analysis.Checker.
func (c *Timeprop) Run(p *analysis.Pass) {
	if p.CallGraph == nil || !hasPkg(c.Virtual, p.Path) {
		return
	}
	next := c.taint(p.CallGraph)
	for _, node := range p.CallGraph.Nodes() {
		if node.Decl == nil || node.Path != p.Path {
			continue
		}
		for _, site := range node.Out {
			callee := site.Callee
			if callee.Decl == nil || hasPkg(c.Virtual, callee.Path) {
				continue
			}
			if _, tainted := next[callee]; !tainted {
				continue
			}
			chain, banned := taintChain(next, callee)
			p.Reportf(c.Name(), site.Pos(),
				"call into %s reaches time.%s (%s) from virtual-time package %s: plumb the virtual clock instead",
				funcDisplay(callee.Func), banned, chain, p.Path)
		}
	}
}

// taint computes, once per call graph, the wall-clock taint as a
// next-hop-towards-the-clock map: node → the callee through which its
// shortest taint chain runs. Banned time externals seed the reverse BFS;
// module functions become tainted through any call edge (go and defer
// included — the clock read still happens — and literal calls included,
// since the closure may run).
func (c *Timeprop) taint(g *analysis.CallGraph) map[*analysis.CallNode]*analysis.CallNode {
	if next, ok := c.memo[g]; ok {
		return next
	}
	next := make(map[*analysis.CallNode]*analysis.CallNode)
	var queue []*analysis.CallNode
	for _, node := range g.Nodes() {
		if node.Decl == nil && node.Path == "time" && wallclockBanned[node.Func.Name()] {
			next[node] = nil
			queue = append(queue, node)
		}
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, site := range node.In {
			caller := site.Caller
			if _, seen := next[caller]; seen {
				continue
			}
			next[caller] = node
			queue = append(queue, caller)
		}
	}
	c.memo[g] = next
	return next
}

// taintChain renders the shortest chain from node to the banned time
// function it reaches, returning the rendered chain and the time function
// name.
func taintChain(next map[*analysis.CallNode]*analysis.CallNode, node *analysis.CallNode) (chain, banned string) {
	var parts []string
	cur := node
	for cur != nil {
		if cur.Path == "time" {
			parts = append(parts, "time."+cur.Func.Name())
			return strings.Join(parts, " → "), cur.Func.Name()
		}
		parts = append(parts, funcDisplay(cur.Func))
		cur = next[cur]
	}
	return strings.Join(parts, " → "), "?"
}
