// Fan-out wave planning: the shape of a multicast transform tree in which
// every completed recipient immediately becomes a donor for the next wave
// (λScale-style fast model scaling). The planner only computes the ideal
// fault-free schedule shape; package fanout executes it against the live
// cluster and absorbs donor crashes, corrupt outputs and degraded nodes.
package planner

import "time"

// FanoutWaves returns the per-wave child counts of the ideal fan-out tree
// that warms n new replicas starting from the given seed donors, where every
// donor streams to at most bandwidth children per wave and every completed
// child donates from the next wave on. Donor capacity therefore grows
// (1+bandwidth)× per wave, so the schedule has O(log n) waves instead of the
// n/(seeds·bandwidth) rounds of independent transforms. The returned slice
// has one entry per wave; entries sum to n. It is empty when n ≤ 0 and nil
// when there are no donors to start from.
func FanoutWaves(n, seeds, bandwidth int) []int {
	if seeds <= 0 || bandwidth <= 0 {
		return nil
	}
	waves := []int{}
	donors := seeds
	for n > 0 {
		k := donors * bandwidth
		if k > n {
			k = n
		}
		waves = append(waves, k)
		donors += k
		n -= k
	}
	return waves
}

// FanoutDepth returns the number of waves of the ideal schedule.
func FanoutDepth(n, seeds, bandwidth int) int {
	return len(FanoutWaves(n, seeds, bandwidth))
}

// FanoutMakespan estimates the fault-free completion time of the ideal
// schedule when every child costs structDur (recipient-local structure load)
// plus weightsDur (donor-occupying weights assignment). Structure loads are
// pipelined: wave w+1 recipients load structure while wave w donors stream
// weights, so only the first wave pays structDur on the critical path.
func FanoutMakespan(n, seeds, bandwidth int, structDur, weightsDur time.Duration) time.Duration {
	depth := FanoutDepth(n, seeds, bandwidth)
	if depth == 0 {
		return 0
	}
	return structDur + time.Duration(depth)*weightsDur
}

// IndependentMakespan estimates the completion time of the baseline schedule
// in which only the seed donors ever donate: n children are streamed in
// ceil(n/(seeds·bandwidth)) sequential rounds, with the same one-time
// pipelined structure load up front.
func IndependentMakespan(n, seeds, bandwidth int, structDur, weightsDur time.Duration) time.Duration {
	if n <= 0 || seeds <= 0 || bandwidth <= 0 {
		return 0
	}
	rounds := (n + seeds*bandwidth - 1) / (seeds * bandwidth)
	return structDur + time.Duration(rounds)*weightsDur
}
