package simulate_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// shardedNames covers eight functions split 4/4 across two disjoint node
// groups by the placement below.
var shardedNames = []string{
	"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "vgg16-imagenet",
	"vgg19-imagenet", "densenet121-imagenet", "densenet169-imagenet", "mobilenet-w1-imagenet",
}

// shardedPlacement maps the first four functions onto nodes {0,1} and the
// rest onto nodes {2,3}: two independent groups.
func shardedPlacement() map[string][]int {
	out := map[string][]int{}
	for i, n := range shardedNames {
		if i < 4 {
			out[n] = []int{0, 1}
		} else {
			out[n] = []int{2, 3}
		}
	}
	return out
}

func shardedConfig(algo planner.Algorithm) simulate.Config {
	return simulate.Config{
		Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 3,
		Placement:   shardedPlacement(),
		PlannerAlgo: algo,
		Seed:        11,
	}
}

// tinyFunctions builds functions over small chain models that stay within
// the brute-force planner's factorial limit (the zoo models are far too
// large for it). Names reuse shardedNames so shardedPlacement applies.
func tinyFunctions() []*simulate.Function {
	out := make([]*simulate.Function, len(shardedNames))
	for i, name := range shardedNames {
		b := model.NewBuilder(name, "tiny", "t")
		// Vary depth and widths so different pairs transform differently.
		b.Conv("c1", 3, 8, 8+i, 1)
		b.ReLU("r1", 8+i)
		if i%2 == 0 {
			b.Conv("c2", 1, 8+i, 8, 1)
		}
		out[i] = &simulate.Function{Name: name, Model: b.Graph()}
	}
	return out
}

// TestShardDeterminism is the shard-merge equivalence proof: for a fixed
// seed, across all three planner algorithms, the sharded replay's kind
// fractions, mean latency, percentiles, and fault counters are byte-identical
// to the serial replay's. Run with -race: it also exercises the concurrent
// sub-simulators.
func TestShardDeterminism(t *testing.T) {
	zooFns := testFunctions(t, shardedNames...)
	tr := workload.MixedPoisson(shardedNames, 12*time.Hour, 23)
	for _, algo := range []planner.Algorithm{planner.AlgoGroup, planner.AlgoHungarian, planner.AlgoBrute} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			fns := zooFns
			if algo == planner.AlgoBrute {
				fns = tinyFunctions() // brute needs tiny cost matrices
			}
			cfg := shardedConfig(algo)
			serial, err := simulate.New(cfg, fns).Run(tr)
			if err != nil {
				t.Fatal(err)
			}
			merged, rep, err := simulate.RunSharded(cfg, fns, tr, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sharded() {
				t.Fatalf("expected sharded run, got serial: %q", rep.SerialReason)
			}
			if rep.Shards != 2 {
				t.Fatalf("expected 2 shards, got %d", rep.Shards)
			}
			if merged.Len() != serial.Len() {
				t.Fatalf("record counts: sharded %d, serial %d", merged.Len(), serial.Len())
			}
			if merged.Faults != serial.Faults {
				t.Errorf("fault stats: sharded %+v, serial %+v", merged.Faults, serial.Faults)
			}
			sk, mk := serial.KindFractions(), merged.KindFractions()
			for k, v := range sk {
				if mk[k] != v { // exact float equality: same counts, same total
					t.Errorf("kind %v fraction: sharded %v, serial %v", k, mk[k], v)
				}
			}
			if got, want := merged.MeanLatency(), serial.MeanLatency(); got != want {
				t.Errorf("mean latency: sharded %v, serial %v", got, want)
			}
			for _, p := range []float64{50, 90, 95, 99, 100} {
				if got, want := merged.Percentile(p), serial.Percentile(p); got != want {
					t.Errorf("P%v: sharded %v, serial %v", p, got, want)
				}
			}
			// The multiset of records matches exactly: compare per-function
			// record slices (within one function, arrival order is total).
			sp, mp := serial.PerFunction(), merged.PerFunction()
			for name, sc := range sp {
				mc, ok := mp[name]
				if !ok || mc.Len() != sc.Len() {
					t.Fatalf("%s: record count mismatch", name)
				}
				for i, r := range sc.Records() {
					if mc.Records()[i] != r {
						t.Fatalf("%s record %d: sharded %+v, serial %+v", name, i, mc.Records()[i], r)
					}
				}
			}
		})
	}
}

// TestShardDeterminismRepeatable pins run-to-run stability of the sharded
// path itself: two sharded replays with the same seed are identical
// record-for-record regardless of goroutine scheduling.
func TestShardDeterminismRepeatable(t *testing.T) {
	fns := testFunctions(t, shardedNames...)
	tr := workload.MixedPoisson(shardedNames, 6*time.Hour, 77)
	cfg := shardedConfig(planner.AlgoGroup)
	a, _, err := simulate.RunSharded(cfg, fns, tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := simulate.RunSharded(cfg, fns, tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Records(), b.Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs across worker counts:\n%+v\n%+v", i, ra[i], rb[i])
		}
	}
}

// TestShardSerialFallbacks verifies every coupling that makes sharding unsafe
// is detected and reported, and that the fallback still produces a full run.
func TestShardSerialFallbacks(t *testing.T) {
	fns := testFunctions(t, shardedNames[:4]...)
	tr := workload.MixedPoisson(shardedNames[:4], time.Hour, 5)
	cases := []struct {
		name   string
		mut    func(*simulate.Config)
		reason string
	}{
		{"no placement", func(c *simulate.Config) { c.Placement = nil }, "no placement"},
		{"faults", func(c *simulate.Config) { c.Faults = faults.Rates{Crash: 0.1} }, "random stream"},
		{"legacy fault rate", func(c *simulate.Config) { c.TransformFailureRate = 0.1 }, "random stream"},
		{"online profiling", func(c *simulate.Config) { c.OnlineProfiling = 0.2 }, "online profiling"},
		{"single group", func(c *simulate.Config) {
			c.Placement = map[string][]int{shardedNames[0]: {0, 1}, shardedNames[1]: {1, 2}, shardedNames[2]: {2, 3}}
		}, "single node group"},
		{"overlapping via unplaced fn", func(c *simulate.Config) {
			delete(c.Placement, shardedNames[0]) // spans all nodes
		}, "single node group"},
		{"one worker", nil, "workers=1"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := simulate.Config{
				Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 3,
				Placement: map[string][]int{
					shardedNames[0]: {0, 1}, shardedNames[1]: {0, 1},
					shardedNames[2]: {2, 3}, shardedNames[3]: {2, 3},
				},
			}
			workers := 4
			if tc.mut != nil {
				tc.mut(&cfg)
			} else {
				workers = 1
			}
			col, rep, err := simulate.RunSharded(cfg, fns, tr, workers)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Sharded() {
				t.Fatalf("expected serial fallback, ran %d shards", rep.Shards)
			}
			if !strings.Contains(rep.SerialReason, tc.reason) {
				t.Errorf("reason %q does not mention %q", rep.SerialReason, tc.reason)
			}
			if col.Len() == 0 {
				t.Error("fallback run produced no records")
			}
		})
	}
}

// TestShardFourWay exercises more shards than workers (bounded pool) and an
// uneven function-to-group spread.
func TestShardFourWay(t *testing.T) {
	fns := testFunctions(t, shardedNames...)
	placement := map[string][]int{}
	for i, n := range shardedNames {
		placement[n] = []int{i % 4} // 4 single-node groups, 2 fns each
	}
	cfg := simulate.Config{
		Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 3,
		Placement: placement, Seed: 3,
	}
	tr := workload.MixedPoisson(shardedNames, 6*time.Hour, 31)
	serial, err := simulate.New(cfg, fns).Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	merged, rep, err := simulate.RunSharded(cfg, fns, tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 4 || rep.Workers != 2 {
		t.Fatalf("expected 4 shards on 2 workers, got %d on %d", rep.Shards, rep.Workers)
	}
	if merged.Len() != serial.Len() || merged.MeanLatency() != serial.MeanLatency() {
		t.Fatalf("sharded (n=%d mean=%v) != serial (n=%d mean=%v)",
			merged.Len(), merged.MeanLatency(), serial.Len(), serial.MeanLatency())
	}
	if math.Abs(float64(merged.Percentile(99)-serial.Percentile(99))) > 0 {
		t.Fatalf("P99 diverges")
	}
}

// TestShardVerifyTransformsCounter checks transform counters aggregate across
// sub-simulators.
func TestShardVerifyTransformsCounter(t *testing.T) {
	fns := testFunctions(t, shardedNames...)
	cfg := shardedConfig(planner.AlgoGroup)
	cfg.VerifyTransforms = true
	tr := workload.MixedPoisson(shardedNames, 4*time.Hour, 19)
	serialSim := simulate.New(cfg, fns)
	if _, err := serialSim.Run(tr); err != nil {
		t.Fatal(err)
	}
	_, rep, err := simulate.RunSharded(cfg, fns, tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformsVerified != serialSim.TransformsVerified {
		t.Errorf("verified transforms: sharded %d, serial %d", rep.TransformsVerified, serialSim.TransformsVerified)
	}
	if serialSim.TransformsVerified == 0 {
		t.Skip("workload produced no transforms to verify")
	}
}
