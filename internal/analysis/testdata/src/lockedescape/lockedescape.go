// Package lockedescape is the fixture for the lockedescape checker:
// mutex-holding methods returning guarded reference-typed fields must be
// reported; deep copies, value results, and lock-free accessors must stay
// silent.
package lockedescape

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int
	order []string
	meta  *int
}

func (r *registry) Items() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items // want `returns guarded map field "items"`
}

func (r *registry) Order() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order // want `returns guarded slice field "order"`
}

func (r *registry) Meta() *int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.meta // want `returns guarded pointer field "meta"`
}

func (r *registry) OrderAddr() *[]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &r.order // want `returns address of guarded field "order"`
}

func (r *registry) ItemsCopy() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.items))
	for k, v := range r.items {
		out[k] = v
	}
	return out
}

func (r *registry) OrderCopy() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

func (r *registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// RawItems takes no lock: single-goroutine accessors are out of scope.
func (r *registry) RawItems() map[string]int { return r.items }

type embedded struct {
	sync.Mutex
	vals []int
}

func (e *embedded) Vals() []int {
	e.Lock()
	defer e.Unlock()
	return e.vals // want `returns guarded slice field "vals"`
}

func (e *embedded) ValsCopy() []int {
	e.Lock()
	defer e.Unlock()
	return append([]int(nil), e.vals...)
}
