package planner

import (
	"testing"
	"time"
)

func TestFanoutWavesShape(t *testing.T) {
	cases := []struct {
		n, seeds, bw int
		want         []int
	}{
		{0, 1, 2, []int{}},
		{-3, 1, 2, []int{}},
		{16, 1, 1, []int{1, 2, 4, 8, 1}}, // doubling donors
		{16, 1, 2, []int{2, 6, 8}},
		{16, 4, 2, []int{8, 8}},
		{5, 2, 2, []int{4, 1}},
		{1, 1, 8, []int{1}},
	}
	for _, c := range cases {
		got := FanoutWaves(c.n, c.seeds, c.bw)
		if len(got) != len(c.want) {
			t.Fatalf("FanoutWaves(%d,%d,%d) = %v, want %v", c.n, c.seeds, c.bw, got, c.want)
		}
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("FanoutWaves(%d,%d,%d) = %v, want %v", c.n, c.seeds, c.bw, got, c.want)
			}
			sum += got[i]
		}
		if c.n > 0 && sum != c.n {
			t.Fatalf("FanoutWaves(%d,%d,%d) sums to %d", c.n, c.seeds, c.bw, sum)
		}
	}
	if FanoutWaves(4, 0, 2) != nil || FanoutWaves(4, 1, 0) != nil {
		t.Fatal("no donors or no bandwidth should yield a nil schedule")
	}
}

func TestFanoutMakespanBeatsIndependent(t *testing.T) {
	const structDur, weightsDur = 100 * time.Millisecond, 400 * time.Millisecond
	tree := FanoutMakespan(16, 1, 2, structDur, weightsDur)
	indep := IndependentMakespan(16, 1, 2, structDur, weightsDur)
	if tree >= indep {
		t.Fatalf("tree makespan %v should beat independent %v for 16 replicas", tree, indep)
	}
	// Depth 3 for n=16, seeds=1, bw=2 (2+6+8): one structure load plus three
	// pipelined weight waves.
	if want := structDur + 3*weightsDur; tree != want {
		t.Fatalf("tree makespan = %v, want %v", tree, want)
	}
	if want := structDur + 8*weightsDur; indep != want {
		t.Fatalf("independent makespan = %v, want %v", indep, want)
	}
}
