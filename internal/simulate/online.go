package simulate

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/supervisor"
)

// ErrRequestDropped marks a request abandoned after exhausting its
// crash-retry budget; callers can map it to a retryable service error.
var ErrRequestDropped = errors.New("request dropped after repeated crashes")

// Online serves invocations one at a time against live cluster state, for
// interactive use (the REST gateway) as opposed to trace replay. Callers
// supply a monotonically non-decreasing `now`; Online never sleeps — if no
// container is free the request's wait time is computed from the earliest
// completion.
//
// Online is safe for concurrent use.
type Online struct {
	mu  sync.Mutex
	sim *Simulator
}

// NewOnline builds an online server over the given functions.
func NewOnline(cfg Config, fns []*Function) *Online {
	return &Online{sim: New(cfg, fns)}
}

// AddFunction registers a new function at runtime. Registering a name twice
// replaces the model (a redeploy).
func (o *Online) AddFunction(f *Function) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sim.fns[f.Name] = f
}

// RemoveFunction unregisters a function; its containers are left to expire
// through keep-alive.
func (o *Online) RemoveFunction(name string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.sim.fns, name)
}

// Snapshot returns a deep copy of the cluster's node/container state at
// `now`: callers may read it freely while Invoke keeps mutating the live
// cluster under the lock.
func (o *Online) Snapshot(now time.Duration) []*Node {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Node, len(o.sim.nodes))
	for i, n := range o.sim.nodes {
		cp := &Node{ID: n.ID, Capacity: n.Capacity, MemoryMB: n.MemoryMB, DownUntil: n.DownUntil}
		cp.Containers = make([]*Container, len(n.Containers))
		for j, c := range n.Containers {
			cc := *c
			cc.serving, cc.hasServing = inflight{}, false
			cc.idxState = idxNone
			cp.Containers[j] = &cc
		}
		out[i] = cp
	}
	return out
}

// Functions returns the registered function names, sorted: callers fan the
// list into reports and API responses, and map-iteration order would leak
// per-run nondeterminism into them.
func (o *Online) Functions() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.sim.fns))
	for n := range o.sim.fns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Function returns a registered function by name.
func (o *Online) Function(name string) (*Function, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.sim.fns[name]
	return f, ok
}

// Env exposes the policy environment (planner, plan cache).
func (o *Online) Env() *Env { return o.sim.env }

// Collector returns the accumulated request metrics. The collector is
// mutated by concurrent Invoke calls; readers racing with invocations
// should use ReadCollector instead.
func (o *Online) Collector() *metrics.Collector { return o.sim.Collector() }

// ReadCollector runs f with the collector under the server lock, so
// aggregate reads are consistent with concurrent Invoke calls. f must not
// retain the collector.
func (o *Online) ReadCollector(f func(*metrics.Collector)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f(&o.sim.collector)
}

// Invoke serves one request for the named function arriving at `now`
// (an offset from server start) and returns its record. If every container
// is busy, the request waits for the earliest completion on its routed node.
// Injected faults (package faults) degrade the request: failed transforms
// fall back to a from-scratch load, crashed containers cause bounded
// retries, and a request that exhausts its retry budget returns an error.
func (o *Online) Invoke(name string, now time.Duration) (metrics.Record, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.sim
	fn, ok := s.fns[name]
	if !ok {
		return metrics.Record{}, fmt.Errorf("simulate: unknown function %q", name)
	}
	if now < s.clock {
		now = s.clock // clock is monotone
	}
	s.clock = now
	fr := s.rt(fn)
	s.observeArrival(fr, now)
	if s.inj.Fire(faults.Outage) {
		s.outageOnline(s.route(fn), now)
	}
	if s.inj.Fire(faults.Slow) {
		s.slowNode(s.route(fn))
	}
	node := s.route(fn)

	start := now
	retries := 0
	for {
		if node.Down(start) {
			// Every candidate node is out: wait for the first recovery.
			for _, n := range s.candidates(fn) {
				if n.DownUntil < node.DownUntil {
					node = n
				}
			}
			start = node.DownUntil
		}
		node.EvictExpired(start, s.env.KeepAlive)
		d, ok := s.cfg.Policy.Serve(s.env, node, fn, start)
		if ok {
			d = s.superviseDecision(d, fn, node, start)
			c := d.Reuse
			if c == nil {
				c = node.newContainer(fn, s.env.GrantFor(fn), start)
			} else if s.env.MemoryMode == MemoryFineGrained {
				c.MemMB = s.env.GrantFor(fn)
			}
			c.Fn = fn
			compute := s.computeFor(fr)
			if node.Slow(start) {
				// Inside a gray slow window every component inflates alike,
				// mirroring the trace engine.
				f := s.cfg.SlowFactor
				d.Init = time.Duration(float64(d.Init) * f)
				d.Load = time.Duration(float64(d.Load) * f)
				compute = time.Duration(float64(compute) * f)
			}
			service := d.Init + d.Load + compute
			if s.inj.Fire(faults.Crash) {
				// The container dies mid-request; retry from the crash
				// point on a freshly routed node, or give up once the
				// budget is spent.
				c.dead = true
				node.Remove(c)
				s.collector.Faults.Crashes++
				s.health.ObserveFailure(node.ID, start)
				if retries >= s.cfg.MaxRetries {
					s.collector.Faults.Dropped++
					return metrics.Record{}, fmt.Errorf("simulate: %q failed %d attempts: %w", name, retries+1, ErrRequestDropped)
				}
				s.collector.Faults.Retries++
				if delay := s.backoff.Delay(retries); delay > 0 {
					// The deterministic retry backoff holds the re-dispatch
					// instead of hammering the next node immediately.
					s.collector.Faults.BackoffRetries++
					start += delay
				}
				retries++
				start += service / 2
				node = s.route(fn)
				continue
			}
			s.health.ObserveServed(node.ID, start, service)
			end := start + service
			c.BusyUntil = end
			c.LastDone = end
			rec := metrics.Record{
				Function: fn.Name,
				Kind:     d.Kind,
				Arrival:  now,
				Start:    start,
				End:      end,
				Wait:     start - now,
				Init:     d.Init,
				Load:     d.Load,
				Compute:  compute,
				Retries:  retries,
			}
			s.collector.Add(rec)
			return rec, nil
		}
		// Everything busy: jump to the node's earliest completion.
		next := time.Duration(-1)
		for _, c := range node.Containers {
			if c.BusyUntil > start && (next < 0 || c.BusyUntil < next) {
				next = c.BusyUntil
			}
		}
		if next < 0 {
			return metrics.Record{}, fmt.Errorf("simulate: node %d cannot serve %q", node.ID, name)
		}
		start = next
	}
}

// outageOnline takes a node down in interactive mode: resident containers
// are lost and later invocations route around the node until it recovers.
// Records already returned to callers keep their precomputed latencies.
func (s *Simulator) outageOnline(n *Node, now time.Duration) {
	n.DownUntil = now + s.cfg.OutageDuration
	for _, c := range n.Containers {
		c.dead = true
		c.hasServing = false
		s.watchdog.Expire(c.ID)
	}
	n.Containers = nil
	s.collector.Faults.Outages++
	s.health.ObserveFailure(n.ID, now)
}

// Breaker exposes the transform circuit breaker (nil when disabled).
func (o *Online) Breaker() *supervisor.Breaker { return o.sim.breaker }

// Watchdog exposes the supervision watchdog (nil when disabled).
func (o *Online) Watchdog() *supervisor.Watchdog { return o.sim.watchdog }

// Health exposes the per-node health tracker (nil when disabled). Callers
// racing with Invoke must use ReadHealth instead.
func (o *Online) Health() *health.Tracker { return o.sim.health }

// ReadHealth runs f with the health tracker (possibly nil) under the server
// lock, so state reads are consistent with concurrent Invoke calls. f must
// not retain the tracker.
func (o *Online) ReadHealth(f func(*health.Tracker)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f(o.sim.health)
}
