package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fanout"
)

// TestFanoutSmoke runs the burst experiment once and checks the invariants
// that must hold at any scale: the pipelined tree reaches target warmth
// sooner than the independent baseline, the crash pair re-parents and still
// completes, and the double-run determinism proof passes.
func TestFanoutSmoke(t *testing.T) {
	res := Fanout(Options{Seed: 1}, fanout.Config{})
	if !res.Deterministic {
		t.Error("second same-seed tree-crash run diverged")
	}
	if res.TargetWarm < 16 {
		t.Fatalf("target warm %d below the N>=16 gate", res.TargetWarm)
	}
	for _, run := range []FanoutRun{res.Tree, res.Independent, res.TreeCrash, res.IndependentCrash} {
		if run.Served == 0 {
			t.Errorf("%s run served nothing", run.Mode)
		}
		if run.Stats.Trees != 1 {
			t.Errorf("%s run grew %d trees, want 1", run.Mode, run.Stats.Trees)
		}
	}
	if res.Tree.TimeToWarmMS <= 0 || res.Tree.TimeToWarmMS >= res.Independent.TimeToWarmMS {
		t.Errorf("tree time-to-%d-warm %.1fms not below independent %.1fms",
			res.TargetWarm, res.Tree.TimeToWarmMS, res.Independent.TimeToWarmMS)
	}
	if res.TreeCrash.Stats.DonorCrashes == 0 || res.TreeCrash.Stats.Reparents == 0 {
		t.Errorf("crash run exercised no re-parenting: %+v", res.TreeCrash.Stats)
	}
	if res.TreeCrash.Stats.TreesCompleted != 1 {
		t.Errorf("crashed tree never reached %d warm: %+v", res.TargetWarm, res.TreeCrash.Stats)
	}
	if res.TreeCrash.Goodput < res.IndependentCrash.Goodput {
		t.Errorf("crashed tree goodput %.4f below independent %.4f",
			res.TreeCrash.Goodput, res.IndependentCrash.Goodput)
	}
}

// TestFanoutRunsAreByteIdentical replays the whole experiment twice with the
// same seed and requires the marshaled results to match byte for byte — the
// `optimus-bench fanout` determinism contract.
func TestFanoutRunsAreByteIdentical(t *testing.T) {
	a, err := json.Marshal(Fanout(Options{Seed: 7}, fanout.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Fanout(Options{Seed: 7}, fanout.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("two same-seed fanout runs marshaled differently")
	}
}

// TestFanoutArtifactGuard validates the checked-in BENCH_fanout.json against
// the acceptance gate: (a) time-to-N-warm for N>=16 improves over the
// independent baseline, (b) under donor-crash injection the tree re-parents,
// reaches N warm, and holds goodput at or above the baseline's, and (c) the
// embedded double-run byte-identity proof passed at generation time.
func TestFanoutArtifactGuard(t *testing.T) {
	path := filepath.Join("..", "..", BenchFanoutFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing artifact %s (run `make bench-fanout`): %v", BenchFanoutFile, err)
	}
	var keys map[string]any
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	for _, k := range []string{"seed", "target_warm", "crash_rates", "tree", "independent", "tree_crash", "independent_crash", "deterministic"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("artifact missing key %q", k)
		}
	}
	var res FanoutResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	// (c) determinism proof.
	if !res.Deterministic {
		t.Error("artifact records a nondeterministic tree-crash run")
	}
	if res.TargetWarm < 16 {
		t.Errorf("artifact target warm %d below the N>=16 gate", res.TargetWarm)
	}
	for _, run := range []FanoutRun{res.Tree, res.Independent, res.TreeCrash, res.IndependentCrash} {
		if run.Arrivals == 0 || run.Served == 0 {
			t.Errorf("%s run served nothing", run.Mode)
		}
		if run.Goodput <= 0 || run.Goodput > 1 {
			t.Errorf("%s goodput out of range: %v", run.Mode, run.Goodput)
		}
	}
	// (a) pipelined waves beat independent donation to N warm.
	if res.Tree.Stats.TreesCompleted != 1 || res.Tree.Stats.Recipients < res.TargetWarm {
		t.Errorf("zero-fault tree did not complete %d replicas: %+v", res.TargetWarm, res.Tree.Stats)
	}
	if res.Tree.TimeToWarmMS <= 0 || res.Tree.TimeToWarmMS >= res.Independent.TimeToWarmMS {
		t.Errorf("artifact tree time-to-%d-warm %.1fms not below independent %.1fms",
			res.TargetWarm, res.Tree.TimeToWarmMS, res.Independent.TimeToWarmMS)
	}
	// (b) the crash pair: re-parenting fired, the tree still reached target
	// warmth, and goodput held at or above the independent baseline.
	if res.TreeCrash.Stats.DonorCrashes == 0 {
		t.Error("artifact crash run injected no donor crashes")
	}
	if res.TreeCrash.Stats.Reparents == 0 {
		t.Error("artifact crash run re-parented no orphans")
	}
	if res.TreeCrash.Stats.TreesCompleted != 1 {
		t.Errorf("artifact crashed tree never reached %d warm: %+v", res.TargetWarm, res.TreeCrash.Stats)
	}
	if res.TreeCrash.Goodput < res.IndependentCrash.Goodput {
		t.Errorf("artifact crashed tree goodput %.4f below independent %.4f",
			res.TreeCrash.Goodput, res.IndependentCrash.Goodput)
	}
}
