package simulate

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// This file implements sharded parallel trace replay. When Config.Placement
// partitions the functions into disjoint node groups, requests in one group
// can never observe state touched by another — routing, queueing, container
// reuse and repurposing are all confined to the group's nodes — so the trace
// splits by group and the groups replay concurrently, each in its own
// sub-simulator, with bitwise-identical per-request results.
//
// Sharding is refused (serial fallback, with the reason reported) whenever any
// cross-shard coupling could change results:
//
//   - no placement, or the placement connects the nodes into a single group:
//     there is nothing independent to split;
//   - fault injection enabled: the injector is one deterministic random
//     stream whose draws depend on global request order;
//   - online profiling enabled: the estimator learns from every executed
//     transform, coupling decisions across the whole trace.
//
// Estimator noise (Config.EstimatorErr) is shard-safe: it is fixed at
// construction from the seed, and every sub-simulator is built with the same
// seed. Plan caches are per-shard; planning is deterministic, so per-request
// records are unaffected.

// ShardReport describes how RunSharded executed a replay.
type ShardReport struct {
	// Shards is the number of sub-simulators run (1 when serial).
	Shards int
	// Workers is the bound on concurrently running sub-simulators.
	Workers int
	// SerialReason is empty when the replay was sharded; otherwise it names
	// the coupling that forced the serial fallback.
	SerialReason string
	// TransformsVerified and TransformsFailed aggregate the sub-simulators'
	// counters (see Simulator).
	TransformsVerified int
	TransformsFailed   int
}

// Sharded reports whether the replay actually ran in parallel shards.
func (r ShardReport) Sharded() bool { return r.SerialReason == "" }

// shardPlan is one independent node group and the functions bound to it.
type shardPlan struct {
	fns     map[string]bool
	minNode int
}

// planShards partitions the trace's functions into independent node groups,
// or explains why it cannot. cfg must already have defaults applied.
func planShards(cfg Config, tr *workload.Trace) ([]shardPlan, string) {
	if cfg.Faults.Enabled() {
		return nil, "fault injection draws from one global random stream"
	}
	if cfg.OnlineProfiling > 0 {
		return nil, "online profiling couples the cost estimator across all requests"
	}
	if cfg.Fanout.Enabled {
		return nil, "fan-out trees place replicas across all nodes"
	}
	if cfg.Health.Enabled {
		return nil, "health tracking couples the cluster latency baseline across all nodes"
	}
	if len(cfg.Placement) == 0 {
		return nil, "no placement: every function routes across all nodes"
	}
	if cfg.Nodes < 2 {
		return nil, "single node"
	}

	// Union-find over node IDs: each function unions its candidate nodes,
	// using exactly the clamping resolveCandidates applies (invalid IDs
	// dropped; an absent, empty, or fully-invalid entry spans all nodes).
	parent := make([]int, cfg.Nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	names := make([]string, 0, 16)
	seen := make(map[string][]int)
	for _, r := range tr.Requests {
		if _, ok := seen[r.Function]; ok {
			continue
		}
		ids := cfg.Placement[r.Function]
		cands := make([]int, 0, len(ids))
		for _, id := range ids {
			if id >= 0 && id < cfg.Nodes {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 { // unplaced: spans every node
			for i := 1; i < cfg.Nodes; i++ {
				union(0, i)
			}
			cands = append(cands, 0)
		}
		for _, id := range cands[1:] {
			union(cands[0], id)
		}
		seen[r.Function] = cands
		names = append(names, r.Function)
	}

	byRoot := make(map[int]*shardPlan)
	for _, name := range names {
		root := find(seen[name][0])
		sp, ok := byRoot[root]
		if !ok {
			sp = &shardPlan{fns: make(map[string]bool), minNode: cfg.Nodes}
			byRoot[root] = sp
		}
		sp.fns[name] = true
		for _, id := range seen[name] {
			if id < sp.minNode {
				sp.minNode = id
			}
		}
	}
	if len(byRoot) < 2 {
		return nil, "placement connects the traced functions into a single node group"
	}
	shards := make([]shardPlan, 0, len(byRoot))
	for _, sp := range byRoot {
		shards = append(shards, *sp)
	}
	// Deterministic shard order: by the smallest node ID each group touches.
	sort.Slice(shards, func(i, j int) bool { return shards[i].minNode < shards[j].minNode })
	return shards, ""
}

// RunSharded replays the trace like New(cfg, fns).Run(tr), splitting it into
// per-node-group shards replayed concurrently on up to `workers` goroutines
// when the placement permits (workers <= 0 means GOMAXPROCS; workers == 1
// forces the serial path). The merged collector holds every shard's records
// sorted by service start time — aggregate views (mean, percentiles, kind
// fractions, fault tallies) are identical to a serial replay's.
func RunSharded(cfg Config, fns []*Function, tr *workload.Trace, workers int) (*metrics.Collector, ShardReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dcfg := cfg.withDefaults()
	var shards []shardPlan
	report := ShardReport{Workers: workers}
	if workers == 1 {
		report.SerialReason = "workers=1"
	} else {
		shards, report.SerialReason = planShards(dcfg, tr)
	}
	if report.SerialReason != "" {
		sim := New(cfg, fns)
		col, err := sim.Run(tr)
		report.Shards = 1
		report.TransformsVerified = sim.TransformsVerified
		report.TransformsFailed = sim.TransformsFailed
		return col, report, err
	}
	report.Shards = len(shards)
	if len(shards) < workers {
		workers = len(shards)
	}
	report.Workers = workers

	// Split the trace stably: each shard replays its functions' requests in
	// original trace order, exactly as a serial run would deliver them. One
	// pass with a name→shard table beats filtering per shard — the per-shard
	// scan costs k map lookups per request.
	byFn := make(map[string]int, 64)
	for i, sp := range shards {
		for name := range sp.fns {
			byFn[name] = i
		}
	}
	// First pass resolves each request's shard once (the map lookup is the
	// expensive part); the counts size every sub-trace exactly, so placement
	// is growth-free appends.
	reqShard := make([]int32, len(tr.Requests))
	counts := make([]int, len(shards))
	for j, r := range tr.Requests {
		i := byFn[r.Function]
		reqShard[j] = int32(i)
		counts[i]++
	}
	subTraces := make([]*workload.Trace, len(shards))
	for i := range shards {
		subTraces[i] = &workload.Trace{
			Duration: tr.Duration,
			Requests: make([]workload.Request, 0, counts[i]),
		}
	}
	for j, r := range tr.Requests {
		i := reqShard[j]
		subTraces[i].Requests = append(subTraces[i].Requests, r)
	}

	sims := make([]*Simulator, len(shards))
	cols := make([]*metrics.Collector, len(shards))
	errs := make([]error, len(shards))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Every sub-simulator gets the full cluster and function set with
			// the same seed; only its trace subset differs. Its functions can
			// route only to its group's nodes, so the other (empty, untouched)
			// nodes never influence a decision.
			sims[i] = New(cfg, fns)
			cols[i], errs[i] = sims[i].Run(subTraces[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, report, fmt.Errorf("shard %d: %w", i, err)
		}
	}

	// Merge: each shard's record stream is already sorted by start time (the
	// simulation clock is monotone), so a k-way merge — ties resolved by
	// shard order, i.e. min node ID — produces the sorted output without a
	// post-hoc sort. Fault tallies and transform counters are summed.
	total := 0
	merged := &metrics.Collector{}
	for i, c := range cols {
		total += c.Len()
		merged.Faults.Merge(c.Faults)
		merged.Fanout.Merge(c.Fanout)
		report.TransformsVerified += sims[i].TransformsVerified
		report.TransformsFailed += sims[i].TransformsFailed
	}
	merged.Reserve(total)
	streams := make([][]metrics.Record, len(cols))
	for i, c := range cols {
		streams[i] = c.Records()
	}
	pos := make([]int, len(streams))
	for {
		pick := -1
		var at time.Duration
		for i, st := range streams {
			if pos[i] == len(st) {
				continue
			}
			if s := st[pos[i]].Start; pick < 0 || s < at {
				pick, at = i, s
			}
		}
		if pick < 0 {
			break
		}
		merged.Add(streams[pick][pos[pick]])
		pos[pick]++
	}
	return merged, report, nil
}
