package cost

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/model"
)

// Estimator is the output of Module 1 (offline profiling for meta-operators,
// §4.4): the cost table the planner consults when choosing a transformation
// strategy. In the paper the table is measured on the live system; in this
// reproduction the Profile is ground truth and the Estimator optionally
// perturbs it with deterministic multiplicative noise to model measurement
// error, so the planner plans against *estimates* while the simulator charges
// *true* costs — exactly the situation the paper's safeguard defends against.
type Estimator struct {
	p *Profile

	mu    sync.RWMutex
	noise map[model.OpType]float64 // multiplicative factor per op type
	// alpha is the EWMA learning rate of online profiling (§6): zero
	// disables learning, making the estimator static.
	alpha float64
	// observations counts Observe calls (for reporting).
	observations int
}

// NewEstimator profiles the given hardware. relErr is the relative
// measurement error (e.g. 0.1 for ±10 %); zero yields exact estimates.
// The noise per op type is drawn deterministically from seed.
func NewEstimator(p *Profile, relErr float64, seed int64) *Estimator {
	e := &Estimator{p: p, noise: make(map[model.OpType]float64)}
	rng := rand.New(rand.NewSource(seed))
	for _, t := range model.AllOpTypes() {
		f := 1.0
		if relErr > 0 {
			f = 1 + relErr*(2*rng.Float64()-1)
		}
		e.noise[t] = f
	}
	return e
}

// Exact returns an estimator with zero measurement error.
func Exact(p *Profile) *Estimator { return NewEstimator(p, 0, 0) }

// Profile returns the underlying (true) hardware profile.
func (e *Estimator) Profile() *Profile { return e.p }

func (e *Estimator) scale(t model.OpType, d time.Duration) time.Duration {
	e.mu.RLock()
	f, ok := e.noise[t]
	e.mu.RUnlock()
	if !ok {
		return d
	}
	return time.Duration(float64(d) * f)
}

// EnableOnlineProfiling turns on online profile refinement (§6 Future Work):
// every Observe call nudges the per-op-type estimate toward the observed
// execution time with EWMA rate alpha (typical 0.2). The paper's prototype
// profiles offline only; transformation plans generated from outdated
// profiles can be inefficient, which online profiling corrects.
func (e *Estimator) EnableOnlineProfiling(alpha float64) {
	e.mu.Lock()
	e.alpha = alpha
	e.mu.Unlock()
}

// Observe feeds one measured meta-operator execution back into the profile:
// the operation type's scale factor moves toward making `predicted` equal
// `actual`. No-op unless online profiling is enabled.
func (e *Estimator) Observe(t model.OpType, predicted, actual time.Duration) {
	if predicted <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.alpha <= 0 {
		return
	}
	f, ok := e.noise[t]
	if !ok {
		f = 1
	}
	ratio := float64(actual) / float64(predicted)
	e.noise[t] = f * (1 - e.alpha + e.alpha*ratio)
	e.observations++
}

// Observations returns how many measurements online profiling has absorbed.
func (e *Estimator) Observations() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.observations
}

// Miscalibration returns the mean absolute relative error of the estimator's
// per-op-type factors versus the true profile (0 = perfectly calibrated).
func (e *Estimator) Miscalibration() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.noise) == 0 {
		return 0
	}
	var sum float64
	for _, f := range e.noise {
		d := f - 1
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(e.noise))
}

// SubstituteCost estimates transforming src into dst via Reshape/Replace.
func (e *Estimator) SubstituteCost(src, dst *model.Operation) (time.Duration, bool) {
	c, ok := e.p.SubstituteCost(src, dst)
	if !ok {
		return 0, false
	}
	return e.scale(dst.Type, c), true
}

// ReplaceCost estimates overwriting dst's weights in place.
func (e *Estimator) ReplaceCost(dst *model.Operation) time.Duration {
	return e.scale(dst.Type, e.p.ReplaceCost(dst))
}

// ReshapeCost estimates resizing src's properties to dst's.
func (e *Estimator) ReshapeCost(src, dst *model.Operation) time.Duration {
	return e.scale(dst.Type, e.p.ReshapeCost(src, dst))
}

// ReduceCost estimates deleting src.
func (e *Estimator) ReduceCost(src *model.Operation) time.Duration {
	return e.scale(src.Type, e.p.ReduceCost(src))
}

// AddCost estimates creating dst from scratch in-container.
func (e *Estimator) AddCost(dst *model.Operation) time.Duration {
	return e.scale(dst.Type, e.p.AddCost(dst))
}

// EdgeCost estimates n edge rewirings.
func (e *Estimator) EdgeCost(n int) time.Duration { return e.p.EdgeCost(n) }

// ModelLoad estimates loading g from scratch (used by the safeguard).
func (e *Estimator) ModelLoad(g *model.Graph) time.Duration {
	return e.p.ModelLoad(g).Total()
}
