package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/metrics"
)

func quick() Options { return Options{Quick: true} }

func TestFig2Shape(t *testing.T) {
	r := Fig2(quick())
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Insight 1: model loading dominates the request time (>50 %).
		if row.LoadFrac <= 0.5 {
			t.Errorf("%s: load fraction %.2f ≤ 0.5", row.Model, row.LoadFrac)
		}
	}
	// VGG16 loading must exceed 74 % of startup (init+load), per Fig 1.
	vgg16 := r.Rows[1]
	startup := vgg16.Init + vgg16.Load
	if frac := float64(vgg16.Load) / float64(startup); frac < 0.74 {
		t.Errorf("VGG16 load fraction of startup = %.2f, want > 0.74", frac)
	}
	// ResNet101 loads about twice as slowly as ResNet50 (layer count).
	r50, r101 := r.Rows[3], r.Rows[4]
	if ratio := float64(r101.Load) / float64(r50.Load); ratio < 1.5 || ratio > 2.5 {
		t.Errorf("ResNet101/ResNet50 load ratio = %.2f, want ≈ 2", ratio)
	}
	if !strings.Contains(r.Render(), "vgg16-imagenet") {
		t.Error("render missing models")
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3(quick(), 100)
	if len(r.Models) == 0 {
		t.Fatal("no models sampled")
	}
	// Insight 2: structure dominates, weights minor, deserialize negligible.
	if r.StructureFrac < 0.75 {
		t.Errorf("structure fraction %.2f, paper reports 89.66%%", r.StructureFrac)
	}
	if r.WeightsFrac > 0.2 {
		t.Errorf("weights fraction %.2f, paper reports 10.28%%", r.WeightsFrac)
	}
	if r.DeserializeFrac > 0.1 {
		t.Errorf("deserialize fraction %.2f should be negligible", r.DeserializeFrac)
	}
	sum := r.StructureFrac + r.WeightsFrac + r.DeserializeFrac
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %.3f", sum)
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4(quick())
	means := map[string]time.Duration{}
	for _, row := range r.Rows {
		means[row.Type.String()] = row.Mean
	}
	if means["conv2d"] == 0 || means["relu"] == 0 {
		t.Fatal("missing op types")
	}
	if means["conv2d"] < 8*means["relu"] {
		t.Errorf("conv (%v) should be ~10x activation (%v)", means["conv2d"], means["relu"])
	}
	if means["dense"] <= means["maxpool"] {
		t.Error("weighted ops should outweigh weight-free ops")
	}
}

func TestFig5aShape(t *testing.T) {
	r := Fig5a(quick())
	// Paper: 79.83 % average reduction; accept the band 60-95 %.
	if r.MeanReduction < 0.6 || r.MeanReduction > 0.95 {
		t.Errorf("mean reduction %.2f outside [0.6, 0.95]", r.MeanReduction)
	}
	for _, row := range r.Rows {
		if row.Transform >= row.ColdTotal {
			t.Errorf("%s: transform %v not below cold %v", row.Model, row.Transform, row.ColdTotal)
		}
	}
}

func TestFig5cShape(t *testing.T) {
	r := Fig5c(quick(), nil, 0)
	n := len(r.Kernels)
	if n != 7 || len(r.Matrix) != n {
		t.Fatalf("matrix %dx%d", len(r.Matrix), n)
	}
	for j := 0; j < n; j++ {
		diag := r.Matrix[j][j]
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			// Off-diagonal (reshape into column j) must beat the diagonal
			// (loading column j from scratch) — the Fig 5c observation.
			if r.Matrix[i][j] >= diag {
				t.Errorf("reshape %d→%d (%v) not cheaper than load (%v)", r.Kernels[i], r.Kernels[j], r.Matrix[i][j], diag)
			}
		}
	}
	// Diagonal grows with kernel size.
	if r.Matrix[n-1][n-1] <= r.Matrix[0][0] {
		t.Error("larger kernels should load slower")
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(quick())
	if len(r.Rows) < 10 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byKey := map[string]time.Duration{}
	for _, row := range r.Rows {
		byKey[row.Kind.String()+"|"+row.Target] = row.Cost
	}
	// Add for conv/dense ≫ add for relu (§4.4 observation 2).
	if byKey["add|relu"] >= byKey["add|dense 2048->1000"] {
		t.Errorf("add relu (%v) should be cheaper than add dense (%v)", byKey["add|relu"], byKey["add|dense 2048->1000"])
	}
	// Edge is negligible vs everything else.
	edge := byKey["edge|per edge"]
	for k, v := range byKey {
		if k != "edge|per edge" && v < edge {
			t.Errorf("%s (%v) cheaper than an edge (%v)", k, v, edge)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(quick())
	if len(r.Models) != 21 || len(r.Matrix) != 21 || len(r.Scratch) != 21 {
		t.Fatalf("matrix should be 21x21")
	}
	// Transformation should never exceed scratch (safeguard).
	for i := range r.Matrix {
		for j := range r.Matrix[i] {
			// Allow equality for safeguarded cells.
			if r.Matrix[i][j] > r.Scratch[j]+r.Scratch[j]/50 {
				t.Errorf("cell (%d,%d) = %v exceeds scratch %v", i, j, r.Matrix[i][j], r.Scratch[j])
			}
		}
	}
	// CNN→BERT (and vice versa) always safeguarded (§8.2 observation 3).
	for i := 0; i < 11; i++ {
		for j := 11; j < 21; j++ {
			if !r.Safeguarded[i][j] {
				t.Errorf("CNN %s → BERT %s not safeguarded", r.Models[i], r.Models[j])
			}
			if !r.Safeguarded[j][i] {
				t.Errorf("BERT %s → CNN %s not safeguarded", r.Models[j], r.Models[i])
			}
		}
	}
	// Diagonal (same structure, different weights) is the cheapest entry of
	// its row among non-safeguarded cells (§8.2 observation 3). This holds
	// for the CNN rows; BERT downstream-task variants share the pre-trained
	// base weights, so transforming between them legitimately beats a full
	// reweight of the same structure.
	for i := 0; i < 11; i++ {
		for j := 0; j < 11; j++ {
			if !r.Safeguarded[i][j] && r.Matrix[i][j] < r.Matrix[i][i] {
				t.Errorf("row %d: cell %d (%v) beats diagonal (%v)", i, j, r.Matrix[i][j], r.Matrix[i][i])
			}
		}
	}
	// Asymmetry: big→small is cheaper than small→big within a family
	// (resnet101→resnet18 vs resnet18→resnet101; indexes 2 and 0).
	if r.Matrix[2][0] >= r.Matrix[0][2] {
		t.Errorf("large→small (%v) should beat small→large (%v)", r.Matrix[2][0], r.Matrix[0][2])
	}
	// Headline: up to ~99 % reduction vs scratch.
	if r.MaxReduction < 0.9 {
		t.Errorf("max reduction %.2f, paper reports up to 99.08%%", r.MaxReduction)
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(quick(), 500)
	if r.Pairs != 40 { // quick mode clamps
		t.Fatalf("pairs = %d", r.Pairs)
	}
	// Both zoos must show a clear reduction; NASBench (homogeneous cells)
	// must reduce more than Imgclsmob (paper: 94.48 % vs 52.88 %; our
	// synthetic zoos are structurally more heterogeneous, so the absolute
	// reductions are smaller — see EXPERIMENTS.md).
	if r.ImgReduction < 0.05 {
		t.Errorf("imgclsmob reduction %.2f too small", r.ImgReduction)
	}
	if r.NASReduction < 0.35 {
		t.Errorf("nasbench reduction %.2f too small", r.NASReduction)
	}
	if r.NASReduction <= r.ImgReduction {
		t.Errorf("nasbench (%.2f) should reduce more than imgclsmob (%.2f)", r.NASReduction, r.ImgReduction)
	}
}

func TestFig13And14Shape(t *testing.T) {
	r := Fig13(quick(), ClusterSetup{Nodes: 4, ContainersPerNode: 2, Horizon: 6 * time.Hour})
	if len(r.Cells) != 8 {
		t.Fatalf("%d cells, want 4 systems × 2 workloads", len(r.Cells))
	}
	byKey := map[string]Fig13Cell{}
	for _, c := range r.Cells {
		byKey[c.Workload+"/"+c.Policy] = c
	}
	for _, wl := range []string{"poisson", "azure"} {
		opt, ow := byKey[wl+"/optimus"], byKey[wl+"/openwhisk"]
		if opt.Requests != ow.Requests {
			t.Errorf("%s: request counts differ", wl)
		}
		if opt.Mean >= ow.Mean {
			t.Errorf("%s: optimus (%v) not faster than openwhisk (%v)", wl, opt.Mean, ow.Mean)
		}
		// Fig 14 shape: Optimus converts cold starts into transformations.
		if opt.Kinds[metrics.StartCold] >= ow.Kinds[metrics.StartCold] {
			t.Errorf("%s: optimus cold share %.2f ≥ openwhisk %.2f", wl,
				opt.Kinds[metrics.StartCold], ow.Kinds[metrics.StartCold])
		}
		if ow.Kinds[metrics.StartTransform] != 0 {
			t.Errorf("%s: openwhisk transformed", wl)
		}
		minRed := 0.10
		if wl == "azure" {
			// The Azure-like trace is warm-start dominated (bursty heads),
			// capping the attainable improvement.
			minRed = 0.03
		}
		if red := r.Reductions[wl]; red < minRed {
			t.Errorf("%s: reduction %.2f below %.2f", wl, red, minRed)
		}
	}
	if !strings.Contains(r.RenderFig14(), "transform") {
		t.Error("Fig14 render broken")
	}
}

func TestFig16GPUSlowestButOptimusStillWins(t *testing.T) {
	setup := ClusterSetup{Nodes: 4, ContainersPerNode: 2, Horizon: 6 * time.Hour}
	gpu := Fig16(quick(), setup)
	cpu := Fig13(quick(), setup)
	if gpu.Profile != "gpu" {
		t.Fatalf("profile = %s", gpu.Profile)
	}
	find := func(r Fig13Result, key string) Fig13Cell {
		for _, c := range r.Cells {
			if c.Workload+"/"+c.Policy == key {
				return c
			}
		}
		t.Fatalf("missing cell %s", key)
		return Fig13Cell{}
	}
	// §8.5: GPU end-to-end latency exceeds CPU due to init overheads...
	gOW, cOW := find(gpu, "poisson/openwhisk"), find(cpu, "poisson/openwhisk")
	if gOW.Mean <= cOW.Mean {
		t.Errorf("GPU openwhisk (%v) should be slower than CPU (%v)", gOW.Mean, cOW.Mean)
	}
	// ... and Optimus' reduction holds (paper: 26.93%~57.08%).
	if red := gpu.Reductions["poisson"]; red < 0.10 {
		t.Errorf("GPU reduction %.2f below 10%%", red)
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1(quick())
	if len(r.Cases) != 3 {
		t.Fatalf("%d cases", len(r.Cases))
	}
	for _, c := range r.Cases {
		// Improved planning must be far faster (the gap widens with model
		// size; the paper's Python prototype reports ~4-5 orders).
		if c.ImprovedPlanning*5 > c.BasicPlanning {
			t.Errorf("%s→%s: improved planning %v not ≫ faster than basic %v",
				c.Src, c.Dst, c.ImprovedPlanning, c.BasicPlanning)
		}
		// Execution cost must be nearly optimal (within 20 %).
		if c.BasicExecution > 0 {
			ratio := float64(c.ImprovedExecution) / float64(c.BasicExecution)
			if ratio > 1.2 {
				t.Errorf("%s→%s: improved execution %.2fx basic", c.Src, c.Dst, ratio)
			}
		}
	}
}

func TestAblationPlannerQuality(t *testing.T) {
	r := AblationPlannerQuality(quick(), 100)
	if r.MeanRatio < 0.8 || r.MeanRatio > 1.5 {
		t.Errorf("mean ratio %.3f outside sanity band", r.MeanRatio)
	}
}

func TestAblationSafeguard(t *testing.T) {
	r := AblationSafeguard(quick(), 100)
	if r.SafeguardFired == 0 {
		t.Fatal("safeguard never fired on cross-family pairs")
	}
	if r.MeanPenaltyNoSafe <= 1 {
		t.Errorf("without the safeguard the penalty should exceed 1x, got %.2f", r.MeanPenaltyNoSafe)
	}
}

func TestAblationPlanCache(t *testing.T) {
	r := AblationPlanCache(quick(), 300)
	if r.SpeedupFactor < 2 {
		t.Errorf("cache speedup %.1fx, want ≥ 2x", r.SpeedupFactor)
	}
	if r.CacheHitsAfter == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestAblationIdleThreshold(t *testing.T) {
	r := AblationIdleThreshold(quick(), ClusterSetup{Nodes: 2, ContainersPerNode: 3, Horizon: 4 * time.Hour},
		[]time.Duration{30 * time.Second, 5 * time.Minute})
	if len(r.Means) != 2 || len(r.Transforms) != 2 {
		t.Fatal("sweep incomplete")
	}
	// A stricter (longer) threshold cannot increase the transform share.
	if r.Transforms[1] > r.Transforms[0]+1e-9 {
		t.Errorf("longer threshold raised transform share: %v", r.Transforms)
	}
}

func TestAblationBalancer(t *testing.T) {
	r := AblationBalancer(quick(), ClusterSetup{Nodes: 2, ContainersPerNode: 3, Horizon: 6 * time.Hour})
	if r.HashMean == 0 || r.KMedoidsMean == 0 {
		t.Fatal("ablation did not run")
	}
	// K-medoids should not be materially worse than hash.
	if r.Improvement < -0.10 {
		t.Errorf("k-medoids placement 10%%+ worse than hash: %v vs %v", r.KMedoidsMean, r.HashMean)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	o := quick()
	outs := []string{
		Fig2(o).Render(),
		Fig3(o, 10).Render(),
		Fig4(o).Render(),
		Fig5a(o).Render(),
		Fig5c(o, nil, 0).Render(),
		Fig8(o).Render(),
		Fig12(o, 10).Render(),
		Fig15(o).Render(),
		Table1(o).Render(),
		AblationPlannerQuality(o, 4).Render(),
		AblationSafeguard(o, 4).Render(),
		AblationPlanCache(o, 10).Render(),
	}
	for i, s := range outs {
		if len(s) < 40 {
			t.Errorf("render %d suspiciously short: %q", i, s)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r := Fig15(quick())
	if len(r.Cases) != 4 {
		t.Fatalf("%d cases", len(r.Cases))
	}
	// The width-variant case is reshape-dominated.
	if wv := r.Cases[3]; wv.Counts[metaop.KindReshape] == 0 {
		t.Error("mobilenet width-variant case should use Reshape")
	}
	grow, shrink := r.Cases[0], r.Cases[1]
	// ResNet50→ResNet101 adds operations; ResNet101→ResNet50 must not.
	if grow.Counts[addKind()] == 0 {
		t.Error("resnet50→resnet101 should use Add")
	}
	if shrink.Counts[addKind()] != 0 {
		t.Error("resnet101→resnet50 should not use Add")
	}
	if shrink.Counts[reduceKind()] == 0 {
		t.Error("resnet101→resnet50 should use Reduce")
	}
}

func TestGPUProfileOptionPlumbed(t *testing.T) {
	o := Options{Profile: cost.GPU(), Quick: true}
	r := Fig2(o)
	if r.Rows[0].Init != cost.GPU().SandboxInit {
		t.Error("profile option not plumbed through")
	}
}

func addKind() metaop.Kind    { return metaop.KindAdd }
func reduceKind() metaop.Kind { return metaop.KindReduce }

func TestAblationOnlineProfiling(t *testing.T) {
	r := AblationOnlineProfiling(quick(), ClusterSetup{Nodes: 2, ContainersPerNode: 2, Horizon: 8 * time.Hour})
	if r.Observations == 0 {
		t.Fatal("online profiling absorbed no observations")
	}
	// Map-iteration order perturbs the float sum in the last bits only.
	if math.Abs(r.MiscalOffline-r.MiscalStart) > 1e-9 {
		t.Errorf("offline-only run changed the profile: %.3f vs %.3f", r.MiscalOffline, r.MiscalStart)
	}
	if r.MiscalOnline >= r.MiscalOffline {
		t.Errorf("online profiling did not reduce miscalibration: %.3f vs %.3f", r.MiscalOnline, r.MiscalOffline)
	}
}

func TestAblationAllocation(t *testing.T) {
	r := AblationAllocation(quick(), ClusterSetup{Nodes: 2, ContainersPerNode: 4, Horizon: 8 * time.Hour})
	if r.SlotsMean == 0 || r.HomogeneousMean == 0 || r.FineMean == 0 {
		t.Fatal("ablation did not run")
	}
	// Fine-grained packing fits more containers → better mean service time
	// than the homogeneous grant. (Its cold *share* may rise: small-model
	// donors cannot host large models, but far more warm containers survive.)
	if r.FineMean > r.HomogeneousMean {
		t.Errorf("fine-grained mean %v exceeds homogeneous %v", r.FineMean, r.HomogeneousMean)
	}
}

func TestScalabilitySweep(t *testing.T) {
	r := Scalability(quick(), []int{1, 4}, 6*time.Hour)
	if len(r.Points) != 2 {
		t.Fatalf("%d points", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Means["optimus"] > p.Means["openwhisk"] {
			t.Errorf("nodes=%d: optimus (%v) slower than openwhisk (%v)", p.X, p.Means["optimus"], p.Means["openwhisk"])
		}
	}
	// Under the tightest cluster Optimus transforms the most.
	if r.Points[0].OptimusTransform < r.Points[1].OptimusTransform {
		t.Errorf("transform share should fall as nodes grow: %v", r.Points)
	}
	if len(r.Render()) < 40 {
		t.Error("render too short")
	}
}

func TestLoadSweep(t *testing.T) {
	r := LoadSweep(quick(), []int{10, 40}, 6*time.Hour)
	if len(r.Points) != 2 {
		t.Fatalf("%d points", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Means["optimus"] > p.Means["openwhisk"] {
			t.Errorf("rate=%d: optimus slower", p.X)
		}
	}
}

func TestRecoverySweepShape(t *testing.T) {
	r := Recovery(quick(), []float64{0, 0.4}, 2*time.Hour)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want base+supervised per rate", len(r.Points))
	}
	for i, p := range r.Points {
		if p.Served == 0 {
			t.Fatalf("point %d served nothing", i)
		}
		if want := i%2 == 1; p.Supervised != want {
			t.Fatalf("point %d supervised = %v, want %v", i, p.Supervised, want)
		}
	}
	// Zero-rate rows are fault-free regardless of supervision.
	for _, p := range r.Points[:2] {
		if p.Faults.Any() || p.Timeout != 0 || p.Breaker != 0 {
			t.Fatalf("zero-rate point has fault activity: %+v", p)
		}
	}
	// At rate 0.4 the supervised run actually exercises the machinery.
	sup := r.Points[3]
	if sup.Faults.WatchdogCancels == 0 {
		t.Error("supervised high-rate run cancelled no hangs")
	}
	if sup.Faults.Hangs == 0 {
		t.Error("supervised high-rate run saw no hangs")
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}
