package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// BenchPlannerFile and BenchSimFile are the artifact names `optimus-bench
// bench` emits; CI's regression guard validates their contents.
const (
	BenchPlannerFile = "BENCH_planner.json"
	BenchSimFile     = "BENCH_sim.json"
)

// PlannerBench is the offline-planning benchmark: the same fixed-seed model
// catalog precomputed serially (one worker) and in parallel (the full pool),
// with a byte-identity check between the two plan sets. Latencies are wall
// clock and machine-dependent; everything else is seed-reproducible.
type PlannerBench struct {
	Seed    int64 `json:"seed"`
	Models  int   `json:"models"`
	Pairs   int   `json:"pairs"`
	Workers int   `json:"workers"`
	// SerialMS/ParallelMS time the full pairwise warm-up; Speedup is their
	// ratio (the ≥2× acceptance target on ≥4 cores).
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// Identical reports that the parallel precompute produced byte-identical
	// plans to the serial baseline for every pair.
	Identical   bool    `json:"identical"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	// Per-pair planning-time percentiles from the parallel run.
	PlanP50MS float64 `json:"plan_p50_ms"`
	PlanP95MS float64 `json:"plan_p95_ms"`
	PlanP99MS float64 `json:"plan_p99_ms"`
	// Cache counters from the parallel run: planned must equal pairs (no
	// duplicate work), deduped counts singleflight piggybacks.
	CachePlanned   int `json:"cache_planned"`
	CacheDeduped   int `json:"cache_deduped"`
	CacheEvictions int `json:"cache_evictions"`
}

// SimBench is the end-to-end simulator/gateway-path benchmark: a fixed-seed
// mixed-Poisson workload replayed under the Optimus policy. Latency
// percentiles, start-kind fractions and cache hit ratio are seed-reproducible;
// wall time and throughput are machine-dependent.
type SimBench struct {
	Seed     int64  `json:"seed"`
	Policy   string `json:"policy"`
	Models   int    `json:"models"`
	Requests int    `json:"requests"`
	// WallMS is the replay's wall-clock time; OpsPerSec the served
	// requests per wall-clock second (simulation throughput).
	WallMS    float64 `json:"wall_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Virtual-time service-latency statistics (seed-reproducible).
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	// Start-kind mix and plan-cache effectiveness.
	WarmFraction      float64 `json:"warm_fraction"`
	TransformFraction float64 `json:"transform_fraction"`
	ColdFraction      float64 `json:"cold_fraction"`
	CacheHitRatio     float64 `json:"cache_hit_ratio"`
}

// BenchResult bundles the two benchmark sections.
type BenchResult struct {
	Planner PlannerBench `json:"planner"`
	Sim     SimBench     `json:"sim"`
}

// benchModels returns the fixed benchmark catalog: a representative slice of
// the CNN zoo plus BERT variants, exactly the §8.1 function mix.
func benchModels(quick bool) []*model.Graph {
	fns := DefaultFunctionSet(quick)
	out := make([]*model.Graph, len(fns))
	for i, f := range fns {
		out[i] = f.Model
	}
	return out
}

// Bench runs both benchmarks. workers <= 0 defaults to GOMAXPROCS.
func Bench(o Options, setup ClusterSetup, workers int) BenchResult {
	o = o.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return BenchResult{
		Planner: benchPlanner(o, workers),
		Sim:     benchSim(o, setup),
	}
}

func benchPlanner(o Options, workers int) PlannerBench {
	models := benchModels(o.Quick)
	pairs := len(models) * (len(models) - 1)
	res := PlannerBench{Seed: o.Seed, Models: len(models), Pairs: pairs, Workers: workers}

	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)

	serial := planner.NewCache()
	t0 := time.Now()
	planner.NewPrecomputer(pl, serial, 1).PrecomputeAll(models)
	serialTook := time.Since(t0)

	parallel := planner.NewCache()
	t1 := time.Now()
	planner.NewPrecomputer(pl, parallel, workers).PrecomputeAll(models)
	parallelTook := time.Since(t1)

	res.SerialMS = msF(serialTook)
	res.ParallelMS = msF(parallelTook)
	if parallelTook > 0 {
		res.Speedup = float64(serialTook) / float64(parallelTook)
		res.PairsPerSec = float64(pairs) / parallelTook.Seconds()
	}
	res.Identical = identicalPlans(serial, parallel, models)

	pt := parallel.PlanTimes()
	res.PlanP50MS = msF(pt.P50)
	res.PlanP95MS = msF(pt.P95)
	res.PlanP99MS = msF(pt.P99)

	ct := parallel.Counters()
	res.CachePlanned = ct.Planned
	res.CacheDeduped = ct.Deduped
	res.CacheEvictions = ct.Evictions
	return res
}

// identicalPlans reports whether both caches hold byte-identical plans for
// every ordered model pair (JSON encoding covers step order, costs and the
// safeguard decision).
func identicalPlans(a, b *planner.Cache, models []*model.Graph) bool {
	for i, src := range models {
		for j, dst := range models {
			if i == j {
				continue
			}
			pa, okA := a.Get(src, dst)
			pb, okB := b.Get(src, dst)
			if !okA || !okB {
				return false
			}
			ja, errA := json.Marshal(pa)
			jb, errB := json.Marshal(pb)
			if errA != nil || errB != nil || string(ja) != string(jb) {
				return false
			}
		}
	}
	return true
}

func benchSim(o Options, setup ClusterSetup) SimBench {
	setup = setup.withDefaults(o.Quick)
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	trace := workload.MixedPoisson(names, setup.Horizon, o.Seed)

	sim := simulate.New(simulate.Config{
		Nodes:             setup.Nodes,
		ContainersPerNode: setup.ContainersPerNode,
		Profile:           o.Profile,
		Policy:            policy.Optimus{},
		Seed:              o.Seed,
	}, fns)
	t0 := time.Now()
	col, err := sim.Run(trace)
	if err != nil {
		panic(err)
	}
	wall := time.Since(t0)

	fr := col.KindFractions()
	hits, misses := sim.Env().Plans.Stats()
	hitRatio := 0.0
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}
	res := SimBench{
		Seed:              o.Seed,
		Policy:            "optimus",
		Models:            len(fns),
		Requests:          col.Len(),
		WallMS:            msF(wall),
		MeanMS:            msF(col.MeanLatency()),
		P50MS:             msF(col.Percentile(50)),
		P95MS:             msF(col.Percentile(95)),
		P99MS:             msF(col.Percentile(99)),
		WarmFraction:      fr[metrics.StartWarm],
		TransformFraction: fr[metrics.StartTransform],
		ColdFraction:      fr[metrics.StartCold],
		CacheHitRatio:     hitRatio,
	}
	if wall > 0 {
		res.OpsPerSec = float64(col.Len()) / wall.Seconds()
	}
	return res
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteFiles persists the two benchmark artifacts into dir, creating it if
// needed.
func (r BenchResult) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench: creating %s: %w", dir, err)
	}
	write := func(name string, v any) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
	}
	if err := write(BenchPlannerFile, r.Planner); err != nil {
		return fmt.Errorf("bench: writing %s: %w", BenchPlannerFile, err)
	}
	if err := write(BenchSimFile, r.Sim); err != nil {
		return fmt.Errorf("bench: writing %s: %w", BenchSimFile, err)
	}
	return nil
}

// Render prints the benchmark digest.
func (r BenchResult) Render() string {
	p, s := r.Planner, r.Sim
	ident := "identical"
	if !p.Identical {
		ident = "MISMATCH"
	}
	return fmt.Sprintf(`Benchmark baseline (seed %d)
planner precompute: %d models, %d pairs, %d workers
  serial   %.1f ms
  parallel %.1f ms  (speedup %.2fx, %.0f pairs/s, plans %s)
  plan time p50/p95/p99: %.2f/%.2f/%.2f ms  (planned %d, deduped %d)
simulator (%s policy): %d requests in %.1f ms wall (%.0f req/s)
  service latency mean/p50/p95/p99: %.1f/%.1f/%.1f/%.1f ms
  starts warm %.1f%% transform %.1f%% cold %.1f%% | plan-cache hit ratio %.1f%%`,
		p.Seed, p.Models, p.Pairs, p.Workers,
		p.SerialMS, p.ParallelMS, p.Speedup, p.PairsPerSec, ident,
		p.PlanP50MS, p.PlanP95MS, p.PlanP99MS, p.CachePlanned, p.CacheDeduped,
		s.Policy, s.Requests, s.WallMS, s.OpsPerSec,
		s.MeanMS, s.P50MS, s.P95MS, s.P99MS,
		100*s.WarmFraction, 100*s.TransformFraction, 100*s.ColdFraction, 100*s.CacheHitRatio)
}
