package zoo

import (
	"fmt"

	"repro/internal/model"
)

// vggPlans gives the per-stage convolution counts for each VGG depth
// (Simonyan & Zisserman, 2015). Stage widths are fixed at 64/128/256/512/512.
var vggPlans = map[int][5]int{
	11: {1, 1, 2, 2, 2},
	13: {2, 2, 2, 2, 2},
	16: {2, 2, 3, 3, 3},
	19: {2, 2, 4, 4, 4},
}

// VGG builds a VGG-style model: five conv stages separated by max pooling,
// followed by two 4096-wide fully connected layers and a classifier.
// With bn=true each convolution is followed by batch normalization
// (the "bn-vgg" variants of Imgclsmob).
//
// Parameter counts match the published models: VGG11 ≈ 132.9M, VGG16 ≈
// 138.4M, VGG19 ≈ 143.7M with 1000 classes (paper Fig 2c).
func VGG(depth int, bn bool, classes int, scope string) *model.Graph {
	plan, ok := vggPlans[depth]
	if !ok {
		panic(fmt.Sprintf("zoo: no VGG plan for depth %d", depth))
	}
	name := fmt.Sprintf("vgg%d", depth)
	if bn {
		name = "bn-" + name
	}
	b := model.NewBuilder(name, "vgg", scope)
	b.Input(3)
	widths := [5]int{64, 128, 256, 512, 512}
	in := 3
	for stage, n := range plan {
		w := widths[stage]
		for i := 0; i < n; i++ {
			tag := fmt.Sprintf("%d_%d", stage+1, i+1)
			b.Conv("conv"+tag, 3, in, w, 1)
			if bn {
				b.BN("bn"+tag, w)
			}
			b.ReLU("relu"+tag, w)
			in = w
		}
		b.MaxPool(fmt.Sprintf("pool%d", stage+1), 2, w, 2)
	}
	// 7×7 feature map → flatten to 512·49 = 25088.
	b.Add(model.Operation{Name: "flatten", Type: model.OpFlatten, Shape: model.Shape{InChannels: 512, OutChannels: 25088}})
	b.Dense("fc1", 25088, 4096)
	b.ReLU("relu_fc1", 4096)
	b.Add(model.Operation{Name: "drop1", Type: model.OpDropout, Shape: model.Shape{OutChannels: 4096}})
	b.Dense("fc2", 4096, 4096)
	b.ReLU("relu_fc2", 4096)
	b.Add(model.Operation{Name: "drop2", Type: model.OpDropout, Shape: model.Shape{OutChannels: 4096}})
	b.Dense("fc3", 4096, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}
