// Gateway client: drives the Optimus REST control plane (§7) end to end —
// starts an in-process gateway, registers models over HTTP, invokes them,
// inspects a transformation plan, and reads aggregate stats. This is the
// workflow a platform operator scripts against optimus-server.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/gateway"
	"repro/internal/simulate"
	"repro/internal/zoo"
)

func main() {
	// A fake clock lets the demo jump through container lifecycle phases.
	var now time.Duration
	gw := gateway.New(gateway.Config{
		Cluster: simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:     func() time.Duration { return now },
	})
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	fmt.Println("gateway listening (in-process) at", srv.URL)

	// Register two models over the REST API, exactly as a client would.
	img := zoo.Imgclsmob()
	for _, name := range []string{"resnet50-imagenet", "resnet101-imagenet"} {
		body, err := json.Marshal(img.MustGet(name))
		check(err)
		resp, err := http.Post(srv.URL+"/api/models", "application/json", bytes.NewReader(body))
		check(err)
		var out map[string]any
		check(json.NewDecoder(resp.Body).Decode(&out))
		resp.Body.Close()
		fmt.Printf("registered %v (%v ops, %v params)\n", out["name"], out["ops"], out["params"])
	}

	invoke := func(model string) {
		body, _ := json.Marshal(map[string]string{"model": model})
		resp, err := http.Post(srv.URL+"/api/invoke", "application/json", bytes.NewReader(body))
		check(err)
		var out map[string]any
		check(json.NewDecoder(resp.Body).Decode(&out))
		resp.Body.Close()
		fmt.Printf("t=%-6v invoke %-22s → %-9s latency %.0f ms (init %.0f, load %.0f, compute %.0f)\n",
			now, model, out["start_kind"], out["latency_ms"], out["init_ms"], out["load_ms"], out["compute_ms"])
	}

	invoke("resnet50-imagenet") // cold
	now += 30 * time.Second
	invoke("resnet50-imagenet") // warm
	now += 3 * time.Minute      // resnet50's container is now a donor
	invoke("resnet101-imagenet")

	// Inspect the plan behind that transformation.
	resp, err := http.Get(srv.URL + "/api/plan?src=resnet50-imagenet&dst=resnet101-imagenet")
	check(err)
	var plan map[string]any
	check(json.NewDecoder(resp.Body).Decode(&plan))
	resp.Body.Close()
	fmt.Printf("plan resnet50→resnet101: %v steps (%v), est %.0f ms vs scratch %.0f ms\n",
		plan["steps"], plan["counts"], plan["est_ms"], plan["scratch_ms"])

	// Aggregate stats.
	resp, err = http.Get(srv.URL + "/api/stats")
	check(err)
	var stats map[string]any
	check(json.NewDecoder(resp.Body).Decode(&stats))
	resp.Body.Close()
	fmt.Printf("stats: %v requests, mean %.0f ms, warm %.0f%%, transform %.0f%%, cold %.0f%%\n",
		stats["requests"], stats["mean_latency_ms"],
		100*stats["warm_fraction"].(float64),
		100*stats["transform_fraction"].(float64),
		100*stats["cold_fraction"].(float64))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
