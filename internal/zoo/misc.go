package zoo

import (
	"fmt"

	"repro/internal/model"
)

// ShuffleNet builds a ShuffleNet v1 or v2 variant. The grouped 1×1
// convolutions and channel shuffles are modelled as pointwise convolutions
// plus identity (shuffle) operations — shuffle moves no weights and costs
// like an identity in every framework.
func ShuffleNet(version int, width float64, classes int, scope string) *model.Graph {
	b := model.NewBuilder(fmt.Sprintf("shufflenetv%d", version), fmt.Sprintf("shufflenetv%d", version), scope)
	b.Input(3)
	c := scaleWidth(24, width)
	b.Conv("stem.conv", 3, 3, c, 2)
	b.BN("stem.bn", c)
	b.ReLU("stem.relu", c)
	b.MaxPool("stem.pool", 3, c, 2)

	plan := []struct{ out, n int }{{116, 4}, {232, 8}, {464, 4}}
	if version == 1 {
		plan = []struct{ out, n int }{{144, 4}, {288, 8}, {576, 4}}
	}
	in := c
	for si, st := range plan {
		out := scaleWidth(st.out, width)
		for r := 0; r < st.n; r++ {
			stride := 1
			if r == 0 {
				stride = 2
			}
			tag := fmt.Sprintf("s%d.b%d", si+1, r+1)
			entry := b.Tail()[0]
			half := out / 2
			b.Conv(tag+".pw1", 1, in, half, 1)
			b.BN(tag+".bn1", half)
			b.ReLU(tag+".relu1", half)
			b.Add(model.Operation{Name: tag + ".dwconv", Type: model.OpDepthwiseConv2D,
				Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: half, OutChannels: half, Stride: stride}})
			b.BN(tag+".bn2", half)
			b.Conv(tag+".pw2", 1, half, out, 1)
			b.BN(tag+".bn3", out)
			body := b.Tail()[0]
			if stride == 1 && in == out {
				if version == 1 {
					b.AddMerge(tag+".add", out, body, entry)
				} else {
					b.ConcatMerge(tag+".concat", out, body, entry)
				}
				b.Add(model.Operation{Name: tag + ".shuffle", Type: model.OpIdentity, Shape: model.Shape{OutChannels: out}})
			} else {
				b.ReLU(tag+".relu_out", out)
			}
			in = out
		}
	}
	b.GlobalAvgPool("gap", in)
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// SqueezeNet builds SqueezeNet v1.0/v1.1 (Iandola et al.): fire modules with
// 1×1 squeeze and mixed 1×1/3×3 expand convolutions. residual=true yields
// the SqueezeResNet variants with bypass connections.
func SqueezeNet(version string, residual bool, classes int, scope string) *model.Graph {
	b := model.NewBuilder("squeezenet-"+version, "squeezenet", scope)
	b.Input(3)
	stemOut := 96
	stemK := 7
	if version == "v1.1" {
		stemOut, stemK = 64, 3
	}
	b.Conv("stem.conv", stemK, 3, stemOut, 2)
	b.ReLU("stem.relu", stemOut)
	b.MaxPool("stem.pool", 3, stemOut, 2)

	type fire struct{ squeeze, expand int }
	fires := []fire{{16, 64}, {16, 64}, {32, 128}, {32, 128}, {48, 192}, {48, 192}, {64, 256}, {64, 256}}
	poolAfter := map[int]bool{3: true, 7: true}
	if version == "v1.1" {
		poolAfter = map[int]bool{2: true, 4: true}
	}
	in := stemOut
	for i, f := range fires {
		tag := fmt.Sprintf("fire%d", i+2)
		entry := b.Tail()[0]
		b.Conv(tag+".squeeze", 1, in, f.squeeze, 1)
		b.ReLU(tag+".srelu", f.squeeze)
		sq := b.Tail()[0]
		e1 := b.Conv(tag+".expand1", 1, f.squeeze, f.expand, 1)
		b.SetTail(sq)
		e3 := b.Conv(tag+".expand3", 3, f.squeeze, f.expand, 1)
		out := 2 * f.expand
		b.ConcatMerge(tag+".concat", out, e1, e3)
		b.ReLU(tag+".erelu", out)
		if residual && in == out {
			b.AddMerge(tag+".bypass", out, b.Tail()[0], entry)
		}
		if poolAfter[i+1] {
			b.MaxPool(tag+".pool", 3, out, 2)
		}
		in = out
	}
	b.Add(model.Operation{Name: "drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: in}})
	b.Conv("head.conv", 1, in, classes, 1)
	b.ReLU("head.relu", classes)
	b.GlobalAvgPool("gap", classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// AlexNet builds AlexNet (Krizhevsky et al.); the "b" variant uses the
// slightly different 11/5/3 kernel plan of Imgclsmob's alexnetb.
func AlexNet(variantB bool, classes int, scope string) *model.Graph {
	name := "alexnet"
	if variantB {
		name = "alexnetb"
	}
	b := model.NewBuilder(name, "alexnet", scope)
	b.Input(3)
	type cv struct {
		k, out, stride int
		pool           bool
	}
	plan := []cv{
		{11, 96, 4, true}, {5, 256, 1, true}, {3, 384, 1, false}, {3, 384, 1, false}, {3, 256, 1, true},
	}
	if variantB {
		plan = []cv{
			{11, 64, 4, true}, {5, 192, 1, true}, {3, 384, 1, false}, {3, 256, 1, false}, {3, 256, 1, true},
		}
	}
	in := 3
	for i, p := range plan {
		tag := fmt.Sprintf("conv%d", i+1)
		b.Conv(tag, p.k, in, p.out, p.stride)
		b.ReLU(tag+".relu", p.out)
		if p.pool {
			b.MaxPool(tag+".pool", 3, p.out, 2)
		}
		in = p.out
	}
	flat := in * 36 // 6×6 feature map
	b.Add(model.Operation{Name: "flatten", Type: model.OpFlatten, Shape: model.Shape{InChannels: in, OutChannels: flat}})
	b.Dense("fc1", flat, 4096)
	b.ReLU("fc1.relu", 4096)
	b.Add(model.Operation{Name: "drop1", Type: model.OpDropout, Shape: model.Shape{OutChannels: 4096}})
	b.Dense("fc2", 4096, 4096)
	b.ReLU("fc2.relu", 4096)
	b.Add(model.Operation{Name: "drop2", Type: model.OpDropout, Shape: model.Shape{OutChannels: 4096}})
	b.Dense("fc3", 4096, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// DarkNet builds the DarkNet backbones used by the YOLO detectors:
// "ref" and "tiny" are the small reference nets, "19" and "53" the deeper
// classification backbones (Redmon et al.).
func DarkNet(version string, classes int, scope string) *model.Graph {
	b := model.NewBuilder("darknet-"+version, "darknet", scope)
	b.Input(3)
	convBNLeaky := func(tag string, k, in, out, stride int) int {
		b.Conv(tag+".conv", k, in, out, stride)
		b.BN(tag+".bn", out)
		b.ReLU(tag+".lrelu", out)
		return out
	}
	in := 3
	switch version {
	case "ref", "tiny":
		widths := []int{16, 32, 64, 128, 256, 512}
		if version == "ref" {
			widths = []int{16, 32, 64, 128, 256, 512, 1024}
		}
		for i, w := range widths {
			in = convBNLeaky(fmt.Sprintf("c%d", i+1), 3, in, w, 1)
			if i < 5 {
				b.MaxPool(fmt.Sprintf("p%d", i+1), 2, w, 2)
			}
		}
	case "19":
		// Alternating 3×3 / 1×1 stacks.
		type blk struct{ n, w int }
		for si, s := range []blk{{1, 32}, {1, 64}, {3, 128}, {3, 256}, {5, 512}, {5, 1024}} {
			for i := 0; i < s.n; i++ {
				k, out := 3, s.w
				if i%2 == 1 {
					k, out = 1, s.w/2
				}
				in = convBNLeaky(fmt.Sprintf("s%d.c%d", si+1, i+1), k, in, out, 1)
			}
			if si < 5 {
				b.MaxPool(fmt.Sprintf("s%d.pool", si+1), 2, in, 2)
			}
		}
	case "53":
		in = convBNLeaky("stem", 3, in, 32, 1)
		for si, s := range []struct{ n, w int }{{1, 64}, {2, 128}, {8, 256}, {8, 512}, {4, 1024}} {
			in = convBNLeaky(fmt.Sprintf("s%d.down", si+1), 3, in, s.w, 2)
			for i := 0; i < s.n; i++ {
				tag := fmt.Sprintf("s%d.r%d", si+1, i+1)
				entry := b.Tail()[0]
				convBNLeaky(tag+".a", 1, s.w, s.w/2, 1)
				convBNLeaky(tag+".b", 3, s.w/2, s.w, 1)
				b.AddMerge(tag+".add", s.w, b.Tail()[0], entry)
			}
			in = s.w
		}
	default:
		panic(fmt.Sprintf("zoo: unknown darknet version %q", version))
	}
	b.GlobalAvgPool("gap", in)
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// Xception builds the depthwise-separable Xception network (Chollet): entry,
// middle and exit flows of separable-conv residual blocks.
func Xception(classes int, scope string) *model.Graph {
	b := model.NewBuilder("xception", "xception", scope)
	b.Input(3)
	b.Conv("stem.conv1", 3, 3, 32, 2)
	b.BN("stem.bn1", 32)
	b.ReLU("stem.relu1", 32)
	b.Conv("stem.conv2", 3, 32, 64, 1)
	b.BN("stem.bn2", 64)
	b.ReLU("stem.relu2", 64)

	sep := func(tag string, in, out int) int {
		b.Add(model.Operation{Name: tag + ".dw", Type: model.OpDepthwiseConv2D,
			Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: in, OutChannels: in, Stride: 1}})
		b.Conv(tag+".pw", 1, in, out, 1)
		b.BN(tag+".bn", out)
		return out
	}
	in := 64
	// Entry flow.
	for i, w := range []int{128, 256, 728} {
		tag := fmt.Sprintf("entry%d", i+1)
		entry := b.Tail()[0]
		if i > 0 {
			b.ReLU(tag+".relu1", in)
		}
		sep(tag+".sep1", in, w)
		b.ReLU(tag+".relu2", w)
		sep(tag+".sep2", w, w)
		b.MaxPool(tag+".pool", 3, w, 2)
		body := b.Tail()[0]
		b.SetTail(entry)
		b.Conv(tag+".sc", 1, in, w, 2)
		b.BN(tag+".scbn", w)
		b.AddMerge(tag+".add", w, body, b.Tail()[0])
		in = w
	}
	// Middle flow: 8 blocks of 3 separable convs.
	for i := 0; i < 8; i++ {
		tag := fmt.Sprintf("mid%d", i+1)
		entry := b.Tail()[0]
		for j := 0; j < 3; j++ {
			b.ReLU(fmt.Sprintf("%s.relu%d", tag, j+1), in)
			sep(fmt.Sprintf("%s.sep%d", tag, j+1), in, in)
		}
		b.AddMerge(tag+".add", in, b.Tail()[0], entry)
	}
	// Exit flow.
	entry := b.Tail()[0]
	b.ReLU("exit.relu1", in)
	sep("exit.sep1", in, 728)
	b.ReLU("exit.relu2", 728)
	sep("exit.sep2", 728, 1024)
	b.MaxPool("exit.pool", 3, 1024, 2)
	body := b.Tail()[0]
	b.SetTail(entry)
	b.Conv("exit.sc", 1, in, 1024, 2)
	b.BN("exit.scbn", 1024)
	b.AddMerge("exit.add", 1024, body, b.Tail()[0])
	sep("exit.sep3", 1024, 1536)
	b.ReLU("exit.relu3", 1536)
	sep("exit.sep4", 1536, 2048)
	b.ReLU("exit.relu4", 2048)
	b.GlobalAvgPool("gap", 2048)
	b.Dense("fc", 2048, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// Inception builds Inception-v3 or -v4 (Szegedy et al.): a conv stem
// followed by inception modules of parallel 1×1 / 3×3 / double-3×3 / pooled
// towers whose outputs are concatenated. The v4 variant is deeper.
func Inception(version, classes int, scope string) *model.Graph {
	b := model.NewBuilder(fmt.Sprintf("inceptionv%d", version), "inception", scope)
	b.Input(3)
	convBN := func(tag string, k, in, out, stride int) int {
		b.Conv(tag+".conv", k, in, out, stride)
		b.BN(tag+".bn", out)
		b.ReLU(tag+".relu", out)
		return out
	}
	in := convBN("stem1", 3, 3, 32, 2)
	in = convBN("stem2", 3, in, 32, 1)
	in = convBN("stem3", 3, in, 64, 1)
	b.MaxPool("stem.pool", 3, in, 2)
	in = convBN("stem4", 1, in, 80, 1)
	in = convBN("stem5", 3, in, 192, 1)
	b.MaxPool("stem.pool2", 3, in, 2)

	module := func(tag string, in, t1, t3, t5, tp int) int {
		entry := b.Tail()[0]
		a := convBN(tag+".t1", 1, in, t1, 1)
		aID := b.Tail()[0]
		b.SetTail(entry)
		convBN(tag+".t3a", 1, in, t3/2, 1)
		convBN(tag+".t3b", 3, t3/2, t3, 1)
		bID := b.Tail()[0]
		b.SetTail(entry)
		convBN(tag+".t5a", 1, in, t5/2, 1)
		convBN(tag+".t5b", 3, t5/2, t5, 1)
		convBN(tag+".t5c", 3, t5, t5, 1)
		cID := b.Tail()[0]
		b.SetTail(entry)
		b.AvgPool(tag+".pool", 3, in, 1)
		convBN(tag+".tp", 1, in, tp, 1)
		dID := b.Tail()[0]
		out := a + t3 + t5 + tp
		_ = a
		b.ConcatMerge(tag+".concat", out, aID, bID, cID, dID)
		return out
	}
	nA, nB, nC := 3, 4, 2
	if version == 4 {
		nA, nB, nC = 4, 7, 3
	}
	for i := 0; i < nA; i++ {
		in = module(fmt.Sprintf("a%d", i+1), in, 64, 96, 96, 64)
	}
	in = convBN("reduceA", 3, in, 384, 2)
	for i := 0; i < nB; i++ {
		in = module(fmt.Sprintf("b%d", i+1), in, 192, 224, 256, 128)
	}
	in = convBN("reduceB", 3, in, 1024, 2)
	for i := 0; i < nC; i++ {
		in = module(fmt.Sprintf("c%d", i+1), in, 256, 384, 512, 256)
	}
	b.GlobalAvgPool("gap", in)
	b.Add(model.Operation{Name: "drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: in}})
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}
