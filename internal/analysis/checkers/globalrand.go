package checkers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// globalrandAllowed are the math/rand package-level constructors that do
// not touch the runtime-seeded global source. Everything else at package
// level (Intn, Float64, Perm, Shuffle, Seed, ...) draws from shared global
// state and breaks fixed-seed reproducibility — randomness must thread an
// explicit seeded *rand.Rand, as internal/faults and internal/workload do.
var globalrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
	// math/rand/v2 constructors, should the module ever migrate.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Globalrand bans package-level math/rand functions everywhere in the
// module.
type Globalrand struct{}

// NewGlobalrand returns the checker (it has no configuration: the ban is
// global by design).
func NewGlobalrand() *Globalrand { return &Globalrand{} }

// Name implements analysis.Checker.
func (g *Globalrand) Name() string { return "globalrand" }

// Doc implements analysis.Checker.
func (g *Globalrand) Doc() string {
	return "bans package-level math/rand functions; thread a seeded *rand.Rand instead"
}

// Run implements analysis.Checker.
func (g *Globalrand) Run(p *analysis.Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, obj, ok := pkgFuncRef(p.Info, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc || globalrandAllowed[name] {
				return true
			}
			p.Reportf(g.Name(), sel.Pos(),
				"package-level rand.%s uses the global unseeded source: thread a seeded *rand.Rand", name)
			return true
		})
	}
}
