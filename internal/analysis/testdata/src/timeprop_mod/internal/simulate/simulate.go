// Package simulate is the virtual-time half of the timeprop module
// fixture: calls into tainted real-time helpers must be reported with
// their taint chains; clock-free helpers, virtual-internal calls, and
// direct time references (wallclock's domain) must stay silent here.
package simulate

import (
	"time"

	"repro/internal/clockutil"
)

type sim struct {
	now time.Duration
}

func (s *sim) step(t0 time.Time) {
	_ = clockutil.Elapsed(t0)  // want `call into clockutil\.Elapsed reaches time\.Since \(clockutil\.Elapsed → time\.Since\) from virtual-time package`
	_ = clockutil.Indirect(t0) // want `call into clockutil\.Indirect reaches time\.Since \(clockutil\.Indirect → clockutil\.Elapsed → time\.Since\)`
	_ = clockutil.Pure(3)
	s.now += localTick()
}

// localTick reads the clock directly inside the virtual package: that site
// is the wallclock checker's domain, and calls to localTick are
// virtual-to-virtual — timeprop stays silent on both.
func localTick() time.Duration { return time.Duration(time.Now().UnixNano()) }

// spawn and deferred still execute the tainted callee.
func (s *sim) spawn(t0 time.Time) {
	go clockutil.Elapsed(t0) // want `reaches time\.Since`
}

func (s *sim) deferred(t0 time.Time) {
	defer clockutil.Elapsed(t0) // want `reaches time\.Since`
}
