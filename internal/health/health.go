// Package health is a per-node health state machine for gray-failure
// detection, driven entirely by virtual-time observations from the simulator
// and gateway. A node moves healthy → suspect → quarantined → draining →
// recovered → healthy as EWMA latency and failure signals rise and clear;
// routing consults Avoid to skip quarantined and draining nodes so in-flight
// work drains instead of being dropped.
//
// Everything here is deterministic: signals are pure functions of the
// observation stream and transitions advance only on caller-supplied virtual
// instants, never the wall clock, so a seeded run replays the exact same
// health episodes.
package health

import (
	"fmt"
	"time"
)

// State is a node's position in the health lifecycle.
type State uint8

const (
	// Healthy nodes route normally.
	Healthy State = iota
	// Suspect nodes keep routing but are one sustained bad signal away from
	// quarantine.
	Suspect
	// Quarantined nodes receive no new work; in-flight and queued requests
	// keep running.
	Quarantined
	// Draining nodes are quarantined nodes past their quarantine window,
	// waiting for the last in-flight request to finish.
	Draining
	// Recovered nodes route again but are on probation: a clean streak
	// returns them to healthy, a relapse sends them straight back to suspect.
	Recovered
	stateCount
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Draining:
		return "draining"
	case Recovered:
		return "recovered"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// parseState inverts String for checkpoint restore. Unknown names restore as
// Suspect: routable, but one sustained bad signal from quarantine — the
// conservative reading of a state this build does not know.
func parseState(s string) State {
	for st := Healthy; st < stateCount; st++ {
		if st.String() == s {
			return st
		}
	}
	return Suspect
}

// Config parameterizes the tracker. The zero value disables tracking
// (New returns nil).
type Config struct {
	// Enabled turns health tracking on.
	Enabled bool
	// ObserveOnly keeps the tracker's signals and episodes but makes Avoid
	// always report false, so routing ignores health state. Used to measure
	// fault windows on a baseline run without changing its behavior.
	ObserveOnly bool
	// Alpha is the EWMA weight for new observations (default 0.2).
	Alpha float64
	// LatencyFactor flags a node whose latency EWMA exceeds this multiple of
	// the cluster-wide EWMA (default 3).
	LatencyFactor float64
	// FailureThreshold flags a node whose failure-rate EWMA exceeds it
	// (default 0.5).
	FailureThreshold float64
	// MinObservations is how many per-node observations the latency signal
	// needs before it is trusted (default 8). The failure signal has no
	// warm-up: failures are unambiguous.
	MinObservations int
	// SuspectStrikes consecutive flagged observations take a healthy (or
	// recovered) node to suspect (default 3).
	SuspectStrikes int
	// QuarantineStrikes further flagged observations take a suspect node to
	// quarantined (default 3).
	QuarantineStrikes int
	// ClearStreak consecutive clean observations return a suspect or
	// recovered node to healthy (default 16).
	ClearStreak int
	// QuarantineDuration is how long a node stays quarantined before it
	// starts draining (default 60 s).
	QuarantineDuration time.Duration
	// DrainTimeout bounds draining: a node that has not reported drained by
	// then is declared recovered anyway (default 30 s).
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.LatencyFactor <= 1 {
		c.LatencyFactor = 3
	}
	if c.FailureThreshold <= 0 || c.FailureThreshold > 1 {
		c.FailureThreshold = 0.5
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 8
	}
	if c.SuspectStrikes <= 0 {
		c.SuspectStrikes = 3
	}
	if c.QuarantineStrikes <= 0 {
		c.QuarantineStrikes = 3
	}
	if c.ClearStreak <= 0 {
		c.ClearStreak = 16
	}
	if c.QuarantineDuration <= 0 {
		c.QuarantineDuration = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Stats tallies lifecycle transitions over a run.
type Stats struct {
	// Suspects counts healthy/recovered→suspect transitions.
	Suspects int `json:"suspects"`
	// Quarantines counts suspect→quarantined transitions.
	Quarantines int `json:"quarantines"`
	// Drains counts quarantined→draining transitions.
	Drains int `json:"drains"`
	// Recoveries counts draining→recovered transitions.
	Recoveries int `json:"recoveries"`
	// Clears counts suspect/recovered→healthy transitions.
	Clears int `json:"clears"`
}

// Episode is one completed unhealthy window for a node: from the instant it
// left healthy to the instant it returned. Episode durations are the raw
// material for MTTR.
type Episode struct {
	Node  int
	Start time.Duration
	End   time.Duration
}

// Window is a cluster-level interval during which at least one node was
// unhealthy; goodput-during-fault is measured against these.
type Window struct {
	Start time.Duration
	End   time.Duration
}

type nodeHealth struct {
	state    State
	since    time.Duration // when the current state was entered
	latEWMA  float64       // nanoseconds
	failEWMA float64
	obs      int
	strikes  int // consecutive flagged observations
	streak   int // consecutive clean observations
	// episodeStart is when the node last left healthy; valid while unhealthy.
	episodeStart time.Duration
}

// Tracker maintains per-node health state. A nil *Tracker is valid and inert:
// Avoid reports false and the observe methods are no-ops, so callers thread
// it without nil checks. Not safe for concurrent use on its own; the
// simulator and Online both call it under their locks.
type Tracker struct {
	cfg   Config
	nodes []nodeHealth
	// clusterLat is the cluster-wide latency EWMA the per-node signal is
	// compared against.
	clusterLat float64
	clusterObs int
	stats      Stats
	episodes   []Episode
	// windows are closed cluster-level unhealthy intervals; openSince is the
	// start of the currently open one while unhealthyCount > 0.
	windows        []Window
	openSince      time.Duration
	unhealthyCount int
}

// New returns a tracker for n nodes, or nil when the config disables
// tracking.
func New(cfg Config, n int) *Tracker {
	if !cfg.Enabled || n <= 0 {
		return nil
	}
	return &Tracker{cfg: cfg.withDefaults(), nodes: make([]nodeHealth, n)}
}

// setState performs one transition, maintaining tallies, episodes, and
// cluster-level unhealthy windows.
func (t *Tracker) setState(node int, to State, now time.Duration) {
	h := &t.nodes[node]
	from := h.state
	if from == to {
		return
	}
	if from == Healthy {
		h.episodeStart = now
		if t.unhealthyCount == 0 {
			t.openSince = now
		}
		t.unhealthyCount++
	}
	if to == Healthy {
		t.episodes = append(t.episodes, Episode{Node: node, Start: h.episodeStart, End: now})
		t.unhealthyCount--
		if t.unhealthyCount == 0 {
			t.windows = append(t.windows, Window{Start: t.openSince, End: now})
		}
	}
	switch to {
	case Suspect:
		t.stats.Suspects++
	case Quarantined:
		t.stats.Quarantines++
	case Draining:
		t.stats.Drains++
	case Recovered:
		t.stats.Recoveries++
	case Healthy:
		t.stats.Clears++
	}
	h.state = to
	h.since = now
	h.strikes = 0
	h.streak = 0
	if to == Recovered {
		// Quarantine + drain is the recovery action (the node's containers
		// are gone); probation starts from fresh signals and re-detects a
		// still-sick node rather than re-condemning it on stale EWMAs.
		h.failEWMA = 0
		h.latEWMA = 0
		h.obs = 0
	}
}

// advance applies the time-driven transitions (quarantined→draining on the
// quarantine window elapsing, draining→recovered on the drain timeout) up to
// now. Signal-driven transitions happen in the observe methods.
func (t *Tracker) advance(node int, now time.Duration) {
	h := &t.nodes[node]
	if h.state == Quarantined && now-h.since >= t.cfg.QuarantineDuration {
		t.setState(node, Draining, h.since+t.cfg.QuarantineDuration)
	}
	if h.state == Draining && now-h.since >= t.cfg.DrainTimeout {
		t.setState(node, Recovered, h.since+t.cfg.DrainTimeout)
	}
}

// flagged reports whether the node's current signals exceed thresholds.
func (t *Tracker) flagged(h *nodeHealth) bool {
	if h.failEWMA > t.cfg.FailureThreshold {
		return true
	}
	return h.obs >= t.cfg.MinObservations && t.clusterObs >= t.cfg.MinObservations &&
		t.clusterLat > 0 && h.latEWMA > t.cfg.LatencyFactor*t.clusterLat
}

// observe folds one observation (a served request's latency, or a failure)
// into the node's signals and runs the signal-driven transitions.
func (t *Tracker) observe(node int, now time.Duration, latency time.Duration, failed bool) {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return
	}
	t.advance(node, now)
	h := &t.nodes[node]
	a := t.cfg.Alpha
	if failed {
		h.failEWMA = (1-a)*h.failEWMA + a
	} else {
		h.failEWMA = (1 - a) * h.failEWMA
		lat := float64(latency)
		if h.obs == 0 {
			h.latEWMA = lat
		} else {
			h.latEWMA = (1-a)*h.latEWMA + a*lat
		}
		h.obs++
		if t.clusterObs == 0 {
			t.clusterLat = lat
		} else {
			t.clusterLat = (1-a)*t.clusterLat + a*lat
		}
		t.clusterObs++
	}
	switch {
	case t.flagged(h):
		h.strikes++
		h.streak = 0
	case failed:
		// A failure below the EWMA threshold is not a strike, but it is
		// never "clean" either: it breaks the streak without striking.
		h.streak = 0
	default:
		h.streak++
		h.strikes = 0
	}
	switch h.state {
	case Healthy, Recovered:
		if h.strikes >= t.cfg.SuspectStrikes {
			t.setState(node, Suspect, now)
		} else if h.state == Recovered && h.streak >= t.cfg.ClearStreak {
			t.setState(node, Healthy, now)
		}
	case Suspect:
		if h.strikes >= t.cfg.QuarantineStrikes {
			t.setState(node, Quarantined, now)
		} else if h.streak >= t.cfg.ClearStreak {
			t.setState(node, Healthy, now)
		}
	}
	// Quarantined/Draining exit on time (or drain), not on signals: a node
	// receiving no new work generates no observations to clear itself with.
}

// ObserveServed folds a successfully served request's latency into the
// node's signals.
func (t *Tracker) ObserveServed(node int, now, latency time.Duration) {
	t.observe(node, now, latency, false)
}

// ObserveFailure folds a hard or gray failure (crash, outage, flaky-donor
// abort, hung transform) into the node's signals.
func (t *Tracker) ObserveFailure(node int, now time.Duration) {
	t.observe(node, now, 0, true)
}

// NoteDrained reports that the node's last in-flight request finished; a
// draining node becomes recovered immediately instead of waiting out the
// drain timeout.
func (t *Tracker) NoteDrained(node int, now time.Duration) {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return
	}
	t.advance(node, now)
	if t.nodes[node].state == Draining {
		t.setState(node, Recovered, now)
	}
}

// Avoid reports whether routing should skip the node at virtual time now:
// quarantined and draining nodes receive no new work. ObserveOnly trackers
// always report false (signals are kept, routing is unchanged).
func (t *Tracker) Avoid(node int, now time.Duration) bool {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return false
	}
	t.advance(node, now)
	if t.cfg.ObserveOnly {
		return false
	}
	st := t.nodes[node].state
	return st == Quarantined || st == Draining
}

// State returns the node's state at virtual time now.
func (t *Tracker) State(node int, now time.Duration) State {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return Healthy
	}
	t.advance(node, now)
	return t.nodes[node].state
}

// Stats returns a snapshot of the transition tallies.
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return t.stats
}

// Episodes returns the completed unhealthy episodes, in completion order.
func (t *Tracker) Episodes() []Episode {
	if t == nil {
		return nil
	}
	return append([]Episode(nil), t.episodes...)
}

// Windows returns the cluster-level unhealthy windows closed so far, plus the
// currently open one truncated at now, if any.
func (t *Tracker) Windows(now time.Duration) []Window {
	if t == nil {
		return nil
	}
	out := append([]Window(nil), t.windows...)
	if t.unhealthyCount > 0 && now > t.openSince {
		out = append(out, Window{Start: t.openSince, End: now})
	}
	return out
}

// MTTR is the mean time-to-recover over completed episodes (zero when none
// completed).
func (t *Tracker) MTTR() time.Duration {
	if t == nil || len(t.episodes) == 0 {
		return 0
	}
	var total time.Duration
	for _, e := range t.episodes {
		total += e.End - e.Start
	}
	return total / time.Duration(len(t.episodes))
}

// Summary is the run-level health digest surfaced in reports and artifacts.
type Summary struct {
	// Episodes is the completed unhealthy-episode count.
	Episodes int `json:"episodes"`
	// MTTRMS is the mean time-to-recover in milliseconds.
	MTTRMS float64 `json:"mttr_ms"`
	Stats
}

// Summarize builds the digest (zero value for a nil tracker).
func (t *Tracker) Summarize() Summary {
	if t == nil {
		return Summary{}
	}
	return Summary{
		Episodes: len(t.episodes),
		MTTRMS:   float64(t.MTTR()) / float64(time.Millisecond),
		Stats:    t.stats,
	}
}

// NodeSnapshot is one node's serializable health state, for checkpointing.
type NodeSnapshot struct {
	Node     int     `json:"node"`
	State    string  `json:"state"`
	SinceNS  int64   `json:"since_ns"`
	LatEWMA  float64 `json:"lat_ewma_ns"`
	FailEWMA float64 `json:"fail_ewma"`
	Obs      int     `json:"observations"`
	Strikes  int     `json:"strikes"`
	Streak   int     `json:"streak"`
	// EpisodeStartNS is the open episode's start; meaningful only while the
	// state is not healthy.
	EpisodeStartNS int64 `json:"episode_start_ns,omitempty"`
}

// Export snapshots every node's health state for a checkpoint.
func (t *Tracker) Export() []NodeSnapshot {
	if t == nil {
		return nil
	}
	out := make([]NodeSnapshot, len(t.nodes))
	for i := range t.nodes {
		h := &t.nodes[i]
		out[i] = NodeSnapshot{
			Node:           i,
			State:          h.state.String(),
			SinceNS:        int64(h.since),
			LatEWMA:        h.latEWMA,
			FailEWMA:       h.failEWMA,
			Obs:            h.obs,
			Strikes:        h.strikes,
			Streak:         h.streak,
			EpisodeStartNS: int64(h.episodeStart),
		}
	}
	return out
}

// Import restores node health from checkpoint snapshots taken at or before
// now. Restore reconciles rather than resets: a quarantined or draining node
// comes back quarantined or draining — never resurrected as healthy — and
// the time-driven exits then run from its restored `since` instant.
// Snapshots for nodes outside the tracker's range are ignored.
func (t *Tracker) Import(snaps []NodeSnapshot, now time.Duration) {
	if t == nil {
		return
	}
	for _, s := range snaps {
		if s.Node < 0 || s.Node >= len(t.nodes) {
			continue
		}
		st := parseState(s.State)
		h := &t.nodes[s.Node]
		wasHealthy := h.state == Healthy
		*h = nodeHealth{
			state:        st,
			since:        time.Duration(s.SinceNS),
			latEWMA:      s.LatEWMA,
			failEWMA:     s.FailEWMA,
			obs:          s.Obs,
			strikes:      s.Strikes,
			streak:       s.Streak,
			episodeStart: time.Duration(s.EpisodeStartNS),
		}
		// Keep the cluster-level unhealthy accounting consistent with the
		// restored states so goodput windows stay well-formed.
		if wasHealthy && st != Healthy {
			if t.unhealthyCount == 0 {
				t.openSince = h.episodeStart
			}
			t.unhealthyCount++
		} else if !wasHealthy && st == Healthy {
			t.unhealthyCount--
			if t.unhealthyCount == 0 {
				t.windows = append(t.windows, Window{Start: t.openSince, End: now})
			}
		}
		// Rebuild the latency baseline from restored nodes; without it a
		// restored sick node could not be re-flagged until the baseline
		// re-warms.
		if s.Obs > 0 {
			if t.clusterObs == 0 {
				t.clusterLat = s.LatEWMA
			}
			t.clusterObs += s.Obs
		}
	}
}

// Transition is one row of the lifecycle's transition table. Transitions is
// the authoritative list DESIGN.md's table is checked against by a guard
// test, so the doc cannot drift from the code.
type Transition struct {
	From    State
	To      State
	Trigger string
}

// Transitions returns the complete transition table.
func Transitions() []Transition {
	return []Transition{
		{Healthy, Suspect, "EWMA failure or latency signal flagged for SuspectStrikes consecutive observations"},
		{Suspect, Quarantined, "signal stays flagged for QuarantineStrikes further observations"},
		{Suspect, Healthy, "ClearStreak consecutive clean observations"},
		{Quarantined, Draining, "QuarantineDuration elapses (virtual time)"},
		{Draining, Recovered, "last in-flight request finishes, or DrainTimeout elapses"},
		{Recovered, Healthy, "ClearStreak consecutive clean observations (probation passed)"},
		{Recovered, Suspect, "signal flags again for SuspectStrikes observations (relapse)"},
	}
}
