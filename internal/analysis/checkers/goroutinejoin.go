package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Goroutinejoin requires every go statement to have a reachable join or
// termination signal: a WaitGroup.Done/Wait, a channel operation (send,
// receive, close, range, select), a sync.Cond Broadcast/Signal, or a
// context cancellation path. A spawned function with none of these —
// directly or through any statically reachable module function — is a
// goroutine whose lifetime nothing observes: under churn it accumulates,
// and in the simulator it outlives the virtual timeline it was spawned in.
// The checker is deliberately lenient where it cannot see: dynamic spawns
// (function values), calls through function values, and calls into
// bodyless externals all count as potentially joining, so only provably
// signal-free goroutines are reported.
type Goroutinejoin struct {
	memo map[*analysis.CallGraph]map[*analysis.CallNode]bool
}

// NewGoroutinejoin returns the checker.
func NewGoroutinejoin() *Goroutinejoin {
	return &Goroutinejoin{memo: make(map[*analysis.CallGraph]map[*analysis.CallNode]bool)}
}

// Name implements analysis.Checker.
func (c *Goroutinejoin) Name() string { return "goroutinejoin" }

// Doc implements analysis.Checker.
func (c *Goroutinejoin) Doc() string {
	return "requires every go statement to reach a join/termination signal (WaitGroup, channel op, context)"
}

// Run implements analysis.Checker.
func (c *Goroutinejoin) Run(p *analysis.Pass) {
	if p.CallGraph == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				c.checkGo(p, gs)
			}
			return true
		})
	}
}

func (c *Goroutinejoin) checkGo(p *analysis.Pass, gs *ast.GoStmt) {
	if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if lit.Body != nil && !c.bodySafe(p.CallGraph, p.Info, lit.Body, make(map[*analysis.CallNode]bool)) {
			c.report(p, gs, "function literal")
		}
		return
	}
	fn := analysis.StaticCallee(p.Info, gs.Call)
	if fn == nil {
		return // dynamic spawn: unresolvable, assume the caller joins it
	}
	node := p.CallGraph.Node(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return // external body: invisible, assume it terminates
	}
	if !c.nodeSafe(p.CallGraph, node, make(map[*analysis.CallNode]bool)) {
		c.report(p, gs, funcDisplay(fn))
	}
}

func (c *Goroutinejoin) report(p *analysis.Pass, gs *ast.GoStmt, what string) {
	p.Reportf(c.Name(), gs.Pos(),
		"go statement spawns %s with no reachable join or termination signal (WaitGroup.Done, channel op, close, select, context): the goroutine's lifetime is unobserved — add a join signal or bound it explicitly", what)
}

// nodeSafe reports whether the function's body (or anything it statically
// reaches) contains a join signal, memoized per call graph.
func (c *Goroutinejoin) nodeSafe(g *analysis.CallGraph, node *analysis.CallNode, visiting map[*analysis.CallNode]bool) bool {
	if m, ok := c.memo[g]; ok {
		if safe, done := m[node]; done {
			return safe
		}
	} else {
		c.memo[g] = make(map[*analysis.CallNode]bool)
	}
	if visiting[node] {
		return false // a recursion cycle contributes no signal of its own
	}
	visiting[node] = true
	defer delete(visiting, node)
	safe := c.bodySafe(g, node.Info, node.Decl.Body, visiting)
	c.memo[g][node] = safe
	return safe
}

// bodySafe scans one body (nested literals included — a signal inside a
// deferred closure still fires) for join signals, then follows static
// callees with visible bodies.
func (c *Goroutinejoin) bodySafe(g *analysis.CallGraph, info *types.Info, body *ast.BlockStmt, visiting map[*analysis.CallNode]bool) bool {
	sig := scanJoinSignals(info, body)
	if sig.signal || sig.dynamic {
		return true
	}
	for _, fn := range sig.callees {
		node := g.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			return true // bodyless external: invisible, lenient
		}
		if c.nodeSafe(g, node, visiting) {
			return true
		}
	}
	return false
}

// joinScan is the result of scanning one body for join signals.
type joinScan struct {
	// signal: a join/termination signal is syntactically present.
	signal bool
	// dynamic: a call through a function value was seen — anything could
	// happen there, so the scan is inconclusive and the checker stays
	// silent.
	dynamic bool
	// callees are the statically resolved callees, in source order, for
	// the transitive search.
	callees []*types.Func
}

// joinSyncMethods are the sync-package methods that count as join signals;
// other sync methods (Lock, Unlock, Add) are known non-signals and are
// neither signals nor lenient unknowns.
var joinSyncMethods = map[string]bool{
	"Done":      true,
	"Wait":      true,
	"Broadcast": true,
	"Signal":    true,
}

func scanJoinSignals(info *types.Info, body *ast.BlockStmt) joinScan {
	var s joinScan
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			s.signal = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				s.signal = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.signal = true
				}
			}
		case *ast.CallExpr:
			scanJoinCall(info, v, &s)
		}
		return true
	})
	return s
}

// scanJoinCall classifies one call during the signal scan.
func scanJoinCall(info *types.Info, call *ast.CallExpr, s *joinScan) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			if bi.Name() == "close" {
				s.signal = true
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fn := analysis.StaticCallee(info, call)
	if fn == nil {
		s.dynamic = true
		return
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sync":
			if joinSyncMethods[fn.Name()] {
				s.signal = true
			}
			return
		case "context":
			// ctx.Done(), cancellation helpers: context flow is a
			// termination discipline.
			s.signal = true
			return
		}
	}
	s.callees = append(s.callees, fn)
}
