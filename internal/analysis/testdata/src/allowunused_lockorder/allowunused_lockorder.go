// Package allowunused_lockorder carries a lockorder suppression on code
// that triggers no lockorder finding: the directive pipeline must report
// the directive itself as unused, so stale concurrency suppressions cannot
// outlive the hazard they once covered.
package allowunused_lockorder

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() {
	//optimus:allow lockorder — fixture: stale suppression, nothing to silence
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
