package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checkers"
)

// TestSelfLintSmoke runs the full registry over two real module packages —
// internal/metrics (pure virtual-time data plumbing) and internal/analysis
// itself (the linter lints its own framework) — and requires both clean.
// The CI lint job covers ./... end to end; this keeps a fast in-tree
// regression signal that the loader resolves module-local and stdlib
// imports offline.
func TestSelfLintSmoke(t *testing.T) {
	root, mod, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(root, mod, checkers.All(), []string{
		"./internal/metrics",
		"./internal/analysis/...",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
