package planner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/model"
	"repro/internal/zoo"
)

func exact() *cost.Estimator { return cost.Exact(cost.CPU()) }

// chain builds a small sequential model from (type, width) specs.
func chain(name string, specs ...model.Operation) *model.Graph {
	b := model.NewBuilder(name, "test", name)
	for _, s := range specs {
		b.Add(s)
	}
	return b.Graph()
}

func convOp(name string, k, in, out int) model.Operation {
	return model.Operation{Name: name, Type: model.OpConv2D,
		Shape: model.Shape{KernelH: k, KernelW: k, InChannels: in, OutChannels: out, Stride: 1}}
}

func reluOp(name string, w int) model.Operation {
	return model.Operation{Name: name, Type: model.OpReLU, Shape: model.Shape{OutChannels: w}}
}

func TestHungarianMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6) // matrix sizes 2..7
		mx := &Matrix{N: n / 2, M: n - n/2, c: make([]float64, n*n)}
		for i := 0; i < n*n; i++ {
			mx.c[i] = float64(rng.Intn(1000))
		}
		_, hCost := hungarian(mx)
		_, bCost := bruteForce(mx)
		if math.Abs(hCost-bCost) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute %v", trial, hCost, bCost)
		}
	}
}

func TestBruteForceRejectsLargeMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bruteForce accepted an oversized matrix")
		}
	}()
	n := bruteForceLimit + 1
	bruteForce(&Matrix{N: n, M: 0, c: make([]float64, n*n)})
}

func TestMatrixLayout(t *testing.T) {
	src := chain("s", convOp("c1", 3, 8, 8), reluOp("r1", 8))
	dst := chain("d", convOp("c1", 5, 8, 8))
	est := exact()
	mx := BuildMatrix(est, src, dst)
	if mx.N != 2 || mx.M != 1 || mx.Size() != 3 {
		t.Fatalf("matrix dims N=%d M=%d", mx.N, mx.M)
	}
	// Substitution conv→conv possible; relu→conv impossible.
	if mx.At(0, 0) >= big {
		t.Error("conv→conv substitution should be feasible")
	}
	if mx.At(1, 0) < big {
		t.Error("relu→conv substitution should be infeasible")
	}
	// Deletion diagonal finite, off-diagonal big.
	if mx.At(0, 1) >= big || mx.At(1, 2) >= big {
		t.Error("deletion diagonal should be finite")
	}
	if mx.At(0, 2) < big {
		t.Error("deletion off-diagonal should be big")
	}
	// Insertion row: diagonal finite.
	if mx.At(2, 0) >= big {
		t.Error("insertion diagonal should be finite")
	}
	// Bottom-right zero block.
	if mx.At(2, 1) != 0 || mx.At(2, 2) != 0 {
		t.Error("ε→ε block should be zero")
	}
}

// TestPlanOnIdenticalModels: a no-op transformation has zero cost and empty
// steps.
func TestPlanOnIdenticalModels(t *testing.T) {
	g := chain("m", convOp("c1", 3, 8, 16), reluOp("r1", 16), convOp("c2", 3, 16, 16))
	for _, algo := range []Algorithm{AlgoGroup, AlgoHungarian, AlgoBrute} {
		p := New(exact(), algo).Plan(g, g)
		if len(p.Steps) != 0 || p.EstCost != 0 {
			t.Errorf("%v: identical transform has %d steps, cost %v", algo, len(p.Steps), p.EstCost)
		}
		if p.LoadFromScratch {
			t.Errorf("%v: identical transform triggered safeguard", algo)
		}
	}
}

// TestPlanSameStructureDifferentWeights reproduces strawman Case 1: the plan
// is pure Replace and far cheaper than loading from scratch (Fig 5a).
func TestPlanSameStructureDifferentWeights(t *testing.T) {
	img := zoo.Imgclsmob()
	src := img.MustGet("resnet50-cifar10")
	dst := img.MustGet("resnet50-svhn")
	p := New(exact(), AlgoGroup).Plan(src, dst)
	if p.LoadFromScratch {
		t.Fatal("same-structure transform triggered safeguard")
	}
	for _, s := range p.Steps {
		if s.Kind != metaop.KindReplace {
			t.Fatalf("unexpected %v step in same-structure plan", s.Kind)
		}
	}
	if frac := float64(p.EstCost) / float64(p.ScratchCost); frac > 0.35 {
		t.Errorf("replace-only plan costs %.2f of scratch load, want ≪ 1", frac)
	}
}

// TestPlanReshapeCase reproduces strawman Case 2: same op counts, one conv
// kernel differs → single Reshape(+Replace), cheaper than scratch.
func TestPlanReshapeCase(t *testing.T) {
	src := chain("a", convOp("c1", 1, 8, 8), reluOp("r", 8), convOp("c2", 3, 8, 8))
	dst := chain("b", convOp("c1", 5, 8, 8), reluOp("r", 8), convOp("c2", 3, 8, 8))
	// Make the unchanged conv share weights so only the 1×1→5×5 edit remains.
	dst.Op(2).WeightsID = src.Op(2).WeightsID
	dst.Op(0).WeightsID = model.WeightsIDFor("b", "c1")

	p := New(exact(), AlgoHungarian).Plan(src, dst)
	counts := p.CountByKind()
	if counts[metaop.KindReshape] != 1 {
		t.Fatalf("want exactly 1 reshape, got %v", counts)
	}
	if counts[metaop.KindAdd] != 0 || counts[metaop.KindReduce] != 0 {
		t.Fatalf("no add/reduce expected, got %v", counts)
	}
	if p.LoadFromScratch {
		t.Fatal("reshape case triggered safeguard")
	}
	if err := metaop.Verify(cost.CPU(), p, src, dst); err != nil {
		t.Fatal(err)
	}
}

// TestPlanAddAndReduce: growing a model uses Add, shrinking uses Reduce, and
// shrinking is cheaper (the asymmetry observed in §8.2).
func TestPlanAddAndReduce(t *testing.T) {
	small := chain("small", convOp("c1", 3, 8, 8), reluOp("r1", 8))
	big := chain("big", convOp("c1", 3, 8, 8), reluOp("r1", 8),
		convOp("c2", 3, 8, 16), reluOp("r2", 16))
	big.Op(0).WeightsID = small.Op(0).WeightsID

	est := exact()
	grow := New(est, AlgoHungarian).Plan(small, big)
	shrink := New(est, AlgoHungarian).Plan(big, small)
	if grow.CountByKind()[metaop.KindAdd] != 2 { // conv c2 and relu r2
		t.Fatalf("grow plan: %v", grow.CountByKind())
	}
	if shrink.CountByKind()[metaop.KindReduce] != 2 {
		t.Fatalf("shrink plan: %v", shrink.CountByKind())
	}
	if shrink.EstCost >= grow.EstCost {
		t.Errorf("shrink (%v) should be cheaper than grow (%v)", shrink.EstCost, grow.EstCost)
	}
	for _, p := range []*metaop.Plan{grow, shrink} {
		dst := big
		src := small
		if p == shrink {
			src, dst = big, small
		}
		if err := metaop.Verify(cost.CPU(), p, src, dst); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupNearOptimal checks Module 2⁺ against the Hungarian optimum on
// real model pairs: the group plan must be within 15 % of optimal node cost
// (the paper reports "nearly optimal").
func TestGroupNearOptimal(t *testing.T) {
	img := zoo.Imgclsmob()
	est := exact()
	pairs := [][2]string{
		{"vgg16-imagenet", "vgg19-imagenet"},
		{"resnet18-imagenet", "resnet34-imagenet"},
		{"mobilenet-w1-imagenet", "mobilenet-w0.75-imagenet"},
	}
	for _, pr := range pairs {
		src, dst := img.MustGet(pr[0]), img.MustGet(pr[1])
		opt := New(est, AlgoHungarian).Plan(src, dst)
		grp := New(est, AlgoGroup).Plan(src, dst)
		if opt.EstCost == 0 {
			continue
		}
		ratio := float64(grp.EstCost) / float64(opt.EstCost)
		// Hungarian is optimal on node costs only; the group plan can edge it
		// out slightly on edge-rewiring costs, but never by much.
		if ratio < 0.90 {
			t.Errorf("%s→%s: group (%v) beat 'optimal' hungarian (%v) by >10%%", pr[0], pr[1], grp.EstCost, opt.EstCost)
		}
		if ratio > 1.15 {
			t.Errorf("%s→%s: group plan %.3f× optimal, want ≤ 1.15×", pr[0], pr[1], ratio)
		}
	}
}

// TestSafeguardCrossFamily: CNN↔transformer transformation always costs more
// than loading from scratch, so the safeguard fires (§8.2 observation 3).
func TestSafeguardCrossFamily(t *testing.T) {
	img, bert := zoo.Imgclsmob(), zoo.BERTZoo()
	src := img.MustGet("resnet50-imagenet")
	dst := bert.MustGet("bert-base-uncased")
	for _, algo := range []Algorithm{AlgoGroup, AlgoHungarian} {
		p := New(exact(), algo).Plan(src, dst)
		if !p.LoadFromScratch {
			t.Errorf("%v: CNN→transformer did not trigger safeguard (cost %v vs scratch %v)",
				algo, p.EstCost, p.ScratchCost)
		}
		// The safeguard path must still produce the destination model.
		if err := metaop.Verify(cost.CPU(), p, src, dst); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlansExecuteOnZooPairs: every plan over a sample of real model pairs
// executes to a graph Equal to the destination.
func TestPlansExecuteOnZooPairs(t *testing.T) {
	img := zoo.Imgclsmob()
	bert := zoo.BERTZoo()
	prof := cost.CPU()
	est := exact()
	names := []string{
		"vgg11-imagenet", "vgg19-imagenet", "resnet18-imagenet", "resnet50-imagenet",
		"densenet121-imagenet", "mobilenetv2-w1-imagenet", "xception-imagenet",
		"squeezenet-v1.0-cifar10", "shufflenet-w1-imagenet",
	}
	graphs := make([]*model.Graph, 0, len(names)+3)
	for _, n := range names {
		graphs = append(graphs, img.MustGet(n))
	}
	graphs = append(graphs, bert.MustGet("bert-tiny"), bert.MustGet("bert-base-uncased"), bert.MustGet("bert-base-qa"))

	for _, algo := range []Algorithm{AlgoGroup, AlgoHungarian} {
		pl := New(est, algo)
		for i, src := range graphs {
			dst := graphs[(i+1)%len(graphs)]
			p := pl.Plan(src, dst)
			if err := metaop.Verify(prof, p, src, dst); err != nil {
				t.Fatalf("%v %s→%s: %v", algo, src.Name, dst.Name, err)
			}
		}
	}
}

// TestSameFamilyCheaperThanCross pins the Fig 11 shape: transformation
// within a family beats transformation across families.
func TestSameFamilyCheaperThanCross(t *testing.T) {
	img := zoo.Imgclsmob()
	est := exact()
	pl := New(est, AlgoGroup)
	vgg16 := img.MustGet("vgg16-imagenet")
	vgg19 := img.MustGet("vgg19-imagenet")
	resnet50 := img.MustGet("resnet50-imagenet")
	within := pl.Plan(vgg19, vgg16)
	cross := pl.Plan(resnet50, vgg16)
	if within.EstCost >= cross.EstCost {
		t.Errorf("VGG19→VGG16 (%v) should beat ResNet50→VGG16 (%v)", within.EstCost, cross.EstCost)
	}
}

// TestTransformBeatsScratchWithinFamily pins the headline §8.2 result: the
// transformation is far cheaper than loading from scratch for similar models.
func TestTransformBeatsScratchWithinFamily(t *testing.T) {
	img := zoo.Imgclsmob()
	pl := New(exact(), AlgoGroup)
	pairs := [][2]string{
		{"vgg16-imagenet", "vgg19-imagenet"},
		{"resnet50-imagenet", "resnet101-imagenet"},
		{"densenet121-imagenet", "densenet169-imagenet"},
	}
	for _, pr := range pairs {
		src, dst := img.MustGet(pr[0]), img.MustGet(pr[1])
		p := pl.Plan(src, dst)
		if p.LoadFromScratch {
			t.Errorf("%s→%s triggered safeguard", pr[0], pr[1])
			continue
		}
		if frac := float64(p.EstCost) / float64(p.ScratchCost); frac > 0.7 {
			t.Errorf("%s→%s: transform %.2f of scratch, want < 0.7", pr[0], pr[1], frac)
		}
	}
}

// TestBERTDownstreamTransformCheap pins §5.2 Example 2: transforming between
// downstream-task variants of the same base is nearly free (head-only edits).
func TestBERTDownstreamTransformCheap(t *testing.T) {
	bert := zoo.BERTZoo()
	pl := New(exact(), AlgoGroup)
	sc := bert.MustGet("bert-base-sc")
	qa := bert.MustGet("bert-base-qa")
	p := pl.Plan(sc, qa)
	if p.LoadFromScratch {
		t.Fatal("SC→QA triggered safeguard")
	}
	if frac := float64(p.EstCost) / float64(p.ScratchCost); frac > 0.1 {
		t.Errorf("SC→QA costs %.3f of scratch, want < 0.1", frac)
	}
	// Large→small BERT should lean on Reduce (§5.2 Example 1).
	base := bert.MustGet("bert-base-uncased")
	mini := bert.MustGet("bert-mini")
	p2 := pl.Plan(base, mini)
	if p2.CountByKind()[metaop.KindReduce] == 0 {
		t.Error("base→mini plan uses no Reduce")
	}
	if err := metaop.Verify(cost.CPU(), p2, base, mini); err != nil {
		t.Fatal(err)
	}
}

func TestMappingCost(t *testing.T) {
	src := chain("s", convOp("c1", 3, 8, 8), reluOp("r", 8))
	dst := chain("d", convOp("c1", 3, 8, 8))
	dst.Op(0).WeightsID = src.Op(0).WeightsID
	est := exact()
	mp := Mapping{SrcToDst: []int{0, -1}}
	got := MappingCost(est, src, dst, mp)
	want := float64(est.ReduceCost(src.Op(1)))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MappingCost = %v, want %v", got, want)
	}
	// Cross-type mapping is infeasible.
	bad := Mapping{SrcToDst: []int{-1, 0}}
	if !math.IsInf(MappingCost(est, src, dst, bad), 1) {
		t.Error("cross-type mapping should cost +inf")
	}
}

func TestCache(t *testing.T) {
	img := zoo.Imgclsmob()
	src := img.MustGet("resnet18-imagenet")
	dst := img.MustGet("resnet34-imagenet")
	c := NewCache()
	pl := New(exact(), AlgoGroup)
	if _, ok := c.Get(src, dst); ok {
		t.Fatal("empty cache hit")
	}
	p1 := c.GetOrPlan(pl, src, dst)
	p2 := c.GetOrPlan(pl, src, dst)
	if p1 != p2 {
		t.Fatal("cache did not return the stored plan")
	}
	if c.Len() != 1 {
		t.Fatalf("cache Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", hits, misses)
	}
	// Same structure, different weights → different key.
	dst2 := img.MustGet("resnet34-cifar10")
	if _, ok := c.Get(src, dst2); ok {
		t.Fatal("cache confused different-weights destinations")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgoGroup.String() != "group" || AlgoHungarian.String() != "hungarian" || AlgoBrute.String() != "brute" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm should still render")
	}
}

// TestRNNTransforms covers §7's RNN compatibility: same-cell size changes
// reshape; LSTM↔GRU cannot substitute (different types) but still execute;
// CNN↔RNN hits the safeguard.
func TestRNNTransforms(t *testing.T) {
	rnn := zoo.RNNZoo()
	pl := New(exact(), AlgoGroup)
	prof := cost.CPU()

	small := rnn.MustGet("lstm-1x128")
	big := rnn.MustGet("lstm-2x256")
	p := pl.Plan(big, small)
	if p.LoadFromScratch {
		t.Fatal("LSTM size-ladder transform safeguarded")
	}
	if err := metaop.Verify(prof, p, big, small); err != nil {
		t.Fatal(err)
	}
	if frac := float64(p.EstCost) / float64(p.ScratchCost); frac > 0.7 {
		t.Errorf("within-family RNN transform %.2f of scratch", frac)
	}

	// LSTM → GRU: recurrent cells cannot substitute across types.
	gru := rnn.MustGet("gru-2x256")
	lstm := rnn.MustGet("lstm-2x256")
	p2 := pl.Plan(lstm, gru)
	if err := metaop.Verify(prof, p2, lstm, gru); err != nil {
		t.Fatal(err)
	}
	for _, s := range p2.Steps {
		if s.Kind == metaop.KindReshape && s.Dst.Type == model.OpGRU {
			t.Fatal("reshaped an LSTM into a GRU")
		}
	}

	// CNN ↔ RNN: safeguard.
	cnn := zoo.Imgclsmob().MustGet("resnet50-imagenet")
	if p3 := pl.Plan(cnn, gru); !p3.LoadFromScratch {
		t.Error("CNN→RNN should be safeguarded")
	}
}

// TestGPTTransforms: decoder models transform like the BERT ladder, and
// GPT↔BERT pairs share the transformer operation vocabulary well enough for
// attention-for-attention substitution, while CNN↔GPT stays safeguarded.
func TestGPTTransforms(t *testing.T) {
	gpt := zoo.GPTZoo()
	pl := New(exact(), AlgoGroup)
	prof := cost.CPU()

	big := gpt.MustGet("gpt2")
	small := gpt.MustGet("distilgpt2")
	p := pl.Plan(big, small)
	if p.LoadFromScratch {
		t.Fatal("gpt2→distilgpt2 safeguarded")
	}
	if err := metaop.Verify(prof, p, big, small); err != nil {
		t.Fatal(err)
	}
	// Distillation shares embeddings, so the plan should be far below scratch.
	if frac := float64(p.EstCost) / float64(p.ScratchCost); frac > 0.6 {
		t.Errorf("gpt2→distilgpt2 costs %.2f of scratch", frac)
	}
	// Cross-transformer (GPT→BERT): same op vocabulary, verify executes.
	bert := zoo.BERTZoo().MustGet("bert-base-uncased")
	p2 := pl.Plan(big, bert)
	if err := metaop.Verify(prof, p2, big, bert); err != nil {
		t.Fatal(err)
	}
	// CNN→GPT remains safeguarded.
	cnn := zoo.Imgclsmob().MustGet("resnet50-imagenet")
	if p3 := pl.Plan(cnn, big); !p3.LoadFromScratch {
		t.Error("CNN→GPT should be safeguarded")
	}
}
