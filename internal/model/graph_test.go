package model

import (
	"encoding/json"
	"strings"
	"testing"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("tiny", "test", "tiny")
	in := b.Input(3)
	b.Conv("c1", 3, 3, 16, 1)
	b.ReLU("r1", 16)
	b.Conv("c2", 3, 16, 32, 2)
	b.Output(32)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	_ = in
	return g
}

func TestGraphBasics(t *testing.T) {
	g := smallGraph(t)
	if got := g.NumOps(); got != 5 {
		t.Fatalf("NumOps = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge direction wrong")
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("topo order violates edge %v", e)
		}
	}
}

func TestGraphCycleDetected(t *testing.T) {
	g := NewGraph("cyc", "test")
	a := g.AddOp(Operation{Name: "a", Type: OpReLU, Shape: Shape{OutChannels: 1}})
	b := g.AddOp(Operation{Name: "b", Type: OpReLU, Shape: Shape{OutChannels: 1}})
	g.Connect(a.ID, b.ID)
	g.Connect(b.ID, a.ID)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a cyclic graph")
	}
}

func TestGraphValidateRejectsEmptyAndInvalid(t *testing.T) {
	if err := NewGraph("empty", "test").Validate(); err == nil {
		t.Error("Validate accepted empty graph")
	}
	g := NewGraph("bad", "test")
	g.AddOp(Operation{Name: "x", Type: OpInvalid})
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted invalid op type")
	}
	g2 := NewGraph("badw", "test")
	g2.AddOp(Operation{Name: "c", Type: OpConv2D}) // weighted, zero shape
	if err := g2.Validate(); err == nil {
		t.Error("Validate accepted weighted op with no weights")
	}
}

func TestConnectDisconnect(t *testing.T) {
	g := smallGraph(t)
	g.Connect(0, 2)
	if !g.HasEdge(0, 2) {
		t.Fatal("Connect failed")
	}
	n := g.NumEdges()
	g.Connect(0, 2) // duplicate ignored
	if g.NumEdges() != n {
		t.Fatal("duplicate edge changed edge count")
	}
	g.Disconnect(0, 2)
	if g.HasEdge(0, 2) || g.NumEdges() != n-1 {
		t.Fatal("Disconnect failed")
	}
	g.Disconnect(0, 2) // no-op
	if g.NumEdges() != n-1 {
		t.Fatal("double Disconnect changed edge count")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := smallGraph(t)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	c.Op(1).Shape.OutChannels = 999
	c.Disconnect(0, 1)
	if g.Op(1).Shape.OutChannels == 999 {
		t.Fatal("clone shares op storage with original")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("clone shares edge storage with original")
	}
}

func TestEqualAndStructuralEqual(t *testing.T) {
	g := smallGraph(t)
	c := g.Clone()
	c.Op(1).WeightsID = 12345
	if g.Equal(c) {
		t.Fatal("Equal ignored weight identity")
	}
	if !g.StructuralEqual(c) {
		t.Fatal("StructuralEqual should ignore weight identity")
	}
	c.Op(1).Shape.KernelH = 5
	c.Op(1).Shape.KernelW = 5
	if g.StructuralEqual(c) {
		t.Fatal("StructuralEqual ignored a shape change")
	}
}

func TestStructureHash(t *testing.T) {
	g := smallGraph(t)
	c := g.Clone()
	if g.StructureHash() != c.StructureHash() {
		t.Fatal("identical graphs hash differently")
	}
	c.Op(3).Shape.OutChannels = 64
	if g.StructureHash() == c.StructureHash() {
		t.Fatal("shape change did not change structure hash")
	}
	c2 := g.Clone()
	c2.Op(2).WeightsID = 777 // ReLU has no weights but field set anyway
	if g.StructureHash() != c2.StructureHash() {
		t.Fatal("weights change affected structure hash")
	}
	if g.WeightsHash() != c2.WeightsHash() {
		t.Fatal("non-weighted op's WeightsID affected weights hash")
	}
	c3 := g.Clone()
	c3.Op(1).WeightsID = 777
	if g.WeightsHash() == c3.WeightsHash() {
		t.Fatal("weighted op's WeightsID did not affect weights hash")
	}
}

func TestWeightCount(t *testing.T) {
	cases := []struct {
		op   Operation
		want int64
	}{
		{Operation{Type: OpConv2D, Shape: Shape{KernelH: 3, KernelW: 3, InChannels: 64, OutChannels: 128}}, 3*3*64*128 + 128},
		{Operation{Type: OpDepthwiseConv2D, Shape: Shape{KernelH: 3, KernelW: 3, InChannels: 64}}, 3*3*64 + 64},
		{Operation{Type: OpDense, Shape: Shape{InChannels: 512, OutChannels: 10}}, 512*10 + 10},
		{Operation{Type: OpBatchNorm, Shape: Shape{OutChannels: 64}}, 256},
		{Operation{Type: OpLayerNorm, Shape: Shape{OutChannels: 768}}, 1536},
		{Operation{Type: OpEmbedding, Shape: Shape{InChannels: 30522, OutChannels: 768}}, 30522 * 768},
		{Operation{Type: OpQuery, Shape: Shape{InChannels: 768, OutChannels: 768}}, 768*768 + 768},
		{Operation{Type: OpCRF, Shape: Shape{OutChannels: 9}}, 81},
		{Operation{Type: OpReLU, Shape: Shape{OutChannels: 64}}, 0},
		{Operation{Type: OpMaxPool, Shape: Shape{KernelH: 2, KernelW: 2, OutChannels: 64}}, 0},
	}
	for _, c := range cases {
		if got := c.op.WeightCount(); got != c.want {
			t.Errorf("%s WeightCount = %d, want %d", c.op.Type, got, c.want)
		}
		if got := c.op.WeightBytes(); got != 4*c.want {
			t.Errorf("%s WeightBytes = %d, want %d", c.op.Type, got, 4*c.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	for _, tt := range AllOpTypes() {
		if !tt.Valid() {
			t.Errorf("%v reported invalid", tt)
		}
	}
	if OpInvalid.Valid() || opTypeCount.Valid() {
		t.Error("sentinel types reported valid")
	}
	if !OpConv2D.HasWeights() || OpReLU.HasWeights() || OpAdd.HasWeights() {
		t.Error("HasWeights wrong")
	}
	if !OpReLU.IsActivation() || OpConv2D.IsActivation() {
		t.Error("IsActivation wrong")
	}
	if !OpQuery.IsTransformer() || OpConv2D.IsTransformer() {
		t.Error("IsTransformer wrong")
	}
}

func TestOpTypeRoundTrip(t *testing.T) {
	for _, tt := range AllOpTypes() {
		got, err := OpTypeFromString(tt.String())
		if err != nil {
			t.Fatalf("OpTypeFromString(%q): %v", tt.String(), err)
		}
		if got != tt {
			t.Fatalf("round trip %v -> %q -> %v", tt, tt.String(), got)
		}
	}
	if _, err := OpTypeFromString("bogus"); err == nil {
		t.Fatal("OpTypeFromString accepted bogus name")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := smallGraph(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !g.Equal(&back) {
		t.Fatal("JSON round trip lost information")
	}
	if back.Name != g.Name || back.Family != g.Family {
		t.Fatal("JSON round trip lost metadata")
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"name":"x","ops":[{"name":"a","type":"nope"}],"edges":[]}`), &g); err == nil {
		t.Error("accepted unknown op type")
	}
	if err := json.Unmarshal([]byte(`{"name":"x","ops":[{"name":"a","type":"relu","out":1}],"edges":[[0,5]]}`), &g); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if err := json.Unmarshal([]byte(`{{`), &g); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestStats(t *testing.T) {
	g := smallGraph(t)
	st := g.Stats()
	if st.Ops != 5 || st.Edges != 4 {
		t.Fatalf("Stats ops/edges = %d/%d", st.Ops, st.Edges)
	}
	if st.WeightedOps != 2 {
		t.Fatalf("WeightedOps = %d, want 2", st.WeightedOps)
	}
	wantParams := int64(3*3*3*16+16) + int64(3*3*16*32+32)
	if st.Params != wantParams {
		t.Fatalf("Params = %d, want %d", st.Params, wantParams)
	}
	if st.Bytes != 4*wantParams {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, 4*wantParams)
	}
	if st.ByType[OpConv2D] != 2 || st.ByType[OpReLU] != 1 {
		t.Fatalf("ByType wrong: %v", st.ByType)
	}
}

func TestWeightsIDFor(t *testing.T) {
	a := WeightsIDFor("bert-base", "blk0.query")
	b := WeightsIDFor("bert-base", "blk0.query")
	c := WeightsIDFor("bert-base", "blk1.query")
	d := WeightsIDFor("bert-mini", "blk0.query")
	if a != b {
		t.Error("WeightsIDFor not deterministic")
	}
	if a == c || a == d {
		t.Error("WeightsIDFor collisions across tensors/scopes")
	}
	if a == 0 {
		t.Error("WeightsIDFor returned reserved zero")
	}
}

func TestBuilderBranches(t *testing.T) {
	b := NewBuilder("branchy", "test", "")
	in := b.Input(8)
	left := b.Conv("l", 3, 8, 8, 1)
	b.SetTail(in)
	right := b.Conv("r", 1, 8, 8, 1)
	merged := b.AddMerge("add", 8, left, right)
	b.Output(8)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !g.HasEdge(left, merged) || !g.HasEdge(right, merged) {
		t.Fatal("merge edges missing")
	}
	if !g.HasEdge(in, left) || !g.HasEdge(in, right) {
		t.Fatal("branch edges missing")
	}
	// Builder-assigned weight IDs should be deterministic per scope.
	b2 := NewBuilder("branchy", "test", "")
	b2.Input(8)
	l2 := b2.Conv("l", 3, 8, 8, 1)
	if g.Op(left).WeightsID != b2.Graph().Op(l2).WeightsID {
		t.Fatal("builder weight IDs not deterministic")
	}
}

func TestConnectPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Connect out of range did not panic")
		}
	}()
	g := NewGraph("x", "test")
	g.AddOp(Operation{Name: "a", Type: OpReLU, Shape: Shape{OutChannels: 1}})
	g.Connect(0, 3)
}

func TestDOT(t *testing.T) {
	g := smallGraph(t)
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed DOT output: %q", dot)
	}
	for _, op := range g.Ops() {
		if !strings.Contains(dot, op.Name) {
			t.Errorf("DOT missing op %s", op.Name)
		}
	}
	if !strings.Contains(dot, "n0 -> n1") {
		t.Error("DOT missing edges")
	}
	// Weighted ops are boxes; weight-free ellipses.
	if !strings.Contains(dot, "shape=box") || !strings.Contains(dot, "shape=ellipse") {
		t.Error("DOT shapes missing")
	}
}
