package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// Recovery experiment: sweep the transform-failure intensity and compare an
// unsupervised cluster against one running the full supervision layer
// (watchdog + per-pair circuit breaker + the gray-failure resilience stack).
// At intensity r, transforms abort with probability r, hang with probability
// r/2, and donors turn flaky with probability r/4; the supervised run cancels
// hangs at 2× the planned cost, opens a pair's breaker after 3 consecutive
// failures, and routes around quarantined nodes with backoff and hedging.
// Both configurations track node health (the base one in observe-only mode)
// so MTTR is measured for each. Deterministic given the seed.

// BenchRecoveryFile is the artifact `optimus-bench recovery` emits;
// `make check` and CI validate its contents.
const BenchRecoveryFile = "BENCH_recovery.json"

// RecoveryPoint is one fault-intensity measurement for one configuration.
type RecoveryPoint struct {
	// Rate is the injected transform-abort probability (hangs at Rate/2,
	// flaky donors at Rate/4).
	Rate float64 `json:"rate"`
	// Supervised marks the watchdog+breaker+resilience configuration.
	Supervised bool          `json:"supervised"`
	Served     int           `json:"served"`
	Mean       time.Duration `json:"mean_ns"`
	P99        time.Duration `json:"p99_ns"`
	// Transform, Fallback, Timeout and Breaker are start-kind shares.
	Transform float64 `json:"transform"`
	Fallback  float64 `json:"fallback"`
	Timeout   float64 `json:"timeout"`
	Breaker   float64 `json:"breaker"`
	// PostRestoreHit is the warm-path share (warm + transform + hedged) of
	// requests arriving in the second half of the horizon — after the early
	// fault churn, how warm did the cluster recover?
	PostRestoreHit float64 `json:"post_restore_hit"`
	// MTTRMS and Episodes summarize the health tracker's unhealthy episodes.
	MTTRMS   float64 `json:"mttr_ms"`
	Episodes int     `json:"episodes"`
	// Faults tallies the injected failures and recoveries.
	Faults metrics.FaultStats `json:"faults"`
	// BreakerStats summarizes breaker transitions (supervised runs only).
	BreakerStats supervisor.BreakerStats `json:"breaker_stats"`
}

// RecoveryResult pairs the base and supervised degradation curves.
type RecoveryResult struct {
	Seed   int64           `json:"seed"`
	Points []RecoveryPoint `json:"points"`
}

// Recovery runs the supervision sweep under the Optimus policy (default
// rates 0, 0.1, 0.2, 0.4) over a shared Poisson workload.
func Recovery(o Options, rates []float64, horizon time.Duration) RecoveryResult {
	o = o.withDefaults()
	if len(rates) == 0 {
		rates = []float64{0, 0.1, 0.2, 0.4}
	}
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	if o.Quick && horizon > 6*time.Hour {
		horizon = 6 * time.Hour
	}
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, horizon, o.Seed)

	res := RecoveryResult{Seed: o.Seed}
	for _, r := range rates {
		for _, supervised := range []bool{false, true} {
			cfg := simulate.Config{
				Policy:            policy.Optimus{},
				Nodes:             4,
				ContainersPerNode: 4,
				Profile:           o.Profile,
				Seed:              o.Seed,
				Faults: faults.Rates{
					Transform: r,
					Hang:      r / 2,
					Flaky:     r / 4,
				},
				// Health tracks both configurations so MTTR is comparable;
				// only the supervised one lets it steer routing.
				Health: health.Config{Enabled: true, ObserveOnly: !supervised},
			}
			if supervised {
				cfg.WatchdogFactor = 2
				cfg.Breaker = supervisor.BreakerConfig{Threshold: 3, Cooldown: 10 * time.Minute}
				cfg.Retry = supervisor.BackoffConfig{Base: 50 * time.Millisecond}
				cfg.Hedge = supervisor.HedgeConfig{Percentile: 90, MinSamples: 2}
			}
			sim := simulate.New(cfg, fns)
			col, err := sim.Run(tr)
			if err != nil {
				panic(err)
			}
			fr := col.KindFractions()
			sum := sim.Health().Summarize()
			res.Points = append(res.Points, RecoveryPoint{
				Rate:           r,
				Supervised:     supervised,
				Served:         col.Len(),
				Mean:           col.MeanLatency(),
				P99:            col.Percentile(99),
				Transform:      fr[metrics.StartTransform],
				Fallback:       fr[metrics.StartFallback],
				Timeout:        fr[metrics.StartTimeout],
				Breaker:        fr[metrics.StartBreaker],
				PostRestoreHit: postRestoreHit(col.Records(), horizon),
				MTTRMS:         sum.MTTRMS,
				Episodes:       sum.Episodes,
				Faults:         col.Faults,
				BreakerStats:   sim.Breaker().Stats(),
			})
		}
	}
	return res
}

// postRestoreHit measures the warm-path share (warm + transform + hedged
// starts) of requests arriving in the second half of the horizon.
func postRestoreHit(recs []metrics.Record, horizon time.Duration) float64 {
	half := horizon / 2
	served, hits := 0, 0
	for _, r := range recs {
		if r.Arrival < half {
			continue
		}
		served++
		switch r.Kind {
		case metrics.StartWarm, metrics.StartTransform, metrics.StartHedge:
			hits++
		}
	}
	if served == 0 {
		return 0
	}
	return float64(hits) / float64(served)
}

// WriteFile persists the artifact into dir, creating it if needed.
func (r RecoveryResult) WriteFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("recovery: creating %s: %w", dir, err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, BenchRecoveryFile)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("recovery: writing %s: %w", path, err)
	}
	return nil
}

// Render prints the paired degradation curves.
func (r RecoveryResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		mode := "base"
		if p.Supervised {
			mode = "supervised"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Rate),
			mode,
			fmt.Sprint(p.Served),
			ms(p.Mean), ms(p.P99),
			pct(p.Transform), pct(p.Fallback), pct(p.Timeout), pct(p.Breaker),
			pct(p.PostRestoreHit),
			fmt.Sprintf("%.0f", p.MTTRMS),
			fmt.Sprint(p.Faults.Hangs),
			fmt.Sprint(p.Faults.WatchdogCancels),
			fmt.Sprint(p.BreakerStats.Opens),
		})
	}
	return "Extension: supervised recovery sweep (transform aborts at rate, hangs at rate/2, flaky donors at rate/4; supervised = watchdog 2x + breaker N=3 + health/backoff/hedging)\n" +
		table([]string{"rate", "mode", "served", "mean(ms)", "p99(ms)", "transform", "fallback", "timeout", "breaker", "post-hit", "mttr(ms)", "hangs", "wd-cancel", "opens"}, rows)
}
