package fanout

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWaveSchedulingStress hammers one tree from many goroutines —
// schedulers starting and completing children, a killer downing donors
// mid-wave, and readers snapshotting stats — to let the race detector check
// the tree's locking. Scheduling decisions under concurrency are not
// deterministic (the engine serializes for that); this test only asserts the
// bookkeeping invariants survive.
func TestConcurrentWaveSchedulingStress(t *testing.T) {
	tr := New(Config{Bandwidth: 2, MaxRecipients: 64}, "fn", 64, 0)
	for n := 0; n < 4; n++ {
		tr.AddSeed(n)
	}
	nodes := []int{0, 1, 2, 3}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			now := time.Duration(seed)
			for i := 0; i < 400; i++ {
				child, _, ok := tr.StartRecipient(nodes)
				if ok {
					if a, assigned := tr.StructDone(child, nil); assigned {
						now += time.Millisecond
						tr.Complete(a.Child, now, rng.Intn(20) == 0)
					} else if rng.Intn(4) == 0 {
						tr.ToFallback(child, false)
						now += time.Millisecond
						tr.Complete(child, now, false)
					}
				}
				for _, a := range tr.PumpPending(nil) {
					now += time.Millisecond
					tr.Complete(a.Child, now, false)
				}
			}
		}(int64(g) + 1)
	}
	// Killer: down random members mid-wave; the tree must re-parent or park
	// their orphans without corrupting its accounting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			ms := tr.Members()
			if len(ms) == 0 {
				continue
			}
			id := rng.Intn(len(ms))
			if ms[id].Seed && rng.Intn(2) == 0 {
				continue // keep some seeds alive so the tree can make progress
			}
			if rng.Intn(2) == 0 {
				tr.DonorLost(id, nil, true)
			} else {
				tr.MemberLost(id, nil)
			}
		}
	}()
	// Reader: concurrent snapshots must never tear.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = tr.Stats()
			_ = tr.Done()
			for _, n := range nodes {
				if s := tr.Streams(n); s < 0 {
					t.Errorf("negative stream count %d on node %d", s, n)
					return
				}
			}
		}
	}()
	wg.Wait()

	st := tr.Stats()
	if st.Recipients < 0 || st.Quarantined < 0 || st.Reparents < 0 {
		t.Fatalf("accounting went negative: %+v", st)
	}
	for _, n := range nodes {
		if s := tr.Streams(n); s < 0 || s > tr.cfg.Bandwidth {
			t.Fatalf("node %d ended with %d streams (bandwidth %d)", n, s, tr.cfg.Bandwidth)
		}
	}
}
