package simulate

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Online serves invocations one at a time against live cluster state, for
// interactive use (the REST gateway) as opposed to trace replay. Callers
// supply a monotonically non-decreasing `now`; Online never sleeps — if no
// container is free the request's wait time is computed from the earliest
// completion.
//
// Online is safe for concurrent use.
type Online struct {
	mu  sync.Mutex
	sim *Simulator
}

// NewOnline builds an online server over the given functions.
func NewOnline(cfg Config, fns []*Function) *Online {
	return &Online{sim: New(cfg, fns)}
}

// AddFunction registers a new function at runtime. Registering a name twice
// replaces the model (a redeploy).
func (o *Online) AddFunction(f *Function) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sim.fns[f.Name] = f
}

// RemoveFunction unregisters a function; its containers are left to expire
// through keep-alive.
func (o *Online) RemoveFunction(name string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.sim.fns, name)
}

// Snapshot returns a copy of the cluster's node/container state at `now`
// (containers are shared pointers; callers must treat them as read-only).
func (o *Online) Snapshot(now time.Duration) []*Node {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Node, len(o.sim.nodes))
	copy(out, o.sim.nodes)
	return out
}

// Functions returns the registered function names.
func (o *Online) Functions() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.sim.fns))
	for n := range o.sim.fns {
		out = append(out, n)
	}
	return out
}

// Function returns a registered function by name.
func (o *Online) Function(name string) (*Function, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.sim.fns[name]
	return f, ok
}

// Env exposes the policy environment (planner, plan cache).
func (o *Online) Env() *Env { return o.sim.env }

// Collector returns the accumulated request metrics.
func (o *Online) Collector() *metrics.Collector { return o.sim.Collector() }

// Invoke serves one request for the named function arriving at `now`
// (an offset from server start) and returns its record. If every container
// is busy, the request waits for the earliest completion on its routed node.
func (o *Online) Invoke(name string, now time.Duration) (metrics.Record, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.sim
	fn, ok := s.fns[name]
	if !ok {
		return metrics.Record{}, fmt.Errorf("simulate: unknown function %q", name)
	}
	if now < s.clock {
		now = s.clock // clock is monotone
	}
	s.clock = now
	s.observeArrival(fn, now)
	node := s.route(fn)

	start := now
	for {
		node.EvictExpired(start, s.env.KeepAlive)
		d, ok := s.cfg.Policy.Serve(s.env, node, fn, start)
		if ok {
			c := d.Reuse
			if c == nil {
				c = node.newContainer(fn, s.env.GrantFor(fn), start)
			} else if s.env.MemoryMode == MemoryFineGrained {
				c.MemMB = s.env.GrantFor(fn)
			}
			c.Fn = fn
			compute := s.env.Profile.Compute(fn.Model)
			end := start + d.Init + d.Load + compute
			c.BusyUntil = end
			c.LastDone = end
			rec := metrics.Record{
				Function: fn.Name,
				Kind:     d.Kind,
				Arrival:  now,
				Start:    start,
				End:      end,
				Wait:     start - now,
				Init:     d.Init,
				Load:     d.Load,
				Compute:  compute,
			}
			s.collector.Add(rec)
			return rec, nil
		}
		// Everything busy: jump to the node's earliest completion.
		next := time.Duration(-1)
		for _, c := range node.Containers {
			if c.BusyUntil > start && (next < 0 || c.BusyUntil < next) {
				next = c.BusyUntil
			}
		}
		if next < 0 {
			return metrics.Record{}, fmt.Errorf("simulate: node %d cannot serve %q", node.ID, name)
		}
		start = next
	}
}
