package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Traces persist as two-column CSV — nanosecond arrival offset, function
// name — so generated workloads can be archived, inspected with standard
// tools, and replayed bit-for-bit (the role the Azure trace file plays for
// the paper's testbed).

// WriteCSV writes the trace to w. The first record is a header; the last is
// a pseudo-record carrying the trace horizon.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ns", "function"}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	for _, r := range t.Requests {
		rec := []string{strconv.FormatInt(r.At.Nanoseconds(), 10), r.Function}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing trace: %w", err)
		}
	}
	if err := cw.Write([]string{strconv.FormatInt(t.Duration.Nanoseconds(), 10), "#horizon"}); err != nil {
		return fmt.Errorf("workload: writing trace horizon: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Requests are re-sorted, so
// hand-edited files need not stay ordered.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(recs) == 0 || recs[0][0] != "at_ns" {
		return nil, fmt.Errorf("workload: missing trace header")
	}
	t := &Trace{}
	for _, rec := range recs[1:] {
		us, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad arrival %q: %w", rec[0], err)
		}
		at := time.Duration(us)
		if rec[1] == "#horizon" {
			t.Duration = at
			continue
		}
		t.Requests = append(t.Requests, Request{Function: rec[1], At: at})
	}
	sortTrace(t)
	if t.Duration == 0 && len(t.Requests) > 0 {
		t.Duration = t.Requests[len(t.Requests)-1].At + time.Second
	}
	for _, r := range t.Requests {
		if r.At < 0 || r.At > t.Duration {
			return nil, fmt.Errorf("workload: arrival %v outside horizon %v", r.At, t.Duration)
		}
	}
	return t, nil
}

// Functions returns the distinct function names appearing in the trace,
// sorted.
func (t *Trace) Functions() []string {
	seen := make(map[string]bool)
	for _, r := range t.Requests {
		seen[r.Function] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
