package simulate_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/fanout"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// fanoutBurst builds the canonical tree-trigger workload: one function pinned
// to node 0, pre-warmed by a single request, then hit by a burst that
// saturates the pinned node's two slots and queues deep enough to cross the
// trigger threshold — while the other nodes hold the free capacity the tree
// builds replicas into.
func fanoutBurst(t *testing.T, burst int) ([]*simulate.Function, *workload.Trace) {
	t.Helper()
	const name = "resnet18-imagenet"
	reqs := []workload.Request{{Function: name, At: 0}}
	at := 5 * time.Minute
	for i := 0; i < burst; i++ {
		reqs = append(reqs, workload.Request{Function: name, At: at + time.Duration(i)*time.Millisecond})
	}
	return testFunctions(t, name), &workload.Trace{Duration: at + 2*time.Hour, Requests: reqs}
}

func fanoutConfig(fc fanout.Config) simulate.Config {
	fc.Enabled = true
	return simulate.Config{
		Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 2, Seed: 7,
		Placement: map[string][]int{"resnet18-imagenet": {0}},
		Fanout:    fc,
	}
}

func runFanout(t *testing.T, cfg simulate.Config, fns []*simulate.Function, tr *workload.Trace) (*metrics.Collector, *simulate.Simulator) {
	t.Helper()
	sim := simulate.New(cfg, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return col, sim
}

// warmSet summarizes the cluster's final container population: how many
// containers per node hold each function.
func warmSet(sim *simulate.Simulator) map[string][]int {
	out := make(map[string][]int)
	nodes := sim.Nodes()
	for i, n := range nodes {
		for _, c := range n.Containers {
			if out[c.Fn.Name] == nil {
				out[c.Fn.Name] = make([]int, len(nodes))
			}
			out[c.Fn.Name][i]++
		}
	}
	return out
}

func TestFanoutAbsorbsBurstBeyondPlacement(t *testing.T) {
	fns, tr := fanoutBurst(t, 40)
	cfg := fanoutConfig(fanout.Config{})
	col, _ := runFanout(t, cfg, fns, tr)

	fs := col.Fanout
	if fs.Trees != 1 {
		t.Fatalf("Trees = %d, want 1 (fanout stats: %+v)", fs.Trees, fs)
	}
	if fs.Recipients == 0 || fs.TimeToWarm == 0 {
		t.Fatalf("tree built nothing: %+v", fs)
	}
	if fs.Waves < 2 {
		t.Errorf("a multi-replica tree should take at least 2 waves: %+v", fs)
	}
	if col.Len() != tr.Len() {
		t.Fatalf("served %d of %d", col.Len(), tr.Len())
	}
	// The function is pinned to node 0, so only stolen requests can reach the
	// replicas — every replica's first service shows up as a fanout start.
	if col.KindFractions()[metrics.StartFanout] == 0 {
		t.Fatal("no request was served by a fan-out-built replica")
	}

	// The same burst without a tree drains serially through node 0's two
	// slots; the tree's stolen requests must improve mean latency.
	plain := cfg
	plain.Fanout = fanout.Config{}
	pcol, _ := runFanout(t, plain, fns, tr)
	if pcol.Fanout.Trees != 0 {
		t.Fatalf("fanout disabled but trees triggered: %+v", pcol.Fanout)
	}
	if col.MeanLatency() >= pcol.MeanLatency() {
		t.Errorf("fan-out did not absorb the burst: mean %v with trees vs %v without",
			col.MeanLatency(), pcol.MeanLatency())
	}
}

// TestFanoutZeroFaultMatchesIndependentBaseline is the fixed-seed property
// test: with no faults and a burst small enough to drain before any replica
// completes, the pipelined tree and the serial independent baseline must
// produce a byte-identical final warm set and byte-identical request metrics
// — they build the same replicas, only donor scheduling differs — while the
// tree reaches target warmth strictly sooner.
func TestFanoutZeroFaultMatchesIndependentBaseline(t *testing.T) {
	fns, tr := fanoutBurst(t, 6)
	fc := fanout.Config{Threshold: 2, MaxRecipients: 6}
	tcol, tsim := runFanout(t, fanoutConfig(fc), fns, tr)
	fc.Independent = true
	icol, isim := runFanout(t, fanoutConfig(fc), fns, tr)

	if !reflect.DeepEqual(warmSet(tsim), warmSet(isim)) {
		t.Errorf("final warm sets diverged:\ntree: %v\nindependent: %v",
			warmSet(tsim), warmSet(isim))
	}
	tr1, tr2 := tcol.Records(), icol.Records()
	if len(tr1) != len(tr2) {
		t.Fatalf("record counts diverged: %d vs %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, tr1[i], tr2[i])
		}
	}
	if tcol.Faults != icol.Faults {
		t.Errorf("fault stats diverged: %+v vs %+v", tcol.Faults, icol.Faults)
	}
	tf, ifs := tcol.Fanout, icol.Fanout
	if tf.Trees != ifs.Trees || tf.TreesCompleted != ifs.TreesCompleted || tf.Recipients != ifs.Recipients {
		t.Errorf("tree shapes diverged: %+v vs %+v", tf, ifs)
	}
	if tf.TreesCompleted != 1 || tf.Recipients != 6 {
		t.Fatalf("tree did not complete its 6 recipients: %+v", tf)
	}
	if tf.TimeToWarm >= ifs.TimeToWarm {
		t.Errorf("pipelined waves not faster than serial donation: %v vs %v",
			tf.TimeToWarm, ifs.TimeToWarm)
	}
}

func TestFanoutDonorCrashReparents(t *testing.T) {
	fns, tr := fanoutBurst(t, 40)
	cfg := fanoutConfig(fanout.Config{})
	cfg.Faults = faults.Rates{FanoutCrash: 0.5}
	col, _ := runFanout(t, cfg, fns, tr)

	fs := col.Fanout
	if fs.DonorCrashes == 0 {
		t.Fatalf("rate-0.5 donor crashes never fired: %+v", fs)
	}
	if fs.Reparents == 0 {
		t.Fatalf("donor crashes orphaned no one (or orphans were not re-parented): %+v", fs)
	}
	// Crashed donors may lose the request they were serving, but every burst
	// request is either served or dropped within the retry budget.
	if col.Len()+col.Faults.Dropped != tr.Len() {
		t.Fatalf("served %d + dropped %d != %d arrivals", col.Len(), col.Faults.Dropped, tr.Len())
	}
	if fs.Recipients == 0 {
		t.Fatalf("tree built nothing under donor crashes: %+v", fs)
	}
}

func TestFanoutCorruptOutputQuarantinesDescendants(t *testing.T) {
	fns, tr := fanoutBurst(t, 40)
	cfg := fanoutConfig(fanout.Config{})
	cfg.Faults = faults.Rates{Corrupt: 0.5}
	col, _ := runFanout(t, cfg, fns, tr)

	fs := col.Fanout
	if fs.CorruptOutputs == 0 {
		t.Fatalf("rate-0.5 corrupt outputs never fired: %+v", fs)
	}
	if fs.Quarantined == 0 {
		t.Fatalf("corrupt donors quarantined no descendants: %+v", fs)
	}
	if col.Len() != tr.Len() {
		t.Fatalf("corruption must not lose requests: served %d of %d", col.Len(), tr.Len())
	}
}

// TestFanoutEveryDonationCrashesDonor drives the parked-orphan path hard:
// with rate-1 FanoutCrash every donation kills its donor mid-stream, so
// orphans routinely find no healthy adopter and park. The completion event
// scheduled for the dead donation must die by generation instead of promoting
// the parked child into service — the regression symptom was a double-built
// replica whose second completion truncated an in-flight service.
func TestFanoutEveryDonationCrashesDonor(t *testing.T) {
	fns, tr := fanoutBurst(t, 40)
	run := func() (*metrics.Collector, metrics.FanoutStats) {
		cfg := fanoutConfig(fanout.Config{})
		cfg.Faults = faults.Rates{FanoutCrash: 1}
		col, _ := runFanout(t, cfg, fns, tr)
		return col, col.Fanout
	}
	col, fs := run()
	if fs.DonorCrashes == 0 {
		t.Fatalf("rate-1 donor crashes never fired: %+v", fs)
	}
	if fs.Recipients == 0 {
		t.Fatalf("tree built nothing under total donor loss: %+v", fs)
	}
	// Every donation crashing its donor means progress comes from fallback
	// loads once the healthy-member pool drains.
	if fs.LoadFallbacks == 0 {
		t.Fatalf("stranded orphans never diverted to fallbacks: %+v", fs)
	}
	if col.Len()+col.Faults.Dropped != tr.Len() {
		t.Fatalf("served %d + dropped %d != %d arrivals", col.Len(), col.Faults.Dropped, tr.Len())
	}
	col2, fs2 := run()
	if fs != fs2 {
		t.Fatalf("fanout stats diverged across runs: %+v vs %+v", fs, fs2)
	}
	r1, r2 := col.Records(), col2.Records()
	if len(r1) != len(r2) {
		t.Fatalf("record counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestFanoutRunsAreDeterministic(t *testing.T) {
	fns, tr := fanoutBurst(t, 40)
	run := func() ([]metrics.Record, metrics.FanoutStats, metrics.FaultStats) {
		cfg := fanoutConfig(fanout.Config{})
		cfg.Faults = faults.Rates{FanoutCrash: 0.3, Corrupt: 0.3, Crash: 0.05}
		col, _ := runFanout(t, cfg, fns, tr)
		return col.Records(), col.Fanout, col.Faults
	}
	r1, fo1, fa1 := run()
	r2, fo2, fa2 := run()
	if fo1 != fo2 {
		t.Fatalf("fanout stats diverged: %+v vs %+v", fo1, fo2)
	}
	if fa1 != fa2 {
		t.Fatalf("fault stats diverged: %+v vs %+v", fa1, fa2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestFanoutZeroConfigLeavesNoTrace pins compatibility: with the Fanout
// config at its zero value a run is byte-identical to one built before the
// feature existed (no stats, no extra randomness, no fanout-kind records).
func TestFanoutZeroConfigLeavesNoTrace(t *testing.T) {
	fns, tr := chaosTrace(t)
	cfg := simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2, Seed: 5,
		Faults: faults.Rates{Transform: 0.2, Crash: 0.1, Hang: 0.1},
	}
	col, _ := runFanout(t, cfg, fns, tr)
	if col.Fanout.Any() {
		t.Fatalf("zero config tallied fanout stats: %+v", col.Fanout)
	}
	if col.KindFractions()[metrics.StartFanout] != 0 {
		t.Fatal("zero config produced fanout-kind records")
	}
}

// TestHedgedStartExposedToLoadFaults is the satellite regression for the
// load-fault injection gap: superviseHang assigns StartHedge before the
// exposure check runs, and hedged recoveries load the model from scratch, so
// they must be exposed to faults.Load like every other from-scratch start.
func TestHedgedStartExposedToLoadFaults(t *testing.T) {
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 2, Seed: 5,
		Faults: faults.Rates{Hang: 0.4, Load: 1},
		Hedge:  supervisor.HedgeConfig{Percentile: 90, MinSamples: 2},
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	hedge := 0
	exposed := 0
	for _, r := range col.Records() {
		switch r.Kind {
		case metrics.StartHedge:
			hedge++
			exposed++
		case metrics.StartCold, metrics.StartFallback, metrics.StartTimeout, metrics.StartBreaker:
			exposed++
		}
	}
	if hedge == 0 {
		t.Fatal("setup failed to produce hedged starts")
	}
	// Rate-1 load faults retry every exposed from-scratch load exactly once:
	// if hedged starts bypassed injection, LoadRetries would fall short of
	// the exposed-start count.
	if col.Faults.LoadRetries < exposed {
		t.Fatalf("LoadRetries = %d, want >= %d exposed starts (%d hedged)",
			col.Faults.LoadRetries, exposed, hedge)
	}
}
