// Package analysis is a self-contained static-analysis framework built on
// the standard library's go/parser, go/ast and go/types — no external
// dependencies, matching the module's zero-requires constraint. It exists to
// machine-check the determinism invariants every reported result rests on:
// the simulator's virtual clock never mixes with wall-clock time, all
// randomness flows from explicit seeds, and map-iteration order never leaks
// into replay output. PRs 1–4 fixed violations of these invariants by hand
// (deep-copy Snapshot, seeded fault injector, shard-merge equivalence); the
// checkers registered with this framework re-discover that bug class on
// every commit instead of in -race stress runs.
//
// The pieces: a Loader that parses and type-checks module packages offline
// (stdlib imports resolve through the source importer), a Checker interface
// with a per-package Pass, //optimus:allow suppression directives with
// unused-directive detection, text and JSON reporters, and a golden-fixture
// test harness driven by // want comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic: a checker's claim that a position violates the
// invariant it guards.
type Finding struct {
	// Checker is the name of the checker that produced the finding, or
	// DirectiveChecker for problems with suppression directives themselves.
	Checker string
	// Pos locates the violation (file, line, column resolved).
	Pos token.Position
	// Message states the violated invariant and the repair.
	Message string
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Checker, f.Message)
}

// Checker is one registered analysis. Run inspects a single type-checked
// package and reports findings through the pass; implementations must be
// deterministic (findings are sorted afterwards, but messages must not
// depend on map order or clocks — the linter holds itself to the invariants
// it enforces).
type Checker interface {
	// Name is the registry key, used in -enable/-disable flags and in
	// //optimus:allow directives. Lowercase, no spaces.
	Name() string
	// Doc is a one-line description of the guarded invariant.
	Doc() string
	// Run checks one package.
	Run(p *Pass)
}

// Pass hands a checker one type-checked package.
type Pass struct {
	// Fset resolves token positions for every file in the package.
	Fset *token.FileSet
	// Path is the package's import path (e.g. repro/internal/simulate).
	Path string
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's resolution maps (Uses, Defs, Types,
	// Selections) for the package's files.
	Info *types.Info
	// CallGraph is the intra-module call graph over every package the run
	// loaded — the same graph instance for every pass, so interprocedural
	// checkers (lockorder, goroutinejoin, timeprop) can follow calls across
	// package boundaries and memoize per-graph summaries.
	CallGraph *CallGraph

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(checker string, pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Checker: checker,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// RunInfo summarizes what a lint run covered, for reporting wall-time and
// scope alongside findings.
type RunInfo struct {
	// Matched is the number of packages the patterns selected for checking.
	Matched int
	// Loaded is the total number of module packages type-checked (matched
	// packages plus their module-local dependencies, each checked once).
	Loaded int
}

// Run loads the packages matched by patterns under the module rooted at
// root (module path modPath), runs every checker over each, applies
// //optimus:allow suppressions, and returns the surviving findings sorted
// by position. Load or type-check failures abort with an error: a package
// that does not compile cannot be certified.
func Run(root, modPath string, checkers []Checker, patterns []string) ([]Finding, error) {
	findings, _, err := RunWithInfo(root, modPath, checkers, patterns)
	return findings, err
}

// RunWithInfo is Run plus coverage statistics about the load.
func RunWithInfo(root, modPath string, checkers []Checker, patterns []string) ([]Finding, RunInfo, error) {
	loader := NewLoader(root, modPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, RunInfo{}, err
	}
	loaded := loader.Packages()
	graph := BuildCallGraph(loaded)
	known := make(map[string]bool, len(checkers))
	for _, c := range checkers {
		known[c.Name()] = true
	}
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, runPackage(pkg, graph, checkers, known)...)
	}
	sortFindings(all)
	return all, RunInfo{Matched: len(pkgs), Loaded: len(loaded)}, nil
}

// runPackage runs the checkers over one loaded package and applies its
// suppression directives.
func runPackage(pkg *Package, graph *CallGraph, checkers []Checker, known map[string]bool) []Finding {
	var findings []Finding
	pass := &Pass{
		Fset:      pkg.Fset,
		Path:      pkg.Path,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		Info:      pkg.Info,
		CallGraph: graph,
		report:    func(f Finding) { findings = append(findings, f) },
	}
	for _, c := range checkers {
		c.Run(pass)
	}
	directives, directiveFindings := collectDirectives(pkg, known)
	kept := applySuppressions(findings, directives)
	kept = append(kept, directiveFindings...)
	kept = append(kept, unusedDirectiveFindings(directives)...)
	return kept
}

// sortFindings orders findings by file, line, column, checker, message —
// the stable order both reporters emit.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
}
