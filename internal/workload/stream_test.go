package workload

import (
	"fmt"
	"testing"
	"time"
)

// fnNames builds n distinct function names.
func fnNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fn-%02d", i)
	}
	return out
}

// sameTrace requires a and b to be request-for-request identical.
func sameTrace(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.Duration != b.Duration {
		t.Fatalf("duration: %v vs %v", a.Duration, b.Duration)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("length: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

// TestStreamMatchesMaterialized is the byte-identity property: for every
// generator family and seeds 1..8, the k-way-heap stream must reproduce the
// materialized Trace exactly, including sortTrace's tie-break order.
func TestStreamMatchesMaterialized(t *testing.T) {
	fns := fnNames(40)
	const horizon = 48 * time.Hour
	rates := map[string]float64{}
	for i, f := range fns {
		rates[f] = RateFrequent * float64(1+i%7)
	}
	families := []struct {
		name string
		mat  func(seed int64) *Trace
		str  func(seed int64) *Stream
	}{
		{"poisson", func(s int64) *Trace { return Poisson(fns, RateFrequent, horizon, s) },
			func(s int64) *Stream { return StreamPoisson(fns, RateFrequent, horizon, s) }},
		{"poisson-rates", func(s int64) *Trace { return PoissonRates(rates, horizon, s) },
			func(s int64) *Stream { return StreamPoissonRates(rates, horizon, s) }},
		{"mixed", func(s int64) *Trace { return MixedPoisson(fns, horizon, s) },
			func(s int64) *Stream { return StreamMixedPoisson(fns, horizon, s) }},
		{"azure", func(s int64) *Trace { return AzureLike(fns, horizon, s) },
			func(s int64) *Stream { return StreamAzureLike(fns, horizon, s) }},
	}
	for _, fam := range families {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", fam.name, seed), func(t *testing.T) {
				want := fam.mat(seed)
				got := fam.str(seed).Materialize()
				if want.Len() == 0 {
					t.Fatalf("empty materialized trace — vacuous comparison")
				}
				sameTrace(t, want, got)
			})
		}
	}
}

// TestStreamTieBreak drives the merge heap directly with generators that
// collide on timestamps: equal arrival times must come out ordered by
// function name, exactly as sortTrace orders them.
func TestStreamTieBreak(t *testing.T) {
	const horizon = 10 * time.Second
	// Three functions all firing at t=1s,2s,3s,... — every timestamp is a
	// three-way tie. Register them out of name order to make heap order do
	// the work.
	mk := func() arrivalGen {
		at := time.Duration(0)
		return func() (time.Duration, bool) {
			at += time.Second
			if at >= horizon {
				return 0, false
			}
			return at, true
		}
	}
	names := []string{"zz", "aa", "mm"}
	s := newStream(horizon, names, []arrivalGen{mk(), mk(), mk()})
	want := &Trace{Duration: horizon}
	for at := time.Second; at < horizon; at += time.Second {
		for _, f := range []string{"aa", "mm", "zz"} {
			want.Requests = append(want.Requests, Request{Function: f, At: at})
		}
	}
	sameTrace(t, want, s.Materialize())
}

// TestStreamExhaustion checks Next keeps returning false after the end.
func TestStreamExhaustion(t *testing.T) {
	s := StreamPoisson(fnNames(3), RateFrequent, time.Hour, 1)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	for i := 0; i < 3; i++ {
		if r, ok := s.Next(); ok {
			t.Fatalf("Next after exhaustion returned %+v", r)
		}
	}
}

// TestTraceCursor checks the materialized adapter replays the trace as-is.
func TestTraceCursor(t *testing.T) {
	tr := MixedPoisson(fnNames(5), 6*time.Hour, 3)
	cur := tr.Cursor()
	for i := range tr.Requests {
		r, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor ended early at %d of %d", i, tr.Len())
		}
		if r != tr.Requests[i] {
			t.Fatalf("request %d: %+v vs %+v", i, r, tr.Requests[i])
		}
	}
	if _, ok := cur.Next(); ok {
		t.Fatalf("cursor did not end with the trace")
	}
}

// TestSeriesFromCursor checks the streaming demand series matches the
// materialized AllSeries for every function.
func TestSeriesFromCursor(t *testing.T) {
	fns := fnNames(12)
	const horizon = 24 * time.Hour
	tr := AzureLike(fns, horizon, 5)
	want := AllSeries(tr, fns, 10*time.Minute)
	got := SeriesFromCursor(StreamAzureLike(fns, horizon, 5), horizon, fns, 10*time.Minute)
	for _, f := range fns {
		w, g := want[f], got[f]
		if len(w) != len(g) {
			t.Fatalf("%s: series length %d vs %d", f, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s slot %d: %v vs %v", f, i, w[i], g[i])
			}
		}
	}
}
