package checkers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// This file holds the mutex-tracking infrastructure shared by the lockorder
// and unlockpath checkers: canonical lock identities (receiver-type+field
// pairs, so every instance of Tree.mu is one abstract lock) and an
// approximate path-sensitive walker that tracks which locks are held,
// which were just released, and whether any call intervened since.

// lockOp is one classified mutex operation — a Lock/RLock/Unlock/RUnlock
// call on a sync.Mutex or sync.RWMutex with a resolvable identity.
type lockOp struct {
	// key is the canonical identity, stable across packages: package path +
	// declaring type + field for struct fields, package path + name for
	// package-level vars, name + declaration offset for locals.
	key string
	// name is the short display form for messages ("(Tree).mu", "pkg.mu").
	name string
	// acquire is true for Lock/RLock, false for Unlock/RUnlock.
	acquire bool
	// read is true for the RWMutex read-side ops (RLock/RUnlock).
	read bool
	call *ast.CallExpr
}

// Pos returns the operation's position.
func (o lockOp) Pos() token.Pos { return o.call.Pos() }

var lockMethods = map[string]struct{ acquire, read bool }{
	"Lock":    {true, false},
	"RLock":   {true, true},
	"Unlock":  {false, false},
	"RUnlock": {false, true},
}

// classifyLockCall resolves call as a mutex operation. Only concrete
// sync.Mutex / sync.RWMutex receivers count (a sync.Locker interface value
// has no static identity); TryLock variants are conditional acquisitions
// and stay untracked.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	m, ok := lockMethods[fun.Sel.Name]
	if !ok {
		return lockOp{}, false
	}
	fn := analysis.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return lockOp{}, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return lockOp{}, false
	}
	key, name := lockIdentity(info, fun)
	if key == "" {
		return lockOp{}, false
	}
	return lockOp{key: key, name: name, acquire: m.acquire, read: m.read, call: call}, true
}

// lockIdentity computes the canonical identity of the mutex a method
// selector operates on. A method reached through embedded fields
// (t.Lock() with an embedded sync.Mutex) identifies the deepest field on
// the selection path; otherwise the receiver expression itself is resolved.
func lockIdentity(info *types.Info, fun *ast.SelectorExpr) (key, name string) {
	if sel, ok := info.Selections[fun]; ok {
		if idx := sel.Index(); len(idx) > 1 {
			return fieldIdent(sel.Recv(), idx[:len(idx)-1])
		}
	}
	return exprIdent(info, unparen(fun.X))
}

// exprIdent resolves a mutex-valued expression to its identity: struct
// fields collapse to declaring-type+field (instance-insensitive), package
// vars to path+name, locals to name+offset. Unresolvable shapes (map
// lookups, function results) return "".
func exprIdent(info *types.Info, e ast.Expr) (key, name string) {
	switch v := e.(type) {
	case *ast.Ident:
		return objIdent(info.Uses[v])
	case *ast.StarExpr:
		return exprIdent(info, unparen(v.X))
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			if sel.Kind() == types.FieldVal {
				return fieldIdent(sel.Recv(), sel.Index())
			}
			return "", ""
		}
		// No selection: a package-qualified variable (pkg.Mu).
		return objIdent(info.Uses[v.Sel])
	}
	return "", ""
}

// objIdent computes the identity of a variable holding a mutex.
func objIdent(obj types.Object) (key, name string) {
	v, ok := obj.(*types.Var)
	if !ok {
		return "", ""
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name(), v.Pkg().Name() + "." + v.Name()
	}
	return fmt.Sprintf("%s@%d", v.Name(), v.Pos()), v.Name()
}

// fieldIdent walks a field selection path (embedded fields included) and
// identifies the final field by its declaring named type.
func fieldIdent(recv types.Type, index []int) (key, name string) {
	t := recv
	var owner *types.Named
	var field *types.Var
	for _, i := range index {
		u := t
		if p, ok := u.(*types.Pointer); ok {
			u = p.Elem()
		}
		named, _ := u.(*types.Named)
		st, ok := u.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", ""
		}
		owner = named
		field = st.Field(i)
		t = field.Type()
	}
	if field == nil {
		return "", ""
	}
	if owner == nil {
		// Anonymous struct: fall back to the field's declaration offset.
		return fmt.Sprintf("%s@%d", field.Name(), field.Pos()), field.Name()
	}
	o := owner.Obj()
	name = "(" + o.Name() + ")." + field.Name()
	if o.Pkg() != nil {
		return o.Pkg().Path() + "." + o.Name() + "." + field.Name(), name
	}
	return o.Name() + "." + field.Name(), name
}

// heldLock is a lock the current path holds. deferred means a matching
// defer Unlock is registered, so every exit releases it.
type heldLock struct {
	op       lockOp
	deferred bool
}

// releasedLock is a lock the current path released; callsSince reports
// whether any function call happened after the release — the signal that
// distinguishes deliberate short critical sections from the split-lock
// check-then-act shape.
type releasedLock struct {
	op         lockOp
	callsSince bool
}

// lockState is the walker's per-path state.
type lockState struct {
	held     map[string]*heldLock
	released map[string]*releasedLock
	// deferPending marks keys whose defer Unlock preceded the Lock itself.
	deferPending map[string]bool
	terminated   bool
}

func newLockState() *lockState {
	return &lockState{
		held:         make(map[string]*heldLock),
		released:     make(map[string]*releasedLock),
		deferPending: make(map[string]bool),
	}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	c.terminated = s.terminated
	for k, h := range s.held {
		hc := *h
		c.held[k] = &hc
	}
	for k, r := range s.released {
		rc := *r
		c.released[k] = &rc
	}
	for k := range s.deferPending {
		c.deferPending[k] = true
	}
	return c
}

// heldLocks returns the held set sorted by identity, for deterministic
// iteration and reporting.
func (s *lockState) heldLocks() []*heldLock {
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*heldLock, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.held[k])
	}
	return out
}

// markCalls records that a function call happened on this path.
func (s *lockState) markCalls() {
	for _, r := range s.released {
		r.callsSince = true
	}
}

// mergeStates joins the fall-through states of sibling branches: a lock is
// held (or released) after the branch only if every surviving path agrees,
// with the weakest annotation winning (deferred only if deferred everywhere;
// callsSince only if a call happened on every path still tracking the
// release — if any path reached this point call-free, a call-free path
// exists). Terminated paths (return, panic) drop out of the join.
func mergeStates(states ...*lockState) *lockState {
	var live []*lockState
	for _, s := range states {
		if s != nil && !s.terminated {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		out := newLockState()
		out.terminated = true
		return out
	}
	out := live[0].clone()
	for _, s := range live[1:] {
		for k, h := range out.held {
			oh, ok := s.held[k]
			if !ok {
				delete(out.held, k)
				continue
			}
			h.deferred = h.deferred && oh.deferred
		}
		for k, r := range s.released {
			if or, ok := out.released[k]; ok {
				or.callsSince = or.callsSince && r.callsSince
			} else {
				rc := *r
				out.released[k] = &rc
			}
		}
		for k := range s.deferPending {
			out.deferPending[k] = true
		}
	}
	return out
}

// lockWalker walks one function body with an approximate structured
// control-flow interpretation: branches fork and rejoin, loop bodies are
// walked once, and function-literal subtrees are skipped (a closure built
// here may run on another goroutine or not at all — literals are analyzed
// as separate pseudo-functions by the checkers that need them). The three
// hooks fire in source order along each path.
type lockWalker struct {
	info *types.Info
	// onAcquire fires for each Lock/RLock, before the state records it.
	onAcquire func(op lockOp, st *lockState)
	// onCall fires for each non-mutex, non-builtin call on the path.
	onCall func(call *ast.CallExpr, st *lockState)
	// onExit fires at each return, panic, and fall-off-the-end point.
	onExit func(pos token.Pos, st *lockState)
}

// walkFunc interprets one function (or pseudo-function) body.
func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	st := newLockState()
	w.walkStmt(st, body)
	if !st.terminated {
		w.exit(body.End(), st)
	}
}

func (w *lockWalker) exit(pos token.Pos, st *lockState) {
	if w.onExit != nil {
		w.onExit(pos, st)
	}
}

func (w *lockWalker) walkStmt(st *lockState, stmt ast.Stmt) {
	if st.terminated || stmt == nil {
		return
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.walkStmt(st, sub)
		}
	case *ast.LabeledStmt:
		w.walkStmt(st, s.Stmt)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(st, r)
		}
		w.exit(s.Pos(), st)
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the structured walk; the path's state
		// is dropped rather than merged (an under- not over-approximation).
		st.terminated = true
	case *ast.DeferStmt:
		w.walkDefer(st, s)
	case *ast.GoStmt:
		// The spawned call runs on another stack; its lock operations and
		// calls are not events on this path.
	case *ast.IfStmt:
		w.walkStmt(st, s.Init)
		w.scanExpr(st, s.Cond)
		then := st.clone()
		w.walkStmt(then, s.Body)
		alt := st.clone()
		if s.Else != nil {
			w.walkStmt(alt, s.Else)
		}
		*st = *mergeStates(then, alt)
	case *ast.ForStmt:
		w.walkStmt(st, s.Init)
		w.scanExpr(st, s.Cond)
		body := st.clone()
		w.walkStmt(body, s.Body)
		w.walkStmt(body, s.Post)
		skip := st
		if s.Cond == nil {
			// for {} only exits via break/return inside the body.
			skip = nil
		}
		*st = *mergeStates(body, skip)
	case *ast.RangeStmt:
		w.scanExpr(st, s.X)
		body := st.clone()
		w.walkStmt(body, s.Body)
		*st = *mergeStates(body, st)
	case *ast.SwitchStmt:
		w.walkStmt(st, s.Init)
		w.scanExpr(st, s.Tag)
		w.walkClauses(st, s.Body, false)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st, s.Init)
		w.walkStmt(st, s.Assign)
		w.walkClauses(st, s.Body, false)
	case *ast.SelectStmt:
		w.walkClauses(st, s.Body, true)
	default:
		w.scanStmt(st, stmt)
	}
}

// walkClauses forks each case/comm clause and rejoins. Unless the construct
// always executes exactly one clause (a select with no default still blocks
// until one fires), the entry state joins too, covering the no-case path.
func (w *lockWalker) walkClauses(st *lockState, body *ast.BlockStmt, isSelect bool) {
	var forks []*lockState
	hasDefault := false
	for _, clause := range body.List {
		fork := st.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scanExpr(fork, e)
			}
			for _, sub := range c.Body {
				w.walkStmt(fork, sub)
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			w.walkStmt(fork, c.Comm)
			for _, sub := range c.Body {
				w.walkStmt(fork, sub)
			}
		}
		forks = append(forks, fork)
	}
	if !isSelect && !hasDefault {
		forks = append(forks, st.clone())
	}
	if len(forks) == 0 {
		return
	}
	*st = *mergeStates(forks...)
}

// walkDefer handles a defer statement: a deferred Unlock (directly or
// inside a deferred function literal) marks the lock as safely released on
// every exit; other deferred work contributes nothing to the path.
func (w *lockWalker) walkDefer(st *lockState, s *ast.DeferStmt) {
	if op, ok := classifyLockCall(w.info, s.Call); ok {
		if !op.acquire {
			w.markDeferredUnlock(st, op.key)
		}
		return
	}
	if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok && lit.Body != nil {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := classifyLockCall(w.info, call); ok && !op.acquire {
					w.markDeferredUnlock(st, op.key)
				}
			}
			return true
		})
	}
}

func (w *lockWalker) markDeferredUnlock(st *lockState, key string) {
	if h, ok := st.held[key]; ok {
		h.deferred = true
		return
	}
	st.deferPending[key] = true
}

// scanStmt processes the calls of a simple statement in source order.
func (w *lockWalker) scanStmt(st *lockState, stmt ast.Stmt) {
	w.scanNode(st, stmt)
}

func (w *lockWalker) scanExpr(st *lockState, e ast.Expr) {
	if e == nil {
		return
	}
	w.scanNode(st, e)
}

// scanNode visits every call under n (function-literal subtrees excluded)
// in source order, updating the state: mutex operations move locks between
// held and released, panic terminates the path, and every other real call
// marks the released set as no longer call-free.
func (w *lockWalker) scanNode(st *lockState, n ast.Node) {
	panicPos := token.NoPos
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := classifyLockCall(w.info, call); ok {
			w.applyLockOp(st, op)
			return true
		}
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if bi, ok := w.info.Uses[fun].(*types.Builtin); ok {
				if bi.Name() == "panic" && panicPos == token.NoPos {
					panicPos = call.Pos()
				}
				return true // other builtins neither block nor synchronize
			}
		}
		if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if w.onCall != nil {
			w.onCall(call, st)
		}
		st.markCalls()
		return true
	})
	if panicPos != token.NoPos && !st.terminated {
		w.exit(panicPos, st)
		st.terminated = true
	}
}

func (w *lockWalker) applyLockOp(st *lockState, op lockOp) {
	if op.acquire {
		if w.onAcquire != nil {
			w.onAcquire(op, st)
		}
		h := &heldLock{op: op}
		if st.deferPending[op.key] {
			h.deferred = true
			delete(st.deferPending, op.key)
		}
		st.held[op.key] = h
		delete(st.released, op.key)
		return
	}
	delete(st.held, op.key)
	st.released[op.key] = &releasedLock{op: op}
}

// funcLitsIn returns the outermost function literals inside body; nested
// literals are reached when their enclosing literal is walked as a
// pseudo-function. Not descending into a collected literal keeps the list
// outermost-only.
func funcLitsIn(body *ast.BlockStmt) []*ast.FuncLit {
	var top []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			top = append(top, lit)
			return false
		}
		return true
	})
	return top
}
