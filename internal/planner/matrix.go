// Package planner computes inter-function model transformation strategies
// (§4.4): it formulates the transformation between two model graphs as a
// graph-edit-distance problem over the meta-operators of §4.3 and offers
// three solvers —
//
//   - a brute-force oracle enumerating permutations (O((n+m)!), tests only);
//   - the basic algorithm via the Munkres/Hungarian assignment on the
//     Riesen-Bunke cost matrix (Module 2, O((n+m)³));
//   - the group-based approximate algorithm (Module 2⁺, O(n+m)).
//
// Plans embed the safeguard decision (Module 3): when the estimated
// transformation cost exceeds loading the destination model from scratch,
// the plan degenerates to a fresh load so worst-case performance matches a
// traditional platform.
package planner

import (
	"math"

	"repro/internal/cost"
	"repro/internal/model"
)

// big stands in for "impossible" (cross-type substitution, off-diagonal
// deletion/insertion cells) in the assignment matrix. It is finite so the
// Hungarian algorithm needs no special casing, but large enough that an
// optimal assignment never selects it when a feasible alternative exists.
const big = 1e15 // nanoseconds

// Matrix is the (n+m)×(n+m) transformation cost matrix of §4.4 (after
// Riesen & Bunke): the top-left n×m block holds substitution costs, the
// top-right n×n diagonal deletion costs, the bottom-left m×m diagonal
// insertion costs, and the bottom-right m×n block zeros.
type Matrix struct {
	N, M int // source and destination operation counts
	c    []float64
}

// At returns the cost at row i, column j (both in [0, N+M)).
func (mx *Matrix) At(i, j int) float64 { return mx.c[i*(mx.N+mx.M)+j] }

func (mx *Matrix) set(i, j int, v float64) { mx.c[i*(mx.N+mx.M)+j] = v }

// Size returns the matrix dimension n+m.
func (mx *Matrix) Size() int { return mx.N + mx.M }

// BuildMatrix constructs the cost matrix for transforming src into dst under
// the estimator's profiled meta-operator costs.
func BuildMatrix(est *cost.Estimator, src, dst *model.Graph) *Matrix {
	n, m := src.NumOps(), dst.NumOps()
	size := n + m
	mx := &Matrix{N: n, M: m, c: make([]float64, size*size)}
	for i := 0; i < n; i++ {
		srcOp := src.Op(i)
		for j := 0; j < m; j++ {
			if c, ok := est.SubstituteCost(srcOp, dst.Op(j)); ok {
				mx.set(i, j, float64(c))
			} else {
				mx.set(i, j, big)
			}
		}
		for k := 0; k < n; k++ {
			if k == i {
				mx.set(i, m+k, float64(est.ReduceCost(srcOp)))
			} else {
				mx.set(i, m+k, big)
			}
		}
	}
	for k := 0; k < m; k++ {
		dstOp := dst.Op(k)
		for j := 0; j < m; j++ {
			if j == k {
				mx.set(n+k, j, float64(est.AddCost(dstOp)))
			} else {
				mx.set(n+k, j, big)
			}
		}
		// Bottom-right block is zero (ε→ε).
	}
	return mx
}

// Mapping is the result of solving the assignment: SrcToDst[i] is the
// destination op matched to source op i, or -1 if the op is deleted;
// Added lists destination ops created from scratch.
type Mapping struct {
	SrcToDst []int
	Added    []int
}

// mappingFromAssignment converts a row→column assignment over the full
// matrix into a Mapping, demoting any big-cost substitution to delete+add.
func mappingFromAssignment(mx *Matrix, rowToCol []int) Mapping {
	mp := Mapping{SrcToDst: make([]int, mx.N)}
	matched := make([]bool, mx.M)
	for i := 0; i < mx.N; i++ {
		j := rowToCol[i]
		if j < mx.M && mx.At(i, j) < big/2 {
			mp.SrcToDst[i] = j
			matched[j] = true
		} else {
			mp.SrcToDst[i] = -1
		}
	}
	for j := 0; j < mx.M; j++ {
		if !matched[j] {
			mp.Added = append(mp.Added, j)
		}
	}
	return mp
}

// MappingCost returns the node-level cost of a mapping (substitutions +
// deletions + insertions), excluding edge costs.
func MappingCost(est *cost.Estimator, src, dst *model.Graph, mp Mapping) float64 {
	var total float64
	for i, j := range mp.SrcToDst {
		if j < 0 {
			total += float64(est.ReduceCost(src.Op(i)))
			continue
		}
		c, ok := est.SubstituteCost(src.Op(i), dst.Op(j))
		if !ok {
			return math.Inf(1)
		}
		total += float64(c)
	}
	for _, j := range mp.Added {
		total += float64(est.AddCost(dst.Op(j)))
	}
	return total
}
