package experiments

import (
	"fmt"
	"time"

	"repro/internal/balancer"
	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/planner"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// DefaultFunctionSet returns the serverless ML inference functions used by
// the end-to-end cluster experiments: a diverse slice of the Imgclsmob zoo
// plus the BERT variants, as in §8.1.
func DefaultFunctionSet(quick bool) []*simulate.Function {
	cnn := []string{
		"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "resnet101-imagenet",
		"vgg11-imagenet", "vgg16-imagenet", "vgg19-imagenet",
		"densenet121-imagenet", "densenet169-imagenet",
		"mobilenet-w1-imagenet", "mobilenet-w0.75-imagenet", "mobilenetv2-w1-imagenet",
		"shufflenetv2-w1-imagenet", "squeezenet-v1.0-imagenet",
		"xception-imagenet", "inceptionv3-imagenet",
		"resnet18-cifar10", "resnet50-cifar10", "vgg16-cifar10", "densenet121-cifar10",
	}
	bert := []string{
		"bert-tiny", "bert-mini", "bert-small",
		"bert-base-uncased", "bert-base-sc", "bert-base-qa",
	}
	if quick {
		cnn = cnn[:8]
		bert = bert[:2]
	}
	fns := make([]*simulate.Function, 0, len(cnn)+len(bert))
	for _, n := range cnn {
		fns = append(fns, &simulate.Function{Name: n, Model: imgZoo.MustGet(n)})
	}
	for _, n := range bert {
		fns = append(fns, &simulate.Function{Name: n, Model: bertZoo.MustGet(n)})
	}
	return fns
}

// ClusterSetup describes a Fig 13/16-style end-to-end run.
type ClusterSetup struct {
	Nodes             int
	ContainersPerNode int
	Horizon           time.Duration
}

func (c ClusterSetup) withDefaults(quick bool) ClusterSetup {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.ContainersPerNode <= 0 {
		c.ContainersPerNode = 4
	}
	if c.Horizon <= 0 {
		c.Horizon = 24 * time.Hour
	}
	if quick && c.Horizon > 4*time.Hour {
		c.Horizon = 4 * time.Hour
	}
	return c
}

// Fig13Cell is one (policy, workload) measurement.
type Fig13Cell struct {
	Policy   string
	Workload string
	Requests int
	Mean     time.Duration
	P50, P99 time.Duration
	Kinds    map[metrics.StartKind]float64
}

// Fig13Result reproduces Figure 13 (and 16 under a GPU profile): average
// service time of the four systems under the Poisson and Azure workloads.
// The per-cell start-kind fractions double as Figure 14.
type Fig13Result struct {
	Profile string
	Cells   []Fig13Cell
	// Reductions maps workload → Optimus' latency reduction vs OpenWhisk.
	Reductions map[string]float64
}

// Fig13 runs the end-to-end comparison. Optimus uses its model-sharing-aware
// K-medoids placement (§5.1); the baselines use the hash placement of
// traditional platforms.
func Fig13(o Options, setup ClusterSetup) Fig13Result {
	o = o.withDefaults()
	setup = setup.withDefaults(o.Quick)
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}

	workloads := map[string]*workload.Trace{
		"poisson": workload.MixedPoisson(names, setup.Horizon, o.Seed),
		"azure":   workload.AzureLike(names, setup.Horizon, o.Seed+1),
	}

	res := Fig13Result{Profile: o.Profile.Name, Reductions: map[string]float64{}}
	for _, wlName := range []string{"poisson", "azure"} {
		tr := workloads[wlName]
		base := map[string]time.Duration{}
		for _, pol := range policy.All() {
			placement := simulate.HashPlacement(names, setup.Nodes)
			if pol.Name() == "optimus" {
				placement = optimusPlacement(o, fns, tr, setup.Nodes)
			}
			sim := simulate.New(simulate.Config{
				Policy:            pol,
				Nodes:             setup.Nodes,
				ContainersPerNode: setup.ContainersPerNode,
				Profile:           o.Profile,
				Placement:         placement,
				Seed:              o.Seed,
			}, fns)
			col, err := sim.Run(tr)
			if err != nil {
				panic(err)
			}
			res.Cells = append(res.Cells, Fig13Cell{
				Policy: pol.Name(), Workload: wlName,
				Requests: col.Len(),
				Mean:     col.MeanLatency(),
				P50:      col.Percentile(50),
				P99:      col.Percentile(99),
				Kinds:    col.KindFractions(),
			})
			base[pol.Name()] = col.MeanLatency()
		}
		if ow := base["openwhisk"]; ow > 0 {
			res.Reductions[wlName] = 1 - float64(base["optimus"])/float64(ow)
		}
	}
	return res
}

// optimusPlacement computes the §5.1 K-medoids placement from the trace's
// demand history.
func optimusPlacement(o Options, fns []*simulate.Function, tr *workload.Trace, nodes int) map[string][]int {
	infos := make([]balancer.FunctionInfo, len(fns))
	for i, f := range fns {
		infos[i] = balancer.FunctionInfo{
			Name:   f.Name,
			Model:  f.Model,
			Demand: workload.Series(tr, f.Name, balancer.SlotDuration),
		}
	}
	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)
	return balancer.Placement(pl, infos, nodes, balancer.Config{Seed: o.Seed})
}

// Render prints the Fig 13 table.
func (r Fig13Result) Render() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Workload, c.Policy, fmt.Sprint(c.Requests),
			ms(c.Mean), ms(c.P50), ms(c.P99),
		})
	}
	out := fmt.Sprintf("Figure 13 (%s profile): average service time of serverless ML inference requests\n", r.Profile) +
		table([]string{"workload", "system", "requests", "mean(ms)", "p50(ms)", "p99(ms)"}, rows)
	for _, wl := range []string{"poisson", "azure"} {
		if red, ok := r.Reductions[wl]; ok {
			out += fmt.Sprintf("optimus reduction vs openwhisk (%s): %s (paper: 24.00%%~47.56%%)\n", wl, pct(red))
		}
	}
	return out
}

// RenderFig14 prints the same runs' start-kind percentages (Figure 14).
func (r Fig13Result) RenderFig14() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Workload, c.Policy,
			pct(c.Kinds[metrics.StartCold]),
			pct(c.Kinds[metrics.StartTransform]),
			pct(c.Kinds[metrics.StartWarm]),
		})
	}
	return "Figure 14: percentage of cold start, model transformation, and warm start\n" +
		table([]string{"workload", "system", "cold", "transform", "warm"}, rows)
}

// Fig16 reproduces Figure 16: the Fig 13 experiment on GPU-enabled servers.
func Fig16(o Options, setup ClusterSetup) Fig13Result {
	o = o.withDefaults()
	o.Profile = cost.GPU()
	return Fig13(o, setup)
}
