package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestDigestSmallValuesExact(t *testing.T) {
	var d DurationDigest
	for v := time.Duration(0); v < 64; v++ {
		d.Observe(v)
	}
	if d.Count() != 64 {
		t.Fatalf("count = %d, want 64", d.Count())
	}
	// Small values map to exact buckets, so nearest-rank percentiles are
	// exact: p50 of 0..63 is index ceil(0.5*64)-1 = 31.
	if got := d.Percentile(50); got != 31 {
		t.Errorf("p50 = %d, want 31", got)
	}
	if got := d.Percentile(100); got != 63 {
		t.Errorf("p100 = %d, want 63", got)
	}
	if got := d.Percentile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
}

func TestDigestRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var d DurationDigest
	samples := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Span several octaves, microseconds to minutes.
		v := time.Duration(rng.Int63n(int64(90 * time.Second)))
		d.Observe(v)
		samples = append(samples, v)
	}
	for _, p := range []float64{25, 50, 90, 95, 99, 100} {
		exact := DurationPercentile(samples, p)
		got := d.Percentile(p)
		if got < exact {
			t.Errorf("p%v: digest %v below exact %v", p, got, exact)
		}
		if exact > 0 && float64(got-exact)/float64(exact) > 1.0/32 {
			t.Errorf("p%v: digest %v exceeds exact %v by more than 1/32", p, got, exact)
		}
	}
	if d.Max() != DurationPercentile(samples, 100) {
		t.Errorf("max = %v, want exact %v", d.Max(), DurationPercentile(samples, 100))
	}
}

func TestDigestAggregates(t *testing.T) {
	var d DurationDigest
	d.Observe(10 * time.Millisecond)
	d.Observe(30 * time.Millisecond)
	d.Observe(-time.Second) // clamps to 0
	if d.Count() != 3 {
		t.Fatalf("count = %d, want 3", d.Count())
	}
	if d.Total() != 40*time.Millisecond {
		t.Errorf("total = %v, want 40ms", d.Total())
	}
	if d.Mean() != 40*time.Millisecond/3 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Max() != 30*time.Millisecond {
		t.Errorf("max = %v, want 30ms", d.Max())
	}
}

func TestDigestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, whole DurationDigest
	for i := 0; i < 1000; i++ {
		v := time.Duration(rng.Int63n(int64(time.Minute)))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Total() != whole.Total() || a.Max() != whole.Max() {
		t.Fatalf("merged aggregates differ: %v/%v/%v vs %v/%v/%v",
			a.Count(), a.Total(), a.Max(), whole.Count(), whole.Total(), whole.Max())
	}
	for _, p := range []float64{50, 95, 99} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Errorf("p%v: merged %v != whole %v", p, a.Percentile(p), whole.Percentile(p))
		}
	}
}

func TestDigestEmpty(t *testing.T) {
	var d DurationDigest
	if d.Percentile(50) != 0 || d.Max() != 0 || d.Mean() != 0 || d.Count() != 0 {
		t.Error("empty digest should report zeros")
	}
}

func BenchmarkDigestObserve(b *testing.B) {
	var d DurationDigest
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(time.Duration(i) * time.Microsecond)
	}
}
