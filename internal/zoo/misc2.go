package zoo

import (
	"fmt"

	"repro/internal/model"
)

// GoogLeNet builds Inception-v1 (Szegedy et al.): the original inception
// modules with 1×1 / 3×3 / 5×5 / pooled towers. Auxiliary classifiers are
// omitted — they exist only during training.
func GoogLeNet(classes int, scope string) *model.Graph {
	b := model.NewBuilder("googlenet", "inception", scope)
	b.Input(3)
	b.Conv("stem.conv1", 7, 3, 64, 2)
	b.ReLU("stem.relu1", 64)
	b.MaxPool("stem.pool1", 3, 64, 2)
	b.Conv("stem.conv2", 1, 64, 64, 1)
	b.Conv("stem.conv3", 3, 64, 192, 1)
	b.ReLU("stem.relu2", 192)
	b.MaxPool("stem.pool2", 3, 192, 2)

	// Inception module tower widths: 1×1, 3×3-reduce, 3×3, 5×5-reduce, 5×5, pool-proj.
	type mod struct{ t1, r3, t3, r5, t5, tp int }
	module := func(tag string, in int, m mod) int {
		entry := b.Tail()[0]
		a := b.Conv(tag+".t1", 1, in, m.t1, 1)
		b.SetTail(entry)
		b.Conv(tag+".t3r", 1, in, m.r3, 1)
		c3 := b.Conv(tag+".t3", 3, m.r3, m.t3, 1)
		b.SetTail(entry)
		b.Conv(tag+".t5r", 1, in, m.r5, 1)
		c5 := b.Conv(tag+".t5", 5, m.r5, m.t5, 1)
		b.SetTail(entry)
		b.MaxPool(tag+".pool", 3, in, 1)
		cp := b.Conv(tag+".tp", 1, in, m.tp, 1)
		out := m.t1 + m.t3 + m.t5 + m.tp
		b.ConcatMerge(tag+".concat", out, a, c3, c5, cp)
		b.ReLU(tag+".relu", out)
		return out
	}
	in := 192
	in = module("i3a", in, mod{64, 96, 128, 16, 32, 32})
	in = module("i3b", in, mod{128, 128, 192, 32, 96, 64})
	b.MaxPool("pool3", 3, in, 2)
	in = module("i4a", in, mod{192, 96, 208, 16, 48, 64})
	in = module("i4b", in, mod{160, 112, 224, 24, 64, 64})
	in = module("i4c", in, mod{128, 128, 256, 24, 64, 64})
	in = module("i4d", in, mod{112, 144, 288, 32, 64, 64})
	in = module("i4e", in, mod{256, 160, 320, 32, 128, 128})
	b.MaxPool("pool4", 3, in, 2)
	in = module("i5a", in, mod{256, 160, 320, 32, 128, 128})
	in = module("i5b", in, mod{384, 192, 384, 48, 128, 128})
	b.GlobalAvgPool("gap", in)
	b.Add(model.Operation{Name: "drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: in}})
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// NiN builds Network-in-Network (Lin et al.): conv blocks followed by two
// 1×1 "mlpconv" layers each, finishing with global average pooling directly
// over class maps.
func NiN(classes int, scope string) *model.Graph {
	b := model.NewBuilder("nin", "nin", scope)
	b.Input(3)
	block := func(tag string, k, in, out, stride int, pool bool) int {
		b.Conv(tag+".conv", k, in, out, stride)
		b.ReLU(tag+".relu", out)
		b.Conv(tag+".mlp1", 1, out, out, 1)
		b.ReLU(tag+".mlp1relu", out)
		b.Conv(tag+".mlp2", 1, out, out, 1)
		b.ReLU(tag+".mlp2relu", out)
		if pool {
			b.MaxPool(tag+".pool", 3, out, 2)
			b.Add(model.Operation{Name: tag + ".drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: out}})
		}
		return out
	}
	in := block("b1", 11, 3, 96, 4, true)
	in = block("b2", 5, in, 256, 1, true)
	in = block("b3", 3, in, 384, 1, true)
	b.Conv("head.conv", 3, in, classes, 1)
	b.ReLU("head.relu", classes)
	b.GlobalAvgPool("gap", classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// GhostNet builds GhostNet (Han et al.) at the given width multiplier:
// ghost modules approximated as a primary pointwise conv producing half the
// channels plus a cheap depthwise conv generating the "ghost" half, within
// an inverted-residual skeleton.
func GhostNet(width float64, classes int, scope string) *model.Graph {
	b := model.NewBuilder(fmt.Sprintf("ghostnet-w%g", width), "ghostnet", scope)
	b.Input(3)
	stem := scaleWidth(16, width)
	b.Conv("stem.conv", 3, 3, stem, 2)
	b.BN("stem.bn", stem)
	b.ReLU("stem.relu", stem)

	ghost := func(tag string, in, out int) int {
		half := max(out/2, 4)
		b.Conv(tag+".primary", 1, in, half, 1)
		b.BN(tag+".bn1", half)
		b.ReLU(tag+".relu1", half)
		prim := b.Tail()[0]
		b.Add(model.Operation{Name: tag + ".cheap", Type: model.OpDepthwiseConv2D,
			Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: half, OutChannels: half, Stride: 1}})
		b.BN(tag+".bn2", half)
		cheap := b.Tail()[0]
		b.ConcatMerge(tag+".concat", 2*half, prim, cheap)
		return 2 * half
	}
	plan := []struct{ hidden, out, stride int }{
		{16, 16, 1}, {48, 24, 2}, {72, 24, 1}, {72, 40, 2}, {120, 40, 1},
		{240, 80, 2}, {200, 80, 1}, {480, 112, 1}, {672, 160, 2}, {960, 160, 1},
	}
	in := stem
	for i, st := range plan {
		tag := fmt.Sprintf("b%d", i+1)
		entry := b.Tail()[0]
		hidden := ghost(tag+".g1", in, scaleWidth(st.hidden, width))
		if st.stride > 1 {
			b.Add(model.Operation{Name: tag + ".dw", Type: model.OpDepthwiseConv2D,
				Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: hidden, OutChannels: hidden, Stride: st.stride}})
			b.BN(tag+".dwbn", hidden)
		}
		out := ghost(tag+".g2", hidden, scaleWidth(st.out, width))
		if st.stride == 1 && in == out {
			b.AddMerge(tag+".add", out, b.Tail()[0], entry)
		}
		in = out
	}
	head := scaleWidth(960, width)
	b.Conv("head.conv", 1, in, head, 1)
	b.BN("head.bn", head)
	b.ReLU("head.relu", head)
	b.GlobalAvgPool("gap", head)
	b.Dense("head.fc1", head, 1280)
	b.ReLU("head.fc1relu", 1280)
	b.Dense("fc", 1280, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// regnetPlans gives (stage depths, stage widths) for the RegNetX variants
// (Radosavovic et al.).
var regnetPlans = map[string]struct {
	depths [4]int
	widths [4]int
}{
	"200mf": {[4]int{1, 1, 4, 7}, [4]int{24, 56, 152, 368}},
	"400mf": {[4]int{1, 2, 7, 12}, [4]int{32, 64, 160, 384}},
	"800mf": {[4]int{1, 3, 7, 5}, [4]int{64, 128, 288, 672}},
	"1.6gf": {[4]int{2, 4, 10, 2}, [4]int{72, 168, 408, 912}},
}

// RegNetX builds the named RegNetX variant: X-blocks (1×1 → grouped 3×3 →
// 1×1 with residual), groups modelled as plain convolutions.
func RegNetX(variant string, classes int, scope string) *model.Graph {
	plan, ok := regnetPlans[variant]
	if !ok {
		panic(fmt.Sprintf("zoo: unknown RegNetX variant %q", variant))
	}
	b := model.NewBuilder("regnetx-"+variant, "regnet", scope)
	b.Input(3)
	b.Conv("stem.conv", 3, 3, 32, 2)
	b.BN("stem.bn", 32)
	b.ReLU("stem.relu", 32)
	in := 32
	for si := 0; si < 4; si++ {
		w := plan.widths[si]
		for blk := 0; blk < plan.depths[si]; blk++ {
			stride := 1
			if blk == 0 {
				stride = 2
			}
			tag := fmt.Sprintf("s%d.b%d", si+1, blk+1)
			entry := b.Tail()[0]
			b.Conv(tag+".conv1", 1, in, w, 1)
			b.BN(tag+".bn1", w)
			b.ReLU(tag+".relu1", w)
			// Grouped 3×3 with group width 24: each output channel sees 24
			// inputs, which the parameter count of InChannels=24 captures.
			b.Add(model.Operation{Name: tag + ".conv2", Type: model.OpConv2D,
				Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: 24, OutChannels: w, Stride: stride}})
			b.BN(tag+".bn2", w)
			b.ReLU(tag+".relu2", w)
			b.Conv(tag+".conv3", 1, w, w, 1)
			b.BN(tag+".bn3", w)
			body := b.Tail()[0]
			shortcut := entry
			if in != w || stride != 1 {
				b.SetTail(entry)
				b.Conv(tag+".sc", 1, in, w, stride)
				b.BN(tag+".scbn", w)
				shortcut = b.Tail()[0]
			}
			b.AddMerge(tag+".add", w, body, shortcut)
			b.ReLU(tag+".relu3", w)
			in = w
		}
	}
	b.GlobalAvgPool("gap", in)
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// MnasNet builds MnasNet-A1/B1 (Tan et al.): mobile inverted bottlenecks;
// the A1 variant adds squeeze-and-excitation to selected stages.
func MnasNet(variant string, classes int, scope string) *model.Graph {
	se := variant == "a1"
	b := model.NewBuilder("mnasnet-"+variant, "mnasnet", scope)
	b.Input(3)
	b.Conv("stem.conv", 3, 3, 32, 2)
	b.BN("stem.bn", 32)
	b.ReLU("stem.relu", 32)

	plan := []struct {
		t, out, n, s, k int
		se              bool
	}{
		{1, 16, 1, 1, 3, false}, {6, 24, 2, 2, 3, false}, {3, 40, 3, 2, 5, true},
		{6, 80, 4, 2, 3, false}, {6, 112, 2, 1, 3, true}, {6, 160, 3, 2, 5, true}, {6, 320, 1, 1, 3, false},
	}
	in := 32
	for si, st := range plan {
		for r := 0; r < st.n; r++ {
			stride := 1
			if r == 0 {
				stride = st.s
			}
			tag := fmt.Sprintf("s%d.b%d", si+1, r+1)
			entry := b.Tail()[0]
			hidden := in * st.t
			if st.t != 1 {
				b.Conv(tag+".expand", 1, in, hidden, 1)
				b.BN(tag+".bn1", hidden)
				b.ReLU(tag+".relu1", hidden)
			}
			b.Add(model.Operation{Name: tag + ".dw", Type: model.OpDepthwiseConv2D,
				Shape: model.Shape{KernelH: st.k, KernelW: st.k, InChannels: hidden, OutChannels: hidden, Stride: stride}})
			b.BN(tag+".bn2", hidden)
			b.ReLU(tag+".relu2", hidden)
			if se && st.se {
				sq := max(hidden/12, 4)
				b.GlobalAvgPool(tag+".se.gap", hidden)
				b.Dense(tag+".se.fc1", hidden, sq)
				b.ReLU(tag+".se.relu", sq)
				b.Dense(tag+".se.fc2", sq, hidden)
				b.Add(model.Operation{Name: tag + ".se.sigmoid", Type: model.OpSigmoid, Shape: model.Shape{OutChannels: hidden}})
			}
			b.Conv(tag+".project", 1, hidden, st.out, 1)
			b.BN(tag+".bn3", st.out)
			if stride == 1 && in == st.out {
				b.AddMerge(tag+".add", st.out, b.Tail()[0], entry)
			}
			in = st.out
		}
	}
	b.Conv("head.conv", 1, in, 1280, 1)
	b.BN("head.bn", 1280)
	b.ReLU("head.relu", 1280)
	b.GlobalAvgPool("gap", 1280)
	b.Dense("fc", 1280, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}

// Res2Net builds Res2Net-50 (Gao et al.): bottlenecks whose 3×3 stage is a
// hierarchy of s=4 smaller convolutions over channel splits, modelled as a
// chain of width/4 convolutions concatenated back together.
func Res2Net(classes int, scope string) *model.Graph {
	b := model.NewBuilder("res2net50", "res2net", scope)
	b.Input(3)
	b.Conv("stem.conv", 7, 3, 64, 2)
	b.BN("stem.bn", 64)
	b.ReLU("stem.relu", 64)
	b.MaxPool("stem.pool", 3, 64, 2)

	blocks := [4]int{3, 4, 6, 3}
	in := 64
	for si := 0; si < 4; si++ {
		w := 64 << si
		out := w * 4
		for blk := 0; blk < blocks[si]; blk++ {
			stride := 1
			if blk == 0 && si > 0 {
				stride = 2
			}
			tag := fmt.Sprintf("s%d.b%d", si+1, blk+1)
			entry := b.Tail()[0]
			b.Conv(tag+".conv1", 1, in, w, 1)
			b.BN(tag+".bn1", w)
			b.ReLU(tag+".relu1", w)
			split := b.Tail()[0]
			// Hierarchical 3×3 stage over four channel splits.
			sw := w / 4
			var parts []int
			prev := -1
			for p := 0; p < 4; p++ {
				ptag := fmt.Sprintf("%s.split%d", tag, p+1)
				if p == 0 {
					// First split passes through untouched.
					parts = append(parts, b.AddFrom(model.Operation{
						Name: ptag + ".id", Type: model.OpIdentity,
						Shape: model.Shape{OutChannels: sw}}, split))
					prev = parts[0]
					continue
				}
				if p == 1 {
					b.SetTail(split)
					b.Conv(ptag+".conv", 3, sw, sw, stride)
				} else {
					b.AddFrom(model.Operation{Name: ptag + ".conv", Type: model.OpConv2D,
						Shape: model.Shape{KernelH: 3, KernelW: 3, InChannels: sw, OutChannels: sw, Stride: stride},
					}, split, prev)
				}
				b.BN(ptag+".bn", sw)
				b.ReLU(ptag+".relu", sw)
				parts = append(parts, b.Tail()[0])
				prev = parts[len(parts)-1]
			}
			b.ConcatMerge(tag+".concat", w, parts...)
			b.Conv(tag+".conv3", 1, w, out, 1)
			b.BN(tag+".bn3", out)
			body := b.Tail()[0]
			shortcut := entry
			if in != out || stride != 1 {
				b.SetTail(entry)
				b.Conv(tag+".sc", 1, in, out, stride)
				b.BN(tag+".scbn", out)
				shortcut = b.Tail()[0]
			}
			b.AddMerge(tag+".add", out, body, shortcut)
			b.ReLU(tag+".relu3", out)
			in = out
		}
	}
	b.GlobalAvgPool("gap", in)
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}
