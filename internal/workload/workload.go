// Package workload generates function-invocation arrival traces (§8.1):
// Poisson arrivals at the paper's three intensities, and a synthetic
// Azure-Functions-like trace substituting for the proprietary 2021
// production trace. The Azure substitute mixes the invocation classes
// characterized by Shahrad et al. (ATC '20): a small set of frequently
// invoked functions dominating traffic, a band of periodic (timer-driven)
// functions, and a long tail of rarely invoked, bursty functions.
//
// All generators are deterministic under a seed.
package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Request is one function invocation.
type Request struct {
	// Function is the invoked function's name.
	Function string
	// At is the arrival offset from the start of the trace.
	At time.Duration
}

// Trace is a time-ordered sequence of requests.
type Trace struct {
	Requests []Request
	Duration time.Duration
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// sortTrace orders requests by arrival (stable on function name for
// deterministic output).
func sortTrace(t *Trace) {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		if t.Requests[i].At != t.Requests[j].At {
			return t.Requests[i].At < t.Requests[j].At
		}
		return t.Requests[i].Function < t.Requests[j].Function
	})
}

// The paper drives each inference service with Poisson arrivals at three
// intensities (§8.1). The λ exponents listed there (10⁻³·⁵, 10⁻², 10⁻²·⁵ for
// "frequent, middle, infrequent") are ordered inconsistently; we map the
// labels monotonically, which matches the evident intent.
var (
	// RateFrequent is λ = 10⁻² requests/second (one per ~100 s).
	RateFrequent = math.Pow(10, -2)
	// RateMiddle is λ = 10⁻²·⁵ requests/second (one per ~316 s).
	RateMiddle = math.Pow(10, -2.5)
	// RateInfrequent is λ = 10⁻³·⁵ requests/second (one per ~3162 s).
	RateInfrequent = math.Pow(10, -3.5)
)

// Poisson generates a trace where every function receives independent
// Poisson arrivals at ratePerSec for the given duration.
func Poisson(fns []string, ratePerSec float64, duration time.Duration, seed int64) *Trace {
	rates := make(map[string]float64, len(fns))
	for _, f := range fns {
		rates[f] = ratePerSec
	}
	return PoissonRates(rates, duration, seed)
}

// PoissonRates generates independent Poisson arrivals with a per-function
// rate (requests per second).
func PoissonRates(rates map[string]float64, duration time.Duration, seed int64) *Trace {
	t := &Trace{Duration: duration}
	names := make([]string, 0, len(rates))
	for f := range rates {
		names = append(names, f)
	}
	sort.Strings(names) // deterministic iteration
	for i, f := range names {
		rate := rates[f]
		if rate <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		drain(t, f, poissonArrivals(rate, duration, rng))
	}
	sortTrace(t)
	return t
}

// MixedPoisson assigns functions round-robin to the three paper intensities
// and generates the combined trace.
func MixedPoisson(fns []string, duration time.Duration, seed int64) *Trace {
	rates := make(map[string]float64, len(fns))
	levels := []float64{RateFrequent, RateMiddle, RateInfrequent}
	for i, f := range fns {
		rates[f] = levels[i%len(levels)]
	}
	return PoissonRates(rates, duration, seed)
}

// azureClass describes one invocation-pattern class of the synthetic Azure
// trace.
type azureClass struct {
	name string
	// share of functions in this class.
	share float64
}

// AzureLike generates a production-like trace: 10 % of functions are
// "popular" with high-rate on/off bursts, 25 % are periodic timers with
// jitter, 15 % follow a diurnal (day/night) cycle with randomized phase,
// and 50 % form the rare long tail. The class mix and magnitudes follow the
// Azure Functions characterization of Shahrad et al.
func AzureLike(fns []string, duration time.Duration, seed int64) *Trace {
	t := &Trace{Duration: duration}
	rng := rand.New(rand.NewSource(seed))
	for _, f := range fns {
		// Class assignment is a deterministic function of the RNG stream so
		// the same seed reproduces the same trace exactly.
		u := rng.Float64()
		frng := rand.New(rand.NewSource(seed ^ int64(hashString(f))))
		switch {
		case u < 0.10:
			genBursty(t, f, duration, frng)
		case u < 0.35:
			genPeriodic(t, f, duration, frng)
		case u < 0.50:
			genDiurnal(t, f, duration, frng)
		default:
			genRare(t, f, duration, frng)
		}
	}
	sortTrace(t)
	return t
}

// genDiurnal emits a non-homogeneous Poisson process whose rate follows a
// 24-hour sinusoid (peak ≈ 4× trough) with a per-function phase — office
// and overnight-batch workloads in the Azure characterization. Thinning
// keeps the process exact.
func genDiurnal(t *Trace, f string, duration time.Duration, rng *rand.Rand) {
	drain(t, f, diurnalArrivals(duration, rng))
}

// genBursty emits alternating on/off phases; during an on-phase the function
// sees Poisson arrivals at a high rate.
func genBursty(t *Trace, f string, duration time.Duration, rng *rand.Rand) {
	drain(t, f, burstyArrivals(duration, rng))
}

// genPeriodic emits timer-driven arrivals with a fixed period and ±10 %
// jitter, starting at a random phase.
func genPeriodic(t *Trace, f string, duration time.Duration, rng *rand.Rand) {
	drain(t, f, periodicArrivals(duration, rng))
}

// genRare emits sparse Poisson arrivals (mean one per 30-120 minutes).
func genRare(t *Trace, f string, duration time.Duration, rng *rand.Rand) {
	drain(t, f, rareArrivals(duration, rng))
}

// Series returns the per-slot invocation counts of one function across the
// trace — the historical demand dynamics {l_t} of §5.1.
func Series(t *Trace, fn string, slot time.Duration) []float64 {
	if slot <= 0 || t.Duration <= 0 {
		return nil
	}
	n := int(t.Duration/slot) + 1
	out := make([]float64, n)
	for _, r := range t.Requests {
		if r.Function == fn {
			out[int(r.At/slot)]++
		}
	}
	return out
}

// AllSeries computes demand series for every function appearing in fns.
func AllSeries(t *Trace, fns []string, slot time.Duration) map[string][]float64 {
	out := make(map[string][]float64, len(fns))
	for _, f := range fns {
		out[f] = Series(t, f, slot)
	}
	return out
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
