package metrics

import (
	"math"
	"math/bits"
	"time"
)

// DurationDigest is a streaming log-linear histogram over duration samples:
// Observe is O(1) and allocation-free, and quantiles resolve to a bucket
// whose relative width is at most 2^-digestSubBits (~3.1%). It replaces
// unbounded sample slices for high-volume telemetry (per-pair planning
// times) where exact nearest-rank percentiles are not worth O(n log n)
// sorts and O(n) retained memory.
//
// Buckets follow the HDR-histogram layout: values below 2^(digestSubBits+1)
// map to themselves (exact), larger values keep digestSubBits significant
// bits. Count, Total and Max are exact; Percentile(100) therefore returns
// the exact observed maximum. The zero value is ready to use. Not safe for
// concurrent use.
type DurationDigest struct {
	counts [digestBuckets]uint32
	count  int
	total  time.Duration
	max    time.Duration
}

// digestSubBits sets the sub-bucket precision: 2^5 = 32 linear sub-buckets
// per power of two, bounding quantile error at 1/32 of the value.
const digestSubBits = 5

// digestBuckets covers the full non-negative int64 range: 64 exact small
// values plus 32 sub-buckets for each of the 58 remaining octaves.
const digestBuckets = (64 - digestSubBits - 1 + 2) << digestSubBits

// digestBucket maps a non-negative value to its bucket index
// (monotone non-decreasing in v).
func digestBucket(v uint64) int {
	exp := bits.Len64(v)
	if exp <= digestSubBits+1 {
		return int(v)
	}
	shift := uint(exp - digestSubBits - 1)
	return int((uint64(shift) << digestSubBits) + (v >> shift))
}

// digestUpper returns the largest value mapping to bucket i.
func digestUpper(i int) time.Duration {
	if i < 1<<(digestSubBits+1) {
		return time.Duration(i)
	}
	shift := uint(i>>digestSubBits) - 1
	m := uint64(i) - (uint64(shift) << digestSubBits)
	return time.Duration(((m + 1) << shift) - 1)
}

// Observe adds one sample; negative durations clamp to zero.
func (d *DurationDigest) Observe(v time.Duration) {
	if v < 0 {
		v = 0
	}
	d.counts[digestBucket(uint64(v))]++
	d.count++
	d.total += v
	if v > d.max {
		d.max = v
	}
}

// Count returns the number of observed samples.
func (d *DurationDigest) Count() int { return d.count }

// Total returns the exact sum of observed samples.
func (d *DurationDigest) Total() time.Duration { return d.total }

// Max returns the exact maximum observed sample (0 if empty).
func (d *DurationDigest) Max() time.Duration { return d.max }

// Mean returns the exact mean of observed samples (0 if empty).
func (d *DurationDigest) Mean() time.Duration {
	if d.count == 0 {
		return 0
	}
	return d.total / time.Duration(d.count)
}

// Percentile returns an upper bound for the p-th percentile (p in [0,100],
// nearest-rank like DurationPercentile), clamped to the exact observed
// maximum. Zero for an empty digest.
func (d *DurationDigest) Percentile(p float64) time.Duration {
	if d.count == 0 {
		return 0
	}
	target := int(math.Ceil(p / 100 * float64(d.count)))
	if target < 1 {
		target = 1
	}
	if target > d.count {
		target = d.count
	}
	seen := 0
	for i, c := range d.counts {
		seen += int(c)
		if seen >= target {
			ub := digestUpper(i)
			if ub > d.max {
				ub = d.max
			}
			return ub
		}
	}
	return d.max
}

// Merge adds all of o's samples into d. The merged Count/Total/Max are exact;
// bucket counts add cell-wise.
func (d *DurationDigest) Merge(o *DurationDigest) {
	for i, c := range o.counts {
		d.counts[i] += c
	}
	d.count += o.count
	d.total += o.total
	if o.max > d.max {
		d.max = o.max
	}
}
