// Package lockorder is the fixture for the lockorder checker: acquisition
// cycles, direct self-re-acquisition, and calls into functions that
// transitively re-acquire a held mutex must be reported; consistent
// ordering, *Locked helper conventions, go statements, and closures must
// stay silent.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// lockAB establishes the order muA before muB.
func lockAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

// lockBA closes the cycle: muB held while acquiring muA.
func lockBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want `completes a lock-order cycle: lockorder\.muA → lockorder\.muB → lockorder\.muA`
	defer muA.Unlock()
}

// lockABAgain repeats the established order: edge already present, silent.
func lockABAgain() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

type store struct {
	mu    sync.Mutex
	items map[string]int
}

func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// getLocked follows the *Locked convention: caller holds s.mu.
func (s *store) getLocked(k string) int { return s.items[k] }

// double re-acquires the store mutex directly.
func (s *store) double(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `mutex \(store\)\.mu is acquired while already held`
	defer s.mu.Unlock()
	return s.items[k]
}

// reenter calls a method that re-acquires the mutex it holds.
func (s *store) reenter(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(k) // want `call to \(\*store\)\.get while holding \(store\)\.mu: callee re-acquires`
}

// reenterDeep reaches the re-acquisition through an intermediate helper.
func (s *store) reenterDeep(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fetch(s, k) // want `call to lockorder\.fetch while holding \(store\)\.mu: callee re-acquires \(store\)\.mu via \(\*store\)\.get`
}

func fetch(s *store, k string) int { return s.get(k) }

// lockedHelper is the sanctioned shape: the helper expects the lock held
// and does not acquire, so the call is silent.
func (s *store) lockedHelper(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(k)
}

// spawn hands the re-acquiring call to another goroutine: it runs on its
// own stack after this function returns, not while the lock is held here.
func (s *store) spawn(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.get(k)
}

// closure builds but does not run a re-acquiring closure; calls inside
// literals are not events on this path.
func (s *store) closure(k string) func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int { return s.get(k) }
}

// allowed demonstrates suppression with a reviewed reason.
func (s *store) allowed(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(k) //optimus:allow lockorder — fixture: demonstrates audited suppression
}

type cache struct {
	rw    sync.RWMutex
	items map[string]int
}

func (c *cache) read(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.items[k]
}

// readRead re-enters the read side only: tolerated.
func (c *cache) readRead(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.read(k)
}

func (c *cache) write(k string, v int) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.items[k] = v
}

// upgrade calls the write side while holding the read side: the writer
// waits for the reader that is waiting for the writer.
func (c *cache) upgrade(k string, v int) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.write(k, v) // want `call to \(\*cache\)\.write while holding \(cache\)\.rw: callee re-acquires`
}

type emb struct {
	sync.Mutex
	n int
}

// embSelf re-acquires through the embedded mutex's promoted method.
func embSelf(e *emb) int {
	e.Lock()
	defer e.Unlock()
	e.Lock() // want `mutex \(emb\)\.Mutex is acquired while already held`
	defer e.Unlock()
	return e.n
}
