GO ?= go

.PHONY: build vet test race bench bench-scale microbench benchguard scaleguard fuzz check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the reproducible benchmark baseline harness and leaves
# BENCH_planner.json + BENCH_sim.json in the repo root.
bench:
	$(GO) run ./cmd/optimus-bench bench

# bench-scale runs the simulator hot-path scaling benchmark (1M-request
# trace, serial/scan vs indexed vs sharded) and leaves BENCH_sim_scale.json
# in the repo root.
bench-scale:
	$(GO) run ./cmd/optimus-bench scale

# microbench runs the Go testing.B microbenchmarks of the root package.
microbench:
	$(GO) test -bench=. -benchmem .

# benchguard is the benchmark regression gate: the bench harness must emit
# complete BENCH_*.json artifacts, parallel precompute must match serial
# byte-for-byte, and (on multicore) must not be slower; the -bench smoke
# keeps the precompute benchmarks compiling and running.
benchguard:
	$(GO) test -run 'TestBench' -bench 'BenchmarkPrecompute' -benchtime=1x ./internal/experiments

# scaleguard validates the checked-in BENCH_sim_scale.json (indexed replay
# must not be slower than the scan baseline, both equivalence checks must
# hold) and replays a small-N scale smoke end to end.
scaleguard:
	$(GO) test -run 'TestScale' ./internal/experiments

# fuzz runs a short native-fuzzing smoke over the plan executor.
fuzz:
	$(GO) test -fuzz='^FuzzPlanApply$$' -fuzztime=10s -run '^$$' ./internal/planner

# check is the pre-merge gate: static analysis, a full build, the test
# suite under the race detector (the gateway stress test needs it), and the
# benchmark regression guards.
check: vet build race benchguard scaleguard
