package model

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// randGraph builds a random valid DAG: ops in ID order with forward edges.
func randGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph("rand", "prop")
	n := 2 + rng.Intn(20)
	types := []OpType{OpConv2D, OpDense, OpReLU, OpBatchNorm, OpMaxPool, OpAdd, OpLSTM, OpEmbedding}
	for i := 0; i < n; i++ {
		t := types[rng.Intn(len(types))]
		op := Operation{Name: "op", Type: t, Shape: Shape{
			KernelH: 1 + rng.Intn(7), KernelW: 1 + rng.Intn(7),
			InChannels: 1 + rng.Intn(64), OutChannels: 1 + rng.Intn(64),
			Stride: 1 + rng.Intn(2),
		}}
		if t.HasWeights() {
			op.WeightsID = rng.Uint64() | 1
		}
		g.AddOp(op)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				g.Connect(i, j)
			}
		}
	}
	if g.NumEdges() == 0 && n >= 2 {
		g.Connect(0, 1)
	}
	return g
}

// TestQuickCloneEqual: clones are Equal and structurally independent.
func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed)
		c := g.Clone()
		if !g.Equal(c) || g.StructureHash() != c.StructureHash() || g.WeightsHash() != c.WeightsHash() {
			return false
		}
		// Mutating the clone never affects the original.
		c.Op(0).Shape.OutChannels++
		return !g.StructuralEqual(c) || g.Op(0).Shape.OutChannels != c.Op(0).Shape.OutChannels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJSONRoundTrip: arbitrary graphs survive the on-disk codec.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed)
		if g.Validate() != nil {
			return true // skip: generator produced weighted op with zero count
		}
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return g.Equal(&back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTopoSortRespectsEdges: every generated DAG topo-sorts and the
// order respects every edge.
func TestQuickTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed)
		order, err := g.TopoSort()
		if err != nil || len(order) != g.NumOps() {
			return false
		}
		pos := make(map[int]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHashDiscriminates: structurally different graphs (almost) never
// collide; equal graphs always agree.
func TestQuickHashDiscriminates(t *testing.T) {
	f := func(a, b int64) bool {
		ga, gb := randGraph(a), randGraph(b)
		if ga.StructuralEqual(gb) {
			return ga.StructureHash() == gb.StructureHash()
		}
		return ga.StructureHash() != gb.StructureHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
