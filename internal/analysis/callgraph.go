package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallKind classifies how a call site invokes its callee.
type CallKind uint8

const (
	// CallStatic is a plain call expression.
	CallStatic CallKind = iota
	// CallGo is the call of a go statement: the callee runs on a new
	// goroutine, so its effects (lock acquisitions, clock reads) happen on
	// another stack.
	CallGo
	// CallDefer is the call of a defer statement: it runs at function exit,
	// on the caller's stack.
	CallDefer
)

// CallSite is one statically resolved call edge: caller invokes callee at
// the given call expression. Only static resolutions appear in the graph —
// direct function calls, qualified package calls, and method calls resolved
// through the type checker's selections (for interface methods that is the
// interface's method object, which has no body). Calls through function
// values are invisible; function literals are handled by attribution (see
// CallNode).
type CallSite struct {
	Caller *CallNode
	Callee *CallNode
	// Call is the call expression; Kind says whether it sits under a go or
	// defer statement.
	Call *ast.CallExpr
	Kind CallKind
	// InLiteral reports the call occurs inside a function literal nested in
	// the caller's body. The literal's calls are attributed to the enclosing
	// declared function (a closure built here may run elsewhere, so edges
	// with InLiteral are may-happen, not must-happen, on the caller's own
	// execution).
	InLiteral bool
}

// Pos returns the call position.
func (s *CallSite) Pos() token.Pos { return s.Call.Pos() }

// CallNode is one function in the graph: a declared function or method of a
// loaded module package (Decl and Info set), or an external function the
// module calls — standard library, interface method — whose body is not in
// the loaded set (Decl nil).
type CallNode struct {
	// Func is the canonical type-checker object (generic origin for
	// instantiated functions).
	Func *types.Func
	// Decl is the function's declaration, nil for externals.
	Decl *ast.FuncDecl
	// Path is the defining package's import path ("" only for the blank
	// package of error cases; externals carry their real path).
	Path string
	// Info is the type info of the package holding Decl (nil for externals);
	// checkers use it to analyze the bodies of other packages' functions.
	Info *types.Info
	// Out lists the node's call sites in source order; In lists the sites
	// that call it, in graph construction order (deterministic).
	Out []*CallSite
	In  []*CallSite

	id int
}

// FullName returns the type-checker's full name for the function (package
// path qualified, receiver included for methods).
func (n *CallNode) FullName() string { return n.Func.FullName() }

// CallGraph is a static, intra-module call graph over every package a lint
// run loaded (pattern-matched packages and their module-local dependencies).
// It is built once per Run and shared by every Pass, so checkers can follow
// calls across package boundaries: transitive lock acquisition, wall-clock
// taint, goroutine join signals.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	order []*CallNode
}

// Node returns the graph node for fn (nil when fn is unknown, e.g. a
// function of a package the run never loaded or called). Instantiated
// generic functions resolve to their origin's node.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.nodes[origin(fn)]
}

// Nodes returns every node in deterministic construction order: declared
// functions first (packages sorted by import path, files and declarations in
// source order), then externals in first-call order.
func (g *CallGraph) Nodes() []*CallNode { return g.order }

// origin canonicalizes an instantiated generic function to its declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// StaticCallee resolves a call expression to the called function object, or
// nil for dynamic calls (function values), built-ins, and conversions.
// Method calls resolve through the static type's selection — for interface
// receivers that is the interface method itself.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := stripParens(call.Fun)
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	switch v := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return origin(fn)
			}
			return nil
		}
		// No selection: a qualified reference (pkg.Func).
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

// stripParens removes redundant parentheses (local copy — the checkers
// package has its own).
func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// BuildCallGraph builds the call graph over the given packages. The package
// slice must be in a deterministic order (Loader.Packages sorts by path);
// everything downstream — node ids, edge order — is then deterministic too,
// which the checkers rely on for stable findings.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}
	// Pass 1: register every declared function so bodies resolve forward
	// references and cross-package calls to nodes with declarations.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.ensure(fn)
				n.Decl = fd
				n.Path = pkg.Path
				n.Info = pkg.Info
			}
		}
	}
	// Pass 2: walk bodies and record edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.scanBody(g.nodes[origin(fn)], pkg.Info, fd.Body)
			}
		}
	}
	return g
}

// ensure returns the node for fn, creating it as external (no Decl) when
// first seen.
func (g *CallGraph) ensure(fn *types.Func) *CallNode {
	fn = origin(fn)
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &CallNode{Func: fn, id: len(g.order)}
	if p := fn.Pkg(); p != nil {
		n.Path = p.Path()
	}
	g.nodes[fn] = n
	g.order = append(g.order, n)
	return n
}

// scanBody records every statically resolvable call in body as an out-edge
// of caller. Calls inside nested function literals are attributed to caller
// with InLiteral set; go and defer statements mark their direct call's kind.
func (g *CallGraph) scanBody(caller *CallNode, info *types.Info, body *ast.BlockStmt) {
	kinds := make(map[*ast.CallExpr]CallKind)
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			kinds[v.Call] = CallGo
		case *ast.DeferStmt:
			kinds[v.Call] = CallDefer
		case *ast.FuncLit:
			lits = append(lits, v)
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, l := range lits {
			if l.Body != nil && l.Body.Pos() <= pos && pos < l.Body.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := StaticCallee(info, call)
		if fn == nil {
			return true
		}
		callee := g.ensure(fn)
		kind, marked := kinds[call]
		if !marked {
			kind = CallStatic
		}
		site := &CallSite{
			Caller:    caller,
			Callee:    callee,
			Call:      call,
			Kind:      kind,
			InLiteral: inLit(call.Pos()),
		}
		caller.Out = append(caller.Out, site)
		callee.In = append(callee.In, site)
		return true
	})
}
