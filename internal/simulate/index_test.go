package simulate_test

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// indexTestNames is a function mix wide enough to exercise warm reuse,
// repurposing, cold starts and queueing in the cross-check runs.
var indexTestNames = []string{
	"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet",
	"vgg16-imagenet", "vgg19-imagenet", "densenet121-imagenet",
}

// TestRouteCrossCheck replays fixed-seed traces with CrossCheckRouting on —
// the simulator panics on the first request where the indexed router and the
// scanning router disagree — across every policy, the three memory modes,
// restricted placements, and the full fault mix (crashes, outages, aborts,
// hangs with watchdog and breaker). This is the index≡scan equivalence proof
// on small traces.
func TestRouteCrossCheck(t *testing.T) {
	fns := testFunctions(t, indexTestNames...)
	tr := workload.MixedPoisson(indexTestNames, 8*time.Hour, 41)

	type variant struct {
		name string
		cfg  simulate.Config
	}
	var variants []variant
	for _, pol := range policy.All() {
		variants = append(variants, variant{
			name: "policy=" + pol.Name(),
			cfg:  simulate.Config{Policy: pol, Nodes: 3, ContainersPerNode: 3},
		})
	}
	variants = append(variants,
		variant{"memory=homogeneous", simulate.Config{
			Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 4,
			NodeMemoryMB: 2000, ContainerMemoryMB: 400,
		}},
		variant{"memory=finegrained", simulate.Config{
			Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 4,
			NodeMemoryMB: 1500,
		}},
		variant{"placement=hash", simulate.Config{
			Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 2,
			Placement: simulate.HashPlacement(indexTestNames, 4),
		}},
		variant{"placement=partial+invalid", simulate.Config{
			Policy: policy.Optimus{}, Nodes: 3, ContainersPerNode: 2,
			Placement: map[string][]int{
				"resnet18-imagenet": {0, 1},
				"vgg16-imagenet":    {99, -1}, // clamps to all nodes
			},
		}},
		variant{"faults=mixed", simulate.Config{
			Policy: policy.Optimus{}, Nodes: 3, ContainersPerNode: 3,
			Faults:         faults.Rates{Transform: 0.1, Load: 0.05, Crash: 0.03, Outage: 0.002, Hang: 0.05},
			WatchdogFactor: 3,
			Breaker:        supervisor.BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		}},
		variant{"faults=outageheavy", simulate.Config{
			Policy: policy.Pagurus{}, Nodes: 2, ContainersPerNode: 2,
			Faults: faults.Rates{Crash: 0.05, Outage: 0.01},
		}},
		variant{"tight=queueing", simulate.Config{
			Policy: policy.OpenWhisk{}, Nodes: 1, ContainersPerNode: 2,
		}},
	)

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := v.cfg
			cfg.Seed = 97
			cfg.CrossCheckRouting = true
			sim := simulate.New(cfg, fns)
			col, err := sim.Run(tr)
			if err != nil {
				t.Fatal(err)
			}
			if col.Len() == 0 {
				t.Fatal("no requests served")
			}
		})
	}
}

// TestIndexedMatchesScanEndToEnd proves the indexed replay is byte-identical
// to the legacy scanning replay: every record, every fault counter.
func TestIndexedMatchesScanEndToEnd(t *testing.T) {
	fns := testFunctions(t, indexTestNames...)
	tr := workload.MixedPoisson(indexTestNames, 12*time.Hour, 59)

	run := func(scan bool) *metrics.Collector {
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: 3, ContainersPerNode: 3,
			Seed:      7,
			RouteScan: scan,
			Faults:    faults.Rates{Transform: 0.05, Crash: 0.02},
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	scan, indexed := run(true), run(false)
	if scan.Faults != indexed.Faults {
		t.Errorf("fault stats diverge: scan %+v, indexed %+v", scan.Faults, indexed.Faults)
	}
	a, b := scan.Records(), indexed.Records()
	if len(a) != len(b) {
		t.Fatalf("record counts diverge: scan %d, indexed %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d diverges:\nscan    %+v\nindexed %+v", i, a[i], b[i])
		}
	}
}

// TestUnsortedTraceMatchesHeapOrder verifies the stream-merged Run handles an
// out-of-order trace like the old all-in-one event heap did: requests are
// stable-sorted by arrival time.
func TestUnsortedTraceMatchesHeapOrder(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet", "vgg16-imagenet")
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "vgg16-imagenet", At: 10 * time.Minute},
			{Function: "resnet18-imagenet", At: 0},
			{Function: "resnet18-imagenet", At: 10 * time.Minute},
			{Function: "resnet18-imagenet", At: 5 * time.Minute},
		},
	}
	sim := simulate.New(simulate.Config{Policy: policy.Optimus{}, CrossCheckRouting: true}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if len(recs) != 4 {
		t.Fatalf("%d records", len(recs))
	}
	var prev time.Duration
	for i, r := range recs {
		if r.Arrival < prev {
			t.Errorf("record %d served out of arrival order: %v after %v", i, r.Arrival, prev)
		}
		prev = r.Arrival
	}
	// Same-timestamp arrivals keep trace order: the vgg request precedes the
	// resnet one at t=10m.
	if recs[2].Function != "vgg16-imagenet" || recs[3].Function != "resnet18-imagenet" {
		t.Errorf("tie order wrong: got %s then %s", recs[2].Function, recs[3].Function)
	}
}

// TestCrossCheckLongHorizon stresses keep-alive expiry, maturation and the
// eviction skip-bound across a long horizon with sparse traffic, where
// containers routinely age past the idle threshold and the keep-alive window
// between requests.
func TestCrossCheckLongHorizon(t *testing.T) {
	names := indexTestNames[:4]
	fns := testFunctions(t, names...)
	rates := map[string]float64{}
	for i, n := range names {
		// Sparse, heterogeneous demand: mean gaps of ~3–12 minutes straddle
		// both the 60 s idle threshold and the 10 min keep-alive.
		rates[n] = 1.0 / (180 + 180*float64(i))
	}
	tr := workload.PoissonRates(rates, 48*time.Hour, 83)
	for _, pol := range []simulate.Policy{policy.Optimus{}, policy.OpenWhisk{}} {
		sim := simulate.New(simulate.Config{
			Policy: pol, Nodes: 2, ContainersPerNode: 2,
			CrossCheckRouting: true,
		}, fns)
		if _, err := sim.Run(tr); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

// TestCrossCheckKeepAliveBoundary pins the stale-LastDone boundary: service
// long enough that a container's previous idle age plus its service time
// crosses keep-alive exactly when a same-timestamp arrival observes it.
func TestCrossCheckKeepAliveBoundary(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet", "vgg19-imagenet")
	var reqs []workload.Request
	// Bursts straddling multiples of the keep-alive and idle thresholds, with
	// duplicate timestamps to hit the arrival-before-completion ordering.
	for _, at := range []time.Duration{
		0, time.Second, 59 * time.Second, 60 * time.Second, 61 * time.Second,
		9*time.Minute + 59*time.Second, 10 * time.Minute, 10 * time.Minute,
		20 * time.Minute, 30*time.Minute + 30*time.Second,
	} {
		reqs = append(reqs,
			workload.Request{Function: "resnet18-imagenet", At: at},
			workload.Request{Function: "vgg19-imagenet", At: at},
		)
	}
	tr := &workload.Trace{Duration: time.Hour, Requests: reqs}
	for _, n := range []int{1, 2} {
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: n, ContainersPerNode: 2,
			CrossCheckRouting: true,
		}, fns)
		if _, err := sim.Run(tr); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzRouteCrossCheck drives the cross-checked simulator with fuzz-chosen
// workload shape and cluster geometry; any index/scan divergence panics.
func FuzzRouteCrossCheck(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint16(120))
	f.Add(int64(42), uint8(1), uint8(1), uint16(30))
	f.Add(int64(7), uint8(4), uint8(2), uint16(600))
	f.Fuzz(func(t *testing.T, seed int64, nodes, caps uint8, horizonMin uint16) {
		n := int(nodes%4) + 1
		c := int(caps%4) + 1
		horizon := time.Duration(horizonMin%(14*24*60)+10) * time.Minute
		fns := testFunctions(t, indexTestNames[:3]...)
		tr := workload.MixedPoisson(indexTestNames[:3], horizon, seed)
		if tr.Len() > 20000 {
			t.Skip("trace too large for fuzz iteration")
		}
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: n, ContainersPerNode: c,
			Seed:              seed,
			CrossCheckRouting: true,
		}, fns)
		if _, err := sim.Run(tr); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRouteScanBaselineStillWorks pins the legacy configuration used as the
// benchmark baseline: RouteScan replay must keep producing full results.
func TestRouteScanBaselineStillWorks(t *testing.T) {
	fns := testFunctions(t, indexTestNames[:2]...)
	tr := workload.MixedPoisson(indexTestNames[:2], 2*time.Hour, 13)
	sim := simulate.New(simulate.Config{Policy: policy.Optimus{}, RouteScan: true}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != tr.Len() {
		t.Fatalf("served %d of %d", col.Len(), tr.Len())
	}
}
