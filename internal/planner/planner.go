package planner

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/model"
)

// Algorithm selects the planning solver.
type Algorithm int

const (
	// AlgoGroup is the linear-time group-based algorithm (Module 2⁺), the
	// production default.
	AlgoGroup Algorithm = iota
	// AlgoHungarian is the basic optimal algorithm via Munkres assignment
	// (Module 2).
	AlgoHungarian
	// AlgoBrute enumerates permutations; usable only for tiny graphs and
	// kept as the optimality oracle for tests.
	AlgoBrute
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoGroup:
		return "group"
	case AlgoHungarian:
		return "hungarian"
	case AlgoBrute:
		return "brute"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Planner computes transformation plans between model graphs.
type Planner struct {
	est  *cost.Estimator
	algo Algorithm
}

// New returns a planner using the given profiled cost estimates and solver.
func New(est *cost.Estimator, algo Algorithm) *Planner {
	return &Planner{est: est, algo: algo}
}

// Estimator returns the planner's cost estimator.
func (p *Planner) Estimator() *cost.Estimator { return p.est }

// Plan computes a transformation plan from src to dst, including the
// safeguard decision: if the estimated transformation cost exceeds loading
// dst from scratch, the plan is flagged LoadFromScratch.
func (p *Planner) Plan(src, dst *model.Graph) *metaop.Plan {
	mp := p.mapping(src, dst)
	plan := BuildPlan(p.est, src, dst, mp)
	plan.ScratchCost = p.est.ModelLoad(dst)
	if plan.EstCost > plan.ScratchCost {
		plan.LoadFromScratch = true
	}
	return plan
}

func (p *Planner) mapping(src, dst *model.Graph) Mapping {
	switch p.algo {
	case AlgoHungarian:
		mx := BuildMatrix(p.est, src, dst)
		rowToCol, _ := hungarian(mx)
		return mappingFromAssignment(mx, rowToCol)
	case AlgoBrute:
		mx := BuildMatrix(p.est, src, dst)
		rowToCol, _ := bruteForce(mx)
		return mappingFromAssignment(mx, rowToCol)
	default:
		return groupMapping(p.est, src, dst)
	}
}

// BuildPlan converts an operation mapping into an executable meta-operator
// plan: substitutions become Replace/Reshape steps, deletions Reduce steps,
// insertions Add steps, and the edge difference under the mapping becomes
// Edge steps.
func BuildPlan(est *cost.Estimator, src, dst *model.Graph, mp Mapping) *metaop.Plan {
	plan := &metaop.Plan{
		SrcName: src.Name, DstName: dst.Name,
		SrcHash: src.StructureHash(), DstHash: dst.StructureHash(),
	}
	var total time.Duration
	add := func(s metaop.Step) {
		plan.Steps = append(plan.Steps, s)
		total += s.EstCost
	}

	for i, j := range mp.SrcToDst {
		srcOp := src.Op(i)
		if j < 0 {
			add(metaop.Step{Kind: metaop.KindReduce, SrcID: i, DstID: -1, EstCost: est.ReduceCost(srcOp)})
			continue
		}
		dstOp := dst.Op(j)
		switch {
		case srcOp.Shape == dstOp.Shape && srcOp.WeightsID == dstOp.WeightsID:
			// Perfect match: zero cost, no step.
		case srcOp.Shape == dstOp.Shape:
			add(metaop.Step{Kind: metaop.KindReplace, SrcID: i, DstID: j, Dst: withID(dstOp, j),
				EstCost: est.ReplaceCost(dstOp)})
		default:
			add(metaop.Step{Kind: metaop.KindReshape, SrcID: i, DstID: j, Dst: withID(dstOp, j),
				EstCost: est.ReshapeCost(srcOp, dstOp)})
			if dstOp.HasWeights() {
				add(metaop.Step{Kind: metaop.KindReplace, SrcID: i, DstID: j, Dst: withID(dstOp, j),
					EstCost: est.ReplaceCost(dstOp)})
			}
		}
	}
	for _, j := range mp.Added {
		add(metaop.Step{Kind: metaop.KindAdd, SrcID: -1, DstID: j, Dst: withID(dst.Op(j), j),
			EstCost: est.AddCost(dst.Op(j))})
	}

	// Edge difference under the mapping: source edges whose mapped image is
	// not a destination edge are removed; destination edges not covered by a
	// mapped source edge are added.
	kept := make(map[model.Edge]bool)
	for _, e := range src.Edges() {
		mf, mt := mp.SrcToDst[e.From], mp.SrcToDst[e.To]
		if mf >= 0 && mt >= 0 && dst.HasEdge(mf, mt) {
			kept[model.Edge{From: mf, To: mt}] = true
			continue
		}
		add(metaop.Step{Kind: metaop.KindEdge, SrcID: -1, DstID: -1,
			EdgeFrom: e.From, EdgeTo: e.To, EdgeAdd: false, EstCost: est.EdgeCost(1)})
	}
	for _, e := range dst.Edges() {
		if !kept[e] {
			add(metaop.Step{Kind: metaop.KindEdge, SrcID: -1, DstID: -1,
				EdgeFrom: e.From, EdgeTo: e.To, EdgeAdd: true, EstCost: est.EdgeCost(1)})
		}
	}

	plan.EstCost = total
	return plan
}

// withID returns a copy of op with its ID set to the destination slot, so
// executed steps materialize ops with correct destination identifiers.
func withID(op *model.Operation, id int) model.Operation {
	cp := *op
	cp.ID = id
	return cp
}
