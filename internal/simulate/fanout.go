package simulate

// This file drives fault-tolerant fan-out transform trees (package fanout)
// inside the trace-replay engine: a deep per-node queue for a function
// triggers a replication tree seeded from the function's warm containers, and
// every completed replica immediately becomes a donor for the next wave.
//
// The two phases of a replica build are pipelined across waves: the
// recipient-local structure load (sandbox init + graph instantiation) runs
// without holding any donor, and only the weights stream occupies one of the
// donor node's bounded outbound donation slots. Phase costs come straight
// from the cost profile's load breakdown, so the tree's economics match the
// transform economics everywhere else in the simulator.
//
// A building replica's container is held busy for the whole build (one long
// horizon instead of per-phase BusyUntil rewrites): the router never sees a
// structure-only container as warm, same-timestamp arrivals cannot grab it at
// a phase boundary, and eviction cannot reclaim it. The hold is released at
// completion by re-keying the index's busy-end transition to the completion
// instant, after which the replica idles into service exactly like any other
// completed container.
//
// Every event carries the member generation it was scheduled under;
// re-parenting, cancellation and teardown bump the generation, so stale
// completions and crashes die at fire time without event-heap surgery. All
// scheduling decisions iterate nodes and members in deterministic order — a
// fixed seed reproduces the exact same tree, faults included.

import (
	"sort"
	"time"

	"repro/internal/fanout"
	"repro/internal/faults"
)

// fanoutBuildHold is the busy horizon a building replica's container is held
// under. It only needs to outlast the build (structure load, donor waits,
// weights stream or fallback, including re-parenting detours); completion
// cuts it to the actual finish time, and teardown removes the container, so
// the horizon itself never fires a transition.
const fanoutBuildHold = 24 * time.Hour

// fanoutRun couples one fan-out tree with its engine-side state.
type fanoutRun struct {
	tree *fanout.Tree
	fr   *fnRuntime
	// ctrs and home map member ID → container and hosting node (seeds
	// included). Containers lost outside the fan-out paths (outages, crashes,
	// eviction, repurposing) are detected lazily and reconciled on the next
	// pump.
	ctrs map[int]*Container
	home map[int]*Node
	// gens invalidates scheduled events: each member's live event carries the
	// generation it was scheduled under, and any reschedule or teardown bumps
	// it so the stale event is dropped at fire time.
	gens map[int]int
	// Phase costs from the profile's load breakdown: structDur is the
	// recipient-local phase (sandbox init + graph structure), weightsDur the
	// donor-occupying weights stream, and fallbackDur the from-scratch load a
	// diverted child pays (structure already built, so deserialize + assign).
	structDur, weightsDur, fallbackDur time.Duration
	merged                             bool
}

// maybeFanout triggers a tree when the node's queue for fn crosses the
// configured threshold and the cluster holds at least one seedable warm
// container — there is nothing to replicate from otherwise, and a later
// arrival retries once the first cold start completes.
func (s *Simulator) maybeFanout(node *Node, fr *fnRuntime) {
	if s.fanouts[fr.fn.Name] != nil {
		return // one active tree per function
	}
	depth := 0
	for _, q := range node.queue {
		if q.fr == fr {
			depth++
		}
	}
	if depth < s.cfg.Fanout.Threshold {
		return
	}
	run := &fanoutRun{
		fr:   fr,
		ctrs: make(map[int]*Container),
		home: make(map[int]*Node),
		gens: make(map[int]int),
	}
	b := s.env.Profile.ModelLoad(fr.fn.Model)
	run.structDur = s.env.Profile.SandboxInit + b.Structure
	run.weightsDur = b.Weights
	run.fallbackDur = b.Deserialize + b.Weights
	// Size the tree to what the cluster can actually hold right now: a
	// target beyond placeable capacity would leave the tree waiting forever
	// for slots that never free.
	grant := s.env.GrantFor(fr.fn)
	want := 0
	for _, n := range s.nodes {
		if !s.unroutable(n, s.clock) {
			want += fanoutCapacity(n, s.clock, grant, fr.fn)
		}
	}
	if want > s.cfg.Fanout.MaxRecipients {
		want = s.cfg.Fanout.MaxRecipients
	}
	if want <= 0 {
		return
	}
	run.tree = fanout.New(s.cfg.Fanout, fr.fn.Name, want, s.clock)
	for _, n := range s.nodes {
		if n.Down(s.clock) {
			continue
		}
		for _, c := range n.Containers {
			// A busy container that has never completed a request is mid cold
			// start: its model is not loaded yet, so it cannot seed the tree.
			if c.Fn == fr.fn && !c.dead && (!c.Busy(s.clock) || c.LastDone > c.Created) {
				id := run.tree.AddSeed(n.ID)
				run.ctrs[id] = c
				run.home[id] = n
			}
		}
	}
	if len(run.ctrs) == 0 {
		return
	}
	if s.fanouts == nil {
		s.fanouts = make(map[string]*fanoutRun)
	}
	s.fanouts[fr.fn.Name] = run
	s.fanoutLog = append(s.fanoutLog, run)
	s.pumpFanout(run)
}

// fanoutPlaceable is CanPlaceFor with one exclusion: idle containers already
// holding the tree's function never count as reclaimable. Counting them would
// let a capacity-bound tree place recipients by evicting its own seeds and
// warm members — churn that destroys exactly the warmth it builds. Since LRU
// eviction consumes the oldest idle containers first and the tree's members
// go idle last (they complete after the trigger), placements gated on this
// check reclaim foreign idle containers and leave the tree intact.
func fanoutPlaceable(n *Node, now time.Duration, memMB int, fn *Function) bool {
	slots := len(n.Containers)
	free := 0
	if n.MemoryMB > 0 {
		free = n.MemoryMB - n.UsedMB()
	}
	for _, c := range n.Containers {
		if !c.Busy(now) && c.Fn != fn {
			slots--
			free += c.MemMB
		}
	}
	if slots >= n.Capacity {
		return false
	}
	return n.MemoryMB == 0 || free >= memMB
}

// fanoutCapacity counts how many fresh recipients a node could host right
// now under fanoutPlaceable's rules (free slots plus reclaimable foreign idle
// containers, bounded by memory in memory-aware modes).
func fanoutCapacity(n *Node, now time.Duration, memMB int, fn *Function) int {
	slots := n.Capacity - len(n.Containers)
	free := 0
	if n.MemoryMB > 0 {
		free = n.MemoryMB - n.UsedMB()
	}
	for _, c := range n.Containers {
		if !c.Busy(now) && c.Fn != fn {
			slots++
			free += c.MemMB
		}
	}
	if slots < 0 {
		slots = 0
	}
	if n.MemoryMB > 0 && memMB > 0 {
		if byMem := free / memMB; byMem < slots {
			if byMem < 0 {
				return 0
			}
			return byMem
		}
	}
	return slots
}

// fanoutAlive reports whether a member's container still resides on its node
// holding fn's model — the liveness test behind donor eligibility and
// reconciliation. Eviction removes a container without marking it dead, so
// residency is checked through the index (or by scanning when routing scans).
func (s *Simulator) fanoutAlive(run *fanoutRun, member int) bool {
	c := run.ctrs[member]
	if c == nil || c.dead || c.Fn != run.fr.fn {
		return false
	}
	if s.idxOn {
		return c.idxState != idxNone
	}
	for _, x := range run.home[member].Containers {
		if x == c {
			return true
		}
	}
	return false
}

// fanoutEligible is the donor-eligibility check handed to the tree: the
// donor's container must be alive and its node routable — down and
// health-avoided nodes donate nothing, steering donor scheduling exactly like
// request routing.
func (s *Simulator) fanoutEligible(run *fanoutRun) func(member, node int) bool {
	return func(member, nodeID int) bool {
		return s.fanoutAlive(run, member) && !s.unroutable(s.nodes[nodeID], s.clock)
	}
}

// pumpFanouts advances every active tree; called whenever cluster state that
// gates tree progress may have changed (a completion or crash freed capacity,
// an outage wiped members). Iteration is name-sorted so map order never leaks
// into scheduling.
func (s *Simulator) pumpFanouts() {
	if len(s.fanouts) == 0 {
		return
	}
	names := make([]string, 0, len(s.fanouts))
	for n := range s.fanouts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if run := s.fanouts[n]; run != nil {
			s.pumpFanout(run)
		}
	}
}

// pumpFanout advances one tree: reconcile lost members, start recipients up
// to the target wherever capacity allows, hand freed donor streams to parked
// children, and divert stranded children to fallback loads.
func (s *Simulator) pumpFanout(run *fanoutRun) {
	if run.tree.Done() {
		return
	}
	s.reconcileFanout(run)
	grant := s.env.GrantFor(run.fr.fn)
	for run.tree.NeedRecipients() > 0 {
		var cands []int
		for _, n := range s.nodes {
			if !s.unroutable(n, s.clock) && fanoutPlaceable(n, s.clock, grant, run.fr.fn) {
				cands = append(cands, n.ID)
			}
		}
		if len(cands) == 0 {
			break // capacity-bound: retried when a completion frees a slot
		}
		child, nodeID, ok := run.tree.StartRecipient(cands)
		if !ok {
			break
		}
		s.startFanoutRecipient(run, child, s.nodes[nodeID])
	}
	for _, a := range run.tree.PumpPending(s.fanoutEligible(run)) {
		s.scheduleDonation(run, a)
	}
	s.fanoutStranded(run)
}

// reconcileFanout retires completed members whose containers were lost
// outside the fan-out paths — node outages, crashes, keep-alive eviction, or
// repurposing to another function — re-parenting any children that were
// streaming from them.
func (s *Simulator) reconcileFanout(run *fanoutRun) {
	for _, m := range run.tree.Members() {
		if m.State != fanout.StateWarm && m.State != fanout.StatePoisoned {
			continue
		}
		if s.fanoutAlive(run, m.ID) {
			continue
		}
		run.gens[m.ID]++
		for _, r := range run.tree.MemberLost(m.ID, s.fanoutEligible(run)) {
			// The orphan's completion event for the dead donation is stale
			// whether or not a new donor was found — a parked orphan in
			// particular must not let it fire and fake a warm replica.
			run.gens[r.Child]++
			if r.NewDonor >= 0 {
				s.scheduleDonation(run, fanout.Assignment{
					Child: r.Child, Donor: r.NewDonor, DonorNode: r.NewDonorNode,
				})
			}
		}
	}
}

// fanoutStranded diverts parked children to from-scratch fallbacks when the
// tree can no longer produce a donor for them (everything that could donate
// is dead and nothing in flight will complete into a donor).
func (s *Simulator) fanoutStranded(run *fanoutRun) {
	alive := func(member, _ int) bool { return s.fanoutAlive(run, member) }
	for _, child := range run.tree.Stranded(alive) {
		s.scheduleFallback(run, child, false)
	}
}

// startFanoutRecipient creates the child's container and schedules its
// recipient-local structure load. The container is held busy under the build
// horizon so routing, eviction and repurposing leave it alone until the
// replica is actually warm.
func (s *Simulator) startFanoutRecipient(run *fanoutRun, child int, node *Node) {
	now := s.clock
	node.expireIndex(now)
	c := node.newContainer(run.fr.fn, s.env.GrantFor(run.fr.fn), now)
	run.ctrs[child] = c
	run.home[child] = node
	c.BusyUntil = now + fanoutBuildHold
	node.noteStartService(c, run.fr.ord)
	end := now + run.structDur
	s.watchdog.Lease(c.ID, end)
	run.gens[child]++
	s.schedule(event{at: end, kind: evFanoutStruct, node: node, c: c,
		fo: run, member: child, gen: run.gens[child]})
}

// fanoutStruct finishes a recipient's structure load: the child asks the tree
// for a donor and either starts its weights stream or parks until one frees.
func (s *Simulator) fanoutStruct(ev event) {
	run := ev.fo
	if ev.gen != run.gens[ev.member] {
		return
	}
	if ev.c.dead {
		run.gens[ev.member]++
		run.tree.RecipientLost(ev.member)
		s.pumpFanout(run)
		return
	}
	if a, ok := run.tree.StructDone(ev.member, s.fanoutEligible(run)); ok {
		s.scheduleDonation(run, a)
		return
	}
	// Parked: the container stays held busy; PumpPending hands it a donor
	// when a stream frees, and the stranded check diverts it to a fallback
	// when the tree can no longer produce one.
	s.fanoutStranded(run)
}

// scheduleDonation starts streaming weights from the assigned donor. The
// replication pair's circuit breaker ((fn→fn)) may divert the child to a
// fallback load; a donation degraded past the per-wave virtual-time deadline
// is cancelled up front by the watchdog — only degraded-bandwidth donations
// can breach it, so zero-fault runs never cancel. The FanoutCrash and Corrupt
// faults draw here, at scheduling time, so a fixed seed reproduces the exact
// failure pattern.
func (s *Simulator) scheduleDonation(run *fanoutRun, a fanout.Assignment) {
	now := s.clock
	name := run.fr.fn.Name
	c := run.ctrs[a.Child]
	if c == nil || c.dead {
		run.gens[a.Child]++
		run.tree.RecipientLost(a.Child)
		return
	}
	if !s.breaker.Allow(name, name, now) {
		s.collector.Faults.BreakerShortCircuits++
		s.scheduleFallback(run, a.Child, false)
		return
	}
	w := run.weightsDur
	donorNode := s.nodes[a.DonorNode]
	if donorNode.DegradedBandwidth(now) {
		w = time.Duration(float64(w) * s.cfg.BandwidthFactor)
	}
	if s.watchdog != nil && w > s.watchdog.Deadline(run.weightsDur) {
		s.watchdog.RecordWaveCancel()
		s.scheduleFallback(run, a.Child, true)
		return
	}
	if s.inj.Fire(faults.FanoutCrash) {
		// The donor dies at the stream's midpoint; its orphans (this child
		// and any sibling streams) are re-parented when the crash fires.
		s.schedule(event{at: now + w/2, kind: evFanoutCrash, node: donorNode,
			c: run.ctrs[a.Donor], fo: run, member: a.Donor, gen: run.gens[a.Donor]})
	}
	corrupt := s.inj.Fire(faults.Corrupt)
	end := now + w
	s.watchdog.Lease(c.ID, end)
	run.gens[a.Child]++
	s.schedule(event{at: end, kind: evFanoutDone, node: run.home[a.Child], c: c,
		fo: run, member: a.Child, gen: run.gens[a.Child], foCorrupt: corrupt})
}

// scheduleFallback diverts a building child to a from-scratch load (open
// breaker, wave-deadline cancel, or no possible donor).
func (s *Simulator) scheduleFallback(run *fanoutRun, child int, waveCancel bool) {
	c := run.ctrs[child]
	if c == nil || c.dead {
		run.gens[child]++
		run.tree.RecipientLost(child)
		return
	}
	run.tree.ToFallback(child, waveCancel)
	end := s.clock + run.fallbackDur
	s.watchdog.Lease(c.ID, end)
	run.gens[child]++
	s.schedule(event{at: end, kind: evFanoutDone, node: run.home[child], c: c,
		fo: run, member: child, gen: run.gens[child]})
}

// fanoutRelease ends a replica's build hold at the current clock: the busy
// transition is re-keyed to now (the hold horizon's timer dies stale) and
// drained, leaving the container in the same busy-end state a normal service
// completion sees.
func (s *Simulator) fanoutRelease(node *Node, c *Container) {
	c.BusyUntil = s.clock
	if node.idx != nil && c.idxState == idxBusy {
		node.idx.timers.push(idxTimer{at: s.clock, c: c})
	}
	node.expireIndex(s.clock)
}

// fanoutDone finishes a child's weights stream or fallback load: the tree
// records the completion (running its wave-boundary edge-balance sweep), any
// quarantined subtree is torn down, and the surviving replica idles into
// service — its first request records a StartFanout, and if its own node has
// no queued work it steals one stranded request for the function from another
// node's queue, turning warmth into goodput.
func (s *Simulator) fanoutDone(ev event) {
	run := ev.fo
	if ev.gen != run.gens[ev.member] {
		return
	}
	run.gens[ev.member]++
	c, node := ev.c, ev.node
	if c.dead {
		run.tree.RecipientLost(ev.member)
		s.pumpFanout(run)
		return
	}
	name := run.fr.fn.Name
	res := run.tree.Complete(ev.member, s.clock, ev.foCorrupt)
	if !res.Completed {
		// The tree refused the completion: the member was re-parented,
		// cancelled or quarantined since this event was scheduled. Drop the
		// event without promoting the container — it is still mid-build.
		return
	}
	removedSelf := false
	for _, id := range res.Swept.Removed {
		if id == ev.member {
			removedSelf = true
		}
	}
	if !res.Swept.Empty() {
		// The sweep found corruption: that is failure evidence on the
		// replication pair, and the quarantined containers are destroyed
		// before anything can route onto them.
		s.breaker.RecordFailure(name, name, s.clock)
		s.fanoutTeardown(run, res.Swept.Removed)
		s.fanoutTeardown(run, res.Swept.Cancelled)
	} else if res.ViaDonation {
		s.breaker.RecordSuccess(name, name)
	}
	if !removedSelf {
		c.fanoutFresh = true
		c.fanoutBuilt = true
		// complete() drains the node's queue, lets the replica steal queued
		// work from other nodes, and pumps the tree.
		s.fanoutRelease(node, c)
		s.complete(node, c)
	}
	if res.TreeDone {
		s.mergeFanout(run)
		delete(s.fanouts, name)
	} else {
		s.pumpFanout(run)
	}
}

// fanoutCrash kills a donor midway through a donation: the container is lost
// (any request it was serving is re-dispatched), the node's health takes the
// failure, and each orphaned in-flight child is re-parented onto the nearest
// healthy ancestor — or parked for the next free donor.
func (s *Simulator) fanoutCrash(ev event) {
	run := ev.fo
	if ev.gen != run.gens[ev.member] {
		return
	}
	run.gens[ev.member]++
	c, node := ev.c, ev.node
	name := run.fr.fn.Name
	if c != nil && !c.dead {
		node.expireIndex(s.clock)
		node.Remove(c)
		c.dead = true
		s.watchdog.Expire(c.ID)
		if c.hasServing {
			c.hasServing = false
			if c.crashPending {
				c.crashPending = false
				s.retryOrDrop(c.serving)
			}
		}
	}
	s.health.ObserveFailure(node.ID, s.clock)
	s.breaker.RecordFailure(name, name, s.clock)
	for _, r := range run.tree.DonorLost(ev.member, s.fanoutEligible(run), true) {
		// The orphan's completion event for the dead donation is stale whether
		// or not a new donor was found; bump the generation so it dies at fire
		// time instead of faking a warm replica out of a parked child.
		run.gens[r.Child]++
		if r.NewDonor >= 0 {
			s.scheduleDonation(run, fanout.Assignment{
				Child: r.Child, Donor: r.NewDonor, DonorNode: r.NewDonorNode,
			})
		}
		// Parked orphans stay held busy; PumpPending or the stranded check
		// resolves them.
	}
	s.pumpFanout(run)
}

// fanoutTeardown destroys quarantined members' containers; a victim serving a
// request loses it like any other container loss (bounded retries).
func (s *Simulator) fanoutTeardown(run *fanoutRun, ids []int) {
	for _, id := range ids {
		run.gens[id]++
		c := run.ctrs[id]
		if c == nil || c.dead {
			continue
		}
		node := run.home[id]
		node.expireIndex(s.clock)
		node.Remove(c)
		c.dead = true
		s.watchdog.Expire(c.ID)
		if c.hasServing {
			c.hasServing = false
			if c.crashPending {
				c.crashPending = false
				s.retryOrDrop(c.serving)
			}
		}
	}
}

// fanoutStealInto moves one queued request for the replica's function from
// another node onto the replica's own node and serves it there. Static
// placement may exclude the replica's node from the function's candidate set,
// so the steal serves directly instead of re-dispatching through the router;
// nodes and queues scan in deterministic order.
func (s *Simulator) fanoutStealInto(node *Node, c *Container) {
	if c.dead || c.Busy(s.clock) || len(node.queue) > 0 {
		return
	}
	fr := s.rt(c.Fn)
	for _, n := range s.nodes {
		if n == node || len(n.queue) == 0 {
			continue
		}
		for i, q := range n.queue {
			if q.fr == fr {
				n.queue = append(n.queue[:i], n.queue[i+1:]...)
				s.serveOrQueue(node, fr, q.arrival, q.retries)
				return
			}
		}
	}
}

// mergeFanout folds a tree's tallies into the collector exactly once.
func (s *Simulator) mergeFanout(run *fanoutRun) {
	if run.merged {
		return
	}
	run.merged = true
	s.collector.Fanout.Merge(run.tree.Stats())
}
