package planner

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/model"
)

// Precomputer is the parallel offline-planning pipeline behind §4.4's
// planning-strategy cache: pairwise Plan(src, dst) work is fanned across a
// bounded worker pool so a model registration returns immediately and the
// plan warm-up saturates every core instead of running serially on the
// registration path. Deduplication is inherited from Cache.GetOrPlan's
// singleflight, so concurrent registrations (or an online request racing the
// pipeline) never plan the same pair twice.
//
// Workers are started lazily and exit when the queue drains, so an idle
// Precomputer holds no goroutines and needs no Close.
type Precomputer struct {
	pl      *Planner
	cache   *Cache
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []pair
	active int
	// outstanding counts enqueued-but-unfinished pairs; Quiesce waits for
	// it to reach zero.
	outstanding int
	enqueued    int
	completed   int
	peakQueue   int
}

type pair struct{ src, dst *model.Graph }

// NewPrecomputer returns a precompute engine planning with pl into cache,
// running at most workers plans concurrently. workers <= 0 defaults to
// GOMAXPROCS.
func NewPrecomputer(pl *Planner, cache *Cache, workers int) *Precomputer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Precomputer{pl: pl, cache: cache, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Planner returns the underlying planner.
func (p *Precomputer) Planner() *Planner { return p.pl }

// Cache returns the plan cache the pipeline fills.
func (p *Precomputer) Cache() *Cache { return p.cache }

// Enqueue schedules the src→dst plan for background computation and returns
// immediately. Pairs already cached (or currently being planned by anyone)
// cost one cheap cache probe in the worker.
func (p *Precomputer) Enqueue(src, dst *model.Graph) {
	p.mu.Lock()
	p.queue = append(p.queue, pair{src, dst})
	if len(p.queue) > p.peakQueue {
		p.peakQueue = len(p.queue)
	}
	p.outstanding++
	p.enqueued++
	if p.active < p.workers {
		p.active++
		go p.drain()
	}
	p.mu.Unlock()
}

// EnqueueAll schedules both plan directions between m and every model in
// others — the 2·(N−1) pairs a registration owes the plan cache.
func (p *Precomputer) EnqueueAll(m *model.Graph, others []*model.Graph) {
	for _, o := range others {
		if o == m {
			continue
		}
		p.Enqueue(o, m)
		p.Enqueue(m, o)
	}
}

// PrecomputeAll plans every ordered pair of models and waits for completion
// — the bulk warm-up a repository reopen performs.
func (p *Precomputer) PrecomputeAll(models []*model.Graph) {
	for i, a := range models {
		for j, b := range models {
			if i != j {
				p.Enqueue(a, b)
			}
		}
	}
	p.Quiesce()
}

// drain runs on a worker goroutine: it plans queued pairs until the queue is
// empty, then exits (a later Enqueue starts a fresh worker).
func (p *Precomputer) drain() {
	for {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.active--
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		// GetOrPlanLocal, not GetOrPlan: precompute never consults the
		// cross-gateway loader. Registration-time pair filters decide which
		// pairs a gateway precomputes, so a worker that reaches here plans
		// locally by design — pulling here could chain flight-waits between
		// gateways whose precomputers pull from each other.
		p.cache.GetOrPlanLocal(p.pl, t.src, t.dst)

		p.mu.Lock()
		p.outstanding--
		p.completed++
		if p.outstanding == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// Quiesce blocks until every pair enqueued so far has been planned. Pairs
// enqueued concurrently with Quiesce extend the wait.
func (p *Precomputer) Quiesce() {
	p.mu.Lock()
	for p.outstanding > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Ready reports whether the pipeline has no outstanding work: every enqueued
// pair is in the cache (or was deduplicated against an identical pair).
func (p *Precomputer) Ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding == 0
}

// PrecomputeStats is a point-in-time snapshot of the pipeline.
type PrecomputeStats struct {
	// Workers is the pool bound; Active the workers currently running.
	Workers, Active int
	// Enqueued/Completed/Pending count pairs over the pipeline's lifetime;
	// PeakQueue is the deepest the backlog ever got.
	Enqueued, Completed, Pending int
	PeakQueue                    int
	// PlanTimeTotal/PlanTimeMax aggregate per-pair planning time across the
	// shared cache (including inline GetOrPlan fallbacks); Planned counts
	// the plans actually computed.
	PlanTimeTotal, PlanTimeMax time.Duration
	Planned                    int
}

// Stats returns the pipeline snapshot.
func (p *Precomputer) Stats() PrecomputeStats {
	p.mu.Lock()
	st := PrecomputeStats{
		Workers: p.workers, Active: p.active,
		Enqueued: p.enqueued, Completed: p.completed, Pending: p.outstanding,
		PeakQueue: p.peakQueue,
	}
	p.mu.Unlock()
	pt := p.cache.PlanTimes()
	st.PlanTimeTotal, st.PlanTimeMax, st.Planned = pt.Total, pt.Max, pt.Count
	return st
}
