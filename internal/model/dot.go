package model

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot format for visual inspection
// (`optimus-zoo dot <model> | dot -Tsvg`). Weighted operations are drawn as
// boxes with their parameter counts; weight-free ones as ellipses.
func dotEscape(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(s)
}

// DOT renders the graph (see type comment above).
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [fontsize=10];\n", g.Name)
	for _, op := range g.Ops() {
		shape := "ellipse"
		label := fmt.Sprintf("%s\\n%s", dotEscape(op.Name), op.Type)
		if op.HasWeights() {
			shape = "box"
			label += fmt.Sprintf("\\n%s | %dw", op.Shape, op.WeightCount())
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\" shape=%s];\n", op.ID, label, shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	return b.String()
}
