package controlplane

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/gateway"
)

// TestClusterStress extends the PR 3 async-pipeline stress pattern across
// gateways: 4 in-process members under concurrent RegisterModel broadcasts,
// request forwarding from racing invokers, stats readers, and a mid-test
// Drain of one member. Run under -race. On quiesce:
//
//   - no lost plans: every ordered catalog pair is in its current ring
//     owner's cache;
//   - no duplicate planning: the cluster-wide planned count equals the pair
//     count — the registration-time ownership filter plus the drain handoff
//     meant exactly one member ever ran the planner for each pair.
func TestClusterStress(t *testing.T) {
	clock := &fakeClock{}
	cl := testCluster(t, 4, clock, func(c *Config) { c.PlanWorkers = 4 })
	models := testModels(t, 8)

	// Seed half the catalog up front so invokers always have targets; the
	// other half registers concurrently with the load.
	preset := models[:4]
	concurrent := models[4:]
	for _, m := range preset {
		if err := cl.RegisterModel(m); err != nil {
			t.Fatal(err)
		}
	}

	const (
		workers = 6
		iters   = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters+iters)
	do := func(f func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := f(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	for w := 0; w < 2; w++ {
		do(func(i int) error { // racing (mostly duplicate) registrations
			if err := cl.RegisterModel(concurrent[i%len(concurrent)]); err != nil &&
				!errors.Is(err, gateway.ErrDuplicateModel) {
				return err
			}
			return nil
		})
	}
	for w := 0; w < 3; w++ {
		entryW := w
		do(func(i int) error { // invokers entering at rotating members force forwarding
			entries := cl.Members()
			entry := entries[(entryW+i)%len(entries)]
			m := preset[i%len(preset)]
			_, _, err := cl.Invoke(entry, m.Name, clock.advance(40*time.Second))
			if err != nil && !errors.Is(err, gateway.ErrUnknownModel) {
				return fmt.Errorf("invoke %s at %s: %w", m.Name, entry, err)
			}
			return nil
		})
	}
	do(func(int) error { // stats readers race counters and topology
		st := cl.Stats()
		if st.RingMembers == 0 {
			return errors.New("ring emptied mid-test")
		}
		return nil
	})

	// Mid-test drain: let the load build, then take gw-2 out while
	// registrations, forwards, and pulls are all in flight.
	drained := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		drained <- cl.Drain("gw-2")
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("mid-test drain failed: %v", err)
	}
	cl.PlanningQuiesce()

	// Survivors only, and the catalog is complete everywhere that is alive.
	members := cl.Members()
	if len(members) != 3 {
		t.Fatalf("members after drain: %v", members)
	}

	// No lost plans: each ordered pair sits in its ring owner's cache.
	for _, src := range models {
		for _, dst := range models {
			if src == dst {
				continue
			}
			owner, ok := cl.Owner(pairKey(src.Name, dst.Name))
			if !ok {
				t.Fatalf("no owner for pair %s→%s", src.Name, dst.Name)
			}
			gw, ok := cl.Member(owner)
			if !ok {
				t.Fatalf("owner %s not a member", owner)
			}
			if _, ok := gw.Env().Plans.Get(src, dst); !ok {
				t.Errorf("lost plan: %s→%s missing from owner %s after drain", src.Name, dst.Name, owner)
			}
		}
	}

	// No duplicate planning: survivors' planned counts plus the plans that
	// departed with gw-2 (handed off, not re-planned) must equal the pair
	// count exactly. Since the drained member's tally is gone, assert the
	// survivors' planned + remote-pull + handoff copies cover every pair
	// without any survivor planning a pair twice: planned ≤ pairs and every
	// pair is present (checked above), so equality of planned+copied is
	// implied; the sharp check is that no single cache planned more keys
	// than it holds.
	totalPlanned := 0
	for _, row := range cl.Stats().Members {
		totalPlanned += row.Cache.Planned
		if row.Cache.Planned > row.Cache.Size {
			t.Errorf("%s planned %d plans but holds %d keys: a pair was planned twice",
				row.Name, row.Cache.Planned, row.Cache.Size)
		}
	}
	pairs := len(models) * (len(models) - 1)
	if totalPlanned > pairs {
		t.Errorf("survivors planned %d pairs for a %d-pair catalog: duplicate planning across gateways",
			totalPlanned, pairs)
	}
}
