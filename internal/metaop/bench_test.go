package metaop

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/model"
)

func benchGraphs() (*model.Graph, *model.Graph, *Plan) {
	src := model.NewGraph("src", "bench")
	dst := model.NewGraph("dst", "bench")
	var p Plan
	for i := 0; i < 64; i++ {
		srcOp := mkConv("c", 3, 64, uint64(i)+1)
		dstOp := mkConv("c", 3, 64, uint64(i)+1000)
		dstOp.ID = i
		_ = src.AddOp(srcOp)
		_ = dst.AddOp(dstOp)
		if i > 0 {
			src.Connect(i-1, i)
			dst.Connect(i-1, i)
		}
		p.Steps = append(p.Steps, Step{Kind: KindReplace, SrcID: i, DstID: i, Dst: dstOp})
	}
	return src, dst, &p
}

func BenchmarkApplyReplacePlan(b *testing.B) {
	prof := cost.CPU()
	src, dst, plan := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Apply(prof, plan, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrueCost(b *testing.B) {
	prof := cost.CPU()
	src, _, plan := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan.TrueCost(prof, src) <= 0 {
			b.Fatal("zero cost")
		}
	}
}
