// Package ring is a consistent-hash ring with virtual nodes for the
// multi-gateway control plane: functions (and transformation-plan pair keys)
// map to owning gateway members by ring position, so N cooperating gateways
// partition ownership without any coordination beyond agreeing on the member
// set, the seed, and the virtual-node count.
//
// Everything is deterministic and seedable: hashing is FNV-1a mixed with the
// seed, ties break on member name, and ownership is a pure function of
// (seed, vnodes, member set, key) — two rings built in any insertion order
// from the same inputs answer Owner identically, byte for byte. Membership
// changes move the minimum of keys: a join steals keys only for the joiner,
// and a leave reassigns only the leaver's keys.
package ring

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count used when a caller passes 0: high
// enough that an 8-member ring balances ownership to within a few percent.
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring maps keys to members by consistent hashing. It is not safe for
// concurrent mutation; callers (the control plane) serialize access.
type Ring struct {
	seed   int64
	vnodes int
	// points is sorted ascending by (hash, member); Owner binary-searches it.
	points  []point
	members map[string]bool
}

// New returns an empty ring. vnodes <= 0 takes DefaultVNodes.
func New(seed int64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{seed: seed, vnodes: vnodes, members: make(map[string]bool)}
}

// fnv1a is FNV-1a 64 over s, seeded so distinct ring seeds shuffle ownership.
func (r *Ring) fnv1a(s string) uint64 {
	h := uint64(14695981039346656037) ^ uint64(r.seed)*0x9e3779b97f4a7c15
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// Final avalanche (splitmix64 tail) so short keys spread over the ring.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Seed returns the ring's hash seed.
func (r *Ring) Seed() int64 { return r.seed }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool { return r.members[member] }

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Add places a member's virtual nodes on the ring. Adding a present member is
// a no-op, so Add is idempotent.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{
			hash:   r.fnv1a(fmt.Sprintf("%s#%d", member, v)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// Remove takes a member's virtual nodes off the ring; its keys fall to the
// next points clockwise. Removing an absent member is a no-op.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the member owning key: the first virtual node clockwise from
// the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := r.fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the ring
	}
	return r.points[i].member, true
}

// Counts tallies how many of keys each member owns — the balance view the
// control plane reports and the property tests bound.
func (r *Ring) Counts(keys []string) map[string]int {
	out := make(map[string]int, len(r.members))
	for _, k := range keys {
		if m, ok := r.Owner(k); ok {
			out[m]++
		}
	}
	return out
}
