package simulate_test

import (
	"sort"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
)

func newOnline(t *testing.T, slots int, names ...string) *simulate.Online {
	t.Helper()
	return simulate.NewOnline(simulate.Config{
		Policy:            policy.Optimus{},
		Nodes:             1,
		ContainersPerNode: slots,
	}, testFunctions(t, names...))
}

func TestOnlineLifecycle(t *testing.T) {
	o := newOnline(t, 2, "resnet18-imagenet", "resnet34-imagenet")

	rec, err := o.Invoke("resnet18-imagenet", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != metrics.StartCold {
		t.Errorf("first invoke = %v", rec.Kind)
	}
	// Well after completion: warm.
	rec2, err := o.Invoke("resnet18-imagenet", rec.End+time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Kind != metrics.StartWarm {
		t.Errorf("second invoke = %v", rec2.Kind)
	}
	if o.Collector().Len() != 2 {
		t.Errorf("collector has %d records", o.Collector().Len())
	}
}

func TestOnlineWaitsWhenBusy(t *testing.T) {
	o := newOnline(t, 1, "resnet18-imagenet")
	rec, err := o.Invoke("resnet18-imagenet", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Second request arrives while the only container is busy: it must wait
	// until the first completes.
	rec2, err := o.Invoke("resnet18-imagenet", rec.End/2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Wait == 0 {
		t.Error("second invoke should have waited")
	}
	if rec2.Start != rec.End {
		t.Errorf("second invoke started at %v, want %v", rec2.Start, rec.End)
	}
}

func TestOnlineClockMonotone(t *testing.T) {
	o := newOnline(t, 2, "resnet18-imagenet")
	if _, err := o.Invoke("resnet18-imagenet", time.Hour); err != nil {
		t.Fatal(err)
	}
	// A stale timestamp is clamped forward, never backwards.
	rec, err := o.Invoke("resnet18-imagenet", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Arrival < time.Hour {
		t.Errorf("clock went backwards: %v", rec.Arrival)
	}
}

func TestOnlineAddRemoveFunction(t *testing.T) {
	o := newOnline(t, 2, "resnet18-imagenet")
	if _, err := o.Invoke("vgg16-imagenet", 0); err == nil {
		t.Fatal("unknown function accepted")
	}
	fns := testFunctions(t, "vgg16-imagenet")
	o.AddFunction(fns[0])
	if _, err := o.Invoke("vgg16-imagenet", 0); err != nil {
		t.Fatal(err)
	}
	if got, ok := o.Function("vgg16-imagenet"); !ok || got != fns[0] {
		t.Error("Function lookup failed")
	}
	if len(o.Functions()) != 2 {
		t.Errorf("Functions = %v", o.Functions())
	}
	o.RemoveFunction("vgg16-imagenet")
	if _, err := o.Invoke("vgg16-imagenet", time.Minute); err == nil {
		t.Fatal("removed function still invocable")
	}
}

// TestFunctionsSorted is the regression test for the map-iteration-order
// leak optimus-lint's maprange checker found in Online.Functions: the
// listing feeds reports and API responses, so it must come back in sorted
// order no matter what order functions were registered in.
func TestFunctionsSorted(t *testing.T) {
	o := newOnline(t, 2, "resnet18-imagenet")
	model := testFunctions(t, "resnet18-imagenet")[0].Model
	for _, name := range []string{"zulu", "mike", "alpha", "quebec", "echo", "victor", "bravo", "hotel"} {
		o.AddFunction(&simulate.Function{Name: name, Model: model})
	}
	got := o.Functions()
	if len(got) != 9 {
		t.Fatalf("Functions() returned %d names, want 9", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("Functions() not sorted: %v", got)
	}
}
