package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/controlplane"
	"repro/internal/policy"
	"repro/internal/ring"
	"repro/internal/simulate"
)

// BenchGatewayFile is the artifact `optimus-bench gateway` emits; `make
// check` (the gatewayguard gate) and CI validate its contents.
const BenchGatewayFile = "BENCH_gateway.json"

// Gateway experiment: the multi-gateway control plane under a fixed offered
// load. Two sections:
//
//   - Scaling sweep: the same seeded request sequence is served by clusters
//     of 1/2/4/8 cooperating gateways. Each member serves its ring-owned
//     functions serially on a virtual clock, so the aggregate simulated
//     makespan is the longest member's — the measure of how well
//     consistent-hash routing spreads one front end's load over N. The
//     acceptance gate requires ≥2× simulated throughput at 4 gateways.
//     Routing overhead (ring lookup + member resolution) is timed on the
//     wall clock per request; its p99 is reported but excluded from the
//     determinism proof.
//   - Cache contrast: at 4 gateways with precompute off, the identical
//     demand-driven trace (70 s inter-arrivals, so transform planning is
//     the only plan source) runs once with the shared sharded plan cache
//     (owner-pull + hot replication) and once isolated, with a mid-trace
//     drain in both. Shared must plan no more pairs than isolated and hold
//     an equal-or-better hit ratio.
//
// A second same-seed run of the 4-gateway scale point and the shared cache
// run must be byte-identical (wall-clock fields zeroed) — the determinism
// proof.

// GatewayScaleGateways are the cluster sizes the sweep measures.
var GatewayScaleGateways = []int{1, 2, 4, 8}

// GatewayScalePoint is one cluster size's measurements over the fixed load.
type GatewayScalePoint struct {
	Gateways int `json:"gateways"`
	Served   int `json:"served"`
	// Forwards counts requests that entered at a non-owner and were routed.
	Forwards int `json:"forwards"`
	// SimMakespanMS is the longest member's virtual-clock makespan;
	// SimReqPerSec is Served over that makespan — the aggregate simulated
	// throughput; ScaleX normalizes it to the single-gateway point.
	SimMakespanMS float64 `json:"sim_makespan_ms"`
	SimReqPerSec  float64 `json:"sim_req_per_sec"`
	ScaleX        float64 `json:"scale_x"`
	// RoutingP99Us is the wall-clock p99 of ring-owner resolution per
	// request (excluded from the determinism proof).
	RoutingP99Us float64 `json:"routing_p99_us"`
}

// GatewayCacheRun is one cache mode's counters over the demand-driven trace.
type GatewayCacheRun struct {
	Mode   string `json:"mode"`
	Served int    `json:"served"`
	// Planned/Hits/Misses/Remote sum the members' plan-cache counters;
	// Remote counts owner-pulls (always 0 when isolated), Replications the
	// hot-pair pushes. HitRatio is the fraction of probes resolved without
	// running the planner — a pull counts, since the plan already existed
	// somewhere in the cluster: (hits+remote)/(hits+misses).
	Planned      int     `json:"planned"`
	Hits         int     `json:"hits"`
	Misses       int     `json:"misses"`
	Remote       int     `json:"remote"`
	Replications int     `json:"replications"`
	HitRatio     float64 `json:"hit_ratio"`
	// DrainedAt is the request index where one member drained mid-trace.
	DrainedAt int `json:"drained_at"`
}

// GatewayResult is the persisted artifact.
type GatewayResult struct {
	Seed     int64 `json:"seed"`
	VNodes   int   `json:"vnodes"`
	Models   int   `json:"models"`
	Requests int   `json:"requests"`

	Scale []GatewayScalePoint `json:"scale"`
	// ScaleX4 repeats the 4-gateway ScaleX — the ≥2 acceptance gate.
	ScaleX4 float64 `json:"scale_x4"`

	CacheModels   int             `json:"cache_models"`
	CacheRequests int             `json:"cache_requests"`
	Shared        GatewayCacheRun `json:"shared"`
	Isolated      GatewayCacheRun `json:"isolated"`

	// Deterministic records that second same-seed runs of the 4-gateway
	// scale point and the shared cache run were byte-identical with
	// wall-clock fields zeroed.
	Deterministic bool `json:"deterministic"`
}

// gatewayModels returns the first n imgclsmob models by registry order.
func gatewayModels(n int) []*simulate.Function {
	names := imgZoo.Names()
	fns := make([]*simulate.Function, 0, n)
	for _, name := range names[:n] {
		fns = append(fns, &simulate.Function{Name: name, Model: imgZoo.MustGet(name)})
	}
	return fns
}

// gatewayCluster builds an in-process control plane of size members. The
// scale sweep gives each member slots slots to hold the whole catalog warm
// (measuring routing parallelism, not capacity thrash); the cache contrast
// shrinks slots below the catalog so evictions force the transform path.
func gatewayCluster(o Options, members, nodes, slots int, precompute, shared bool, clock func() time.Duration) *controlplane.Cluster {
	return controlplane.NewCluster(controlplane.Config{
		Members: members,
		Seed:    o.Seed,
		Base: simulate.Config{
			Policy:            policy.Optimus{},
			Nodes:             nodes,
			ContainersPerNode: slots,
			Profile:           o.Profile,
		},
		Now:         clock,
		PlanWorkers: 2,
		Precompute:  precompute,
		SharedCache: shared,
	})
}

// gatewayScaleOnce serves the fixed seeded sequence on a members-sized
// cluster. Each ring owner serves its requests serially on its own virtual
// clock; the aggregate makespan is the slowest owner's.
func gatewayScaleOnce(o Options, members, requests int, fns []*simulate.Function) GatewayScalePoint {
	clocks := make(map[string]time.Duration)
	var makespan time.Duration
	cl := gatewayCluster(o, members, 4, 4, true, true, func() time.Duration { return makespan })
	for _, f := range fns {
		if err := cl.RegisterModel(f.Model); err != nil {
			panic(err)
		}
	}
	cl.PlanningQuiesce()

	names := cl.Members()
	rng := rand.New(rand.NewSource(o.Seed))
	routing := make([]time.Duration, 0, requests)
	pt := GatewayScalePoint{Gateways: members}
	for i := 0; i < requests; i++ {
		fn := fns[rng.Intn(len(fns))].Name
		entry := names[i%len(names)]
		wall := time.Now()
		owner, ok := cl.Owner(fn)
		routing = append(routing, time.Since(wall))
		if !ok {
			panic("gateway: no ring owner for " + fn)
		}
		rec, forwarded, err := cl.Invoke(entry, fn, clocks[owner])
		if err != nil {
			panic(err)
		}
		if forwarded {
			pt.Forwards++
		}
		if rec.End > clocks[owner] {
			clocks[owner] = rec.End
		}
		if clocks[owner] > makespan {
			makespan = clocks[owner]
		}
		pt.Served++
	}
	pt.SimMakespanMS = msF(makespan)
	if makespan > 0 {
		pt.SimReqPerSec = float64(pt.Served) / makespan.Seconds()
	}
	sort.Slice(routing, func(i, j int) bool { return routing[i] < routing[j] })
	if len(routing) > 0 {
		idx := (len(routing)*99 + 99) / 100
		if idx >= len(routing) {
			idx = len(routing) - 1
		}
		pt.RoutingP99Us = float64(routing[idx]) / float64(time.Microsecond)
	}
	return pt
}

// gatewayCacheOnce replays the demand-driven trace (70 s inter-arrivals, so
// every plan is demanded by a transform, never precomputed) at 4 gateways
// with the cache shared or isolated, draining one member halfway through.
func gatewayCacheOnce(o Options, requests int, fns []*simulate.Function, shared bool) GatewayCacheRun {
	var now time.Duration
	cl := gatewayCluster(o, 4, 2, 2, false, shared, func() time.Duration { return now })
	for _, f := range fns {
		if err := cl.RegisterModel(f.Model); err != nil {
			panic(err)
		}
	}

	mode := "isolated"
	if shared {
		mode = "shared"
	}
	run := GatewayCacheRun{Mode: mode, DrainedAt: requests / 2}
	names := cl.Members()
	for i := 0; i < requests; i++ {
		if i == run.DrainedAt {
			if err := cl.Drain(names[len(names)-1]); err != nil {
				panic(err)
			}
			names = cl.Members()
		}
		fn := fns[i%len(fns)].Name
		// 70 s steps sit between the 60 s idle threshold and the 10 min
		// keep-alive, so re-invocations demand transforms (the only plan
		// source with precompute off).
		now += 70 * time.Second
		if _, _, err := cl.Invoke(names[i%len(names)], fn, now); err != nil {
			panic(err)
		}
		run.Served++
	}
	cl.PlanningQuiesce()

	st := cl.Stats()
	for _, m := range st.Members {
		run.Planned += m.Cache.Planned
		run.Hits += m.Cache.Hits
		run.Misses += m.Cache.Misses
		run.Remote += m.Cache.Remote
	}
	run.Replications = st.Replications
	if run.Hits+run.Misses > 0 {
		run.HitRatio = float64(run.Hits+run.Remote) / float64(run.Hits+run.Misses)
	}
	return run
}

// simOnly zeroes the wall-clock fields and the derived ScaleX (normalized
// only on the first run), leaving the virtual-time measurements the
// determinism proof compares.
func (p GatewayScalePoint) simOnly() GatewayScalePoint {
	p.RoutingP99Us = 0
	p.ScaleX = 0
	return p
}

// Gateway runs the scaling sweep and the shared-versus-isolated cache
// contrast, then re-runs the 4-gateway scale point and the shared cache run
// with the same seed to prove byte-identical determinism.
func Gateway(o Options) GatewayResult {
	o = o.withDefaults()
	requests, cacheReqs := 600, 160
	if o.Quick {
		requests, cacheReqs = 240, 80
	}
	scaleFns := gatewayModels(12)
	cacheFns := gatewayModels(6)

	res := GatewayResult{
		Seed:          o.Seed,
		VNodes:        ring.DefaultVNodes,
		Models:        len(scaleFns),
		Requests:      requests,
		CacheModels:   len(cacheFns),
		CacheRequests: cacheReqs,
	}
	for _, g := range GatewayScaleGateways {
		res.Scale = append(res.Scale, gatewayScaleOnce(o, g, requests, scaleFns))
	}
	base := res.Scale[0].SimReqPerSec
	for i := range res.Scale {
		if base > 0 {
			res.Scale[i].ScaleX = res.Scale[i].SimReqPerSec / base
		}
		if res.Scale[i].Gateways == 4 {
			res.ScaleX4 = res.Scale[i].ScaleX
		}
	}
	res.Shared = gatewayCacheOnce(o, cacheReqs, cacheFns, true)
	res.Isolated = gatewayCacheOnce(o, cacheReqs, cacheFns, false)

	// Determinism proof: same-seed reruns of the 4-gateway scale point and
	// the shared cache run, compared byte-for-byte with wall fields zeroed.
	var scale4 GatewayScalePoint
	for _, pt := range res.Scale {
		if pt.Gateways == 4 {
			scale4 = pt
		}
	}
	first, err := json.Marshal(struct {
		Scale  GatewayScalePoint
		Shared GatewayCacheRun
	}{scale4.simOnly(), res.Shared})
	if err != nil {
		panic(err)
	}
	second, err := json.Marshal(struct {
		Scale  GatewayScalePoint
		Shared GatewayCacheRun
	}{
		gatewayScaleOnce(o, 4, requests, scaleFns).simOnly(),
		gatewayCacheOnce(o, cacheReqs, cacheFns, true),
	})
	if err != nil {
		panic(err)
	}
	res.Deterministic = bytes.Equal(first, second)
	return res
}

// WriteFile persists the artifact into dir, creating it if needed.
func (r GatewayResult) WriteFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gateway: creating %s: %w", dir, err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, BenchGatewayFile)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("gateway: writing %s: %w", path, err)
	}
	return nil
}

// Render prints the sweep and cache-contrast digests.
func (r GatewayResult) Render() string {
	rows := make([][]string, 0, len(r.Scale))
	for _, p := range r.Scale {
		rows = append(rows, []string{
			fmt.Sprint(p.Gateways),
			fmt.Sprint(p.Served),
			fmt.Sprint(p.Forwards),
			fmt.Sprintf("%.0f", p.SimMakespanMS),
			fmt.Sprintf("%.1f", p.SimReqPerSec),
			fmt.Sprintf("%.2fx", p.ScaleX),
			fmt.Sprintf("%.1f", p.RoutingP99Us),
		})
	}
	cacheRows := make([][]string, 0, 2)
	for _, c := range []GatewayCacheRun{r.Shared, r.Isolated} {
		cacheRows = append(cacheRows, []string{
			c.Mode,
			fmt.Sprint(c.Served),
			fmt.Sprint(c.Planned),
			fmt.Sprint(c.Hits),
			fmt.Sprint(c.Misses),
			fmt.Sprint(c.Remote),
			fmt.Sprint(c.Replications),
			fmt.Sprintf("%.4f", c.HitRatio),
		})
	}
	det := "deterministic: same-seed reruns were byte-identical (wall fields excluded)"
	if !r.Deterministic {
		det = "NONDETERMINISTIC: same-seed reruns diverged"
	}
	return "Extension: multi-gateway control plane (consistent-hash routing; shared sharded plan cache vs isolated, with a mid-trace drain)\n" +
		table([]string{"gateways", "served", "forwards", "makespan(ms)", "sim req/s", "scale", "route p99(µs)"}, rows) +
		"\n" + table([]string{"cache", "served", "planned", "hits", "misses", "pulls", "replications", "hit ratio"}, cacheRows) +
		"\n" + det
}
