// Image-classification serving: a multi-tenant cluster hosting 16 CNN
// functions from five architecture families under the production-like Azure
// workload, comparing all four container-management policies.
//
// This is the workload class the paper's introduction motivates: many
// structurally similar vision models, sporadic per-function demand, and not
// enough container slots to keep every model warm.
package main

import (
	"fmt"
	"time"

	optimus "repro"
)

func main() {
	img := optimus.Imgclsmob()
	functions := []string{
		"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "resnet101-imagenet",
		"vgg11-imagenet", "vgg16-imagenet", "vgg19-imagenet",
		"densenet121-imagenet", "densenet169-imagenet",
		"mobilenet-w1-imagenet", "mobilenetv2-w1-imagenet",
		"squeezenet-v1.1-imagenet", "shufflenetv2-w1-imagenet",
		"resnet50-cifar10", "vgg16-cifar10", "densenet121-cifar100",
	}
	trace := optimus.AzureTrace(functions, 24*time.Hour, 7)
	fmt.Printf("16 CNN functions, Azure-like workload: %d requests over 24h\n\n", trace.Len())

	var baseline time.Duration
	for _, pol := range []optimus.PolicyName{
		optimus.PolicyOpenWhisk, optimus.PolicyPagurus, optimus.PolicyTetris, optimus.PolicyOptimus,
	} {
		// 8 container slots for 16 functions: the capacity-limited regime the
		// paper evaluates, where warm containers cannot be kept for every
		// model (§4.1).
		sys := optimus.NewSystem(optimus.SystemConfig{
			Nodes:             4,
			ContainersPerNode: 2,
			Policy:            pol,
			UseBalancer:       pol == optimus.PolicyOptimus, // §5.1 is part of Optimus
		})
		for _, n := range functions {
			sys.MustRegister(n, img.MustGet(n))
		}
		rep, err := sys.Run(trace)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %s\n", pol, rep.Summary())
		if pol == optimus.PolicyOpenWhisk {
			baseline = rep.MeanLatency()
		} else {
			red := 1 - float64(rep.MeanLatency())/float64(baseline)
			fmt.Printf("           → %.1f%% lower mean service time than OpenWhisk\n", 100*red)
		}
	}
}
