GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# check is the pre-merge gate: static analysis, a full build, and the test
# suite under the race detector (the gateway stress test needs it).
check: vet build race
