package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// defaultPanicExempt are the module subtrees where naked panics are
// accepted wholesale: binaries and examples (a crash is the report), the
// model zoo (must-style static catalog construction), and the benchmark
// harness. Everywhere else — the library packages results depend on — a
// panic must be a deliberate cross-check oracle carrying an
// //optimus:allow panicpath directive, never an error-handling shortcut.
var defaultPanicExempt = []string{
	"repro/cmd/",
	"repro/examples/",
	"repro/internal/zoo",
	"repro/internal/experiments",
}

// Panicpath restricts naked panic( calls in library packages to documented
// cross-check oracles.
type Panicpath struct {
	// Exempt lists import-path prefixes (trailing slash) or exact paths
	// excluded from the restriction.
	Exempt []string
}

// DefaultPanicpath returns the checker with the project exemption list.
func DefaultPanicpath() *Panicpath { return &Panicpath{Exempt: defaultPanicExempt} }

// NewPanicpath returns the checker with an explicit exemption list (used by
// fixture tests).
func NewPanicpath(exempt []string) *Panicpath { return &Panicpath{Exempt: exempt} }

// Name implements analysis.Checker.
func (pp *Panicpath) Name() string { return "panicpath" }

// Doc implements analysis.Checker.
func (pp *Panicpath) Doc() string {
	return "restricts naked panic( in library packages to documented cross-check oracles"
}

// Run implements analysis.Checker.
func (pp *Panicpath) Run(p *analysis.Pass) {
	for _, ex := range pp.Exempt {
		if p.Path == ex || p.Path == strings.TrimSuffix(ex, "/") ||
			(strings.HasSuffix(ex, "/") && strings.HasPrefix(p.Path, ex)) ||
			strings.HasPrefix(p.Path, ex+"/") {
			return
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if bi, ok := p.Info.Uses[id].(*types.Builtin); !ok || bi.Name() != "panic" {
				return true
			}
			p.Reportf(pp.Name(), call.Pos(),
				"naked panic in library package %s: return an error, or mark a cross-check oracle with //optimus:allow panicpath — <reason>", p.Path)
			return true
		})
	}
}
