// Package faults is a seeded, deterministic fault-injection layer for the
// cluster simulator and gateway. An Injector is configured with per-event
// failure probabilities and driven by a single PRNG, so a run with a fixed
// seed and fixed rates reproduces the exact same fault sequence — chaos
// experiments stay replayable and regressions bisectable.
//
// Determinism contract: Fire draws from the PRNG only when the queried
// event's rate is nonzero. Enabling one event therefore never perturbs the
// fault sequence of another, and a run with every rate at zero consumes no
// randomness at all (it is byte-identical to a run without the injector).
package faults

import (
	"fmt"
	"math/rand"
)

// Event enumerates the failure classes the injector can trigger.
type Event int

const (
	// Transform is a meta-operator transformation aborting mid-flight; the
	// victim recovers through the safeguard path (load from scratch,
	// charging the wasted partial-transform time).
	Transform Event = iota
	// Load is a from-scratch model load failing partway and restarting
	// inside the same container.
	Load
	// Crash is a container dying while serving a request; the request is
	// re-dispatched with a bounded retry budget.
	Crash
	// Outage is a worker node going down: its containers are lost and its
	// queued and in-flight requests are re-dispatched elsewhere.
	Outage
	// Hang is a transformation stalling instead of aborting: without a
	// watchdog it blocks its container far past the planned cost before
	// finishing; with one it is cancelled at the deadline and recovered
	// through the safeguard path.
	Hang
	// CheckpointWrite is a durable-checkpoint write failing partway (disk
	// full, torn write); the atomic tmp+rename protocol must leave the
	// previous checkpoint intact.
	CheckpointWrite
	// Slow is a gray failure: the routed node enters a degraded window in
	// which every request it serves runs a configured latency multiplier
	// slower, without ever failing outright.
	Slow
	// Flaky is a gray failure: a donor node enters a window in which
	// transformations sourced from its containers abort intermittently and
	// recover through the safeguard path.
	Flaky
	// Bandwidth is a gray failure: a node's transform bandwidth degrades for
	// a window, multiplying the cost of transformations executed on it.
	Bandwidth
	// FanoutCrash is a donor container dying mid-fan-out while streaming
	// weights to a child: its in-flight children are orphaned and must be
	// re-parented onto the nearest healthy ancestor in the transform tree.
	FanoutCrash
	// Corrupt is a transformation completing but emitting a corrupt model:
	// the member looks warm, may donate onward, and is only caught by the
	// meta-operator edge-balance verification at the next wave boundary —
	// at which point its descendant subtree is quarantined.
	Corrupt
	eventCount
)

// String names the event.
func (e Event) String() string {
	switch e {
	case Transform:
		return "transform"
	case Load:
		return "load"
	case Crash:
		return "crash"
	case Outage:
		return "outage"
	case Hang:
		return "hang"
	case CheckpointWrite:
		return "checkpoint-write"
	case Slow:
		return "slow"
	case Flaky:
		return "flaky"
	case Bandwidth:
		return "bandwidth"
	case FanoutCrash:
		return "fanout-crash"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Rates holds the per-event failure probabilities, each in [0, 1]. The zero
// value disables injection entirely.
type Rates struct {
	// Transform is the probability a transformation aborts mid-flight.
	Transform float64
	// Load is the probability a from-scratch model load fails and restarts.
	Load float64
	// Crash is the per-request probability the serving container dies.
	Crash float64
	// Outage is the per-arrival probability the routed node goes down.
	Outage float64
	// Hang is the probability a transformation stalls instead of running to
	// plan (detected and cancelled only when a watchdog is configured).
	Hang float64
	// CheckpointWrite is the probability a durable-checkpoint write fails.
	CheckpointWrite float64
	// Slow is the per-arrival probability the routed node enters a gray
	// slow-node window (latency multiplier, no hard failure).
	Slow float64
	// Flaky is the per-transform probability the donor node enters a flaky
	// window during which its transformations abort intermittently.
	Flaky float64
	// Bandwidth is the per-transform probability the executing node's
	// transform bandwidth degrades for a window.
	Bandwidth float64
	// FanoutCrash is the per-donation probability the donor container dies
	// midway through streaming weights to a fan-out child.
	FanoutCrash float64
	// Corrupt is the per-completion probability a fan-out child finishes
	// with a corrupt model (detected only at the wave-boundary edge-balance
	// verification).
	Corrupt float64
}

// Enabled reports whether any rate is nonzero.
func (r Rates) Enabled() bool {
	return r.Transform > 0 || r.Load > 0 || r.Crash > 0 || r.Outage > 0 ||
		r.Hang > 0 || r.CheckpointWrite > 0 ||
		r.Slow > 0 || r.Flaky > 0 || r.Bandwidth > 0 ||
		r.FanoutCrash > 0 || r.Corrupt > 0
}

func (r Rates) rate(e Event) float64 {
	switch e {
	case Transform:
		return r.Transform
	case Load:
		return r.Load
	case Crash:
		return r.Crash
	case Outage:
		return r.Outage
	case Hang:
		return r.Hang
	case CheckpointWrite:
		return r.CheckpointWrite
	case Slow:
		return r.Slow
	case Flaky:
		return r.Flaky
	case Bandwidth:
		return r.Bandwidth
	case FanoutCrash:
		return r.FanoutCrash
	case Corrupt:
		return r.Corrupt
	default:
		return 0
	}
}

// Injector draws fault decisions from a seeded PRNG. A nil *Injector is
// valid and never fires, so callers thread it without nil checks. Injector
// is not safe for concurrent use; the simulator calls it under its own lock.
type Injector struct {
	rng    *rand.Rand
	rates  Rates
	counts [eventCount]int
}

// New returns an injector for the given seed and rates, or nil when every
// rate is zero (injection disabled).
func New(seed int64, r Rates) *Injector {
	if !r.Enabled() {
		return nil
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), rates: r}
}

// Fire reports whether the event fails this time. It consumes randomness
// only when the event's rate is nonzero (see the package determinism
// contract) and tallies fired faults.
func (i *Injector) Fire(e Event) bool {
	if i == nil {
		return false
	}
	rate := i.rates.rate(e)
	if rate <= 0 {
		return false
	}
	if i.rng.Float64() >= rate {
		return false
	}
	i.counts[e]++
	return true
}

// Count returns how many times the event has fired.
func (i *Injector) Count(e Event) int {
	if i == nil || e < 0 || e >= eventCount {
		return 0
	}
	return i.counts[e]
}

// Total returns the number of faults fired across all events.
func (i *Injector) Total() int {
	if i == nil {
		return 0
	}
	t := 0
	for _, c := range i.counts {
		t += c
	}
	return t
}
