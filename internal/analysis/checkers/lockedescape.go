package checkers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Lockedescape flags methods that acquire a sync.Mutex or sync.RWMutex and
// then return a guarded map, slice or pointer field of the receiver without
// copying: the caller keeps a reference into state the lock was protecting,
// so every later read races with the next locked mutation — the PR 1
// Snapshot bug class, visible only under -race and only when the timing
// cooperates. Returning a deep copy (or a value type) stays silent.
type Lockedescape struct{}

// NewLockedescape returns the checker.
func NewLockedescape() *Lockedescape { return &Lockedescape{} }

// Name implements analysis.Checker.
func (l *Lockedescape) Name() string { return "lockedescape" }

// Doc implements analysis.Checker.
func (l *Lockedescape) Doc() string {
	return "flags mutex-holding methods returning guarded map/slice/pointer fields without copying"
}

// Run implements analysis.Checker.
func (l *Lockedescape) Run(p *analysis.Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverIdent(p.Info, fd)
			if recv == nil || !acquiresLock(p.Info, fd.Body, recv) {
				continue
			}
			l.checkReturns(p, fd, recv)
		}
	}
}

// acquiresLock reports whether the body calls Lock or RLock on the receiver
// or on one of its fields (embedded or named sync mutexes alike).
func acquiresLock(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := unparen(sel.X).(type) {
		case *ast.Ident:
			if info.Uses[x] == recv {
				found = true
			}
		case *ast.SelectorExpr:
			if isObjUse(info, x.X, recv) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkReturns flags direct returns of guarded reference-typed fields. Only
// the method's own return statements count: returns inside function
// literals belong to the literal, not the locked method.
func (l *Lockedescape) checkReturns(p *analysis.Pass, fd *ast.FuncDecl, recv types.Object) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				l.checkResult(p, res, recv)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkResult reports a result expression that hands out a guarded field:
// a bare receiver-field selector of map, slice or pointer type, or the
// address of any receiver field.
func (l *Lockedescape) checkResult(p *analysis.Pass, res ast.Expr, recv types.Object) {
	switch v := unparen(res).(type) {
	case *ast.SelectorExpr:
		if !isObjUse(p.Info, v.X, recv) {
			return
		}
		t := p.Info.TypeOf(v)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			p.Reportf(l.Name(), res.Pos(),
				"returns guarded map field %q while a lock protects it: copy it before returning", v.Sel.Name)
		case *types.Slice:
			p.Reportf(l.Name(), res.Pos(),
				"returns guarded slice field %q while a lock protects it: copy it before returning", v.Sel.Name)
		case *types.Pointer:
			p.Reportf(l.Name(), res.Pos(),
				"returns guarded pointer field %q while a lock protects it: copy the pointee", v.Sel.Name)
		}
	case *ast.UnaryExpr:
		if v.Op.String() != "&" {
			return
		}
		if sel, ok := unparen(v.X).(*ast.SelectorExpr); ok && isObjUse(p.Info, sel.X, recv) {
			p.Reportf(l.Name(), res.Pos(),
				"returns address of guarded field %q: the caller escapes the lock", sel.Sel.Name)
		}
	}
}
