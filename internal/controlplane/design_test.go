package controlplane

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDesignDocMatchesProtocol keeps the protocol table in DESIGN.md's
// "Multi-gateway control plane" section in lockstep with Protocol():
// adding, removing, or rewording a rule in one place without the other
// fails here.
func TestDesignDocMatchesProtocol(t *testing.T) {
	raw, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	const header = "## Multi-gateway control plane"
	_, rest, found := strings.Cut(string(raw), header)
	if !found {
		t.Fatalf("DESIGN.md is missing the %q section", header)
	}
	if next := strings.Index(rest, "\n## "); next >= 0 {
		rest = rest[:next]
	}
	rowRE := regexp.MustCompile("(?m)^\\|\\s*`([a-z-]+)`\\s*\\|\\s*`([a-z-]+)`\\s*\\|\\s*([^|]+?)\\s*\\|")
	var documented []string
	for _, m := range rowRE.FindAllStringSubmatch(rest, -1) {
		documented = append(documented, fmt.Sprintf("%s→%s: %s", m[1], m[2], m[3]))
	}

	var registered []string
	for _, r := range Protocol() {
		registered = append(registered, fmt.Sprintf("%s→%s: %s", r.Event, r.Action, r.Note))
	}
	if strings.Join(documented, "\n") != strings.Join(registered, "\n") {
		t.Errorf("DESIGN.md documents:\n%s\n\nbut Protocol() holds:\n%s\n\nupdate the table in %q or controlplane.Protocol to match",
			strings.Join(documented, "\n"), strings.Join(registered, "\n"), header)
	}
}
