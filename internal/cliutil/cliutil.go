// Package cliutil holds small shared helpers for the command-line tools:
// probability-flag validation and rate-list parsing with consolidated error
// reporting, so every binary rejects bad input the same way, plus the shared
// -cpuprofile/-memprofile plumbing.
package cliutil

import (
	"flag"
	"fmt"
	"math"
	"net/url"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/controlplane"
	"repro/internal/fanout"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/ring"
	"repro/internal/supervisor"
)

// ValidateProbs checks that every named probability is a finite value in
// [0, 1]. It returns nil when all pass, otherwise a single error naming every
// offending flag and its value (sorted by flag name) so the user fixes them
// all in one round trip.
func ValidateProbs(probs map[string]float64) error {
	var bad []string
	for name, v := range probs {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			bad = append(bad, fmt.Sprintf("%s=%v", name, v))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("probability flags must be in [0,1]: %s", strings.Join(bad, ", "))
}

// ParseRates parses a comma-separated list of probabilities in [0, 1].
// Empty entries are skipped; every malformed, negative, non-finite, or
// out-of-range entry is collected into one consolidated error.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	var bad []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%q (not a number)", part))
		case math.IsNaN(v) || math.IsInf(v, 0):
			bad = append(bad, fmt.Sprintf("%q (not finite)", part))
		case v < 0 || v > 1:
			bad = append(bad, fmt.Sprintf("%q (outside [0,1])", part))
		default:
			out = append(out, v)
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("invalid rate entries: %s", strings.Join(bad, ", "))
	}
	return out, nil
}

// StartProfiles begins CPU profiling and/or arranges a heap profile, for the
// -cpuprofile/-memprofile flags the binaries share. Either path may be empty.
// The returned stop function finishes the CPU profile and writes the heap
// profile; call it exactly once (defer it after a nil-error return).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

// FaultFlags bundles the fault-injection probability flags the binaries
// share, so flag registration, validation, and the consolidated error
// message live in one place instead of three copies.
type FaultFlags struct {
	Transform, Load, Crash, Outage, Hang *float64
	Slow, Flaky, Bandwidth               *float64
	FanoutCrash, Corrupt                 *float64
	// Checkpoint is nil unless registered (optimus-server only).
	Checkpoint *float64
}

// RegisterFaultFlags installs the shared -fault-* flags on fs. When
// checkpoint is true the checkpoint-write fault flag (durable-state binaries
// only) is registered too.
func RegisterFaultFlags(fs *flag.FlagSet, checkpoint bool) *FaultFlags {
	f := &FaultFlags{
		Transform: fs.Float64("fault-transform", 0, "probability a transformation aborts mid-flight (safeguard fallback)"),
		Load:      fs.Float64("fault-load", 0, "probability a from-scratch model load fails and restarts"),
		Crash:     fs.Float64("fault-crash", 0, "per-request probability the serving container crashes"),
		Outage:    fs.Float64("fault-outage", 0, "per-arrival probability the routed node goes down"),
		Hang:      fs.Float64("fault-hang", 0, "probability a transformation hangs instead of running to plan"),
		Slow:      fs.Float64("fault-slow", 0, "per-arrival probability the routed node enters a gray slowdown window"),
		Flaky:     fs.Float64("fault-flaky", 0, "probability a transform donor turns flaky for a window (intermittent aborts)"),
		Bandwidth: fs.Float64("fault-bandwidth", 0, "probability a node's transform bandwidth degrades for a window"),
		FanoutCrash: fs.Float64("fault-fanout-crash", 0,
			"probability a fan-out donor crashes mid-donation (orphans re-parent)"),
		Corrupt: fs.Float64("fault-corrupt", 0,
			"probability a fan-out donation emits a corrupt model (descendants quarantine)"),
	}
	if checkpoint {
		f.Checkpoint = fs.Float64("fault-checkpoint", 0, "probability a checkpoint write fails (previous snapshot kept)")
	}
	return f
}

// Validate checks every registered fault probability, reporting all bad
// values in one consolidated error (the ValidateProbs contract).
func (f *FaultFlags) Validate() error {
	probs := map[string]float64{
		"-fault-transform":    *f.Transform,
		"-fault-load":         *f.Load,
		"-fault-crash":        *f.Crash,
		"-fault-outage":       *f.Outage,
		"-fault-hang":         *f.Hang,
		"-fault-slow":         *f.Slow,
		"-fault-flaky":        *f.Flaky,
		"-fault-bandwidth":    *f.Bandwidth,
		"-fault-fanout-crash": *f.FanoutCrash,
		"-fault-corrupt":      *f.Corrupt,
	}
	if f.Checkpoint != nil {
		probs["-fault-checkpoint"] = *f.Checkpoint
	}
	return ValidateProbs(probs)
}

// Rates resolves the parsed flags into the injector's rate set.
func (f *FaultFlags) Rates() faults.Rates {
	r := faults.Rates{
		Transform:   *f.Transform,
		Load:        *f.Load,
		Crash:       *f.Crash,
		Outage:      *f.Outage,
		Hang:        *f.Hang,
		Slow:        *f.Slow,
		Flaky:       *f.Flaky,
		Bandwidth:   *f.Bandwidth,
		FanoutCrash: *f.FanoutCrash,
		Corrupt:     *f.Corrupt,
	}
	if f.Checkpoint != nil {
		r.CheckpointWrite = *f.Checkpoint
	}
	return r
}

// ResilienceFlags bundles the gray-failure resilience flags (health state
// machine, retry backoff, hedged transforms) the binaries share.
type ResilienceFlags struct {
	Health        *bool
	HealthObserve *bool
	Quarantine    *time.Duration
	Drain         *time.Duration
	RetryBackoff  *time.Duration
	HedgePct      *float64
}

// RegisterResilienceFlags installs the shared resilience flags on fs.
func RegisterResilienceFlags(fs *flag.FlagSet) *ResilienceFlags {
	return &ResilienceFlags{
		Health:        fs.Bool("health", false, "enable the per-node health state machine (suspect → quarantine → drain)"),
		HealthObserve: fs.Bool("health-observe", false, "track node health but never steer routing (implies -health)"),
		Quarantine:    fs.Duration("health-quarantine", 0, "quarantine window before a sick node starts draining (default 60s)"),
		Drain:         fs.Duration("health-drain", 0, "drain timeout before a quarantined node re-enters rotation (default 30s)"),
		RetryBackoff:  fs.Duration("retry-backoff", 0, "base delay for the seeded exponential crash-retry backoff (0 disables)"),
		HedgePct:      fs.Float64("hedge-percentile", 0, "hedge hung transforms at this observed-latency percentile (0 disables; e.g. 95)"),
	}
}

// Validate checks the resilience flag values, reporting every bad value in
// one consolidated error like ValidateProbs.
func (r *ResilienceFlags) Validate() error {
	var bad []string
	if p := *r.HedgePct; math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 100 {
		bad = append(bad, fmt.Sprintf("-hedge-percentile=%v (want [0,100])", p))
	}
	for name, d := range map[string]time.Duration{
		"-health-quarantine": *r.Quarantine,
		"-health-drain":      *r.Drain,
		"-retry-backoff":     *r.RetryBackoff,
	} {
		if d < 0 {
			bad = append(bad, fmt.Sprintf("%s=%v (want ≥ 0)", name, d))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("invalid resilience flags: %s", strings.Join(bad, ", "))
}

// HealthConfig resolves the health flags; unset durations keep the package
// defaults.
func (r *ResilienceFlags) HealthConfig() health.Config {
	return health.Config{
		Enabled:            *r.Health || *r.HealthObserve,
		ObserveOnly:        *r.HealthObserve,
		QuarantineDuration: *r.Quarantine,
		DrainTimeout:       *r.Drain,
	}
}

// BackoffConfig resolves the retry-backoff flag (zero base disables).
func (r *ResilienceFlags) BackoffConfig() supervisor.BackoffConfig {
	return supervisor.BackoffConfig{Base: *r.RetryBackoff}
}

// HedgeConfig resolves the hedge flag (zero percentile disables).
func (r *ResilienceFlags) HedgeConfig() supervisor.HedgeConfig {
	return supervisor.HedgeConfig{Percentile: *r.HedgePct}
}

// FanoutFlags bundles the fan-out transform tree flags the binaries share
// (one registration + validation path, like FaultFlags).
type FanoutFlags struct {
	Enabled     *bool
	Bandwidth   *int
	Threshold   *int
	Max         *int
	Independent *bool
}

// RegisterFanoutFlags installs the shared -fanout* flags on fs.
func RegisterFanoutFlags(fs *flag.FlagSet) *FanoutFlags {
	return &FanoutFlags{
		Enabled:   fs.Bool("fanout", false, "enable fault-tolerant fan-out transform trees for burst absorption"),
		Bandwidth: fs.Int("fanout-bandwidth", 0, "concurrent outbound donation streams per node (default 2)"),
		Threshold: fs.Int("fanout-threshold", 0, "per-node queue depth that triggers a tree (default 4)"),
		Max:       fs.Int("fanout-max", 0, "cap on replicas one tree builds (default 16)"),
		Independent: fs.Bool("fanout-independent", false,
			"baseline schedule: only original seeds donate (no wave pipelining)"),
	}
}

// Validate checks the fan-out flag values, reporting every bad value in one
// consolidated error like ValidateProbs.
func (f *FanoutFlags) Validate() error {
	var bad []string
	for name, v := range map[string]int{
		"-fanout-bandwidth": *f.Bandwidth,
		"-fanout-threshold": *f.Threshold,
		"-fanout-max":       *f.Max,
	} {
		if v < 0 {
			bad = append(bad, fmt.Sprintf("%s=%d (want ≥ 0)", name, v))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("invalid fanout flags: %s", strings.Join(bad, ", "))
}

// Config resolves the parsed flags into the fan-out tree configuration; zero
// values keep the package defaults.
func (f *FanoutFlags) Config() fanout.Config {
	return fanout.Config{
		Enabled:       *f.Enabled || *f.Independent,
		Bandwidth:     *f.Bandwidth,
		Threshold:     *f.Threshold,
		MaxRecipients: *f.Max,
		Independent:   *f.Independent,
	}
}

// ReplayFlags bundles the streaming-replay mode flags the binaries share:
// -stream selects the constant-memory streaming engine (aggregate summary
// only, no per-request records), and -replay-windows adds time-windowed
// optimistic parallelism on top of it.
type ReplayFlags struct {
	Stream  *bool
	Windows *int
}

// RegisterReplayFlags installs the shared streaming-replay flags on fs.
func RegisterReplayFlags(fs *flag.FlagSet) *ReplayFlags {
	return &ReplayFlags{
		Stream: fs.Bool("stream", false,
			"constant-memory streaming replay: fold records into a mergeable summary instead of retaining them"),
		Windows: fs.Int("replay-windows", 0,
			"split a streaming replay into this many time windows replayed with optimistic parallelism (0 disables; implies -stream)"),
	}
}

// Validate checks the replay flag values, reporting every bad value in one
// consolidated error like ValidateProbs.
func (r *ReplayFlags) Validate() error {
	if *r.Windows < 0 {
		return fmt.Errorf("invalid replay flags: -replay-windows=%d (want ≥ 0)", *r.Windows)
	}
	return nil
}

// Streaming reports whether a streaming-engine replay was requested.
func (r *ReplayFlags) Streaming() bool { return *r.Stream || *r.Windows > 0 }

// ControlPlaneFlags bundles the multi-gateway control-plane flags: the
// process's ring identity, the peer set, and the ring's virtual-node count
// (one registration + validation path, like FaultFlags).
type ControlPlaneFlags struct {
	Self   *string
	Peers  *string
	VNodes *int
}

// RegisterControlPlaneFlags installs the shared control-plane flags on fs.
func RegisterControlPlaneFlags(fs *flag.FlagSet) *ControlPlaneFlags {
	return &ControlPlaneFlags{
		Self: fs.String("self", "gw-0",
			"this process's ring identity; must appear in -peers"),
		Peers: fs.String("peers", "",
			"multi-gateway peer set as id=url,... (empty = single gateway); all peers must list the same set"),
		VNodes: fs.Int("ring-vnodes", 0,
			fmt.Sprintf("virtual nodes per ring member (0 = default %d)", ring.DefaultVNodes)),
	}
}

// Enabled reports whether a multi-gateway peer set was given.
func (c *ControlPlaneFlags) Enabled() bool { return strings.TrimSpace(*c.Peers) != "" }

// Validate checks the control-plane flag values, reporting every bad value
// in one consolidated error like ValidateProbs.
func (c *ControlPlaneFlags) Validate() error {
	var bad []string
	if *c.VNodes < 0 {
		bad = append(bad, fmt.Sprintf("-ring-vnodes=%d (want ≥ 0)", *c.VNodes))
	}
	if c.Enabled() {
		peers, errs := parsePeers(*c.Peers)
		bad = append(bad, errs...)
		if len(errs) == 0 {
			found := false
			for _, p := range peers {
				if p.ID == *c.Self {
					found = true
					break
				}
			}
			if !found {
				bad = append(bad, fmt.Sprintf("-self=%q (not in -peers)", *c.Self))
			}
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("invalid control-plane flags: %s", strings.Join(bad, ", "))
}

// PeerSet resolves the parsed -peers list; call after Validate.
func (c *ControlPlaneFlags) PeerSet() ([]controlplane.Peer, error) {
	peers, errs := parsePeers(*c.Peers)
	if len(errs) > 0 {
		sort.Strings(errs)
		return nil, fmt.Errorf("invalid control-plane flags: %s", strings.Join(errs, ", "))
	}
	return peers, nil
}

// RingVNodes resolves the vnode count; zero keeps the ring default.
func (c *ControlPlaneFlags) RingVNodes() int {
	if *c.VNodes > 0 {
		return *c.VNodes
	}
	return ring.DefaultVNodes
}

// parsePeers parses an id=url,... list, collecting every malformed entry
// and duplicate ID into the returned error strings.
func parsePeers(s string) ([]controlplane.Peer, []string) {
	var peers []controlplane.Peer
	var bad []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(part, "=")
		if !ok || id == "" || rawURL == "" {
			bad = append(bad, fmt.Sprintf("-peers entry %q (want id=url)", part))
			continue
		}
		if seen[id] {
			bad = append(bad, fmt.Sprintf("-peers entry %q (duplicate id %q)", part, id))
			continue
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			bad = append(bad, fmt.Sprintf("-peers entry %q (URL must be absolute)", part))
			continue
		}
		seen[id] = true
		peers = append(peers, controlplane.Peer{ID: id, URL: u})
	}
	return peers, bad
}

// ParseChaosRates parses a -chaos-rates flag value, wrapping errors with the
// flag name so every binary reports them identically.
func ParseChaosRates(s string) ([]float64, error) {
	rates, err := ParseRates(s)
	if err != nil {
		return nil, fmt.Errorf("bad -chaos-rates: %w", err)
	}
	return rates, nil
}
