package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync/atomic"

	"repro/internal/ring"
)

// ForwardedHeader marks a request already routed by a peer gateway; a proxy
// seeing it serves locally instead of forwarding again, bounding every
// request to at most one hop regardless of ring churn between processes.
const ForwardedHeader = "X-Optimus-Forwarded"

// maxProxyBody bounds request bodies the proxy buffers for routing
// inspection (invoke bodies are tiny; model registrations carry graphs).
const maxProxyBody = 8 << 20

// Peer is one gateway process in a multi-gateway deployment.
type Peer struct {
	// ID is the peer's stable ring identity (must match across all
	// processes); URL is its base address.
	ID  string
	URL *url.URL
}

// Proxy is the HTTP face of the control plane for separate gateway
// processes: it fronts one gateway's handler, owns a consistent-hash ring
// over the peer set, forwards non-owned invokes to their ring owner, and
// mirrors model registrations to every peer so catalogs stay identical.
// Plan sharing falls out of ownership: because every invoke for a function
// lands on its owner, that owner's plan cache is the one that warms — peers
// never plan pairs they do not own.
type Proxy struct {
	self  string
	ring  *ring.Ring
	peers map[string]*url.URL
	next  http.Handler
	// client performs forwards and mirrors; injectable for tests.
	client *http.Client

	forwards     atomic.Int64
	mirrors      atomic.Int64
	mirrorErrors atomic.Int64
}

// NewProxy fronts next (the local gateway handler) for peer set peers,
// identifying as self. The ring is seeded and sized identically on every
// process (seed, vnodes) so all proxies route alike. Returns an error when
// self is not in the peer set or IDs repeat.
func NewProxy(self string, peers []Peer, seed int64, vnodes int, next http.Handler) (*Proxy, error) {
	p := &Proxy{
		self:   self,
		ring:   ring.New(seed, vnodes),
		peers:  make(map[string]*url.URL, len(peers)),
		next:   next,
		client: http.DefaultClient,
	}
	for _, peer := range peers {
		if _, dup := p.peers[peer.ID]; dup {
			return nil, fmt.Errorf("controlplane: duplicate peer id %q", peer.ID)
		}
		if peer.URL == nil {
			return nil, fmt.Errorf("controlplane: peer %q has no URL", peer.ID)
		}
		p.peers[peer.ID] = peer.URL
		p.ring.Add(peer.ID)
	}
	if _, ok := p.peers[self]; !ok {
		return nil, fmt.Errorf("controlplane: self %q not in the peer set", self)
	}
	return p, nil
}

// SetClient replaces the forwarding HTTP client (tests, custom timeouts).
func (p *Proxy) SetClient(c *http.Client) { p.client = c }

// ServeHTTP routes: non-owned invokes forward to the ring owner, model
// registrations mirror to every peer, ring state answers on /api/ring, and
// everything else serves locally.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/api/ring" && r.Method == http.MethodGet:
		p.handleRing(w)
	case r.URL.Path == "/api/invoke" && r.Method == http.MethodPost && r.Header.Get(ForwardedHeader) == "":
		p.routeInvoke(w, r)
	case r.URL.Path == "/api/models" && r.Method == http.MethodPost && r.Header.Get(ForwardedHeader) == "":
		p.mirrorRegister(w, r)
	default:
		p.next.ServeHTTP(w, r)
	}
}

// handleRing reports the proxy's routing view: membership, parameters and
// forwarding counters.
func (p *Proxy) handleRing(w http.ResponseWriter) {
	members := make([]string, 0, len(p.peers))
	for id := range p.peers {
		members = append(members, id)
	}
	sort.Strings(members)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"self":          p.self,
		"members":       members,
		"vnodes":        p.ring.VNodes(),
		"seed":          p.ring.Seed(),
		"forwards":      p.forwards.Load(),
		"mirrors":       p.mirrors.Load(),
		"mirror_errors": p.mirrorErrors.Load(),
	})
}

// routeInvoke decodes the invoke body just enough to learn the model name,
// then serves locally (owner or single member) or forwards to the owner.
func (p *Proxy) routeInvoke(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Model == "" {
		// Malformed bodies go to the local gateway for its own (consistent)
		// error response.
		p.serveLocal(w, r, body)
		return
	}
	owner, ok := p.ring.Owner(req.Model)
	if !ok || owner == p.self {
		p.serveLocal(w, r, body)
		return
	}
	p.forwards.Add(1)
	p.forward(w, r, owner, body)
}

// mirrorRegister serves the registration locally first; on success it
// replays the same body to every peer (marked forwarded, so peers do not
// mirror again). Peer failures don't fail the client's request — the mirror
// counters surface them on /api/ring and the peer re-converges on restart
// from its repository.
func (p *Proxy) mirrorRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	p.serveLocal(rec, r, body)
	if rec.status >= 300 {
		return
	}
	for _, id := range p.peerIDs() {
		if id == p.self {
			continue
		}
		p.mirrors.Add(1)
		if err := p.replay(id, r, body); err != nil {
			p.mirrorErrors.Add(1)
		}
	}
}

// peerIDs returns the peer IDs sorted, so mirror order is deterministic.
func (p *Proxy) peerIDs() []string {
	ids := make([]string, 0, len(p.peers))
	for id := range p.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// serveLocal hands the request to the local gateway with the buffered body
// restored.
func (p *Proxy) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	p.next.ServeHTTP(w, r2)
}

// forward proxies the buffered request to the named peer and copies the
// response back.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, peer string, body []byte) {
	base := p.peers[peer]
	u := *base
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	out, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out.Header = r.Header.Clone()
	out.Header.Set(ForwardedHeader, p.self)
	resp, err := p.client.Do(out)
	if err != nil {
		httpError(w, http.StatusBadGateway, fmt.Errorf("forwarding to %s: %w", peer, err))
		return
	}
	defer resp.Body.Close()
	keys := make([]string, 0, len(resp.Header))
	for k := range resp.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range resp.Header[k] {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// replay POSTs the buffered body to the named peer at the same path.
func (p *Proxy) replay(peer string, r *http.Request, body []byte) error {
	base := p.peers[peer]
	u := *base
	u.Path = r.URL.Path
	out, err := http.NewRequest(r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return err
	}
	out.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	out.Header.Set(ForwardedHeader, p.self)
	resp, err := p.client.Do(out)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	// A duplicate registration on the peer (409) means it already converged
	// — an earlier mirror or a shared repository got there first.
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusConflict {
		return errors.New(resp.Status)
	}
	return nil
}

// statusRecorder captures the status the local handler wrote so the mirror
// step can skip failed registrations.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
