package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// DirectiveChecker is the pseudo-checker name under which problems with
// //optimus:allow directives themselves (malformed or unused) are reported.
// Directive findings cannot be suppressed — a directive that silences
// nothing, or cannot be parsed, must be deleted or repaired, not allowed.
const DirectiveChecker = "directive"

// directivePrefix introduces a suppression comment:
//
//	//optimus:allow <checker> — <reason>
//
// A trailing directive (sharing its line with code) suppresses findings of
// <checker> on that line; a standalone directive suppresses findings on the
// next line. The reason is mandatory: every suppression is a reviewed,
// documented exception to an invariant.
const directivePrefix = "//optimus:allow"

// ParseDirective parses a single comment's text. ok reports whether the
// comment is an //optimus:allow directive at all; err, when ok, reports a
// malformed one (missing checker, missing separator, missing reason).
// The separator is an em dash "—" or a double hyphen "--".
func ParseDirective(text string) (checker, reason string, ok bool, err error) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false, nil
	}
	// "//optimus:allowfoo" is some other word, not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false, nil
	}
	rest = strings.TrimSpace(rest)
	var name, reasonPart string
	if i := strings.Index(rest, "—"); i >= 0 {
		name, reasonPart = rest[:i], rest[i+len("—"):]
	} else if i := strings.Index(rest, "--"); i >= 0 {
		name, reasonPart = rest[:i], rest[i+2:]
	} else {
		return "", "", true, fmt.Errorf("malformed directive: want %q", directivePrefix+" <checker> — <reason>")
	}
	name = strings.TrimSpace(name)
	reason = strings.TrimSpace(reasonPart)
	switch {
	case name == "":
		return "", "", true, fmt.Errorf("malformed directive: missing checker name before the separator")
	case strings.ContainsAny(name, " \t"):
		return "", "", true, fmt.Errorf("malformed directive: checker name %q must be a single token", name)
	case reason == "":
		return "", "", true, fmt.Errorf("malformed directive: missing reason after the separator")
	}
	return name, reason, true, nil
}

// directive is one parsed suppression with its resolved target line.
type directive struct {
	pos     token.Position
	target  int // line whose findings it suppresses
	checker string
	reason  string
	used    bool
}

// collectDirectives scans a package's comments for //optimus:allow
// directives. Malformed directives and directives naming an unknown checker
// are returned as findings, not directives: a suppression that cannot be
// matched to a checker must never silently swallow anything.
func collectDirectives(pkg *Package, known map[string]bool) ([]*directive, []Finding) {
	var dirs []*directive
	var findings []Finding
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				name, reason, ok, err := ParseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if err != nil {
					findings = append(findings, Finding{Checker: DirectiveChecker, Pos: pos, Message: err.Error()})
					continue
				}
				if !known[name] {
					findings = append(findings, Finding{
						Checker: DirectiveChecker,
						Pos:     pos,
						Message: fmt.Sprintf("directive names unknown checker %q", name),
					})
					continue
				}
				target := pos.Line
				if !trailsCode(pkg.Src[pos.Filename], pos.Offset) {
					target = pos.Line + 1
				}
				dirs = append(dirs, &directive{pos: pos, target: target, checker: name, reason: reason})
			}
		}
	}
	return dirs, findings
}

// trailsCode reports whether the comment starting at offset shares its line
// with preceding source text (a trailing comment) rather than standing
// alone.
func trailsCode(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return false
		case ' ', '\t', '\r':
			continue
		default:
			return true
		}
	}
	return false
}

// applySuppressions drops findings matched by a directive (same file, same
// checker, finding line equal to the directive's target line), marking each
// matching directive used. Directive findings themselves are never
// suppressed.
func applySuppressions(findings []Finding, dirs []*directive) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		if f.Checker != DirectiveChecker {
			for _, d := range dirs {
				if d.checker == f.Checker && d.pos.Filename == f.Pos.Filename && d.target == f.Pos.Line {
					d.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// unusedDirectiveFindings reports every directive that suppressed nothing:
// dead suppressions hide rot (the violation was fixed, or the directive
// targets the wrong line) and must be removed.
func unusedDirectiveFindings(dirs []*directive) []Finding {
	var out []Finding
	for _, d := range dirs {
		if !d.used {
			out = append(out, Finding{
				Checker: DirectiveChecker,
				Pos:     d.pos,
				Message: fmt.Sprintf("unused directive: no %s finding on %s:%d", d.checker, d.pos.Filename, d.target),
			})
		}
	}
	return out
}
