package zoo

import (
	"fmt"

	"repro/internal/model"
)

// BERTConfig describes a BERT variant (§5.2): an embedding block followed by
// identically shaped attention blocks, optionally topped by a downstream-task
// head. Downstream-task variants share the pre-trained base weights (same
// WeightsID scope), so transforming between them only needs head changes and
// is the cheapest transformer transformation (§5.2 Example 2).
type BERTConfig struct {
	Name   string
	Blocks int // number of attention blocks (L)
	Hidden int // hidden width (H)
	Heads  int // attention heads (A); affects naming only, widths carry H
	Vocab  int // token vocabulary size
	// Task selects the downstream head: "" (plain encoder), "sc" (sequence
	// classification), "tc" (token classification with a CRF), "qa"
	// (question answering), "nsp" (next sentence prediction), "mc"
	// (multiple choice).
	Task string
	// BaseScope is the weight scope of the pre-trained encoder. Variants
	// with equal BaseScope share encoder weights; head weights always live
	// in a task-specific scope.
	BaseScope string
}

const bertMaxPos = 512

// BERT builds the transformer encoder described by cfg.
func BERT(cfg BERTConfig) *model.Graph {
	base := cfg.BaseScope
	if base == "" {
		base = cfg.Name
	}
	b := model.NewBuilder(cfg.Name, "bert", base)
	h := cfg.Hidden
	b.Add(model.Operation{Name: "input", Type: model.OpInput, Shape: model.Shape{OutChannels: h}})

	// Embedding block: token + position + segment embeddings, summed and
	// normalized.
	tok := b.Add(model.Operation{Name: "emb.token", Type: model.OpEmbedding,
		Shape: model.Shape{InChannels: cfg.Vocab, OutChannels: h}})
	b.SetTail(0)
	pos := b.Add(model.Operation{Name: "emb.pos", Type: model.OpEmbedding,
		Shape: model.Shape{InChannels: bertMaxPos, OutChannels: h}})
	b.SetTail(0)
	seg := b.Add(model.Operation{Name: "emb.seg", Type: model.OpEmbedding,
		Shape: model.Shape{InChannels: 2, OutChannels: h}})
	b.AddFrom(model.Operation{Name: "emb.add", Type: model.OpAdd, Shape: model.Shape{OutChannels: h}}, tok, pos, seg)
	b.Add(model.Operation{Name: "emb.ln", Type: model.OpLayerNorm, Shape: model.Shape{OutChannels: h}})
	b.Add(model.Operation{Name: "emb.drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: h}})

	for blk := 0; blk < cfg.Blocks; blk++ {
		tag := fmt.Sprintf("blk%d", blk)
		entry := b.Tail()[0]
		// Attention layer: Q/K/V/O with weights, Logit/Attend without.
		q := b.AddFrom(model.Operation{Name: tag + ".query", Type: model.OpQuery,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, entry)
		k := b.AddFrom(model.Operation{Name: tag + ".key", Type: model.OpKey,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, entry)
		v := b.AddFrom(model.Operation{Name: tag + ".value", Type: model.OpValue,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, entry)
		logit := b.AddFrom(model.Operation{Name: tag + ".logit", Type: model.OpLogit,
			Shape: model.Shape{OutChannels: h}}, q, k)
		att := b.AddFrom(model.Operation{Name: tag + ".attend", Type: model.OpAttend,
			Shape: model.Shape{OutChannels: h}}, logit, v)
		b.AddFrom(model.Operation{Name: tag + ".output", Type: model.OpAttnOutput,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, att)
		b.AddMerge(tag+".add1", h, b.Tail()[0], entry)
		ln1 := b.Add(model.Operation{Name: tag + ".ln1", Type: model.OpLayerNorm, Shape: model.Shape{OutChannels: h}})
		// Feed-forward: two fully connected layers with GELU.
		b.Dense(tag+".fc1", h, 4*h)
		b.Add(model.Operation{Name: tag + ".gelu", Type: model.OpGELU, Shape: model.Shape{OutChannels: 4 * h}})
		b.Dense(tag+".fc2", 4*h, h)
		b.AddMerge(tag+".add2", h, b.Tail()[0], ln1)
		b.Add(model.Operation{Name: tag + ".ln2", Type: model.OpLayerNorm, Shape: model.Shape{OutChannels: h}})
	}

	headScope := cfg.Name + "/head"
	headOp := func(name string, t model.OpType, in, out int) {
		b.Add(model.Operation{Name: name, Type: t,
			Shape:     model.Shape{InChannels: in, OutChannels: out},
			WeightsID: model.WeightsIDFor(headScope, name)})
	}
	pooler := func() {
		headOp("pooler.dense", model.OpDense, h, h)
		b.Add(model.Operation{Name: "pooler.tanh", Type: model.OpTanh, Shape: model.Shape{OutChannels: h}})
	}
	switch cfg.Task {
	case "":
		// Plain encoder: nothing on top.
	case "sc":
		pooler()
		b.Add(model.Operation{Name: "head.drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: h}})
		headOp("head.classifier", model.OpDense, h, 2)
		b.Add(model.Operation{Name: "head.softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: 2}})
	case "tc":
		b.Add(model.Operation{Name: "head.drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: h}})
		headOp("head.classifier", model.OpDense, h, 9)
		headOp("head.crf", model.OpCRF, 9, 9)
	case "qa":
		headOp("head.span", model.OpDense, h, 2)
		b.Add(model.Operation{Name: "head.softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: 2}})
	case "nsp":
		pooler()
		headOp("head.classifier", model.OpDense, h, 2)
		b.Add(model.Operation{Name: "head.softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: 2}})
	case "mc":
		pooler()
		b.Add(model.Operation{Name: "head.drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: h}})
		headOp("head.classifier", model.OpDense, h, 1)
		b.Add(model.Operation{Name: "head.softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: 1}})
	default:
		panic(fmt.Sprintf("zoo: unknown BERT task %q", cfg.Task))
	}
	b.Add(model.Operation{Name: "output", Type: model.OpOutput, Shape: model.Shape{OutChannels: h}})
	return b.Graph()
}

// bertVariants lists the 10 variants of §8.1: three sizes, two input
// casings, and five downstream tasks built on BERT-Base-Uncased.
var bertVariants = []BERTConfig{
	{Name: "bert-tiny", Blocks: 2, Hidden: 128, Heads: 2, Vocab: 30522},
	{Name: "bert-mini", Blocks: 4, Hidden: 256, Heads: 4, Vocab: 30522},
	{Name: "bert-small", Blocks: 4, Hidden: 512, Heads: 8, Vocab: 30522},
	{Name: "bert-base-cased", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 28996},
	{Name: "bert-base-uncased", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522},
	{Name: "bert-base-sc", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522, Task: "sc", BaseScope: "bert-base-uncased"},
	{Name: "bert-base-tc", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522, Task: "tc", BaseScope: "bert-base-uncased"},
	{Name: "bert-base-qa", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522, Task: "qa", BaseScope: "bert-base-uncased"},
	{Name: "bert-base-nsp", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522, Task: "nsp", BaseScope: "bert-base-uncased"},
	{Name: "bert-base-mc", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522, Task: "mc", BaseScope: "bert-base-uncased"},
}

// BERTNames returns the names of the 10 BERT variants in catalog order.
func BERTNames() []string {
	names := make([]string, len(bertVariants))
	for i, v := range bertVariants {
		names[i] = v.Name
	}
	return names
}

// BERTZoo returns the registry of the 10 BERT variants.
func BERTZoo() *Registry {
	r := NewRegistry()
	for _, v := range bertVariants {
		v := v
		r.Register(v.Name, func() *model.Graph { return BERT(v) })
	}
	return r
}
