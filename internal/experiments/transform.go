package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/zoo"
)

// ---------------------------------------------------------------- Figure 11

// Fig11Result reproduces Figure 11: the 21×21 inter-function transformation
// latency matrix over 11 representative CNNs and the 10 BERT variants, plus
// the load-from-scratch row.
type Fig11Result struct {
	Models []string
	// Matrix[i][j] is the latency of transforming model i into model j; the
	// diagonal transforms into a re-trained (different weights) copy.
	Matrix [][]time.Duration
	// Scratch[j] is the latency of loading model j from scratch (row 22).
	Scratch []time.Duration
	// Safeguarded[i][j] records where the safeguard chose a fresh load.
	Safeguarded [][]bool
	// MaxReduction is the best observed latency reduction vs scratch.
	MaxReduction float64
}

// Fig11 runs the experiment.
func Fig11(o Options) Fig11Result {
	o = o.withDefaults()
	cnn, bert := zoo.Representative21()
	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)

	var res Fig11Result
	graphs := make([]modelEntry, 0, len(cnn)+len(bert))
	for _, n := range cnn {
		graphs = append(graphs, modelEntry{n, imgZoo.MustGet(n)})
	}
	for _, n := range bert {
		graphs = append(graphs, modelEntry{n, bertZoo.MustGet(n)})
	}
	for _, e := range graphs {
		res.Models = append(res.Models, e.name)
		res.Scratch = append(res.Scratch, o.Profile.ModelLoad(e.g).Total())
	}
	for i, src := range graphs {
		row := make([]time.Duration, len(graphs))
		sg := make([]bool, len(graphs))
		for j, dst := range graphs {
			target := dst.g
			if i == j {
				target = reweight(dst.g, "retrained")
			}
			plan := pl.Plan(src.g, target)
			row[j] = plan.TrueCost(o.Profile, src.g)
			if plan.LoadFromScratch {
				row[j] = o.Profile.ModelLoad(target).Total()
				sg[j] = true
			}
			if red := 1 - float64(row[j])/float64(res.Scratch[j]); red > res.MaxReduction {
				res.MaxReduction = red
			}
		}
		res.Matrix = append(res.Matrix, row)
		res.Safeguarded = append(res.Safeguarded, sg)
	}
	return res
}

type modelEntry struct {
	name string
	g    *model.Graph
}

// Render prints the Fig 11 matrix in seconds.
func (r Fig11Result) Render() string {
	header := []string{"from\\to"}
	for j := range r.Models {
		header = append(header, fmt.Sprintf("m%02d", j+1))
	}
	rows := make([][]string, 0, len(r.Models)+2)
	for i, name := range r.Models {
		row := []string{fmt.Sprintf("m%02d %s", i+1, shorten(name))}
		for j := range r.Models {
			cell := secs(r.Matrix[i][j])
			if r.Safeguarded[i][j] {
				cell += "*"
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	scratch := []string{"scratch"}
	for _, d := range r.Scratch {
		scratch = append(scratch, secs(d))
	}
	rows = append(rows, scratch)
	return "Figure 11: inter-function model transformation latency (s); * = safeguard chose fresh load\n" +
		table(header, rows) +
		fmt.Sprintf("max reduction vs scratch: %s (paper: up to 99.08%%)\n", pct(r.MaxReduction))
}

func shorten(s string) string {
	if len(s) > 18 {
		return s[:18]
	}
	return s
}

// ---------------------------------------------------------------- Figure 12

// Fig12Result reproduces Figure 12: large-scale transformation vs loading
// latency over random pairs from Imgclsmob and NAS-Bench-201.
type Fig12Result struct {
	Pairs int
	// Per-zoo transformation and scratch-loading samples.
	ImgTransform, ImgLoad metrics.DurationStats
	NASTransform, NASLoad metrics.DurationStats
	// Reductions of mean latency (paper: 52.88 % and 94.48 %).
	ImgReduction, NASReduction float64
}

// Fig12 runs the experiment with the given pair count (paper: 500).
func Fig12(o Options, pairs int) Fig12Result {
	o = o.withDefaults()
	if o.Quick && pairs > 40 {
		pairs = 40
	}
	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)
	rng := rand.New(rand.NewSource(o.Seed))

	imgNames := imgZoo.Names()
	var imgT, imgL []time.Duration
	for k := 0; k < pairs; k++ {
		src := imgZoo.MustGet(imgNames[rng.Intn(len(imgNames))])
		dst := imgZoo.MustGet(imgNames[rng.Intn(len(imgNames))])
		plan := pl.Plan(src, dst)
		c := plan.TrueCost(o.Profile, src)
		if plan.LoadFromScratch {
			c = o.Profile.ModelLoad(dst).Total()
		}
		imgT = append(imgT, c)
		// The load sample is the same pair's destination, so the reduction
		// is the per-case saving (the safeguard bounds it at ≥ 0).
		imgL = append(imgL, o.Profile.ModelLoad(dst).Total())
	}

	var nasT, nasL []time.Duration
	for k := 0; k < pairs; k++ {
		si, di := rng.Intn(zoo.NASBenchSize), rng.Intn(zoo.NASBenchSize)
		src, err := zoo.NASBenchModel(si, 5, 10)
		if err != nil {
			panic(err)
		}
		dst, err := zoo.NASBenchModel(di, 5, 10)
		if err != nil {
			panic(err)
		}
		plan := pl.Plan(src, dst)
		c := plan.TrueCost(o.Profile, src)
		if plan.LoadFromScratch {
			c = o.Profile.ModelLoad(dst).Total()
		}
		nasT = append(nasT, c)
		nasL = append(nasL, o.Profile.ModelLoad(dst).Total())
	}

	res := Fig12Result{
		Pairs:        pairs,
		ImgTransform: metrics.SummarizeDurations(imgT),
		ImgLoad:      metrics.SummarizeDurations(imgL),
		NASTransform: metrics.SummarizeDurations(nasT),
		NASLoad:      metrics.SummarizeDurations(nasL),
	}
	res.ImgReduction = 1 - float64(res.ImgTransform.Mean)/float64(res.ImgLoad.Mean)
	res.NASReduction = 1 - float64(res.NASTransform.Mean)/float64(res.NASLoad.Mean)
	return res
}

// Render prints the Fig 12 summary.
func (r Fig12Result) Render() string {
	row := func(name string, st metrics.DurationStats) []string {
		return []string{name, fmt.Sprint(st.Count), secs(st.Min), secs(st.Mean), secs(st.Max)}
	}
	rows := [][]string{
		row("imgclsmob transform", r.ImgTransform),
		row("imgclsmob load", r.ImgLoad),
		row("nasbench transform", r.NASTransform),
		row("nasbench load", r.NASLoad),
	}
	return fmt.Sprintf("Figure 12: large-scale transformation latency over %d random pairs\n", r.Pairs) +
		table([]string{"series", "n", "min(s)", "mean(s)", "max(s)"}, rows) +
		fmt.Sprintf("mean-latency reduction: imgclsmob %s (paper: 52.88%%), nasbench %s (paper: 94.48%%)\n",
			pct(r.ImgReduction), pct(r.NASReduction))
}

// ---------------------------------------------------------------- Figure 15

// Fig15Case is the meta-operator latency proportion of one transformation.
type Fig15Case struct {
	Src, Dst string
	Total    time.Duration
	ByKind   map[metaop.Kind]time.Duration
	Counts   map[metaop.Kind]int
}

// Fig15Result reproduces Figure 15: meta-operator latency proportions for
// three transformation cases.
type Fig15Result struct{ Cases []Fig15Case }

// Fig15 runs the experiment.
func Fig15(o Options) Fig15Result {
	o = o.withDefaults()
	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)
	pairs := [][2]string{
		{"resnet50-imagenet", "resnet101-imagenet"},
		{"resnet101-imagenet", "resnet50-imagenet"},
		{"vgg16-imagenet", "vgg19-imagenet"},
		// A width-variant pair whose transformation is Reshape-dominated
		// (the paper's three cases match shapes exactly under our
		// shape-first group matcher, so Reshape shows up only here).
		{"mobilenet-w0.75-imagenet", "mobilenet-w1-imagenet"},
	}
	var res Fig15Result
	for _, pr := range pairs {
		src, dst := imgZoo.MustGet(pr[0]), imgZoo.MustGet(pr[1])
		plan := pl.Plan(src, dst)
		res.Cases = append(res.Cases, Fig15Case{
			Src: pr[0], Dst: pr[1],
			Total:  plan.EstCost,
			ByKind: plan.CostByKind(),
			Counts: plan.CountByKind(),
		})
	}
	return res
}

// Render prints the Fig 15 proportions.
func (r Fig15Result) Render() string {
	header := []string{"transformation", "total(ms)"}
	for _, k := range metaop.Kinds() {
		header = append(header, k.String()+"%")
	}
	rows := make([][]string, 0, len(r.Cases))
	for _, c := range r.Cases {
		row := []string{c.Src + " → " + c.Dst, ms(c.Total)}
		for _, k := range metaop.Kinds() {
			frac := 0.0
			if c.Total > 0 {
				frac = float64(c.ByKind[k]) / float64(c.Total)
			}
			row = append(row, pct(frac))
		}
		rows = append(rows, row)
	}
	return "Figure 15: latency proportion of varying meta-operators\n" + table(header, rows)
}

// ---------------------------------------------------------------- Table 1

// Table1Case compares basic (Munkres) and improved (group) planning for one
// transformation.
type Table1Case struct {
	Src, Dst string
	// Wall-clock planning times measured in this process.
	BasicPlanning, ImprovedPlanning time.Duration
	// Estimated plan execution times.
	BasicExecution, ImprovedExecution time.Duration
}

// Table1Result reproduces Table 1.
type Table1Result struct{ Cases []Table1Case }

// Table1 runs the experiment, measuring real planning wall-clock time.
func Table1(o Options) Table1Result {
	o = o.withDefaults()
	est := cost.Exact(o.Profile)
	basic := planner.New(est, planner.AlgoHungarian)
	improved := planner.New(est, planner.AlgoGroup)
	pairs := [][2]string{
		{"vgg16-imagenet", "vgg19-imagenet"},
		{"vgg16-imagenet", "resnet50-imagenet"},
		{"resnet50-imagenet", "vgg19-imagenet"},
	}
	var res Table1Result
	for _, pr := range pairs {
		src, dst := imgZoo.MustGet(pr[0]), imgZoo.MustGet(pr[1])
		t0 := time.Now()
		bp := basic.Plan(src, dst)
		bt := time.Since(t0)
		t1 := time.Now()
		ip := improved.Plan(src, dst)
		it := time.Since(t1)
		res.Cases = append(res.Cases, Table1Case{
			Src: pr[0], Dst: pr[1],
			BasicPlanning: bt, ImprovedPlanning: it,
			BasicExecution:    planExecCost(o.Profile, bp, src, dst),
			ImprovedExecution: planExecCost(o.Profile, ip, src, dst),
		})
	}
	return res
}

// planExecCost is the true execution time of a plan, honoring the safeguard.
func planExecCost(p *cost.Profile, plan *metaop.Plan, src, dst *model.Graph) time.Duration {
	if plan.LoadFromScratch {
		return p.ModelLoad(dst).Total()
	}
	return plan.TrueCost(p, src)
}

// Render prints Table 1.
func (r Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Cases))
	for _, c := range r.Cases {
		rows = append(rows, []string{
			c.Src + " → " + c.Dst,
			fmt.Sprint(c.BasicPlanning), secs(c.BasicExecution),
			fmt.Sprint(c.ImprovedPlanning), secs(c.ImprovedExecution),
		})
	}
	return "Table 1: planning and execution latency, basic (Munkres) vs improved (group)\n" +
		table([]string{"case", "basic plan", "basic exec(s)", "improved plan", "improved exec(s)"}, rows)
}
