package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// streamCeiling gates the full-size (10M-request) memory-ceiling test: it
// takes seconds and belongs to `make bench-stream`, not the tier-1 suite.
var streamCeiling = flag.Bool("stream-ceiling", false,
	"run the 10M-request streaming replay under a hard peak-heap ceiling")

// TestStreamScaleSmoke runs the streaming scale section at a tiny size and
// checks the invariants that must hold at any scale: the streaming summary
// equals the materialized one, the windowed replay equals serial on the
// bridge-connected placement, and the replay actually parallelized.
func TestStreamScaleSmoke(t *testing.T) {
	res := StreamScale(Options{Quick: true, Seed: 5}, 30_000, 2, 8, 2)
	if res.Requests == 0 || res.WindowedRequests == 0 {
		t.Fatal("empty streaming replay")
	}
	if !res.MatchesMaterialized {
		t.Error("streaming summary diverged from the materialized replay")
	}
	if !res.WindowedMatchesSerial {
		t.Error("windowed replay diverged from the serial streaming engine")
	}
	if res.ParallelWindows == 0 {
		t.Errorf("no window parallelized: %+v", res)
	}
	if res.PeakHeapMB <= 0 || res.PeakHeapBaseMB <= 0 {
		t.Errorf("peak heap not sampled: %+v", res)
	}
	// At tiny sizes fixed costs (cluster build) dominate allocs/req and the
	// peak ratio is noise; the strict bars are enforced on the artifact.
	if res.AllocsPerReq > 5 {
		t.Errorf("streaming replay allocates %.2f/req even at smoke size", res.AllocsPerReq)
	}
}

// TestStreamArtifactGuard validates the streaming section of the checked-in
// BENCH_sim_scale.json against the acceptance bars: a 10M+-request streaming
// point, per-request allocations at or below the sharded materialized path,
// peak heap within 1.5× of the 10×-smaller baseline (constant memory), and
// both equality proofs green.
func TestStreamArtifactGuard(t *testing.T) {
	path := filepath.Join("..", "..", BenchScaleFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing artifact %s (run `make bench-scale`): %v", BenchScaleFile, err)
	}
	var res ScaleBench
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stream == nil {
		t.Fatalf("artifact has no streaming section (regenerate with `make bench-scale`)")
	}
	s := res.Stream
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatal(err)
	}
	var stream map[string]any
	if err := json.Unmarshal(keys["stream"], &stream); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"stream_requests", "stream_ms", "stream_allocs_per_req",
		"stream_peak_heap_base_mb", "stream_peak_heap_mb", "stream_peak_ratio",
		"stream_matches_materialized", "windowed_matches_serial", "parallel_windows",
	} {
		if _, ok := stream[k]; !ok {
			t.Errorf("stream section missing key %q", k)
		}
	}
	if s.Requests < 10_000_000 {
		t.Errorf("streaming point replayed only %d requests; want >= 10M", s.Requests)
	}
	if s.AllocsPerReq > res.ShardedAllocsPerReq {
		t.Errorf("streaming allocs/req %.4f above the sharded materialized path's %.4f",
			s.AllocsPerReq, res.ShardedAllocsPerReq)
	}
	if s.PeakRatio <= 0 || s.PeakRatio >= 1.5 {
		t.Errorf("peak heap ratio %.2f (10x the requests must stay under 1.5x the memory)", s.PeakRatio)
	}
	if !s.MatchesMaterialized {
		t.Error("artifact records a streaming/materialized divergence")
	}
	if !s.WindowedMatchesSerial {
		t.Error("artifact records a windowed/serial divergence")
	}
	if s.ParallelWindows == 0 {
		t.Error("artifact's windowed replay never parallelized a window")
	}
}

// topAllocSites renders the heaviest in-use allocation sites from the
// runtime's allocation profile — the "offending allocation site" report the
// ceiling test prints on failure.
func topAllocSites(n int) string {
	var recs []runtime.MemProfileRecord
	size, ok := runtime.MemProfile(nil, true)
	for {
		recs = make([]runtime.MemProfileRecord, size+64)
		size, ok = runtime.MemProfile(recs, true)
		if ok {
			recs = recs[:size]
			break
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].InUseBytes() > recs[j].InUseBytes() })
	if n > len(recs) {
		n = len(recs)
	}
	var b strings.Builder
	for _, r := range recs[:n] {
		frames := runtime.CallersFrames(r.Stack())
		site := "(unknown)"
		for {
			f, more := frames.Next()
			if f.Function != "" && !strings.HasPrefix(f.Function, "runtime.") {
				site = fmt.Sprintf("%s (%s:%d)", f.Function, filepath.Base(f.File), f.Line)
				break
			}
			if !more {
				break
			}
		}
		fmt.Fprintf(&b, "  %8.1f MB in-use, %8.1f MB allocated  %s\n",
			float64(r.InUseBytes())/(1<<20), float64(r.AllocBytes)/(1<<20), site)
	}
	return b.String()
}

// TestStreamCeiling replays >= 10M requests through the streaming engine
// under a hard peak-heap ceiling. Opt-in via -stream-ceiling (it is the
// `make bench-stream` gate); on failure it names the heaviest allocation
// sites so the regression is attributable from the CI log alone.
func TestStreamCeiling(t *testing.T) {
	if !*streamCeiling {
		t.Skip("pass -stream-ceiling to run the 10M-request memory-ceiling test")
	}
	const ceilingMB = 256.0
	o := Options{Seed: 1}.withDefaults()
	spec := streamSpec(o, 10_000_000, 1_000_000, 8)
	var n int
	peak := peakHeapDuring(func() {
		_, _, _, n = streamRun(spec, 1)
	})
	t.Logf("streamed %d requests, peak heap %.1f MB (ceiling %.0f MB)", n, peak, ceilingMB)
	if n < 10_000_000 {
		t.Fatalf("streamed only %d requests; want >= 10M (rate tuning drifted)", n)
	}
	if peak > ceilingMB {
		t.Fatalf("peak heap %.1f MB exceeds the %.0f MB ceiling; heaviest allocation sites:\n%s",
			peak, ceilingMB, topAllocSites(8))
	}
}
