package simulate_test

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

func BenchmarkRun24hOptimus(b *testing.B) {
	names := []string{"resnet18-imagenet", "resnet50-imagenet", "vgg16-imagenet", "densenet121-imagenet"}
	fns := testFunctions(b, names...)
	tr := workload.MixedPoisson(names, 24*time.Hour, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := simulate.New(simulate.Config{Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2}, fns)
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "requests/op")
}

func BenchmarkOnlineInvoke(b *testing.B) {
	names := []string{"resnet18-imagenet", "resnet34-imagenet"}
	o := simulate.NewOnline(simulate.Config{Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 2},
		testFunctions(b, names...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Invoke(names[i%2], time.Duration(i)*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
