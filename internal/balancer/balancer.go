// Package balancer implements the model-sharing-aware load balancer of §5.1:
// it places functions with *similar model structures* but *complementary
// demand dynamics* on the same nodes, so idle containers are frequently
// transformable into the models that need them.
//
// Functions are clustered with K-medoids (PAM) under the distance
//
//	γ₁·D(A,B) + γ₂·K(A,B)
//
// where D is the normalized model editing distance (transformation cost from
// the §4.4 planner) and K the Pearson correlation of historical demand
// series (correlated demand is bad: both functions spike together, leaving
// no idle containers to share).
package balancer

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
)

// FunctionInfo is the balancer's view of one function.
type FunctionInfo struct {
	Name  string
	Model *model.Graph
	// Demand is the function's historical invocation series {l_t} (§5.1).
	Demand []float64
}

// Config parameterizes the balancer.
type Config struct {
	// GammaDistance (γ₁) weighs the model editing distance; GammaDemand
	// (γ₂) weighs demand correlation. Both in [0,1]; defaults 0.7 / 0.3.
	GammaDistance float64
	GammaDemand   float64
	// Seed drives the K-medoids initialization.
	Seed int64
	// MaxIterations bounds the PAM refinement loop (default 50).
	MaxIterations int
}

func (c Config) withDefaults() Config {
	if c.GammaDistance == 0 && c.GammaDemand == 0 {
		c.GammaDistance, c.GammaDemand = 0.7, 0.3
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 50
	}
	return c
}

// DistanceMatrix computes the pairwise function distance used for
// clustering. Editing distances are symmetrized (the planner's costs are
// asymmetric, §8.2) and normalized to [0,1] by the maximum observed cost;
// correlations are mapped from [-1,1] to [0,1].
func DistanceMatrix(pl *planner.Planner, fns []FunctionInfo, cfg Config) [][]float64 {
	cfg = cfg.withDefaults()
	n := len(fns)
	edit := make([][]float64, n)
	var maxEdit float64
	for i := range edit {
		edit[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a := planCost(pl, fns[i].Model, fns[j].Model)
			b := planCost(pl, fns[j].Model, fns[i].Model)
			d := (a + b) / 2
			edit[i][j], edit[j][i] = d, d
			if d > maxEdit {
				maxEdit = d
			}
		}
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i == j {
				continue
			}
			e := 0.0
			if maxEdit > 0 {
				e = edit[i][j] / maxEdit
			}
			corr := metrics.Corr(fns[i].Demand, fns[j].Demand)
			k := (corr + 1) / 2 // correlated demand → larger distance
			dist[i][j] = cfg.GammaDistance*e + cfg.GammaDemand*k
		}
	}
	return dist
}

func planCost(pl *planner.Planner, src, dst *model.Graph) float64 {
	p := pl.Plan(src, dst)
	if p.LoadFromScratch {
		return float64(p.ScratchCost)
	}
	return float64(p.EstCost)
}

// Clusters groups function indexes by cluster.
type Clusters struct {
	// Medoids holds the representative function index of each cluster.
	Medoids []int
	// Assign maps each function index to its cluster number.
	Assign []int
}

// KMedoids runs PAM clustering over the distance matrix into k clusters.
// It is deterministic under cfg.Seed. k is clamped to [1, n].
func KMedoids(dist [][]float64, k int, cfg Config) Clusters {
	cfg = cfg.withDefaults()
	n := len(dist)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	medoids := rng.Perm(n)[:k]
	sort.Ints(medoids)

	assign := make([]int, n)
	assignAll := func() float64 {
		var total float64
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c, m := range medoids {
				if d := dist[i][m]; d < bestD {
					bestD = d
					best = c
				}
			}
			assign[i] = best
			total += dist[i][medoids[best]]
		}
		return total
	}
	cost := assignAll()

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		improved := false
		for c := 0; c < k; c++ {
			// Try swapping medoid c with each member of its cluster.
			for i := 0; i < n; i++ {
				if assign[i] != c || i == medoids[c] {
					continue
				}
				old := medoids[c]
				medoids[c] = i
				if newCost := assignAll(); newCost < cost-1e-12 {
					cost = newCost
					improved = true
				} else {
					medoids[c] = old
				}
			}
		}
		if !improved {
			break
		}
		assignAll()
	}
	assignAll()
	return Clusters{Medoids: medoids, Assign: assign}
}

// Placement computes the fn→nodes placement for the simulator: functions are
// clustered into as many clusters as nodes, and each cluster is served by a
// set of nodes sized proportionally to its demand share (at least one).
func Placement(pl *planner.Planner, fns []FunctionInfo, nodes int, cfg Config) map[string][]int {
	cfg = cfg.withDefaults()
	if nodes < 1 {
		nodes = 1
	}
	// More clusters than nodes: clusters capture fine-grained structural
	// similarity (a resnet cluster, a vgg cluster, a BERT cluster, ...);
	// nodes then take whole clusters, balancing demand. This realizes the
	// paper's "the load balancer tends to distribute the functions in the
	// same cluster to the same node" while "consider[ing] the load of
	// nodes" (§5.1).
	k := 2 * nodes
	if k > len(fns) {
		k = len(fns)
	}
	if k < 1 {
		k = 1
	}
	dist := DistanceMatrix(pl, fns, cfg)
	cl := KMedoids(dist, k, cfg)

	// Cluster demand totals.
	load := make([]float64, k)
	fnDemand := make([]float64, len(fns))
	for i, f := range fns {
		var d float64
		for _, x := range f.Demand {
			d += x
		}
		if d == 0 {
			d = 1 // unknown demand still needs a home
		}
		fnDemand[i] = d
		load[cl.Assign[i]] += d
	}

	// Greedy bin-packing: heaviest cluster first onto the least-loaded node.
	order := make([]int, k)
	for c := range order {
		order[c] = c
	}
	sort.Slice(order, func(a, b int) bool {
		if load[order[a]] != load[order[b]] {
			return load[order[a]] > load[order[b]]
		}
		return order[a] < order[b]
	})
	nodeLoad := make([]float64, nodes)
	clusterNode := make([]int, k)
	for _, c := range order {
		best := 0
		for n := 1; n < nodes; n++ {
			if nodeLoad[n] < nodeLoad[best] {
				best = n
			}
		}
		clusterNode[c] = best
		nodeLoad[best] += load[c]
	}

	out := make(map[string][]int, len(fns))
	for i, f := range fns {
		out[f.Name] = []int{clusterNode[cl.Assign[i]]}
	}
	return out
}

// apportion distributes `nodes` node slots over clusters proportionally to
// load, guaranteeing every cluster at least one node (largest-remainder
// method).
func apportion(load []float64, total float64, nodes int) []int {
	k := len(load)
	out := make([]int, k)
	if k == 0 {
		return out
	}
	if total <= 0 {
		total = 1
	}
	// Base allocation: one node each, remainder by load share.
	for i := range out {
		out[i] = 1
	}
	extra := nodes - k
	if extra <= 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	shares := make([]rem, k)
	given := 0
	for i, l := range load {
		exact := l / total * float64(extra)
		whole := int(exact)
		out[i] += whole
		given += whole
		shares[i] = rem{i, exact - float64(whole)}
	}
	sort.Slice(shares, func(a, b int) bool {
		if shares[a].frac != shares[b].frac {
			return shares[a].frac > shares[b].frac
		}
		return shares[a].idx < shares[b].idx
	})
	for x := 0; x < extra-given; x++ {
		out[shares[x%k].idx]++
	}
	return out
}

// SlotDuration is the default demand-series granularity used when deriving
// FunctionInfo demand from traces.
const SlotDuration = 5 * time.Minute
