package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/planner"
)

// requiredBenchKeys are the JSON keys each benchmark artifact must carry;
// the regression guard fails if a key disappears, so downstream tooling
// (and future PRs comparing against the baseline) can rely on them.
var (
	requiredPlannerKeys = []string{
		"seed", "models", "pairs", "workers", "serial_ms", "parallel_ms",
		"speedup", "identical", "pairs_per_sec",
		"plan_p50_ms", "plan_p95_ms", "plan_p99_ms",
		"cache_planned", "cache_deduped", "cache_evictions",
	}
	requiredSimKeys = []string{
		"seed", "policy", "models", "requests", "wall_ms", "ops_per_sec",
		"mean_ms", "p50_ms", "p95_ms", "p99_ms",
		"warm_fraction", "transform_fraction", "cold_fraction", "cache_hit_ratio",
	}
)

func loadKeys(t *testing.T, path string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	return m
}

// TestBenchArtifactsGuard is the benchmark regression guard: the bench
// harness must emit both artifacts with every required key, parallel
// precompute must produce byte-identical plans to serial with no duplicate
// planning work, and on multicore runners the parallel warm-up must not be
// slower than serial.
func TestBenchArtifactsGuard(t *testing.T) {
	o := Options{Seed: 7, Quick: true}
	res := Bench(o, ClusterSetup{}, 0)
	dir := t.TempDir()
	if err := res.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}

	pm := loadKeys(t, filepath.Join(dir, BenchPlannerFile))
	for _, k := range requiredPlannerKeys {
		if _, ok := pm[k]; !ok {
			t.Errorf("%s missing required key %q", BenchPlannerFile, k)
		}
	}
	sm := loadKeys(t, filepath.Join(dir, BenchSimFile))
	for _, k := range requiredSimKeys {
		if _, ok := sm[k]; !ok {
			t.Errorf("%s missing required key %q", BenchSimFile, k)
		}
	}

	if !res.Planner.Identical {
		t.Error("parallel precompute produced plans differing from serial")
	}
	if res.Planner.CachePlanned != res.Planner.Pairs {
		t.Errorf("parallel precompute planned %d of %d pairs (duplicates or losses)",
			res.Planner.CachePlanned, res.Planner.Pairs)
	}
	if res.Sim.Requests == 0 {
		t.Error("sim bench served no requests")
	}
	// The speedup bound only holds where there is parallel hardware: on
	// single-core runners the pool degenerates to serial plus overhead.
	if runtime.NumCPU() >= 4 && res.Planner.Speedup < 1.0 {
		t.Errorf("parallel precompute slower than serial on %d cores: speedup %.2f",
			runtime.NumCPU(), res.Planner.Speedup)
	}
}

// TestBenchSeedReproducible asserts the virtual-time numbers (everything but
// wall clock) are identical across runs with the same seed.
func TestBenchSeedReproducible(t *testing.T) {
	o := Options{Seed: 11, Quick: true}
	a := Bench(o, ClusterSetup{}, 0)
	b := Bench(o, ClusterSetup{}, 0)
	if a.Sim.Requests != b.Sim.Requests ||
		a.Sim.MeanMS != b.Sim.MeanMS ||
		a.Sim.P50MS != b.Sim.P50MS ||
		a.Sim.P95MS != b.Sim.P95MS ||
		a.Sim.P99MS != b.Sim.P99MS ||
		a.Sim.WarmFraction != b.Sim.WarmFraction ||
		a.Sim.CacheHitRatio != b.Sim.CacheHitRatio {
		t.Errorf("sim bench not seed-reproducible:\n%+v\n%+v", a.Sim, b.Sim)
	}
	if a.Planner.Pairs != b.Planner.Pairs || !a.Planner.Identical || !b.Planner.Identical {
		t.Errorf("planner bench not seed-reproducible:\n%+v\n%+v", a.Planner, b.Planner)
	}
}

// benchPrecompute is the `go test -bench` smoke shared by the serial and
// parallel variants (make benchguard / CI).
func benchPrecompute(b *testing.B, workers int) {
	models := benchModels(true)
	pl := planner.New(cost.Exact(cost.CPU()), planner.AlgoGroup)
	pairs := len(models) * (len(models) - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		planner.NewPrecomputer(pl, planner.NewCache(), workers).PrecomputeAll(models)
	}
	b.ReportMetric(float64(pairs), "pairs/op")
}

func BenchmarkPrecomputeSerial(b *testing.B)   { benchPrecompute(b, 1) }
func BenchmarkPrecomputeParallel(b *testing.B) { benchPrecompute(b, 0) }
