package planner

// bruteForceLimit caps the matrix size the brute-force solver accepts;
// (n+m)! beyond 9 is unusable even as a test oracle.
const bruteForceLimit = 9

// bruteForce enumerates all permutations of the assignment (the O((n+m)!)
// formulation of §4.4 Module 2) and returns the optimal row→column
// assignment and its cost. It panics if the matrix exceeds bruteForceLimit.
func bruteForce(mx *Matrix) ([]int, float64) {
	n := mx.Size()
	if n > bruteForceLimit {
		//optimus:allow panicpath — guard on the factorial cross-check oracle: callers gate on bruteForceLimit
		panic("planner: brute force beyond factorial limit")
	}
	perm := make([]int, n)
	best := make([]int, n)
	used := make([]bool, n)
	bestCost := -1.0

	var rec func(row int, acc float64)
	rec = func(row int, acc float64) {
		if bestCost >= 0 && acc >= bestCost {
			return // prune: costs are non-negative
		}
		if row == n {
			bestCost = acc
			copy(best, perm)
			return
		}
		for col := 0; col < n; col++ {
			if used[col] {
				continue
			}
			used[col] = true
			perm[row] = col
			rec(row+1, acc+mx.At(row, col))
			used[col] = false
		}
	}
	rec(0, 0)
	return best, bestCost
}
