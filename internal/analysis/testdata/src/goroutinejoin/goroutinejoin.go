// Package goroutinejoin is the fixture for the goroutinejoin checker:
// spawned functions with no reachable join or termination signal must be
// reported; WaitGroup/channel/select/context disciplines, dynamic spawns,
// and calls into invisible externals must stay silent.
package goroutinejoin

import (
	"context"
	"fmt"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	cond *sync.Cond
	out  chan int
	n    int
}

// waitgroup joins through wg.Done in a deferred closure.
func (p *pool) waitgroup() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.n++
	}()
	p.wg.Wait()
}

// channelSend signals completion on a channel.
func (p *pool) channelSend(v int) {
	go func() {
		p.out <- v
	}()
}

// channelClose signals by closing.
func (p *pool) channelClose() {
	go func() {
		close(p.out)
	}()
}

// selectCtx terminates through context cancellation.
func (p *pool) selectCtx(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		case v := <-p.out:
			p.n = v
		}
	}()
}

// broadcast wakes waiters through the condition variable.
func (p *pool) broadcast() {
	go p.notify()
}

func (p *pool) notify() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	p.cond.Broadcast()
}

// spin is pure computation with no signal anywhere.
func (p *pool) spin() {
	for i := 0; i < 1000; i++ {
		p.n += i
	}
}

// leakLiteral spawns a signal-free literal.
func (p *pool) leakLiteral() {
	go func() { // want `spawns function literal with no reachable join or termination signal`
		for i := 0; i < 1000; i++ {
			p.n += i
		}
	}()
}

// leakNamed spawns a signal-free method.
func (p *pool) leakNamed() {
	go p.spin() // want `spawns \(\*pool\)\.spin with no reachable join or termination signal`
}

// transitive reaches the broadcast through a helper: silent.
func (p *pool) transitive() {
	go p.step()
}

func (p *pool) step() {
	p.notify()
}

// leakTransitive reaches only signal-free module code.
func (p *pool) leakTransitive() {
	go p.twice() // want `spawns \(\*pool\)\.twice with no reachable join`
}

func (p *pool) twice() {
	p.spin()
	p.spin()
}

// dynamic spawns a function value: unresolvable, assumed joined by the
// caller's discipline.
func (p *pool) dynamic(f func()) {
	go f()
}

// dynamicInside calls a function value inside the spawned body: the scan
// is inconclusive, so it stays silent.
func (p *pool) dynamicInside(f func()) {
	go func() {
		f()
		p.n++
	}()
}

// external calls a bodyless stdlib function: invisible, assumed to
// terminate.
func (p *pool) external() {
	go fmt.Println(p.n)
}
