package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fanout"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// BenchFanoutFile is the artifact `optimus-bench fanout` emits; `make check`
// (the fanoutguard gate) and CI validate its contents.
const BenchFanoutFile = "BENCH_fanout.json"

// Fanout experiment: a placement-pinned function absorbs a request burst by
// growing a transform fan-out tree into the cluster's free capacity. Four
// fixed-seed runs over the same trace:
//
//   - tree / independent: zero faults. The tree pipelines donations — every
//     completed replica becomes a donor for the next wave — while the
//     independent baseline only lets the original seeds donate, modeling N
//     independent transforms under the same per-node bandwidth cap. Both end
//     at the same warm set; time-to-N-warm is the contrast.
//   - tree-crash / independent-crash: the same pair under donor-crash
//     injection. Orphaned subtrees re-parent onto the nearest healthy
//     ancestor, so the tree still reaches target warmth and its goodput must
//     not fall below the baseline's.
//
// A second same-seed tree-crash run proves byte-identical determinism.

// FanoutTargetWarm is N in time-to-N-warm: the replica count every run must
// reach. The acceptance gate requires N >= 16.
const FanoutTargetWarm = 16

// FanoutRun is one configuration's measurements over the burst trace.
type FanoutRun struct {
	Mode     string `json:"mode"`
	Arrivals int    `json:"arrivals"`
	Served   int    `json:"served"`
	Dropped  int    `json:"dropped"`
	// Goodput is served/arrivals.
	Goodput float64 `json:"goodput"`
	MeanMS  float64 `json:"mean_ms"`
	P99MS   float64 `json:"p99_ms"`
	// TimeToWarmMS is the trigger-to-N-warm latency of the run's tree.
	TimeToWarmMS float64             `json:"time_to_warm_ms"`
	Stats        metrics.FanoutStats `json:"stats"`
	Faults       metrics.FaultStats  `json:"faults"`
}

// FanoutResult is the persisted artifact: the zero-fault and donor-crash
// pairs plus the determinism proof.
type FanoutResult struct {
	Seed       int64        `json:"seed"`
	TargetWarm int          `json:"target_warm"`
	Rates      faults.Rates `json:"crash_rates"`

	Tree             FanoutRun `json:"tree"`
	Independent      FanoutRun `json:"independent"`
	TreeCrash        FanoutRun `json:"tree_crash"`
	IndependentCrash FanoutRun `json:"independent_crash"`

	// Deterministic records that a second same-seed tree-crash run produced
	// byte-identical measurements.
	Deterministic bool `json:"deterministic"`
}

// fanoutTrace builds the burst workload: two concurrent warm-up requests
// (seeding both of the pinned node's slots), then a burst that saturates the
// pinned node and queues past the trigger threshold.
func fanoutTrace(burst int) *workload.Trace {
	const name = "resnet18-imagenet"
	reqs := []workload.Request{{Function: name, At: 0}, {Function: name, At: 0}}
	at := 5 * time.Minute
	for i := 0; i < burst; i++ {
		reqs = append(reqs, workload.Request{Function: name, At: at + time.Duration(i)*time.Millisecond})
	}
	return &workload.Trace{Duration: at + 2*time.Hour, Requests: reqs}
}

// fanoutCrashRates is the donor-crash injection mix of the crash pair.
func fanoutCrashRates() faults.Rates {
	return faults.Rates{FanoutCrash: 0.3}
}

// fanoutExpConfig builds one mode's simulator config: the function pinned to
// node 0, nine more nodes holding the free capacity the tree grows into.
func fanoutExpConfig(o Options, fc fanout.Config, independent bool, rates faults.Rates) simulate.Config {
	fc = fc.WithDefaults()
	fc.Enabled = true
	fc.Independent = independent
	if fc.MaxRecipients < FanoutTargetWarm {
		fc.MaxRecipients = FanoutTargetWarm
	}
	return simulate.Config{
		Policy:            policy.Optimus{},
		Nodes:             10,
		ContainersPerNode: 2,
		Profile:           o.Profile,
		Seed:              o.Seed,
		Placement:         map[string][]int{"resnet18-imagenet": {0}},
		Fanout:            fc,
		Faults:            rates,
		// Give the per-pair breaker enough budget that donor crashes exercise
		// re-parenting instead of short-circuiting the whole tree to fallback
		// loads on the first failure.
		Breaker: supervisor.BreakerConfig{Threshold: 6, Cooldown: 10 * time.Minute},
	}
}

// fanoutOnce replays the trace under one mode and folds the run.
func fanoutOnce(o Options, fc fanout.Config, fns []*simulate.Function, tr *workload.Trace, mode string, independent bool, rates faults.Rates) FanoutRun {
	sim := simulate.New(fanoutExpConfig(o, fc, independent, rates), fns)
	col, err := sim.Run(tr)
	if err != nil {
		panic(err)
	}
	run := FanoutRun{
		Mode:         mode,
		Arrivals:     col.Len() + col.Faults.Dropped,
		Served:       col.Len(),
		Dropped:      col.Faults.Dropped,
		MeanMS:       msF(col.MeanLatency()),
		P99MS:        msF(col.Percentile(99)),
		TimeToWarmMS: msF(col.Fanout.TimeToWarm),
		Stats:        col.Fanout,
		Faults:       col.Faults,
	}
	if run.Arrivals > 0 {
		run.Goodput = float64(run.Served) / float64(run.Arrivals)
	}
	return run
}

// Fanout runs the four-way burst comparison and double-runs the tree-crash
// mode to prove determinism. A zero fc takes the experiment defaults
// (bandwidth 2, threshold 4, 16 recipients).
func Fanout(o Options, fc fanout.Config) FanoutResult {
	o = o.withDefaults()
	fns := []*simulate.Function{{Name: "resnet18-imagenet", Model: imgZoo.MustGet("resnet18-imagenet")}}
	tr := fanoutTrace(120)
	rates := fanoutCrashRates()

	res := FanoutResult{
		Seed:             o.Seed,
		TargetWarm:       FanoutTargetWarm,
		Rates:            rates,
		Tree:             fanoutOnce(o, fc, fns, tr, "tree", false, faults.Rates{}),
		Independent:      fanoutOnce(o, fc, fns, tr, "independent", true, faults.Rates{}),
		TreeCrash:        fanoutOnce(o, fc, fns, tr, "tree-crash", false, rates),
		IndependentCrash: fanoutOnce(o, fc, fns, tr, "independent-crash", true, rates),
	}
	rerun := fanoutOnce(o, fc, fns, tr, "tree-crash", false, rates)
	a, err := json.Marshal(res.TreeCrash)
	if err != nil {
		panic(err)
	}
	b, err := json.Marshal(rerun)
	if err != nil {
		panic(err)
	}
	res.Deterministic = bytes.Equal(a, b)
	return res
}

// WriteFile persists the artifact into dir, creating it if needed.
func (r FanoutResult) WriteFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fanout: creating %s: %w", dir, err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, BenchFanoutFile)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("fanout: writing %s: %w", path, err)
	}
	return nil
}

// Render prints the four-run digest.
func (r FanoutResult) Render() string {
	rows := make([][]string, 0, 4)
	for _, p := range []FanoutRun{r.Tree, r.Independent, r.TreeCrash, r.IndependentCrash} {
		rows = append(rows, []string{
			p.Mode,
			fmt.Sprint(p.Arrivals),
			fmt.Sprint(p.Dropped),
			fmt.Sprintf("%.4f", p.Goodput),
			fmt.Sprintf("%.1f", p.MeanMS),
			fmt.Sprintf("%.1f", p.TimeToWarmMS),
			fmt.Sprint(p.Stats.Recipients),
			fmt.Sprint(p.Stats.Waves),
			fmt.Sprint(p.Stats.DonorCrashes),
			fmt.Sprint(p.Stats.Reparents),
			fmt.Sprint(p.Stats.LoadFallbacks),
		})
	}
	det := "deterministic: second same-seed tree-crash run was byte-identical"
	if !r.Deterministic {
		det = "NONDETERMINISTIC: same-seed reruns diverged"
	}
	return fmt.Sprintf("Extension: fan-out transform trees (time-to-%d-warm, pipelined waves vs independent donation; crash pair under donor-crash injection)\n", r.TargetWarm) +
		table([]string{"mode", "arrivals", "dropped", "goodput", "mean(ms)", "warm(ms)", "replicas", "waves", "crashes", "reparents", "fallbacks"}, rows) +
		"\n" + det
}
