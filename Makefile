GO ?= go

.PHONY: build vet fmt lint lintguard test race bench bench-scale bench-stream bench-soak bench-recovery bench-fanout bench-gateway microbench benchguard scaleguard streamguard soakguard recoveryguard fanoutguard gatewayguard fuzz check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offending files) when any tracked Go file is not
# gofmt-clean; it never rewrites.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

# lint runs the project's own static analyzer (cmd/optimus-lint): wallclock,
# globalrand, maprange, lockedescape, panicpath, lockorder, goroutinejoin,
# unlockpath, timeprop. Exit is non-zero on any finding, including unused
# //optimus:allow directives. The binary prints a whole-repo wall-time note
# to stderr (packages checked/loaded + elapsed); the memoized source
# importer keeps stdlib type-checking a one-time cost per run.
lint:
	$(GO) run ./cmd/optimus-lint ./...

# lintguard is the machine gate for make check / CI: the same whole-repo
# run with the JSON reporter, archived as optimus-lint.json. Any
# un-suppressed finding fails the gate and the report names it.
lintguard:
	@$(GO) run ./cmd/optimus-lint -json ./... > optimus-lint.json || { \
		echo "lintguard: findings (see optimus-lint.json):"; \
		cat optimus-lint.json; \
		exit 1; \
	}

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the reproducible benchmark baseline harness and leaves
# BENCH_planner.json + BENCH_sim.json in the repo root.
bench:
	$(GO) run ./cmd/optimus-bench bench

# bench-scale runs the simulator hot-path scaling benchmark (1M-request
# trace, serial/scan vs indexed vs sharded, plus the constant-memory
# streaming section at 10M requests) and leaves BENCH_sim_scale.json in the
# repo root.
bench-scale:
	$(GO) run ./cmd/optimus-bench -stream scale

# bench-stream replays >= 10M requests through the streaming engine under a
# hard peak-heap ceiling (sampled via runtime.MemStats); on failure the test
# prints the heaviest allocation sites from the runtime alloc profile.
bench-stream:
	$(GO) test -run '^TestStreamCeiling$$' -v ./internal/experiments -stream-ceiling=true

# bench-soak runs the chaos-soak experiment (baseline vs resilient under
# mixed hard/gray faults) and leaves BENCH_soak.json in the repo root.
bench-soak:
	$(GO) run ./cmd/optimus-bench soak

# bench-recovery runs the supervised-recovery sweep and leaves
# BENCH_recovery.json in the repo root.
bench-recovery:
	$(GO) run ./cmd/optimus-bench recovery

# bench-fanout runs the burst fan-out-tree experiment (pipelined waves vs
# independent transforms, zero-fault and donor-crash pairs) and leaves
# BENCH_fanout.json in the repo root.
bench-fanout:
	$(GO) run ./cmd/optimus-bench fanout

# bench-gateway runs the multi-gateway control-plane experiment (aggregate
# throughput at 1/2/4/8 gateways, shared-vs-isolated plan cache with a
# mid-trace drain) and leaves BENCH_gateway.json in the repo root.
bench-gateway:
	$(GO) run ./cmd/optimus-bench gateway

# microbench runs the Go testing.B microbenchmarks of the root package.
microbench:
	$(GO) test -bench=. -benchmem .

# benchguard is the benchmark regression gate: the bench harness must emit
# complete BENCH_*.json artifacts, parallel precompute must match serial
# byte-for-byte, and (on multicore) must not be slower; the -bench smoke
# keeps the precompute benchmarks compiling and running.
benchguard:
	$(GO) test -run 'TestBench' -bench 'BenchmarkPrecompute' -benchtime=1x ./internal/experiments

# scaleguard validates the checked-in BENCH_sim_scale.json (indexed replay
# must not be slower than the scan baseline, both equivalence checks must
# hold) and replays a small-N scale smoke end to end.
scaleguard:
	$(GO) test -run 'TestScale' ./internal/experiments

# streamguard validates the streaming section of BENCH_sim_scale.json
# (10M+-request point, allocs/req at or below the sharded path, peak heap
# within 1.5x of the 10x-smaller baseline, streaming==materialized and
# windowed==serial equalities) and replays a streaming smoke end to end.
streamguard:
	$(GO) test -run 'TestStream' ./internal/experiments

# soakguard validates the checked-in BENCH_soak.json (byte-identical
# same-seed reruns, resilient hit ratio ≥ the bounded-retry baseline's) and
# replays a quick chaos-soak smoke end to end.
soakguard:
	$(GO) test -run 'TestSoak' ./internal/experiments

# recoveryguard validates the checked-in BENCH_recovery.json (supervised
# mean latency and MTTR beat the base configuration at the top fault rate).
recoveryguard:
	$(GO) test -run 'TestRecoveryArtifact' ./internal/experiments

# fanoutguard validates the checked-in BENCH_fanout.json against the fan-out
# acceptance gate (time-to-16-warm below the independent baseline,
# re-parenting under donor crashes with goodput held, double-run
# byte-identity) and replays the burst experiment as a smoke.
fanoutguard:
	$(GO) test -run 'TestFanout' ./internal/experiments

# gatewayguard validates the checked-in BENCH_gateway.json against the
# multi-gateway acceptance gate (≥2x aggregate simulated throughput at 4
# gateways, shared plan-cache hit ratio at or above isolated with no more
# pairs planned, double-run byte-identity) and replays a quick smoke.
gatewayguard:
	$(GO) test -run 'TestGateway' ./internal/experiments

# fuzz runs a short native-fuzzing smoke over the plan executor, the
# lint-directive parser, the call-graph builder, and the Azure-trace CSV
# reader.
fuzz:
	$(GO) test -fuzz='^FuzzPlanApply$$' -fuzztime=10s -run '^$$' ./internal/planner
	$(GO) test -fuzz='^FuzzDirectiveParse$$' -fuzztime=10s -run '^$$' ./internal/analysis
	$(GO) test -fuzz='^FuzzCallGraph$$' -fuzztime=10s -run '^$$' ./internal/analysis
	$(GO) test -fuzz='^FuzzAzureCSV$$' -fuzztime=10s -run '^$$' ./internal/workload

# check is the pre-merge gate: formatting, static analysis (go vet plus the
# project linter with its JSON gate), a full build, the test suite under the
# race detector (the gateway stress test needs it), and the benchmark
# regression guards.
check: fmt vet lintguard build race benchguard scaleguard streamguard soakguard recoveryguard fanoutguard gatewayguard
