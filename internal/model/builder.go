package model

// Builder provides a fluent way to construct model graphs. Zoo generators
// use it to express architectures as sequential chains with occasional
// branches (residual connections, inception towers, dense blocks).
//
// The builder tracks a "tail": the operation(s) whose outputs feed the next
// appended operation.
type Builder struct {
	g     *Graph
	tails []int
	scope string
}

// NewBuilder returns a builder for a fresh graph. scope seeds weight
// identities: every weighted op added through the builder gets
// WeightsIDFor(scope, name) unless an explicit WeightsID is provided.
func NewBuilder(name, family, scope string) *Builder {
	if scope == "" {
		scope = name
	}
	return &Builder{g: NewGraph(name, family), scope: scope}
}

// Graph returns the graph under construction.
func (b *Builder) Graph() *Graph { return b.g }

// Tail returns the current tail operation IDs.
func (b *Builder) Tail() []int { return append([]int(nil), b.tails...) }

// SetTail overrides the current tail. Used to start a branch from an
// earlier point of the graph.
func (b *Builder) SetTail(ids ...int) { b.tails = append(b.tails[:0], ids...) }

// Add appends op, connects every current tail to it, and makes it the sole
// tail. It returns the new operation's ID. Weighted operations with a zero
// WeightsID get a deterministic identity derived from the builder scope and
// the op name.
func (b *Builder) Add(op Operation) int {
	if op.Type.HasWeights() && op.WeightsID == 0 {
		op.WeightsID = WeightsIDFor(b.scope, op.Name)
	}
	o := b.g.AddOp(op)
	for _, t := range b.tails {
		b.g.Connect(t, o.ID)
	}
	b.tails = append(b.tails[:0], o.ID)
	return o.ID
}

// AddFrom appends op fed by the explicit predecessor set from (the current
// tail is ignored) and makes it the sole tail.
func (b *Builder) AddFrom(op Operation, from ...int) int {
	b.SetTail(from...)
	return b.Add(op)
}

// Conv appends a Conv2D with a ReLU-free plain convolution.
func (b *Builder) Conv(name string, k, in, out, stride int) int {
	return b.Add(Operation{Name: name, Type: OpConv2D,
		Shape: Shape{KernelH: k, KernelW: k, InChannels: in, OutChannels: out, Stride: stride}})
}

// Dense appends a fully connected layer.
func (b *Builder) Dense(name string, in, out int) int {
	return b.Add(Operation{Name: name, Type: OpDense,
		Shape: Shape{InChannels: in, OutChannels: out}})
}

// BN appends a batch normalization over width channels.
func (b *Builder) BN(name string, width int) int {
	return b.Add(Operation{Name: name, Type: OpBatchNorm, Shape: Shape{OutChannels: width}})
}

// ReLU appends a ReLU activation over width channels.
func (b *Builder) ReLU(name string, width int) int {
	return b.Add(Operation{Name: name, Type: OpReLU, Shape: Shape{OutChannels: width}})
}

// MaxPool appends a k×k max pooling with the given stride.
func (b *Builder) MaxPool(name string, k, width, stride int) int {
	return b.Add(Operation{Name: name, Type: OpMaxPool,
		Shape: Shape{KernelH: k, KernelW: k, InChannels: width, OutChannels: width, Stride: stride}})
}

// AvgPool appends a k×k average pooling with the given stride.
func (b *Builder) AvgPool(name string, k, width, stride int) int {
	return b.Add(Operation{Name: name, Type: OpAvgPool,
		Shape: Shape{KernelH: k, KernelW: k, InChannels: width, OutChannels: width, Stride: stride}})
}

// GlobalAvgPool appends a global average pooling over width channels.
func (b *Builder) GlobalAvgPool(name string, width int) int {
	return b.Add(Operation{Name: name, Type: OpGlobalAvgPool, Shape: Shape{InChannels: width, OutChannels: width}})
}

// AddMerge appends an elementwise Add merging the given inputs.
func (b *Builder) AddMerge(name string, width int, inputs ...int) int {
	return b.AddFrom(Operation{Name: name, Type: OpAdd, Shape: Shape{OutChannels: width}}, inputs...)
}

// ConcatMerge appends a channel Concat merging the given inputs.
func (b *Builder) ConcatMerge(name string, width int, inputs ...int) int {
	return b.AddFrom(Operation{Name: name, Type: OpConcat, Shape: Shape{OutChannels: width}}, inputs...)
}

// Input starts the graph with an input op of the given channel width.
func (b *Builder) Input(width int) int {
	return b.Add(Operation{Name: "input", Type: OpInput, Shape: Shape{OutChannels: width}})
}

// Output terminates the graph with an output op.
func (b *Builder) Output(width int) int {
	return b.Add(Operation{Name: "output", Type: OpOutput, Shape: Shape{InChannels: width, OutChannels: width}})
}
