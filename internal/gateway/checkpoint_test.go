package gateway

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/zoo"
)

// TestCheckpointKillAndRestart is the durability acceptance test: a gateway
// serves traffic, checkpoints, and "dies"; a second gateway built over the
// same checkpoint path comes back with the models, metrics history, and
// cluster state of the first.
func TestCheckpointKillAndRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	clock := &fakeClock{}
	mk := func() *Gateway {
		return New(Config{
			Cluster:        simulate.Config{Nodes: 1, ContainersPerNode: 2},
			Now:            clock.now,
			CheckpointPath: path,
		})
	}
	g1 := mk()
	img := zoo.Imgclsmob()
	for _, name := range []string{"resnet18-imagenet", "resnet34-imagenet"} {
		if err := g1.RegisterModel(img.MustGet(name)); err != nil {
			t.Fatal(err)
		}
	}
	srv1 := httptest.NewServer(g1.Handler())
	for i, name := range []string{"resnet18-imagenet", "resnet34-imagenet", "resnet18-imagenet"} {
		resp, body := post(t, srv1.URL+"/api/invoke", map[string]string{"model": name})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke %d: %d %v", i, resp.StatusCode, body)
		}
		clock.advance(time.Minute)
	}
	srv1.Close()
	if err := g1.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Same state, same snapshot: checkpoints are deterministic bytes.
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-checkpointing unchanged state produced different bytes")
	}

	g2 := mk() // restores from path inside New
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()

	_, models := get(t, srv2.URL+"/api/models")
	names, _ := models["models"].([]any)
	if len(names) != 2 {
		t.Fatalf("restored models = %v, want 2", models["models"])
	}
	_, stats := get(t, srv2.URL+"/api/stats")
	if got := stats["requests"].(float64); got != 3 {
		t.Fatalf("restored requests = %v, want 3", got)
	}
	sup := stats["supervisor"].(map[string]any)
	ck := sup["checkpoint"].(map[string]any)
	if ck["restored_models"].(float64) != 2 || ck["restored_records"].(float64) != 3 {
		t.Fatalf("checkpoint stats = %v", ck)
	}
	if q := ck["quarantined"]; q != nil && len(q.([]any)) != 0 {
		t.Fatalf("clean restore quarantined containers: %v", q)
	}

	// The restored cluster still serves; the resident containers survived the
	// restart, so this is not a cold start.
	resp, body := post(t, srv2.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart invoke: %d %v", resp.StatusCode, body)
	}
	if kind := body["start"]; kind == "cold" {
		t.Fatalf("post-restart invoke was a cold start; cluster state was lost (%v)", body)
	}
}

// TestCheckpointCorruptStartsClean: an unreadable checkpoint must not take the
// server down — it logs a warning and boots clean.
func TestCheckpointCorruptStartsClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := os.WriteFile(path, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(os.Stderr)
	clock := &fakeClock{}
	g := New(Config{
		Cluster:        simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:            clock.now,
		CheckpointPath: path,
	})
	if !strings.Contains(buf.String(), "starting clean") {
		t.Fatalf("corrupt checkpoint did not log the clean-start warning: %q", buf.String())
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	_, stats := get(t, srv.URL+"/api/stats")
	if got := stats["requests"].(float64); got != 0 {
		t.Fatalf("clean start has %v requests", got)
	}
	// The gateway is fully functional after the fallback.
	if err := g.RegisterModel(zoo.Imgclsmob().MustGet("resnet18-imagenet")); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke after clean start: %d %v", resp.StatusCode, body)
	}
}

// TestCheckpointQuarantinesUnknownModels: restoring a checkpoint whose cluster
// references a model missing from the snapshot quarantines those containers
// instead of resurrecting handles to state the repository cannot back.
func TestCheckpointQuarantinesUnknownModels(t *testing.T) {
	clock := &fakeClock{}
	g1 := New(Config{
		Cluster: simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:     clock.now,
	})
	img := zoo.Imgclsmob()
	for _, name := range []string{"resnet18-imagenet", "resnet34-imagenet"} {
		if err := g1.RegisterModel(img.MustGet(name)); err != nil {
			t.Fatal(err)
		}
	}
	srv1 := httptest.NewServer(g1.Handler())
	for _, name := range []string{"resnet18-imagenet", "resnet34-imagenet"} {
		resp, _ := post(t, srv1.URL+"/api/invoke", map[string]string{"model": name})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke %s failed", name)
		}
		clock.advance(time.Minute)
	}
	srv1.Close()
	cp, err := g1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot the way a partial registry loss would: drop
	// resnet34 from the model manifests while its container remains in the
	// cluster state.
	kept := cp.Models[:0]
	for _, raw := range cp.Models {
		var m struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		if m.Name != "resnet34-imagenet" {
			kept = append(kept, raw)
		}
	}
	cp.Models = kept

	g2 := New(Config{
		Cluster: simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:     clock.now,
	})
	quarantined, err := g2.RestoreCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 || quarantined[0] != "resnet34-imagenet" {
		t.Fatalf("quarantined = %v, want [resnet34-imagenet]", quarantined)
	}
	// The surviving model's container is intact and serves warm.
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()
	resp, body := post(t, srv2.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke after quarantine: %d %v", resp.StatusCode, body)
	}
}

// TestGatewayStressSupervised is the -race regression test for the recovery
// layer: parallel invokers against nonzero hang/transform fault rates with
// the watchdog, breaker, and checkpoint writer all active, racing stats
// readers and the periodic checkpointer.
func TestGatewayStressSupervised(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	clock := &fakeClock{}
	g := New(Config{
		Cluster: simulate.Config{
			Nodes: 2, ContainersPerNode: 2,
			Seed:           11,
			Faults:         faults.Rates{Transform: 0.3, Hang: 0.2},
			WatchdogFactor: 2,
			Breaker:        supervisor.BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		},
		Now:            clock.now,
		MaxInflight:    64,
		RequestTimeout: 5 * time.Second,
		CheckpointPath: path,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	img := zoo.Imgclsmob()
	for _, name := range []string{"resnet18-imagenet", "resnet34-imagenet"} {
		if err := g.RegisterModel(img.MustGet(name)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		workers = 8
		iters   = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	do := func(f func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := f(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for w := 0; w < workers/2; w++ {
		do(func(i int) error { // invokers keep forcing transform attempts
			name := "resnet18-imagenet"
			if i%2 == 1 {
				name = "resnet34-imagenet"
			}
			raw, _ := json.Marshal(map[string]string{"model": name})
			resp, err := http.Post(srv.URL+"/api/invoke", "application/json", bytes.NewReader(raw))
			if err != nil {
				return err
			}
			resp.Body.Close()
			return nil
		})
	}
	do(func(int) error { // stats readers race the supervisor counters
		resp, err := http.Get(srv.URL + "/api/stats")
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	})
	do(func(int) error { // the periodic checkpointer races everything
		_ = g.SaveCheckpoint()
		return nil
	})
	do(func(int) error {
		clock.advance(250 * time.Millisecond)
		return nil
	})
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := supervisor.Load(path); err != nil {
		t.Fatalf("stress run left no loadable checkpoint: %v", err)
	}
}
