// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 preliminaries and §8). Each experiment returns a structured
// result with a Render method that prints the same rows/series the paper
// reports; cmd/optimus-bench exposes them on the command line and
// bench_test.go as testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/cost"
	"repro/internal/model"
	"repro/internal/zoo"
)

// Options configures experiment runs.
type Options struct {
	// Profile is the hardware profile (default cost.CPU()).
	Profile *cost.Profile
	// Seed drives every stochastic choice (default 1).
	Seed int64
	// Quick shrinks sample sizes for fast test runs.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Profile == nil {
		o.Profile = cost.CPU()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// reweight returns a clone of g whose weighted operations carry fresh weight
// identities from the given scope — "the same model with different weights"
// used on the Fig 11 diagonal and in the strawman Case 1.
func reweight(g *model.Graph, scope string) *model.Graph {
	c := g.Clone()
	c.Name = g.Name + "@" + scope
	for _, op := range c.Ops() {
		if op.HasWeights() {
			op.WeightsID = model.WeightsIDFor(scope, op.Name)
		}
	}
	return c
}

// zooCache shares built registries across experiments in one process.
var (
	imgZoo  = zoo.Imgclsmob()
	bertZoo = zoo.BERTZoo()
)

// ImgclsmobZoo returns the process-wide Imgclsmob registry.
func ImgclsmobZoo() *zoo.Registry { return imgZoo }

// BERTRegistry returns the process-wide BERT registry.
func BERTRegistry() *zoo.Registry { return bertZoo }
