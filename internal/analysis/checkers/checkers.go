// Package checkers holds the project-specific optimus-lint checkers. Each
// guards one determinism or concurrency invariant the reproduction's
// results rest on; DESIGN.md's "Determinism invariants & static
// enforcement" section documents the mapping (a guard test keeps the two in
// sync).
package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// All returns the full registry with project-default configuration, in
// reporting order.
func All() []analysis.Checker {
	return []analysis.Checker{
		DefaultWallclock(),
		NewGlobalrand(),
		NewMaprange(),
		NewLockedescape(),
		DefaultPanicpath(),
		NewLockorder(),
		NewGoroutinejoin(),
		NewUnlockpath(),
		DefaultTimeprop(),
	}
}

// pkgFuncRef resolves a selector to (package path, name) when it references
// a package-level object of an imported package (time.Now, rand.Intn, ...).
func pkgFuncRef(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, obj types.Object, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", nil, false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", nil, false
	}
	obj = info.Uses[sel.Sel]
	if obj == nil {
		return "", "", nil, false
	}
	return pn.Imported().Path(), sel.Sel.Name, obj, true
}

// receiverIdent returns the receiver's identifier object for a method
// declaration, or nil for functions and anonymous receivers.
func receiverIdent(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// isObjUse reports whether e is an identifier resolving to obj.
func isObjUse(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && obj != nil && info.Uses[id] == obj
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// hasPkg reports whether path is one of the listed packages or inside one
// of their subtrees: a future repro/internal/simulate/tracing must inherit
// repro/internal/simulate's virtual-time ban.
func hasPkg(list []string, path string) bool {
	for _, p := range list {
		if p == path || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
