package experiments

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// Chaos experiment: sweep the fault-injection intensity and measure how
// Optimus's transform-first strategy degrades. At intensity r, transforms
// abort and from-scratch loads fail with probability r, containers crash
// mid-request with probability r/10, and the routed node suffers an outage
// with probability r/100 per arrival — a rough severity ordering of real
// failure classes. Deterministic given the seed.

// ChaosPoint is one fault-intensity measurement.
type ChaosPoint struct {
	// Rate is the injected transform/load failure probability.
	Rate float64
	// Served counts completed requests (dropped ones record no latency).
	Served    int
	Mean, P99 time.Duration
	// Cold, Fallback and Transform are start-kind shares among served
	// requests.
	Cold, Fallback, Transform float64
	// Faults tallies the injected failures and recoveries.
	Faults metrics.FaultStats
}

// ChaosResult holds the per-rate degradation curve.
type ChaosResult struct {
	Points []ChaosPoint
}

// Chaos runs the fault-rate sweep under the Optimus policy (default rates
// 0, 0.05, 0.1, 0.2, 0.4) over a shared Poisson workload.
func Chaos(o Options, rates []float64, horizon time.Duration) ChaosResult {
	o = o.withDefaults()
	if len(rates) == 0 {
		rates = []float64{0, 0.05, 0.1, 0.2, 0.4}
	}
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	if o.Quick && horizon > 6*time.Hour {
		horizon = 6 * time.Hour
	}
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, horizon, o.Seed)

	var res ChaosResult
	for _, r := range rates {
		sim := simulate.New(simulate.Config{
			Policy:            policy.Optimus{},
			Nodes:             4,
			ContainersPerNode: 4,
			Profile:           o.Profile,
			Seed:              o.Seed,
			Faults: faults.Rates{
				Transform: r,
				Load:      r,
				Crash:     r / 10,
				Outage:    r / 100,
			},
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			panic(err)
		}
		fr := col.KindFractions()
		res.Points = append(res.Points, ChaosPoint{
			Rate:      r,
			Served:    col.Len(),
			Mean:      col.MeanLatency(),
			P99:       col.Percentile(99),
			Cold:      fr[metrics.StartCold],
			Fallback:  fr[metrics.StartFallback],
			Transform: fr[metrics.StartTransform],
			Faults:    col.Faults,
		})
	}
	return res
}

// Render prints the degradation curve.
func (r ChaosResult) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Rate),
			fmt.Sprint(p.Served),
			ms(p.Mean), ms(p.P99),
			pct(p.Cold), pct(p.Fallback), pct(p.Transform),
			fmt.Sprint(p.Faults.Retries), fmt.Sprint(p.Faults.Dropped),
		})
	}
	return "Extension: chaos sweep (transform/load failures at rate, crashes at rate/10, outages at rate/100)\n" +
		table([]string{"rate", "served", "mean(ms)", "p99(ms)", "cold", "fallback", "transform", "retries", "dropped"}, rows)
}
