package planner

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/model"
)

// crosscheckZoo is a table of named ≤5-op graphs chosen so every ordered
// pair's cost matrix stays within bruteForceLimit and so the pairs exercise
// each of the group matcher's passes: zero-cost shape+weights matches,
// shape-only matches (Replace), sequential reshapes, and the
// un-reshapeable extreme-ratio skip that falls through to Add/Reduce.
func crosscheckZoo() []*model.Graph {
	a := chain("a", convOp("c1", 3, 8, 8), reluOp("r1", 8))
	// b shares a's conv weights: the pass-0 zero-cost match.
	b := chain("b", convOp("c1", 3, 8, 8), reluOp("r1", 8))
	b.Op(0).WeightsID = a.Op(0).WeightsID
	// c has a's shapes with fresh weights: the pass-1 shape-only match.
	c := chain("c", convOp("c1", 3, 8, 8), reluOp("r1", 8))
	// d differs only in kernel size: the final sequential Reshape pass.
	d := chain("d", convOp("c1", 5, 8, 8), reluOp("r1", 8))
	// e's channel counts are 16× a's, beyond ReshapeMaxRatio: conv
	// substitution is ruled out, forcing Add+Reduce.
	e := chain("e", convOp("c1", 3, 128, 128), reluOp("r1", 128))
	// f is a longer mixed chain so pairs also cover unequal op counts.
	f := chain("f", convOp("c1", 1, 8, 16), reluOp("r1", 16), convOp("c2", 3, 16, 16), reluOp("r2", 16))
	return []*model.Graph{a, b, c, d, e, f}
}

// TestCrosscheckHungarianBrute cross-checks the Munkres solver against the
// brute-force oracle on every ordered zoo pair: equal optimal assignment
// cost, a group mapping never cheaper than the optimum, and executable plans
// from all three algorithms.
func TestCrosscheckHungarianBrute(t *testing.T) {
	zoo := crosscheckZoo()
	prof := cost.CPU()
	est := cost.Exact(prof)
	for _, src := range zoo {
		for _, dst := range zoo {
			if src == dst {
				continue
			}
			t.Run(src.Name+"→"+dst.Name, func(t *testing.T) {
				mx := BuildMatrix(est, src, dst)
				if mx.Size() > bruteForceLimit {
					t.Fatalf("zoo pair too big for brute force: matrix %d", mx.Size())
				}
				hRows, hCost := hungarian(mx)
				bRows, bCost := bruteForce(mx)
				if math.Abs(hCost-bCost) > 1e-9 {
					t.Errorf("hungarian %v != brute %v", hCost, bCost)
				}
				// Both optima, translated to mappings, cost the same; the
				// group heuristic is never cheaper than the optimum.
				hMap := mappingFromAssignment(mx, hRows)
				bMap := mappingFromAssignment(mx, bRows)
				hNode := MappingCost(est, src, dst, hMap)
				bNode := MappingCost(est, src, dst, bMap)
				if math.Abs(hNode-bNode) > 1e-9 {
					t.Errorf("mapping cost hungarian %v != brute %v", hNode, bNode)
				}
				gNode := MappingCost(est, src, dst, groupMapping(est, src, dst))
				if gNode < hNode-1e-9 {
					t.Errorf("group mapping (%v) beat the optimal assignment (%v)", gNode, hNode)
				}
				for _, algo := range []Algorithm{AlgoGroup, AlgoHungarian, AlgoBrute} {
					p := New(est, algo).Plan(src, dst)
					if err := metaop.Verify(prof, p, src, dst); err != nil {
						t.Errorf("%v plan does not verify: %v", algo, err)
					}
				}
			})
		}
	}
}

// TestGroupCoversMatchPasses pins each pass of the group matcher to the plan
// shape it must produce on the zoo pairs built for it.
func TestGroupCoversMatchPasses(t *testing.T) {
	zoo := crosscheckZoo()
	a, b, c, d, e := zoo[0], zoo[1], zoo[2], zoo[3], zoo[4]
	est := exact()
	pl := New(est, AlgoGroup)

	// Pass 0 — identical shape and weights everywhere: an empty, free plan.
	if p := pl.Plan(b, a); len(p.Steps) != 0 || p.EstCost != 0 {
		t.Errorf("shared-weights pair: %d steps cost %v, want empty free plan", len(p.Steps), p.EstCost)
	}
	// Pass 1 — identical shapes, fresh conv weights: exactly one Replace.
	if counts := pl.Plan(c, a).CountByKind(); counts[metaop.KindReplace] != 1 ||
		counts[metaop.KindReshape] != 0 || counts[metaop.KindAdd] != 0 || counts[metaop.KindReduce] != 0 {
		t.Errorf("shape-only pair: %v, want exactly 1 replace", counts)
	}
	// Final pass — kernel 5→3 within the ratio bound: Reshape (plus the
	// weight Replace a weighted reshape implies), nothing added or reduced.
	if counts := pl.Plan(d, a).CountByKind(); counts[metaop.KindReshape] != 1 ||
		counts[metaop.KindAdd] != 0 || counts[metaop.KindReduce] != 0 {
		t.Errorf("kernel-ladder pair: %v, want exactly 1 reshape", counts)
	}
	// Reshapeable skip — 128 vs 8 channels exceeds ReshapeMaxRatio, so the
	// conv cannot be reshaped: it is reduced and the destination conv added,
	// while the weightless relu still reshapes.
	counts := pl.Plan(e, a).CountByKind()
	if counts[metaop.KindAdd] != 1 || counts[metaop.KindReduce] != 1 || counts[metaop.KindReshape] != 1 {
		t.Errorf("extreme-ratio pair: %v, want 1 add + 1 reduce + 1 reshape", counts)
	}
	if !est.Profile().Reshapeable(a.Op(0), a.Op(0)) || est.Profile().Reshapeable(e.Op(0), a.Op(0)) {
		t.Error("Reshapeable gate not behaving as the zoo assumes")
	}
}
