package simulate

import (
	"sort"
	"time"

	"repro/internal/supervisor"
)

// ExportState snapshots the online cluster — virtual clock, node health, and
// resident containers — into the supervisor's durable checkpoint form.
func (o *Online) ExportState() supervisor.ClusterState {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.sim
	st := supervisor.ClusterState{ClockNS: int64(s.clock)}
	for _, n := range s.nodes {
		ns := supervisor.NodeState{
			ID:          n.ID,
			DownUntilNS: int64(n.DownUntil),
			NextID:      n.nextID,
		}
		for _, c := range n.Containers {
			if c.dead {
				continue
			}
			ns.Containers = append(ns.Containers, supervisor.ContainerState{
				ID:          c.ID,
				Function:    c.Fn.Name,
				MemMB:       c.MemMB,
				BusyUntilNS: int64(c.BusyUntil),
				LastDoneNS:  int64(c.LastDone),
				CreatedNS:   int64(c.Created),
			})
		}
		st.Nodes = append(st.Nodes, ns)
	}
	st.Health = s.health.Export()
	return st
}

// ImportState restores a checkpointed cluster snapshot into the online
// server, reconciling it against the currently registered functions: a
// container whose function is no longer registered — or that no longer fits
// its node's capacity — is quarantined (discarded) rather than resurrected.
// The returned list names the quarantined containers' functions, sorted and
// deduplicated, for operator logging. The virtual clock only moves forward.
func (o *Online) ImportState(st supervisor.ClusterState) []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.sim
	if c := time.Duration(st.ClockNS); c > s.clock {
		s.clock = c
	}
	quarantined := map[string]bool{}
	byID := make(map[int]*Node, len(s.nodes))
	for _, n := range s.nodes {
		byID[n.ID] = n
	}
	for _, ns := range st.Nodes {
		n := byID[ns.ID]
		if n == nil {
			// The restored topology is larger than the running one: every
			// container on the missing node is quarantined.
			for _, cs := range ns.Containers {
				quarantined[cs.Function] = true
			}
			continue
		}
		if d := time.Duration(ns.DownUntilNS); d > n.DownUntil {
			n.DownUntil = d
		}
		if ns.NextID > n.nextID {
			n.nextID = ns.NextID
		}
		for _, cs := range ns.Containers {
			fn, ok := s.fns[cs.Function]
			if !ok || !n.HasRoomFor(cs.MemMB) {
				quarantined[cs.Function] = true
				continue
			}
			n.Containers = append(n.Containers, &Container{
				ID:        cs.ID,
				Fn:        fn,
				MemMB:     cs.MemMB,
				BusyUntil: time.Duration(cs.BusyUntilNS),
				LastDone:  time.Duration(cs.LastDoneNS),
				Created:   time.Duration(cs.CreatedNS),
			})
		}
	}
	// Reconcile health state rather than resetting it: a node checkpointed
	// as quarantined or draining restores that way — never resurrected as
	// healthy — and its time-driven exits run from the restored instants.
	s.health.Import(st.Health, s.clock)
	out := make([]string, 0, len(quarantined))
	for f := range quarantined {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
