package simulate

import (
	"testing"
	"time"

	"repro/internal/zoo"
)

// benchSim builds an in-package simulator mid-replay: warm containers spread
// across the cluster so routing exercises the warm/repurpose/capacity tiers.
func benchSim(b testing.TB, nodes, containers int, scan bool) (*Simulator, []*fnRuntime) {
	b.Helper()
	reg := zoo.Imgclsmob()
	names := []string{
		"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet",
		"vgg16-imagenet", "vgg19-imagenet", "densenet121-imagenet",
	}
	fns := make([]*Function, len(names))
	for i, n := range names {
		g, err := reg.Get(n)
		if err != nil {
			b.Fatal(err)
		}
		fns[i] = &Function{Name: n, Model: g}
	}
	// Policy stays nil: the routing paths under test never consult it.
	s := New(Config{
		Nodes: nodes, ContainersPerNode: containers,
		RouteScan: scan,
	}, fns)
	if !scan {
		s.enableIndex()
	}
	// Populate: a mix of idle-warm, idle-mature and busy containers.
	now := 30 * time.Minute
	s.clock = now
	for ni, n := range s.nodes {
		for ci := 0; ci < containers; ci++ {
			fn := fns[(ni+ci)%len(fns)]
			c := n.newContainer(fn, s.env.GrantFor(fn), now-5*time.Minute)
			switch ci % 3 {
			case 0: // busy
				c.BusyUntil = now + time.Minute
				c.LastDone = now - 2*time.Minute
				if n.idx != nil {
					n.idx.startService(c, s.ordFor(fn))
				}
			case 1: // mature idle (repurposable)
				c.LastDone = now - 3*time.Minute
			default: // young idle
				c.LastDone = now - 10*time.Second
			}
		}
		if n.idx != nil {
			n.idx.expire(now)
		}
	}
	frs := make([]*fnRuntime, len(fns))
	for i, f := range fns {
		frs[i] = s.rt(f)
	}
	return s, frs
}

// BenchmarkRoute compares the legacy scanning router against the indexed
// router on a warm mid-replay cluster. The indexed path must report
// 0 allocs/op.
func BenchmarkRoute(b *testing.B) {
	for _, bc := range []struct {
		name              string
		nodes, containers int
	}{
		{"small-4x8", 4, 8},
		{"large-32x16", 32, 16},
	} {
		b.Run(bc.name+"/scan", func(b *testing.B) {
			s, frs := benchSim(b, bc.nodes, bc.containers, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkNode = s.route(frs[i%len(frs)].fn)
			}
		})
		b.Run(bc.name+"/indexed", func(b *testing.B) {
			s, frs := benchSim(b, bc.nodes, bc.containers, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkNode = s.routeIndexed(frs[i%len(frs)])
			}
		})
	}
}

var sinkNode *Node

// TestRouteWarmPathAllocs pins the satellite requirement: the indexed warm
// routing path allocates nothing.
func TestRouteWarmPathAllocs(t *testing.T) {
	s, frs := benchSim(t, 8, 8, false)
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		sinkNode = s.routeIndexed(frs[i%len(frs)])
		i++
	}); avg != 0 {
		t.Errorf("indexed route allocates %.1f/op, want 0", avg)
	}
}

// TestHasIdleOtherNoAllocs pins the scan router's fixed hot-spot: the idle-
// other predicate no longer builds a slice per candidate node.
func TestHasIdleOtherNoAllocs(t *testing.T) {
	s, frs := benchSim(t, 4, 8, true)
	n := s.nodes[0]
	fn := frs[0].fn
	if avg := testing.AllocsPerRun(200, func() {
		_ = n.HasIdleOther(fn, s.clock, s.env.IdleThreshold)
	}); avg != 0 {
		t.Errorf("HasIdleOther allocates %.1f/op, want 0", avg)
	}
}
