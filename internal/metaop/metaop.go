// Package metaop defines the five in-container transformation meta-operators
// of §4.3 — Replace, Reshape, Reduce, Add and Edge — together with the
// transformation Plan representation and an executor that applies a plan to
// the model graph held in a container.
//
// A plan is produced by the planner (package planner) against *estimated*
// costs; the executor charges *true* costs from the hardware profile and
// verifies that the rewritten graph is identical to the destination model.
package metaop

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/model"
)

// ErrEdgeBalance reports that a plan's declared edge rewiring does not
// balance against the edge-count difference between its source and
// destination graphs — the signature of a truncated or tampered plan.
var ErrEdgeBalance = errors.New("metaop: edge rewiring out of balance")

// CheckEdgeBalance validates the edge-balance invariant: every destination
// edge is either kept from the mapped source wiring or introduced by an
// Edge-add step, and every source edge is either kept or dropped by an
// Edge-remove step, so adds−removes must equal the edge-count difference
// diff. It is used by Apply on every plan execution and by the fan-out tree
// to verify a donor's inherited rewiring ledger before trusting its output.
func CheckEdgeBalance(adds, removes, diff int) error {
	if adds-removes != diff {
		return fmt.Errorf("%w: plan rewires %d−%d edges but the graphs differ by %d (truncated plan?)",
			ErrEdgeBalance, adds, removes, diff)
	}
	return nil
}

// Kind identifies a meta-operator.
type Kind uint8

const (
	// KindReplace overwrites an operation's weights with the destination
	// weights, preserving its structure.
	KindReplace Kind = iota + 1
	// KindReshape modifies an operation's properties (kernel size, channel
	// count, stride) without regenerating it.
	KindReshape
	// KindReduce deletes a source operation that matches nothing in the
	// destination model.
	KindReduce
	// KindAdd creates a destination operation from scratch in the container.
	KindAdd
	// KindEdge changes, removes or adds one dataflow edge.
	KindEdge
)

var kindNames = map[Kind]string{
	KindReplace: "replace",
	KindReshape: "reshape",
	KindReduce:  "reduce",
	KindAdd:     "add",
	KindEdge:    "edge",
}

// String returns the meta-operator's lower-case name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds returns all meta-operator kinds in a stable order.
func Kinds() []Kind {
	return []Kind{KindReplace, KindReshape, KindReduce, KindAdd, KindEdge}
}

// Step is one meta-operator application within a plan.
type Step struct {
	Kind Kind
	// SrcID is the operation ID in the source graph this step acts on
	// (Replace, Reshape, Reduce). -1 otherwise.
	SrcID int
	// DstID is the operation ID in the destination graph this step realizes
	// (Replace, Reshape, Add). -1 otherwise.
	DstID int
	// Dst is the desired destination operation (Replace, Reshape, Add).
	Dst model.Operation
	// EdgeFrom/EdgeTo/EdgeAdd describe an Edge step, in destination IDs.
	EdgeFrom, EdgeTo int
	EdgeAdd          bool
	// EstCost is the planner's estimated execution time for this step.
	EstCost time.Duration
}

// Plan is a sequence of meta-operators transforming one model into another,
// plus the safeguard decision of §4.4 Module 3.
type Plan struct {
	SrcName, DstName string
	SrcHash, DstHash uint64
	Steps            []Step
	// EstCost is the planner's total cost estimate for executing the steps.
	EstCost time.Duration
	// ScratchCost is the estimated cost of loading the destination model
	// from scratch instead.
	ScratchCost time.Duration
	// LoadFromScratch is the safeguard decision: when true the transformation
	// would be more expensive than a fresh load and the container should
	// simply load the destination model.
	LoadFromScratch bool
}

// TargetType returns the operation type a step acts on: the destination
// type for Replace/Reshape/Add, the source op's type for Reduce; ok=false
// for Edge steps (untyped).
func (s Step) TargetType(src *model.Graph) (model.OpType, bool) {
	switch s.Kind {
	case KindReplace, KindReshape, KindAdd:
		return s.Dst.Type, true
	case KindReduce:
		if op := src.Op(s.SrcID); op != nil {
			return op.Type, true
		}
	}
	return 0, false
}

// CountByKind tallies the plan's steps per meta-operator.
func (p *Plan) CountByKind() map[Kind]int {
	out := make(map[Kind]int, 5)
	for _, s := range p.Steps {
		out[s.Kind]++
	}
	return out
}

// CostByKind sums the estimated step costs per meta-operator (Fig 15).
func (p *Plan) CostByKind() map[Kind]time.Duration {
	out := make(map[Kind]time.Duration, 5)
	for _, s := range p.Steps {
		out[s.Kind] += s.EstCost
	}
	return out
}

// TrueCost returns the actual execution time of the plan under the given
// (ground-truth) hardware profile. The simulator charges this, not EstCost.
func (p *Plan) TrueCost(prof *cost.Profile, src *model.Graph) time.Duration {
	var total time.Duration
	for _, s := range p.Steps {
		total += StepTrueCost(prof, src, s)
	}
	return total
}

// StepTrueCost returns the actual execution time of one step under the
// ground-truth hardware profile (what the container really pays, as opposed
// to the planner's estimate in Step.EstCost). Online profiling compares the
// two to refine estimates (§6).
func StepTrueCost(prof *cost.Profile, src *model.Graph, s Step) time.Duration {
	switch s.Kind {
	case KindReplace:
		return prof.ReplaceCost(&s.Dst)
	case KindReshape:
		srcOp := src.Op(s.SrcID)
		if srcOp == nil {
			return prof.ReshapeBase
		}
		return prof.ReshapeCost(srcOp, &s.Dst)
	case KindReduce:
		srcOp := src.Op(s.SrcID)
		if srcOp == nil {
			return prof.ReduceCostPer
		}
		return prof.ReduceCost(srcOp)
	case KindAdd:
		return prof.AddCost(&s.Dst)
	case KindEdge:
		return prof.EdgeCost(1)
	default:
		return 0
	}
}

// Apply executes the plan against the source graph, returning the rewritten
// graph and the true execution time under prof. It returns an error if the
// plan is malformed (e.g. two steps claim the same destination slot, or a
// step references a missing source op).
//
// Apply never mutates src.
func Apply(prof *cost.Profile, p *Plan, src *model.Graph, dst *model.Graph) (*model.Graph, time.Duration, error) {
	if p.LoadFromScratch {
		// Safeguard: the container discards the old model and loads fresh.
		return dst.Clone(), prof.ModelLoad(dst).Total(), nil
	}
	out := model.NewGraph(dst.Name, dst.Family)
	slots := make([]*model.Operation, dst.NumOps())
	consumed := make(map[int]bool)
	type edgeKey struct {
		from, to int
		add      bool
	}
	seenEdges := make(map[edgeKey]bool)
	var edgeAdds, edgeRemoves int
	var elapsed time.Duration

	for _, s := range p.Steps {
		elapsed += StepTrueCost(prof, src, s)
		switch s.Kind {
		case KindReplace, KindReshape, KindAdd:
			if s.DstID < 0 || s.DstID >= len(slots) {
				return nil, 0, fmt.Errorf("metaop: step %s has destination ID %d out of range", s.Kind, s.DstID)
			}
			if s.Kind != KindAdd {
				if src.Op(s.SrcID) == nil {
					return nil, 0, fmt.Errorf("metaop: step %s references missing source op %d", s.Kind, s.SrcID)
				}
				consumed[s.SrcID] = true
			}
			op := s.Dst
			if prev := slots[s.DstID]; prev != nil && *prev != op {
				return nil, 0, fmt.Errorf("metaop: conflicting steps for destination op %d", s.DstID)
			}
			slots[s.DstID] = &op
		case KindReduce:
			if src.Op(s.SrcID) == nil {
				return nil, 0, fmt.Errorf("metaop: reduce references missing source op %d", s.SrcID)
			}
			consumed[s.SrcID] = true
		case KindEdge:
			// Edges are applied after all slots are realized; a plan that
			// charges the same edge diff twice is corrupt.
			k := edgeKey{s.EdgeFrom, s.EdgeTo, s.EdgeAdd}
			if seenEdges[k] {
				return nil, 0, fmt.Errorf("metaop: duplicate edge step %d→%d (add=%v)", s.EdgeFrom, s.EdgeTo, s.EdgeAdd)
			}
			seenEdges[k] = true
			// Additions are phrased in destination IDs, removals in source
			// IDs; a step referencing wiring neither graph has is corrupt.
			if s.EdgeAdd {
				if !dst.HasEdge(s.EdgeFrom, s.EdgeTo) {
					return nil, 0, fmt.Errorf("metaop: edge step adds %d→%d, which is not a destination edge", s.EdgeFrom, s.EdgeTo)
				}
				edgeAdds++
			} else {
				if !src.HasEdge(s.EdgeFrom, s.EdgeTo) {
					return nil, 0, fmt.Errorf("metaop: edge step removes %d→%d, which is not a source edge", s.EdgeFrom, s.EdgeTo)
				}
				edgeRemoves++
			}
		default:
			return nil, 0, fmt.Errorf("metaop: unknown step kind %d", s.Kind)
		}
	}

	// Source ops that were neither substituted nor reduced carry over only if
	// they are already identical to their destination slot: the planner emits
	// no step exactly when source and destination ops match perfectly on
	// (Type, Shape, WeightsID). A nil slot with no such unconsumed source op
	// available is a hole the plan never filled — the container has no
	// bit-identical state to keep there, so the plan is rejected rather than
	// silently completed from dst.
	type opKey struct {
		typ       model.OpType
		shape     model.Shape
		weightsID uint64
	}
	avail := make(map[opKey]int)
	for i := 0; i < src.NumOps(); i++ {
		if consumed[i] {
			continue
		}
		op := src.Op(i)
		avail[opKey{op.Type, op.Shape, op.WeightsID}]++
	}
	for j := range slots {
		if slots[j] != nil {
			continue
		}
		op := *dst.Op(j)
		k := opKey{op.Type, op.Shape, op.WeightsID}
		if avail[k] <= 0 {
			return nil, 0, fmt.Errorf("metaop: destination op %d is realized by no step and no identical source op carries over (truncated plan?)", j)
		}
		avail[k]--
		slots[j] = &op
	}
	// A truncated edge list breaks the adds−removes balance (see
	// CheckEdgeBalance).
	if err := CheckEdgeBalance(edgeAdds, edgeRemoves, len(dst.Edges())-len(src.Edges())); err != nil {
		return nil, 0, err
	}
	for _, op := range slots {
		out.AddOp(*op)
	}
	// Edge steps are charged above (removals reference source wiring,
	// additions destination wiring); the realized graph takes the
	// destination dataflow, which the plan's Edge steps describe as a diff
	// against the mapped source edges.
	for _, e := range dst.Edges() {
		out.Connect(e.From, e.To)
	}
	return out, elapsed, nil
}

// Verify applies the plan and checks the result equals the destination model
// exactly (structure and weights). It is the executor's post-condition and
// is exercised heavily in tests.
func Verify(prof *cost.Profile, p *Plan, src, dst *model.Graph) error {
	got, _, err := Apply(prof, p, src, dst)
	if err != nil {
		return err
	}
	if !got.Equal(dst) {
		return fmt.Errorf("metaop: plan %s→%s did not reproduce the destination model", p.SrcName, p.DstName)
	}
	return nil
}
