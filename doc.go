// Package optimus is a Go implementation of Optimus, the serverless ML
// inference system with low cold-start overhead via inter-function model
// transformation (Hong et al., EuroSys 2024).
//
// Instead of loading a requested model from scratch in a cold container,
// Optimus transforms the structurally similar model already resident in a
// warm-but-idle container of another function, using five in-container
// meta-operators — Replace, Reshape, Reduce, Add and Edge — planned by a
// linear-time graph-edit scheduler with a worst-case safeguard.
//
// The package exposes three layers:
//
//   - Transformer: the core contribution as a library — plan and execute
//     model-to-model transformations, with cost estimates and verification.
//   - System: a full serverless ML inference cluster (discrete-event
//     simulated) with the Optimus container scheduler, the model-sharing-
//     aware K-medoids load balancer, and the OpenWhisk/Pagurus/Tetris
//     baselines for comparison.
//   - Zoos: programmatic generators for the evaluation model collections
//     (an Imgclsmob-like 389-model CNN zoo, the 10 BERT variants, and the
//     NAS-Bench-201 search space).
//
// A minimal use of the transformation core:
//
//	tf := optimus.NewTransformer(optimus.CPU, optimus.AlgoGroup)
//	src := optimus.Imgclsmob().MustGet("resnet50-imagenet")
//	dst := optimus.Imgclsmob().MustGet("resnet101-imagenet")
//	plan := tf.Plan(src, dst)
//	got, took, err := tf.Transform(src, dst) // executes and verifies
//
// See the examples directory for end-to-end cluster scenarios and
// cmd/optimus-bench for regenerating every table and figure of the paper.
package optimus
