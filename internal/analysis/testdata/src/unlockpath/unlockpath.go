// Package unlockpath is the fixture for the unlockpath checker: locks held
// at an exit without a defer, and unlock/re-lock pairs with no intervening
// call (the split-lock check-then-act shape), must be reported; defer
// discipline, all-paths explicit unlocks, short critical sections separated
// by real work, and read-to-write upgrades must stay silent.
package unlockpath

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func work(n int) int { return n + 1 }

// deferred is the canonical safe shape.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// explicit unlocks on every path.
func (c *counter) explicit() int {
	c.mu.Lock()
	if c.n > 0 {
		n := c.n
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()
	return 0
}

// leakyReturn exits through the early return still holding the lock.
func (c *counter) leakyReturn() int {
	c.mu.Lock() // want `mutex \(counter\)\.mu locked here is not released on every exit path`
	if c.n > 0 {
		return c.n
	}
	c.mu.Unlock()
	return 0
}

// leakyPanic panics while holding the lock, with no defer to release it.
func (c *counter) leakyPanic() {
	c.mu.Lock() // want `not released on every exit path`
	if c.n < 0 {
		panic("negative count")
	}
	c.n++
	c.mu.Unlock()
}

// splitLock is the PR 7 fan-out bug shape: state read under the lock,
// lock dropped, branch, re-lock and mutate on the stale read.
func (c *counter) splitLock() {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	if n > 0 {
		return
	}
	c.mu.Lock() // want `re-acquired with no intervening call since the unlock at line \d+`
	defer c.mu.Unlock()
	c.n = n + 1
}

// shortSections re-locks after real work: a deliberate pair of short
// critical sections, not a split check-then-act.
func (c *counter) shortSections() {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	n = work(n)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = n
}

// upgrade is the read-check-then-write-lock idiom with a re-validation
// under the write lock; the read release does not arm the split rule.
func (c *counter) upgrade() {
	c.rw.RLock()
	n := c.n
	c.rw.RUnlock()
	if n > 0 {
		return
	}
	c.rw.Lock()
	defer c.rw.Unlock()
	if c.n == n {
		c.n++
	}
}

// leakyClosure: function literals are checked as their own functions.
func (c *counter) leakyClosure() func() {
	return func() {
		c.mu.Lock() // want `not released on every exit path`
		c.n++
	}
}

// deferredClosure releases inside a deferred literal: safe on every exit.
func (c *counter) deferredClosure() {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	c.n = 1
}

// loopBody locks and unlocks per iteration.
func (c *counter) loopBody(xs []int) {
	for _, x := range xs {
		c.mu.Lock()
		c.n += x
		c.mu.Unlock()
	}
}
