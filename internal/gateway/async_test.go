package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/simulate"
	"repro/internal/zoo"
)

// TestAsyncPlanningStress hammers the asynchronous offline-planning pipeline
// under -race: concurrent registrations (including duplicate attempts),
// registration/unregistration churn, invocations whose transform path races
// the pipeline through the inline GetOrPlan fallback, and stats readers. On
// quiesce, every ordered pair among the surviving models must be planned (no
// lost pairs) and the cache must hold exactly one computed plan per key (the
// singleflight never let two goroutines plan the same pair).
func TestAsyncPlanningStress(t *testing.T) {
	clock := &fakeClock{}
	g := New(Config{
		Cluster:     simulate.Config{Nodes: 2, ContainersPerNode: 2},
		Now:         clock.now,
		PlanWorkers: 4,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	img := zoo.Imgclsmob()
	fixed := []*model.Graph{
		img.MustGet("resnet18-imagenet"),
		img.MustGet("resnet34-imagenet"),
		img.MustGet("vgg11-imagenet"),
		img.MustGet("mobilenet-w1-imagenet"),
	}
	churn := img.MustGet("squeezenet-v1.0-cifar10")

	const (
		workers = 8
		iters   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	do := func(f func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := f(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	for w := 0; w < 2; w++ {
		do(func(i int) error { // racing (mostly duplicate) registrations
			if err := g.RegisterModel(fixed[i%len(fixed)]); err != nil && !errors.Is(err, ErrDuplicateModel) {
				return err
			}
			return nil
		})
	}
	do(func(int) error { // churn: register/unregister races the pipeline
		if err := g.RegisterModel(churn); err != nil && !errors.Is(err, ErrDuplicateModel) {
			return err
		}
		if err := g.UnregisterModel(churn.Name); err != nil && !errors.Is(err, ErrUnknownModel) {
			return err
		}
		return nil
	})
	for w := 0; w < 2; w++ {
		do(func(i int) error { // invokers: the transform path plans inline
			// when it beats the pipeline, through the same cache
			raw, _ := json.Marshal(map[string]string{"model": fixed[i%len(fixed)].Name})
			resp, err := http.Post(srv.URL+"/api/invoke", "application/json", bytes.NewReader(raw))
			if err != nil {
				return err
			}
			resp.Body.Close()
			// 404 is possible only for the churn model, which we never invoke.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				return fmt.Errorf("invoke status %d", resp.StatusCode)
			}
			return nil
		})
	}
	do(func(int) error { // stats readers race the planning counters
		resp, err := http.Get(srv.URL + "/api/stats")
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	})
	do(func(int) error { // clock keeps moving under everything
		clock.advance(100 * time.Millisecond)
		return nil
	})

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	g.PlanningQuiesce()
	if !g.PlanningReady() {
		t.Error("pipeline not ready after quiesce")
	}

	// No lost pairs: whichever of a pair registered later snapshots the
	// earlier one as existing, so every ordered pair among the fixed models
	// must have been planned into the cache.
	env := g.online.Env()
	for _, src := range fixed {
		for _, dst := range fixed {
			if src == dst {
				continue
			}
			if _, ok := env.Plans.Get(src, dst); !ok {
				t.Errorf("lost pair: %s→%s not planned after quiesce", src.Name, dst.Name)
			}
		}
	}

	// No duplicate planning: the cache is unbounded here, so every computed
	// plan landed on a distinct key — singleflight collapsed every race
	// between registrations and inline request-path fallbacks.
	ct := env.Plans.Counters()
	if ct.Planned != env.Plans.Len() {
		t.Errorf("planned %d plans for %d cached keys: duplicate planning slipped past singleflight",
			ct.Planned, env.Plans.Len())
	}
	if ct.Evictions != 0 {
		t.Errorf("unbounded cache evicted %d plans", ct.Evictions)
	}

	// Pipeline bookkeeping is consistent after the dust settles.
	st := g.Precomputer().Stats()
	if st.Pending != 0 || st.Enqueued != st.Completed {
		t.Errorf("pipeline counters enqueued=%d completed=%d pending=%d after quiesce",
			st.Enqueued, st.Completed, st.Pending)
	}
}
