// Package cliutil holds small shared helpers for the command-line tools:
// probability-flag validation and rate-list parsing with consolidated error
// reporting, so every binary rejects bad input the same way, plus the shared
// -cpuprofile/-memprofile plumbing.
package cliutil

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
)

// ValidateProbs checks that every named probability is a finite value in
// [0, 1]. It returns nil when all pass, otherwise a single error naming every
// offending flag and its value (sorted by flag name) so the user fixes them
// all in one round trip.
func ValidateProbs(probs map[string]float64) error {
	var bad []string
	for name, v := range probs {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			bad = append(bad, fmt.Sprintf("%s=%v", name, v))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("probability flags must be in [0,1]: %s", strings.Join(bad, ", "))
}

// ParseRates parses a comma-separated list of probabilities in [0, 1].
// Empty entries are skipped; every malformed, negative, non-finite, or
// out-of-range entry is collected into one consolidated error.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	var bad []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%q (not a number)", part))
		case math.IsNaN(v) || math.IsInf(v, 0):
			bad = append(bad, fmt.Sprintf("%q (not finite)", part))
		case v < 0 || v > 1:
			bad = append(bad, fmt.Sprintf("%q (outside [0,1])", part))
		default:
			out = append(out, v)
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("invalid rate entries: %s", strings.Join(bad, ", "))
	}
	return out, nil
}

// StartProfiles begins CPU profiling and/or arranges a heap profile, for the
// -cpuprofile/-memprofile flags the binaries share. Either path may be empty.
// The returned stop function finishes the CPU profile and writes the heap
// profile; call it exactly once (defer it after a nil-error return).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
