// Package cliutil holds small shared helpers for the command-line tools:
// probability-flag validation and rate-list parsing with consolidated error
// reporting, so every binary rejects bad input the same way.
package cliutil

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateProbs checks that every named probability is a finite value in
// [0, 1]. It returns nil when all pass, otherwise a single error naming every
// offending flag and its value (sorted by flag name) so the user fixes them
// all in one round trip.
func ValidateProbs(probs map[string]float64) error {
	var bad []string
	for name, v := range probs {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			bad = append(bad, fmt.Sprintf("%s=%v", name, v))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("probability flags must be in [0,1]: %s", strings.Join(bad, ", "))
}

// ParseRates parses a comma-separated list of probabilities in [0, 1].
// Empty entries are skipped; every malformed, negative, non-finite, or
// out-of-range entry is collected into one consolidated error.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	var bad []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%q (not a number)", part))
		case math.IsNaN(v) || math.IsInf(v, 0):
			bad = append(bad, fmt.Sprintf("%q (not finite)", part))
		case v < 0 || v > 1:
			bad = append(bad, fmt.Sprintf("%q (outside [0,1])", part))
		default:
			out = append(out, v)
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("invalid rate entries: %s", strings.Join(bad, ", "))
	}
	return out, nil
}
