package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ReadAzureInvocationsCSV parses the Microsoft Azure Functions trace format
// (Shahrad et al., ATC '20; the dataset the paper's §8.1 evaluation uses):
// one row per function with per-minute invocation counts,
//
//	HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
//
// and expands it into an arrival trace. Functions are named by their
// HashFunction column (prefixed with the app hash when present, so two apps'
// identically hashed functions stay distinct). Counts within a minute are
// spread evenly across it, which preserves every per-minute statistic the
// characterization reports while staying deterministic.
//
// This repository ships a synthetic Azure-like generator (AzureLike) because
// the production trace is proprietary; whoever has the dataset feeds it in
// here and replays it unchanged.
//
// Expansion is bounded by DefaultAzureRequestLimit; a file expanding past it
// is an error, never an OOM. Use ReadAzureInvocationsCSVLimit to raise it.
func ReadAzureInvocationsCSV(r io.Reader) (*Trace, error) {
	return ReadAzureInvocationsCSVLimit(r, DefaultAzureRequestLimit)
}

// DefaultAzureRequestLimit bounds how many arrivals ReadAzureInvocationsCSV
// will expand a file into before giving up: a day of the published Azure
// dataset stays well under it, while a corrupt count cell (the format stores
// plain integers, so a single damaged digit can claim billions of
// invocations in one minute) fails fast instead of exhausting memory.
const DefaultAzureRequestLimit = 50_000_000

// ReadAzureInvocationsCSVLimit is ReadAzureInvocationsCSV with an explicit
// bound on the total expanded request count (≤ 0 means the default).
func ReadAzureInvocationsCSVLimit(r io.Reader, maxRequests int) (*Trace, error) {
	if maxRequests <= 0 {
		maxRequests = DefaultAzureRequestLimit
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading azure trace header: %w", err)
	}
	if len(header) < 5 || header[0] != "HashOwner" || header[2] != "HashFunction" {
		return nil, fmt.Errorf("workload: not an Azure invocations CSV (header %v...)", header[:min(4, len(header))])
	}
	minutes := len(header) - 4

	t := &Trace{Duration: time.Duration(minutes) * time.Minute}
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: azure trace row %d: %w", row, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("workload: azure trace row %d has %d fields, want %d", row, len(rec), len(header))
		}
		fn := rec[1] + "/" + rec[2]
		for m := 0; m < minutes; m++ {
			n, err := strconv.Atoi(rec[4+m])
			if err != nil {
				return nil, fmt.Errorf("workload: azure trace row %d minute %d: %w", row, m+1, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("workload: azure trace row %d minute %d: negative count", row, m+1)
			}
			// Check the budget before expanding: the count cell alone can
			// demand gigabytes of requests, so the cap must not wait for the
			// append loop to get there.
			if n > maxRequests-len(t.Requests) {
				return nil, fmt.Errorf("workload: azure trace row %d minute %d: expansion exceeds %d requests", row, m+1, maxRequests)
			}
			base := time.Duration(m) * time.Minute
			for i := 0; i < n; i++ {
				// Evenly spaced within the minute: (i + ½)/n of the way in.
				off := time.Duration((float64(i) + 0.5) / float64(n) * float64(time.Minute))
				t.Requests = append(t.Requests, Request{Function: fn, At: base + off})
			}
		}
		row++
	}
	sortTrace(t)
	return t, nil
}
