package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checkers"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		in              string
		checker, reason string
		ok, wantErr     bool
	}{
		{"//optimus:allow wallclock — telemetry wall-clock read", "wallclock", "telemetry wall-clock read", true, false},
		{"//optimus:allow globalrand -- seeded at process start", "globalrand", "seeded at process start", true, false},
		{"//optimus:allow maprange —   spaces trimmed  ", "maprange", "spaces trimmed", true, false},
		{"// an ordinary comment", "", "", false, false},
		{"//optimus:allowance granted — not a directive", "", "", false, false},
		{"//optimus:allow wallclock telemetry", "", "", true, true},     // no separator
		{"//optimus:allow — reason but no checker", "", "", true, true}, // no checker
		{"//optimus:allow wallclock —", "", "", true, true},             // no reason
		{"//optimus:allow two names — reason", "", "", true, true},      // checker not one token
		{"//optimus:allow", "", "", true, true},                         // bare prefix
	}
	for _, c := range cases {
		checker, reason, ok, err := analysis.ParseDirective(c.in)
		if ok != c.ok {
			t.Errorf("ParseDirective(%q): ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if (err != nil) != c.wantErr {
			t.Errorf("ParseDirective(%q): err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && (checker != c.checker || reason != c.reason) {
			t.Errorf("ParseDirective(%q) = (%q, %q), want (%q, %q)", c.in, checker, reason, c.checker, c.reason)
		}
	}
}

// TestDirectiveUsedSilencesExactlyOne pins the suppression contract: the
// fixture holds three identical violations — one with a trailing directive,
// one with a standalone directive on the preceding line, one bare — and
// exactly the bare one must survive, with no unused-directive noise.
func TestDirectiveUsedSilencesExactlyOne(t *testing.T) {
	findings, err := analysis.CheckFixture(checkers.NewGlobalrand(), fixture("directiveused"), "repro/internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the unsuppressed violation): %v", len(findings), findings)
	}
	f := findings[0]
	if f.Checker != "globalrand" || !strings.Contains(f.Message, "rand.Intn") {
		t.Errorf("surviving finding = %s, want the bare rand.Intn violation", f)
	}
}

// TestDirectiveUnusedReported pins unused-directive detection: a directive
// suppressing nothing is itself a finding.
func TestDirectiveUnusedReported(t *testing.T) {
	findings, err := analysis.CheckFixture(checkers.NewGlobalrand(), fixture("directiveunused"), "repro/internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Checker != analysis.DirectiveChecker || !strings.Contains(f.Message, "unused directive") {
		t.Errorf("finding = %s, want an unused-directive report", f)
	}
}

// TestDirectiveMalformed pins rejection of unparsable directives: missing
// separator, missing checker, missing reason, unknown checker — each is an
// error finding, and none may silently suppress anything.
func TestDirectiveMalformed(t *testing.T) {
	findings, err := analysis.CheckFixture(checkers.NewGlobalrand(), fixture("directivemalformed"), "repro/internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("got %d findings, want 4: %v", len(findings), findings)
	}
	wantFrags := []string{"malformed directive", "missing checker name", "missing reason", "unknown checker"}
	for _, frag := range wantFrags {
		found := false
		for _, f := range findings {
			if f.Checker == analysis.DirectiveChecker && strings.Contains(f.Message, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive finding mentioning %q in %v", frag, findings)
		}
	}
}
