package cliutil

import (
	"flag"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ring"
)

func TestValidateProbsAccepts(t *testing.T) {
	if err := ValidateProbs(nil); err != nil {
		t.Fatalf("nil map: %v", err)
	}
	if err := ValidateProbs(map[string]float64{
		"-a": 0, "-b": 1, "-c": 0.5,
	}); err != nil {
		t.Fatalf("boundary values rejected: %v", err)
	}
}

func TestValidateProbsRejectsConsolidated(t *testing.T) {
	err := ValidateProbs(map[string]float64{
		"-fault-crash":     1.5,
		"-fault-transform": -0.1,
		"-fault-load":      math.NaN(),
		"-fault-outage":    math.Inf(1),
		"-fault-hang":      0.3, // fine, must not appear
	})
	if err == nil {
		t.Fatal("bad probabilities accepted")
	}
	msg := err.Error()
	for _, want := range []string{"-fault-crash=1.5", "-fault-transform=-0.1", "-fault-load=NaN", "-fault-outage=+Inf"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "-fault-hang") {
		t.Errorf("error %q names a valid flag", msg)
	}
	// Sorted flag order keeps the message deterministic.
	if idx := strings.Index(msg, "-fault-crash"); idx < 0 || idx > strings.Index(msg, "-fault-load") {
		t.Errorf("error %q not sorted by flag name", msg)
	}
}

func TestParseRates(t *testing.T) {
	got, err := ParseRates("0, 0.25,1,,  0.5 ,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 0.25, 1, 0.5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseRates = %v, want %v", got, want)
	}
	empty, err := ParseRates("")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty input = %v, %v", empty, err)
	}
}

func TestParseRatesRejectsConsolidated(t *testing.T) {
	_, err := ParseRates("0.5,woof,-1,NaN,2,0.1")
	if err == nil {
		t.Fatal("bad rate list accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		`"woof" (not a number)`,
		`"-1" (outside [0,1])`,
		`"NaN" (not finite)`,
		`"2" (outside [0,1])`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, `"0.5"`) || strings.Contains(msg, `"0.1"`) {
		t.Errorf("error %q names a valid entry", msg)
	}
}

func controlPlaneFlagsFor(t *testing.T, args ...string) *ControlPlaneFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterControlPlaneFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestControlPlaneFlagsSingleGateway(t *testing.T) {
	c := controlPlaneFlagsFor(t)
	if c.Enabled() {
		t.Error("empty -peers reported enabled")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if got := c.RingVNodes(); got != ring.DefaultVNodes {
		t.Errorf("RingVNodes() = %d, want default %d", got, ring.DefaultVNodes)
	}
}

func TestControlPlaneFlagsPeerSet(t *testing.T) {
	c := controlPlaneFlagsFor(t,
		"-self", "gw-1",
		"-peers", "gw-0=http://a:8080, gw-1=http://b:8080 ,gw-2=http://c:8080",
		"-ring-vnodes", "64")
	if !c.Enabled() {
		t.Fatal("peer set not reported enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid peer set rejected: %v", err)
	}
	peers, err := c.PeerSet()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, p := range peers {
		ids = append(ids, p.ID)
	}
	if want := []string{"gw-0", "gw-1", "gw-2"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("peer ids = %v, want %v", ids, want)
	}
	if peers[1].URL.Host != "b:8080" {
		t.Errorf("gw-1 URL host = %q, want b:8080", peers[1].URL.Host)
	}
	if got := c.RingVNodes(); got != 64 {
		t.Errorf("RingVNodes() = %d, want 64", got)
	}
}

func TestControlPlaneFlagsRejectsConsolidated(t *testing.T) {
	c := controlPlaneFlagsFor(t,
		"-self", "gw-9",
		"-peers", "gw-0=http://a:8080,broken,gw-0=http://b:8080,gw-2=not-a-url",
		"-ring-vnodes", "-1")
	err := c.Validate()
	if err == nil {
		t.Fatal("bad control-plane flags accepted")
	}
	for _, want := range []string{
		`"broken" (want id=url)`,
		`duplicate id "gw-0"`,
		`"gw-2=not-a-url" (URL must be absolute)`,
		"-ring-vnodes=-1",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// -self is only checked once the entries themselves parse.
	c2 := controlPlaneFlagsFor(t, "-self", "gw-9", "-peers", "gw-0=http://a:8080")
	if err := c2.Validate(); err == nil || !strings.Contains(err.Error(), `-self="gw-9" (not in -peers)`) {
		t.Errorf("self outside peer set not rejected: %v", err)
	}
}
