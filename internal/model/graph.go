package model

import (
	"fmt"
	"sort"
)

// Graph is a directed acyclic computational graph: operations connected by
// dataflow edges. The zero value is not usable; construct with NewGraph.
//
// Graphs are not safe for concurrent mutation; the simulator clones a graph
// into each container that holds it.
type Graph struct {
	// Name identifies the model, e.g. "resnet50" or "bert-base-uncased-qa".
	Name string
	// Family groups structurally related models, e.g. "resnet", "bert".
	// Transformations within a family are typically cheap (§8.2).
	Family string

	ops   []*Operation
	succ  [][]int // succ[id] = IDs of direct successors
	nedge int
}

// NewGraph returns an empty graph with the given name and family.
func NewGraph(name, family string) *Graph {
	return &Graph{Name: name, Family: family}
}

// AddOp appends an operation to the graph, assigning and returning its ID.
// The passed Operation's ID field is overwritten.
func (g *Graph) AddOp(op Operation) *Operation {
	op.ID = len(g.ops)
	o := &op
	g.ops = append(g.ops, o)
	g.succ = append(g.succ, nil)
	return o
}

// Connect adds a dataflow edge from operation `from` to operation `to`.
// Duplicate edges are ignored. Connect panics if either ID is out of range;
// edge insertion is a construction-time operation and an out-of-range ID is a
// programming error in a zoo builder.
func (g *Graph) Connect(from, to int) {
	if from < 0 || from >= len(g.ops) || to < 0 || to >= len(g.ops) {
		//optimus:allow panicpath — construction-time API-misuse guard: a bad ID is a zoo-builder bug, not a runtime error
		panic(fmt.Sprintf("model: Connect(%d, %d) out of range [0, %d)", from, to, len(g.ops)))
	}
	for _, s := range g.succ[from] {
		if s == to {
			return
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.nedge++
}

// Disconnect removes the edge from → to if present.
func (g *Graph) Disconnect(from, to int) {
	if from < 0 || from >= len(g.ops) {
		return
	}
	for i, s := range g.succ[from] {
		if s == to {
			g.succ[from] = append(g.succ[from][:i], g.succ[from][i+1:]...)
			g.nedge--
			return
		}
	}
}

// HasEdge reports whether the edge from → to exists.
func (g *Graph) HasEdge(from, to int) bool {
	if from < 0 || from >= len(g.ops) {
		return false
	}
	for _, s := range g.succ[from] {
		if s == to {
			return true
		}
	}
	return false
}

// NumOps returns the number of operations in the graph.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumEdges returns the number of dataflow edges in the graph.
func (g *Graph) NumEdges() int { return g.nedge }

// Op returns the operation with the given ID, or nil if out of range.
func (g *Graph) Op(id int) *Operation {
	if id < 0 || id >= len(g.ops) {
		return nil
	}
	return g.ops[id]
}

// Ops returns the graph's operations in ID order. The returned slice is the
// graph's backing store; callers must not mutate it.
func (g *Graph) Ops() []*Operation { return g.ops }

// Successors returns the IDs of the direct successors of op id. The returned
// slice is backing store; callers must not mutate it.
func (g *Graph) Successors(id int) []int {
	if id < 0 || id >= len(g.succ) {
		return nil
	}
	return g.succ[id]
}

// Edge is a dataflow edge between two operations.
type Edge struct{ From, To int }

// Edges returns all edges sorted by (From, To).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.nedge)
	for from, ss := range g.succ {
		for _, to := range ss {
			out = append(out, Edge{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:   g.Name,
		Family: g.Family,
		ops:    make([]*Operation, len(g.ops)),
		succ:   make([][]int, len(g.succ)),
		nedge:  g.nedge,
	}
	for i, op := range g.ops {
		cp := *op
		c.ops[i] = &cp
	}
	for i, ss := range g.succ {
		if len(ss) > 0 {
			c.succ[i] = append([]int(nil), ss...)
		}
	}
	return c
}

// Validate checks structural invariants: at least one op, consistent IDs,
// edges in range, acyclicity, and valid op types. It returns the first
// violation found.
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("model: graph %q has no operations", g.Name)
	}
	for i, op := range g.ops {
		if op.ID != i {
			return fmt.Errorf("model: graph %q op at index %d has ID %d", g.Name, i, op.ID)
		}
		if !op.Type.Valid() {
			return fmt.Errorf("model: graph %q op #%d has invalid type", g.Name, i)
		}
		if op.HasWeights() && op.WeightCount() <= 0 {
			return fmt.Errorf("model: graph %q op #%d (%s) is weighted but has no weights", g.Name, i, op.Type)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns the operation IDs in a deterministic topological order
// (Kahn's algorithm with smallest-ID-first tie-breaking). It returns an error
// if the graph contains a cycle.
func (g *Graph) TopoSort() ([]int, error) {
	n := len(g.ops)
	indeg := make([]int, n)
	for _, ss := range g.succ {
		for _, to := range ss {
			indeg[to]++
		}
	}
	// Min-heap behaviour via sorted frontier; n is small (≤ a few hundred).
	frontier := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			frontier = append(frontier, id)
		}
	}
	order := make([]int, 0, n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, to := range g.succ[id] {
			indeg[to]--
			if indeg[to] == 0 {
				frontier = append(frontier, to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("model: graph %q contains a cycle", g.Name)
	}
	return order, nil
}

// StructuralEqual reports whether g and other have identical structure:
// the same operations (type and shape, weights ignored) under identity of
// IDs, and the same edge set. Optimus' plan executor uses this to verify a
// transformation reproduced the destination model's structure.
func (g *Graph) StructuralEqual(other *Graph) bool {
	return g.equal(other, false)
}

// Equal reports whether g and other are identical including weight
// identities. After a full transformation (structure + Replace of weights)
// the source container's graph must be Equal to the destination model.
func (g *Graph) Equal(other *Graph) bool {
	return g.equal(other, true)
}

func (g *Graph) equal(other *Graph, weights bool) bool {
	if other == nil || len(g.ops) != len(other.ops) || g.nedge != other.nedge {
		return false
	}
	for i, op := range g.ops {
		oo := other.ops[i]
		if op.Type != oo.Type || op.Shape != oo.Shape {
			return false
		}
		if weights && op.WeightsID != oo.WeightsID {
			return false
		}
	}
	ea, eb := g.Edges(), other.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// Stats summarizes a graph for reporting and cost estimation.
type Stats struct {
	Ops         int
	WeightedOps int
	Edges       int
	Params      int64
	Bytes       int64
	ByType      map[OpType]int
}

// Stats computes summary statistics for the graph.
func (g *Graph) Stats() Stats {
	st := Stats{Ops: len(g.ops), Edges: g.nedge, ByType: make(map[OpType]int)}
	for _, op := range g.ops {
		st.ByType[op.Type]++
		if op.HasWeights() {
			st.WeightedOps++
			st.Params += op.WeightCount()
			st.Bytes += op.WeightBytes()
		}
	}
	return st
}

// String renders a one-line summary.
func (g *Graph) String() string {
	st := g.Stats()
	return fmt.Sprintf("%s[%s]: %d ops (%d weighted), %d edges, %.1fM params",
		g.Name, g.Family, st.Ops, st.WeightedOps, st.Edges, float64(st.Params)/1e6)
}
