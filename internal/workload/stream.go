// Streaming trace sources: every generator family (Poisson, Mixed,
// AzureLike) is also available as a lazy per-function arrival iterator
// merged through a k-way heap, yielding requests in timestamp order with
// O(functions) memory instead of materializing the whole trace. At a fixed
// seed the stream is byte-identical to the materialized Trace, including
// sortTrace's tie-break (equal timestamps order by function name).

package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Cursor yields requests in nondecreasing timestamp order. Next returns
// false when the source is exhausted; after that every call returns false.
type Cursor interface {
	Next() (Request, bool)
}

// arrivalGen lazily yields one function's arrival offsets in nondecreasing
// order; ok=false ends the stream (and stays false).
type arrivalGen func() (at time.Duration, ok bool)

// poissonArrivals yields Poisson arrivals at ratePerSec until duration,
// drawing gaps in exactly the order the materialized generator does.
func poissonArrivals(ratePerSec float64, duration time.Duration, rng *rand.Rand) arrivalGen {
	at := time.Duration(0)
	done := false
	return func() (time.Duration, bool) {
		if done {
			return 0, false
		}
		at += time.Duration(rng.ExpFloat64() / ratePerSec * float64(time.Second))
		if at >= duration {
			done = true
			return 0, false
		}
		return at, true
	}
}

// diurnalArrivals is genDiurnal as a lazy iterator: a thinned Poisson
// process whose rate follows a 24-hour sinusoid. Construction performs the
// same leading rng draws (peak, phase) as the materialized generator.
func diurnalArrivals(duration time.Duration, rng *rand.Rand) arrivalGen {
	peak := 0.005 + 0.015*rng.Float64()
	phase := rng.Float64() * 24 * float64(time.Hour)
	rate := func(at time.Duration) float64 {
		x := (float64(at) + phase) / float64(24*time.Hour) * 2 * math.Pi
		return peak * (0.6 + 0.4*math.Sin(x))
	}
	at := time.Duration(0)
	done := false
	return func() (time.Duration, bool) {
		if done {
			return 0, false
		}
		for {
			at += time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
			if at >= duration {
				done = true
				return 0, false
			}
			if rng.Float64() < rate(at)/peak { // thinning
				return at, true
			}
		}
	}
}

// burstyArrivals is genBursty as a lazy iterator: alternating on/off phases
// with high-rate Poisson arrivals while on. The phase-boundary draw order
// (onLen, offLen, then gaps) matches the materialized generator exactly.
func burstyArrivals(duration time.Duration, rng *rand.Rand) arrivalGen {
	rate := 0.02 + 0.06*rng.Float64()
	at := time.Duration(0)  // next phase start
	cur := time.Duration(0) // cursor inside the current on-phase
	end := time.Duration(0) // current on-phase end
	inPhase := false
	done := false
	return func() (time.Duration, bool) {
		if done {
			return 0, false
		}
		for {
			if !inPhase {
				if at >= duration {
					done = true
					return 0, false
				}
				onLen := time.Duration((2 + 8*rng.Float64()) * float64(time.Minute))
				offLen := time.Duration((10 + 35*rng.Float64()) * float64(time.Minute))
				end = at + onLen
				if end > duration {
					end = duration
				}
				cur = at
				at = end + offLen
				inPhase = true
			}
			cur += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			if cur < end {
				return cur, true
			}
			inPhase = false
		}
	}
}

// periodicArrivals is genPeriodic as a lazy iterator: timer-driven arrivals
// with ±10 % jitter from a random phase.
func periodicArrivals(duration time.Duration, rng *rand.Rand) arrivalGen {
	periods := []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour}
	period := periods[rng.Intn(len(periods))]
	at := time.Duration(rng.Float64() * float64(period))
	done := false
	return func() (time.Duration, bool) {
		if done || at >= duration {
			done = true
			return 0, false
		}
		cur := at
		jitter := 1 + 0.2*(rng.Float64()-0.5)
		at += time.Duration(float64(period) * jitter)
		return cur, true
	}
}

// rareArrivals is genRare as a lazy iterator: sparse Poisson arrivals.
func rareArrivals(duration time.Duration, rng *rand.Rand) arrivalGen {
	mean := time.Duration((30 + 90*rng.Float64()) * float64(time.Minute))
	at := time.Duration(0)
	done := false
	return func() (time.Duration, bool) {
		if done {
			return 0, false
		}
		at += time.Duration(rng.ExpFloat64() * float64(mean))
		if at >= duration {
			done = true
			return 0, false
		}
		return at, true
	}
}

// drain appends every arrival of g to the trace — the materialized
// generators are exactly their streaming iterators, fully drained.
func drain(t *Trace, f string, g arrivalGen) {
	for {
		at, ok := g()
		if !ok {
			return
		}
		t.Requests = append(t.Requests, Request{Function: f, At: at})
	}
}

// fnCursor is one function's buffered head inside the merge heap.
type fnCursor struct {
	at   time.Duration
	name string
	gen  arrivalGen
}

// Stream merges per-function lazy generators through a k-way min-heap keyed
// (at, name) — the same order sortTrace guarantees — holding one buffered
// arrival per function: O(functions) memory however long the trace.
type Stream struct {
	duration time.Duration
	h        []fnCursor
}

// Duration returns the stream's time horizon.
func (s *Stream) Duration() time.Duration { return s.duration }

// Next implements Cursor: it pops the earliest buffered arrival and refills
// that function's slot from its generator.
func (s *Stream) Next() (Request, bool) {
	if len(s.h) == 0 {
		return Request{}, false
	}
	top := s.h[0]
	req := Request{Function: top.name, At: top.at}
	if at, ok := top.gen(); ok {
		s.h[0].at = at
		s.siftDown(0)
	} else {
		n := len(s.h) - 1
		s.h[0] = s.h[n]
		s.h[n] = fnCursor{}
		s.h = s.h[:n]
		if n > 0 {
			s.siftDown(0)
		}
	}
	return req, true
}

// Materialize drains the stream into a Trace (for tests and small runs).
func (s *Stream) Materialize() *Trace {
	t := &Trace{Duration: s.duration}
	for {
		r, ok := s.Next()
		if !ok {
			return t
		}
		t.Requests = append(t.Requests, r)
	}
}

func (s *Stream) less(i, j int) bool {
	if s.h[i].at != s.h[j].at {
		return s.h[i].at < s.h[j].at
	}
	return s.h[i].name < s.h[j].name
}

func (s *Stream) siftDown(i int) {
	n := len(s.h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.less(l, small) {
			small = l
		}
		if r < n && s.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		s.h[i], s.h[small] = s.h[small], s.h[i]
		i = small
	}
}

// newStream builds the merge heap over named generators, drawing each one's
// first arrival; exhausted generators are dropped up front.
func newStream(duration time.Duration, names []string, gens []arrivalGen) *Stream {
	s := &Stream{duration: duration}
	for i, g := range gens {
		if at, ok := g(); ok {
			s.h = append(s.h, fnCursor{at: at, name: names[i], gen: g})
		}
	}
	for i := len(s.h)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	return s
}

// StreamPoissonRates is PoissonRates as a constant-memory stream: the same
// per-function seeds, the same draw order, merged instead of sorted.
func StreamPoissonRates(rates map[string]float64, duration time.Duration, seed int64) *Stream {
	names := make([]string, 0, len(rates))
	for f := range rates {
		names = append(names, f)
	}
	sort.Strings(names) // deterministic iteration
	used := make([]string, 0, len(names))
	gens := make([]arrivalGen, 0, len(names))
	for i, f := range names {
		rate := rates[f]
		if rate <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		used = append(used, f)
		gens = append(gens, poissonArrivals(rate, duration, rng))
	}
	return newStream(duration, used, gens)
}

// StreamPoisson is Poisson as a constant-memory stream.
func StreamPoisson(fns []string, ratePerSec float64, duration time.Duration, seed int64) *Stream {
	rates := make(map[string]float64, len(fns))
	for _, f := range fns {
		rates[f] = ratePerSec
	}
	return StreamPoissonRates(rates, duration, seed)
}

// StreamMixedPoisson is MixedPoisson as a constant-memory stream.
func StreamMixedPoisson(fns []string, duration time.Duration, seed int64) *Stream {
	rates := make(map[string]float64, len(fns))
	levels := []float64{RateFrequent, RateMiddle, RateInfrequent}
	for i, f := range fns {
		rates[f] = levels[i%len(levels)]
	}
	return StreamPoissonRates(rates, duration, seed)
}

// StreamAzureLike is AzureLike as a constant-memory stream: class assignment
// consumes the shared rng in fns order exactly as the materialized generator
// does, and each function's iterator performs its construction draws at the
// same point.
func StreamAzureLike(fns []string, duration time.Duration, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(fns))
	gens := make([]arrivalGen, 0, len(fns))
	for _, f := range fns {
		u := rng.Float64()
		frng := rand.New(rand.NewSource(seed ^ int64(hashString(f))))
		var g arrivalGen
		switch {
		case u < 0.10:
			g = burstyArrivals(duration, frng)
		case u < 0.35:
			g = periodicArrivals(duration, frng)
		case u < 0.50:
			g = diurnalArrivals(duration, frng)
		default:
			g = rareArrivals(duration, frng)
		}
		names = append(names, f)
		gens = append(gens, g)
	}
	return newStream(duration, names, gens)
}

// traceCursor adapts a materialized Trace to the Cursor interface.
type traceCursor struct {
	t *Trace
	i int
}

func (c *traceCursor) Next() (Request, bool) {
	if c.i >= len(c.t.Requests) {
		return Request{}, false
	}
	r := c.t.Requests[c.i]
	c.i++
	return r, true
}

// Cursor returns a streaming view over the (already time-sorted) trace.
func (t *Trace) Cursor() Cursor { return &traceCursor{t: t} }

// SeriesFromCursor computes per-slot demand series for every function in
// fns in a single streaming pass — the streaming twin of AllSeries, with
// O(functions × slots) memory.
func SeriesFromCursor(src Cursor, duration time.Duration, fns []string, slot time.Duration) map[string][]float64 {
	out := make(map[string][]float64, len(fns))
	if slot <= 0 || duration <= 0 {
		return out
	}
	n := int(duration/slot) + 1
	for _, f := range fns {
		out[f] = make([]float64, n)
	}
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		if s, ok := out[r.Function]; ok {
			i := int(r.At / slot)
			if i >= 0 && i < len(s) {
				s[i]++
			}
		}
	}
}
