package planner

import "math"

// hungarian solves the square assignment problem in O(size³) using the
// Kuhn-Munkres algorithm with potentials (the "Munkres algorithm" of §4.4
// Module 2, applied to the Riesen-Bunke matrix). It returns the row→column
// assignment and the total cost.
func hungarian(mx *Matrix) ([]int, float64) {
	n := mx.Size()
	// 1-indexed potentials and matching per the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (0 = none)
	way := make([]int, n+1) // way[j] = previous column on the alternating path

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := mx.At(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol := make([]int, n)
	var total float64
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
			total += mx.At(p[j]-1, j-1)
		}
	}
	return rowToCol, total
}
