package simulate

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// Config parameterizes a cluster simulation.
type Config struct {
	// Nodes is the worker-node count; ContainersPerNode bounds concurrent
	// containers per node.
	Nodes             int
	ContainersPerNode int
	// KeepAlive is the container keep-alive horizon (default 10 min, §8.1).
	KeepAlive time.Duration
	// IdleThreshold is the §4.2 idle-identification threshold (default 60 s).
	IdleThreshold time.Duration
	// Profile is the hardware cost profile (default cost.CPU()).
	Profile *cost.Profile
	// Policy is the container-management policy under test.
	Policy Policy
	// Placement maps function name → candidate node IDs. Functions absent
	// from the map (or a nil map) are hashed across all nodes.
	Placement map[string][]int
	// PlannerAlgo selects the transformation planning algorithm for
	// policies that plan (default AlgoGroup).
	PlannerAlgo planner.Algorithm
	// PlanCacheMax bounds the planning-strategy cache: beyond it the least
	// recently used plan is evicted (eviction counters surface through
	// planner.Cache.Counters). Zero keeps the cache unbounded.
	PlanCacheMax int
	// EstimatorErr adds deterministic profiling noise to planner estimates.
	EstimatorErr float64
	// Seed drives the estimator noise.
	Seed int64
	// VerifyTransforms executes every transformation plan through the
	// meta-operator engine and checks the rewritten graph equals the
	// destination model. Slower; used in tests and small demos.
	VerifyTransforms bool
	// OnlineProfiling, when positive, is the EWMA rate at which observed
	// meta-operator execution times refine the planner's cost estimates
	// while the system runs (§6 Future Work). Zero keeps the paper's
	// offline-only profiling.
	OnlineProfiling float64
	// NodeMemoryMB bounds each node's total container memory; zero keeps
	// the slot-based mode. ContainerMemoryMB, when positive, fixes every
	// container's grant (homogeneous allocation); zero with NodeMemoryMB
	// set sizes containers to their models (fine-grained, §6).
	NodeMemoryMB      int
	ContainerMemoryMB int
	// TransformFailureRate injects faults: the given fraction of
	// transformations fail halfway and recover by loading the destination
	// model from scratch in the same container. Exercises the robustness of
	// the recovery path; zero (default) disables injection.
	//
	// Deprecated: set Faults.Transform instead; this field is folded into
	// it and kept for callers of the original single-fault API.
	TransformFailureRate float64
	// Faults configures deterministic multi-event fault injection
	// (transform aborts, failed loads, container crashes, node outages);
	// see package faults. The zero value disables injection, leaving the
	// simulation byte-identical to a run without the injector.
	Faults faults.Rates
	// MaxRetries bounds how many times a request whose container crashed
	// (or whose node failed) is re-dispatched before being dropped.
	// Zero means the default (2); negative disables retries entirely.
	MaxRetries int
	// OutageDuration is how long a failed node stays down before routing
	// considers it again (default 30 s).
	OutageDuration time.Duration
	// WatchdogFactor enables the supervision watchdog: a transformation
	// exceeding WatchdogFactor× its planned cost is cancelled and recovered
	// through the safeguard path (StartTimeout). Values at or below 1
	// disable the watchdog, leaving hung transforms undetected.
	WatchdogFactor float64
	// HangFactor is how far past its planned cost an *undetected* hung
	// transformation runs before finishing (default 10×). Only consulted
	// when Faults.Hang fires without a watchdog configured.
	HangFactor float64
	// Breaker configures the per-(src→dst)-pair transform circuit breaker;
	// the zero value (Threshold 0) disables it.
	Breaker supervisor.BreakerConfig
}

// memoryMode derives the allocation mode from the config.
func (c Config) memoryMode() MemoryMode {
	switch {
	case c.NodeMemoryMB <= 0:
		return MemorySlots
	case c.ContainerMemoryMB > 0:
		return MemoryHomogeneous
	default:
		return MemoryFineGrained
	}
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.ContainersPerNode <= 0 {
		c.ContainersPerNode = 8
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = 10 * time.Minute
	}
	if c.IdleThreshold <= 0 {
		c.IdleThreshold = 60 * time.Second
	}
	if c.Profile == nil {
		c.Profile = cost.CPU()
	}
	if c.TransformFailureRate > 0 && c.Faults.Transform == 0 {
		c.Faults.Transform = c.TransformFailureRate
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.OutageDuration <= 0 {
		c.OutageDuration = 30 * time.Second
	}
	if c.HangFactor <= 1 {
		c.HangFactor = 10
	}
	return c
}

// Simulator runs request traces against a simulated cluster.
type Simulator struct {
	cfg   Config
	env   *Env
	nodes []*Node
	fns   map[string]*Function

	clock  time.Duration
	events eventHeap
	seq    int

	collector metrics.Collector
	// TransformsVerified counts plans executed through the meta-operator
	// engine when VerifyTransforms is on.
	TransformsVerified int

	lastArrival map[string]time.Duration
	meanGap     map[string]time.Duration

	est *cost.Estimator
	inj *faults.Injector
	// TransformsFailed counts injected transformation failures.
	TransformsFailed int

	watchdog *supervisor.Watchdog
	breaker  *supervisor.Breaker
}

// New builds a simulator over the given functions.
func New(cfg Config, fns []*Function) *Simulator {
	cfg = cfg.withDefaults()
	est := cost.NewEstimator(cfg.Profile, cfg.EstimatorErr, cfg.Seed)
	if cfg.OnlineProfiling > 0 {
		est.EnableOnlineProfiling(cfg.OnlineProfiling)
	}
	s := &Simulator{
		cfg: cfg,
		est: est,
		env: &Env{
			Profile:           cfg.Profile,
			Planner:           planner.New(est, cfg.PlannerAlgo),
			Plans:             planner.NewCacheBounded(cfg.PlanCacheMax),
			IdleThreshold:     cfg.IdleThreshold,
			KeepAlive:         cfg.KeepAlive,
			MemoryMode:        cfg.memoryMode(),
			ContainerMemoryMB: cfg.ContainerMemoryMB,
		},
		fns: make(map[string]*Function, len(fns)),
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &Node{ID: i, Capacity: cfg.ContainersPerNode, MemoryMB: cfg.NodeMemoryMB})
	}
	for _, f := range fns {
		s.fns[f.Name] = f
	}
	s.lastArrival = make(map[string]time.Duration)
	s.meanGap = make(map[string]time.Duration)
	s.inj = faults.New(cfg.Seed^0x5f3759df, cfg.Faults)
	s.watchdog = supervisor.NewWatchdog(supervisor.WatchdogConfig{Factor: cfg.WatchdogFactor})
	s.breaker = supervisor.NewBreaker(cfg.Breaker)
	s.env.MeanInterArrival = func(fn string) (time.Duration, bool) {
		g, ok := s.meanGap[fn]
		return g, ok
	}
	return s
}

// observeArrival updates the per-function inter-arrival EWMA used by the
// repurposing eligibility test.
func (s *Simulator) observeArrival(fn *Function, at time.Duration) {
	if last, ok := s.lastArrival[fn.Name]; ok {
		gap := at - last
		if prev, ok := s.meanGap[fn.Name]; ok {
			s.meanGap[fn.Name] = (prev*4 + gap) / 5
		} else {
			s.meanGap[fn.Name] = gap
		}
	}
	s.lastArrival[fn.Name] = at
}

// Env exposes the simulator's policy environment (plan cache, planner).
func (s *Simulator) Env() *Env { return s.env }

// Collector returns the accumulated request metrics.
func (s *Simulator) Collector() *metrics.Collector { return &s.collector }

// Run replays the trace to completion and returns the collected metrics.
// Unknown function names in the trace are an error.
func (s *Simulator) Run(trace *workload.Trace) (*metrics.Collector, error) {
	for _, r := range trace.Requests {
		fn, ok := s.fns[r.Function]
		if !ok {
			return nil, fmt.Errorf("simulate: trace references unknown function %q", r.Function)
		}
		req := r
		s.schedule(req.At, func() { s.arrive(fn, req.At) })
	}
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		s.clock = ev.at
		ev.fn()
	}
	return &s.collector, nil
}

type event struct {
	at  time.Duration
	seq int
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func (s *Simulator) schedule(at time.Duration, fn func()) {
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
	s.seq++
}

// arrive routes a new request to a node and tries to serve it.
func (s *Simulator) arrive(fn *Function, arrival time.Duration) {
	s.observeArrival(fn, arrival)
	if s.inj.Fire(faults.Outage) {
		s.failNode(s.route(fn))
	}
	s.dispatch(fn, arrival, 0)
}

// dispatch routes a (possibly retried) request. When every candidate node is
// down it parks the request until the earliest recovery.
func (s *Simulator) dispatch(fn *Function, arrival time.Duration, retries int) {
	node := s.route(fn)
	if node.Down(s.clock) {
		at := node.DownUntil
		for _, n := range s.candidates(fn) {
			if n.DownUntil < at {
				at = n.DownUntil
			}
		}
		s.schedule(at, func() { s.dispatch(fn, arrival, retries) })
		return
	}
	s.serveOrQueue(node, fn, arrival, retries)
}

// failNode takes a node down for the configured outage duration: resident
// containers are lost, and queued plus in-flight requests are re-dispatched
// to the surviving nodes within their retry budgets.
func (s *Simulator) failNode(n *Node) {
	n.DownUntil = s.clock + s.cfg.OutageDuration
	s.collector.Faults.Outages++
	lost := n.Containers
	n.Containers = nil
	requeue := n.queue
	n.queue = nil
	for _, c := range lost {
		c.dead = true
		s.watchdog.Expire(c.ID)
		if c.serving != nil {
			s.retryOrDrop(*c.serving)
			c.serving = nil
		}
	}
	for _, q := range requeue {
		s.dispatch(q.fn, q.arrival, q.retries)
	}
}

// retryOrDrop re-dispatches a request whose container was lost, or drops it
// once the retry budget is exhausted.
func (s *Simulator) retryOrDrop(in inflight) {
	if in.retries >= s.cfg.MaxRetries {
		s.collector.Faults.Dropped++
		return
	}
	s.collector.Faults.Retries++
	s.dispatch(in.fn, in.arrival, in.retries+1)
}

// route picks the best candidate node for fn: a warm idle container wins,
// then a repurposable idle container, then free capacity, finally the
// shortest queue. Among otherwise-equal nodes the function's hash-derived
// "home" node within its candidate set wins, so a function placed on a
// multi-node cluster keeps warm-container locality instead of fragmenting
// containers across the cluster.
func (s *Simulator) route(fn *Function) *Node {
	cands := s.candidates(fn)
	now := s.clock
	home := cands[int(hash32(fn.Name))%len(cands)]
	best := cands[0]
	bestScore := -1 << 30
	for _, n := range cands {
		score := 0
		switch {
		case n.WarmIdle(fn, now) != nil:
			score = 3_000_000
		case len(n.IdleOthers(fn, now, s.env.IdleThreshold)) > 0:
			score = 2_000_000
		case n.CanPlace(now):
			score = 1_000_000
		}
		if n == home {
			score += 500_000
		}
		score -= len(n.queue)*10 + s.busyCount(n, now)
		if score > bestScore {
			bestScore = score
			best = n
		}
	}
	return best
}

func (s *Simulator) busyCount(n *Node, now time.Duration) int {
	c := 0
	for _, ct := range n.Containers {
		if ct.Busy(now) {
			c++
		}
	}
	return c
}

func (s *Simulator) candidates(fn *Function) []*Node {
	base := s.nodes
	if ids, ok := s.cfg.Placement[fn.Name]; ok && len(ids) > 0 {
		out := make([]*Node, 0, len(ids))
		for _, id := range ids {
			if id >= 0 && id < len(s.nodes) {
				out = append(out, s.nodes[id])
			}
		}
		if len(out) > 0 {
			base = out
		}
	}
	// Route around failed nodes; when the whole candidate set is down the
	// caller waits for the earliest recovery.
	up := base
	for i, n := range base {
		if n.Down(s.clock) {
			up = make([]*Node, 0, len(base))
			up = append(up, base[:i]...)
			for _, m := range base[i+1:] {
				if !m.Down(s.clock) {
					up = append(up, m)
				}
			}
			break
		}
	}
	if len(up) == 0 {
		return base
	}
	return up
}

func (s *Simulator) serveOrQueue(node *Node, fn *Function, arrival time.Duration, retries int) {
	if !s.serve(node, fn, arrival, retries) {
		node.queue = append(node.queue, queued{fn: fn, arrival: arrival, retries: retries})
	}
}

// transformPair names the (src→dst) model pair a transform decision acts on,
// for circuit-breaker bookkeeping.
func transformPair(d Decision, fn *Function) (src, dst string) {
	if d.Plan != nil {
		return d.Plan.SrcName, d.Plan.DstName
	}
	return d.Reuse.Fn.Name, fn.Name
}

// superviseDecision applies the supervision layer and fault injection to a
// policy decision: the circuit breaker may short-circuit a transform to a
// from-scratch load, injected aborts take the safeguard fallback, injected
// hangs are either cancelled by the watchdog at their deadline or run
// undetected for HangFactor× the plan, and from-scratch loads may fail and
// restart. Returns the (possibly degraded) decision.
func (s *Simulator) superviseDecision(d Decision, fn *Function, now time.Duration) Decision {
	if d.Kind == metrics.StartTransform && d.Reuse != nil {
		src, dst := transformPair(d, fn)
		if !s.breaker.Allow(src, dst, now) {
			// The pair's breaker is open: skip the doomed transform attempt
			// entirely and load from scratch (still saving sandbox init).
			d.Kind = metrics.StartBreaker
			d.Load = s.env.Profile.ModelLoad(fn.Model).Total()
			d.Plan = nil
			s.collector.Faults.BreakerShortCircuits++
		} else {
			switch {
			case s.inj.Fire(faults.Transform):
				// The transformation aborts halfway through and the container
				// recovers by discarding the partial state and loading the
				// destination model from scratch (the safeguard's recovery path).
				d.Load = d.Load/2 + s.env.Profile.ModelLoad(fn.Model).Total()
				d.Kind = metrics.StartFallback
				s.TransformsFailed++
				s.collector.Faults.TransformFallbacks++
				s.breaker.RecordFailure(src, dst, now)
			case s.inj.Fire(faults.Hang):
				s.collector.Faults.Hangs++
				planned := d.Load
				if s.watchdog != nil {
					// The watchdog cancels the hung transform at its deadline
					// and the safeguard loads from scratch: the request pays
					// the full deadline window plus the fresh load.
					d.Load = s.watchdog.Deadline(planned) + s.env.Profile.ModelLoad(fn.Model).Total()
					d.Kind = metrics.StartTimeout
					s.watchdog.RecordCancel()
					s.collector.Faults.WatchdogCancels++
					s.breaker.RecordFailure(src, dst, now)
				} else {
					// Undetected: the transform stalls for HangFactor× the
					// plan before eventually finishing on its own.
					d.Load = time.Duration(float64(planned) * s.cfg.HangFactor)
					s.breaker.RecordSuccess(src, dst)
				}
			default:
				s.breaker.RecordSuccess(src, dst)
			}
		}
	}
	if (d.Kind == metrics.StartCold || d.Kind == metrics.StartFallback ||
		d.Kind == metrics.StartTimeout || d.Kind == metrics.StartBreaker) && s.inj.Fire(faults.Load) {
		// The from-scratch load dies partway in and restarts: half the
		// attempted load is wasted, then the full load runs again.
		d.Load += d.Load / 2
		s.collector.Faults.LoadRetries++
	}
	return d
}

// serve asks the policy for a decision and, if possible, executes it:
// charging latencies, occupying the container, and scheduling completion.
func (s *Simulator) serve(node *Node, fn *Function, arrival time.Duration, retries int) bool {
	now := s.clock
	node.EvictExpired(now, s.env.KeepAlive)
	d, ok := s.cfg.Policy.Serve(s.env, node, fn, now)
	if !ok {
		return false
	}
	if s.cfg.VerifyTransforms && d.Plan != nil && d.Reuse != nil {
		if err := metaop.Verify(s.env.Profile, d.Plan, d.Reuse.Fn.Model, fn.Model); err != nil {
			panic(fmt.Sprintf("simulate: transformation verification failed: %v", err))
		}
		s.TransformsVerified++
	}
	if s.cfg.OnlineProfiling > 0 && d.Plan != nil && d.Reuse != nil && !d.Plan.LoadFromScratch {
		s.observeExecution(d.Plan, d.Reuse.Fn.Model)
	}
	d = s.superviseDecision(d, fn, now)

	c := d.Reuse
	if c == nil {
		c = node.newContainer(fn, s.env.GrantFor(fn), now)
	} else if s.env.MemoryMode == MemoryFineGrained {
		// Fine-grained allocation resizes the repurposed container to the
		// new model, releasing the surplus the homogeneous mode would waste.
		c.MemMB = s.env.GrantFor(fn)
	}
	c.Fn = fn
	compute := s.env.Profile.Compute(fn.Model)
	service := d.Init + d.Load + compute
	if s.inj.Fire(faults.Crash) {
		// The container dies halfway through serving: it is lost at the
		// crash point and the request re-dispatched (or dropped once its
		// retry budget runs out). Wasted time surfaces as extra wait.
		crashAt := now + service/2
		c.BusyUntil = crashAt
		c.serving = &inflight{fn: fn, arrival: arrival, retries: retries}
		s.watchdog.Lease(c.ID, crashAt)
		s.collector.Faults.Crashes++
		s.schedule(crashAt, func() { s.crash(node, c) })
		return true
	}
	end := now + service
	c.BusyUntil = end
	c.serving = &inflight{fn: fn, arrival: arrival, retries: retries}
	s.watchdog.Lease(c.ID, end)
	s.collector.Add(metrics.Record{
		Function: fn.Name,
		Kind:     d.Kind,
		Arrival:  arrival,
		Start:    now,
		End:      end,
		Wait:     now - arrival,
		Init:     d.Init,
		Load:     d.Load,
		Compute:  compute,
		Retries:  retries,
	})
	s.schedule(end, func() { s.complete(node, c) })
	return true
}

// crash destroys a container at its crash point and re-dispatches the
// victim request. The freed slot may unblock the node's queue.
func (s *Simulator) crash(node *Node, c *Container) {
	if c.dead {
		return // already lost to a node outage
	}
	c.dead = true
	node.Remove(c)
	s.watchdog.Expire(c.ID)
	if c.serving != nil {
		s.retryOrDrop(*c.serving)
		c.serving = nil
	}
	s.drainQueue(node)
}

// complete frees a container and drains the node's queue.
func (s *Simulator) complete(node *Node, c *Container) {
	if c.dead {
		return // destroyed by an outage while this completion was pending
	}
	c.LastDone = s.clock
	c.serving = nil
	s.watchdog.Complete(c.ID)
	s.drainQueue(node)
}

// drainQueue serves as many queued requests as the node can now take.
func (s *Simulator) drainQueue(node *Node) {
	for len(node.queue) > 0 {
		q := node.queue[0]
		if !s.serve(node, q.fn, q.arrival, q.retries) {
			return
		}
		node.queue = node.queue[1:]
	}
}

// observeExecution feeds each executed meta-operator's (estimate, actual)
// pair back into the estimator — the §6 online-profiling loop. The estimate
// is recomputed from the estimator's *current* state: cached plans carry
// stale step estimates, and learning against those would never converge.
func (s *Simulator) observeExecution(plan *metaop.Plan, src *model.Graph) {
	for _, st := range plan.Steps {
		typ, ok := st.TargetType(src)
		if !ok {
			continue
		}
		var predicted time.Duration
		switch st.Kind {
		case metaop.KindReplace:
			predicted = s.est.ReplaceCost(&st.Dst)
		case metaop.KindReshape:
			srcOp := src.Op(st.SrcID)
			if srcOp == nil {
				continue
			}
			predicted = s.est.ReshapeCost(srcOp, &st.Dst)
		case metaop.KindReduce:
			srcOp := src.Op(st.SrcID)
			if srcOp == nil {
				continue
			}
			predicted = s.est.ReduceCost(srcOp)
		case metaop.KindAdd:
			predicted = s.est.AddCost(&st.Dst)
		default:
			continue
		}
		actual := metaop.StepTrueCost(s.env.Profile, src, st)
		s.est.Observe(typ, predicted, actual)
	}
}

// Estimator exposes the planner's (possibly learning) cost estimator.
func (s *Simulator) Estimator() *cost.Estimator { return s.est }

// Breaker exposes the transform circuit breaker (nil when disabled).
func (s *Simulator) Breaker() *supervisor.Breaker { return s.breaker }

// Watchdog exposes the supervision watchdog (nil when disabled).
func (s *Simulator) Watchdog() *supervisor.Watchdog { return s.watchdog }

// Nodes exposes the simulated nodes (for tests and reporting).
func (s *Simulator) Nodes() []*Node { return s.nodes }

// HashPlacement spreads fns across n nodes by name hash — the baseline
// placement of traditional serverless platforms (§5.1).
func HashPlacement(fns []string, n int) map[string][]int {
	out := make(map[string][]int, len(fns))
	for _, f := range fns {
		out[f] = []int{int(hash32(f) % uint32(n))}
	}
	return out
}

// SpreadPlacement assigns functions round-robin over nodes in sorted-name
// order, a least-loaded-style static baseline.
func SpreadPlacement(fns []string, n int) map[string][]int {
	sorted := append([]string(nil), fns...)
	sort.Strings(sorted)
	out := make(map[string][]int, len(fns))
	for i, f := range sorted {
		out[f] = []int{i % n}
	}
	return out
}

func hash32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
