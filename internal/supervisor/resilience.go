package supervisor

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// BackoffConfig parameterizes the deterministic retry backoff that replaces
// immediate bounded retries.
type BackoffConfig struct {
	// Base is the first retry's delay. Zero or negative disables backoff
	// (NewBackoff returns nil) and retries re-dispatch immediately, exactly
	// as before.
	Base time.Duration
	// Cap bounds any single delay (default 16× Base).
	Cap time.Duration
	// Factor is the exponential growth per attempt (default 2).
	Factor float64
	// Jitter is the ± fraction of seeded jitter applied to each delay
	// (default 0.5, clamped to [0, 1]). Jitter draws from the backoff's own
	// seeded PRNG, never the global one, so replays are exact.
	Jitter float64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Cap <= 0 {
		c.Cap = 16 * c.Base
	}
	if c.Factor < 1 {
		c.Factor = 2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	return c
}

// BackoffStats tallies backoff activity over a run.
type BackoffStats struct {
	// Delays counts retry delays handed out.
	Delays int
	// TotalDelay is the summed virtual-time delay.
	TotalDelay time.Duration
}

// Backoff computes seeded exponential retry delays in virtual time. A nil
// *Backoff is valid: Delay always returns 0, preserving the immediate-retry
// behavior. Safe for concurrent use.
type Backoff struct {
	mu    sync.Mutex
	cfg   BackoffConfig
	rng   *rand.Rand
	stats BackoffStats
}

// NewBackoff returns a backoff for the config, or nil when Base is unset
// (backoff disabled, retries stay immediate).
func NewBackoff(cfg BackoffConfig, seed int64) *Backoff {
	if cfg.Base <= 0 {
		return nil
	}
	return &Backoff{cfg: cfg.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the virtual-time delay before retry number attempt (0-based):
// min(Cap, Base·Factor^attempt), spread by ±Jitter from the seeded PRNG.
func (b *Backoff) Delay(attempt int) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	d := float64(b.cfg.Base) * math.Pow(b.cfg.Factor, float64(attempt))
	if capf := float64(b.cfg.Cap); d > capf {
		d = capf
	}
	d *= 1 + b.cfg.Jitter*(2*b.rng.Float64()-1)
	if d < 0 {
		d = 0
	}
	out := time.Duration(d)
	b.stats.Delays++
	b.stats.TotalDelay += out
	return out
}

// Stats returns a snapshot of the backoff tallies.
func (b *Backoff) Stats() BackoffStats {
	if b == nil {
		return BackoffStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// HedgeConfig parameterizes hedged transform starts.
type HedgeConfig struct {
	// Percentile of observed transform durations that arms the hedge
	// deadline (e.g. 95 hedges transforms outliving the p95). Zero or
	// negative disables hedging (NewHedger returns nil).
	Percentile float64
	// MinSamples is how many observed transforms the hedger needs before it
	// arms (default 10).
	MinSamples int
	// Window bounds the rolling duration sample (default 512).
	Window int
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Percentile > 100 {
		c.Percentile = 100
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.Window < c.MinSamples {
		c.Window = c.MinSamples
	}
	return c
}

// HedgeStats tallies hedged transform starts over a run.
type HedgeStats struct {
	// Hedged counts transforms for which a backup start was launched at the
	// deadline.
	Hedged int
	// Wins counts hedged backups that finished before the primary's own
	// recovery path would have (the primary was cancelled as the loser).
	Wins int
}

// Hedger tracks a rolling sample of successful transform durations and arms
// a percentile deadline: a transform still running at the deadline gets a
// backup started from the next-best donor, and the loser is cancelled. A nil
// *Hedger is valid and inert. Safe for concurrent use.
type Hedger struct {
	mu      sync.Mutex
	cfg     HedgeConfig
	samples []time.Duration // rolling window, insertion order
	next    int
	stats   HedgeStats
}

// NewHedger returns a hedger for the config, or nil when Percentile is unset
// (hedging disabled).
func NewHedger(cfg HedgeConfig) *Hedger {
	if cfg.Percentile <= 0 {
		return nil
	}
	return &Hedger{cfg: cfg.withDefaults()}
}

// Observe folds one successful transform duration into the rolling sample.
func (h *Hedger) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) < h.cfg.Window {
		h.samples = append(h.samples, d)
		return
	}
	h.samples[h.next] = d
	h.next++
	if h.next == h.cfg.Window {
		h.next = 0
	}
}

// Deadline returns the armed hedge deadline — the configured percentile of
// the rolling sample — and whether the hedger has enough samples to arm.
func (h *Hedger) Deadline() (time.Duration, bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) < h.cfg.MinSamples {
		return 0, false
	}
	return metrics.DurationPercentile(h.samples, h.cfg.Percentile), true
}

// RecordHedge tallies one hedged start and whether the backup won.
func (h *Hedger) RecordHedge(win bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.stats.Hedged++
	if win {
		h.stats.Wins++
	}
	h.mu.Unlock()
}

// Stats returns a snapshot of the hedge tallies.
func (h *Hedger) Stats() HedgeStats {
	if h == nil {
		return HedgeStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}
