package simulate_test

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
)

func healthConfig() health.Config {
	return health.Config{
		Enabled:            true,
		SuspectStrikes:     2,
		QuarantineStrikes:  2,
		QuarantineDuration: 30 * time.Second,
		DrainTimeout:       15 * time.Second,
	}
}

func TestSlowWindowInflatesLatency(t *testing.T) {
	fns, tr := chaosTrace(t)
	base := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2, Seed: 5,
	}, fns)
	bcol, err := base.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	slow := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2, Seed: 5,
		Faults: faults.Rates{Slow: 0.05},
	}, fns)
	scol, err := slow.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if scol.Faults.SlowWindows == 0 {
		t.Fatal("rate-0.05 slow faults opened no windows")
	}
	if scol.Len() != tr.Len() {
		t.Fatalf("gray-slow run dropped requests: served %d of %d", scol.Len(), tr.Len())
	}
	if scol.MeanLatency() <= bcol.MeanLatency() {
		t.Errorf("slow windows did not inflate mean latency: %v vs baseline %v", scol.MeanLatency(), bcol.MeanLatency())
	}
}

func TestFlakyDonorFallsBackAndTripsBreaker(t *testing.T) {
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 2, Seed: 5,
		Faults:  faults.Rates{Flaky: 0.2},
		Breaker: supervisor.BreakerConfig{Threshold: 3},
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Faults.FlakyWindows == 0 || col.Faults.FlakyFallbacks == 0 {
		t.Fatalf("flaky injection left no trace: %+v", col.Faults)
	}
	if col.KindFractions()[metrics.StartFallback] == 0 {
		t.Fatal("flaky donors should produce fallback starts")
	}
	if col.Faults.FlakyFallbacks < col.Faults.FlakyWindows {
		t.Errorf("windows (%d) should each cover at least one abort (%d)",
			col.Faults.FlakyWindows, col.Faults.FlakyFallbacks)
	}
}

func TestBandwidthDegradationInflatesTransforms(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func(rate float64) *metrics.Collector {
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 2, Seed: 5,
			Faults: faults.Rates{Bandwidth: rate},
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	base, degraded := run(0), run(0.3)
	if degraded.Faults.BandwidthWindows == 0 {
		t.Fatal("bandwidth injection opened no windows")
	}
	if degraded.MeanLatency() <= base.MeanLatency() {
		t.Errorf("degraded transform bandwidth did not raise mean latency: %v vs %v",
			degraded.MeanLatency(), base.MeanLatency())
	}
}

func TestHealthQuarantineRoutesAround(t *testing.T) {
	// One hot function pinned to two nodes; crash faults make nodes sick.
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 4, Seed: 9,
		Faults: faults.Rates{Crash: 0.3},
		Health: healthConfig(),
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	hs := sim.Health().Stats()
	if hs.Quarantines == 0 {
		t.Fatalf("sustained crashes quarantined nothing: %+v", hs)
	}
	if sim.Health().MTTR() <= 0 && len(sim.Health().Episodes()) > 0 {
		t.Fatal("completed episodes with zero MTTR")
	}
	// Health-aware routing must not lose requests: everything is either
	// served or accounted as dropped by the crash-retry budget.
	if col.Len()+col.Faults.Dropped != tr.Len() {
		t.Fatalf("served %d + dropped %d != %d arrivals", col.Len(), col.Faults.Dropped, tr.Len())
	}
}

func TestHealthRoutingCrossCheck(t *testing.T) {
	// The indexed and scanning routers must apply identical health filters;
	// CrossCheckRouting panics on the first divergence.
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 4, Seed: 9,
		Faults:            faults.Rates{Crash: 0.2, Slow: 0.05},
		Health:            healthConfig(),
		CrossCheckRouting: true,
	}, fns)
	if _, err := sim.Run(tr); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffDelaysRetries(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func(retry supervisor.BackoffConfig) *metrics.Collector {
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2, Seed: 5,
			Faults: faults.Rates{Crash: 0.2},
			Retry:  retry,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	immediate := run(supervisor.BackoffConfig{})
	backed := run(supervisor.BackoffConfig{Base: 50 * time.Millisecond})
	if immediate.Faults.BackoffRetries != 0 {
		t.Fatal("immediate retries must not count backoff delays")
	}
	if backed.Faults.BackoffRetries == 0 {
		t.Fatal("configured backoff never delayed a retry")
	}
	if backed.Faults.BackoffRetries > backed.Faults.Retries {
		t.Fatalf("backoff retries %d exceed total retries %d",
			backed.Faults.BackoffRetries, backed.Faults.Retries)
	}
}

func TestHedgedTransformBeatsUndetectedHang(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func(hedge supervisor.HedgeConfig) *metrics.Collector {
		// Two containers per node forces heavy repurposing, so the hedger
		// accumulates transform samples quickly and hangs hit armed hedges.
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 2, Seed: 5,
			Faults: faults.Rates{Hang: 0.4},
			Hedge:  hedge,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	plain := run(supervisor.HedgeConfig{})
	hedged := run(supervisor.HedgeConfig{Percentile: 90, MinSamples: 2})
	if plain.Faults.HedgedTransforms != 0 {
		t.Fatal("hedging disabled but hedges recorded")
	}
	if hedged.Faults.HedgedTransforms == 0 {
		t.Fatal("hang faults with hedging armed never hedged")
	}
	if hedged.Faults.HedgeWins == 0 {
		t.Fatal("hedged backups never beat a 10x undetected hang")
	}
	if hedged.KindFractions()[metrics.StartHedge] == 0 {
		t.Fatal("hedge wins should surface as hedge-kind records")
	}
	if hedged.MeanLatency() >= plain.MeanLatency() {
		t.Errorf("hedging did not improve mean latency under hangs: %v vs %v",
			hedged.MeanLatency(), plain.MeanLatency())
	}
}

func TestGrayRunsAreDeterministic(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func() ([]metrics.Record, metrics.FaultStats, health.Summary) {
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 4, Seed: 21,
			Faults: faults.Rates{Slow: 0.03, Flaky: 0.05, Bandwidth: 0.05, Crash: 0.1, Hang: 0.1},
			Health: healthConfig(),
			Retry:  supervisor.BackoffConfig{Base: 25 * time.Millisecond},
			Hedge:  supervisor.HedgeConfig{Percentile: 95, MinSamples: 5},
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col.Records(), col.Faults, sim.Health().Summarize()
	}
	r1, f1, h1 := run()
	r2, f2, h2 := run()
	if f1 != f2 {
		t.Fatalf("fault stats diverged: %+v vs %+v", f1, f2)
	}
	if h1 != h2 {
		t.Fatalf("health summaries diverged: %+v vs %+v", h1, h2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestZeroGrayConfigMatchesSeedBehavior pins the compatibility contract: with
// every new knob at its zero value, a faulted run is byte-identical to the
// pre-gray engine (the new Fire calls consume no randomness at zero rate).
func TestZeroGrayConfigMatchesSeedBehavior(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func(cfg simulate.Config) []metrics.Record {
		sim := simulate.New(cfg, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col.Records()
	}
	base := simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2, Seed: 5,
		Faults: faults.Rates{Transform: 0.2, Crash: 0.1, Outage: 0.01, Hang: 0.1},
	}
	withZeros := base
	withZeros.SlowFactor = 4
	withZeros.BandwidthFactor = 3
	r1, r2 := run(base), run(withZeros)
	if len(r1) != len(r2) {
		t.Fatalf("record counts diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestCheckpointRestoreReconcilesHealth is the restore-while-quarantined
// coverage: exporting a cluster whose node is quarantined/draining and
// importing it into a fresh server must carry the health state over — the
// sick node must not come back healthy — while a server without health
// tracking ignores the snapshot.
func TestCheckpointRestoreReconcilesHealth(t *testing.T) {
	names := []string{"resnet18-imagenet", "resnet34-imagenet"}
	fns := testFunctions(t, names...)
	cfg := simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2,
		Health: healthConfig(),
	}
	o := simulate.NewOnline(cfg, fns)
	if _, err := o.Invoke(names[0], time.Second); err != nil {
		t.Fatal(err)
	}

	// Drive node 0 into quarantine through the exposed tracker, as a burst
	// of crash/outage signals would.
	now := 2 * time.Second
	o.ReadHealth(func(tr *health.Tracker) {
		for i := 0; i < 10 && tr.State(0, now) != health.Quarantined; i++ {
			tr.ObserveFailure(0, now)
			now += time.Second
		}
		if tr.State(0, now) != health.Quarantined {
			t.Fatal("setup: node 0 never quarantined")
		}
	})

	st := o.ExportState()
	if len(st.Health) != 2 {
		t.Fatalf("exported %d health snapshots, want 2", len(st.Health))
	}

	// Restore into a fresh server: the quarantined node must come back
	// quarantined, not resurrected as healthy, and must walk the rest of the
	// lifecycle (draining → recovered) from its restored instants.
	o2 := simulate.NewOnline(cfg, fns)
	o2.ImportState(st)
	o2.ReadHealth(func(tr *health.Tracker) {
		if got := tr.State(0, now); got != health.Quarantined {
			t.Fatalf("restored node 0 state %v, want quarantined", got)
		}
		if !tr.Avoid(0, now) {
			t.Fatal("restored quarantined node must stay unroutable")
		}
		if got := tr.State(1, now); got != health.Healthy {
			t.Fatalf("restored node 1 state %v, want healthy", got)
		}
		later := now + 30*time.Second + 15*time.Second // quarantine + drain timeout
		if got := tr.State(0, later); got != health.Recovered {
			t.Fatalf("restored node 0 after drain: %v, want recovered (not healthy)", got)
		}
	})

	// A server without health tracking ignores the snapshot instead of
	// failing the whole restore.
	plain := cfg
	plain.Health = health.Config{}
	o3 := simulate.NewOnline(plain, fns)
	o3.ImportState(st)
	o3.ReadHealth(func(tr *health.Tracker) {
		if tr != nil {
			t.Fatal("health disabled: tracker should be nil after restore")
		}
	})
	if _, err := o3.Invoke(names[0], now); err != nil {
		t.Fatal(err)
	}
}
