package metrics

import "time"

// Summary is the mergeable, constant-memory digest of a run: a log-linear
// latency sketch plus exact running aggregates. It is what streaming replay
// produces instead of a record slice — counts, sums, max, per-kind tallies
// and fault/fan-out counters are exact; only intermediate latency quantiles
// carry the digest's bounded relative error (≤ 2^-digestSubBits).
//
// Summary holds no pointers, so two summaries compare with == — the
// equality the streaming-vs-materialized and windowed-vs-serial oracles
// rely on — and shard summaries combine in O(buckets) via Merge.
type Summary struct {
	// Latency sketches the end-to-end latency distribution (exact count,
	// total and max; bounded-error intermediate quantiles).
	Latency DurationDigest
	// Wait..Compute are the exact sums of the per-request breakdown.
	Wait, Init, Load, Compute time.Duration
	// Retries is the exact sum of per-request re-dispatch counts.
	Retries int
	// Kinds counts records per start kind.
	Kinds [startKindCount]int
	// Faults and Fanout carry the run's injected-failure and fan-out-tree
	// tallies (folded in by the replay engine, not per record).
	Faults FaultStats
	// Fanout carries the run's fan-out tree tallies.
	Fanout FanoutStats
}

// Observe folds one record into the summary.
func (s *Summary) Observe(r Record) {
	s.Latency.Observe(r.Latency())
	s.Wait += r.Wait
	s.Init += r.Init
	s.Load += r.Load
	s.Compute += r.Compute
	s.Retries += r.Retries
	if int(r.Kind) < int(startKindCount) {
		s.Kinds[r.Kind]++
	}
}

// Merge folds another summary into s: all counters add, the latency sketches
// merge cell-wise, and the fault/fan-out tallies merge by their own rules.
// Merging shard summaries equals summarizing the concatenated record stream.
func (s *Summary) Merge(o *Summary) {
	s.Latency.Merge(&o.Latency)
	s.Wait += o.Wait
	s.Init += o.Init
	s.Load += o.Load
	s.Compute += o.Compute
	s.Retries += o.Retries
	for i, n := range o.Kinds {
		s.Kinds[i] += n
	}
	s.Faults.Merge(o.Faults)
	s.Fanout.Merge(o.Fanout)
}

// Count returns the exact number of summarized records.
func (s *Summary) Count() int { return s.Latency.Count() }

// MeanLatency returns the exact mean end-to-end latency.
func (s *Summary) MeanLatency() time.Duration { return s.Latency.Mean() }

// Percentile returns the p-th latency percentile from the sketch (p in
// [0,100]): within 2^-digestSubBits of the exact nearest-rank value, and
// exact at p=100 (the max is tracked exactly).
func (s *Summary) Percentile(p float64) time.Duration { return s.Latency.Percentile(p) }

// KindCounts tallies records per start kind (exact).
func (s *Summary) KindCounts() map[StartKind]int {
	out := make(map[StartKind]int, int(startKindCount))
	for k, n := range s.Kinds {
		if n > 0 {
			out[StartKind(k)] = n
		}
	}
	return out
}

// KindFractions returns each start kind's share of requests (exact).
func (s *Summary) KindFractions() map[StartKind]float64 {
	out := make(map[StartKind]float64, int(startKindCount))
	n := s.Count()
	if n == 0 {
		return out
	}
	for k, c := range s.Kinds {
		if c > 0 {
			out[StartKind(k)] = float64(c) / float64(n)
		}
	}
	return out
}

// HitRatio is the warm-path share of served requests — warm + transform +
// hedge + fanout — the soak experiment's availability-style figure, exact.
func (s *Summary) HitRatio() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	hits := s.Kinds[StartWarm] + s.Kinds[StartTransform] + s.Kinds[StartHedge] + s.Kinds[StartFanout]
	return float64(hits) / float64(n)
}

// MeanBreakdown averages the per-request latency decomposition (exact).
func (s *Summary) MeanBreakdown() Breakdown {
	n := time.Duration(s.Count())
	if n == 0 {
		return Breakdown{}
	}
	return Breakdown{s.Wait / n, s.Init / n, s.Load / n, s.Compute / n}
}

// SummaryOf summarizes a materialized collector: fold every record, then
// carry over the fault and fan-out tallies. A streaming replay of the same
// trace must produce a == summary — the sketch-fidelity oracle.
func SummaryOf(c *Collector) *Summary {
	s := &Summary{}
	for _, r := range c.Records() {
		s.Observe(r)
	}
	s.Faults.Merge(c.Faults)
	s.Fanout.Merge(c.Fanout)
	return s
}

// Merge folds another run's fault tallies into f (all fields are counters,
// so every field adds).
func (f *FaultStats) Merge(o FaultStats) {
	f.TransformFallbacks += o.TransformFallbacks
	f.LoadRetries += o.LoadRetries
	f.Crashes += o.Crashes
	f.Outages += o.Outages
	f.Retries += o.Retries
	f.Dropped += o.Dropped
	f.Hangs += o.Hangs
	f.WatchdogCancels += o.WatchdogCancels
	f.BreakerShortCircuits += o.BreakerShortCircuits
	f.SlowWindows += o.SlowWindows
	f.FlakyWindows += o.FlakyWindows
	f.FlakyFallbacks += o.FlakyFallbacks
	f.BandwidthWindows += o.BandwidthWindows
	f.HedgedTransforms += o.HedgedTransforms
	f.HedgeWins += o.HedgeWins
	f.BackoffRetries += o.BackoffRetries
}

// StreamInto diverts every subsequent Add into the summary: the collector
// retains no records, keeping replay memory independent of trace length.
// Reads that need the record slice (Records, Percentile, PerFunction) see an
// empty collector while streaming; the summary is the source of truth.
func (c *Collector) StreamInto(sum *Summary) { c.stream = sum }

// Streaming reports whether Adds are being diverted into a summary.
func (c *Collector) Streaming() bool { return c.stream != nil }
