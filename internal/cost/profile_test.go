package cost

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
)

func conv(k, in, out int, wid uint64) *model.Operation {
	return &model.Operation{
		Name: "conv", Type: model.OpConv2D,
		Shape:     model.Shape{KernelH: k, KernelW: k, InChannels: in, OutChannels: out, Stride: 1},
		WeightsID: wid,
	}
}

// TestConvScaleRatio pins the Fig 4 calibration: loading conv3x3 over 512
// channels costs ~78.67% more than over 64 channels.
func TestConvScaleRatio(t *testing.T) {
	p := CPU()
	small := p.OpStructureLoad(conv(3, 64, 64, 1))
	big := p.OpStructureLoad(conv(3, 512, 512, 2))
	ratio := float64(big) / float64(small)
	if math.Abs(ratio-1.7867) > 0.15 {
		t.Errorf("conv512/conv64 structure-load ratio = %.3f, want ≈ 1.79", ratio)
	}
}

// TestConvVsActivation pins Fig 4: CONV loads up to ~10× slower than an
// activation.
func TestConvVsActivation(t *testing.T) {
	p := CPU()
	act := &model.Operation{Type: model.OpReLU, Shape: model.Shape{OutChannels: 512}}
	c := p.OpLoad(conv(3, 512, 512, 1))
	a := p.OpLoad(act)
	if ratio := float64(c) / float64(a); ratio < 8 {
		t.Errorf("conv/activation load ratio = %.1f, want ≥ 8", ratio)
	}
	if a == 0 {
		t.Error("activation load should be nonzero")
	}
}

func TestWeightedOpsLoadSlower(t *testing.T) {
	p := CPU()
	weighted := p.OpLoad(&model.Operation{Type: model.OpDense, Shape: model.Shape{InChannels: 256, OutChannels: 256}, WeightsID: 1})
	for _, typ := range []model.OpType{model.OpReLU, model.OpMaxPool, model.OpAdd} {
		free := p.OpLoad(&model.Operation{Type: typ, Shape: model.Shape{KernelH: 2, KernelW: 2, OutChannels: 256}})
		if free >= weighted {
			t.Errorf("%s load %v ≥ dense load %v", typ, free, weighted)
		}
	}
}

func TestModelLoadBreakdown(t *testing.T) {
	p := CPU()
	b := model.NewBuilder("m", "test", "")
	b.Input(3)
	b.Conv("c1", 3, 3, 128, 1)
	b.ReLU("r1", 128)
	b.Dense("d1", 4096, 4096)
	b.Dense("d2", 4096, 1000)
	g := b.Graph()

	br := p.ModelLoad(g)
	if br.Total() != br.Deserialize+br.Structure+br.Weights {
		t.Fatal("Total != sum of parts")
	}
	if br.Structure <= br.Weights {
		t.Errorf("structure %v should dominate weights %v (Fig 3)", br.Structure, br.Weights)
	}
	if br.Deserialize > br.Total()/20 {
		t.Errorf("deserialize %v should be negligible vs total %v", br.Deserialize, br.Total())
	}
	if cs := p.ColdStart(g); cs != p.SandboxInit+br.Total() {
		t.Errorf("ColdStart = %v, want sandbox+load = %v", cs, p.SandboxInit+br.Total())
	}
}

// TestReshapeCheaperThanLoad pins Fig 5c: in-container scaling of a CONV
// costs roughly a third of loading it from scratch.
func TestReshapeCheaperThanLoad(t *testing.T) {
	p := CPU()
	dst := conv(5, 64, 64, 2)
	load := p.OpLoad(dst)
	for _, k := range []int{1, 2, 3, 4, 6, 7} {
		src := conv(k, 64, 64, 1)
		resh := p.ReshapeCost(src, dst)
		if resh >= load {
			t.Errorf("reshape %dx%d→5x5 = %v, not cheaper than load %v", k, k, resh, load)
		}
	}
	r := p.ReshapeCost(conv(3, 64, 64, 1), dst)
	if frac := float64(r) / float64(load); frac < 0.15 || frac > 0.6 {
		t.Errorf("reshape/load fraction = %.2f, want ≈ 1/3", frac)
	}
}

func TestSubstituteCost(t *testing.T) {
	p := CPU()
	a := conv(3, 64, 64, 1)
	same := conv(3, 64, 64, 1)
	reweighted := conv(3, 64, 64, 2)
	reshaped := conv(5, 64, 64, 2)
	dense := &model.Operation{Type: model.OpDense, Shape: model.Shape{InChannels: 64, OutChannels: 64}, WeightsID: 3}

	if c, ok := p.SubstituteCost(a, same); !ok || c != 0 {
		t.Errorf("identical substitute = (%v, %v), want (0, true)", c, ok)
	}
	if c, ok := p.SubstituteCost(a, reweighted); !ok || c != p.ReplaceCost(reweighted) {
		t.Errorf("same-shape substitute = (%v, %v), want ReplaceCost", c, ok)
	}
	if c, ok := p.SubstituteCost(a, reshaped); !ok || c != p.ReshapeCost(a, reshaped)+p.ReplaceCost(reshaped) {
		t.Errorf("reshape substitute = (%v, %v), want Reshape+Replace", c, ok)
	}
	if _, ok := p.SubstituteCost(a, dense); ok {
		t.Error("cross-type substitution should be impossible")
	}
	// Substitution of a same-type op must beat Add (the planner's whole premise).
	if c, _ := p.SubstituteCost(a, reshaped); c >= p.AddCost(reshaped) {
		t.Errorf("substitute %v ≥ add %v: transformation would never win", c, p.AddCost(reshaped))
	}
}

func TestWeightFreeMetaOps(t *testing.T) {
	p := CPU()
	relu1 := &model.Operation{Type: model.OpReLU, Shape: model.Shape{OutChannels: 64}}
	relu2 := &model.Operation{Type: model.OpReLU, Shape: model.Shape{OutChannels: 512}}
	if c := p.ReplaceCost(relu1); c != 0 {
		t.Errorf("Replace on weight-free op = %v, want 0", c)
	}
	c, ok := p.SubstituteCost(relu1, relu2)
	if !ok || c != p.ReshapeCost(relu1, relu2) {
		t.Errorf("weight-free substitute = (%v,%v)", c, ok)
	}
	if c >= p.AddCost(relu2) {
		t.Errorf("weight-free substitute %v should beat add %v", c, p.AddCost(relu2))
	}
}

func TestEdgeAndReduceCosts(t *testing.T) {
	p := CPU()
	if p.EdgeCost(0) != 0 {
		t.Error("EdgeCost(0) != 0")
	}
	if p.EdgeCost(10) != 10*p.EdgeCostPer {
		t.Error("EdgeCost not linear")
	}
	// Reduce is constant regardless of op size (§4.4 observation 4).
	big, small := conv(7, 512, 512, 1), conv(1, 8, 8, 1)
	if p.ReduceCost(big) != p.ReduceCost(small) {
		t.Error("ReduceCost not constant")
	}
	// Edge is the cheapest meta-operator.
	if p.EdgeCostPer >= p.ReduceCostPer {
		t.Error("edge should be cheaper than reduce")
	}
}

func TestGPUProfile(t *testing.T) {
	cpu, gpu := CPU(), GPU()
	if gpu.SandboxInit <= cpu.SandboxInit {
		t.Error("GPU sandbox init should exceed CPU (CUDA context)")
	}
	g := model.NewBuilder("m", "test", "")
	g.Input(3)
	g.Conv("c", 3, 3, 256, 1)
	g.Dense("d", 256, 1000)
	graph := g.Graph()
	if gpu.Compute(graph) >= cpu.Compute(graph) {
		t.Error("GPU compute should beat CPU")
	}
	if gpu.ColdStart(graph) <= cpu.ColdStart(graph) {
		t.Error("GPU cold start should exceed CPU (Fig 16)")
	}
	// Mutating the GPU profile's StructBase must not corrupt a fresh CPU profile.
	gpu.StructBase[model.OpConv2D] = 0
	if CPU().StructBase[model.OpConv2D] == 0 {
		t.Error("GPU() aliases CPU() base map")
	}
}

func TestComputeCountsOnlyWeights(t *testing.T) {
	p := CPU()
	b := model.NewBuilder("m", "test", "")
	b.Input(3)
	b.Conv("c", 3, 3, 64, 1)
	withConv := p.Compute(b.Graph())
	b.ReLU("r", 64) // weight-free: should not change compute beyond zero
	withRelu := p.Compute(b.Graph())
	if withRelu != withConv {
		t.Errorf("weight-free op changed compute: %v vs %v", withRelu, withConv)
	}
	if withConv <= p.ComputeBase {
		t.Error("weighted op did not add compute time")
	}
}

func TestEstimator(t *testing.T) {
	p := CPU()
	exact := Exact(p)
	a, b := conv(3, 64, 64, 1), conv(5, 64, 64, 2)
	ce, ok := exact.SubstituteCost(a, b)
	cp, _ := p.SubstituteCost(a, b)
	if !ok || ce != cp {
		t.Errorf("exact estimator deviates: %v vs %v", ce, cp)
	}
	n1 := NewEstimator(p, 0.2, 42)
	n2 := NewEstimator(p, 0.2, 42)
	n3 := NewEstimator(p, 0.2, 43)
	c1, _ := n1.SubstituteCost(a, b)
	c2, _ := n2.SubstituteCost(a, b)
	if c1 != c2 {
		t.Error("same-seed estimators disagree")
	}
	different := false
	for _, op := range []*model.Operation{a, b, conv(7, 128, 128, 3)} {
		x := n1.AddCost(op)
		y := n3.AddCost(op)
		if x != y {
			different = true
		}
		// Noise bounded by ±20 %.
		truth := float64(p.AddCost(op))
		if f := float64(x) / truth; f < 0.79 || f > 1.21 {
			t.Errorf("noise factor %.3f outside ±20%%", f)
		}
	}
	if !different {
		t.Error("different seeds produced identical noise")
	}
	if n1.Profile() != p {
		t.Error("Profile accessor wrong")
	}
	if n1.EdgeCost(3) != p.EdgeCost(3) {
		t.Error("edge cost should be noise-free")
	}
}

func TestDurClampsNegative(t *testing.T) {
	if d := dur(-5); d != 0 {
		t.Errorf("dur(-5) = %v, want 0", d)
	}
}

func TestReshapeAsymmetric(t *testing.T) {
	p := CPU()
	small, big := conv(1, 64, 64, 1), conv(3, 64, 64, 2)
	up := p.ReshapeCost(small, big)
	down := p.ReshapeCost(big, small)
	// Growing re-allocates; shrinking is a cheap view (§8.2 observation 2).
	if up <= down {
		t.Errorf("grow (%v) should cost more than shrink (%v)", up, down)
	}
	if up <= p.ReshapeBase || down <= p.ReshapeBase {
		t.Error("reshape ignored weight delta")
	}
	var zero time.Duration = p.ReshapeCost(small, conv(1, 64, 64, 9))
	if zero != p.ReshapeBase {
		t.Error("same-shape reshape should cost only the base")
	}
}

func TestReshapeable(t *testing.T) {
	p := CPU()
	a := conv(3, 64, 64, 1)
	if !p.Reshapeable(a, conv(5, 64, 64, 2)) {
		t.Error("moderate reshape should be allowed")
	}
	if p.Reshapeable(a, conv(7, 512, 512, 2)) {
		t.Error("extreme (8x per channel dim) reshape should be ruled out")
	}
	// The strawman's 1x1→5x5 scaling must stay legal at any kernel ratio
	// (Fig 5b): only channel dimensions are bounded.
	if !p.Reshapeable(conv(1, 8, 8, 1), conv(7, 8, 8, 2)) {
		t.Error("strawman 1x1→7x7 conv scaling must be reshapeable")
	}
	if p.Reshapeable(a, &model.Operation{Type: model.OpDense, Shape: model.Shape{InChannels: 64, OutChannels: 64}}) {
		t.Error("cross-type reshape impossible")
	}
	relu1 := &model.Operation{Type: model.OpReLU, Shape: model.Shape{OutChannels: 2}}
	relu2 := &model.Operation{Type: model.OpReLU, Shape: model.Shape{OutChannels: 4096}}
	if !p.Reshapeable(relu1, relu2) {
		t.Error("weight-free reshape unconstrained")
	}
	// BERT-Base→BERT-Mini attention projections scale 9x: must stay legal
	// (§5.2 Example 1).
	qBase := &model.Operation{Type: model.OpQuery, Shape: model.Shape{InChannels: 768, OutChannels: 768}}
	qMini := &model.Operation{Type: model.OpQuery, Shape: model.Shape{InChannels: 256, OutChannels: 256}}
	qTiny := &model.Operation{Type: model.OpQuery, Shape: model.Shape{InChannels: 128, OutChannels: 128}}
	if !p.Reshapeable(qBase, qMini) || !p.Reshapeable(qMini, qBase) {
		t.Error("BERT base↔mini projections must be reshapeable")
	}
	if !p.Reshapeable(qBase, qTiny) {
		t.Error("BERT base→tiny (6x per dim) must be reshapeable")
	}
	if _, ok := p.SubstituteCost(a, conv(7, 512, 512, 2)); ok {
		t.Error("SubstituteCost should refuse un-reshapeable pairs")
	}
}

func TestOnlineProfilingConverges(t *testing.T) {
	p := CPU()
	e := NewEstimator(p, 0.5, 3)
	start := e.Miscalibration()
	if start == 0 {
		t.Fatal("estimator should start miscalibrated")
	}
	// Observe disabled: no learning.
	cv := conv(3, 64, 64, 1)
	pred := e.AddCost(cv)
	e.Observe(model.OpConv2D, pred, p.AddCost(cv))
	if e.Observations() != 0 {
		t.Fatal("Observe should be a no-op before EnableOnlineProfiling")
	}
	e.EnableOnlineProfiling(0.3)
	for i := 0; i < 200; i++ {
		for _, typ := range model.AllOpTypes() {
			op := *cv
			op.Type = typ
			predicted := e.AddCost(&op)
			actual := p.AddCost(&op)
			e.Observe(typ, predicted, actual)
		}
	}
	if got := e.Miscalibration(); got > start/10 {
		t.Errorf("miscalibration %.4f did not converge from %.4f", got, start)
	}
	if e.Observations() == 0 {
		t.Error("observations not counted")
	}
	// Degenerate predictions are ignored.
	before := e.Observations()
	e.Observe(model.OpConv2D, 0, time.Second)
	if e.Observations() != before {
		t.Error("zero prediction should be ignored")
	}
}
