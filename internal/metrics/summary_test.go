package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// adversarialSamples builds the distributions most likely to expose a sketch:
// bimodal (huge gap between modes), heavy-tail (Pareto-ish octave spread),
// all-equal (every quantile the same value), and single-sample.
func adversarialSamples() map[string][]time.Duration {
	rng := rand.New(rand.NewSource(23))
	bimodal := make([]time.Duration, 0, 4000)
	for i := 0; i < 2000; i++ {
		bimodal = append(bimodal, time.Millisecond+time.Duration(rng.Int63n(int64(time.Millisecond))))
		bimodal = append(bimodal, time.Hour+time.Duration(rng.Int63n(int64(time.Minute))))
	}
	heavy := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Draw an octave uniformly, then a value inside it: mass spread over
		// ~20 powers of two, the worst case for log-linear bucketing.
		oct := 10 + rng.Intn(20)
		heavy = append(heavy, time.Duration(uint64(1)<<oct)+time.Duration(rng.Int63n(int64(uint64(1)<<oct))))
	}
	equal := make([]time.Duration, 3000)
	for i := range equal {
		equal[i] = 777 * time.Millisecond
	}
	return map[string][]time.Duration{
		"bimodal":       bimodal,
		"heavy-tail":    heavy,
		"all-equal":     equal,
		"single-sample": {42 * time.Second},
	}
}

// TestDigestAdversarialRelativeError verifies the ≤ 2^-5 quantile bound
// against exact nearest-rank on every adversarial distribution.
func TestDigestAdversarialRelativeError(t *testing.T) {
	for name, samples := range adversarialSamples() {
		t.Run(name, func(t *testing.T) {
			var d DurationDigest
			for _, v := range samples {
				d.Observe(v)
			}
			for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
				exact := DurationPercentile(samples, p)
				got := d.Percentile(p)
				if got < exact {
					t.Errorf("p%v: digest %v below exact %v", p, got, exact)
				}
				if exact > 0 && float64(got-exact)/float64(exact) > 1.0/32 {
					t.Errorf("p%v: digest %v exceeds exact %v beyond 2^-5", p, got, exact)
				}
			}
			if d.Max() != DurationPercentile(samples, 100) {
				t.Errorf("max %v != exact %v", d.Max(), DurationPercentile(samples, 100))
			}
		})
	}
}

// digestOf sketches a sample slice.
func digestOf(samples []time.Duration) DurationDigest {
	var d DurationDigest
	for _, v := range samples {
		d.Observe(v)
	}
	return d
}

// TestDigestMergeProperties checks Merge is associative and commutative with
// the zero digest as identity, and that any merge order equals the digest of
// the concatenated stream exactly — same buckets, count, total, max (digest
// values are comparable, so == is the whole-state check).
func TestDigestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	parts := make([][]time.Duration, 3)
	var all []time.Duration
	for i := range parts {
		n := 500 + rng.Intn(1500)
		for j := 0; j < n; j++ {
			v := time.Duration(rng.Int63n(int64(2 * time.Hour)))
			parts[i] = append(parts[i], v)
			all = append(all, v)
		}
	}
	a, b, c := digestOf(parts[0]), digestOf(parts[1]), digestOf(parts[2])
	whole := digestOf(all)

	// (a ⊕ b) ⊕ c
	left := a
	left.Merge(&b)
	left.Merge(&c)
	// a ⊕ (b ⊕ c)
	bc := b
	bc.Merge(&c)
	right := a
	right.Merge(&bc)
	if left != right {
		t.Fatal("merge is not associative")
	}
	// b ⊕ a vs a ⊕ b
	ab := a
	ab.Merge(&b)
	ba := b
	ba.Merge(&a)
	if ab != ba {
		t.Fatal("merge is not commutative")
	}
	// a ⊕ zero = a
	var zero DurationDigest
	id := a
	id.Merge(&zero)
	if id != a {
		t.Fatal("zero digest is not a merge identity")
	}
	if left != whole {
		t.Fatalf("merged parts != digest of concatenated stream:\ncount %d vs %d, total %v vs %v, max %v vs %v",
			left.Count(), whole.Count(), left.Total(), whole.Total(), left.Max(), whole.Max())
	}
}

// randomRecord draws an arbitrary record.
func randomRecord(rng *rand.Rand) Record {
	arr := time.Duration(rng.Int63n(int64(time.Hour)))
	wait := time.Duration(rng.Int63n(int64(time.Second)))
	st := arr + wait
	init := time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
	load := time.Duration(rng.Int63n(int64(3 * time.Second)))
	comp := time.Duration(rng.Int63n(int64(400 * time.Millisecond)))
	return Record{
		Function: "f",
		Kind:     StartKind(rng.Intn(int(startKindCount))),
		Arrival:  arr,
		Start:    st,
		End:      st + init + load + comp,
		Wait:     wait,
		Init:     init,
		Load:     load,
		Compute:  comp,
		Retries:  rng.Intn(3),
	}
}

// TestSummaryMergeMatchesConcatenation: merging per-shard summaries must
// equal (==) summarizing the concatenated record stream, and match the
// collector-derived summary of the same records.
func TestSummaryMergeMatchesConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var whole Summary
	var col Collector
	shards := make([]Summary, 4)
	for i := 0; i < 6000; i++ {
		r := randomRecord(rng)
		whole.Observe(r)
		col.Add(r)
		shards[i%len(shards)].Observe(r)
	}
	var merged Summary
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged != whole {
		t.Fatal("merged shard summaries != summary of concatenated stream")
	}
	if got := *SummaryOf(&col); got != whole {
		t.Fatal("SummaryOf(collector) != streaming summary of same records")
	}
}

// TestCollectorStreamInto checks streaming mode retains nothing and produces
// the same summary a materialized collector derives.
func TestCollectorStreamInto(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	recs := make([]Record, 2000)
	for i := range recs {
		recs[i] = randomRecord(rng)
	}
	var mat Collector
	for _, r := range recs {
		mat.Add(r)
	}
	var sum Summary
	var str Collector
	str.StreamInto(&sum)
	str.Reserve(len(recs)) // must not allocate records in streaming mode
	for _, r := range recs {
		str.Add(r)
	}
	if str.Len() != 0 || len(str.Records()) != 0 {
		t.Fatalf("streaming collector retained %d records", str.Len())
	}
	if !str.Streaming() {
		t.Fatal("Streaming() = false after StreamInto")
	}
	if want := *SummaryOf(&mat); sum != want {
		t.Fatal("streamed summary != SummaryOf(materialized collector)")
	}
	if sum.Count() != len(recs) {
		t.Fatalf("count %d, want %d", sum.Count(), len(recs))
	}
	if sum.MeanLatency() != mat.MeanLatency() {
		t.Fatalf("mean %v != %v (mean is exact)", sum.MeanLatency(), mat.MeanLatency())
	}
	for k, n := range mat.KindCounts() {
		if sum.KindCounts()[k] != n {
			t.Fatalf("kind %v: %d vs %d", k, sum.KindCounts()[k], n)
		}
	}
}

// TestFaultStatsMergeCoversAllFields sets every int field to a distinct
// value via reflection and checks Merge adds each one — a new FaultStats
// counter that Merge forgets fails here, not silently in shard merges.
func TestFaultStatsMergeCoversAllFields(t *testing.T) {
	var a, b FaultStats
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Kind() != reflect.Int {
			t.Fatalf("FaultStats field %s is %v; Merge and this test assume int counters",
				av.Type().Field(i).Name, av.Field(i).Kind())
		}
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(100 * (i + 1)))
	}
	a.Merge(b)
	for i := 0; i < av.NumField(); i++ {
		want := int64(i+1) + int64(100*(i+1))
		if got := av.Field(i).Int(); got != want {
			t.Errorf("field %s: merged %d, want %d", av.Type().Field(i).Name, got, want)
		}
	}
}
