package zoo

import (
	"fmt"

	"repro/internal/model"
)

// ResNetConfig selects a residual-network variant. The one generator covers
// plain ResNet, pre-activation ResNet, SE-ResNet, ResNeXt (via InnerWidth),
// Wide ResNet (via Width), BagNet (via BagKernel) and DLA-style aggregation
// (via Aggregate).
type ResNetConfig struct {
	// Depth selects the stage plan (10..200). Depths ≥ 50 use bottleneck
	// blocks with 4× expansion; smaller depths use basic blocks.
	Depth int
	// Width multiplies the stage output widths (Wide ResNet). 0 means 1.
	Width float64
	// InnerWidth multiplies the bottleneck inner width (ResNeXt-style
	// capacity increase). 0 means 1.
	InnerWidth float64
	// PreAct uses pre-activation ordering (BN→ReLU→conv) as in PreResNet.
	PreAct bool
	// SE appends a squeeze-and-excitation side branch to every block.
	SE bool
	// BagKernel, if nonzero, shrinks most mid-convolutions to 1×1 as in
	// BagNet; larger values keep 3×3 kernels in more leading blocks.
	BagKernel int
	// Aggregate appends a DLA-style aggregation convolution after each stage.
	Aggregate bool
}

type resnetPlan struct {
	blocks     [4]int
	bottleneck bool
}

var resnetPlans = map[int]resnetPlan{
	10:  {[4]int{1, 1, 1, 1}, false},
	12:  {[4]int{2, 1, 1, 1}, false},
	14:  {[4]int{2, 2, 1, 1}, false},
	16:  {[4]int{2, 2, 2, 1}, false},
	18:  {[4]int{2, 2, 2, 2}, false},
	26:  {[4]int{3, 3, 3, 3}, false},
	34:  {[4]int{3, 4, 6, 3}, false},
	50:  {[4]int{3, 4, 6, 3}, true},
	101: {[4]int{3, 4, 23, 3}, true},
	152: {[4]int{3, 8, 36, 3}, true},
	200: {[4]int{3, 24, 36, 3}, true},
}

// ResNet builds a residual network per cfg. Parameter counts for the plain
// ImageNet variants match the published models (ResNet50 ≈ 25.6M, ResNet101
// ≈ 44.7M, ResNet152 ≈ 60.4M; paper Fig 2c).
func ResNet(cfg ResNetConfig, classes int, scope string) *model.Graph {
	plan, ok := resnetPlans[cfg.Depth]
	if !ok {
		panic(fmt.Sprintf("zoo: no ResNet plan for depth %d", cfg.Depth))
	}
	wmul := cfg.Width
	if wmul == 0 {
		wmul = 1
	}
	imul := cfg.InnerWidth
	if imul == 0 {
		imul = 1
	}
	b := model.NewBuilder(fmt.Sprintf("resnet%d", cfg.Depth), "resnet", scope)
	b.Input(3)
	// Stem.
	b.Conv("stem.conv", 7, 3, 64, 2)
	b.BN("stem.bn", 64)
	b.ReLU("stem.relu", 64)
	b.MaxPool("stem.pool", 3, 64, 2)

	in := 64
	expansion := 1
	if plan.bottleneck {
		expansion = 4
	}
	for stage := 0; stage < 4; stage++ {
		base := 64 << stage
		w := int(float64(base) * wmul)
		out := w * expansion
		for blk := 0; blk < plan.blocks[stage]; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			tag := fmt.Sprintf("s%d.b%d", stage+1, blk+1)
			entry := b.Tail()[0]
			midK := 3
			if cfg.BagKernel > 0 && blk >= cfg.BagKernel/8 {
				midK = 1
			}
			var body int
			if plan.bottleneck {
				wi := int(float64(w) * imul)
				if cfg.PreAct {
					b.BN(tag+".bn1", in)
					b.ReLU(tag+".relu1", in)
				}
				b.Conv(tag+".conv1", 1, in, wi, 1)
				if !cfg.PreAct {
					b.BN(tag+".bn1", wi)
					b.ReLU(tag+".relu1", wi)
				} else {
					b.BN(tag+".bn2", wi)
					b.ReLU(tag+".relu2", wi)
				}
				b.Conv(tag+".conv2", midK, wi, wi, stride)
				if !cfg.PreAct {
					b.BN(tag+".bn2", wi)
					b.ReLU(tag+".relu2", wi)
				} else {
					b.BN(tag+".bn3", wi)
					b.ReLU(tag+".relu3", wi)
				}
				b.Conv(tag+".conv3", 1, wi, out, 1)
				if !cfg.PreAct {
					b.BN(tag+".bn3", out)
				}
				body = b.Tail()[0]
			} else {
				if cfg.PreAct {
					b.BN(tag+".bn1", in)
					b.ReLU(tag+".relu1", in)
				}
				b.Conv(tag+".conv1", midK, in, out, stride)
				if !cfg.PreAct {
					b.BN(tag+".bn1", out)
					b.ReLU(tag+".relu1", out)
				} else {
					b.BN(tag+".bn2", out)
					b.ReLU(tag+".relu2", out)
				}
				b.Conv(tag+".conv2", midK, out, out, 1)
				if !cfg.PreAct {
					b.BN(tag+".bn2", out)
				}
				body = b.Tail()[0]
			}
			if cfg.SE {
				b.GlobalAvgPool(tag+".se.gap", out)
				b.Dense(tag+".se.fc1", out, max(out/16, 4))
				b.ReLU(tag+".se.relu", max(out/16, 4))
				b.Dense(tag+".se.fc2", max(out/16, 4), out)
				b.Add(model.Operation{Name: tag + ".se.sigmoid", Type: model.OpSigmoid, Shape: model.Shape{OutChannels: out}})
				body = b.Tail()[0]
			}
			// Shortcut.
			shortcut := entry
			if in != out || stride != 1 {
				b.SetTail(entry)
				b.Conv(tag+".sc.conv", 1, in, out, stride)
				if !cfg.PreAct {
					b.BN(tag+".sc.bn", out)
				}
				shortcut = b.Tail()[0]
			}
			b.AddMerge(tag+".add", out, body, shortcut)
			if !cfg.PreAct {
				b.ReLU(tag+".relu_out", out)
			}
			in = out
		}
		if cfg.Aggregate {
			tag := fmt.Sprintf("s%d.agg", stage+1)
			b.Conv(tag+".conv", 1, in, in, 1)
			b.BN(tag+".bn", in)
			b.ReLU(tag+".relu", in)
		}
	}
	if cfg.PreAct {
		b.BN("final.bn", in)
		b.ReLU("final.relu", in)
	}
	b.GlobalAvgPool("gap", in)
	b.Dense("fc", in, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}
