package checkers

import (
	"go/ast"

	"repro/internal/analysis"
)

// wallclockBanned are the package time functions that read or wait on the
// real clock. time.Duration arithmetic and constants stay legal everywhere
// — the simulator's virtual clock is itself a time.Duration.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// defaultVirtualPackages are the packages whose logic runs entirely on the
// simulator's virtual clock: any wall-clock read there desynchronizes
// replay from simulation and silently breaks fixed-seed reproducibility.
// The list is shared with the timeprop checker, which extends the same ban
// to transitive clock reads through helpers in other packages.
//
// Excluded by audit (2026-08): gateway and controlplane serve real traffic
// and legitimately read wall time; experiments and cliutil time real runs;
// repository and zoo are clock-free data/codegen layers with no replay
// semantics to protect; analysis and cmd are tooling. Telemetry sites
// inside virtual packages carry //optimus:allow wallclock directives
// instead of an exclusion.
var defaultVirtualPackages = []string{
	"repro/internal/simulate",
	"repro/internal/planner",
	"repro/internal/metaop",
	"repro/internal/cost",
	"repro/internal/model",
	"repro/internal/workload",
	"repro/internal/balancer",
	"repro/internal/fanout",
	"repro/internal/ring",
	"repro/internal/faults",
	"repro/internal/health",
	"repro/internal/supervisor",
	"repro/internal/policy",
	"repro/internal/metrics",
}

// Wallclock bans wall-clock reads (time.Now, Since, Sleep, After, timers)
// inside virtual-time packages.
type Wallclock struct {
	// Virtual lists the import paths the ban applies to.
	Virtual []string
}

// DefaultWallclock returns the checker bound to the project's virtual-time
// package list.
func DefaultWallclock() *Wallclock { return &Wallclock{Virtual: defaultVirtualPackages} }

// NewWallclock returns the checker bound to an explicit package list (used
// by fixture tests).
func NewWallclock(virtual []string) *Wallclock { return &Wallclock{Virtual: virtual} }

// Name implements analysis.Checker.
func (w *Wallclock) Name() string { return "wallclock" }

// Doc implements analysis.Checker.
func (w *Wallclock) Doc() string {
	return "bans wall-clock reads (time.Now/Since/Sleep/After/timers) in virtual-time packages"
}

// Run implements analysis.Checker. Any reference to a banned function is
// reported, not just calls: passing time.Now as a clock source leaks wall
// time just as surely as calling it.
func (w *Wallclock) Run(p *analysis.Pass) {
	if !hasPkg(w.Virtual, p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, _, ok := pkgFuncRef(p.Info, sel)
			if ok && pkgPath == "time" && wallclockBanned[name] {
				p.Reportf(w.Name(), sel.Pos(),
					"time.%s in virtual-time package %s: use the simulated clock (plumb a time.Duration now)", name, p.Path)
			}
			return true
		})
	}
}
