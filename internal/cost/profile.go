// Package cost models every latency that Optimus' scheduler reasons about:
// sandbox/runtime initialization, model deserialization, model-structure
// loading, weight assignment, inference compute, and the execution time of
// the five in-container transformation meta-operators.
//
// The paper measures these on a real testbed (modified TensorFlow in Docker
// on Xeon servers). This package substitutes an analytic model calibrated to
// the paper's reported *relative* numbers:
//
//   - model loading dominates request time (>50 %, Fig 2) and >74 % of cold
//     startup for VGG16 (Fig 1);
//   - structure loading ≈ 90 % of model loading, weight assignment ≈ 10 %,
//     deserialization negligible (Fig 3);
//   - CONV loads ~10× slower than activation; a 3×3 conv over 512 channels
//     loads ~1.79× slower than over 64 channels (Fig 4);
//   - reshaping a conv costs about ⅓ of loading it from scratch (Fig 5c);
//   - Replace cost scales with destination weight bytes, Add with the
//     destination op's load cost, Reduce is a small constant, Edge is
//     negligible (Fig 8).
//
// All scheduling behaviour in the reproduction depends only on these ratios,
// never on the absolute values.
package cost

import (
	"time"

	"repro/internal/model"
)

// Profile is a hardware/runtime latency profile. Rates are expressed in
// nanoseconds per unit so that costs can be computed in float64 and rounded
// to time.Duration once.
type Profile struct {
	// Name identifies the profile ("cpu", "gpu").
	Name string

	// SandboxInit is the sandbox + runtime initialization latency: container
	// creation, language runtime boot, and ML framework import (step 1 in
	// Fig 1). Pagurus-style container sharing saves this whole term;
	// Tetris-style forking still pays the ContainerCreate portion.
	SandboxInit time.Duration
	// ContainerCreate is the portion of SandboxInit spent creating the
	// container itself (namespaces, cgroups, network) — unavoidable for any
	// scheme that starts a *new* container, even with a memory-mapped
	// runtime.
	ContainerCreate time.Duration

	// DeserializeBase and DeserializePerByte model reading and decoding the
	// serialized model file (negligible per Fig 3).
	DeserializeBase    time.Duration
	DeserializePerByte float64 // ns per serialized byte

	// StructBase holds the per-operation-type base cost of instantiating the
	// operation in the computational graph.
	StructBase map[model.OpType]time.Duration
	// StructPerWeight is the tensor-allocation cost per weight scalar that
	// makes big convolutions slower to instantiate than small ones.
	StructPerWeight float64 // ns per weight

	// AssignPerByte is the cost of copying deserialized weights into the
	// instantiated structure.
	AssignPerByte float64 // ns per weight byte

	// ComputeBase and ComputePerWeight model inference latency.
	ComputeBase      time.Duration
	ComputePerWeight float64 // ns per weight

	// RuntimeMemMB and MemPerWeightByte model a container's memory footprint
	// (runtime + framework + loaded model). Used by the fine-grained
	// resource-allocation mode (§6 Limitation 1).
	RuntimeMemMB     int
	MemPerWeightByte float64

	// Meta-operator parameters (§4.3 / Fig 8).
	ReplaceBase    time.Duration
	ReplacePerByte float64 // ns per destination weight byte
	// ReshapeBase applies to weighted operations (tensor re-allocation);
	// ReshapeWeightlessBase to weight-free ones (a property update only).
	ReshapeBase           time.Duration
	ReshapeWeightlessBase time.Duration
	// Growing a weight tensor re-allocates and rewrites it (rate close to
	// structure allocation); shrinking is a cheap view/copy. This asymmetry
	// is what makes large→small transformations cheaper than small→large
	// (§8.2 observation 2).
	ReshapePerWeightGrow   float64 // ns per grown weight
	ReshapePerWeightShrink float64 // ns per shrunk weight
	// ReshapeMaxRatio bounds how far a Reshape may scale each *channel
	// dimension* (in/out) of a weighted operation: beyond it the "reshape"
	// is a wholesale rebuild and the planner must delete+add instead.
	// Kernel-size scaling is unrestricted — the strawman's 1×1→5×5 conv
	// (Fig 5b) is the paper's canonical reshape. At the default 6× the BERT
	// size ladder (Tiny 128 ↔ Base 768, §5.2 Example 1) stays reshapeable
	// while a transformer FFN cannot morph into VGG's 25088-wide classifier
	// head. 0 disables the bound.
	ReshapeMaxRatio float64
	ReduceCostPer   time.Duration
	AddBase         time.Duration
	EdgeCostPer     time.Duration
}

// CPU returns the default CPU latency profile, calibrated to the ratios in
// the paper's Figures 1-5 and 8 (see package comment).
func CPU() *Profile {
	return &Profile{
		Name:               "cpu",
		SandboxInit:        200 * time.Millisecond,
		ContainerCreate:    80 * time.Millisecond,
		DeserializeBase:    2 * time.Millisecond,
		DeserializePerByte: 0.01,
		StructBase: map[model.OpType]time.Duration{
			model.OpInput:           200 * time.Microsecond,
			model.OpOutput:          200 * time.Microsecond,
			model.OpConv2D:          8 * time.Millisecond,
			model.OpDepthwiseConv2D: 6 * time.Millisecond,
			model.OpDense:           6 * time.Millisecond,
			model.OpBatchNorm:       1500 * time.Microsecond,
			model.OpMaxPool:         1 * time.Millisecond,
			model.OpAvgPool:         1 * time.Millisecond,
			model.OpGlobalAvgPool:   1 * time.Millisecond,
			model.OpAdd:             700 * time.Microsecond,
			model.OpConcat:          900 * time.Microsecond,
			model.OpFlatten:         500 * time.Microsecond,
			model.OpDropout:         400 * time.Microsecond,
			model.OpReLU:            800 * time.Microsecond,
			model.OpSigmoid:         800 * time.Microsecond,
			model.OpTanh:            800 * time.Microsecond,
			model.OpGELU:            900 * time.Microsecond,
			model.OpSoftmax:         900 * time.Microsecond,
			model.OpSwish:           900 * time.Microsecond,
			model.OpEmbedding:       5 * time.Millisecond,
			model.OpLayerNorm:       1200 * time.Microsecond,
			model.OpQuery:           6 * time.Millisecond,
			model.OpKey:             6 * time.Millisecond,
			model.OpValue:           6 * time.Millisecond,
			model.OpAttnOutput:      6 * time.Millisecond,
			model.OpLogit:           900 * time.Microsecond,
			model.OpAttend:          900 * time.Microsecond,
			model.OpLSTM:            9 * time.Millisecond,
			model.OpGRU:             8 * time.Millisecond,
			model.OpCRF:             3 * time.Millisecond,
			model.OpIdentity:        300 * time.Microsecond,
			model.OpZero:            200 * time.Microsecond,
		},
		StructPerWeight:        2.74, // calibrated: conv3x3@512 ≈ 1.79× conv3x3@64
		AssignPerByte:          0.25,
		ComputeBase:            10 * time.Millisecond,
		ComputePerWeight:       1.0,
		RuntimeMemMB:           400,
		MemPerWeightByte:       2.0, // weights + activations + framework copies
		ReplaceBase:            200 * time.Microsecond,
		ReplacePerByte:         0.05,
		ReshapeBase:            2500 * time.Microsecond,
		ReshapeWeightlessBase:  300 * time.Microsecond,
		ReshapePerWeightGrow:   2.2, // calibrated: reshape ≈ ⅓ of load (Fig 5c)
		ReshapePerWeightShrink: 0.45,
		ReshapeMaxRatio:        6,
		ReduceCostPer:          500 * time.Microsecond,
		AddBase:                500 * time.Microsecond,
		EdgeCostPer:            50 * time.Microsecond,
	}
}

// GPU returns the GPU latency profile: much slower runtime initialization
// (CUDA context + framework GPU backend) and model loading onto the device,
// faster compute. Per §8.5 the GPU server's end-to-end latency is *longer*
// because of these initialization overheads.
func GPU() *Profile {
	p := CPU()
	p.Name = "gpu"
	p.SandboxInit = 2500 * time.Millisecond // CUDA runtime + device init
	// The CUDA context is per-container and cannot be memory-mapped from a
	// peer, so almost all of the GPU init survives Tetris-style forking.
	p.ContainerCreate = 2 * time.Second
	for t, d := range p.StructBase {
		p.StructBase[t] = d * 12 / 10 // kernel registration overhead
	}
	p.StructPerWeight = 3.4 // device tensor allocation
	p.AssignPerByte = 0.5   // host-to-device copy
	p.ComputeBase = 5 * time.Millisecond
	p.ComputePerWeight = 0.12
	p.ReplacePerByte = 0.12
	p.ReshapePerWeightGrow = 2.8
	p.ReshapePerWeightShrink = 0.6
	return p
}

func dur(ns float64) time.Duration {
	if ns < 0 {
		ns = 0
	}
	return time.Duration(ns)
}

// OpStructureLoad returns the latency of instantiating one operation in the
// computational graph (Fig 4).
func (p *Profile) OpStructureLoad(op *model.Operation) time.Duration {
	base := p.StructBase[op.Type]
	return base + dur(p.StructPerWeight*float64(op.WeightCount()))
}

// OpWeightAssign returns the latency of assigning the operation's weights
// into its instantiated structure.
func (p *Profile) OpWeightAssign(op *model.Operation) time.Duration {
	return dur(p.AssignPerByte * float64(op.WeightBytes()))
}

// OpLoad returns the full latency of creating the operation from scratch:
// structure instantiation plus weight assignment. This is also the dominant
// term of the Add meta-operator.
func (p *Profile) OpLoad(op *model.Operation) time.Duration {
	return p.OpStructureLoad(op) + p.OpWeightAssign(op)
}

// LoadBreakdown decomposes model loading into the three parts of §3.2.
type LoadBreakdown struct {
	Deserialize time.Duration
	Structure   time.Duration
	Weights     time.Duration
}

// Total returns the end-to-end model loading latency.
func (b LoadBreakdown) Total() time.Duration {
	return b.Deserialize + b.Structure + b.Weights
}

// ModelLoad computes the model-loading breakdown for a graph.
func (p *Profile) ModelLoad(g *model.Graph) LoadBreakdown {
	var b LoadBreakdown
	var bytes int64
	for _, op := range g.Ops() {
		b.Structure += p.OpStructureLoad(op)
		b.Weights += p.OpWeightAssign(op)
		bytes += op.WeightBytes()
	}
	b.Deserialize = p.DeserializeBase + dur(p.DeserializePerByte*float64(bytes))
	return b
}

// ColdStart returns the latency of serving the first request on a brand-new
// container: sandbox/runtime init plus full model load (steps 1-2 of Fig 1;
// compute excluded).
func (p *Profile) ColdStart(g *model.Graph) time.Duration {
	return p.SandboxInit + p.ModelLoad(g).Total()
}

// MemoryMB returns the container memory footprint of hosting g: the runtime
// base plus a multiple of the model's weight bytes (framework bookkeeping,
// activations). Fine-grained allocation (§6) sizes containers with this.
func (p *Profile) MemoryMB(g *model.Graph) int {
	var bytes int64
	for _, op := range g.Ops() {
		bytes += op.WeightBytes()
	}
	return p.RuntimeMemMB + int(p.MemPerWeightByte*float64(bytes)/(1<<20))
}

// Compute returns the inference latency of one request against the model.
func (p *Profile) Compute(g *model.Graph) time.Duration {
	var w int64
	for _, op := range g.Ops() {
		if op.HasWeights() {
			w += op.WeightCount()
		}
	}
	return p.ComputeBase + dur(p.ComputePerWeight*float64(w))
}

// ReplaceCost returns the execution time of the Replace meta-operator:
// overwriting an operation's weights with the destination weights.
func (p *Profile) ReplaceCost(dst *model.Operation) time.Duration {
	if !dst.HasWeights() {
		return 0
	}
	return p.ReplaceBase + dur(p.ReplacePerByte*float64(dst.WeightBytes()))
}

// ReshapeCost returns the execution time of the Reshape meta-operator:
// resizing an operation's properties (kernel size, channel count, ...)
// in place. It does not include replacing the weights; substitution of a
// weighted op pays ReshapeCost + ReplaceCost.
func (p *Profile) ReshapeCost(src, dst *model.Operation) time.Duration {
	if !dst.Type.HasWeights() {
		return p.ReshapeWeightlessBase
	}
	sw, dw := src.WeightCount(), dst.WeightCount()
	if dw > sw {
		return p.ReshapeBase + dur(p.ReshapePerWeightGrow*float64(dw-sw))
	}
	return p.ReshapeBase + dur(p.ReshapePerWeightShrink*float64(sw-dw))
}

// Reshapeable reports whether src may be reshaped into dst at all: same
// type, and (for weighted operations) a weight-count ratio within
// ReshapeMaxRatio.
func (p *Profile) Reshapeable(src, dst *model.Operation) bool {
	if src.Type != dst.Type {
		return false
	}
	if !dst.Type.HasWeights() || p.ReshapeMaxRatio <= 0 {
		return true
	}
	within := func(a, b int) bool {
		if a <= 0 || b <= 0 {
			return a == b
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return float64(hi) <= p.ReshapeMaxRatio*float64(lo)
	}
	return within(src.Shape.InChannels, dst.Shape.InChannels) &&
		within(src.Shape.OutChannels, dst.Shape.OutChannels)
}

// ReduceCost returns the execution time of the Reduce meta-operator
// (deleting an operation). Constant per the paper's profiling (§4.4).
func (p *Profile) ReduceCost(src *model.Operation) time.Duration {
	return p.ReduceCostPer
}

// AddCost returns the execution time of the Add meta-operator: creating the
// destination operation from scratch inside the container.
func (p *Profile) AddCost(dst *model.Operation) time.Duration {
	return p.AddBase + p.OpLoad(dst)
}

// EdgeCost returns the execution time of n Edge meta-operator applications
// (rewiring dataflow edges). Negligible per the paper's profiling.
func (p *Profile) EdgeCost(n int) time.Duration {
	return time.Duration(n) * p.EdgeCostPer
}

// SubstituteCost returns the cost of transforming source operation src into
// destination operation dst via Replace and/or Reshape, and whether such a
// substitution is possible at all. Per §4.4's first observation, operations
// of different types cannot be substituted.
func (p *Profile) SubstituteCost(src, dst *model.Operation) (time.Duration, bool) {
	if src.Type != dst.Type {
		return 0, false
	}
	if src.Shape == dst.Shape {
		if src.WeightsID == dst.WeightsID {
			return 0, true // already identical
		}
		return p.ReplaceCost(dst), true
	}
	if !p.Reshapeable(src, dst) {
		return 0, false
	}
	c := p.ReshapeCost(src, dst)
	if dst.HasWeights() {
		c += p.ReplaceCost(dst)
	}
	return c, true
}
