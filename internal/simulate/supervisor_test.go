package simulate_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
)

// supervisedPairScenario drives a 1-node/1-container Online cluster through
// alternating invocations of two functions, so every invocation after the
// first attempts a repurposing transform of the single resident container
// (resnet18↔resnet34, the same forced-transform setup the fault tests use).
func supervisedPairScenario(t *testing.T, cfg simulate.Config, n int) (*simulate.Online, []metrics.Record) {
	t.Helper()
	cfg.Policy = policy.Optimus{}
	cfg.Nodes = 1
	cfg.ContainersPerNode = 1
	fns := testFunctions(t, "resnet18-imagenet", "resnet34-imagenet")
	o := simulate.NewOnline(cfg, fns)
	var recs []metrics.Record
	for i := 0; i < n; i++ {
		name := fns[i%2].Name
		rec, err := o.Invoke(name, time.Duration(i)*2*time.Minute)
		if err != nil {
			t.Fatalf("invoke %d (%s): %v", i, name, err)
		}
		recs = append(recs, rec)
	}
	return o, recs
}

// TestBreakerOpensAfterExactlyN: with rate-1 transform faults and threshold
// 2, each (src→dst) pair fails exactly twice through the safeguard fallback,
// then opens; every later attempt for the pair short-circuits straight to a
// from-scratch load with the StartBreaker kind. Alternating two functions on
// one container exercises both pair directions independently.
func TestBreakerOpensAfterExactlyN(t *testing.T) {
	cfg := simulate.Config{
		Faults:  faults.Rates{Transform: 1},
		Breaker: supervisor.BreakerConfig{Threshold: 2, Cooldown: 24 * time.Hour},
	}
	o, recs := supervisedPairScenario(t, cfg, 7)

	wantKinds := []metrics.StartKind{
		metrics.StartCold,     // first arrival, empty cluster
		metrics.StartFallback, // r18→r34 failure 1
		metrics.StartFallback, // r34→r18 failure 1
		metrics.StartFallback, // r18→r34 failure 2 → opens
		metrics.StartFallback, // r34→r18 failure 2 → opens
		metrics.StartBreaker,  // r18→r34 short-circuited
		metrics.StartBreaker,  // r34→r18 short-circuited
	}
	for i, rec := range recs {
		if rec.Kind != wantKinds[i] {
			t.Fatalf("invocation %d kind = %v, want %v (all: %v)", i, rec.Kind, wantKinds[i], kinds(recs))
		}
	}
	b := o.Breaker()
	if st := b.State("resnet18-imagenet", "resnet34-imagenet"); st != supervisor.BreakerOpen {
		t.Fatalf("r18→r34 state = %v, want open", st)
	}
	bs := b.Stats()
	if bs.Opens != 2 || bs.ShortCircuits != 2 || bs.Probes != 0 {
		t.Fatalf("breaker stats = %+v, want 2 opens, 2 short-circuits, 0 probes", bs)
	}
	var fs metrics.FaultStats
	o.ReadCollector(func(c *metrics.Collector) { fs = c.Faults })
	if fs.TransformFallbacks != 4 || fs.BreakerShortCircuits != 2 {
		t.Fatalf("fault stats = %+v, want 4 fallbacks, 2 short-circuits", fs)
	}
}

// TestBreakerRunsByteIdentical: two runs with the same seed and flags
// produce identical records and fault tallies.
func TestBreakerRunsByteIdentical(t *testing.T) {
	run := func() ([]metrics.Record, metrics.FaultStats, supervisor.BreakerStats) {
		cfg := simulate.Config{
			Seed:    7,
			Faults:  faults.Rates{Transform: 1, Hang: 0.5},
			Breaker: supervisor.BreakerConfig{Threshold: 2, Cooldown: 24 * time.Hour},
		}
		o, recs := supervisedPairScenario(t, cfg, 9)
		var fs metrics.FaultStats
		o.ReadCollector(func(c *metrics.Collector) { fs = c.Faults })
		return recs, fs, o.Breaker().Stats()
	}
	r1, f1, b1 := run()
	r2, f2, b2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("records differ between identical runs:\n%v\n%v", r1, r2)
	}
	if f1 != f2 {
		t.Fatalf("fault stats differ: %+v vs %+v", f1, f2)
	}
	if b1 != b2 {
		t.Fatalf("breaker stats differ: %+v vs %+v", b1, b2)
	}
}

// TestBreakerHalfOpenProbeCloses: a pair seeded open recovers through the
// half-open probe when the next (healthy, zero fault rate) transform
// succeeds.
func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	cfg := simulate.Config{
		Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 1,
		Breaker: supervisor.BreakerConfig{Threshold: 1, Cooldown: time.Minute},
	}
	fns := testFunctions(t, "resnet18-imagenet", "resnet34-imagenet")
	o := simulate.NewOnline(cfg, fns)
	b := o.Breaker()
	b.RecordFailure("resnet18-imagenet", "resnet34-imagenet", 0)
	if st := b.State("resnet18-imagenet", "resnet34-imagenet"); st != supervisor.BreakerOpen {
		t.Fatalf("seeded state = %v, want open", st)
	}

	if _, err := o.Invoke("resnet18-imagenet", 0); err != nil {
		t.Fatal(err)
	}
	// Past the cooldown, the r18→r34 attempt goes through as the half-open
	// probe; with zero fault rates it succeeds and closes the breaker.
	rec, err := o.Invoke("resnet34-imagenet", 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != metrics.StartTransform {
		t.Fatalf("probe invocation kind = %v, want transform", rec.Kind)
	}
	if st := b.State("resnet18-imagenet", "resnet34-imagenet"); st != supervisor.BreakerClosed {
		t.Fatalf("post-probe state = %v, want closed", st)
	}
	bs := b.Stats()
	if bs.Probes != 1 || bs.Closes != 1 {
		t.Fatalf("breaker stats = %+v, want 1 probe, 1 close", bs)
	}
}

// TestHangWithAndWithoutWatchdog: an injected hang without a watchdog stalls
// the transform for HangFactor× its plan but still completes it; with a
// watchdog it is cancelled at Factor× the plan and charged the safeguard
// fallback under the StartTimeout kind. The arithmetic ties the two runs to
// the same planned cost.
func TestHangWithAndWithoutWatchdog(t *testing.T) {
	prof := cost.CPU()
	fns := testFunctions(t, "resnet18-imagenet", "resnet34-imagenet")
	planned := func(o *simulate.Online) time.Duration {
		env := o.Env()
		plan := env.Plans.GetOrPlan(env.Planner, fns[0].Model, fns[1].Model)
		return plan.TrueCost(prof, fns[0].Model)
	}

	base := simulate.Config{Faults: faults.Rates{Hang: 1}}
	oOff, recsOff := supervisedPairScenario(t, base, 2)
	hung := recsOff[1]
	if hung.Kind != metrics.StartTransform {
		t.Fatalf("undetected hang kind = %v, want transform", hung.Kind)
	}
	p := planned(oOff)
	if want := time.Duration(float64(p) * 10); hung.Load != want {
		t.Fatalf("undetected hang load = %v, want 10×plan = %v", hung.Load, want)
	}
	var fsOff metrics.FaultStats
	oOff.ReadCollector(func(c *metrics.Collector) { fsOff = c.Faults })
	if fsOff.Hangs != 1 || fsOff.WatchdogCancels != 0 {
		t.Fatalf("watchdog-off fault stats = %+v", fsOff)
	}

	wd := simulate.Config{Faults: faults.Rates{Hang: 1}, WatchdogFactor: 2}
	oOn, recsOn := supervisedPairScenario(t, wd, 2)
	cancelled := recsOn[1]
	if cancelled.Kind != metrics.StartTimeout {
		t.Fatalf("watchdog-cancelled hang kind = %v, want timeout", cancelled.Kind)
	}
	scratch := prof.ModelLoad(fns[1].Model).Total()
	if want := time.Duration(float64(p)*2) + scratch; cancelled.Load != want {
		t.Fatalf("cancelled hang load = %v, want 2×plan + scratch = %v", cancelled.Load, want)
	}
	var fsOn metrics.FaultStats
	oOn.ReadCollector(func(c *metrics.Collector) { fsOn = c.Faults })
	if fsOn.Hangs != 1 || fsOn.WatchdogCancels != 1 {
		t.Fatalf("watchdog-on fault stats = %+v", fsOn)
	}
	if st := oOn.Watchdog().Stats(); st.Cancelled != 1 {
		t.Fatalf("watchdog stats = %+v, want 1 cancel", st)
	}
}

// TestSupervisorZeroRatesUnchanged: enabling the watchdog and breaker with
// zero fault rates leaves a healthy run byte-identical to the unsupervised
// baseline — the supervision layer only acts on failures.
func TestSupervisorZeroRatesUnchanged(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func(cfg simulate.Config) []metrics.Record {
		cfg.Policy = policy.Optimus{}
		cfg.Nodes = 2
		cfg.ContainersPerNode = 2
		col, err := simulate.New(cfg, fns).Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col.Records()
	}
	baseline := run(simulate.Config{})
	supervised := run(simulate.Config{
		WatchdogFactor: 2,
		Breaker:        supervisor.BreakerConfig{Threshold: 3},
	})
	if !reflect.DeepEqual(baseline, supervised) {
		t.Fatal("zero-rate supervised run diverged from the baseline")
	}
}

// TestWatchdogLeaseLifecycle: every served request issues a lease and
// completes it; crashes expire leases instead.
func TestWatchdogLeaseLifecycle(t *testing.T) {
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2,
		WatchdogFactor: 2,
		Faults:         faults.Rates{Crash: 0.05},
		Seed:           3,
	}, fns)
	if _, err := sim.Run(tr); err != nil {
		t.Fatal(err)
	}
	st := sim.Watchdog().Stats()
	if st.LeasesIssued == 0 {
		t.Fatal("no leases issued")
	}
	if st.LeasesCompleted+st.LeasesExpired != st.LeasesIssued {
		t.Fatalf("lease accounting leaks: %+v (active %d)", st, sim.Watchdog().Active())
	}
	if sim.Collector().Faults.Crashes > 0 && st.LeasesExpired == 0 {
		t.Fatal("crashes occurred but no lease expired")
	}
}

func kinds(recs []metrics.Record) []metrics.StartKind {
	out := make([]metrics.StartKind, len(recs))
	for i, r := range recs {
		out[i] = r.Kind
	}
	return out
}
