// Package regress_splitlock memorializes the PR 7 fan-out bug that
// motivated the unlockpath checker's split-lock rule: Tree.MemberLost
// originally read member.inflight in one critical section, released the
// lock, and re-acquired it to mark the member dead — a concurrent attach
// between the two sections could leave an in-flight child streaming from a
// member already marked dead. The fixed shape (one critical section, the
// check and the transition under the same hold) must stay silent so the
// production code's current form never regresses into a finding.
package regress_splitlock

import "sync"

type member struct {
	inflight int
	state    int
}

const (
	stateWarm = iota
	stateDead
)

type tree struct {
	mu      sync.Mutex
	members map[int]*member
}

// memberLostPreFix is the PR 7 shape before the fix: check under one hold,
// act under a second, with nothing between that could re-validate.
func (t *tree) memberLostPreFix(id int) bool {
	t.mu.Lock()
	m := t.members[id]
	busy := m.inflight > 0
	t.mu.Unlock()
	if busy {
		return false
	}
	t.mu.Lock() // want "re-acquired with no intervening call since the unlock at line \\d+"
	m.state = stateDead
	t.mu.Unlock()
	return true
}

// memberLostFixed is the shape the fix landed: one critical section, so the
// inflight check and the state transition can never interleave with a
// concurrent attach.
func (t *tree) memberLostFixed(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[id]
	if m.inflight > 0 {
		return false
	}
	m.state = stateDead
	return true
}
