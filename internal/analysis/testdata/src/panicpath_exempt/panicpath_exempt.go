// Package panicpath_exempt is the corrected-side fixture for the panicpath
// checker: identical naked panics, loaded under an exempt import path (the
// model zoo's must-style catalog), must produce no findings.
package panicpath_exempt

import "fmt"

func mustBuild(name string) string {
	if name == "" {
		panic(fmt.Sprintf("catalog: empty model name %q", name))
	}
	return name
}
