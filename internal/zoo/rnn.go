package zoo

import (
	"fmt"

	"repro/internal/model"
)

// RNNConfig describes a recurrent text model: an embedding, a stack of
// LSTM or GRU layers, and a dense classifier. §7 notes the meta-operator
// interfaces cover RNN models alongside CNN and transformer; this family
// exercises that path.
type RNNConfig struct {
	Name    string
	Cell    model.OpType // OpLSTM or OpGRU
	Layers  int
	Hidden  int
	Vocab   int
	Classes int
	// Scope seeds the weight identities (defaults to Name).
	Scope string
}

// RNN builds the recurrent model described by cfg.
func RNN(cfg RNNConfig) *model.Graph {
	if cfg.Cell != model.OpLSTM && cfg.Cell != model.OpGRU {
		panic(fmt.Sprintf("zoo: RNN cell must be lstm or gru, got %v", cfg.Cell))
	}
	scope := cfg.Scope
	if scope == "" {
		scope = cfg.Name
	}
	b := model.NewBuilder(cfg.Name, "rnn", scope)
	b.Add(model.Operation{Name: "input", Type: model.OpInput, Shape: model.Shape{OutChannels: cfg.Hidden}})
	b.Add(model.Operation{Name: "emb.token", Type: model.OpEmbedding,
		Shape: model.Shape{InChannels: cfg.Vocab, OutChannels: cfg.Hidden}})
	b.Add(model.Operation{Name: "emb.drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: cfg.Hidden}})
	in := cfg.Hidden
	for l := 0; l < cfg.Layers; l++ {
		b.Add(model.Operation{Name: fmt.Sprintf("rnn%d", l+1), Type: cfg.Cell,
			Shape: model.Shape{InChannels: in, OutChannels: cfg.Hidden}})
		b.Add(model.Operation{Name: fmt.Sprintf("rnn%d.drop", l+1), Type: model.OpDropout,
			Shape: model.Shape{OutChannels: cfg.Hidden}})
		in = cfg.Hidden
	}
	b.Dense("fc", cfg.Hidden, cfg.Classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: cfg.Classes}})
	b.Output(cfg.Classes)
	return b.Graph()
}

// rnnVariants is the RNN text-classification catalog: two cell types ×
// three size points, sharing a 30k vocabulary.
var rnnVariants = []RNNConfig{
	{Name: "lstm-1x128", Cell: model.OpLSTM, Layers: 1, Hidden: 128, Vocab: 30000, Classes: 4},
	{Name: "lstm-2x256", Cell: model.OpLSTM, Layers: 2, Hidden: 256, Vocab: 30000, Classes: 4},
	{Name: "lstm-2x512", Cell: model.OpLSTM, Layers: 2, Hidden: 512, Vocab: 30000, Classes: 4},
	{Name: "gru-1x128", Cell: model.OpGRU, Layers: 1, Hidden: 128, Vocab: 30000, Classes: 4},
	{Name: "gru-2x256", Cell: model.OpGRU, Layers: 2, Hidden: 256, Vocab: 30000, Classes: 4},
	{Name: "gru-2x512", Cell: model.OpGRU, Layers: 2, Hidden: 512, Vocab: 30000, Classes: 4},
}

// RNNNames returns the RNN catalog names in order.
func RNNNames() []string {
	out := make([]string, len(rnnVariants))
	for i, v := range rnnVariants {
		out[i] = v.Name
	}
	return out
}

// RNNZoo returns the registry of RNN text models.
func RNNZoo() *Registry {
	r := NewRegistry()
	for _, v := range rnnVariants {
		v := v
		r.Register(v.Name, func() *model.Graph { return RNN(v) })
	}
	return r
}
