package simulate_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fanout"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// overlapRates places eight functions on two would-be groups ({0,1} and
// {2,3}) plus one rare "bridge" function spanning {1,2}, which connects the
// groups into a single component: RunSharded must refuse this placement, and
// windowed replay parallelizes exactly the windows where the bridge is
// inactive.
func overlapRates() (names []string, rates map[string]float64, placement map[string][]int) {
	names = append([]string(nil), shardedNames...)
	placement = map[string][]int{}
	rates = map[string]float64{}
	for i, n := range names {
		if i < 4 {
			placement[n] = []int{0, 1}
		} else {
			placement[n] = []int{2, 3}
		}
		rates[n] = 0.02
	}
	bridge := names[3]
	placement[bridge] = []int{1, 2}
	rates[bridge] = 0.0004
	return names, rates, placement
}

func overlapConfig() simulate.Config {
	_, _, placement := overlapRates()
	return simulate.Config{
		Policy: policy.Optimus{}, Nodes: 4, ContainersPerNode: 3,
		Placement: placement,
		Seed:      17,
	}
}

// TestRunStreamMatchesRun is the streaming-engine identity: replaying the
// same trace through RunStream (constant-memory summary) and Run (record
// collector) must produce byte-identical summaries — digest state, exact
// sums, kind counts, fault tallies.
func TestRunStreamMatchesRun(t *testing.T) {
	names, rates, _ := overlapRates()
	fns := testFunctions(t, names...)
	cfg := overlapConfig()
	tr := workload.PoissonRates(rates, 6*time.Hour, 41)
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	serialSim := simulate.New(cfg, fns)
	col, err := serialSim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	streamSim := simulate.New(cfg, fns)
	sum, err := streamSim.RunStream(tr.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if want := *metrics.SummaryOf(col); *sum != want {
		t.Fatalf("streamed summary != collector summary:\nstream count=%d mean=%v p99=%v\nrun    count=%d mean=%v p99=%v",
			sum.Count(), sum.MeanLatency(), sum.Percentile(99),
			want.Count(), want.MeanLatency(), want.Percentile(99))
	}
	if streamSim.Collector().Len() != 0 {
		t.Fatalf("streaming run retained %d records", streamSim.Collector().Len())
	}
	// The lazy generator source must agree with the materialized trace too
	// (the workload package proves byte-identity; this pins the whole path).
	genSim := simulate.New(cfg, fns)
	gsum, err := genSim.RunStream(workload.StreamPoissonRates(rates, 6*time.Hour, 41))
	if err != nil {
		t.Fatal(err)
	}
	if *gsum != *sum {
		t.Fatal("generator-fed stream != trace-fed stream")
	}
}

// TestWindowedMatchesSerial is the optimistic-parallelism equivalence proof:
// on a placement RunSharded refuses (one connected component via the bridge
// function), windowed replay must still split most windows into independent
// partitions and produce a summary byte-identical to the serial engine's.
func TestWindowedMatchesSerial(t *testing.T) {
	names, rates, _ := overlapRates()
	fns := testFunctions(t, names...)
	cfg := overlapConfig()
	dur := 6 * time.Hour

	tr := workload.PoissonRates(rates, dur, 23)
	if _, rep, err := simulate.RunSharded(cfg, fns, tr, 4); err != nil {
		t.Fatal(err)
	} else if rep.Sharded() {
		t.Fatal("placement unexpectedly shardable; the windowed test needs a connected component")
	}

	serial, err := simulate.New(cfg, fns).RunStream(workload.StreamPoissonRates(rates, dur, 23))
	if err != nil {
		t.Fatal(err)
	}
	win, rep, err := simulate.RunWindowed(cfg, fns, workload.StreamPoissonRates(rates, dur, 23), dur, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Windowed() {
		t.Fatalf("expected windowed run, got serial: %q", rep.SerialReason)
	}
	if rep.ParallelWindows == 0 {
		t.Fatalf("no window parallelized: %+v", rep)
	}
	if rep.ConflictWindows == 0 {
		t.Fatalf("bridge function never forced a conflict window: %+v", rep)
	}
	if rep.MaxGroups < 2 {
		t.Fatalf("MaxGroups = %d, want >= 2", rep.MaxGroups)
	}
	if *win != *serial {
		t.Fatalf("windowed summary != serial summary:\nwindowed count=%d mean=%v p99=%v hit=%v\nserial   count=%d mean=%v p99=%v hit=%v\nreport %+v",
			win.Count(), win.MeanLatency(), win.Percentile(99), win.HitRatio(),
			serial.Count(), serial.MeanLatency(), serial.Percentile(99), serial.HitRatio(), rep)
	}
}

// TestWindowedCrossCheckOracle runs the lockstep serial oracle alongside the
// windowed engine; any divergence panics, so completing is the assertion.
func TestWindowedCrossCheckOracle(t *testing.T) {
	names, rates, _ := overlapRates()
	fns := testFunctions(t, names...)
	cfg := overlapConfig()
	cfg.CrossCheckWindows = true
	dur := 4 * time.Hour
	sum, rep, err := simulate.RunWindowed(cfg, fns, workload.StreamPoissonRates(rates, dur, 29), dur, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Windowed() || rep.ParallelWindows == 0 {
		t.Fatalf("oracle test did not exercise parallel windows: %+v", rep)
	}
	serial, err := simulate.New(cfg, fns).RunStream(workload.StreamPoissonRates(rates, dur, 29))
	if err != nil {
		t.Fatal(err)
	}
	if *sum != *serial {
		t.Fatal("cross-checked windowed summary != serial summary")
	}
}

// TestWindowedSerialFallbacks verifies every global coupling is detected and
// the fallback still equals a plain serial streaming run of the same config.
func TestWindowedSerialFallbacks(t *testing.T) {
	names, rates, _ := overlapRates()
	fns := testFunctions(t, names...)
	dur := 2 * time.Hour
	cases := []struct {
		name    string
		mut     func(*simulate.Config)
		windows int
		workers int
		reason  string
	}{
		{"faults", func(c *simulate.Config) { c.Faults = faults.Rates{Crash: 0.1, Outage: 0.01} }, 16, 4, "random stream"},
		{"online profiling", func(c *simulate.Config) { c.OnlineProfiling = 0.2 }, 16, 4, "online profiling"},
		{"fanout", func(c *simulate.Config) { c.Fanout = fanout.Config{Enabled: true} }, 16, 4, "fan-out"},
		{"health", func(c *simulate.Config) { c.Health = health.Config{Enabled: true} }, 16, 4, "health tracking"},
		{"one window", nil, 1, 4, "fewer than two windows"},
		{"one worker", nil, 16, 1, "workers=1"},
		{"single node", func(c *simulate.Config) { c.Nodes = 1; c.Placement = nil }, 16, 4, "single node"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := overlapConfig()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			sum, rep, err := simulate.RunWindowed(cfg, fns, workload.StreamPoissonRates(rates, dur, 7), dur, tc.windows, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Windowed() {
				t.Fatalf("expected serial fallback, got windowed run: %+v", rep)
			}
			if !strings.Contains(rep.SerialReason, tc.reason) {
				t.Errorf("reason %q does not mention %q", rep.SerialReason, tc.reason)
			}
			serial, err := simulate.New(cfg, fns).RunStream(workload.StreamPoissonRates(rates, dur, 7))
			if err != nil {
				t.Fatal(err)
			}
			if *sum != *serial {
				t.Fatal("fallback summary != serial streaming summary")
			}
			if sum.Count() == 0 {
				t.Error("fallback run produced no requests")
			}
		})
	}
}

// TestWindowedStress re-runs the windowed engine across seeds, window counts
// and worker counts on the conflicting placement — under -race this is the
// concurrency soak; every run must equal the serial engine exactly.
func TestWindowedStress(t *testing.T) {
	names, rates, _ := overlapRates()
	fns := testFunctions(t, names...)
	cfg := overlapConfig()
	dur := 3 * time.Hour
	for _, seed := range []int64{1, 2, 3} {
		serial, err := simulate.New(cfg, fns).RunStream(workload.StreamPoissonRates(rates, dur, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, shape := range []struct{ windows, workers int }{{8, 8}, {64, 2}, {200, 4}} {
			sum, rep, err := simulate.RunWindowed(cfg, fns, workload.StreamPoissonRates(rates, dur, seed),
				dur, shape.windows, shape.workers)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Windowed() {
				t.Fatalf("seed %d windows %d: serial fallback %q", seed, shape.windows, rep.SerialReason)
			}
			if *sum != *serial {
				t.Fatalf("seed %d windows=%d workers=%d: windowed != serial (count %d vs %d, mean %v vs %v)",
					seed, shape.windows, shape.workers, sum.Count(), serial.Count(), sum.MeanLatency(), serial.MeanLatency())
			}
		}
	}
}

// TestWindowedVerifyTransforms checks transform verification counters
// aggregate across partition workers exactly as in a serial run.
func TestWindowedVerifyTransforms(t *testing.T) {
	names, rates, _ := overlapRates()
	fns := testFunctions(t, names...)
	cfg := overlapConfig()
	cfg.VerifyTransforms = true
	dur := 4 * time.Hour
	serialSim := simulate.New(cfg, fns)
	if _, err := serialSim.RunStream(workload.StreamPoissonRates(rates, dur, 13)); err != nil {
		t.Fatal(err)
	}
	_, rep, err := simulate.RunWindowed(cfg, fns, workload.StreamPoissonRates(rates, dur, 13), dur, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformsVerified != serialSim.TransformsVerified {
		t.Errorf("verified transforms: windowed %d, serial %d", rep.TransformsVerified, serialSim.TransformsVerified)
	}
	if serialSim.TransformsVerified == 0 {
		t.Skip("workload produced no transforms to verify")
	}
}
