package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// WriteText renders findings one per line as file:line:col: [checker]
// message, with file paths relative to root when possible.
func WriteText(w io.Writer, root string, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n",
			relPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Checker, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable wire form of a finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// WriteJSON renders findings as a JSON array (empty array, not null, when
// clean) for archival and tooling.
func WriteJSON(w io.Writer, root string, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relPath(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Checker: f.Checker,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath shortens filename relative to root for stable, portable output.
func relPath(root, filename string) string {
	if root == "" {
		return filename
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || rel == "" {
		return filename
	}
	return filepath.ToSlash(rel)
}
