package model

import (
	"encoding/binary"
	"hash/fnv"
)

// StructureHash returns a 64-bit hash over the graph's structure (op types,
// shapes, and edges; weight identities excluded). Two graphs with equal
// structure hash are StructuralEqual with overwhelming probability; the plan
// cache keys transformation plans by (source hash, destination hash).
func (g *Graph) StructureHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(len(g.ops)))
	for _, op := range g.ops {
		writeInt(int64(op.Type))
		writeInt(int64(op.Shape.KernelH))
		writeInt(int64(op.Shape.KernelW))
		writeInt(int64(op.Shape.InChannels))
		writeInt(int64(op.Shape.OutChannels))
		writeInt(int64(op.Shape.Stride))
	}
	for _, e := range g.Edges() {
		writeInt(int64(e.From))
		writeInt(int64(e.To))
	}
	return h.Sum64()
}

// WeightsHash returns a 64-bit hash over the weight identities of all
// weighted operations, in ID order. Combined with StructureHash it fully
// identifies a model.
func (g *Graph) WeightsHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, op := range g.ops {
		if op.HasWeights() {
			binary.LittleEndian.PutUint64(buf[:], op.WeightsID)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// WeightsIDFor derives a deterministic weight identity for a named tensor of
// a named model. Zoo builders use it so that, for example, the shared BERT
// base layers of two downstream-task models get the *same* WeightsID (they
// really are the same pre-trained tensor) while independently trained layers
// get distinct IDs.
func WeightsIDFor(scope, tensor string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(scope))
	h.Write([]byte{0})
	h.Write([]byte(tensor))
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 is reserved for "no weights"
	}
	return id
}
