package supervisor

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metrics"
)

// CheckpointVersion is the on-disk format version; Load rejects mismatches so
// a format change never silently misparses an old file.
const CheckpointVersion = 1

// Checkpoint is the durable snapshot of an optimus-server: the registered
// model manifests, the cluster/container state, and the metrics counters.
// Written atomically (tmp+rename) so a crash mid-write leaves the previous
// snapshot intact.
type Checkpoint struct {
	Version int `json:"version"`
	// Models holds the registered models' JSON manifests verbatim, as stored
	// in the repository.
	Models []json.RawMessage `json:"models"`
	// Cluster is the simulated cluster's node and container state.
	Cluster ClusterState `json:"cluster"`
	// Metrics is the request-record history and fault tallies.
	Metrics MetricsState `json:"metrics"`
	// Shed and Panics carry the gateway's hardening counters across restarts.
	Shed   int64 `json:"shed"`
	Panics int64 `json:"panics"`
}

// ClusterState snapshots the simulated cluster in virtual time. Durations are
// serialized as int64 nanoseconds to keep the JSON stable and explicit.
type ClusterState struct {
	// ClockNS is the virtual clock at snapshot time, in nanoseconds.
	ClockNS int64       `json:"clock_ns"`
	Nodes   []NodeState `json:"nodes"`
	// Health snapshots the per-node health state machine, when tracking is
	// enabled. Additive and omitted when absent, so version-1 checkpoints
	// from builds without health tracking restore as all-healthy.
	Health []health.NodeSnapshot `json:"health,omitempty"`
}

// NodeState snapshots one worker node.
type NodeState struct {
	ID int `json:"id"`
	// DownUntilNS is the end of an in-progress outage (0 when healthy).
	DownUntilNS int64 `json:"down_until_ns"`
	// NextID seeds the node's container ID counter so restored and freshly
	// created containers never collide.
	NextID     int              `json:"next_id"`
	Containers []ContainerState `json:"containers"`
}

// ContainerState snapshots one container.
type ContainerState struct {
	ID int `json:"id"`
	// Function is the function (model) the container holds; restore
	// quarantines containers whose function is no longer registered.
	Function    string `json:"function"`
	MemMB       int    `json:"mem_mb"`
	BusyUntilNS int64  `json:"busy_until_ns"`
	LastDoneNS  int64  `json:"last_done_ns"`
	CreatedNS   int64  `json:"created_ns"`
}

// MetricsState snapshots the metrics collector.
type MetricsState struct {
	Records []metrics.Record   `json:"records"`
	Faults  metrics.FaultStats `json:"faults"`
}

// Save writes the checkpoint atomically: marshal to a temp file in the target
// directory, fsync-free rename over the destination. The injector (which may
// be nil) can fail the write deterministically via faults.CheckpointWrite; a
// failed or faulted write removes the temp file and leaves any previous
// checkpoint untouched.
func Save(path string, cp *Checkpoint, inj *faults.Injector) error {
	cp.Version = CheckpointVersion
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("create checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if inj.Fire(faults.CheckpointWrite) {
		tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint write to %s: injected write fault", path)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("close checkpoint temp file: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("commit checkpoint: %w", err)
	}
	return nil
}

// Load reads and validates a checkpoint. A missing file returns
// (nil, os.ErrNotExist)-wrapped error; a corrupt or version-mismatched file
// returns a descriptive error so the caller can fall back to a clean start.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("parse checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", path, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}
