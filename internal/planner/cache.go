package planner

import (
	"sync"
	"time"

	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Cache implements the planning-strategy cache of §4.4 Module 3: plans are
// computed offline when models register and read back at transformation time,
// so the online path does no planning work. Keys are (source structure hash,
// source weights hash, destination structure hash, destination weights hash)
// — two models with identical structure but different weights transform
// differently (Replace steps), so weights participate in the key.
//
// The cache is sharded by pair key into a power-of-two number of
// independently locked shards, so concurrent lookups from parallel planning
// workers and multi-gateway forwarding never serialize on one mutex (the
// pre-PR-9 hot path). Each shard keeps its own LRU list and singleflight
// table; a pair always hashes to the same shard, so per-pair semantics
// (dedup, eviction, counters) are unchanged.
//
// The cache is optionally bounded: NewCacheBounded evicts the least recently
// used plan once the bound is exceeded. Bounded caches keep a single shard so
// the LRU bound stays globally exact; the unbounded default — what the
// serving path uses — shards DefaultShards ways. Concurrent GetOrPlan calls
// for the same (src, dst) pair are deduplicated via singleflight: exactly one
// caller plans while the rest wait for its result, so a burst of
// registrations never repeats planning work.
//
// A cache may also carry a loader (SetLoader): the multi-gateway control
// plane installs one so a local miss pulls the plan from the pair's ring
// owner instead of re-running the planner — the cross-gateway extension of
// the same singleflight idea. Loader fills are counted as Remote, not
// Planned.
type Cache struct {
	shards []cacheShard
	mask   uint64

	// idsMu guards ids, the per-graph hash-pair memo shared by all shards.
	// Graphs handed out by the zoo registries are immutable by convention
	// (containers hold clones), so pointer-keyed memoization is safe and makes
	// the online cache lookup O(1) instead of re-hashing both graphs. Reads
	// vastly outnumber writes, hence the RWMutex.
	idsMu sync.RWMutex
	ids   map[*model.Graph]graphID

	// loader, when non-nil, is consulted on a miss before planning locally
	// (inside the singleflight, so at most one loader call per pair is in
	// flight). Set once via SetLoader before the cache sees concurrent use.
	loader func(src, dst *model.Graph) (*metaop.Plan, bool)
}

// DefaultShards is the shard count of an unbounded cache: a power of two
// comfortably above the planning worker-pool sizes the binaries run with.
const DefaultShards = 16

// cacheShard is one independently locked slice of the cache.
type cacheShard struct {
	mu sync.Mutex
	m  map[cacheKey]*lruEntry
	// head/tail order entries most-recently-used first; evictions pop the
	// tail. A hand-rolled list keeps the entry structs pointer-stable and
	// allocation-light.
	head, tail *lruEntry
	// limit bounds len(m); zero means unbounded.
	limit int
	// flights tracks in-progress GetOrPlan computations for singleflight
	// deduplication.
	flights map[cacheKey]*flight

	hits, misses int
	// planned counts plans actually computed through GetOrPlan; deduped
	// counts callers that piggybacked on another goroutine's in-flight
	// computation instead of planning themselves; remote counts plans pulled
	// through the loader instead of planned locally.
	planned, deduped, remote int
	// evictions counts plans dropped by the LRU bound.
	evictions int
	// planTimes is the per-pair planning-time telemetry recorded around every
	// Plan call GetOrPlan performs: a streaming log-linear digest (O(1) per
	// observation, no retained samples) with exact count/total/max.
	planTimes metrics.DurationDigest
}

type graphID struct{ structure, weights uint64 }

type cacheKey struct {
	src, dst graphID
}

// shardIndex mixes the key's four hashes down to a shard pick. The inputs are
// already avalanche-quality graph hashes, so xor-fold plus a rotation is
// enough to decorrelate the low bits.
func (k cacheKey) shardIndex(mask uint64) uint64 {
	h := k.src.structure ^ k.src.weights<<1 ^ k.dst.structure<<2 ^ k.dst.weights<<3
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & mask
}

// lruEntry is one cached plan on a shard's recency list.
type lruEntry struct {
	key        cacheKey
	plan       *metaop.Plan
	prev, next *lruEntry
}

// flight is one in-progress plan computation; waiters block on done.
type flight struct {
	done chan struct{}
	plan *metaop.Plan
}

// NewCache returns an empty, unbounded plan cache sharded DefaultShards ways.
func NewCache() *Cache { return NewCacheBounded(0) }

// NewCacheBounded returns an empty plan cache holding at most limit plans
// (LRU-evicted beyond it); limit <= 0 means unbounded. Bounded caches keep a
// single shard so the bound and eviction order are globally exact; unbounded
// caches shard DefaultShards ways.
func NewCacheBounded(limit int) *Cache {
	if limit < 0 {
		limit = 0
	}
	if limit > 0 {
		return NewCacheSharded(limit, 1)
	}
	return NewCacheSharded(0, DefaultShards)
}

// NewCacheSharded returns an empty plan cache with an explicit shard count,
// rounded up to the next power of two (minimum 1). A positive limit is split
// evenly across shards, so it is exact per shard and approximate globally;
// use NewCacheBounded for a globally exact bound.
func NewCacheSharded(limit, shards int) *Cache {
	if limit < 0 {
		limit = 0
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
		ids:    make(map[*model.Graph]graphID),
	}
	perShard := 0
	if limit > 0 {
		perShard = (limit + n - 1) / n
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[cacheKey]*lruEntry)
		s.flights = make(map[cacheKey]*flight)
		s.limit = perShard
	}
	return c
}

// SetLoader installs the remote-fill hook consulted on a local miss before
// planning (the multi-gateway owner-pull protocol). Call it once, before the
// cache sees concurrent use; a nil loader restores local-only planning.
func (c *Cache) SetLoader(loader func(src, dst *model.Graph) (*metaop.Plan, bool)) {
	c.loader = loader
}

// Shards returns the shard count (a power of two).
func (c *Cache) Shards() int { return len(c.shards) }

// idFor memoizes g's hash pair.
func (c *Cache) idFor(g *model.Graph) graphID {
	c.idsMu.RLock()
	id, ok := c.ids[g]
	c.idsMu.RUnlock()
	if ok {
		return id
	}
	id = graphID{structure: g.StructureHash(), weights: g.WeightsHash()}
	c.idsMu.Lock()
	c.ids[g] = id
	c.idsMu.Unlock()
	return id
}

func (c *Cache) keyFor(src, dst *model.Graph) cacheKey {
	return cacheKey{src: c.idFor(src), dst: c.idFor(dst)}
}

func (c *Cache) shardFor(k cacheKey) *cacheShard {
	return &c.shards[k.shardIndex(c.mask)]
}

// moveToFront must be called with s.mu held.
func (s *cacheShard) moveToFront(e *lruEntry) {
	if s.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	// Push front.
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// lookup must be called with s.mu held; it counts the hit/miss and
// freshens the LRU position.
func (s *cacheShard) lookup(k cacheKey) (*metaop.Plan, bool) {
	e, ok := s.m[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.moveToFront(e)
	return e.plan, true
}

// insert must be called with s.mu held; it stores (or refreshes) the plan
// and applies the LRU bound.
func (s *cacheShard) insert(k cacheKey, p *metaop.Plan) {
	if e, ok := s.m[k]; ok {
		e.plan = p
		s.moveToFront(e)
		return
	}
	e := &lruEntry{key: k, plan: p}
	s.m[k] = e
	s.moveToFront(e)
	for s.limit > 0 && len(s.m) > s.limit {
		back := s.tail
		if back == nil {
			break
		}
		if back.prev != nil {
			back.prev.next = nil
		}
		s.tail = back.prev
		if s.head == back {
			s.head = nil
		}
		delete(s.m, back.key)
		s.evictions++
	}
}

// Get returns the cached plan for src→dst, if any. Get never consults the
// loader: it reports strictly local occupancy.
func (c *Cache) Get(src, dst *model.Graph) (*metaop.Plan, bool) {
	k := c.keyFor(src, dst)
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookup(k)
}

// Put stores a plan for src→dst.
func (c *Cache) Put(src, dst *model.Graph, p *metaop.Plan) {
	k := c.keyFor(src, dst)
	s := c.shardFor(k)
	s.mu.Lock()
	s.insert(k, p)
	s.mu.Unlock()
}

// GetOrPlan returns the cached plan, pulls it through the loader (when one is
// installed), or computes and caches one with pl. Concurrent calls for the
// same pair resolve it exactly once: the first caller loads or plans, the
// rest wait for its result (singleflight).
func (c *Cache) GetOrPlan(pl *Planner, src, dst *model.Graph) *metaop.Plan {
	return c.getOrPlan(pl, src, dst, c.loader)
}

// GetOrPlanLocal is GetOrPlan without the loader: a miss always plans
// locally. The control plane uses it on the ring owner so an owner-side miss
// never forwards again (plan pulls are one hop, by construction).
func (c *Cache) GetOrPlanLocal(pl *Planner, src, dst *model.Graph) *metaop.Plan {
	return c.getOrPlan(pl, src, dst, nil)
}

func (c *Cache) getOrPlan(pl *Planner, src, dst *model.Graph, loader func(src, dst *model.Graph) (*metaop.Plan, bool)) *metaop.Plan {
	k := c.keyFor(src, dst)
	s := c.shardFor(k)
	s.mu.Lock()
	if p, ok := s.lookup(k); ok {
		s.mu.Unlock()
		return p
	}
	if f, ok := s.flights[k]; ok {
		s.deduped++
		s.mu.Unlock()
		<-f.done
		return f.plan
	}
	f := &flight{done: make(chan struct{})}
	s.flights[k] = f
	s.mu.Unlock()

	if loader != nil {
		if p, ok := loader(src, dst); ok {
			s.mu.Lock()
			s.insert(k, p)
			delete(s.flights, k)
			s.remote++
			s.mu.Unlock()
			f.plan = p
			close(f.done)
			return p
		}
	}

	t0 := time.Now() //optimus:allow wallclock — telemetry: measures real planning cost, never enters simulated time
	p := pl.Plan(src, dst)
	took := time.Since(t0) //optimus:allow wallclock — telemetry: pairs with the time.Now above

	s.mu.Lock()
	s.insert(k, p)
	delete(s.flights, k)
	s.planned++
	s.planTimes.Observe(took)
	s.mu.Unlock()

	f.plan = p
	close(f.done)
	return p
}

// FlightsQuiesce waits until a moment with no in-flight GetOrPlan
// computations: every singleflight started before the call has landed its
// plan in the cache. The control plane's drain handoff calls it so a
// draining gateway's cache enumeration misses nothing mid-computation.
// Callers must fence new work themselves (a drained member receives none).
func (c *Cache) FlightsQuiesce() {
	for {
		var pending []*flight
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			for _, f := range s.flights {
				pending = append(pending, f) //optimus:allow maprange — wait-set only: every collected flight is awaited, so order cannot affect state
			}
			s.mu.Unlock()
		}
		if len(pending) == 0 {
			return
		}
		for _, f := range pending {
			<-f.done
		}
	}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats returns cache hit and miss counts.
func (c *Cache) Stats() (hits, misses int) {
	ct := c.Counters()
	return ct.Hits, ct.Misses
}

// Counters is a point-in-time snapshot of the cache's bookkeeping, summed
// across shards.
type Counters struct {
	// Hits/Misses count lookups (Get and the read side of GetOrPlan).
	Hits, Misses int
	// Planned counts plans computed through GetOrPlan; Deduped counts
	// callers that waited on another goroutine's in-flight computation
	// (singleflight); Remote counts plans pulled through the loader (the
	// cross-gateway owner-pull path) instead of planned locally.
	// Planned+Remote+Deduped+Hits covers every GetOrPlan call.
	Planned, Deduped, Remote int
	// Evictions counts plans dropped by the LRU bound; Size and Limit
	// describe the current occupancy (Limit 0 = unbounded; a sharded bound is
	// the per-shard limit times the shard count).
	Evictions, Size, Limit int
	// Shards is the shard count (a power of two; 1 for bounded caches).
	Shards int
}

// Counters returns the cache's counter snapshot.
func (c *Cache) Counters() Counters {
	out := Counters{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Planned += s.planned
		out.Deduped += s.deduped
		out.Remote += s.remote
		out.Evictions += s.evictions
		out.Size += len(s.m)
		out.Limit += s.limit
		s.mu.Unlock()
	}
	return out
}

// PlanTimeStats is a snapshot of the per-pair planning-time telemetry.
type PlanTimeStats struct {
	// Count is the exact number of plans computed through GetOrPlan; Total
	// and Max are the exact sum and maximum of their planning durations.
	Count      int
	Total, Max time.Duration
	// P50/P95/P99 are streaming-digest percentiles (nearest-rank semantics,
	// ≤3.1% relative bucket error, P100-equivalent clamped to the exact max).
	P50, P95, P99 time.Duration
}

// PlanTimes summarizes the per-pair planning-time telemetry recorded by
// GetOrPlan, merging the per-shard streaming digests. O(1) in the number of
// plans: no samples are retained or sorted.
func (c *Cache) PlanTimes() PlanTimeStats {
	var merged metrics.DurationDigest
	count := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		d := s.planTimes
		count += s.planned
		s.mu.Unlock()
		merged.Merge(&d)
	}
	return PlanTimeStats{
		Count: count,
		Total: merged.Total(),
		Max:   merged.Max(),
		P50:   merged.Percentile(50),
		P95:   merged.Percentile(95),
		P99:   merged.Percentile(99),
	}
}
