// Command optimus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	optimus-bench [flags] <experiment>...
//	optimus-bench all
//
// Experiments: fig2 fig3 fig4 fig5a fig5c fig8 fig11 fig12 fig13 fig14
// fig15 fig16 table1, plus the ablations: ablation-planner,
// ablation-safeguard, ablation-cache, ablation-balancer, ablation-idle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cost"
	"repro/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "smaller samples and horizons for fast runs")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		seed    = flag.Int64("seed", 1, "random seed")
		gpu     = flag.Bool("gpu", false, "use the GPU hardware profile")
		nodes   = flag.Int("nodes", 4, "cluster nodes for the end-to-end experiments")
		slots   = flag.Int("containers", 4, "containers per node")
		horizon = flag.Duration("horizon", 24*time.Hour, "workload horizon for the end-to-end experiments")
		pairs   = flag.Int("pairs", 500, "random pairs for fig12")
		chaosRt = flag.String("chaos-rates", "", "comma-separated fault rates for the chaos/recovery sweeps (defaults per experiment)")
		outDir  = flag.String("out", ".", "directory for the bench experiment's BENCH_*.json artifacts")
		planWrk = flag.Int("plan-workers", 0, "parallel planning workers for the bench experiment (0 = GOMAXPROCS)")
		scaleN  = flag.Int("scale-requests", 0, "trace size for the scale experiment (0 = 1M, or 50k with -quick)")
		shards  = flag.Int("replay-shards", 0, "parallel replay workers for the scale experiment (0 = one per node group)")
		stream  = flag.Bool("stream", false, "add the constant-memory streaming section to the scale experiment")
		streamN = flag.Int("stream-requests", 0, "streaming replay size for scale -stream (0 = 10M, or 500k with -quick)")
		windows = flag.Int("replay-windows", 0, "time windows for the windowed streaming replay (0 = 32)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	fo := cliutil.RegisterFanoutFlags(flag.CommandLine)
	flag.Parse()
	if err := fo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	args := flag.Args()
	sweepRates, err := cliutil.ParseChaosRates(*chaosRt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: optimus-bench [flags] <experiment>... | all")
		fmt.Fprintln(os.Stderr, "experiments: fig2 fig3 fig4 fig5a fig5c fig8 fig11 fig12 fig13 fig14 fig15 fig16 table1")
		fmt.Fprintln(os.Stderr, "ablations:   ablation-planner ablation-safeguard ablation-cache ablation-balancer ablation-idle ablation-online ablation-alloc sweep-nodes sweep-load chaos recovery")
		fmt.Fprintln(os.Stderr, "baselines:   bench (emits BENCH_planner.json + BENCH_sim.json into -out)")
		fmt.Fprintln(os.Stderr, "             scale (replays one trace serial/indexed/sharded; emits BENCH_sim_scale.json into -out)")
		fmt.Fprintln(os.Stderr, "             soak (chaos soak, baseline vs resilient; emits BENCH_soak.json into -out)")
		fmt.Fprintln(os.Stderr, "             fanout (burst fan-out trees vs independent transforms; emits BENCH_fanout.json into -out)")
		fmt.Fprintln(os.Stderr, "             gateway (multi-gateway scaling + shared-vs-isolated plan cache; emits BENCH_gateway.json into -out)")
		fmt.Fprintln(os.Stderr, "             recovery also emits BENCH_recovery.json into -out")
		os.Exit(2)
	}

	o := experiments.Options{Seed: *seed, Quick: *quick}
	if *gpu {
		o.Profile = cost.GPU()
	}
	setup := experiments.ClusterSetup{Nodes: *nodes, ContainersPerNode: *slots, Horizon: *horizon}

	all := []string{"fig2", "fig3", "fig4", "fig5a", "fig5c", "fig8", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "table1",
		"ablation-planner", "ablation-safeguard", "ablation-cache", "ablation-balancer", "ablation-idle",
		"ablation-online", "ablation-alloc", "sweep-nodes", "sweep-load", "chaos", "recovery"}
	if len(args) == 1 && args[0] == "all" {
		args = all
	}

	// Fig 13/14 share one run; Fig 16 is its GPU twin.
	var fig13 *experiments.Fig13Result
	getFig13 := func() experiments.Fig13Result {
		if fig13 == nil {
			r := experiments.Fig13(o, setup)
			fig13 = &r
		}
		return *fig13
	}

	for _, a := range args {
		start := time.Now()
		var out string
		var result any
		switch a {
		case "fig2":
			r := experiments.Fig2(o)
			out, result = r.Render(), r
		case "fig3":
			r := experiments.Fig3(o, 100)
			out, result = r.Render(), r
		case "fig4":
			r := experiments.Fig4(o)
			out, result = r.Render(), r
		case "fig5a":
			r := experiments.Fig5a(o)
			out, result = r.Render(), r
		case "fig5c":
			r := experiments.Fig5c(o, nil, 0)
			out, result = r.Render(), r
		case "fig8":
			r := experiments.Fig8(o)
			out, result = r.Render(), r
		case "fig11":
			r := experiments.Fig11(o)
			out, result = r.Render(), r
		case "fig12":
			r := experiments.Fig12(o, *pairs)
			out, result = r.Render(), r
		case "fig13":
			r := getFig13()
			out, result = r.Render(), r
		case "fig14":
			r := getFig13()
			out, result = r.RenderFig14(), r
		case "fig15":
			r := experiments.Fig15(o)
			out, result = r.Render(), r
		case "fig16":
			r := experiments.Fig16(o, setup)
			out, result = r.Render(), r
		case "table1":
			r := experiments.Table1(o)
			out, result = r.Render(), r
		case "ablation-planner":
			r := experiments.AblationPlannerQuality(o, 50)
			out, result = r.Render(), r
		case "ablation-safeguard":
			r := experiments.AblationSafeguard(o, 50)
			out, result = r.Render(), r
		case "ablation-cache":
			r := experiments.AblationPlanCache(o, 1000)
			out, result = r.Render(), r
		case "ablation-balancer":
			r := experiments.AblationBalancer(o, setup)
			out, result = r.Render(), r
		case "ablation-idle":
			r := experiments.AblationIdleThreshold(o, setup, nil)
			out, result = r.Render(), r
		case "ablation-online":
			r := experiments.AblationOnlineProfiling(o, setup)
			out, result = r.Render(), r
		case "ablation-alloc":
			r := experiments.AblationAllocation(o, setup)
			out, result = r.Render(), r
		case "sweep-nodes":
			r := experiments.Scalability(o, nil, *horizon)
			out, result = r.Render(), r
		case "sweep-load":
			r := experiments.LoadSweep(o, nil, *horizon)
			out, result = r.Render(), r
		case "chaos":
			r := experiments.Chaos(o, sweepRates, *horizon)
			out, result = r.Render(), r
		case "recovery":
			r := experiments.Recovery(o, sweepRates, *horizon)
			if err := r.WriteFile(*outDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, result = r.Render(), r
		case "fanout":
			r := experiments.Fanout(o, fo.Config())
			if err := r.WriteFile(*outDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, result = r.Render(), r
		case "gateway":
			r := experiments.Gateway(o)
			if err := r.WriteFile(*outDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, result = r.Render(), r
		case "soak":
			r := experiments.Soak(o, *horizon)
			if err := r.WriteFile(*outDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, result = r.Render(), r
		case "bench":
			r := experiments.Bench(o, setup, *planWrk)
			if err := r.WriteFiles(*outDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, result = r.Render(), r
		case "scale":
			r := experiments.Scale(o, *scaleN, 0, *shards)
			if *stream {
				s := experiments.StreamScale(o, *streamN, 0, *windows, *shards)
				r.Stream = &s
			}
			if err := r.WriteFile(*outDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, result = r.Render(), r
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			os.Exit(2)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{"experiment": a, "result": result}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			fmt.Println(out)
			fmt.Printf("[%s completed in %v]\n\n", a, time.Since(start).Round(time.Millisecond))
		}
	}
}
