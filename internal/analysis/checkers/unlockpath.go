package checkers

import (
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/analysis"
)

// Unlockpath guards the two ways a manually managed mutex goes wrong. A
// Lock() without a defer Unlock() must release on every exit path — a
// branch that returns (or panics) still holding the lock wedges every
// later acquirer. And an Unlock() followed by a re-Lock() of the same
// mutex with no intervening function call is the split-lock check-then-act
// shape (the PR 7 fan-out bug: read state under the lock, drop it, branch,
// re-lock and mutate — the state read is stale by the time the second
// critical section runs). Deliberate short critical sections are
// recognizable by the work between them: any call between the unlock and
// the re-lock keeps the checker silent.
type Unlockpath struct{}

// NewUnlockpath returns the checker.
func NewUnlockpath() *Unlockpath { return &Unlockpath{} }

// Name implements analysis.Checker.
func (c *Unlockpath) Name() string { return "unlockpath" }

// Doc implements analysis.Checker.
func (c *Unlockpath) Doc() string {
	return "requires unlock on every exit path and flags unlock/re-lock pairs with no intervening call"
}

// Run implements analysis.Checker.
func (c *Unlockpath) Run(p *analysis.Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkBody(p, fd.Body)
			}
		}
	}
}

// checkBody analyzes one function (or function-literal pseudo-function)
// body, then recurses into its outermost literals.
func (c *Unlockpath) checkBody(p *analysis.Pass, body *ast.BlockStmt) {
	leaks := make(map[token.Pos]lockOp)
	w := &lockWalker{
		info: p.Info,
		onAcquire: func(op lockOp, st *lockState) {
			r, ok := st.released[op.key]
			if !ok || r.callsSince || r.op.read || op.read {
				return
			}
			p.Reportf(c.Name(), op.Pos(),
				"mutex %s re-acquired with no intervening call since the unlock at line %d: state checked between the critical sections can change — merge them or re-validate after re-locking",
				op.name, p.Fset.Position(r.op.Pos()).Line)
		},
		onExit: func(pos token.Pos, st *lockState) {
			for _, h := range st.heldLocks() {
				if h.deferred {
					continue
				}
				if _, seen := leaks[h.op.Pos()]; !seen {
					leaks[h.op.Pos()] = h.op
				}
			}
		},
	}
	w.walkFunc(body)

	positions := make([]token.Pos, 0, len(leaks))
	for pos := range leaks {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		op := leaks[pos]
		p.Reportf(c.Name(), pos,
			"mutex %s locked here is not released on every exit path: add defer %s or an unlock before each return",
			op.name, unlockName(op))
	}

	for _, lit := range funcLitsIn(body) {
		if lit.Body != nil {
			c.checkBody(p, lit.Body)
		}
	}
}

// unlockName renders the matching release call for a lock operation.
func unlockName(op lockOp) string {
	if op.read {
		return "RUnlock()"
	}
	return "Unlock()"
}
