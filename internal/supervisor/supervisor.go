// Package supervisor is the control plane's recovery layer: a per-pair
// circuit breaker that stops retrying systematically failing (src→dst)
// transformations, a watchdog that bounds in-flight transform time and
// per-container liveness in the simulator's virtual clock, and durable
// checkpoint/restore for the server (checkpoint.go).
//
// Everything here is deterministic: state advances only when callers pass in
// virtual-time instants, never from the wall clock, so a seeded run replays
// the exact same breaker and watchdog transitions.
package supervisor

import (
	"sort"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position in the classic three-state
// machine.
type BreakerState uint8

const (
	// BreakerClosed passes transform attempts through normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits attempts straight to a from-scratch load.
	BreakerOpen
	// BreakerHalfOpen lets a single probe attempt through after the cooldown;
	// its outcome decides between closing and re-opening.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes the per-pair circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive transform failures for one
	// (src→dst) pair that opens its breaker. Zero or negative disables the
	// breaker entirely (NewBreaker returns nil).
	Threshold int
	// Cooldown is how long an open breaker waits before letting a half-open
	// probe through. Zero or negative uses DefaultBreakerCooldown.
	Cooldown time.Duration
}

// DefaultBreakerCooldown is the open-state wait before a half-open probe when
// the config leaves Cooldown unset.
const DefaultBreakerCooldown = 5 * time.Minute

// BreakerStats tallies breaker transitions and short-circuits over a run.
type BreakerStats struct {
	// Opens counts closed→open transitions (threshold reached).
	Opens int
	// Reopens counts half-open probes that failed and re-opened the breaker.
	Reopens int
	// Closes counts half-open probes that succeeded and closed the breaker.
	Closes int
	// ShortCircuits counts transform attempts rejected by an open breaker.
	ShortCircuits int
	// Probes counts half-open probe attempts let through after the cooldown.
	Probes int
}

type pairState struct {
	fails    int
	state    BreakerState
	openedAt time.Duration
}

// Breaker is a set of per-(src→dst)-pair circuit breakers over model
// transformations. A nil *Breaker is valid: Allow always returns true and the
// record methods are no-ops, so callers thread it without nil checks. All
// methods are safe for concurrent use.
type Breaker struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	pairs map[[2]string]*pairState
	stats BreakerStats
}

// NewBreaker returns a breaker for the config, or nil when Threshold is
// unset (breaker disabled).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	return &Breaker{cfg: cfg, pairs: make(map[[2]string]*pairState)}
}

func (b *Breaker) pair(src, dst string) *pairState {
	key := [2]string{src, dst}
	p := b.pairs[key]
	if p == nil {
		p = &pairState{}
		b.pairs[key] = p
	}
	return p
}

// Allow reports whether a src→dst transform attempt may proceed at virtual
// time now. An open breaker past its cooldown admits the attempt as a
// half-open probe; otherwise open and half-open (probe already in flight)
// reject, counting a short-circuit.
func (b *Breaker) Allow(src, dst string, now time.Duration) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.pair(src, dst)
	switch p.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now-p.openedAt >= b.cfg.Cooldown {
			p.state = BreakerHalfOpen
			b.stats.Probes++
			return true
		}
		b.stats.ShortCircuits++
		return false
	default: // BreakerHalfOpen: probe already in flight.
		b.stats.ShortCircuits++
		return false
	}
}

// RecordFailure notes a failed (aborted or watchdog-cancelled) transform for
// the pair at virtual time now. In half-open it re-opens the breaker; in
// closed it opens once consecutive failures reach the threshold.
func (b *Breaker) RecordFailure(src, dst string, now time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.pair(src, dst)
	switch p.state {
	case BreakerHalfOpen:
		p.state = BreakerOpen
		p.openedAt = now
		b.stats.Reopens++
	case BreakerClosed:
		p.fails++
		if p.fails >= b.cfg.Threshold {
			p.state = BreakerOpen
			p.openedAt = now
			b.stats.Opens++
		}
	}
}

// RecordSuccess notes a completed transform for the pair: a half-open probe
// success closes the breaker, a closed-state success resets the consecutive
// failure count.
func (b *Breaker) RecordSuccess(src, dst string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.pair(src, dst)
	switch p.state {
	case BreakerHalfOpen:
		p.state = BreakerClosed
		p.fails = 0
		b.stats.Closes++
	case BreakerClosed:
		p.fails = 0
	}
}

// State returns the pair's current state (BreakerClosed for unseen pairs).
func (b *Breaker) State(src, dst string) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if p := b.pairs[[2]string{src, dst}]; p != nil {
		return p.state
	}
	return BreakerClosed
}

// Stats returns a snapshot of the transition tallies.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// OpenPairs lists the pairs currently open or half-open as "src→dst"
// strings, sorted, for stats reporting.
func (b *Breaker) OpenPairs() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for key, p := range b.pairs {
		if p.state != BreakerClosed {
			out = append(out, key[0]+"→"+key[1])
		}
	}
	sort.Strings(out)
	return out
}

// WatchdogConfig parameterizes the transform watchdog.
type WatchdogConfig struct {
	// Factor is the deadline multiplier: a transform exceeding Factor× its
	// planned cost is cancelled and charged the safeguard fallback. Values
	// at or below 1 disable the watchdog (NewWatchdog returns nil).
	Factor float64
}

// WatchdogStats tallies watchdog activity over a run.
type WatchdogStats struct {
	// Cancelled counts transforms cancelled at their deadline.
	Cancelled int
	// LeasesIssued counts container liveness leases granted.
	LeasesIssued int
	// LeasesCompleted counts leases released by normal completion.
	LeasesCompleted int
	// LeasesExpired counts leases revoked by a crash or node outage.
	LeasesExpired int
	// WaveCancels counts fan-out children cancelled because they would have
	// finished past their wave's virtual-time deadline (Factor× the expected
	// fault-free child cost, anchored at the wave's first start).
	WaveCancels int
}

// Watchdog bounds in-flight transform time and tracks per-container liveness
// leases, all in virtual time. A nil *Watchdog is valid and inert. Safe for
// concurrent use.
type Watchdog struct {
	mu     sync.Mutex
	factor float64
	leases map[int]time.Duration
	stats  WatchdogStats
}

// NewWatchdog returns a watchdog for the config, or nil when Factor is at or
// below 1 (disabled — a factor ≤1 would cancel healthy transforms).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Factor <= 1 {
		return nil
	}
	return &Watchdog{factor: cfg.Factor, leases: make(map[int]time.Duration)}
}

// Factor returns the deadline multiplier (0 for a nil watchdog).
func (w *Watchdog) Factor() float64 {
	if w == nil {
		return 0
	}
	return w.factor
}

// Deadline returns the cancellation deadline for a transform of the given
// planned cost: Factor× the plan.
func (w *Watchdog) Deadline(planned time.Duration) time.Duration {
	if w == nil {
		return planned
	}
	return time.Duration(float64(planned) * w.factor)
}

// RecordCancel tallies one deadline cancellation.
func (w *Watchdog) RecordCancel() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.stats.Cancelled++
	w.mu.Unlock()
}

// RecordWaveCancel tallies one fan-out child cancelled at its wave deadline.
func (w *Watchdog) RecordWaveCancel() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.stats.WaveCancels++
	w.mu.Unlock()
}

// Lease grants (or renews) a liveness lease for the container until the given
// virtual-time instant.
func (w *Watchdog) Lease(containerID int, until time.Duration) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if _, ok := w.leases[containerID]; !ok {
		w.stats.LeasesIssued++
	}
	w.leases[containerID] = until
	w.mu.Unlock()
}

// Complete releases the container's lease after normal completion.
func (w *Watchdog) Complete(containerID int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if _, ok := w.leases[containerID]; ok {
		delete(w.leases, containerID)
		w.stats.LeasesCompleted++
	}
	w.mu.Unlock()
}

// Expire revokes the container's lease after a crash or node outage.
func (w *Watchdog) Expire(containerID int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if _, ok := w.leases[containerID]; ok {
		delete(w.leases, containerID)
		w.stats.LeasesExpired++
	}
	w.mu.Unlock()
}

// Active returns the number of outstanding leases.
func (w *Watchdog) Active() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.leases)
}

// Stats returns a snapshot of the watchdog tallies.
func (w *Watchdog) Stats() WatchdogStats {
	if w == nil {
		return WatchdogStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
