package planner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/model"
)

// randomGraph builds a random small sequential-with-branches model graph
// from the given seed: a chain of conv/relu/bn/pool/dense ops with random
// shapes, plus occasional residual edges. Always valid (acyclic, weighted
// ops shaped).
func randomGraph(name string, seed int64, maxOps int) *model.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilder(name, "prop", name)
	n := 2 + rng.Intn(maxOps)
	width := 4 << rng.Intn(3)
	b.Input(width)
	prev := []int{0}
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			k := 1 + rng.Intn(4)
			out := 4 << rng.Intn(4)
			b.Conv("c", k, width, out, 1+rng.Intn(2))
			width = out
		case 2:
			b.ReLU("r", width)
		case 3:
			b.BN("bn", width)
		default:
			b.MaxPool("p", 2, width, 2)
		}
		// Occasional residual edge from an earlier op.
		if rng.Intn(4) == 0 && len(prev) > 1 {
			from := prev[rng.Intn(len(prev))]
			to := b.Tail()[0]
			if from < to {
				b.Graph().Connect(from, to)
			}
		}
		prev = append(prev, b.Tail()[0])
	}
	b.Dense("fc", width, 10)
	b.Output(10)
	return b.Graph()
}

// TestQuickPlansAlwaysVerify: for arbitrary random graph pairs, both the
// group and the Hungarian planner produce plans whose execution reproduces
// the destination model exactly.
func TestQuickPlansAlwaysVerify(t *testing.T) {
	prof := cost.CPU()
	est := cost.Exact(prof)
	group := New(est, AlgoGroup)
	hung := New(est, AlgoHungarian)

	f := func(seedA, seedB int64) bool {
		src := randomGraph("src", seedA, 14)
		dst := randomGraph("dst", seedB, 14)
		if src.Validate() != nil || dst.Validate() != nil {
			return false
		}
		for _, pl := range []*Planner{group, hung} {
			p := pl.Plan(src, dst)
			if err := metaop.Verify(prof, p, src, dst); err != nil {
				t.Logf("verify failed (%v): %v", pl.algo, err)
				return false
			}
			// Cost sanity: estimated cost is non-negative and the safeguard
			// flag is consistent with it.
			if p.EstCost < 0 {
				return false
			}
			if p.LoadFromScratch != (p.EstCost > p.ScratchCost) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHungarianNeverWorseOnNodeCost: the Munkres solution's node-level
// mapping cost is ≤ the group heuristic's, for arbitrary pairs (Hungarian is
// optimal for the assignment relaxation).
func TestQuickHungarianNeverWorseOnNodeCost(t *testing.T) {
	est := cost.Exact(cost.CPU())
	f := func(seedA, seedB int64) bool {
		src := randomGraph("src", seedA, 12)
		dst := randomGraph("dst", seedB, 12)
		mx := BuildMatrix(est, src, dst)
		rowToCol, _ := hungarian(mx)
		hMap := mappingFromAssignment(mx, rowToCol)
		gMap := groupMapping(est, src, dst)
		hCost := MappingCost(est, src, dst, hMap)
		gCost := MappingCost(est, src, dst, gMap)
		return hCost <= gCost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelfTransformIsFree: transforming any graph into itself costs
// nothing under both planners.
func TestQuickSelfTransformIsFree(t *testing.T) {
	est := cost.Exact(cost.CPU())
	group := New(est, AlgoGroup)
	hung := New(est, AlgoHungarian)
	f := func(seed int64) bool {
		g := randomGraph("g", seed, 16)
		return group.Plan(g, g).EstCost == 0 && hung.Plan(g, g).EstCost == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReplaceOnlyForReweighted: transforming a graph into a
// reweighted clone of itself uses only Replace steps under both planners.
func TestQuickReplaceOnlyForReweighted(t *testing.T) {
	est := cost.Exact(cost.CPU())
	group := New(est, AlgoGroup)
	hung := New(est, AlgoHungarian)
	f := func(seed int64) bool {
		src := randomGraph("g", seed, 14)
		dst := src.Clone()
		for _, op := range dst.Ops() {
			if op.HasWeights() {
				op.WeightsID = model.WeightsIDFor("other", op.Name)
			}
		}
		for _, pl := range []*Planner{group, hung} {
			p := pl.Plan(src, dst)
			for _, s := range p.Steps {
				if s.Kind != metaop.KindReplace {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
