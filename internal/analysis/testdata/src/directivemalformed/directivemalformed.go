// Package directivemalformed holds directives the parser must reject: a
// missing separator, a missing checker name, a missing reason, and an
// unknown checker name. Each must surface as a directive finding.
package directivemalformed

//optimus:allow globalrand
func missingSeparator() {}

//optimus:allow — lonely reason with no checker name
func missingChecker() {}

//optimus:allow globalrand —
func missingReason() {}

//optimus:allow nosuchchecker — reason for a checker that does not exist
func unknownChecker() {}
