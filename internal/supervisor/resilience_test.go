package supervisor

import (
	"sync"
	"testing"
	"time"
)

func TestBackoffDisabledIsNil(t *testing.T) {
	b := NewBackoff(BackoffConfig{}, 1)
	if b != nil {
		t.Fatal("zero Base should disable backoff")
	}
	if b.Delay(3) != 0 {
		t.Fatal("nil backoff must return zero delay")
	}
	if b.Stats() != (BackoffStats{}) {
		t.Fatal("nil backoff must report zero stats")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	cfg := BackoffConfig{Base: 100 * time.Millisecond, Cap: 800 * time.Millisecond, Factor: 2, Jitter: 0.25}
	b := NewBackoff(cfg, 42)
	for attempt := 0; attempt < 8; attempt++ {
		d := b.Delay(attempt)
		raw := cfg.Base << attempt
		if raw > cfg.Cap {
			raw = cfg.Cap
		}
		lo := time.Duration(float64(raw) * 0.75)
		hi := time.Duration(float64(raw) * 1.25)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
	st := b.Stats()
	if st.Delays != 8 || st.TotalDelay <= 0 {
		t.Fatalf("stats = %+v, want 8 delays with positive total", st)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	cfg := BackoffConfig{Base: 50 * time.Millisecond}
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(cfg, seed)
		out := make([]time.Duration, 16)
		for i := range out {
			out[i] = b.Delay(i % 4)
		}
		return out
	}
	a, b2 := seq(7), seq(7)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b2[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestHedgerArmsAtPercentile(t *testing.T) {
	h := NewHedger(HedgeConfig{Percentile: 90, MinSamples: 5})
	if _, ok := h.Deadline(); ok {
		t.Fatal("hedger must not arm before MinSamples")
	}
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Second)
	}
	d, ok := h.Deadline()
	if !ok || d != 9*time.Second {
		t.Fatalf("deadline = %v (armed %v), want 9s armed", d, ok)
	}
	h.RecordHedge(true)
	h.RecordHedge(false)
	if st := h.Stats(); st.Hedged != 2 || st.Wins != 1 {
		t.Fatalf("stats = %+v, want 2 hedged / 1 win", st)
	}
}

func TestHedgerDisabledIsNil(t *testing.T) {
	h := NewHedger(HedgeConfig{})
	if h != nil {
		t.Fatal("zero Percentile should disable hedging")
	}
	h.Observe(time.Second)
	h.RecordHedge(true)
	if _, ok := h.Deadline(); ok {
		t.Fatal("nil hedger must not arm")
	}
}

func TestHedgerWindowRolls(t *testing.T) {
	h := NewHedger(HedgeConfig{Percentile: 100, MinSamples: 2, Window: 4})
	for i := 0; i < 4; i++ {
		h.Observe(time.Hour)
	}
	for i := 0; i < 4; i++ {
		h.Observe(time.Second)
	}
	if d, _ := h.Deadline(); d != time.Second {
		t.Fatalf("old samples should have rolled out; max = %v, want 1s", d)
	}
}

// TestBreakerHalfOpenProbeRace is the -race regression test for the breaker's
// half-open probe: when many goroutines hit an expired-cooldown breaker at
// once, exactly one must win the probe slot; the rest short-circuit. Racing
// success/failure recorders must never double-transition the breaker or leak
// it stuck in half-open.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	const goroutines = 32
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	now := time.Duration(0)
	for round := 0; round < 50; round++ {
		b.RecordFailure("src", "dst", now)
		if st := b.State("src", "dst"); st != BreakerOpen {
			t.Fatalf("round %d: state after failure = %v, want open", round, st)
		}
		now += time.Minute // cooldown expires: next Allow admits one probe

		// All contenders race Allow on the expired breaker at once: exactly
		// one may be admitted as the half-open probe.
		var wg sync.WaitGroup
		var mu sync.Mutex
		probes := 0
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Allow("src", "dst", now) {
					mu.Lock()
					probes++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if probes != 1 {
			t.Fatalf("round %d: %d probes admitted, want exactly 1", round, probes)
		}

		// The probe's success races a concurrent failure report (another
		// in-flight transform finishing badly): whatever the interleaving,
		// the breaker must settle out of half-open with exactly one probe
		// outcome recorded — never double-transition, never stuck.
		wg.Add(2)
		go func() {
			defer wg.Done()
			b.RecordSuccess("src", "dst")
		}()
		go func() {
			defer wg.Done()
			b.RecordFailure("src", "dst", now)
		}()
		wg.Wait()
		if st := b.State("src", "dst"); st == BreakerHalfOpen {
			t.Fatalf("round %d: breaker leaked stuck in half-open", round)
		}
		now += time.Second // still inside cooldown: opens stay open
	}
	st := b.Stats()
	if st.Probes != 50 {
		t.Fatalf("probes = %d, want 50", st.Probes)
	}
	if st.Closes+st.Reopens != 50 {
		t.Fatalf("closes %d + reopens %d != probes 50 (a probe outcome was lost or doubled)", st.Closes, st.Reopens)
	}
	if st.ShortCircuits != 50*(goroutines-1) {
		t.Fatalf("short-circuits = %d, want %d", st.ShortCircuits, 50*(goroutines-1))
	}
}
