// BERT serving: the §5.2 transformer scenario. A tenant deploys several
// BERT variants — different sizes and different downstream-task heads over
// the same pre-trained base — and Optimus turns cross-function cold starts
// into cheap transformations (head swap ≈ free, size change ≈ reshape).
package main

import (
	"fmt"
	"time"

	optimus "repro"
)

func main() {
	bert := optimus.BERTZoo()
	tf := optimus.NewTransformer(optimus.CPU, optimus.AlgoGroup)

	// How cheap are the §5.2 example transformations?
	fmt.Println("inter-function transformer transformations (§5.2):")
	cases := [][2]string{
		{"bert-base-sc", "bert-base-qa"},         // Example 2: downstream-task swap
		{"bert-base-uncased", "bert-mini"},       // Example 1: size ladder down
		{"bert-mini", "bert-base-uncased"},       // size ladder up
		{"bert-base-cased", "bert-base-uncased"}, // input casing (embedding reshape)
	}
	for _, c := range cases {
		src, dst := bert.MustGet(c[0]), bert.MustGet(c[1])
		plan := tf.Plan(src, dst)
		_, took, err := tf.Transform(src, dst)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-18s → %-18s transform %8v vs load %8v (%.1f%% saved)\n",
			c[0], c[1], took.Round(time.Millisecond), tf.LoadCost(dst).Round(time.Millisecond),
			100*(1-float64(took)/float64(tf.LoadCost(dst))))
		_ = plan
	}

	// A serving cluster with task-head churn: SC, QA, TC, NSP and MC
	// variants of the same base receive bursty, alternating traffic.
	fmt.Println("\nserving all 10 BERT variants on 2 nodes (task-head churn):")
	sys := optimus.NewSystem(optimus.SystemConfig{
		Nodes:             2,
		ContainersPerNode: 3,
		Policy:            optimus.PolicyOptimus,
		VerifyTransforms:  true,
	})
	names := bert.SortedByParams()
	for _, n := range names {
		sys.MustRegister(n, bert.MustGet(n))
	}
	trace := optimus.MixedPoissonTrace(names, 24*time.Hour, 11)
	rep, err := sys.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Println("optimus  :", rep.Summary())

	base := optimus.NewSystem(optimus.SystemConfig{
		Nodes: 2, ContainersPerNode: 3, Policy: optimus.PolicyOpenWhisk,
	})
	for _, n := range names {
		base.MustRegister(n, bert.MustGet(n))
	}
	brep, err := base.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Println("openwhisk:", brep.Summary())
	fmt.Printf("mean service time reduced by %.1f%%; %d transformations executed and verified\n",
		100*(1-float64(rep.MeanLatency())/float64(brep.MeanLatency())), rep.Verified)
}
