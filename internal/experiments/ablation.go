package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// Ablation experiments for the design decisions called out in DESIGN.md.

// AblationPlannerQualityResult compares the group planner's plan cost to the
// Munkres optimum across many real model pairs.
type AblationPlannerQualityResult struct {
	Pairs     int
	MeanRatio float64 // group cost / optimal cost (≥ ~1)
	MaxRatio  float64
}

// AblationPlannerQuality samples pairs from Imgclsmob and measures the
// group planner's optimality gap.
func AblationPlannerQuality(o Options, pairs int) AblationPlannerQualityResult {
	o = o.withDefaults()
	if o.Quick && pairs > 10 {
		pairs = 10
	}
	est := cost.Exact(o.Profile)
	opt := planner.New(est, planner.AlgoHungarian)
	grp := planner.New(est, planner.AlgoGroup)
	rng := rand.New(rand.NewSource(o.Seed))
	names := imgZoo.Names()

	res := AblationPlannerQualityResult{Pairs: pairs}
	var sum float64
	n := 0
	for n < pairs {
		src := imgZoo.MustGet(names[rng.Intn(len(names))])
		dst := imgZoo.MustGet(names[rng.Intn(len(names))])
		po := opt.Plan(src, dst)
		pg := grp.Plan(src, dst)
		if po.EstCost == 0 {
			continue
		}
		r := float64(pg.EstCost) / float64(po.EstCost)
		sum += r
		if r > res.MaxRatio {
			res.MaxRatio = r
		}
		n++
	}
	res.MeanRatio = sum / float64(pairs)
	return res
}

// Render prints the planner-quality ablation.
func (r AblationPlannerQualityResult) Render() string {
	return fmt.Sprintf(`Ablation: group planner vs Munkres optimum over %d random Imgclsmob pairs
  mean cost ratio: %.3f
  max cost ratio:  %.3f
  (paper: "nearly optimal" — ratios close to 1)
`, r.Pairs, r.MeanRatio, r.MaxRatio)
}

// AblationSafeguardResult measures the worst-case penalty of disabling the
// §4.4 safeguard: executing the transformation plan even when loading from
// scratch is cheaper.
type AblationSafeguardResult struct {
	Pairs             int
	SafeguardFired    int
	MeanPenaltyNoSafe float64 // mean (plan cost / scratch cost) on fired pairs
	MaxPenaltyNoSafe  float64
}

// AblationSafeguard samples cross-family pairs (where the safeguard matters)
// and quantifies the cost of running without it.
func AblationSafeguard(o Options, pairs int) AblationSafeguardResult {
	o = o.withDefaults()
	if o.Quick && pairs > 10 {
		pairs = 10
	}
	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)
	rng := rand.New(rand.NewSource(o.Seed))
	cnn := imgZoo.Names()
	bert := bertZoo.Names()

	res := AblationSafeguardResult{Pairs: pairs}
	var sum float64
	for k := 0; k < pairs; k++ {
		// Mix CNN→BERT and BERT→CNN pairs: the regime where transformation
		// can lose to a fresh load.
		var src, dst *model.Graph
		if k%2 == 0 {
			src = imgZoo.MustGet(cnn[rng.Intn(len(cnn))])
			dst = bertZoo.MustGet(bert[rng.Intn(len(bert))])
		} else {
			src = bertZoo.MustGet(bert[rng.Intn(len(bert))])
			dst = imgZoo.MustGet(cnn[rng.Intn(len(cnn))])
		}
		p := pl.Plan(src, dst)
		if !p.LoadFromScratch {
			continue
		}
		res.SafeguardFired++
		penalty := float64(p.EstCost) / float64(p.ScratchCost)
		sum += penalty
		if penalty > res.MaxPenaltyNoSafe {
			res.MaxPenaltyNoSafe = penalty
		}
	}
	if res.SafeguardFired > 0 {
		res.MeanPenaltyNoSafe = sum / float64(res.SafeguardFired)
	}
	return res
}

// Render prints the safeguard ablation.
func (r AblationSafeguardResult) Render() string {
	return fmt.Sprintf(`Ablation: safeguard (worst-case fallback to fresh load) over %d cross-family pairs
  safeguard fired: %d/%d pairs
  without safeguard, transformation would cost %.2fx scratch on average (max %.2fx)
`, r.Pairs, r.SafeguardFired, r.Pairs, r.MeanPenaltyNoSafe, r.MaxPenaltyNoSafe)
}

// AblationPlanCacheResult compares online planning latency with and without
// the Module-3 plan cache.
type AblationPlanCacheResult struct {
	Lookups        int
	ColdMean       time.Duration // planning from scratch
	CachedMean     time.Duration // reading the cached plan
	SpeedupFactor  float64
	CacheHitsAfter int
}

// AblationPlanCache measures cache effectiveness over repeated lookups of a
// representative transformation set.
func AblationPlanCache(o Options, lookups int) AblationPlanCacheResult {
	o = o.withDefaults()
	if o.Quick && lookups > 50 {
		lookups = 50
	}
	pl := planner.New(cost.Exact(o.Profile), planner.AlgoGroup)
	cache := planner.NewCache()
	pairs := [][2]*model.Graph{
		{imgZoo.MustGet("resnet50-imagenet"), imgZoo.MustGet("resnet101-imagenet")},
		{imgZoo.MustGet("vgg16-imagenet"), imgZoo.MustGet("vgg19-imagenet")},
		{bertZoo.MustGet("bert-base-sc"), bertZoo.MustGet("bert-base-qa")},
	}
	res := AblationPlanCacheResult{Lookups: lookups}

	t0 := time.Now()
	for k := 0; k < lookups; k++ {
		pr := pairs[k%len(pairs)]
		_ = pl.Plan(pr[0], pr[1])
	}
	res.ColdMean = time.Since(t0) / time.Duration(lookups)

	for _, pr := range pairs {
		cache.GetOrPlan(pl, pr[0], pr[1]) // warm the cache
	}
	t1 := time.Now()
	for k := 0; k < lookups; k++ {
		pr := pairs[k%len(pairs)]
		cache.GetOrPlan(pl, pr[0], pr[1])
	}
	res.CachedMean = time.Since(t1) / time.Duration(lookups)
	if res.CachedMean > 0 {
		res.SpeedupFactor = float64(res.ColdMean) / float64(res.CachedMean)
	}
	res.CacheHitsAfter, _ = cache.Stats()
	return res
}

// Render prints the plan-cache ablation.
func (r AblationPlanCacheResult) Render() string {
	return fmt.Sprintf(`Ablation: plan cache (Module 3) over %d lookups
  planning per lookup (no cache): %v
  cached read per lookup:         %v
  speedup: %.0fx
`, r.Lookups, r.ColdMean, r.CachedMean, r.SpeedupFactor)
}

// AblationBalancerResult compares Optimus under K-medoids placement vs hash
// placement.
type AblationBalancerResult struct {
	HashMean, KMedoidsMean time.Duration
	Improvement            float64
}

// AblationBalancer runs the Fig 13 Optimus configuration under both
// placements.
func AblationBalancer(o Options, setup ClusterSetup) AblationBalancerResult {
	o = o.withDefaults()
	setup = setup.withDefaults(o.Quick)
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, setup.Horizon, o.Seed)
	run := func(placement map[string][]int) time.Duration {
		sim := simulate.New(simulate.Config{
			Policy:            policy.Optimus{},
			Nodes:             setup.Nodes,
			ContainersPerNode: setup.ContainersPerNode,
			Profile:           o.Profile,
			Placement:         placement,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			panic(err)
		}
		return col.MeanLatency()
	}
	res := AblationBalancerResult{
		HashMean:     run(simulate.HashPlacement(names, setup.Nodes)),
		KMedoidsMean: run(optimusPlacement(o, fns, tr, setup.Nodes)),
	}
	res.Improvement = 1 - float64(res.KMedoidsMean)/float64(res.HashMean)
	return res
}

// Render prints the balancer ablation.
func (r AblationBalancerResult) Render() string {
	return fmt.Sprintf(`Ablation: model-sharing-aware load balancer (§5.1) vs hash placement (Optimus policy)
  hash placement mean latency:      %v
  k-medoids placement mean latency: %v
  improvement: %s
`, r.HashMean, r.KMedoidsMean, pct(r.Improvement))
}

// AblationIdleThresholdResult sweeps the §4.2 idle threshold.
type AblationIdleThresholdResult struct {
	Thresholds []time.Duration
	Means      []time.Duration
	Transforms []float64
}

// AblationIdleThreshold sweeps the idle-identification threshold and
// reports Optimus' mean latency and transformation share at each setting.
func AblationIdleThreshold(o Options, setup ClusterSetup, thresholds []time.Duration) AblationIdleThresholdResult {
	o = o.withDefaults()
	setup = setup.withDefaults(o.Quick)
	if len(thresholds) == 0 {
		thresholds = []time.Duration{
			15 * time.Second, 30 * time.Second, time.Minute,
			2 * time.Minute, 5 * time.Minute, 10 * time.Minute,
		}
	}
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, setup.Horizon, o.Seed)
	res := AblationIdleThresholdResult{Thresholds: thresholds}
	for _, th := range thresholds {
		sim := simulate.New(simulate.Config{
			Policy:            policy.Optimus{},
			Nodes:             setup.Nodes,
			ContainersPerNode: setup.ContainersPerNode,
			Profile:           o.Profile,
			IdleThreshold:     th,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			panic(err)
		}
		res.Means = append(res.Means, col.MeanLatency())
		res.Transforms = append(res.Transforms, col.KindFractions()[metrics.StartTransform])
	}
	return res
}

// Render prints the idle-threshold sweep.
func (r AblationIdleThresholdResult) Render() string {
	rows := make([][]string, 0, len(r.Thresholds))
	for i, th := range r.Thresholds {
		rows = append(rows, []string{th.String(), ms(r.Means[i]), pct(r.Transforms[i])})
	}
	return "Ablation: idle-container identification threshold sweep (§4.2, Optimus policy)\n" +
		table([]string{"threshold", "mean latency(ms)", "transform share"}, rows)
}

// AblationOnlineProfilingResult evaluates §6's online-profiling extension:
// the system starts with a badly miscalibrated meta-operator profile and
// either keeps it (the paper's offline-only profiling) or refines it from
// observed execution times.
type AblationOnlineProfilingResult struct {
	EstimatorErr            float64
	OfflineMean, OnlineMean time.Duration
	// Miscalibration is the mean absolute relative error of the estimator's
	// per-op-type factors (0 = calibrated).
	MiscalStart, MiscalOffline, MiscalOnline float64
	Observations                             int
}

// AblationOnlineProfiling runs Optimus with ±50 % profiling error, with and
// without the online refinement loop.
func AblationOnlineProfiling(o Options, setup ClusterSetup) AblationOnlineProfilingResult {
	o = o.withDefaults()
	setup = setup.withDefaults(o.Quick)
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, setup.Horizon, o.Seed)
	const relErr = 0.5

	res := AblationOnlineProfilingResult{EstimatorErr: relErr}
	res.MiscalStart = cost.NewEstimator(o.Profile, relErr, o.Seed).Miscalibration()

	run := func(alpha float64) (time.Duration, float64, int) {
		sim := simulate.New(simulate.Config{
			Policy:            policy.Optimus{},
			Nodes:             setup.Nodes,
			ContainersPerNode: setup.ContainersPerNode,
			Profile:           o.Profile,
			EstimatorErr:      relErr,
			Seed:              o.Seed,
			OnlineProfiling:   alpha,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			panic(err)
		}
		return col.MeanLatency(), sim.Estimator().Miscalibration(), sim.Estimator().Observations()
	}
	var obs int
	res.OfflineMean, res.MiscalOffline, _ = run(0)
	res.OnlineMean, res.MiscalOnline, obs = run(0.2)
	res.Observations = obs
	return res
}

// Render prints the online-profiling ablation.
func (r AblationOnlineProfilingResult) Render() string {
	return fmt.Sprintf(`Ablation: online profiling (§6 Future Work) under ±%.0f%% initial profiling error
  miscalibration at start:            %.3f
  after run, offline profiling only:  %.3f (unchanged, plans built on stale estimates)
  after run, online profiling (α=.2): %.3f over %d observations
  mean latency: offline %v, online %v
`, 100*r.EstimatorErr, r.MiscalStart, r.MiscalOffline, r.MiscalOnline, r.Observations,
		r.OfflineMean, r.OnlineMean)
}

// AblationAllocationResult evaluates §6 Limitation 1 (fine-grained resource
// allocation): the same Optimus cluster with slot-based, homogeneous-memory
// and fine-grained-memory container allocation.
type AblationAllocationResult struct {
	NodeMemoryMB, HomogeneousMB          int
	SlotsMean, HomogeneousMean, FineMean time.Duration
	SlotsCold, HomogeneousCold, FineCold float64
}

// AblationAllocation runs the comparison on a mixed-size model population.
func AblationAllocation(o Options, setup ClusterSetup) AblationAllocationResult {
	o = o.withDefaults()
	setup = setup.withDefaults(o.Quick)
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, setup.Horizon, o.Seed)

	res := AblationAllocationResult{NodeMemoryMB: 16384, HomogeneousMB: 4096}
	run := func(nodeMB, containerMB, slots int) (time.Duration, float64) {
		sim := simulate.New(simulate.Config{
			Policy:            policy.Optimus{},
			Nodes:             setup.Nodes,
			ContainersPerNode: slots,
			Profile:           o.Profile,
			NodeMemoryMB:      nodeMB,
			ContainerMemoryMB: containerMB,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			panic(err)
		}
		return col.MeanLatency(), col.KindFractions()[metrics.StartCold]
	}
	// Slot mode: node memory / homogeneous grant = 4 slots, no memory model.
	res.SlotsMean, res.SlotsCold = run(0, 0, res.NodeMemoryMB/res.HomogeneousMB)
	// Homogeneous memory: same effective capacity, expressed in memory.
	res.HomogeneousMean, res.HomogeneousCold = run(res.NodeMemoryMB, res.HomogeneousMB, 64)
	// Fine-grained: containers sized to their models pack more per node.
	res.FineMean, res.FineCold = run(res.NodeMemoryMB, 0, 64)
	return res
}

// Render prints the allocation ablation.
func (r AblationAllocationResult) Render() string {
	return fmt.Sprintf(`Ablation: container resource allocation (§6 Limitation 1), %d MB nodes, Optimus policy
  slot-based (%d slots/node):     mean %-14v cold %s
  homogeneous %d MB containers:  mean %-14v cold %s
  fine-grained (model-sized):     mean %-14v cold %s
`, r.NodeMemoryMB, r.NodeMemoryMB/r.HomogeneousMB,
		r.SlotsMean, pct(r.SlotsCold),
		r.HomogeneousMB, r.HomogeneousMean, pct(r.HomogeneousCold),
		r.FineMean, pct(r.FineCold))
}
