package policy

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/planner"
	"repro/internal/simulate"
	"repro/internal/zoo"
)

func testEnv() *simulate.Env {
	prof := cost.CPU()
	return &simulate.Env{
		Profile:       prof,
		Planner:       planner.New(cost.Exact(prof), planner.AlgoGroup),
		Plans:         planner.NewCache(),
		IdleThreshold: time.Minute,
		KeepAlive:     10 * time.Minute,
	}
}

func fn(name string) *simulate.Function {
	return &simulate.Function{Name: name, Model: zoo.Imgclsmob().MustGet(name)}
}

// nodeWithIdle returns a single-slot node holding an idle container of owner
// that has been idle for the given duration at time `now`.
func nodeWithIdle(owner *simulate.Function, idle, now time.Duration) *simulate.Node {
	n := &simulate.Node{ID: 0, Capacity: 1}
	n.Containers = []*simulate.Container{{
		ID: 1, Fn: owner, BusyUntil: 0, LastDone: now - idle,
	}}
	return n
}

func TestNames(t *testing.T) {
	want := map[string]bool{"openwhisk": true, "pagurus": true, "tetris": true, "optimus": true}
	for _, p := range All() {
		if !want[p.Name()] {
			t.Errorf("unexpected policy %q", p.Name())
		}
		delete(want, p.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing policies: %v", want)
	}
}

func TestAllPoliciesWarmStartFirst(t *testing.T) {
	env := testEnv()
	f := fn("resnet18-imagenet")
	now := 20 * time.Minute
	for _, p := range All() {
		n := nodeWithIdle(f, 2*time.Minute, now)
		d, ok := p.Serve(env, n, f, now)
		if !ok {
			t.Fatalf("%s: could not serve", p.Name())
		}
		if d.Kind != metrics.StartWarm || d.Reuse == nil {
			t.Errorf("%s: warm container not reused: %+v", p.Name(), d)
		}
		if d.Init != 0 || d.Load != 0 {
			t.Errorf("%s: warm start charged init/load", p.Name())
		}
	}
}

func TestAllPoliciesRefuseWhenSaturated(t *testing.T) {
	env := testEnv()
	a, b := fn("resnet18-imagenet"), fn("resnet34-imagenet")
	now := 20 * time.Minute
	for _, p := range All() {
		n := &simulate.Node{ID: 0, Capacity: 1}
		n.Containers = []*simulate.Container{{ID: 1, Fn: a, BusyUntil: now + time.Minute}}
		if _, ok := p.Serve(env, n, b, now); ok {
			t.Errorf("%s: served on a saturated node", p.Name())
		}
	}
}

func TestOpenWhiskNeverRepurposes(t *testing.T) {
	env := testEnv()
	a, b := fn("resnet18-imagenet"), fn("resnet34-imagenet")
	now := 20 * time.Minute
	n := nodeWithIdle(a, 9*time.Minute, now) // eminently repurposable
	d, ok := OpenWhisk{}.Serve(env, n, b, now)
	if !ok {
		t.Fatal("could not serve")
	}
	if d.Kind != metrics.StartCold || d.Reuse != nil {
		t.Errorf("openwhisk should cold start, got %+v", d)
	}
	if d.Init != env.Profile.SandboxInit {
		t.Errorf("cold init = %v", d.Init)
	}
	if d.Load != env.Profile.ModelLoad(b.Model).Total() {
		t.Errorf("cold load = %v", d.Load)
	}
}

func TestPagurusRepurposeChargesFullLoadOnly(t *testing.T) {
	env := testEnv()
	a, b := fn("resnet18-imagenet"), fn("resnet34-imagenet")
	now := 20 * time.Minute
	n := nodeWithIdle(a, 9*time.Minute, now)
	d, ok := Pagurus{}.Serve(env, n, b, now)
	if !ok {
		t.Fatal("could not serve")
	}
	if d.Kind != metrics.StartTransform || d.Reuse == nil {
		t.Fatalf("pagurus should repurpose: %+v", d)
	}
	if d.Init != 0 {
		t.Errorf("pagurus saves all init, got %v", d.Init)
	}
	if d.Load != env.Profile.ModelLoad(b.Model).Total() {
		t.Errorf("pagurus must still load the full model, got %v", d.Load)
	}
}

func TestOptimusPicksCheapestDonor(t *testing.T) {
	env := testEnv()
	// Two idle donors: a structurally similar resnet34 (cheap transform)
	// and a structurally distant vgg16.
	similar, distant := fn("resnet34-imagenet"), fn("vgg16-imagenet")
	target := fn("resnet50-imagenet")
	now := 30 * time.Minute
	n := &simulate.Node{ID: 0, Capacity: 2}
	n.Containers = []*simulate.Container{
		{ID: 1, Fn: distant, LastDone: now - 9*time.Minute},
		{ID: 2, Fn: similar, LastDone: now - 8*time.Minute},
	}
	d, ok := Optimus{}.Serve(env, n, target, now)
	if !ok {
		t.Fatal("could not serve")
	}
	if d.Kind != metrics.StartTransform {
		t.Fatalf("kind = %v", d.Kind)
	}
	if d.Reuse == nil || d.Reuse.Fn != similar {
		t.Errorf("optimus picked donor %v, want the structurally similar one", d.Reuse.Fn.Name)
	}
	if d.Plan == nil {
		t.Fatal("transform decision missing plan")
	}
	if d.Load >= env.Profile.ModelLoad(target.Model).Total() {
		t.Errorf("transform load %v not below full load", d.Load)
	}
}

func TestOptimusSafeguardLoadsFreshInDonor(t *testing.T) {
	env := testEnv()
	donor := &simulate.Function{Name: "bert", Model: zoo.BERTZoo().MustGet("bert-base-uncased")}
	target := fn("resnet50-imagenet")
	now := 30 * time.Minute
	n := nodeWithIdle(donor, 9*time.Minute, now)
	d, ok := Optimus{}.Serve(env, n, target, now)
	if !ok {
		t.Fatal("could not serve")
	}
	if d.Kind != metrics.StartTransform || d.Reuse == nil {
		t.Fatalf("should still repurpose the container: %+v", d)
	}
	if d.Plan == nil || !d.Plan.LoadFromScratch {
		t.Fatal("BERT→CNN should be safeguarded")
	}
	if d.Load != env.Profile.ModelLoad(target.Model).Total() {
		t.Errorf("safeguarded load = %v, want full load", d.Load)
	}
	if d.Init != 0 {
		t.Errorf("repurposed container still saves init, got %v", d.Init)
	}
}

func TestTetrisColdWithoutPeers(t *testing.T) {
	env := testEnv()
	b := fn("resnet34-imagenet")
	now := 20 * time.Minute
	n := &simulate.Node{ID: 0, Capacity: 2}
	d, ok := Tetris{}.Serve(env, n, b, now)
	if !ok {
		t.Fatal("could not serve")
	}
	if d.Kind != metrics.StartCold || d.Init != env.Profile.SandboxInit {
		t.Errorf("tetris without peers should full-cold-start: %+v", d)
	}
}

func TestTetrisForkPaysContainerCreate(t *testing.T) {
	env := testEnv()
	a, b := fn("resnet18-imagenet"), fn("resnet34-imagenet")
	now := 20 * time.Minute
	n := &simulate.Node{ID: 0, Capacity: 2}
	n.Containers = []*simulate.Container{{ID: 1, Fn: a, BusyUntil: now + time.Minute}}
	d, ok := Tetris{}.Serve(env, n, b, now)
	if !ok {
		t.Fatal("could not serve")
	}
	if d.Kind != metrics.StartTransform {
		t.Fatalf("kind = %v", d.Kind)
	}
	if d.Reuse != nil {
		t.Error("tetris forks a new container; it must not consume the donor")
	}
	want := env.Profile.ContainerCreate + 30*time.Millisecond
	if d.Init != want {
		t.Errorf("fork init = %v, want %v", d.Init, want)
	}
	if d.Load >= env.Profile.ModelLoad(b.Model).Total() {
		t.Errorf("tetris fork load %v should shave the deserialize-shared ops", d.Load)
	}
}

func TestIdleThresholdGate(t *testing.T) {
	env := testEnv()
	a, b := fn("resnet18-imagenet"), fn("resnet34-imagenet")
	now := 20 * time.Minute
	// Idle 30 s < 60 s threshold: not repurposable even on a full node.
	n := nodeWithIdle(a, 30*time.Second, now)
	d, ok := Optimus{}.Serve(env, n, b, now)
	if !ok {
		t.Fatal("could not serve (eviction path)")
	}
	if d.Kind == metrics.StartTransform {
		t.Error("repurposed a container below the idle threshold")
	}
}
