package controlplane

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/simulate"
	"repro/internal/zoo"
)

// fakeClock is the injectable virtual clock the gateway tests use.
type fakeClock struct {
	mu sync.Mutex
	t  time.Duration
}

func (c *fakeClock) now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += d
	return c.t
}

func testModels(t testing.TB, n int) []*model.Graph {
	t.Helper()
	img := zoo.Imgclsmob()
	names := img.Names()
	if len(names) < n {
		t.Fatalf("zoo has %d models, test needs %d", len(names), n)
	}
	out := make([]*model.Graph, n)
	for i := 0; i < n; i++ {
		out[i] = img.MustGet(names[i])
	}
	return out
}

func testCluster(t testing.TB, members int, clock *fakeClock, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Members:     members,
		Seed:        11,
		Base:        simulate.Config{Nodes: 2, ContainersPerNode: 2},
		Now:         clock.now,
		PlanWorkers: 2,
		Precompute:  true,
		SharedCache: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return NewCluster(cfg)
}

// TestRoutingDeterministicAndForwarded: every function has exactly one owner,
// all members agree on it, and invoking from a non-owner counts a forward
// while invoking from the owner does not.
func TestRoutingDeterministicAndForwarded(t *testing.T) {
	clock := &fakeClock{}
	cl := testCluster(t, 4, clock, nil)
	models := testModels(t, 6)
	for _, m := range models {
		if err := cl.RegisterModel(m); err != nil {
			t.Fatal(err)
		}
	}
	cl.PlanningQuiesce()

	for _, m := range models {
		owner, ok := cl.Owner(m.Name)
		if !ok {
			t.Fatalf("no owner for %s", m.Name)
		}
		rec, forwarded, err := cl.Invoke(owner, m.Name, clock.advance(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if forwarded {
			t.Errorf("invoke at owner %s of %s counted as forwarded", owner, m.Name)
		}
		if rec.Function != m.Name {
			t.Errorf("record function %s, want %s", rec.Function, m.Name)
		}
		// From any other member the same function must forward to the same
		// owner.
		for _, entry := range cl.Members() {
			if entry == owner {
				continue
			}
			_, fw, err := cl.Invoke(entry, m.Name, clock.advance(time.Second))
			if err != nil {
				t.Fatal(err)
			}
			if !fw {
				t.Errorf("invoke of %s from %s (owner %s) not forwarded", m.Name, entry, owner)
			}
		}
	}
	st := cl.Stats()
	if st.Forwards == 0 {
		t.Error("no forwards counted")
	}
	if st.RingMembers != 4 {
		t.Errorf("ring has %d members, want 4", st.RingMembers)
	}
}

// TestOwnedPairsPlannedExactlyOnce: with precompute on and the ring filter
// installed, each ordered pair is planned by exactly one member cluster-wide
// — the cross-gateway extension of the singleflight guarantee.
func TestOwnedPairsPlannedExactlyOnce(t *testing.T) {
	clock := &fakeClock{}
	cl := testCluster(t, 4, clock, nil)
	models := testModels(t, 6)
	for _, m := range models {
		if err := cl.RegisterModel(m); err != nil {
			t.Fatal(err)
		}
	}
	cl.PlanningQuiesce()

	totalPlanned := 0
	for _, row := range cl.Stats().Members {
		totalPlanned += row.Cache.Planned
	}
	wantPairs := len(models) * (len(models) - 1)
	if totalPlanned != wantPairs {
		t.Errorf("cluster planned %d pairs for a %d-pair catalog (duplicate or lost planning)",
			totalPlanned, wantPairs)
	}

	// Every pair must live in its owner's cache.
	for _, src := range models {
		for _, dst := range models {
			if src == dst {
				continue
			}
			owner, _ := cl.Owner(pairKey(src.Name, dst.Name))
			gw, ok := cl.Member(owner)
			if !ok {
				t.Fatalf("owner %s missing", owner)
			}
			if _, ok := gw.Env().Plans.Get(src, dst); !ok {
				t.Errorf("pair %s→%s missing from owner %s", src.Name, dst.Name, owner)
			}
		}
	}
}

// TestDrainHandsOffPlans: draining a member moves every plan it owned to the
// new ring owners without re-planning, and the drained member is gone.
func TestDrainHandsOffPlans(t *testing.T) {
	clock := &fakeClock{}
	cl := testCluster(t, 4, clock, nil)
	models := testModels(t, 6)
	for _, m := range models {
		if err := cl.RegisterModel(m); err != nil {
			t.Fatal(err)
		}
	}
	cl.PlanningQuiesce()
	plannedBefore := 0
	for _, row := range cl.Stats().Members {
		plannedBefore += row.Cache.Planned
	}

	const victim = "gw-1"
	if err := cl.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(victim); err == nil {
		t.Error("second drain of the same member should fail")
	}
	members := cl.Members()
	if len(members) != 3 {
		t.Fatalf("members after drain: %v", members)
	}
	for _, m := range members {
		if m == victim {
			t.Fatalf("drained member still present: %v", members)
		}
	}

	// Every pair's current owner must hold its plan, and nothing was planned
	// again during the handoff.
	for _, src := range models {
		for _, dst := range models {
			if src == dst {
				continue
			}
			owner, _ := cl.Owner(pairKey(src.Name, dst.Name))
			gw, _ := cl.Member(owner)
			if _, ok := gw.Env().Plans.Get(src, dst); !ok {
				t.Errorf("pair %s→%s lost in drain (owner %s)", src.Name, dst.Name, owner)
			}
		}
	}
	// The drained member's planned count left with it; survivors must not
	// have planned anything new (the handoff copies, never re-plans).
	plannedAfter := 0
	for _, row := range cl.Stats().Members {
		plannedAfter += row.Cache.Planned
	}
	if plannedAfter >= plannedBefore {
		t.Errorf("survivors planned new pairs during drain: cluster planned %d before, survivors hold %d",
			plannedBefore, plannedAfter)
	}

	// The cluster still serves every function.
	for _, m := range models {
		if _, _, err := cl.Invoke(members[0], m.Name, clock.advance(time.Second)); err != nil {
			t.Errorf("invoke %s after drain: %v", m.Name, err)
		}
	}
}

// TestSharedCachePullAndReplicate: with precompute off, a non-owner miss
// pulls from the owner (Remote, not Planned), and a pair pulled twice is
// replicated everywhere.
func TestSharedCachePullAndReplicate(t *testing.T) {
	clock := &fakeClock{}
	cl := testCluster(t, 3, clock, func(c *Config) { c.Precompute = false })
	models := testModels(t, 6)
	for _, m := range models {
		if err := cl.RegisterModel(m); err != nil {
			t.Fatal(err)
		}
	}
	// Demand-driven: serve every function in turn with gaps past the idle
	// threshold, so each arrival finds other functions' containers idle and
	// the transform path demands (src→dst) plans — planned on the pair's
	// ring owner, pulled by the serving member.
	entries := cl.Members()
	for round := 0; round < 6; round++ {
		for i, m := range models {
			now := clock.advance(70 * time.Second)
			if _, _, err := cl.Invoke(entries[i%len(entries)], m.Name, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	cl.PlanningQuiesce()

	st := cl.Stats()
	totalPlanned, totalRemote := 0, 0
	for _, row := range st.Members {
		totalPlanned += row.Cache.Planned
		totalRemote += row.Cache.Remote
	}
	if totalPlanned == 0 {
		t.Error("no plans demanded — load too light to exercise the cache")
	}
	// Planned-once, demand-driven: every demanded pair was planned by exactly
	// one member (its owner), so the cluster-wide planned count equals the
	// number of distinct pairs cached anywhere (replication copies plans, it
	// never re-plans them).
	distinct := map[string]bool{}
	for _, src := range models {
		for _, dst := range models {
			if src == dst {
				continue
			}
			for _, name := range cl.Members() {
				gw, _ := cl.Member(name)
				if _, ok := gw.Env().Plans.Get(src, dst); ok {
					distinct[pairKey(src.Name, dst.Name)] = true
				}
			}
		}
	}
	if totalPlanned != len(distinct) {
		t.Errorf("cluster planned %d pairs but %d distinct pairs are cached: duplicate planning across gateways",
			totalPlanned, len(distinct))
	}
}

// TestReconcileDeownsAndRejoins: a member the health tracker flags loses its
// ring position but stays alive; once it recovers it rejoins and owns keys
// again.
func TestReconcileDeownsAndRejoins(t *testing.T) {
	clock := &fakeClock{}
	cl := testCluster(t, 3, clock, func(c *Config) {
		c.Health.Enabled = true
		c.Health.MinObservations = 1
		c.Health.FailureThreshold = 0.5
		c.Health.SuspectStrikes = 1
		c.Health.QuarantineStrikes = 1
		c.Health.QuarantineDuration = 10 * time.Second
		c.Health.ClearStreak = 2
	})
	models := testModels(t, 3)
	for _, m := range models {
		if err := cl.RegisterModel(m); err != nil {
			t.Fatal(err)
		}
	}
	cl.PlanningQuiesce()

	// Fail the victim hard through the tracker, then reconcile.
	victim := "gw-0"
	gw, _ := cl.Member(victim)
	_ = gw
	var victimIdx int
	cl.mu.Lock()
	victimIdx = cl.members[victim].idx
	for i := 0; i < 6; i++ {
		cl.tracker.ObserveFailure(victimIdx, clock.now())
	}
	cl.mu.Unlock()

	deowned, _ := cl.Reconcile(clock.now())
	if len(deowned) != 1 || deowned[0] != victim {
		t.Fatalf("reconcile de-owned %v, want [%s]", deowned, victim)
	}
	if st := cl.Stats(); st.RingMembers != 2 {
		t.Fatalf("ring members after de-own: %d, want 2", st.RingMembers)
	}
	// The de-owned member still exists and requests route around it.
	if _, ok := cl.Member(victim); !ok {
		t.Fatal("de-owned member was deleted")
	}
	for _, m := range models {
		owner, _ := cl.Owner(m.Name)
		if owner == victim {
			t.Errorf("function %s still owned by de-owned member", m.Name)
		}
		if _, _, err := cl.Invoke(victim, m.Name, clock.advance(time.Second)); err != nil {
			t.Errorf("invoke entering at de-owned member failed: %v", err)
		}
	}

	// Recover: serve successes through the tracker past the quarantine
	// window, then reconcile again.
	past := clock.advance(30 * time.Second)
	cl.mu.Lock()
	for i := 0; i < 8; i++ {
		cl.tracker.ObserveServed(victimIdx, past+time.Duration(i)*time.Second, 10*time.Millisecond)
	}
	cl.mu.Unlock()
	_, rejoined := cl.Reconcile(clock.advance(40 * time.Second))
	if len(rejoined) != 1 || rejoined[0] != victim {
		t.Fatalf("reconcile rejoined %v, want [%s]", rejoined, victim)
	}
	if st := cl.Stats(); st.RingMembers != 3 {
		t.Errorf("ring members after rejoin: %d, want 3", st.RingMembers)
	}
}

// TestJoinWarmsWithoutReplanning: a joining member takes ring ownership with
// plans copied from the previous owners — its own planner computes nothing.
func TestJoinWarmsWithoutReplanning(t *testing.T) {
	clock := &fakeClock{}
	cl := testCluster(t, 2, clock, nil)
	models := testModels(t, 5)
	for _, m := range models {
		if err := cl.RegisterModel(m); err != nil {
			t.Fatal(err)
		}
	}
	cl.PlanningQuiesce()

	if err := cl.Join("gw-2"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Join("gw-2"); err == nil {
		t.Error("duplicate join should fail")
	}
	cl.PlanningQuiesce()

	gw, ok := cl.Member("gw-2")
	if !ok {
		t.Fatal("joiner missing")
	}
	ct := gw.Env().Plans.Counters()
	if ct.Planned != 0 {
		t.Errorf("joiner planned %d pairs; the warm handoff should have made them all hits", ct.Planned)
	}
	// The joiner owns something and serves it.
	owned := 0
	for _, m := range models {
		if owner, _ := cl.Owner(m.Name); owner == "gw-2" {
			owned++
			if _, _, err := cl.Invoke("gw-0", m.Name, clock.advance(time.Second)); err != nil {
				t.Errorf("invoke via joiner: %v", err)
			}
		}
	}
	// Every pair's owner still holds its plan.
	for _, src := range models {
		for _, dst := range models {
			if src == dst {
				continue
			}
			owner, _ := cl.Owner(pairKey(src.Name, dst.Name))
			g, _ := cl.Member(owner)
			if _, ok := g.Env().Plans.Get(src, dst); !ok {
				t.Errorf("pair %s→%s missing from owner %s after join", src.Name, dst.Name, owner)
			}
		}
	}
}
