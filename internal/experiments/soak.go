package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// BenchSoakFile is the artifact `optimus-bench soak` emits; `make check` and
// CI validate its contents.
const BenchSoakFile = "BENCH_soak.json"

// Soak experiment: a fixed-seed chaos soak mixing hard faults (crashes,
// hangs) with gray ones (slow nodes, flaky donors, degraded bandwidth), run
// twice over the same trace —
//
//   - baseline: bounded crash retries only; the health tracker runs in
//     observe-only mode so fault windows and MTTR are measured without
//     steering any decision;
//   - resilient: the full gray-failure layer — health-aware routing
//     (suspect → quarantine → drain), seeded exponential retry backoff, and
//     hedged backup transforms — on top of the same supervision stack.
//
// Both modes share the watchdog and circuit breaker, so the measured delta
// isolates the resilience layer. Everything is virtual-time deterministic:
// the same seed reproduces every byte of the result.

// SoakRun is one configuration's measurements over the soak trace.
type SoakRun struct {
	Mode     string `json:"mode"`
	Arrivals int    `json:"arrivals"`
	Served   int    `json:"served"`
	Dropped  int    `json:"dropped"`
	// Availability is served/arrivals.
	Availability float64 `json:"availability"`
	// GoodputDuringFault is the served fraction of arrivals that landed
	// inside an unhealthy window (1 when no window opened).
	GoodputDuringFault float64 `json:"goodput_during_fault"`
	// HitRatio is the warm-path share of served requests: warm + transform +
	// hedged starts, i.e. everything that avoided a cold or degraded start.
	HitRatio float64 `json:"hit_ratio"`
	MeanMS   float64 `json:"mean_ms"`
	P99MS    float64 `json:"p99_ms"`
	// MTTRMS and Episodes summarize the health tracker's unhealthy episodes
	// (measured in observe-only mode for the baseline).
	MTTRMS   float64            `json:"mttr_ms"`
	Episodes int                `json:"episodes"`
	Faults   metrics.FaultStats `json:"faults"`
	Health   health.Stats       `json:"health"`
}

// SoakResult pairs the baseline and resilient soak runs.
type SoakResult struct {
	Seed      int64        `json:"seed"`
	HorizonMS float64      `json:"horizon_ms"`
	Rates     faults.Rates `json:"rates"`
	Baseline  SoakRun      `json:"baseline"`
	Resilient SoakRun      `json:"resilient"`
	// Deterministic records that a second same-seed resilient run produced
	// byte-identical measurements.
	Deterministic bool `json:"deterministic"`
}

// soakRates is the fixed fault mix of the chaos soak.
func soakRates() faults.Rates {
	// Gray, node-correlated faults (flaky donors, slow nodes, degraded
	// bandwidth) dominate the mix: those are the failures health-aware
	// routing can actually route around. Hard i.i.d. crashes stay low so
	// drop noise does not drown the signal.
	return faults.Rates{
		Crash:     0.03,
		Hang:      0.2,
		Slow:      0.03,
		Flaky:     0.15,
		Bandwidth: 0.05,
	}
}

// soakConfig builds one mode's simulator config over the shared cluster
// shape. Two containers per node keeps repurposing pressure high, so
// transforms — and therefore hangs, flaky donors, and hedges — stay on the
// hot path.
func soakConfig(o Options, resilient bool) simulate.Config {
	cfg := simulate.Config{
		Policy:            policy.Optimus{},
		Nodes:             4,
		ContainersPerNode: 2,
		Profile:           o.Profile,
		Seed:              o.Seed,
		Faults:            soakRates(),
		WatchdogFactor:    2,
		Breaker:           supervisor.BreakerConfig{Threshold: 3, Cooldown: 10 * time.Minute},
		Health: health.Config{
			Enabled:     true,
			ObserveOnly: !resilient,
		},
	}
	if resilient {
		cfg.Retry = supervisor.BackoffConfig{Base: 50 * time.Millisecond}
		cfg.Hedge = supervisor.HedgeConfig{Percentile: 90, MinSamples: 2}
	}
	return cfg
}

// soakOnce replays the trace under one mode and folds the run into a SoakRun.
func soakOnce(o Options, fns []*simulate.Function, tr *workload.Trace, resilient bool) SoakRun {
	sim := simulate.New(soakConfig(o, resilient), fns)
	col, err := sim.Run(tr)
	if err != nil {
		panic(err)
	}
	mode := "baseline"
	if resilient {
		mode = "resilient"
	}
	run := SoakRun{
		Mode:     mode,
		Arrivals: col.Len() + col.Faults.Dropped,
		Served:   col.Len(),
		Dropped:  col.Faults.Dropped,
		MeanMS:   msF(col.MeanLatency()),
		P99MS:    msF(col.Percentile(99)),
		Faults:   col.Faults,
	}
	if run.Arrivals > 0 {
		run.Availability = float64(run.Served) / float64(run.Arrivals)
	}
	fr := col.KindFractions()
	run.HitRatio = fr[metrics.StartWarm] + fr[metrics.StartTransform] + fr[metrics.StartHedge]
	ht := sim.Health()
	sum := ht.Summarize()
	run.MTTRMS = sum.MTTRMS
	run.Episodes = sum.Episodes
	run.Health = sum.Stats
	run.GoodputDuringFault = goodputDuringFault(col.Records(), tr, ht.Windows(tr.Duration))
	return run
}

// goodputDuringFault measures the served fraction of trace arrivals that fall
// inside a cluster-unhealthy window. Windows are disjoint and time-ordered,
// so both scans walk the window list once.
func goodputDuringFault(recs []metrics.Record, tr *workload.Trace, ws []health.Window) float64 {
	if len(ws) == 0 {
		return 1
	}
	inWindow := func(t time.Duration) bool {
		for _, w := range ws {
			if t >= w.Start && t < w.End {
				return true
			}
		}
		return false
	}
	arrivals := 0
	for _, r := range tr.Requests {
		if inWindow(r.At) {
			arrivals++
		}
	}
	if arrivals == 0 {
		return 1
	}
	served := 0
	for _, r := range recs {
		if inWindow(r.Arrival) {
			served++
		}
	}
	return float64(served) / float64(arrivals)
}

// Soak runs the chaos soak (default horizon 24h; Quick shrinks it to 2h for
// smoke runs) and double-runs the resilient mode to prove determinism.
func Soak(o Options, horizon time.Duration) SoakResult {
	o = o.withDefaults()
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	if o.Quick && horizon > 2*time.Hour {
		horizon = 2 * time.Hour
	}
	fns := DefaultFunctionSet(o.Quick)
	names := make([]string, len(fns))
	for i, f := range fns {
		names[i] = f.Name
	}
	tr := workload.MixedPoisson(names, horizon, o.Seed)

	res := SoakResult{
		Seed:      o.Seed,
		HorizonMS: msF(horizon),
		Rates:     soakRates(),
		Baseline:  soakOnce(o, fns, tr, false),
		Resilient: soakOnce(o, fns, tr, true),
	}
	rerun := soakOnce(o, fns, tr, true)
	a, err := json.Marshal(res.Resilient)
	if err != nil {
		panic(err)
	}
	b, err := json.Marshal(rerun)
	if err != nil {
		panic(err)
	}
	res.Deterministic = bytes.Equal(a, b)
	return res
}

// WriteFile persists the artifact into dir, creating it if needed.
func (r SoakResult) WriteFile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("soak: creating %s: %w", dir, err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, BenchSoakFile)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("soak: writing %s: %w", path, err)
	}
	return nil
}

// Render prints the paired soak digests.
func (r SoakResult) Render() string {
	rows := make([][]string, 0, 2)
	for _, p := range []SoakRun{r.Baseline, r.Resilient} {
		rows = append(rows, []string{
			p.Mode,
			fmt.Sprint(p.Arrivals),
			fmt.Sprint(p.Dropped),
			fmt.Sprintf("%.4f", p.Availability),
			fmt.Sprintf("%.4f", p.GoodputDuringFault),
			fmt.Sprintf("%.4f", p.HitRatio),
			fmt.Sprintf("%.1f", p.MeanMS),
			fmt.Sprintf("%.0f", p.MTTRMS),
			fmt.Sprint(p.Episodes),
			fmt.Sprint(p.Faults.HedgedTransforms),
			fmt.Sprint(p.Faults.BackoffRetries),
		})
	}
	det := "deterministic: second same-seed resilient run was byte-identical"
	if !r.Deterministic {
		det = "NONDETERMINISTIC: same-seed reruns diverged"
	}
	return "Extension: chaos soak (crash/hang + gray slow/flaky/bandwidth; resilient = health routing + backoff + hedging)\n" +
		table([]string{"mode", "arrivals", "dropped", "avail", "goodput@fault", "hit", "mean(ms)", "mttr(ms)", "episodes", "hedged", "backoff"}, rows) +
		"\n" + det
}
