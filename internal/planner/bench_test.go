package planner

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/zoo"
)

func benchPair(b *testing.B, algo Algorithm, src, dst string) {
	img := zoo.Imgclsmob()
	s, d := img.MustGet(src), img.MustGet(dst)
	pl := New(cost.Exact(cost.CPU()), algo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl.Plan(s, d) == nil {
			b.Fatal("nil plan")
		}
	}
}

func BenchmarkGroupSameFamily(b *testing.B) {
	benchPair(b, AlgoGroup, "resnet50-imagenet", "resnet101-imagenet")
}
func BenchmarkGroupCrossFamily(b *testing.B) {
	benchPair(b, AlgoGroup, "vgg16-imagenet", "densenet121-imagenet")
}
func BenchmarkHungarianSameFamily(b *testing.B) {
	benchPair(b, AlgoHungarian, "resnet50-imagenet", "resnet101-imagenet")
}
func BenchmarkBuildMatrix(b *testing.B) {
	img := zoo.Imgclsmob()
	s, d := img.MustGet("resnet50-imagenet"), img.MustGet("vgg16-imagenet")
	est := cost.Exact(cost.CPU())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if BuildMatrix(est, s, d) == nil {
			b.Fatal("nil matrix")
		}
	}
}
