package balancer

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/zoo"
)

func testPlanner() *planner.Planner {
	return planner.New(cost.Exact(cost.CPU()), planner.AlgoGroup)
}

func fnInfos(t *testing.T) []FunctionInfo {
	t.Helper()
	img := zoo.Imgclsmob()
	// Two "families" of functions with anti-correlated demand within family
	// pairs: similar models + complementary demand should cluster together.
	day := []float64{9, 8, 9, 1, 1, 1}
	night := []float64{1, 1, 1, 9, 8, 9}
	return []FunctionInfo{
		{Name: "r18", Model: img.MustGet("resnet18-imagenet"), Demand: day},
		{Name: "r34", Model: img.MustGet("resnet34-imagenet"), Demand: night},
		{Name: "v16", Model: img.MustGet("vgg16-imagenet"), Demand: day},
		{Name: "v19", Model: img.MustGet("vgg19-imagenet"), Demand: night},
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	fns := fnInfos(t)
	d := DistanceMatrix(testPlanner(), fns, Config{})
	n := len(fns)
	for i := 0; i < n; i++ {
		if d[i][i] != 0 {
			t.Errorf("d[%d][%d] = %v, want 0", i, i, d[i][i])
		}
		for j := 0; j < n; j++ {
			if d[i][j] != d[j][i] {
				t.Errorf("distance not symmetric at (%d,%d)", i, j)
			}
			if d[i][j] < 0 || d[i][j] > 1.0001 {
				t.Errorf("d[%d][%d] = %v outside [0,1]", i, j, d[i][j])
			}
		}
	}
	// Same family + complementary demand (r18,r34) must be closer than
	// cross-family + correlated demand (r18, v16).
	if d[0][1] >= d[0][2] {
		t.Errorf("r18-r34 (%v) should be closer than r18-v16 (%v)", d[0][1], d[0][2])
	}
}

func TestKMedoidsClustersFamilies(t *testing.T) {
	fns := fnInfos(t)
	d := DistanceMatrix(testPlanner(), fns, Config{})
	cl := KMedoids(d, 2, Config{Seed: 1})
	if len(cl.Medoids) != 2 {
		t.Fatalf("%d medoids", len(cl.Medoids))
	}
	// ResNets together, VGGs together.
	if cl.Assign[0] != cl.Assign[1] {
		t.Errorf("resnets split across clusters: %v", cl.Assign)
	}
	if cl.Assign[2] != cl.Assign[3] {
		t.Errorf("vggs split across clusters: %v", cl.Assign)
	}
	if cl.Assign[0] == cl.Assign[2] {
		t.Errorf("resnet and vgg merged: %v", cl.Assign)
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	d := [][]float64{{0, 1}, {1, 0}}
	cl := KMedoids(d, 0, Config{}) // k clamped to 1
	if len(cl.Medoids) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d medoids", len(cl.Medoids))
	}
	cl = KMedoids(d, 5, Config{}) // k clamped to n
	if len(cl.Medoids) != 2 {
		t.Errorf("k>n should clamp to n, got %d", len(cl.Medoids))
	}
	for i, a := range cl.Assign {
		if cl.Medoids[a] != i && d[i][cl.Medoids[a]] > 1 {
			t.Error("assignment inconsistent")
		}
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	fns := fnInfos(t)
	d := DistanceMatrix(testPlanner(), fns, Config{})
	a := KMedoids(d, 2, Config{Seed: 7})
	b := KMedoids(d, 2, Config{Seed: 7})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same-seed clustering differs")
		}
	}
}

func TestPlacement(t *testing.T) {
	fns := fnInfos(t)
	pl := Placement(testPlanner(), fns, 2, Config{Seed: 2})
	if len(pl) != len(fns) {
		t.Fatalf("placement covers %d of %d functions", len(pl), len(fns))
	}
	used := map[int]bool{}
	for f, nodes := range pl {
		if len(nodes) == 0 {
			t.Errorf("function %s got no nodes", f)
		}
		for _, n := range nodes {
			if n < 0 || n >= 2 {
				t.Errorf("function %s assigned node %d outside [0,2)", f, n)
			}
			used[n] = true
		}
	}
	if len(used) != 2 {
		t.Errorf("placement used %d of 2 nodes", len(used))
	}
	// Each function is pinned to exactly one node.
	for f, nodes := range pl {
		if len(nodes) != 1 {
			t.Errorf("function %s pinned to %d nodes, want 1", f, len(nodes))
		}
	}
}

func TestApportion(t *testing.T) {
	got := apportion([]float64{10, 10}, 20, 4)
	if got[0] != 2 || got[1] != 2 {
		t.Errorf("even apportion = %v", got)
	}
	got = apportion([]float64{30, 10}, 40, 4)
	if got[0] < got[1] {
		t.Errorf("skewed apportion = %v", got)
	}
	if got[0]+got[1] != 4 {
		t.Errorf("apportion total = %v", got)
	}
	// Every cluster keeps at least one node even with zero load.
	got = apportion([]float64{0, 100}, 100, 3)
	if got[0] < 1 {
		t.Errorf("zero-load cluster starved: %v", got)
	}
	if len(apportion(nil, 0, 3)) != 0 {
		t.Error("empty apportion should be empty")
	}
}

func TestPlacementFewerFunctionsThanNodes(t *testing.T) {
	img := zoo.Imgclsmob()
	fns := []FunctionInfo{
		{Name: "only", Model: img.MustGet("resnet18-imagenet"), Demand: []float64{1, 2}},
	}
	pl := Placement(testPlanner(), fns, 4, Config{})
	if len(pl["only"]) == 0 {
		t.Fatal("single function must still get nodes")
	}
}
