package optimus

import (
	"fmt"
	"io"
	"time"

	"repro/internal/balancer"
	"repro/internal/cost"
	"repro/internal/fanout"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/workload"
	"repro/internal/zoo"
)

// Model is a computational graph: operations (conv, dense, attention, ...)
// connected by dataflow edges.
type Model = model.Graph

// Plan is a sequence of meta-operators transforming one model into another,
// with its cost estimates and the safeguard decision.
type Plan = metaop.Plan

// Registry is a named collection of model generators.
type Registry = zoo.Registry

// Trace is a time-ordered sequence of function invocations.
type Trace = workload.Trace

// FaultRates holds per-event fault-injection probabilities (transform
// aborts, failed loads, container crashes, node outages). The zero value
// disables injection.
type FaultRates = faults.Rates

// FaultStats tallies injected failures and their recoveries over a run.
type FaultStats = metrics.FaultStats

// HealthConfig parameterizes the per-node health state machine (gray-failure
// detection, quarantine, and drain; see DESIGN.md). The zero value disables
// tracking.
type HealthConfig = health.Config

// HealthSummary aggregates a run's health episodes, MTTR, and transition
// counters.
type HealthSummary = health.Summary

// BackoffConfig parameterizes the deterministic seeded crash-retry backoff.
type BackoffConfig = supervisor.BackoffConfig

// HedgeConfig parameterizes hedged backup transforms for hung primaries.
type HedgeConfig = supervisor.HedgeConfig

// FanoutConfig parameterizes fault-tolerant fan-out transform trees (burst
// absorption; see DESIGN.md). The zero value disables them.
type FanoutConfig = fanout.Config

// FanoutStats tallies a run's fan-out trees: replicas built, waves, donor
// crashes, re-parents, quarantines, and time-to-target-warm.
type FanoutStats = metrics.FanoutStats

// Hardware selects the latency profile.
type Hardware int

// Hardware profiles.
const (
	// CPU is the default CPU-server profile.
	CPU Hardware = iota
	// GPU models a GPU-enabled server: faster inference, but much slower
	// runtime initialization and model loading (§8.5).
	GPU
)

func (h Hardware) profile() *cost.Profile {
	if h == GPU {
		return cost.GPU()
	}
	return cost.CPU()
}

// Algorithm selects the transformation planning solver.
type Algorithm = planner.Algorithm

// Planning algorithms.
const (
	// AlgoGroup is the linear-time group-based planner (§4.4 Module 2⁺),
	// the production default.
	AlgoGroup = planner.AlgoGroup
	// AlgoHungarian is the optimal Munkres-assignment planner (Module 2),
	// orders of magnitude slower.
	AlgoHungarian = planner.AlgoHungarian
)

// Imgclsmob returns the 389-model CNN zoo used in the evaluation (§8.1).
func Imgclsmob() *Registry { return zoo.Imgclsmob() }

// BERTZoo returns the 10 BERT variants of §5.2/§8.1.
func BERTZoo() *Registry { return zoo.BERTZoo() }

// RNNZoo returns the recurrent text-model catalog (LSTM/GRU stacks), the
// RNN coverage §7 mentions alongside CNN and transformer models.
func RNNZoo() *Registry { return zoo.RNNZoo() }

// GPTZoo returns the GPT-2-style decoder catalog (DistilGPT-2, GPT-2,
// GPT-2-Medium), a second transformer family sharing BERT's operation
// vocabulary.
func GPTZoo() *Registry { return zoo.GPTZoo() }

// NASBenchModel builds the NAS-Bench-201 architecture with the given index
// (0 ≤ index < 15625) using 5 cells per stage and 10 classes.
func NASBenchModel(index int) (*Model, error) { return zoo.NASBenchModel(index, 5, 10) }

// ---------------------------------------------------------------- Transformer

// Transformer is the inter-function model transformation engine: the paper's
// core contribution as a standalone library. It profiles meta-operator costs
// offline (Module 1), plans transformations (Module 2/2⁺), and caches plans
// for online execution (Module 3).
type Transformer struct {
	prof  *cost.Profile
	pl    *planner.Planner
	cache *planner.Cache
}

// NewTransformer returns a transformer for the given hardware and planning
// algorithm.
func NewTransformer(hw Hardware, algo Algorithm) *Transformer {
	prof := hw.profile()
	return &Transformer{
		prof:  prof,
		pl:    planner.New(cost.Exact(prof), algo),
		cache: planner.NewCache(),
	}
}

// Plan returns the (cached) transformation plan from src to dst, including
// the safeguard decision.
func (t *Transformer) Plan(src, dst *Model) *Plan {
	return t.cache.GetOrPlan(t.pl, src, dst)
}

// Precompute warms the transformer's plan cache with every ordered pair of
// the given models, fanning the pairwise planning across a bounded worker
// pool (workers <= 0 defaults to GOMAXPROCS) — the offline planning phase of
// §4.4 Module 3 as a bulk operation. It returns once every pair is planned;
// plans are identical to those Plan would compute serially.
func (t *Transformer) Precompute(models []*Model, workers int) {
	planner.NewPrecomputer(t.pl, t.cache, workers).PrecomputeAll(models)
}

// Transform executes the plan for src→dst through the meta-operator engine,
// returning the rewritten model and its (simulated) execution time. The
// result is verified to be identical to dst; a verification failure is a
// bug and returns an error.
func (t *Transformer) Transform(src, dst *Model) (*Model, time.Duration, error) {
	plan := t.Plan(src, dst)
	got, took, err := metaop.Apply(t.prof, plan, src, dst)
	if err != nil {
		return nil, 0, err
	}
	if !got.Equal(dst) {
		return nil, 0, fmt.Errorf("optimus: transformation %s→%s did not reproduce the destination model", src.Name, dst.Name)
	}
	return got, took, nil
}

// LoadCost returns the latency of loading m from scratch in a warm container.
func (t *Transformer) LoadCost(m *Model) time.Duration {
	return t.prof.ModelLoad(m).Total()
}

// ColdStartCost returns the full cold-start latency for m: sandbox/runtime
// initialization plus model loading.
func (t *Transformer) ColdStartCost(m *Model) time.Duration {
	return t.prof.ColdStart(m)
}

// ComputeCost returns the inference latency of one request against m.
func (t *Transformer) ComputeCost(m *Model) time.Duration {
	return t.prof.Compute(m)
}

// ---------------------------------------------------------------- System

// PolicyName selects the container-management policy of a System.
type PolicyName string

// Available policies (§8.1 comparison systems).
const (
	PolicyOptimus   PolicyName = "optimus"
	PolicyOpenWhisk PolicyName = "openwhisk"
	PolicyPagurus   PolicyName = "pagurus"
	PolicyTetris    PolicyName = "tetris"
)

func (p PolicyName) impl() (simulate.Policy, error) {
	switch p {
	case PolicyOptimus, "":
		return policy.Optimus{}, nil
	case PolicyOpenWhisk:
		return policy.OpenWhisk{}, nil
	case PolicyPagurus:
		return policy.Pagurus{}, nil
	case PolicyTetris:
		return policy.Tetris{}, nil
	default:
		return nil, fmt.Errorf("optimus: unknown policy %q", p)
	}
}

// SystemConfig parameterizes a serverless ML inference cluster.
type SystemConfig struct {
	// Nodes is the worker count (default 4); ContainersPerNode bounds
	// concurrent containers per node (default 8).
	Nodes             int
	ContainersPerNode int
	// Hardware selects the latency profile (default CPU).
	Hardware Hardware
	// Policy selects the container scheduler (default PolicyOptimus).
	Policy PolicyName
	// KeepAlive (default 10 min) and IdleThreshold (default 60 s) control
	// container lifecycle (§4.2, §8.1).
	KeepAlive     time.Duration
	IdleThreshold time.Duration
	// UseBalancer enables the §5.1 model-sharing-aware K-medoids placement
	// (requires a demand history; Run derives it from the trace). When
	// false, functions are hash-placed.
	UseBalancer bool
	// VerifyTransforms executes every transformation plan through the
	// meta-operator engine and verifies the result (slower; for testing).
	VerifyTransforms bool
	// Seed drives every stochastic choice (default 1).
	Seed int64
	// ProfilingError perturbs the planner's cost estimates by the given
	// relative error (simulated stale/imprecise offline profiling, §6).
	ProfilingError float64
	// OnlineProfiling, when positive, refines the estimates from observed
	// meta-operator execution times at the given EWMA rate (§6 Future Work).
	OnlineProfiling float64
	// NodeMemoryMB bounds each node's container memory; zero keeps the
	// slot-based mode. ContainerMemoryMB > 0 selects homogeneous grants,
	// zero (with NodeMemoryMB set) fine-grained model-sized grants (§6
	// Limitation 1).
	NodeMemoryMB      int
	ContainerMemoryMB int
	// TransformFailures injects faults: this fraction of transformations
	// fail halfway and recover by loading from scratch.
	//
	// Deprecated: set Faults.Transform instead; kept for the original
	// single-fault API.
	TransformFailures float64
	// Faults configures deterministic multi-event fault injection; see
	// the "Failure model & degradation" section of DESIGN.md.
	Faults FaultRates
	// MaxRetries bounds crash/outage re-dispatches per request (0 means
	// the default of 2; negative disables retries).
	MaxRetries int
	// OutageDuration is how long a failed node stays down (default 30 s).
	OutageDuration time.Duration
	// WatchdogFactor enables the supervision watchdog: transformations
	// exceeding WatchdogFactor× their planned cost are cancelled and
	// recovered through the safeguard path. Values ≤ 1 disable it.
	WatchdogFactor float64
	// BreakerThreshold enables the per-(src→dst)-pair transform circuit
	// breaker: after this many consecutive failures the pair routes
	// straight to from-scratch loads until a cooled-down probe succeeds.
	// Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open-breaker wait before a half-open probe
	// (default 5 min).
	BreakerCooldown time.Duration
	// Health configures the per-node health state machine (suspect →
	// quarantine → drain → recover); the zero value disables tracking.
	Health HealthConfig
	// Retry configures the seeded exponential crash-retry backoff; a zero
	// Base disables delays (retries stay immediate).
	Retry BackoffConfig
	// Hedge configures hedged backup transforms for hung primaries; a zero
	// Percentile disables hedging.
	Hedge HedgeConfig
	// Fanout configures fault-tolerant fan-out transform trees for burst
	// absorption; the zero value disables them.
	Fanout FanoutConfig
}

// System is a serverless ML inference cluster: functions bound to models,
// served under a container-management policy over a discrete-event cluster.
type System struct {
	cfg SystemConfig
	fns []*simulate.Function
}

// NewSystem returns an empty system.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &System{cfg: cfg}
}

// Register deploys a function serving the given model. Duplicate names are
// rejected.
func (s *System) Register(name string, m *Model) error {
	if m == nil {
		return fmt.Errorf("optimus: nil model for function %q", name)
	}
	if err := m.Validate(); err != nil {
		return err
	}
	for _, f := range s.fns {
		if f.Name == name {
			return fmt.Errorf("optimus: function %q already registered", name)
		}
	}
	s.fns = append(s.fns, &simulate.Function{Name: name, Model: m})
	return nil
}

// MustRegister is Register but panics on error.
func (s *System) MustRegister(name string, m *Model) {
	if err := s.Register(name, m); err != nil {
		//optimus:allow panicpath — Must-style convenience wrapper: panicking on error is its documented contract
		panic(err)
	}
}

// Functions returns the registered function names in registration order.
func (s *System) Functions() []string {
	out := make([]string, len(s.fns))
	for i, f := range s.fns {
		out[i] = f.Name
	}
	return out
}

// simConfig resolves the system configuration (policy, placement, faults)
// into the simulator's Config for a run over the given trace.
func (s *System) simConfig(trace *Trace) (simulate.Config, error) {
	pol, err := s.cfg.Policy.impl()
	if err != nil {
		return simulate.Config{}, err
	}
	nodes := s.cfg.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	names := s.Functions()
	var placement map[string][]int
	if s.cfg.UseBalancer {
		placement = s.balancerPlacement(trace, nodes)
	} else {
		placement = simulate.HashPlacement(names, nodes)
	}
	return simulate.Config{
		Nodes:                nodes,
		ContainersPerNode:    s.cfg.ContainersPerNode,
		KeepAlive:            s.cfg.KeepAlive,
		IdleThreshold:        s.cfg.IdleThreshold,
		Profile:              s.cfg.Hardware.profile(),
		Policy:               pol,
		Placement:            placement,
		Seed:                 s.cfg.Seed,
		VerifyTransforms:     s.cfg.VerifyTransforms,
		EstimatorErr:         s.cfg.ProfilingError,
		OnlineProfiling:      s.cfg.OnlineProfiling,
		NodeMemoryMB:         s.cfg.NodeMemoryMB,
		ContainerMemoryMB:    s.cfg.ContainerMemoryMB,
		TransformFailureRate: s.cfg.TransformFailures,
		Faults:               s.cfg.Faults,
		MaxRetries:           s.cfg.MaxRetries,
		OutageDuration:       s.cfg.OutageDuration,
		WatchdogFactor:       s.cfg.WatchdogFactor,
		Breaker: supervisor.BreakerConfig{
			Threshold: s.cfg.BreakerThreshold,
			Cooldown:  s.cfg.BreakerCooldown,
		},
		Health: s.cfg.Health,
		Retry:  s.cfg.Retry,
		Hedge:  s.cfg.Hedge,
		Fanout: s.cfg.Fanout,
	}, nil
}

// Run replays the trace against the cluster and returns the report.
func (s *System) Run(trace *Trace) (*Report, error) {
	cfg, err := s.simConfig(trace)
	if err != nil {
		return nil, err
	}
	sim := simulate.New(cfg, s.fns)
	col, err := sim.Run(trace)
	if err != nil {
		return nil, err
	}
	return &Report{
		Collector: col,
		Policy:    string(s.cfg.Policy),
		Verified:  sim.TransformsVerified,
		Health:    sim.Health().Summarize(),
	}, nil
}

// RunSharded replays the trace like Run but splits it across the placement's
// disjoint node groups and replays the groups in parallel on up to `workers`
// goroutines (0 means GOMAXPROCS, 1 forces serial) — see simulate.RunSharded.
// Aggregate results are identical to Run's; when sharding would change
// results (overlapping placement, fault injection, online profiling) the
// replay silently falls back to serial and Report.Sharding says why.
func (s *System) RunSharded(trace *Trace, workers int) (*Report, error) {
	cfg, err := s.simConfig(trace)
	if err != nil {
		return nil, err
	}
	col, rep, err := simulate.RunSharded(cfg, s.fns, trace, workers)
	if err != nil {
		return nil, err
	}
	return &Report{
		Collector: col,
		Policy:    string(s.cfg.Policy),
		Verified:  rep.TransformsVerified,
		Sharding:  rep,
	}, nil
}

// RunStream replays the trace like Run but in constant memory: requests pull
// lazily through a cursor and every record folds into a mergeable summary
// instead of being retained. Aggregate results (counts, mean, kind fractions,
// fault tallies, exact breakdown sums) are identical to Run's; intermediate
// percentiles come from a bounded-error sketch (see DESIGN.md).
func (s *System) RunStream(trace *Trace) (*StreamReport, error) {
	cfg, err := s.simConfig(trace)
	if err != nil {
		return nil, err
	}
	sim := simulate.New(cfg, s.fns)
	sum, err := sim.RunStream(trace.Cursor())
	if err != nil {
		return nil, err
	}
	return &StreamReport{
		Metrics:  sum,
		Policy:   string(s.cfg.Policy),
		Verified: sim.TransformsVerified,
	}, nil
}

// RunWindowed replays the trace through time-windowed optimistic parallelism:
// each window speculates across the placement's per-window independent node
// partitions on up to `workers` goroutines (0 means GOMAXPROCS) and windows
// whose active functions conflict replay serially — no globally disjoint
// placement is required, unlike RunSharded. Results are exactly RunStream's;
// configurations that couple requests globally fall back to serial streaming
// replay, and StreamReport.Windowing says why.
func (s *System) RunWindowed(trace *Trace, windows, workers int) (*StreamReport, error) {
	cfg, err := s.simConfig(trace)
	if err != nil {
		return nil, err
	}
	sum, rep, err := simulate.RunWindowed(cfg, s.fns, trace.Cursor(), trace.Duration, windows, workers)
	if err != nil {
		return nil, err
	}
	return &StreamReport{
		Metrics:   sum,
		Policy:    string(s.cfg.Policy),
		Verified:  rep.TransformsVerified,
		Windowing: rep,
	}, nil
}

func (s *System) balancerPlacement(trace *Trace, nodes int) map[string][]int {
	infos := make([]balancer.FunctionInfo, len(s.fns))
	for i, f := range s.fns {
		infos[i] = balancer.FunctionInfo{
			Name:   f.Name,
			Model:  f.Model,
			Demand: workload.Series(trace, f.Name, balancer.SlotDuration),
		}
	}
	pl := planner.New(cost.Exact(s.cfg.Hardware.profile()), planner.AlgoGroup)
	return balancer.Placement(pl, infos, nodes, balancer.Config{Seed: s.cfg.Seed})
}

// Report summarizes a system run.
type Report struct {
	*metrics.Collector
	// Policy is the container-management policy that produced the report.
	Policy string
	// Verified counts transformation plans executed through the
	// meta-operator engine (only with SystemConfig.VerifyTransforms).
	Verified int
	// Sharding describes how RunSharded parallelized the replay (zero for
	// plain Run).
	Sharding simulate.ShardReport
	// Health aggregates the run's node-health episodes and MTTR (zero when
	// health tracking is disabled, and for RunSharded, which refuses to
	// shard with health tracking on).
	Health HealthSummary
}

// StreamReport summarizes a streaming replay (RunStream or RunWindowed):
// aggregates only, no per-request records.
type StreamReport struct {
	// Metrics is the mergeable run summary: exact counts, means, kind and
	// fault tallies, plus sketched percentiles.
	Metrics *metrics.Summary
	// Policy is the container-management policy that produced the report.
	Policy string
	// Verified counts transformation plans executed through the
	// meta-operator engine (only with SystemConfig.VerifyTransforms).
	Verified int
	// Windowing describes how RunWindowed parallelized the replay (zero for
	// RunStream).
	Windowing simulate.WindowReport
}

// Summary renders a human-readable digest of the streaming run.
func (r *StreamReport) Summary() string {
	fr := r.Metrics.KindFractions()
	return fmt.Sprintf(
		"%d requests: mean %v, p50 %v, p99 %v | warm %.1f%%, transform %.1f%%, cold %.1f%%",
		r.Metrics.Count(), r.Metrics.MeanLatency(), r.Metrics.Percentile(50), r.Metrics.Percentile(99),
		100*fr[metrics.StartWarm], 100*fr[metrics.StartTransform], 100*fr[metrics.StartCold])
}

// FaultSummary renders the run's failure/recovery tallies, or "" when no
// fault was injected.
func (r *StreamReport) FaultSummary() string {
	f := r.Metrics.Faults
	if !f.Any() {
		return ""
	}
	return fmt.Sprintf(
		"faults: %d transform fallbacks, %d load retries, %d crashes, %d outages | %d retries, %d dropped",
		f.TransformFallbacks, f.LoadRetries, f.Crashes, f.Outages, f.Retries, f.Dropped)
}

// WindowSummary renders how the windowed replay parallelized, or "" for a
// plain streaming run.
func (r *StreamReport) WindowSummary() string {
	w := r.Windowing
	if w.Workers == 0 {
		return ""
	}
	if !w.Windowed() {
		return fmt.Sprintf("windows: serial fallback (%s)", w.SerialReason)
	}
	return fmt.Sprintf("windows: %d replayed, %d parallel (max %d partitions), %d conflict-serial, %d workers",
		w.Windows, w.ParallelWindows, w.MaxGroups, w.ConflictWindows, w.Workers)
}

// FanoutSummary renders the run's fan-out tree tallies, or "" when no tree
// triggered.
func (r *Report) FanoutSummary() string {
	f := r.Fanout
	if !f.Any() {
		return ""
	}
	out := fmt.Sprintf(
		"fanout: %d trees (%d completed), %d replicas in %d waves, warm in %v",
		f.Trees, f.TreesCompleted, f.Recipients, f.Waves, f.TimeToWarm)
	if f.DonorCrashes > 0 || f.Reparents > 0 || f.CorruptOutputs > 0 {
		out += fmt.Sprintf(" | %d donor crashes (%d re-parents), %d corrupt (%d quarantined)",
			f.DonorCrashes, f.Reparents, f.CorruptOutputs, f.Quarantined)
	}
	if f.WaveCancels > 0 || f.LoadFallbacks > 0 {
		out += fmt.Sprintf(" | %d wave cancels, %d fallback loads",
			f.WaveCancels, f.LoadFallbacks)
	}
	return out
}

// FaultSummary renders the run's failure/recovery tallies, or "" when no
// fault was injected (so zero-rate runs print nothing new).
func (r *Report) FaultSummary() string {
	f := r.Faults
	if !f.Any() {
		return ""
	}
	out := fmt.Sprintf(
		"faults: %d transform fallbacks, %d load retries, %d crashes, %d outages | %d retries, %d dropped",
		f.TransformFallbacks, f.LoadRetries, f.Crashes, f.Outages, f.Retries, f.Dropped)
	if f.Hangs > 0 || f.WatchdogCancels > 0 || f.BreakerShortCircuits > 0 {
		out += fmt.Sprintf(" | %d hangs (%d watchdog-cancelled), %d breaker short-circuits",
			f.Hangs, f.WatchdogCancels, f.BreakerShortCircuits)
	}
	if f.SlowWindows > 0 || f.FlakyWindows > 0 || f.BandwidthWindows > 0 {
		out += fmt.Sprintf(" | gray: %d slow, %d flaky (%d fallbacks), %d bandwidth windows",
			f.SlowWindows, f.FlakyWindows, f.FlakyFallbacks, f.BandwidthWindows)
	}
	if f.HedgedTransforms > 0 || f.BackoffRetries > 0 {
		out += fmt.Sprintf(" | %d hedged (%d wins), %d backoff-delayed retries",
			f.HedgedTransforms, f.HedgeWins, f.BackoffRetries)
	}
	if r.Health.Episodes > 0 || r.Health.Suspects > 0 {
		out += fmt.Sprintf(" | health: %d episodes, MTTR %.0fms, %d quarantines",
			r.Health.Episodes, r.Health.MTTRMS, r.Health.Quarantines)
	}
	return out
}

// Summary renders a human-readable digest of the run.
func (r *Report) Summary() string {
	fr := r.KindFractions()
	return fmt.Sprintf(
		"%d requests: mean %v, p50 %v, p99 %v | warm %.1f%%, transform %.1f%%, cold %.1f%%",
		r.Len(), r.MeanLatency(), r.Percentile(50), r.Percentile(99),
		100*fr[metrics.StartWarm], 100*fr[metrics.StartTransform], 100*fr[metrics.StartCold])
}

// ---------------------------------------------------------------- Workloads

// PoissonTrace generates independent Poisson arrivals at ratePerSec for
// every function over the duration.
func PoissonTrace(fns []string, ratePerSec float64, duration time.Duration, seed int64) *Trace {
	return workload.Poisson(fns, ratePerSec, duration, seed)
}

// MixedPoissonTrace assigns functions round-robin to the paper's three
// Poisson intensities (§8.1).
func MixedPoissonTrace(fns []string, duration time.Duration, seed int64) *Trace {
	return workload.MixedPoisson(fns, duration, seed)
}

// AzureTrace generates the production-like synthetic workload substituting
// for the Microsoft Azure Functions trace (§8.1; see DESIGN.md).
func AzureTrace(fns []string, duration time.Duration, seed int64) *Trace {
	return workload.AzureLike(fns, duration, seed)
}

// WriteTrace persists a trace as CSV; ReadTrace loads one back.
func WriteTrace(w io.Writer, t *Trace) error { return t.WriteCSV(w) }

// ReadTrace loads a CSV trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return workload.ReadCSV(r) }

// ReadAzureInvocations parses the Microsoft Azure Functions production trace
// format (per-function per-minute invocation counts) into a replayable
// trace, for users with access to the proprietary dataset the paper uses.
func ReadAzureInvocations(r io.Reader) (*Trace, error) {
	return workload.ReadAzureInvocationsCSV(r)
}
