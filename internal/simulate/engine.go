package simulate

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/fanout"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/supervisor"
	"repro/internal/workload"
)

// Config parameterizes a cluster simulation.
type Config struct {
	// Nodes is the worker-node count; ContainersPerNode bounds concurrent
	// containers per node.
	Nodes             int
	ContainersPerNode int
	// KeepAlive is the container keep-alive horizon (default 10 min, §8.1).
	KeepAlive time.Duration
	// IdleThreshold is the §4.2 idle-identification threshold (default 60 s).
	IdleThreshold time.Duration
	// Profile is the hardware cost profile (default cost.CPU()).
	Profile *cost.Profile
	// Policy is the container-management policy under test.
	Policy Policy
	// Placement maps function name → candidate node IDs. Functions absent
	// from the map (or a nil map) are hashed across all nodes.
	Placement map[string][]int
	// PlannerAlgo selects the transformation planning algorithm for
	// policies that plan (default AlgoGroup).
	PlannerAlgo planner.Algorithm
	// PlanCacheMax bounds the planning-strategy cache: beyond it the least
	// recently used plan is evicted (eviction counters surface through
	// planner.Cache.Counters). Zero keeps the cache unbounded.
	PlanCacheMax int
	// EstimatorErr adds deterministic profiling noise to planner estimates.
	EstimatorErr float64
	// Seed drives the estimator noise.
	Seed int64
	// VerifyTransforms executes every transformation plan through the
	// meta-operator engine and checks the rewritten graph equals the
	// destination model. Slower; used in tests and small demos.
	VerifyTransforms bool
	// OnlineProfiling, when positive, is the EWMA rate at which observed
	// meta-operator execution times refine the planner's cost estimates
	// while the system runs (§6 Future Work). Zero keeps the paper's
	// offline-only profiling.
	OnlineProfiling float64
	// NodeMemoryMB bounds each node's total container memory; zero keeps
	// the slot-based mode. ContainerMemoryMB, when positive, fixes every
	// container's grant (homogeneous allocation); zero with NodeMemoryMB
	// set sizes containers to their models (fine-grained, §6).
	NodeMemoryMB      int
	ContainerMemoryMB int
	// TransformFailureRate injects faults: the given fraction of
	// transformations fail halfway and recover by loading the destination
	// model from scratch in the same container. Exercises the robustness of
	// the recovery path; zero (default) disables injection.
	//
	// Deprecated: set Faults.Transform instead; this field is folded into
	// it and kept for callers of the original single-fault API.
	TransformFailureRate float64
	// Faults configures deterministic multi-event fault injection
	// (transform aborts, failed loads, container crashes, node outages);
	// see package faults. The zero value disables injection, leaving the
	// simulation byte-identical to a run without the injector.
	Faults faults.Rates
	// MaxRetries bounds how many times a request whose container crashed
	// (or whose node failed) is re-dispatched before being dropped.
	// Zero means the default (2); negative disables retries entirely.
	MaxRetries int
	// OutageDuration is how long a failed node stays down before routing
	// considers it again (default 30 s).
	OutageDuration time.Duration
	// WatchdogFactor enables the supervision watchdog: a transformation
	// exceeding WatchdogFactor× its planned cost is cancelled and recovered
	// through the safeguard path (StartTimeout). Values at or below 1
	// disable the watchdog, leaving hung transforms undetected.
	WatchdogFactor float64
	// HangFactor is how far past its planned cost an *undetected* hung
	// transformation runs before finishing (default 10×). Only consulted
	// when Faults.Hang fires without a watchdog configured.
	HangFactor float64
	// Breaker configures the per-(src→dst)-pair transform circuit breaker;
	// the zero value (Threshold 0) disables it.
	Breaker supervisor.BreakerConfig
	// SlowFactor multiplies service time on a node inside an injected gray
	// slow window (default 4); SlowDuration is the window length
	// (default 60 s).
	SlowFactor   float64
	SlowDuration time.Duration
	// FlakyDuration is the flaky-donor window length (default 60 s): while
	// it lasts, transformations sourced on the node abort and recover
	// through the safeguard fallback.
	FlakyDuration time.Duration
	// BandwidthFactor multiplies transform cost on a node inside a degraded
	// transform-bandwidth window (default 3); BandwidthDuration is the
	// window length (default 60 s).
	BandwidthFactor   float64
	BandwidthDuration time.Duration
	// Health configures the per-node gray-failure health state machine
	// (package health): routing and donor selection skip quarantined and
	// draining nodes. The zero value disables tracking.
	Health health.Config
	// Retry configures seeded exponential backoff + jitter for crash and
	// outage re-dispatch; a zero Base keeps the immediate bounded retries.
	Retry supervisor.BackoffConfig
	// Hedge configures hedged transform starts: a transform hanging past
	// the configured percentile of observed transform durations gets a
	// backup started from the next-best donor, and the loser is cancelled.
	// A zero Percentile disables hedging.
	Hedge supervisor.HedgeConfig
	// Fanout configures fault-tolerant transform fan-out trees for burst
	// absorption (package fanout): a per-node queue for a function crossing
	// the threshold triggers a multicast-style replication tree seeded from
	// the function's warm containers, with every completed replica donating
	// to the next wave. Trace-replay (event-loop) mode only — Online serving
	// never queues, so trees never trigger there. The zero value disables it.
	Fanout fanout.Config
	// RouteScan forces the legacy O(nodes×containers) scanning router for
	// trace replay instead of the incrementally-maintained routing index —
	// the "current engine" baseline for the scale benchmark.
	RouteScan bool
	// CrossCheckRouting runs the indexed and scanning routers side by side on
	// every dispatch and panics on the first divergence. Debug/test only:
	// it pays both routers' cost.
	CrossCheckRouting bool
	// CrossCheckWindows makes RunWindowed keep a second, fully serial
	// simulator in lockstep and compare every window's record multiset,
	// panicking on the first divergence. Debug/test only: it pays the serial
	// run's full cost and retains records, forfeiting constant memory.
	CrossCheckWindows bool
}

// memoryMode derives the allocation mode from the config.
func (c Config) memoryMode() MemoryMode {
	switch {
	case c.NodeMemoryMB <= 0:
		return MemorySlots
	case c.ContainerMemoryMB > 0:
		return MemoryHomogeneous
	default:
		return MemoryFineGrained
	}
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.ContainersPerNode <= 0 {
		c.ContainersPerNode = 8
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = 10 * time.Minute
	}
	if c.IdleThreshold <= 0 {
		c.IdleThreshold = 60 * time.Second
	}
	if c.Profile == nil {
		c.Profile = cost.CPU()
	}
	if c.TransformFailureRate > 0 && c.Faults.Transform == 0 {
		c.Faults.Transform = c.TransformFailureRate
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.OutageDuration <= 0 {
		c.OutageDuration = 30 * time.Second
	}
	if c.HangFactor <= 1 {
		c.HangFactor = 10
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 4
	}
	if c.SlowDuration <= 0 {
		c.SlowDuration = 60 * time.Second
	}
	if c.FlakyDuration <= 0 {
		c.FlakyDuration = 60 * time.Second
	}
	if c.BandwidthFactor <= 1 {
		c.BandwidthFactor = 3
	}
	if c.BandwidthDuration <= 0 {
		c.BandwidthDuration = 60 * time.Second
	}
	if c.Fanout.Enabled {
		c.Fanout = c.Fanout.WithDefaults()
	}
	return c
}

// Simulator runs request traces against a simulated cluster.
type Simulator struct {
	cfg   Config
	env   *Env
	nodes []*Node
	fns   map[string]*Function
	// fnRt caches per-function routing state (candidate nodes, home hash,
	// inter-arrival EWMA) so the hot path does no map lookups or slice
	// building per request.
	fnRt map[string]*fnRuntime
	// ords assigns each *Function a dense ordinal, the key for the routing
	// index's per-function counter slices. Shared with every nodeIndex.
	ords map[*Function]int32

	clock  time.Duration
	events eventHeap
	seq    int
	// idxOn reports that the per-node routing index is enabled (trace
	// replay without RouteScan); Online mode keeps it off.
	idxOn bool

	collector metrics.Collector
	// TransformsVerified counts plans executed through the meta-operator
	// engine when VerifyTransforms is on.
	TransformsVerified int

	est *cost.Estimator
	inj *faults.Injector
	// TransformsFailed counts injected transformation failures.
	TransformsFailed int

	watchdog *supervisor.Watchdog
	breaker  *supervisor.Breaker
	health   *health.Tracker
	backoff  *supervisor.Backoff
	hedger   *supervisor.Hedger

	// fanouts holds the active fan-out tree per function name; fanoutLog
	// keeps every tree started so Run can fold incomplete trees' tallies into
	// the collector at the end.
	fanouts   map[string]*fanoutRun
	fanoutLog []*fanoutRun
}

// fnRuntime is the per-function hot-path state: the resolved candidate node
// list and routing hash (static per simulation), and the inter-arrival EWMA
// the repurposing eligibility test consults. Keyed by function name so a
// redeploy under the same name keeps its demand statistics, matching the
// previous map-based bookkeeping.
type fnRuntime struct {
	fn    *Function
	cands []*Node
	hash  uint32
	// ord is the function's simulator-scoped ordinal: the dense key the
	// routing index uses for its per-function counters.
	ord int32

	// compute caches Profile.Compute(fn.Model) — a full graph walk, pure in
	// the model — so the hot path charges it without re-deriving per request.
	compute    time.Duration
	hasCompute bool

	lastArrival time.Duration
	hasLast     bool
	meanGap     time.Duration
	hasGap      bool
}

// New builds a simulator over the given functions.
func New(cfg Config, fns []*Function) *Simulator {
	cfg = cfg.withDefaults()
	est := cost.NewEstimator(cfg.Profile, cfg.EstimatorErr, cfg.Seed)
	if cfg.OnlineProfiling > 0 {
		est.EnableOnlineProfiling(cfg.OnlineProfiling)
	}
	s := &Simulator{
		cfg: cfg,
		est: est,
		env: &Env{
			Profile:           cfg.Profile,
			Planner:           planner.New(est, cfg.PlannerAlgo),
			Plans:             planner.NewCacheBounded(cfg.PlanCacheMax),
			IdleThreshold:     cfg.IdleThreshold,
			KeepAlive:         cfg.KeepAlive,
			MemoryMode:        cfg.memoryMode(),
			ContainerMemoryMB: cfg.ContainerMemoryMB,
		},
		fns: make(map[string]*Function, len(fns)),
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &Node{ID: i, Capacity: cfg.ContainersPerNode, MemoryMB: cfg.NodeMemoryMB})
	}
	for _, f := range fns {
		s.fns[f.Name] = f
	}
	s.fnRt = make(map[string]*fnRuntime, len(fns))
	s.ords = make(map[*Function]int32, len(fns))
	s.inj = faults.New(cfg.Seed^0x5f3759df, cfg.Faults)
	s.watchdog = supervisor.NewWatchdog(supervisor.WatchdogConfig{Factor: cfg.WatchdogFactor})
	s.breaker = supervisor.NewBreaker(cfg.Breaker)
	s.health = health.New(cfg.Health, cfg.Nodes)
	s.backoff = supervisor.NewBackoff(cfg.Retry, cfg.Seed^0x3ade68b1)
	s.hedger = supervisor.NewHedger(cfg.Hedge)
	s.env.MeanInterArrival = func(fn string) (time.Duration, bool) {
		if r, ok := s.fnRt[fn]; ok && r.hasGap {
			return r.meanGap, true
		}
		return 0, false
	}
	return s
}

// rt returns fn's cached runtime state, building it on first use. The
// function pointer is refreshed each call so an Online redeploy under the
// same name takes effect while keeping the accumulated demand statistics.
func (s *Simulator) rt(fn *Function) *fnRuntime {
	r, ok := s.fnRt[fn.Name]
	if !ok {
		r = &fnRuntime{hash: hash32(fn.Name), cands: s.resolveCandidates(fn.Name)}
		s.fnRt[fn.Name] = r
	}
	if r.fn != fn {
		r.fn = fn
		r.hasCompute = false // redeploy: the model may have changed
		r.ord = s.ordFor(fn)
	}
	return r
}

// ordFor returns fn's dense counter ordinal, assigning on first contact. The
// table is shared with every node's routing index.
func (s *Simulator) ordFor(fn *Function) int32 {
	ord, ok := s.ords[fn]
	if !ok {
		ord = int32(len(s.ords))
		s.ords[fn] = ord
	}
	return ord
}

// computeFor returns fn's per-request compute time, cached on its runtime.
func (s *Simulator) computeFor(fr *fnRuntime) time.Duration {
	if !fr.hasCompute {
		fr.compute = s.env.Profile.Compute(fr.fn.Model)
		fr.hasCompute = true
	}
	return fr.compute
}

// resolveCandidates maps a function's placement entry to node pointers,
// mirroring candidates(): invalid IDs are dropped, and an absent or empty
// entry binds the function to every node.
func (s *Simulator) resolveCandidates(name string) []*Node {
	if ids, ok := s.cfg.Placement[name]; ok && len(ids) > 0 {
		out := make([]*Node, 0, len(ids))
		for _, id := range ids {
			if id >= 0 && id < len(s.nodes) {
				out = append(out, s.nodes[id])
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return s.nodes
}

// observeArrival updates the per-function inter-arrival EWMA used by the
// repurposing eligibility test.
func (s *Simulator) observeArrival(fr *fnRuntime, at time.Duration) {
	if fr.hasLast {
		gap := at - fr.lastArrival
		if fr.hasGap {
			fr.meanGap = (fr.meanGap*4 + gap) / 5
		} else {
			fr.meanGap, fr.hasGap = gap, true
		}
	}
	fr.lastArrival, fr.hasLast = at, true
}

// enableIndex builds the per-node routing index from current cluster state
// (empty at the start of a replay).
func (s *Simulator) enableIndex() {
	if s.idxOn {
		return
	}
	s.idxOn = true
	for _, n := range s.nodes {
		ix := newNodeIndex(s.env.IdleThreshold, s.ords)
		n.idx = ix
		var young []idxTimer
		for _, c := range n.Containers {
			c.idxOrd = ix.ordOf(c.Fn)
			switch {
			case c.Busy(s.clock):
				c.idxState = idxBusy
				ix.busy++
				ix.busyMB += c.MemMB
				ix.timers.push(idxTimer{at: c.BusyUntil, c: c})
				// If the busy period ends young with this LastDone still in
				// place (no completion event re-keys it, e.g. an Online-served
				// container), maturation needs a timer keyed to it.
				young = append(young, idxTimer{at: c.LastDone + ix.minIdle, c: c})
			case s.clock-c.LastDone >= ix.minIdle:
				c.idxState = idxMature
				ix.warm[c.idxOrd]++
				ix.mature[c.idxOrd]++
				ix.matureTotal++
			default:
				c.idxState = idxYoung
				ix.warm[c.idxOrd]++
				young = append(young, idxTimer{at: c.LastDone + ix.minIdle, c: c})
			}
		}
		// The maturation ring requires monotone fire times; pre-existing idle
		// containers carry arbitrary LastDone values, so sort before seeding.
		sort.Slice(young, func(i, j int) bool { return young[i].at < young[j].at })
		for _, t := range young {
			ix.matureQ.push(t)
		}
	}
}

// Env exposes the simulator's policy environment (plan cache, planner).
func (s *Simulator) Env() *Env { return s.env }

// Collector returns the accumulated request metrics.
func (s *Simulator) Collector() *metrics.Collector { return &s.collector }

// Run replays the trace to completion and returns the collected metrics.
// Unknown function names in the trace are an error.
//
// Arrivals are not pushed onto the event heap: the trace is resolved and
// time-sorted upfront, then stream-merged with engine events, keeping the
// heap sized by in-flight work instead of trace length. Ordering matches the
// previous all-in-one heap exactly: at equal timestamps arrivals fire before
// engine events (arrivals held the lower sequence numbers), arrivals keep
// trace order (stable sort), and engine events keep scheduling order.
func (s *Simulator) Run(trace *workload.Trace) (*metrics.Collector, error) {
	type arrival struct {
		at time.Duration
		fr *fnRuntime
	}
	arrivals := make([]arrival, len(trace.Requests))
	inOrder := true
	for i, r := range trace.Requests {
		fn, ok := s.fns[r.Function]
		if !ok {
			return nil, fmt.Errorf("simulate: trace references unknown function %q", r.Function)
		}
		arrivals[i] = arrival{at: r.At, fr: s.rt(fn)}
		if i > 0 && r.At < arrivals[i-1].at {
			inOrder = false
		}
	}
	if !inOrder {
		sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })
	}
	if !s.cfg.RouteScan || s.cfg.CrossCheckRouting {
		s.enableIndex()
	}
	s.collector.Reserve(s.collector.Len() + len(arrivals))
	next := 0
	for next < len(arrivals) || len(s.events) > 0 {
		if next < len(arrivals) && (len(s.events) == 0 || arrivals[next].at <= s.events[0].at) {
			a := arrivals[next]
			next++
			s.clock = a.at
			s.arrive(a.fr, a.at)
			continue
		}
		s.step(s.events.pop())
	}
	// Trees that never reached their target (capacity-starved, donors all
	// lost, or the trace simply ended) still report what they did.
	for _, run := range s.fanoutLog {
		s.mergeFanout(run)
	}
	return &s.collector, nil
}

// step advances the clock to the event and fires it.
func (s *Simulator) step(ev event) {
	s.clock = ev.at
	switch ev.kind {
	case evDispatch:
		s.dispatch(ev.fr, ev.arrival, ev.retries)
	case evComplete:
		s.complete(ev.node, ev.c)
	case evCrash:
		s.crash(ev.node, ev.c)
	case evFanoutStruct:
		s.fanoutStruct(ev)
	case evFanoutDone:
		s.fanoutDone(ev)
	case evFanoutCrash:
		s.fanoutCrash(ev)
	}
}

// RunStream replays requests pulled lazily from src — the constant-memory
// twin of Run: no arrivals slice is materialized, and the collector runs in
// streaming mode, folding every record into a mergeable Summary instead of
// retaining it. Memory is bounded by cluster state (nodes, containers,
// in-flight events), independent of trace length.
//
// The arrival/event interleaving matches Run exactly: at equal timestamps
// arrivals fire before engine events. src must yield requests in
// nondecreasing timestamp order (any Stream or Trace.Cursor qualifies);
// out-of-order input or an unknown function name is an error.
func (s *Simulator) RunStream(src workload.Cursor) (*metrics.Summary, error) {
	sum := &metrics.Summary{}
	s.collector.StreamInto(sum)
	if !s.cfg.RouteScan || s.cfg.CrossCheckRouting {
		s.enableIndex()
	}
	req, ok := src.Next()
	var last time.Duration
	for ok || len(s.events) > 0 {
		if ok && (len(s.events) == 0 || req.At <= s.events[0].at) {
			if req.At < last {
				return nil, fmt.Errorf("simulate: stream out of order: %v after %v", req.At, last)
			}
			last = req.At
			fn, known := s.fns[req.Function]
			if !known {
				return nil, fmt.Errorf("simulate: trace references unknown function %q", req.Function)
			}
			fr := s.rt(fn)
			s.clock = req.At
			s.arrive(fr, req.At)
			req, ok = src.Next()
			continue
		}
		s.step(s.events.pop())
	}
	for _, run := range s.fanoutLog {
		s.mergeFanout(run)
	}
	sum.Faults.Merge(s.collector.Faults)
	sum.Fanout.Merge(s.collector.Fanout)
	return sum, nil
}

type eventKind uint8

const (
	// evDispatch re-dispatches a request parked while all its candidate
	// nodes were down.
	evDispatch eventKind = iota
	// evComplete frees a container at its service completion.
	evComplete
	// evCrash destroys a container at its injected crash point.
	evCrash
	// evFanoutStruct finishes a fan-out recipient's local structure load.
	evFanoutStruct
	// evFanoutDone finishes a fan-out recipient's weights stream or fallback
	// load, idling the warm replica into service.
	evFanoutDone
	// evFanoutCrash kills a fan-out donor midway through a donation.
	evFanoutCrash
)

// event is a typed engine event. A flat struct on a hand-rolled heap instead
// of closures through container/heap: no per-event closure allocation and no
// interface boxing on push/pop.
type event struct {
	at      time.Duration
	seq     int
	kind    eventKind
	node    *Node
	c       *Container
	fr      *fnRuntime
	arrival time.Duration
	retries int
	// fo, member and gen drive fan-out tree events: the run, the tree member
	// the event concerns, and the generation it was scheduled under — stale
	// events (member rescheduled or torn down since) are dropped at fire time.
	fo     *fanoutRun
	member int
	gen    int
	// foCorrupt carries the pre-drawn faults.Corrupt outcome of a scheduled
	// donation, so the draw order is fixed at scheduling time.
	foCorrupt bool
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.before(p, i) {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.before(l, small) {
			small = l
		}
		if r < n && q.before(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

func (s *Simulator) schedule(ev event) {
	ev.seq = s.seq
	s.seq++
	s.events.push(ev)
}

// arrive routes a new request to a node and tries to serve it.
func (s *Simulator) arrive(fr *fnRuntime, arrival time.Duration) {
	s.observeArrival(fr, arrival)
	if s.inj.Fire(faults.Outage) {
		s.failNode(s.routeFor(fr))
	}
	if s.inj.Fire(faults.Slow) {
		s.slowNode(s.routeFor(fr))
	}
	s.dispatch(fr, arrival, 0)
}

// slowNode opens (or extends) a gray slow window on the node: it keeps
// serving, but SlowFactor× slower, until the window closes.
func (s *Simulator) slowNode(n *Node) {
	if !n.Slow(s.clock) {
		s.collector.Faults.SlowWindows++
	}
	n.SlowUntil = s.clock + s.cfg.SlowDuration
}

// dispatch routes a (possibly retried) request. When every candidate node is
// down it parks the request until the earliest recovery.
func (s *Simulator) dispatch(fr *fnRuntime, arrival time.Duration, retries int) {
	node := s.routeFor(fr)
	if node.Down(s.clock) {
		// The router only returns a down node when the whole candidate set
		// is down; park until the earliest recovery.
		at := node.DownUntil
		for _, n := range fr.cands {
			if n.DownUntil < at {
				at = n.DownUntil
			}
		}
		s.schedule(event{at: at, kind: evDispatch, fr: fr, arrival: arrival, retries: retries})
		return
	}
	s.serveOrQueue(node, fr, arrival, retries)
}

// failNode takes a node down for the configured outage duration: resident
// containers are lost, and queued plus in-flight requests are re-dispatched
// to the surviving nodes within their retry budgets.
func (s *Simulator) failNode(n *Node) {
	n.DownUntil = s.clock + s.cfg.OutageDuration
	s.collector.Faults.Outages++
	lost := n.Containers
	n.Containers = nil
	requeue := n.queue
	n.queue = nil
	if n.idx != nil {
		n.idx.reset()
	}
	s.health.ObserveFailure(n.ID, s.clock)
	for _, c := range lost {
		c.dead = true
		c.idxState = idxNone
		s.watchdog.Expire(c.ID)
		if c.hasServing {
			c.hasServing = false
			if c.crashPending {
				// Only a crash-pending request is still unrecorded; any other
				// in-flight service was committed at serve time and must not
				// be re-dispatched (it would be counted twice).
				c.crashPending = false
				s.retryOrDrop(c.serving)
			}
		}
	}
	for _, q := range requeue {
		s.dispatch(q.fr, q.arrival, q.retries)
	}
	// The outage may have wiped fan-out tree members; reconcile retires them
	// and re-parents any children that were streaming from them.
	s.pumpFanouts()
}

// retryOrDrop re-dispatches a request whose container was lost, or drops it
// once the retry budget is exhausted. With a retry backoff configured the
// re-dispatch is delayed by the seeded exponential backoff instead of firing
// immediately.
func (s *Simulator) retryOrDrop(in inflight) {
	if in.retries >= s.cfg.MaxRetries {
		s.collector.Faults.Dropped++
		return
	}
	s.collector.Faults.Retries++
	if d := s.backoff.Delay(in.retries); d > 0 {
		s.collector.Faults.BackoffRetries++
		s.schedule(event{at: s.clock + d, kind: evDispatch, fr: in.fr, arrival: in.arrival, retries: in.retries + 1})
		return
	}
	s.dispatch(in.fr, in.arrival, in.retries+1)
}

// unroutable reports whether routing should skip the node at now: down from
// an injected outage, or avoided by the health tracker (quarantined or
// draining). Both routers and candidates() apply it identically, so the
// CrossCheckRouting oracle stays exact with health-aware routing on.
func (s *Simulator) unroutable(n *Node, now time.Duration) bool {
	if n.Down(now) {
		return true
	}
	return s.health != nil && s.health.Avoid(n.ID, now)
}

// routeFor routes through the index when enabled, falling back to (or
// cross-checking against) the legacy scanning router.
func (s *Simulator) routeFor(fr *fnRuntime) *Node {
	if !s.idxOn {
		return s.route(fr.fn)
	}
	picked := s.routeIndexed(fr)
	if s.cfg.CrossCheckRouting {
		if scan := s.route(fr.fn); scan != picked {
			//optimus:allow panicpath — cross-check oracle: indexed routing diverged from the scan baseline
			panic(fmt.Sprintf(
				"simulate: routing divergence for %q at %v: index chose node %d, scan chose node %d",
				fr.fn.Name, s.clock, picked.ID, scan.ID))
		}
	}
	return picked
}

// route picks the best candidate node for fn: a warm idle container wins,
// then a repurposable idle container, then free capacity, finally the
// shortest queue. Among otherwise-equal nodes the function's hash-derived
// "home" node within its candidate set wins, so a function placed on a
// multi-node cluster keeps warm-container locality instead of fragmenting
// containers across the cluster.
//
// This is the legacy scanning router: O(containers) per candidate node. It
// serves the Online path, the RouteScan baseline, and the CrossCheckRouting
// oracle; trace replay normally routes through routeIndexed.
func (s *Simulator) route(fn *Function) *Node {
	cands := s.candidates(fn)
	now := s.clock
	home := cands[int(hash32(fn.Name))%len(cands)]
	best := cands[0]
	bestScore := -1 << 30
	for _, n := range cands {
		score := 0
		switch {
		case n.WarmIdle(fn, now) != nil:
			score = 3_000_000
		case n.HasIdleOther(fn, now, s.env.IdleThreshold):
			score = 2_000_000
		case n.CanPlace(now):
			score = 1_000_000
		}
		if n == home {
			score += 500_000
		}
		score -= len(n.queue)*10 + s.busyCount(n, now)
		if score > bestScore {
			bestScore = score
			best = n
		}
	}
	return best
}

// routeIndexed is route() answered from the per-node index: no candidate
// slice is built and no container is scanned. It iterates fr's cached
// candidate list, skipping down nodes exactly as candidates() filters them
// (when everything is down the full list is scored, mirroring the fallback),
// and scores each node from counters expire() brings up to date.
func (s *Simulator) routeIndexed(fr *fnRuntime) *Node {
	now := s.clock
	ord := fr.ord
	cands := fr.cands
	up := 0
	for _, n := range cands {
		if !s.unroutable(n, now) {
			up++
		}
	}
	all := up == 0 || up == len(cands)
	var homeIdx int
	if all {
		homeIdx = int(fr.hash) % len(cands)
	} else {
		homeIdx = int(fr.hash) % up
	}
	// Fast path for the dominant case: a warm home node is the unique argmax,
	// so the scoring loop (and the other candidates' expire calls) can be
	// skipped. Proof: the home node scores 3.5M − p_home with penalty
	// p = 10·queue + busy ≥ 0; every other node scores ≤ 3M − p_other ≤ 3M.
	// With p_home < 500_000 the home score is strictly above 3M, and a tie
	// would need p_other = p_home − 500_000 < 0 — impossible. The guard keeps
	// exactness even under pathological queue lengths, and the rare
	// partly-down case falls through to the full scan.
	if all {
		home := cands[homeIdx]
		ix := home.idx
		ix.expire(now)
		if ix.warmAt(ord) > 0 && len(home.queue)*10+ix.busy < 500_000 {
			return home
		}
	}
	var best *Node
	bestScore := -1 << 30
	i := 0
	for _, n := range cands {
		if !all && s.unroutable(n, now) {
			continue
		}
		ix := n.idx
		ix.expire(now)
		score := 0
		switch {
		case ix.warmAt(ord) > 0:
			score = 3_000_000
		case ix.matureTotal-int(ix.matureAt(ord)) > 0:
			score = 2_000_000
		case ix.busy < n.Capacity && (n.MemoryMB == 0 || ix.busyMB <= n.MemoryMB):
			score = 1_000_000
		}
		if i == homeIdx {
			score += 500_000
		}
		score -= len(n.queue)*10 + ix.busy
		if score > bestScore {
			bestScore = score
			best = n
		}
		i++
	}
	return best
}

func (s *Simulator) busyCount(n *Node, now time.Duration) int {
	c := 0
	for _, ct := range n.Containers {
		if ct.Busy(now) {
			c++
		}
	}
	return c
}

func (s *Simulator) candidates(fn *Function) []*Node {
	base := s.nodes
	if ids, ok := s.cfg.Placement[fn.Name]; ok && len(ids) > 0 {
		out := make([]*Node, 0, len(ids))
		for _, id := range ids {
			if id >= 0 && id < len(s.nodes) {
				out = append(out, s.nodes[id])
			}
		}
		if len(out) > 0 {
			base = out
		}
	}
	// Route around failed and health-avoided nodes; when the whole candidate
	// set is unroutable the caller proceeds against the full set (and waits
	// for recovery only if everything is actually down).
	up := base
	for i, n := range base {
		if s.unroutable(n, s.clock) {
			up = make([]*Node, 0, len(base))
			up = append(up, base[:i]...)
			for _, m := range base[i+1:] {
				if !s.unroutable(m, s.clock) {
					up = append(up, m)
				}
			}
			break
		}
	}
	if len(up) == 0 {
		return base
	}
	return up
}

func (s *Simulator) serveOrQueue(node *Node, fr *fnRuntime, arrival time.Duration, retries int) {
	if !s.serve(node, fr, arrival, retries) {
		node.queue = append(node.queue, queued{fr: fr, arrival: arrival, retries: retries})
		if s.cfg.Fanout.Enabled {
			s.maybeFanout(node, fr)
		}
	}
}

// transformPair names the (src→dst) model pair a transform decision acts on,
// for circuit-breaker bookkeeping.
func transformPair(d Decision, fn *Function) (src, dst string) {
	if d.Plan != nil {
		return d.Plan.SrcName, d.Plan.DstName
	}
	return d.Reuse.Fn.Name, fn.Name
}

// superviseDecision applies the supervision layer and fault injection to a
// policy decision: the circuit breaker may short-circuit a transform to a
// from-scratch load, gray flaky/bandwidth windows degrade transforms on the
// serving node, injected aborts take the safeguard fallback, injected hangs
// are recovered by a hedged backup from the next-best donor, cancelled by the
// watchdog at their deadline, or run undetected for HangFactor× the plan, and
// from-scratch loads may fail and restart. Returns the (possibly degraded)
// decision.
func (s *Simulator) superviseDecision(d Decision, fn *Function, node *Node, now time.Duration) Decision {
	if d.Kind == metrics.StartTransform && d.Reuse != nil {
		src, dst := transformPair(d, fn)
		if !s.breaker.Allow(src, dst, now) {
			// The pair's breaker is open: skip the doomed transform attempt
			// entirely and load from scratch (still saving sandbox init).
			d.Kind = metrics.StartBreaker
			d.Load = s.env.Profile.ModelLoad(fn.Model).Total()
			d.Plan = nil
			s.collector.Faults.BreakerShortCircuits++
		} else {
			if s.inj.Fire(faults.Flaky) {
				if !node.Flaky(now) {
					s.collector.Faults.FlakyWindows++
				}
				node.FlakyUntil = now + s.cfg.FlakyDuration
			}
			if s.inj.Fire(faults.Bandwidth) {
				if !node.DegradedBandwidth(now) {
					s.collector.Faults.BandwidthWindows++
				}
				node.BandwidthUntil = now + s.cfg.BandwidthDuration
			}
			if node.DegradedBandwidth(now) {
				// Degraded transform bandwidth inflates the transform cost
				// before any abort or hang accounting charges it.
				d.Load = time.Duration(float64(d.Load) * s.cfg.BandwidthFactor)
			}
			switch {
			case node.Flaky(now):
				// The donor node is inside a flaky window: the transform
				// aborts and recovers through the safeguard path, and the
				// health tracker sees the node fail.
				d.Load = d.Load/2 + s.env.Profile.ModelLoad(fn.Model).Total()
				d.Kind = metrics.StartFallback
				s.collector.Faults.FlakyFallbacks++
				s.breaker.RecordFailure(src, dst, now)
				s.health.ObserveFailure(node.ID, now)
			case s.inj.Fire(faults.Transform):
				// The transformation aborts halfway through and the container
				// recovers by discarding the partial state and loading the
				// destination model from scratch (the safeguard's recovery path).
				d.Load = d.Load/2 + s.env.Profile.ModelLoad(fn.Model).Total()
				d.Kind = metrics.StartFallback
				s.TransformsFailed++
				s.collector.Faults.TransformFallbacks++
				s.breaker.RecordFailure(src, dst, now)
			case s.inj.Fire(faults.Hang):
				d = s.superviseHang(d, fn, node, src, dst, now)
			default:
				s.breaker.RecordSuccess(src, dst)
				s.hedger.Observe(d.Load)
			}
		}
	}
	// Every start kind that (re)acquires the model from scratch is exposed to
	// load faults — including hedged recoveries, whose kind is assigned by
	// superviseHang before this check runs.
	if (d.Kind == metrics.StartCold || d.Kind == metrics.StartFallback ||
		d.Kind == metrics.StartTimeout || d.Kind == metrics.StartBreaker ||
		d.Kind == metrics.StartHedge) && s.inj.Fire(faults.Load) {
		// The from-scratch load dies partway in and restarts: half the
		// attempted load is wasted, then the full load runs again.
		d.Load += d.Load / 2
		s.collector.Faults.LoadRetries++
	}
	return d
}

// superviseHang resolves an injected transform hang: a hedged backup from the
// next-best donor wins if it beats the primary's own recovery path, otherwise
// the watchdog cancels the hung transform at its deadline, or — with neither
// configured — the transform stalls undetected for HangFactor× the plan.
func (s *Simulator) superviseHang(d Decision, fn *Function, node *Node, src, dst string, now time.Duration) Decision {
	s.collector.Faults.Hangs++
	planned := d.Load
	fresh := s.env.Profile.ModelLoad(fn.Model).Total()
	if hd, ok := s.hedgeDeadline(node, fn, now); ok {
		// A backup transform starts from the next-best donor at the hedge
		// deadline; whichever recovery finishes first wins, and the loser is
		// cancelled.
		hedged := hd + planned
		var unhedged time.Duration
		if s.watchdog != nil {
			unhedged = s.watchdog.Deadline(planned) + fresh
		} else {
			unhedged = time.Duration(float64(planned) * s.cfg.HangFactor)
		}
		win := hedged < unhedged
		s.hedger.RecordHedge(win)
		s.collector.Faults.HedgedTransforms++
		if win {
			d.Load = hedged
			d.Kind = metrics.StartHedge
			s.collector.Faults.HedgeWins++
			s.breaker.RecordFailure(src, dst, now)
			s.health.ObserveFailure(node.ID, now)
			return d
		}
	}
	if s.watchdog != nil {
		// The watchdog cancels the hung transform at its deadline and the
		// safeguard loads from scratch: the request pays the full deadline
		// window plus the fresh load.
		d.Load = s.watchdog.Deadline(planned) + fresh
		d.Kind = metrics.StartTimeout
		s.watchdog.RecordCancel()
		s.collector.Faults.WatchdogCancels++
		s.breaker.RecordFailure(src, dst, now)
		s.health.ObserveFailure(node.ID, now)
	} else {
		// Undetected: the transform stalls for HangFactor× the plan before
		// eventually finishing on its own.
		d.Load = time.Duration(float64(planned) * s.cfg.HangFactor)
		s.breaker.RecordSuccess(src, dst)
		s.health.ObserveFailure(node.ID, now)
	}
	return d
}

// hedgeDeadline arms a hedge for a hung transform: the hedger needs enough
// observed transform durations, and the node a second repurposable donor for
// the backup to start from.
func (s *Simulator) hedgeDeadline(node *Node, fn *Function, now time.Duration) (time.Duration, bool) {
	if s.hedger == nil {
		return 0, false
	}
	hd, ok := s.hedger.Deadline()
	if !ok {
		return 0, false
	}
	if len(node.RepurposeCandidates(s.env, fn, now)) < 2 {
		return 0, false
	}
	return hd, true
}

// serve asks the policy for a decision and, if possible, executes it:
// charging latencies, occupying the container, and scheduling completion.
func (s *Simulator) serve(node *Node, fr *fnRuntime, arrival time.Duration, retries int) bool {
	now := s.clock
	fn := fr.fn
	node.expireIndex(now)
	node.EvictExpired(now, s.env.KeepAlive)
	d, ok := s.cfg.Policy.Serve(s.env, node, fn, now)
	if !ok {
		return false
	}
	if d.Reuse != nil && d.Reuse.fanoutFresh {
		// First service of a replica warmed by a fan-out tree: a warm reuse
		// is credited to the tree. Any other decision (e.g. repurposing the
		// replica for another function) just consumes the flag.
		d.Reuse.fanoutFresh = false
		if d.Kind == metrics.StartWarm {
			d.Kind = metrics.StartFanout
		}
	}
	if s.cfg.VerifyTransforms && d.Plan != nil && d.Reuse != nil {
		if err := metaop.Verify(s.env.Profile, d.Plan, d.Reuse.Fn.Model, fn.Model); err != nil {
			//optimus:allow panicpath — cross-check oracle: executed transformation contradicts its plan
			panic(fmt.Sprintf("simulate: transformation verification failed: %v", err))
		}
		s.TransformsVerified++
	}
	if s.cfg.OnlineProfiling > 0 && d.Plan != nil && d.Reuse != nil && !d.Plan.LoadFromScratch {
		s.observeExecution(d.Plan, d.Reuse.Fn.Model)
	}
	d = s.superviseDecision(d, fn, node, now)

	c := d.Reuse
	if c == nil {
		c = node.newContainer(fn, s.env.GrantFor(fn), now)
	} else if s.env.MemoryMode == MemoryFineGrained {
		// Fine-grained allocation resizes the repurposed container to the
		// new model, releasing the surplus the homogeneous mode would waste.
		c.MemMB = s.env.GrantFor(fn)
	}
	c.Fn = fn
	compute := s.computeFor(fr)
	if node.Slow(now) {
		// A gray-slow node serves everything SlowFactor× slower; each
		// breakdown component inflates alike so records stay additive.
		f := s.cfg.SlowFactor
		d.Init = time.Duration(float64(d.Init) * f)
		d.Load = time.Duration(float64(d.Load) * f)
		compute = time.Duration(float64(compute) * f)
	}
	service := d.Init + d.Load + compute
	if s.inj.Fire(faults.Crash) {
		// The container dies halfway through serving: it is lost at the
		// crash point and the request re-dispatched (or dropped once its
		// retry budget runs out). Wasted time surfaces as extra wait.
		crashAt := now + service/2
		c.BusyUntil = crashAt
		c.serving, c.hasServing = inflight{fr: fr, arrival: arrival, retries: retries}, true
		c.crashPending = true
		node.noteStartService(c, fr.ord)
		s.watchdog.Lease(c.ID, crashAt)
		s.collector.Faults.Crashes++
		s.health.ObserveFailure(node.ID, now)
		s.schedule(event{at: crashAt, kind: evCrash, node: node, c: c})
		return true
	}
	s.health.ObserveServed(node.ID, now, service)
	end := now + service
	c.BusyUntil = end
	c.serving, c.hasServing = inflight{fr: fr, arrival: arrival, retries: retries}, true
	node.noteStartService(c, fr.ord)
	s.watchdog.Lease(c.ID, end)
	s.collector.Add(metrics.Record{
		Function: fn.Name,
		Kind:     d.Kind,
		Arrival:  arrival,
		Start:    now,
		End:      end,
		Wait:     now - arrival,
		Init:     d.Init,
		Load:     d.Load,
		Compute:  compute,
		Retries:  retries,
	})
	s.schedule(event{at: end, kind: evComplete, node: node, c: c})
	return true
}

// crash destroys a container at its crash point and re-dispatches the
// victim request. The freed slot may unblock the node's queue.
func (s *Simulator) crash(node *Node, c *Container) {
	if c.dead {
		return // already lost to a node outage
	}
	c.dead = true
	c.crashPending = false
	node.Remove(c)
	s.watchdog.Expire(c.ID)
	if c.hasServing {
		c.hasServing = false
		s.retryOrDrop(c.serving)
	}
	s.drainQueue(node)
	s.pumpFanouts()
}

// complete frees a container and drains the node's queue. Index timers are
// drained before LastDone is rewritten so the busy→idle transition observes
// the stale LastDone, exactly as a same-timestamp arrival's scan would;
// noteComplete then re-keys the container's maturation to the fresh value.
func (s *Simulator) complete(node *Node, c *Container) {
	if c.dead {
		return // destroyed by an outage while this completion was pending
	}
	node.expireIndex(s.clock)
	c.LastDone = s.clock
	c.hasServing = false
	node.noteComplete(c, s.clock)
	s.watchdog.Complete(c.ID)
	if s.health != nil && s.nodeDrained(node, s.clock) {
		s.health.NoteDrained(node.ID, s.clock)
	}
	s.drainQueue(node)
	if c.fanoutBuilt {
		// A tree-built replica that idles while other nodes still queue for
		// its function pulls one of those requests over: fan-out warmth
		// absorbs the burst cluster-wide, not just where static placement
		// lets the router reach.
		s.fanoutStealInto(node, c)
	}
	s.pumpFanouts()
}

// nodeDrained reports that the node has no busy containers left — the signal
// a draining node's health state waits for.
func (s *Simulator) nodeDrained(n *Node, now time.Duration) bool {
	if n.idx != nil {
		return n.idx.busy == 0
	}
	return s.busyCount(n, now) == 0
}

// drainQueue serves as many queued requests as the node can now take.
func (s *Simulator) drainQueue(node *Node) {
	for len(node.queue) > 0 {
		q := node.queue[0]
		if !s.serve(node, q.fr, q.arrival, q.retries) {
			return
		}
		node.queue = node.queue[1:]
	}
}

// observeExecution feeds each executed meta-operator's (estimate, actual)
// pair back into the estimator — the §6 online-profiling loop. The estimate
// is recomputed from the estimator's *current* state: cached plans carry
// stale step estimates, and learning against those would never converge.
func (s *Simulator) observeExecution(plan *metaop.Plan, src *model.Graph) {
	for _, st := range plan.Steps {
		typ, ok := st.TargetType(src)
		if !ok {
			continue
		}
		var predicted time.Duration
		switch st.Kind {
		case metaop.KindReplace:
			predicted = s.est.ReplaceCost(&st.Dst)
		case metaop.KindReshape:
			srcOp := src.Op(st.SrcID)
			if srcOp == nil {
				continue
			}
			predicted = s.est.ReshapeCost(srcOp, &st.Dst)
		case metaop.KindReduce:
			srcOp := src.Op(st.SrcID)
			if srcOp == nil {
				continue
			}
			predicted = s.est.ReduceCost(srcOp)
		case metaop.KindAdd:
			predicted = s.est.AddCost(&st.Dst)
		default:
			continue
		}
		actual := metaop.StepTrueCost(s.env.Profile, src, st)
		s.est.Observe(typ, predicted, actual)
	}
}

// Estimator exposes the planner's (possibly learning) cost estimator.
func (s *Simulator) Estimator() *cost.Estimator { return s.est }

// Breaker exposes the transform circuit breaker (nil when disabled).
func (s *Simulator) Breaker() *supervisor.Breaker { return s.breaker }

// Health exposes the per-node health tracker (nil when disabled).
func (s *Simulator) Health() *health.Tracker { return s.health }

// Watchdog exposes the supervision watchdog (nil when disabled).
func (s *Simulator) Watchdog() *supervisor.Watchdog { return s.watchdog }

// Nodes exposes the simulated nodes (for tests and reporting).
func (s *Simulator) Nodes() []*Node { return s.nodes }

// HashPlacement spreads fns across n nodes by name hash — the baseline
// placement of traditional serverless platforms (§5.1).
func HashPlacement(fns []string, n int) map[string][]int {
	out := make(map[string][]int, len(fns))
	for _, f := range fns {
		out[f] = []int{int(hash32(f) % uint32(n))}
	}
	return out
}

// SpreadPlacement assigns functions round-robin over nodes in sorted-name
// order, a least-loaded-style static baseline.
func SpreadPlacement(fns []string, n int) map[string][]int {
	sorted := append([]string(nil), fns...)
	sort.Strings(sorted)
	out := make(map[string][]int, len(fns))
	for i, f := range sorted {
		out[f] = []int{i % n}
	}
	return out
}

func hash32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
