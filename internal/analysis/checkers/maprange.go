package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// sortFuncs are the deterministic-ordering calls that discharge an
// accumulation hazard when applied to the accumulator after the loop.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// fmtEmitters write output directly; inside a map range their line order is
// random per run.
var fmtEmitters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": false, // pure, order captured by the caller
}

// recordSinks are method names that append records or samples to a
// collector; feeding them in map order makes replay output nondeterministic
// (the hazard class that would silently break shard-merge ≡ serial).
var recordSinks = map[string]bool{
	"Add": true, "Record": true, "Observe": true, "Emit": true, "Write": true,
}

// Maprange flags for-range loops over maps whose bodies accumulate into a
// slice, write records, or emit output, without a subsequent deterministic
// sort of the accumulator in the same function. Go randomizes map iteration
// order per run, so any of these leaks nondeterminism into replay output.
// Map-to-map copies and aggregations (m2[k] = v, counters) are
// order-independent and stay silent.
type Maprange struct{}

// NewMaprange returns the checker.
func NewMaprange() *Maprange { return &Maprange{} }

// Name implements analysis.Checker.
func (m *Maprange) Name() string { return "maprange" }

// Doc implements analysis.Checker.
func (m *Maprange) Doc() string {
	return "flags map iteration that appends, records or emits without a deterministic sort"
}

// Run implements analysis.Checker.
func (m *Maprange) Run(p *analysis.Pass) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if rs, ok := n.(*ast.RangeStmt); ok {
				m.checkRange(p, rs, stack)
			}
			return true
		})
	}
}

// checkRange inspects one range statement; stack holds its ancestors
// (innermost last), used to locate the enclosing function body.
func (m *Maprange) checkRange(p *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	encl := enclosingFuncBody(stack)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if bi, ok := p.Info.Uses[fun].(*types.Builtin); ok && bi.Name() == "append" && len(call.Args) > 0 {
				target := accumulatorObj(p.Info, call.Args[0])
				if target == nil || within(target.Pos(), rs) {
					return true
				}
				if !sortedAfter(p, encl, rs.End(), target) {
					p.Reportf(m.Name(), call.Pos(),
						"append to %q inside map iteration without a subsequent deterministic sort: map order is random per run", target.Name())
				}
			}
		case *ast.SelectorExpr:
			if pkgPath, name, _, ok := pkgFuncRef(p.Info, fun); ok {
				if pkgPath == "fmt" && fmtEmitters[name] {
					p.Reportf(m.Name(), call.Pos(),
						"fmt.%s inside map iteration emits lines in random map order: collect and sort keys first", name)
				}
				return true
			}
			if recordSinks[fun.Sel.Name] && !isSyncMethod(p.Info, fun) {
				p.Reportf(m.Name(), call.Pos(),
					"%s inside map iteration writes records in random map order: iterate sorted keys instead", fun.Sel.Name)
			}
		}
		return true
	})
}

// accumulatorObj resolves an append target (plain identifier or field
// selector) to its object.
func accumulatorObj(info *types.Info, e ast.Expr) types.Object {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[v]
	case *ast.SelectorExpr:
		return info.Uses[v.Sel]
	}
	return nil
}

// within reports whether pos falls inside the range statement.
func within(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

// enclosingFuncBody returns the innermost enclosing function body from an
// ancestor stack, or nil at file scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedAfter reports whether the enclosing function body contains, after
// the loop, a sort call whose arguments reference the accumulator — the
// canonical collect-then-sort repair.
func sortedAfter(p *analysis.Pass, encl *ast.BlockStmt, after token.Pos, target types.Object) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, name, _, ok := pkgFuncRef(p.Info, fun)
		if !ok || !sortFuncs[pkgPath][name] {
			return true
		}
		for _, arg := range call.Args {
			if accumulatorObj(p.Info, arg) == target {
				found = true
			}
		}
		return true
	})
	return found
}

// isSyncMethod reports whether the selector resolves to a method of a
// package sync type (WaitGroup.Add and friends are order-independent).
func isSyncMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}
