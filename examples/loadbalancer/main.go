// Load balancer: the §5.1 model-sharing-aware placement in isolation.
// The same Optimus policy runs under hash placement and under the K-medoids
// placement that co-locates structurally similar functions with
// complementary demand — and the transformation share rises.
package main

import (
	"fmt"
	"time"

	optimus "repro"
)

func main() {
	img := optimus.Imgclsmob()
	// Four families × two sizes; variants inside a family are cheap to
	// transform into each other, so placement decides how often an idle
	// container is a useful donor.
	functions := []string{
		"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet",
		"vgg11-imagenet", "vgg16-imagenet", "vgg19-imagenet",
		"densenet121-imagenet", "densenet169-imagenet",
		"mobilenet-w0.75-imagenet", "mobilenet-w1-imagenet",
		"resnet18-cifar10", "vgg16-cifar10",
	}
	trace := optimus.MixedPoissonTrace(functions, 24*time.Hour, 5)
	fmt.Printf("12 functions, mixed Poisson, %d requests over 24h\n\n", trace.Len())

	run := func(useBalancer bool) *optimus.Report {
		sys := optimus.NewSystem(optimus.SystemConfig{
			Nodes:             4,
			ContainersPerNode: 2,
			Policy:            optimus.PolicyOptimus,
			UseBalancer:       useBalancer,
		})
		for _, n := range functions {
			sys.MustRegister(n, img.MustGet(n))
		}
		rep, err := sys.Run(trace)
		if err != nil {
			panic(err)
		}
		return rep
	}

	hash := run(false)
	kmed := run(true)
	fmt.Println("hash placement     :", hash.Summary())
	fmt.Println("k-medoids placement:", kmed.Summary())
	fmt.Printf("\nmodel-sharing-aware placement changes mean service time by %+.1f%%\n",
		100*(float64(kmed.MeanLatency())/float64(hash.MeanLatency())-1))
}
