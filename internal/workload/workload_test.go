package workload

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestPoissonDeterministic(t *testing.T) {
	fns := []string{"a", "b", "c"}
	t1 := Poisson(fns, 0.01, time.Hour, 42)
	t2 := Poisson(fns, 0.01, time.Hour, 42)
	if t1.Len() != t2.Len() {
		t.Fatalf("same-seed traces differ in length: %d vs %d", t1.Len(), t2.Len())
	}
	for i := range t1.Requests {
		if t1.Requests[i] != t2.Requests[i] {
			t.Fatalf("same-seed traces differ at %d", i)
		}
	}
	t3 := Poisson(fns, 0.01, time.Hour, 43)
	same := t1.Len() == t3.Len()
	if same {
		for i := range t1.Requests {
			if t1.Requests[i] != t3.Requests[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestPoissonRateMatchesExpectation(t *testing.T) {
	fns := []string{"f"}
	rate := 0.05 // 1 per 20 s
	dur := 10 * time.Hour
	tr := Poisson(fns, rate, dur, 1)
	expect := rate * dur.Seconds()
	if got := float64(tr.Len()); math.Abs(got-expect)/expect > 0.2 {
		t.Errorf("got %.0f arrivals, expected ≈ %.0f", got, expect)
	}
}

func TestPoissonSortedAndBounded(t *testing.T) {
	tr := Poisson([]string{"x", "y"}, 0.02, time.Hour, 9)
	var prev time.Duration = -1
	for _, r := range tr.Requests {
		if r.At < prev {
			t.Fatal("trace not time-ordered")
		}
		if r.At < 0 || r.At >= tr.Duration {
			t.Fatalf("arrival %v outside [0, %v)", r.At, tr.Duration)
		}
		prev = r.At
	}
}

func TestPoissonRatesZeroAndNegative(t *testing.T) {
	tr := PoissonRates(map[string]float64{"a": 0, "b": -1, "c": 0.01}, time.Hour, 5)
	for _, r := range tr.Requests {
		if r.Function != "c" {
			t.Fatalf("zero-rate function %q generated arrivals", r.Function)
		}
	}
}

func TestIntensityOrdering(t *testing.T) {
	if !(RateFrequent > RateMiddle && RateMiddle > RateInfrequent) {
		t.Fatalf("intensities not monotone: %g, %g, %g", RateFrequent, RateMiddle, RateInfrequent)
	}
	if math.Abs(RateFrequent-0.01) > 1e-12 {
		t.Errorf("RateFrequent = %g, want 1e-2", RateFrequent)
	}
}

func TestMixedPoissonCoversAllFunctions(t *testing.T) {
	fns := []string{"a", "b", "c", "d", "e", "f"}
	tr := MixedPoisson(fns, 100*time.Hour, 3)
	counts := map[string]int{}
	for _, r := range tr.Requests {
		counts[r.Function]++
	}
	// Frequent functions (every third) should see roughly 10× the arrivals
	// of infrequent ones over a long horizon.
	if counts["a"] < 3*counts["c"] {
		t.Errorf("frequent fn a (%d) should far exceed infrequent fn c (%d)", counts["a"], counts["c"])
	}
	for _, f := range fns {
		if counts[f] == 0 {
			t.Errorf("function %s got no arrivals in 100 h", f)
		}
	}
}

func TestAzureLike(t *testing.T) {
	fns := make([]string, 50)
	for i := range fns {
		fns[i] = "fn" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	tr := AzureLike(fns, 6*time.Hour, 7)
	if tr.Len() == 0 {
		t.Fatal("empty Azure-like trace")
	}
	// Determinism.
	tr2 := AzureLike(fns, 6*time.Hour, 7)
	if tr.Len() != tr2.Len() {
		t.Fatal("Azure-like trace not deterministic")
	}
	// Skew: the busiest function should dwarf the median one (the Azure
	// characterization's heavy head over a long rare tail).
	counts := make([]int, 0, len(fns))
	byFn := map[string]int{}
	for _, r := range tr.Requests {
		byFn[r.Function]++
	}
	for _, c := range byFn {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	maxC := counts[len(counts)-1]
	median := counts[len(counts)/2]
	if maxC < 5*median {
		t.Errorf("no skew: max %d vs median %d", maxC, median)
	}
	var prev time.Duration = -1
	for _, r := range tr.Requests {
		if r.At < prev {
			t.Fatal("Azure-like trace not sorted")
		}
		prev = r.At
	}
}

func TestSeries(t *testing.T) {
	tr := &Trace{
		Duration: 10 * time.Minute,
		Requests: []Request{
			{"a", 30 * time.Second},
			{"a", 90 * time.Second},
			{"b", 90 * time.Second},
			{"a", 9 * time.Minute},
		},
	}
	s := Series(tr, "a", time.Minute)
	if len(s) != 11 {
		t.Fatalf("series length %d, want 11", len(s))
	}
	if s[0] != 1 || s[1] != 1 || s[9] != 1 {
		t.Errorf("series = %v", s)
	}
	var total float64
	for _, x := range s {
		total += x
	}
	if total != 3 {
		t.Errorf("series total %v, want 3", total)
	}
	all := AllSeries(tr, []string{"a", "b"}, time.Minute)
	if len(all) != 2 || all["b"][1] != 1 {
		t.Errorf("AllSeries = %v", all)
	}
	if Series(tr, "a", 0) != nil {
		t.Error("zero slot should return nil")
	}
}

func TestPeriodicFunctionsAreRegular(t *testing.T) {
	// A trace of only periodic functions should show near-constant gaps.
	tr := &Trace{Duration: 4 * time.Hour}
	genPeriodic(tr, "p", tr.Duration, newTestRand())
	if tr.Len() < 3 {
		t.Skip("period too long for horizon")
	}
	gaps := make([]float64, 0, tr.Len()-1)
	for i := 1; i < tr.Len(); i++ {
		gaps = append(gaps, (tr.Requests[i].At - tr.Requests[i-1].At).Seconds())
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		if math.Abs(g-mean)/mean > 0.25 {
			t.Fatalf("periodic gap %v deviates >25%% from mean %v", g, mean)
		}
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(11)) }

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := MixedPoisson([]string{"a", "b", "c"}, 2*time.Hour, 9)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Duration != orig.Duration {
		t.Errorf("duration %v != %v", back.Duration, orig.Duration)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("len %d != %d", back.Len(), orig.Len())
	}
	for i := range orig.Requests {
		if orig.Requests[i] != back.Requests[i] {
			t.Fatalf("request %d differs: %v vs %v", i, orig.Requests[i], back.Requests[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                               // empty
		"bogus,header\n1,a\n",            // wrong header
		"at_ns,function\nnot-a-number,a", // bad arrival
		"at_ns,function\n5000000000,a\n1000000000,#horizon\n", // arrival beyond horizon
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
	// No explicit horizon: inferred from the last arrival.
	tr, err := ReadCSV(strings.NewReader("at_ns,function\n1000000000,a\n3000000000,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration < 3*time.Second {
		t.Errorf("inferred horizon %v too small", tr.Duration)
	}
}

func TestTraceFunctions(t *testing.T) {
	tr := &Trace{Requests: []Request{{"b", 1}, {"a", 2}, {"b", 3}}}
	fns := tr.Functions()
	if len(fns) != 2 || fns[0] != "a" || fns[1] != "b" {
		t.Errorf("Functions() = %v", fns)
	}
}

func TestReadAzureInvocationsCSV(t *testing.T) {
	csvData := "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n" +
		"o1,appA,fn1,http,2,0,1\n" +
		"o1,appB,fn1,timer,0,3,0\n"
	tr, err := ReadAzureInvocationsCSV(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration != 3*time.Minute {
		t.Errorf("duration = %v", tr.Duration)
	}
	if tr.Len() != 6 {
		t.Fatalf("got %d arrivals, want 6", tr.Len())
	}
	// Same HashFunction under different apps stays distinct.
	fns := tr.Functions()
	if len(fns) != 2 || fns[0] != "appA/fn1" || fns[1] != "appB/fn1" {
		t.Fatalf("functions = %v", fns)
	}
	// Counts land inside their minute, evenly spread.
	counts := map[int]int{}
	for _, r := range tr.Requests {
		if r.Function == "appA/fn1" {
			counts[int(r.At/time.Minute)]++
		}
	}
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Errorf("per-minute counts = %v", counts)
	}
	for _, r := range tr.Requests {
		if r.At < 0 || r.At >= tr.Duration {
			t.Errorf("arrival %v outside horizon", r.At)
		}
	}
}

func TestReadAzureInvocationsCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"Wrong,Header,Row,x,1\no,a,f,h,1\n",
		"HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,h\n",        // short row
		"HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,h,notnum\n", // bad count
		"HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,h,-3\n",     // negative
	}
	for i, c := range cases {
		if _, err := ReadAzureInvocationsCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
