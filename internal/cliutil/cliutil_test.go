package cliutil

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestValidateProbsAccepts(t *testing.T) {
	if err := ValidateProbs(nil); err != nil {
		t.Fatalf("nil map: %v", err)
	}
	if err := ValidateProbs(map[string]float64{
		"-a": 0, "-b": 1, "-c": 0.5,
	}); err != nil {
		t.Fatalf("boundary values rejected: %v", err)
	}
}

func TestValidateProbsRejectsConsolidated(t *testing.T) {
	err := ValidateProbs(map[string]float64{
		"-fault-crash":     1.5,
		"-fault-transform": -0.1,
		"-fault-load":      math.NaN(),
		"-fault-outage":    math.Inf(1),
		"-fault-hang":      0.3, // fine, must not appear
	})
	if err == nil {
		t.Fatal("bad probabilities accepted")
	}
	msg := err.Error()
	for _, want := range []string{"-fault-crash=1.5", "-fault-transform=-0.1", "-fault-load=NaN", "-fault-outage=+Inf"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "-fault-hang") {
		t.Errorf("error %q names a valid flag", msg)
	}
	// Sorted flag order keeps the message deterministic.
	if idx := strings.Index(msg, "-fault-crash"); idx < 0 || idx > strings.Index(msg, "-fault-load") {
		t.Errorf("error %q not sorted by flag name", msg)
	}
}

func TestParseRates(t *testing.T) {
	got, err := ParseRates("0, 0.25,1,,  0.5 ,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 0.25, 1, 0.5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseRates = %v, want %v", got, want)
	}
	empty, err := ParseRates("")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty input = %v, %v", empty, err)
	}
}

func TestParseRatesRejectsConsolidated(t *testing.T) {
	_, err := ParseRates("0.5,woof,-1,NaN,2,0.1")
	if err == nil {
		t.Fatal("bad rate list accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		`"woof" (not a number)`,
		`"-1" (outside [0,1])`,
		`"NaN" (not finite)`,
		`"2" (outside [0,1])`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, `"0.5"`) || strings.Contains(msg, `"0.1"`) {
		t.Errorf("error %q names a valid entry", msg)
	}
}
