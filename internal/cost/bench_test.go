package cost

import (
	"testing"

	"repro/internal/model"
)

func BenchmarkModelLoadResNet50Sized(b *testing.B) {
	bd := model.NewBuilder("bench", "bench", "")
	bd.Input(3)
	for i := 0; i < 53; i++ {
		bd.Conv("c", 3, 64, 64, 1)
		bd.BN("bn", 64)
		bd.ReLU("r", 64)
	}
	bd.Dense("fc", 2048, 1000)
	g := bd.Graph()
	p := CPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.ModelLoad(g).Total() <= 0 {
			b.Fatal("zero load")
		}
	}
}

func BenchmarkSubstituteCost(b *testing.B) {
	p := CPU()
	src := conv(3, 64, 64, 1)
	dst := conv(5, 64, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.SubstituteCost(src, dst); !ok {
			b.Fatal("infeasible")
		}
	}
}
