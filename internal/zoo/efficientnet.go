package zoo

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// EfficientNet builds EfficientNet-B<variant> (Tan & Le): MBConv inverted
// bottlenecks with squeeze-and-excitation and Swish activations, with the
// compound width/depth scaling of the published family.
func EfficientNet(variant int, classes int, scope string) *model.Graph {
	if variant < 0 || variant > 7 {
		panic(fmt.Sprintf("zoo: EfficientNet variant b%d undefined", variant))
	}
	widthMult := math.Pow(1.1, float64(variant))
	depthMult := math.Pow(1.2, float64(variant))
	round := func(w int) int {
		return scaleWidth(int(float64(w)*widthMult+0.5), 1)
	}
	repeats := func(n int) int {
		return int(math.Ceil(float64(n) * depthMult))
	}

	b := model.NewBuilder(fmt.Sprintf("efficientnet-b%d", variant), "efficientnet", scope)
	b.Input(3)
	stem := round(32)
	b.Conv("stem.conv", 3, 3, stem, 2)
	b.BN("stem.bn", stem)
	b.Add(model.Operation{Name: "stem.swish", Type: model.OpSwish, Shape: model.Shape{OutChannels: stem}})

	// (expansion, output width, repeats, stride, kernel) per stage — the B0
	// recipe scaled by the compound coefficients.
	plan := []struct{ t, out, n, s, k int }{
		{1, 16, 1, 1, 3}, {6, 24, 2, 2, 3}, {6, 40, 2, 2, 5},
		{6, 80, 3, 2, 3}, {6, 112, 3, 1, 5}, {6, 192, 4, 2, 5}, {6, 320, 1, 1, 3},
	}
	in := stem
	for si, st := range plan {
		out := round(st.out)
		for r := 0; r < repeats(st.n); r++ {
			stride := 1
			if r == 0 {
				stride = st.s
			}
			tag := fmt.Sprintf("s%d.b%d", si+1, r+1)
			entry := b.Tail()[0]
			hidden := in * st.t
			if st.t != 1 {
				b.Conv(tag+".expand", 1, in, hidden, 1)
				b.BN(tag+".bn1", hidden)
				b.Add(model.Operation{Name: tag + ".swish1", Type: model.OpSwish, Shape: model.Shape{OutChannels: hidden}})
			}
			b.Add(model.Operation{Name: tag + ".dwconv", Type: model.OpDepthwiseConv2D,
				Shape: model.Shape{KernelH: st.k, KernelW: st.k, InChannels: hidden, OutChannels: hidden, Stride: stride}})
			b.BN(tag+".bn2", hidden)
			b.Add(model.Operation{Name: tag + ".swish2", Type: model.OpSwish, Shape: model.Shape{OutChannels: hidden}})
			// Squeeze-and-excitation at ratio 0.25 of the block input.
			se := max(in/4, 4)
			b.GlobalAvgPool(tag+".se.gap", hidden)
			b.Dense(tag+".se.fc1", hidden, se)
			b.Add(model.Operation{Name: tag + ".se.swish", Type: model.OpSwish, Shape: model.Shape{OutChannels: se}})
			b.Dense(tag+".se.fc2", se, hidden)
			b.Add(model.Operation{Name: tag + ".se.sigmoid", Type: model.OpSigmoid, Shape: model.Shape{OutChannels: hidden}})
			b.Conv(tag+".project", 1, hidden, out, 1)
			b.BN(tag+".bn3", out)
			if stride == 1 && in == out {
				b.AddMerge(tag+".add", out, b.Tail()[0], entry)
			}
			in = out
		}
	}
	head := round(1280)
	b.Conv("head.conv", 1, in, head, 1)
	b.BN("head.bn", head)
	b.Add(model.Operation{Name: "head.swish", Type: model.OpSwish, Shape: model.Shape{OutChannels: head}})
	b.GlobalAvgPool("gap", head)
	b.Add(model.Operation{Name: "drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: head}})
	b.Dense("fc", head, classes)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: classes}})
	b.Output(classes)
	return b.Graph()
}
