package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// FuzzDirectiveParse hammers the //optimus:allow parser: it must never
// panic, never claim success with an empty or multi-token checker name or
// an empty reason, and never treat a non-directive comment as a directive.
func FuzzDirectiveParse(f *testing.F) {
	seeds := []string{
		"//optimus:allow wallclock — telemetry wall-clock read",
		"//optimus:allow globalrand -- seeded at process start",
		"//optimus:allow maprange —",
		"//optimus:allow — reason without checker",
		"//optimus:allow two tokens — reason",
		"//optimus:allow",
		"//optimus:allow\twallclock\t—\ttabs",
		"//optimus:allowance granted — not a directive",
		"// plain comment",
		"//optimus:allow wallclock — em—dash—inside—reason",
		"//optimus:allow wallclock -- -- double separator",
		"//optimus:allow \x00weird — bytes",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		checker, reason, ok, err := analysis.ParseDirective(s)
		if !ok {
			if err != nil {
				t.Fatalf("non-directive %q returned error %v", s, err)
			}
			if checker != "" || reason != "" {
				t.Fatalf("non-directive %q returned content (%q, %q)", s, checker, reason)
			}
			return
		}
		if !strings.HasPrefix(s, "//optimus:allow") {
			t.Fatalf("ok for input without directive prefix: %q", s)
		}
		if err != nil {
			if checker != "" || reason != "" {
				t.Fatalf("malformed %q returned content (%q, %q) alongside error", s, checker, reason)
			}
			return
		}
		if checker == "" || strings.ContainsAny(checker, " \t") {
			t.Fatalf("parsed checker %q from %q is not a single token", checker, s)
		}
		if reason == "" {
			t.Fatalf("parsed empty reason from %q without error", s)
		}
	})
}
