package zoo

import "testing"

func BenchmarkBuildVGG16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if VGG(16, false, 1000, "bench").NumOps() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBuildResNet50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ResNet(ResNetConfig{Depth: 50}, 1000, "bench").NumOps() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBuildBERTBase(b *testing.B) {
	cfg := BERTConfig{Name: "bench", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522}
	for i := 0; i < b.N; i++ {
		if BERT(cfg).NumOps() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkImgclsmobFullBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Imgclsmob()
		for _, n := range r.Names() {
			r.MustGet(n)
		}
	}
}
