package checkers_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checkers"
)

func fixture(name string) string {
	return filepath.Join("..", "testdata", "src", name)
}

// virtualPath stands in for a virtual-time package in fixtures.
const virtualPath = "repro/internal/simulate"

func TestWallclockFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.NewWallclock([]string{virtualPath}), fixture("wallclock"), virtualPath)
}

// TestWallclockSubpackage runs the same fixture under a *subpackage* of a
// virtual-time path: the ban covers the whole subtree, so a future
// repro/internal/simulate/tracing cannot silently read the wall clock.
func TestWallclockSubpackage(t *testing.T) {
	analysis.RunFixture(t, checkers.NewWallclock([]string{virtualPath}), fixture("wallclock"), virtualPath+"/tracing")
}

// TestWallclockRealtimeAllowlist feeds the default checker a package full
// of wall-clock reads under a real-time import path: the allowlist (by
// omission from the virtual list) must keep it silent.
func TestWallclockRealtimeAllowlist(t *testing.T) {
	analysis.RunFixture(t, checkers.DefaultWallclock(), fixture("wallclock_realtime"), "repro/internal/gateway")
}

func TestGlobalrandFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.NewGlobalrand(), fixture("globalrand"), "repro/internal/gateway")
}

func TestMaprangeFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.NewMaprange(), fixture("maprange"), virtualPath)
}

func TestLockedescapeFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.NewLockedescape(), fixture("lockedescape"), "repro/internal/gateway")
}

func TestPanicpathFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.DefaultPanicpath(), fixture("panicpath"), "repro/internal/model")
}

// TestPanicpathExempt loads the same panic pattern under an exempt path
// (the model zoo): no findings expected.
func TestPanicpathExempt(t *testing.T) {
	analysis.RunFixture(t, checkers.DefaultPanicpath(), fixture("panicpath_exempt"), "repro/internal/zoo")
}

func TestLockorderFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.NewLockorder(), fixture("lockorder"), "repro/internal/fanout")
}

func TestGoroutinejoinFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.NewGoroutinejoin(), fixture("goroutinejoin"), "repro/internal/fanout")
}

func TestUnlockpathFixture(t *testing.T) {
	analysis.RunFixture(t, checkers.NewUnlockpath(), fixture("unlockpath"), "repro/internal/fanout")
}

// TestTimepropFixture runs over a two-package mini-module: timeprop's
// findings only exist on virtual→real-time call edges, which a
// single-package fixture cannot express.
func TestTimepropFixture(t *testing.T) {
	analysis.RunModuleFixture(t,
		checkers.NewTimeprop([]string{"repro/internal/simulate"}),
		fixture("timeprop_mod"), "repro", "./...")
}

// TestRegressSplitLockPR7 memorializes the PR 7 fan-out bug as a checker
// regression: the pre-fix Tree.MemberLost shape (inflight checked under one
// lock hold, the state transition under a second) must be reported, and the
// landed fix (one critical section) must stay silent. If the split-lock rule
// ever loosens, this fails before the production hazard can re-enter.
func TestRegressSplitLockPR7(t *testing.T) {
	analysis.RunFixture(t, checkers.NewUnlockpath(), fixture("regress_splitlock"), "repro/internal/fanout")
}

// TestRegressGoroutineLeak pins the unjoined-monitor shape the supervision
// stack must never reacquire: an unjoined spawn is reported, the
// WaitGroup-joined shape is silent.
func TestRegressGoroutineLeak(t *testing.T) {
	analysis.RunFixture(t, checkers.NewGoroutinejoin(), fixture("regress_goleak"), "repro/internal/supervisor")
}

// TestRegistryNames pins the registry: the binary's flags, the suppression
// directives and DESIGN.md all key off these exact names.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"wallclock", "globalrand", "maprange", "lockedescape", "panicpath",
		"lockorder", "goroutinejoin", "unlockpath", "timeprop",
	}
	all := checkers.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d checkers, want %d", len(all), len(want))
	}
	for i, c := range all {
		if c.Name() != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, c.Name(), want[i])
		}
		if c.Doc() == "" {
			t.Errorf("checker %q has no doc line", c.Name())
		}
	}
}
