package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ring"
)

// proxyTrio builds three proxies (gw-0..gw-2) over live httptest servers,
// each fronting a recording stub handler, all sharing ring parameters.
func proxyTrio(t *testing.T) (proxies map[string]*Proxy, hits map[string]*atomic.Int64, lastForwarded map[string]*atomic.Value) {
	t.Helper()
	const n = 3
	ids := []string{"gw-0", "gw-1", "gw-2"}
	hits = make(map[string]*atomic.Int64, n)
	lastForwarded = make(map[string]*atomic.Value, n)
	proxies = make(map[string]*Proxy, n)

	peers := make([]Peer, 0, n)
	for _, id := range ids {
		id := id
		hits[id] = new(atomic.Int64)
		lastForwarded[id] = new(atomic.Value)
		// The server wraps the proxy so forwarded requests re-enter peer
		// proxies over real HTTP (and must stop there via ForwardedHeader).
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			proxies[id].ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, Peer{ID: id, URL: u})
	}
	for _, id := range ids {
		next := id
		stub := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[next].Add(1)
			lastForwarded[next].Store(r.Header.Get(ForwardedHeader))
			w.Header().Set("X-Served-By", next)
			fmt.Fprintf(w, `{"served_by":%q}`, next)
		})
		p, err := NewProxy(id, peers, 7, 64, stub)
		if err != nil {
			t.Fatal(err)
		}
		proxies[id] = p
	}
	return proxies, hits, lastForwarded
}

func TestProxyForwardsInvokeToOwner(t *testing.T) {
	proxies, hits, lastForwarded := proxyTrio(t)

	// Find a model name gw-0 does not own, so entering at gw-0 must forward.
	rg := ring.New(7, 64)
	for id := range proxies {
		rg.Add(id)
	}
	name, owner := "", ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("model-%d", i)
		o, _ := rg.Owner(cand)
		if o != "gw-0" {
			name, owner = cand, o
			break
		}
	}
	if name == "" {
		t.Fatal("could not find a model not owned by gw-0")
	}

	body := fmt.Sprintf(`{"model":%q}`, name)
	req := httptest.NewRequest(http.MethodPost, "/api/invoke", strings.NewReader(body))
	rec := httptest.NewRecorder()
	proxies["gw-0"].ServeHTTP(rec, req)

	if got := rec.Header().Get("X-Served-By"); got != owner {
		t.Fatalf("invoke for %s served by %q, ring owner is %q", name, got, owner)
	}
	if hits[owner].Load() != 1 {
		t.Fatalf("owner %s handler hits = %d, want 1", owner, hits[owner].Load())
	}
	if got := lastForwarded[owner].Load(); got != "gw-0" {
		t.Fatalf("forwarded header at owner = %v, want gw-0", got)
	}
	if proxies["gw-0"].forwards.Load() != 1 {
		t.Fatalf("gw-0 forwards counter = %d, want 1", proxies["gw-0"].forwards.Load())
	}
}

func TestProxyServesOwnedInvokeLocally(t *testing.T) {
	proxies, hits, _ := proxyTrio(t)

	rg := ring.New(7, 64)
	for id := range proxies {
		rg.Add(id)
	}
	name := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("model-%d", i)
		if o, _ := rg.Owner(cand); o == "gw-1" {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("could not find a model owned by gw-1")
	}

	req := httptest.NewRequest(http.MethodPost, "/api/invoke", strings.NewReader(fmt.Sprintf(`{"model":%q}`, name)))
	rec := httptest.NewRecorder()
	proxies["gw-1"].ServeHTTP(rec, req)

	if got := rec.Header().Get("X-Served-By"); got != "gw-1" {
		t.Fatalf("owned invoke served by %q, want gw-1 (local)", got)
	}
	if hits["gw-0"].Load()+hits["gw-2"].Load() != 0 {
		t.Fatal("owned invoke touched a peer")
	}
	if proxies["gw-1"].forwards.Load() != 0 {
		t.Fatal("owned invoke counted as a forward")
	}
}

func TestProxyForwardedRequestStopsAfterOneHop(t *testing.T) {
	proxies, hits, _ := proxyTrio(t)

	// A request already marked forwarded serves locally even when the ring
	// says another member owns the model — the one-hop bound.
	req := httptest.NewRequest(http.MethodPost, "/api/invoke", strings.NewReader(`{"model":"whatever"}`))
	req.Header.Set(ForwardedHeader, "gw-9")
	rec := httptest.NewRecorder()
	proxies["gw-0"].ServeHTTP(rec, req)

	if got := rec.Header().Get("X-Served-By"); got != "gw-0" {
		t.Fatalf("forwarded request served by %q, want gw-0 (no second hop)", got)
	}
	if hits["gw-1"].Load()+hits["gw-2"].Load() != 0 {
		t.Fatal("forwarded request hopped again")
	}
}

func TestProxyMirrorsRegistrations(t *testing.T) {
	proxies, hits, lastForwarded := proxyTrio(t)

	req := httptest.NewRequest(http.MethodPost, "/api/models", strings.NewReader(`{"name":"resnet18"}`))
	rec := httptest.NewRecorder()
	proxies["gw-0"].ServeHTTP(rec, req)

	// Local handler plus both peers saw the registration exactly once each.
	for id, h := range hits {
		if h.Load() != 1 {
			t.Errorf("%s registration hits = %d, want 1", id, h.Load())
		}
	}
	for _, id := range []string{"gw-1", "gw-2"} {
		if got := lastForwarded[id].Load(); got != "gw-0" {
			t.Errorf("mirror at %s carried forwarded header %v, want gw-0", id, got)
		}
	}
	if got := proxies["gw-0"].mirrors.Load(); got != 2 {
		t.Errorf("gw-0 mirrors counter = %d, want 2", got)
	}
	if got := proxies["gw-0"].mirrorErrors.Load(); got != 0 {
		t.Errorf("gw-0 mirror errors = %d, want 0", got)
	}
}

func TestProxyRingEndpoint(t *testing.T) {
	proxies, _, _ := proxyTrio(t)

	req := httptest.NewRequest(http.MethodGet, "/api/ring", nil)
	rec := httptest.NewRecorder()
	proxies["gw-2"].ServeHTTP(rec, req)

	var got struct {
		Self    string   `json:"self"`
		Members []string `json:"members"`
		VNodes  int      `json:"vnodes"`
		Seed    int64    `json:"seed"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Self != "gw-2" || got.VNodes != 64 || got.Seed != 7 {
		t.Fatalf("ring view = %+v", got)
	}
	if want := []string{"gw-0", "gw-1", "gw-2"}; strings.Join(got.Members, ",") != strings.Join(want, ",") {
		t.Fatalf("members = %v, want %v", got.Members, want)
	}
}

func TestProxyRejectsBadPeerSets(t *testing.T) {
	u, _ := url.Parse("http://localhost:1")
	if _, err := NewProxy("a", []Peer{{ID: "a", URL: u}, {ID: "a", URL: u}}, 1, 8, http.NotFoundHandler()); err == nil {
		t.Error("duplicate peer id accepted")
	}
	if _, err := NewProxy("a", []Peer{{ID: "a", URL: nil}}, 1, 8, http.NotFoundHandler()); err == nil {
		t.Error("nil peer URL accepted")
	}
	if _, err := NewProxy("z", []Peer{{ID: "a", URL: u}}, 1, 8, http.NotFoundHandler()); err == nil {
		t.Error("self outside peer set accepted")
	}
}
