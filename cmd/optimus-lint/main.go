// Command optimus-lint runs the project's static-analysis checkers over the
// module: the determinism, virtual-clock and concurrency invariants every
// reported result rests on, machine-checked on every commit.
//
//	optimus-lint [flags] [patterns]
//
// Patterns are go-tool style package patterns relative to the module root
// (default ./...). Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/checkers"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("optimus-lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (for archival and tooling)")
	enable := fs.String("enable", "", "comma-separated checker names to run (default: all)")
	disable := fs.String("disable", "", "comma-separated checker names to skip")
	list := fs.Bool("list", false, "list registered checkers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: optimus-lint [flags] [patterns]\n")
		fmt.Fprintf(fs.Output(), "patterns default to ./... relative to the module root\n\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	registry := checkers.All()
	if *list {
		for _, c := range registry {
			fmt.Printf("%-14s %s\n", c.Name(), c.Doc())
		}
		return 0
	}
	selected, err := selectCheckers(registry, *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimus-lint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimus-lint:", err)
		return 2
	}
	root, mod, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimus-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	findings, info, err := analysis.RunWithInfo(root, mod, selected, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimus-lint:", err)
		return 2
	}
	if !*jsonOut {
		// Wall-time note (stderr, human mode only): whole-repo lint speed is
		// a satellite invariant of its own — the memoized source importer
		// keeps the dominant cost (stdlib type-checking) one-time.
		fmt.Fprintf(os.Stderr, "optimus-lint: checked %d package(s) (%d loaded) with %d checker(s) in %s\n",
			info.Matched, info.Loaded, len(selected), time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, root, findings)
	} else {
		err = analysis.WriteText(os.Stdout, root, findings)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimus-lint:", err)
		return 2
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "optimus-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// selectCheckers applies -enable/-disable to the registry, rejecting
// unknown names so a typo cannot silently skip an invariant.
func selectCheckers(registry []analysis.Checker, enable, disable string) ([]analysis.Checker, error) {
	byName := make(map[string]analysis.Checker, len(registry))
	for _, c := range registry {
		byName[c.Name()] = c
	}
	parse := func(csv string) (map[string]bool, error) {
		out := make(map[string]bool)
		if csv == "" {
			return out, nil
		}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown checker %q (use -list)", name)
			}
			out[name] = true
		}
		return out, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var selected []analysis.Checker
	for _, c := range registry {
		if len(on) > 0 && !on[c.Name()] {
			continue
		}
		if off[c.Name()] {
			continue
		}
		selected = append(selected, c)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no checkers selected")
	}
	return selected, nil
}
